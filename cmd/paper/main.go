// Command paper regenerates every table and figure of the paper's
// evaluation section from fresh simulations.
//
// Usage:
//
//	paper [flags]
//
// By default a reduced configuration is used; pass -full for the
// paper-scale run (10 sets of 10,000 jobs per trace, roughly 50 minutes
// on one core) or tune -sets/-jobs directly. Table 1 needs no simulation
// and always reproduces exactly.
//
// Examples:
//
//	paper -table 1              # decision analysis of the simple decider
//	paper -table all -figure all
//	paper -figure 3 -ascii      # dynP slowdown curves as terminal plots
//	paper -traces CTC,SDSC -shrinks 1.0,0.8 -sets 4 -jobs 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynp"
)

func main() {
	var (
		tables   = flag.String("table", "", "tables to print: 1,2,3,4,5 or 'all'")
		figures  = flag.String("figure", "", "figures to print: 1,2,3,4 or 'all'")
		ablation = flag.String("ablation", "", "ablation study: pref, decider, metric, easy, candidates or 'all'")
		shares   = flag.Bool("shares", false, "also print the dynP policy-usage tables")
		detail   = flag.Bool("detail", false, "also print per-set dispersion (min/max/stddev)")
		traces   = flag.String("traces", "CTC,KTH,LANL,SDSC", "comma-separated trace models")
		shrinks  = flag.String("shrinks", "1.0,0.9,0.8,0.7,0.6", "comma-separated shrinking factors")
		sets     = flag.Int("sets", 5, "job sets per trace (paper: 10)")
		jobs     = flag.Int("jobs", 2500, "jobs per set (paper: 10000)")
		seed     = flag.Uint64("seed", 2004, "base random seed")
		full     = flag.Bool("full", false, "paper-scale configuration (10 sets x 10000 jobs)")
		workers  = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		tunerW   = flag.Int("tuner-workers", 0,
			"what-if planning workers inside each dynP tuner (0/1 = sequential; simulations already run in parallel)")
		speculate = flag.Bool("speculate", false,
			"speculative cross-event planning inside each dynP tuner (CI: output must be byte-identical)")
		fairness = flag.Bool("fairness", false,
			"run the fairness study: size-based (PSBS) scheduling under estimate overestimation")
		overestimates = flag.String("overestimates", "1,2,5",
			"comma-separated estimate scale factors for -fairness")
		registerInactive = flag.Bool("register-inactive", false,
			"register a custom policy and decider that stay unused (CI: output must be byte-identical)")
		ascii = flag.Bool("ascii", false, "render figures as terminal plots instead of data series")
		csv   = flag.Bool("csv", false, "render tables as CSV")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *registerInactive {
		fail(registerInactiveExtensions())
	}

	if *tables == "" && *figures == "" && *ablation == "" && !*fairness {
		*tables, *figures = "all", "all"
	}
	if *full {
		*sets, *jobs = 10, 10000
	}

	wantTables, err := parseList(*tables, 5)
	fail(err)
	wantFigures, err := parseList(*figures, 4)
	fail(err)

	models, err := parseModels(*traces)
	fail(err)
	shrinkVals, err := parseFloats(*shrinks)
	fail(err)

	// Tables 1 and 2 need no policy sweep.
	if wantTables[1] {
		render(dynp.PaperTable1(), *csv)
	}
	if wantTables[2] {
		t2, err := dynp.PaperTable2(models, *jobs, *seed)
		fail(err)
		render(t2, *csv)
	}

	baseCfg := func(schedulers []dynp.SchedulerSpec, label string) dynp.ExperimentConfig {
		cfg := dynp.ExperimentConfig{
			Shrinks:      shrinkVals,
			Sets:         *sets,
			JobsPerSet:   *jobs,
			Seed:         *seed,
			Schedulers:   schedulers,
			Workers:      *workers,
			TunerWorkers: *tunerW,
			Speculate:    *speculate,
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s: %d traces x %d shrinks x %d schedulers x %d sets x %d jobs\n",
				label, len(models), len(shrinkVals), len(schedulers), *sets, *jobs)
			start := time.Now()
			var mu sync.Mutex
			var lastPct int
			cfg.Progress = func(done, total int) {
				mu.Lock()
				defer mu.Unlock()
				pct := done * 100 / total
				if pct < lastPct { // a new trace's sweep started
					lastPct = pct
				}
				if pct >= lastPct+5 {
					lastPct = pct
					fmt.Fprintf(os.Stderr, "  %3d%% (%v)\n", pct, time.Since(start).Round(time.Second))
				}
			}
		}
		return cfg
	}

	needSweep := wantTables[3] || wantTables[4] || wantTables[5] ||
		wantFigures[1] || wantFigures[2] || wantFigures[3] || wantFigures[4]
	var results []*dynp.ExperimentResult
	if needSweep {
		var err error
		results, err = dynp.RunExperiments(models, baseCfg(dynp.PaperSchedulers(), "paper sweep"))
		fail(err)
	}

	if needSweep {
		printPaperOutputs(results, wantTables, wantFigures, shrinkVals, *csv, *ascii)
		if *shares {
			for _, sched := range []string{"dynP/advanced", "dynP/SJF-preferred"} {
				render(dynp.PolicySharesTable(results, shrinkVals, sched), *csv)
			}
		}
		if *detail {
			render(dynp.DetailTable(results, shrinkVals), *csv)
		}
	}

	if *ablation != "" {
		studies := dynp.Ablations()
		if *ablation != "all" {
			studies = nil
			for _, name := range strings.Split(*ablation, ",") {
				studies = append(studies, dynp.Ablation(strings.TrimSpace(name)))
			}
		}
		for _, study := range studies {
			specs, err := study.Schedulers()
			fail(err)
			res, err := dynp.RunExperiments(models, baseCfg(specs, "ablation "+string(study)))
			fail(err)
			names := make([]string, len(specs))
			for i, s := range specs {
				names[i] = s.Name
			}
			render(dynp.ComparisonTable(study.Title(), res, shrinkVals, names), *csv)
		}
	}

	if *fairness {
		factors, err := parseFactors(*overestimates)
		fail(err)
		specs := dynp.FairnessSchedulers()
		results := make([]*dynp.FairnessResult, 0, len(models))
		for _, m := range models {
			cfg := baseCfg(specs, "fairness study "+m.Name)
			cfg.Model = m
			cfg.Shrinks = nil // the fairness study sweeps estimate factors, not load
			r, err := dynp.RunFairness(cfg, factors)
			fail(err)
			results = append(results, r)
		}
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = s.Name
		}
		render(dynp.FairnessTable(results, factors, names), *csv)
	}
}

// inactivePolicy and inactiveDecider exist only to be registered and
// never used: CI runs the reduced paper pipeline with -register-inactive
// and asserts byte-identical output, proving registration alone cannot
// perturb scheduling.
type inactivePolicy struct{}

func (inactivePolicy) Name() string             { return "ci-inactive" }
func (inactivePolicy) Less(a, b *dynp.Job) bool { return dynp.TieBreak(a, b) }

type inactiveDecider struct{ inner dynp.Decider }

func (d inactiveDecider) Name() string { return "ci-inactive" }
func (d inactiveDecider) Decide(old dynp.Policy, candidates []dynp.Policy, values []float64) dynp.Policy {
	return d.inner.Decide(old, candidates, values)
}

func registerInactiveExtensions() error {
	if err := dynp.RegisterPolicy(inactivePolicy{}); err != nil {
		return err
	}
	return dynp.RegisterDecider("ci-inactive", func() dynp.Decider {
		return inactiveDecider{inner: dynp.AdvancedDecider()}
	})
}

// parseFactors parses the -overestimates list (factors >= 1).
func parseFactors(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f < 1 || f > 100 {
			return nil, fmt.Errorf("paper: invalid overestimation factor %q (want 1..100)", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func printPaperOutputs(results []*dynp.ExperimentResult, wantTables, wantFigures map[int]bool,
	shrinkVals []float64, csv, ascii bool) {
	if wantTables[4] {
		render(dynp.PaperTable4(results, shrinkVals), csv)
	}
	if wantTables[5] {
		render(dynp.PaperTable5(results, shrinkVals), csv)
	}
	if wantTables[3] {
		render(dynp.PaperTable3(results, shrinkVals), csv)
	}
	for n := 1; n <= 4; n++ {
		if !wantFigures[n] {
			continue
		}
		figs, err := dynp.PaperFigure(results, n, shrinkVals)
		fail(err)
		for _, f := range figs {
			if ascii {
				fail(f.ASCII(os.Stdout, 72, 18))
			} else {
				fail(f.Render(os.Stdout))
			}
			fmt.Println()
		}
	}
}

func render(t *dynp.Table, csv bool) {
	if csv {
		fail(t.RenderCSV(os.Stdout))
	} else {
		fail(t.Render(os.Stdout))
	}
	fmt.Println()
}

// parseList parses "1,3" or "all" into a presence map over 1..max.
func parseList(s string, max int) (map[int]bool, error) {
	out := make(map[int]bool)
	if s == "" {
		return out, nil
	}
	if s == "all" {
		for i := 1; i <= max; i++ {
			out[i] = true
		}
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > max {
			return nil, fmt.Errorf("paper: invalid selection %q (want 1..%d or 'all')", part, max)
		}
		out[n] = true
	}
	return out, nil
}

func parseModels(s string) ([]dynp.Model, error) {
	var out []dynp.Model
	for _, name := range strings.Split(s, ",") {
		m, err := dynp.ModelByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 || f > 2 {
			return nil, fmt.Errorf("paper: invalid shrinking factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}
