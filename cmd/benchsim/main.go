// Command benchsim measures the simulation-facing cost of the availability
// profile — EarliestFit and Alloc micro-benchmarks on the indexed Profile
// against the flat-array Linear baseline at several profile sizes, plus
// end-to-end sim.Run throughput on generated KTH workloads — and writes the
// measurements as a JSON snapshot (BENCH_sim.json) so CI can fail on
// performance regressions.
//
//	benchsim -out BENCH_sim.json
//	benchsim -check BENCH_sim.json   # compare a fresh run against a baseline
//
// Absolute nanoseconds vary with the machine, so -check gates on
// machine-neutral ratios instead: the indexed-over-linear speedup of every
// micro-benchmark pair (with a hard 2x floor at the largest profile size)
// and the 10k-over-1k jobs/sec scaling of the end-to-end rows. A fresh
// ratio may fall at most 10% below the baseline ratio. The -check run
// pins GOMAXPROCS to the value the baseline was recorded at (erroring if
// the environment demands a conflicting one), so the two measurements
// see the same machine shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"dynp/internal/benchgate"
	"dynp/internal/core"
	"dynp/internal/profile"
	"dynp/internal/sim"
	"dynp/internal/workload"
)

// micro is one micro-benchmark row: the named operation on a profile with
// Steps steps, for one of the two implementations.
type micro struct {
	Name    string `json:"name"` // "earliestfit" or "alloc"
	Impl    string `json:"impl"` // "indexed" or "linear"
	Steps   int    `json:"steps"`
	NsPerOp int64  `json:"ns_per_op"`
}

// speedup is a derived row: how many times faster the indexed profile runs
// the operation than the linear baseline at the same size. This is what
// -check gates on.
type speedup struct {
	Name  string  `json:"name"`
	Steps int     `json:"steps"`
	Ratio float64 `json:"ratio"` // linear ns / indexed ns
}

// simRow is one end-to-end row: a full sim.Run of the dynP advanced
// scheduler over a generated KTH job set.
type simRow struct {
	Name       string  `json:"name"`
	Jobs       int     `json:"jobs"`
	NsPerOp    int64   `json:"ns_per_op"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// specRow is one speculative end-to-end row: the same sim.Run with the
// speculative cross-event pipeline on. Ratio is spec-on jobs/s over the
// spec-off row at the same size — the machine-shape-sensitive number
// (speculation buys nothing without a spare core) — and HitRate is the
// fraction of dispatched speculative builds consumed by verification,
// which is a property of workload and pipeline, not hardware, so -check
// gates it on every machine.
type specRow struct {
	Name       string  `json:"name"`
	Jobs       int     `json:"jobs"`
	NsPerOp    int64   `json:"ns_per_op"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Ratio      float64 `json:"ratio"`
	HitRate    float64 `json:"hit_rate"`
}

type snapshot struct {
	GoMaxProcs int       `json:"gomaxprocs"`
	Capacity   int       `json:"capacity"`
	Note       string    `json:"note"`
	Micro      []micro   `json:"micro"`
	Speedups   []speedup `json:"speedups"`
	Sim        []simRow  `json:"sim"`
	Spec       []specRow `json:"spec,omitempty"`
}

const (
	// capacity of the synthetic machine the micro-benchmarks run on. Large
	// enough that reservation widths can vary widely without freeing the
	// profile for the probe width below.
	capacity = 1024
	// probeWidth is the width EarliestFit searches for: every step the
	// builders produce stays below it, so the search must traverse the
	// whole busy region before finding the free tail.
	probeWidth = 1000
	// maxRegression is how far a speedup or scaling ratio may fall below
	// its baseline before -check fails the build.
	maxRegression = 0.10
	// floorSteps/floorRatio: at the largest micro-benchmark size the
	// indexed profile must beat the linear baseline by at least this
	// factor regardless of the baseline file (the PR's acceptance bar).
	floorSteps = 4096
	floorRatio = 2.0
	// gateSteps: speedup rows below this size are reported but not gated.
	// The 256-step rows run in tens of microseconds and swing ±20% between
	// runs of this container, and small profiles are explicitly not where
	// the index claims to win — gating them would only make CI flaky.
	gateSteps = 1024
	// simShrink compresses the KTH interarrival times so the machine is
	// contended and queues (and thus profiles) grow.
	simShrink = 0.8
	// specHitFloor is the absolute speculation hit-rate floor on the KTH
	// workload: a virtual-clock run predicts its own event stream exactly,
	// so a rate below this means the pipeline is silently miss-recycling
	// (a verification condition drifted) — gated on every machine.
	specHitFloor = 0.80
	// specRatioFloor is the absolute spec-on-over-spec-off throughput
	// floor at the largest job count. The overlap needs a spare core, so
	// the ratio is only gated when the run has GOMAXPROCS > 1; one-core
	// machines report it ungated.
	specRatioFloor = 1.25
)

var microSizes = []int{256, 1024, 4096}
var simJobs = []int{1000, 10000}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file ('-' for stdout)")
	check := flag.String("check", "", "baseline BENCH_sim.json to compare a fresh run against (no output written)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement run to this file (pprof format)")
	flag.Parse()

	if *check != "" {
		// Load the baseline before measuring: the fresh run must execute at
		// the GOMAXPROCS the baseline was recorded at, or the ratios are not
		// comparable (a 4-core runner checking a 1-core snapshot would gate
		// scheduler noise, not regressions).
		raw, err := os.ReadFile(*check)
		fail(err)
		var base snapshot
		fail(json.Unmarshal(raw, &base))
		fail(benchgate.PinProcs("benchsim", base.GoMaxProcs))
		os.Exit(compare(base, measureProfiled(*cpuprofile)))
	}

	snap := measureProfiled(*cpuprofile)
	enc, err := json.MarshalIndent(snap, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fail(err)
}

// allocPlan returns the deterministic reservation sequence that builds a
// profile with steps steps: contiguous [slot*16, slot*16+16) intervals
// visited in scattered order (so boundary splits land mid-array, the
// linear implementation's worst case) with varying widths. The finished
// profile is one long busy plateau — every step below probeWidth, no two
// adjacent steps equal — followed by a single fully-free tail step.
type reservation struct {
	start int64
	width int
}

func allocPlan(steps int) []reservation {
	n := steps - 1      // n contiguous intervals leave n+1 boundaries
	stride := n*5/8 | 1 // any stride coprime to n walks every slot once
	for gcd(stride, n) != 1 {
		stride += 2
	}
	plan := make([]reservation, n)
	slot := 0
	for i := 0; i < n; i++ {
		slot = (slot + stride) % n
		plan[i] = reservation{
			start: int64(slot * 16),
			width: 100 + (slot*37)%800, // free stays in [124, 924], never >= probeWidth
		}
	}
	return plan
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// buildIndexed replays the reservation plan into a fresh indexed profile.
func buildIndexed(p *profile.Profile, plan []reservation) {
	p.Reset(capacity, 0)
	for _, r := range plan {
		p.Alloc(r.start, r.width, 16)
	}
}

// buildLinear replays the reservation plan into a fresh linear profile.
func buildLinear(p *profile.Linear, plan []reservation) {
	p.Reset(capacity, 0)
	for _, r := range plan {
		p.Alloc(r.start, r.width, 16)
	}
}

func microRow(name, impl string, steps int, fn func(b *testing.B)) micro {
	res := testing.Benchmark(fn)
	m := micro{Name: name, Impl: impl, Steps: steps, NsPerOp: res.NsPerOp()}
	fmt.Fprintf(os.Stderr, "%-12s %-8s %5d steps  %12d ns/op\n", name, impl, steps, m.NsPerOp)
	return m
}

// measureProfiled is measure with an optional CPU profile around the
// whole measurement — CI uploads it as an artifact so hot-path work can
// start from real numbers instead of a local repro. Explicit stop/close
// rather than defers: the -check path exits through os.Exit.
func measureProfiled(cpuprofile string) snapshot {
	if cpuprofile == "" {
		return measure()
	}
	f, err := os.Create(cpuprofile)
	fail(err)
	fail(pprof.StartCPUProfile(f))
	snap := measure()
	pprof.StopCPUProfile()
	fail(f.Close())
	return snap
}

func measure() snapshot {
	snap := snapshot{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Capacity:   capacity,
		Note: "pre-index baseline (flat-array Profile wired into the " +
			"engine): sim/dynp 120170 jobs/s at 1k jobs and 26364 jobs/s " +
			"at 10k jobs (KTH, shrink 0.8, GOMAXPROCS=1, same container); " +
			"the linear micro rows below are the live flat-array baseline",
	}

	for _, steps := range microSizes {
		plan := allocPlan(steps)

		// EarliestFit: the profile is prepared outside the timer (the query
		// does not mutate) and every op searches past the whole busy region.
		idx := profile.New(capacity, 0)
		buildIndexed(idx, plan)
		lin := profile.NewLinear(capacity, 0)
		buildLinear(lin, plan)
		ef := func(p interface {
			EarliestFit(int64, int, int64) int64
		}) func(b *testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.EarliestFit(0, probeWidth, 64)
				}
			}
		}
		snap.Micro = append(snap.Micro,
			microRow("earliestfit", "indexed", steps, ef(idx)),
			microRow("earliestfit", "linear", steps, ef(lin)))

		// Alloc: each op rebuilds the whole profile from its own storage, so
		// the row measures the full split-and-subtract path (steps/2 calls)
		// including mid-array boundary insertion.
		snap.Micro = append(snap.Micro,
			microRow("alloc", "indexed", steps, func(b *testing.B) {
				p := profile.New(capacity, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buildIndexed(p, plan)
				}
			}),
			microRow("alloc", "linear", steps, func(b *testing.B) {
				p := profile.NewLinear(capacity, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buildLinear(p, plan)
				}
			}))
	}
	snap.Speedups = speedups(snap.Micro)
	for _, s := range snap.Speedups {
		fmt.Fprintf(os.Stderr, "%-12s %5d steps  speedup %.2fx\n", s.Name, s.Steps, s.Ratio)
	}

	for _, jobs := range simJobs {
		sets, err := workload.KTH.GenerateSets(1, jobs, 1)
		fail(err)
		set := sets[0].Shrink(simShrink)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(set, sim.NewDynP(core.Advanced{})); err != nil {
					b.Fatal(err)
				}
			}
		})
		row := simRow{
			Name:       "sim/dynp",
			Jobs:       jobs,
			NsPerOp:    res.NsPerOp(),
			JobsPerSec: float64(jobs) / (float64(res.NsPerOp()) / 1e9),
		}
		fmt.Fprintf(os.Stderr, "%-12s %5d jobs   %12d ns/op  %10.0f jobs/s\n",
			row.Name, row.Jobs, row.NsPerOp, row.JobsPerSec)
		snap.Sim = append(snap.Sim, row)

		// The same run with the speculative cross-event pipeline on. The
		// hit rate comes from one instrumented run outside the timer: it
		// is a deterministic property of the workload, not a measurement.
		spec := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(set, sim.NewDynP(core.Advanced{}).SetSpeculation(true)); err != nil {
					b.Fatal(err)
				}
			}
		})
		probe := sim.NewDynP(core.Advanced{}).SetSpeculation(true)
		if _, err := sim.Run(set, probe); err != nil {
			fail(err)
		}
		srow := specRow{
			Name:       "sim/dynp/spec",
			Jobs:       jobs,
			NsPerOp:    spec.NsPerOp(),
			JobsPerSec: float64(jobs) / (float64(spec.NsPerOp()) / 1e9),
			HitRate:    probe.SpecStats().HitRate(),
		}
		if row.JobsPerSec > 0 {
			srow.Ratio = srow.JobsPerSec / row.JobsPerSec
		}
		fmt.Fprintf(os.Stderr, "%-12s %5d jobs   %12d ns/op  %10.0f jobs/s  (%.2fx, hit %.0f%%)\n",
			srow.Name, srow.Jobs, srow.NsPerOp, srow.JobsPerSec, srow.Ratio, srow.HitRate*100)
		snap.Spec = append(snap.Spec, srow)
	}
	return snap
}

// speedups pairs the micro rows by (name, steps) and derives the
// linear-over-indexed ratios.
func speedups(rows []micro) []speedup {
	ns := make(map[string]int64, len(rows))
	for _, m := range rows {
		ns[fmt.Sprintf("%s/%s/%d", m.Name, m.Impl, m.Steps)] = m.NsPerOp
	}
	var out []speedup
	for _, name := range []string{"earliestfit", "alloc"} {
		for _, steps := range microSizes {
			idx := ns[fmt.Sprintf("%s/indexed/%d", name, steps)]
			lin := ns[fmt.Sprintf("%s/linear/%d", name, steps)]
			if idx > 0 && lin > 0 {
				out = append(out, speedup{Name: name, Steps: steps, Ratio: float64(lin) / float64(idx)})
			}
		}
	}
	return out
}

// scaling returns the large-over-small end-to-end throughput ratio: how
// much of the 1k-job rate survives at 10k jobs. A profile that degrades
// super-linearly with schedule size drags this down.
func scaling(rows []simRow) (float64, bool) {
	rate := make(map[int]float64, len(rows))
	for _, r := range rows {
		rate[r.Jobs] = r.JobsPerSec
	}
	small, large := rate[simJobs[0]], rate[simJobs[len(simJobs)-1]]
	if small <= 0 || large <= 0 {
		return 0, false
	}
	return large / small, true
}

// compare gates a fresh run against the baseline: every speedup ratio
// at gateSteps or larger must hold to within maxRegression of its baseline
// (and meet the absolute floor at floorSteps), and the end-to-end
// throughput scaling must not collapse. Smaller rows print for context but
// never fail the build.
func compare(base, fresh snapshot) int {
	baseline := make(map[string]float64, len(base.Speedups))
	for _, s := range base.Speedups {
		baseline[fmt.Sprintf("%s/%d", s.Name, s.Steps)] = s.Ratio
	}
	bad := 0
	for _, s := range fresh.Speedups {
		key := fmt.Sprintf("%s/%d", s.Name, s.Steps)
		if s.Steps < gateSteps {
			fmt.Fprintf(os.Stderr, "benchsim: %-18s speedup %.2fx (not gated below %d steps)\n", key, s.Ratio, gateSteps)
			continue
		}
		limit := 0.0
		if b, ok := baseline[key]; ok {
			limit = b * (1 - maxRegression)
		} else {
			fmt.Fprintf(os.Stderr, "benchsim: %s: no baseline row, floor only\n", key)
		}
		if s.Steps == floorSteps && limit < floorRatio {
			limit = floorRatio
		}
		status := "ok"
		if s.Ratio < limit {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "benchsim: %-18s speedup %.2fx (limit %.2fx): %s\n", key, s.Ratio, limit, status)
	}
	if fs, ok := scaling(fresh.Sim); ok {
		limit := 0.0
		if bs, bok := scaling(base.Sim); bok {
			limit = bs * (1 - maxRegression)
		}
		status := "ok"
		if fs < limit {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "benchsim: sim scaling %d->%d jobs %.2f (limit %.2f): %s\n",
			simJobs[0], simJobs[len(simJobs)-1], fs, limit, status)
	}
	bad += compareSpec(base, fresh)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchsim: %d performance regression(s) beyond %.0f%%\n", bad, maxRegression*100)
		return 1
	}
	return 0
}

// compareSpec gates the speculative rows. The hit rate is gated on every
// machine — it is workload-determined, so it must meet both the absolute
// floor and the baseline to within maxRegression. The spec-over-baseline
// throughput ratio needs a spare core for the overlapped build, so it is
// gated (absolute floor at the largest size plus baseline regression)
// only when the pinned GOMAXPROCS exceeds 1, and reported as explicitly
// skipped otherwise — a silent skip would read as a pass.
func compareSpec(base, fresh snapshot) int {
	baseline := make(map[int]specRow, len(base.Spec))
	for _, s := range base.Spec {
		baseline[s.Jobs] = s
	}
	bad := 0
	for _, s := range fresh.Spec {
		hitLimit := specHitFloor
		b, hasBase := baseline[s.Jobs]
		if hasBase {
			if l := b.HitRate * (1 - maxRegression); l > hitLimit {
				hitLimit = l
			}
		}
		status := "ok"
		if s.HitRate < hitLimit {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "benchsim: spec %5d jobs hit-rate %.2f (limit %.2f): %s\n",
			s.Jobs, s.HitRate, hitLimit, status)

		if fresh.GoMaxProcs <= 1 {
			fmt.Fprintf(os.Stderr, "benchsim: spec %5d jobs ratio %.2fx: not gated at GOMAXPROCS=1 "+
				"(the overlap needs a spare core)\n", s.Jobs, s.Ratio)
			continue
		}
		limit := 0.0
		if hasBase {
			limit = b.Ratio * (1 - maxRegression)
		}
		if s.Jobs == simJobs[len(simJobs)-1] && limit < specRatioFloor {
			limit = specRatioFloor
		}
		status = "ok"
		if s.Ratio < limit {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "benchsim: spec %5d jobs ratio %.2fx (limit %.2fx): %s\n",
			s.Jobs, s.Ratio, limit, status)
	}
	return bad
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}
}
