// Command dynpsim runs a single simulation: one workload (a trace model or
// an SWF file), one scheduler, one shrinking factor — and reports the
// paper's metrics, the policy usage and, optionally, the decision trace of
// the self-tuning dynP scheduler.
//
// Examples:
//
//	dynpsim -trace KTH -jobs 5000 -shrink 0.8 -scheduler dynP/SJF-preferred
//	dynpsim -swf trace.swf -scheduler SJF
//	dynpsim -trace CTC -scheduler dynP/advanced -decisions 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dynp"
	"dynp/internal/metrics"
	"dynp/internal/sim"
	"dynp/internal/timeline"
)

func main() {
	var (
		trace     = flag.String("trace", "KTH", "trace model: CTC, KTH, LANL or SDSC")
		swfPath   = flag.String("swf", "", "SWF trace file (overrides -trace)")
		jobs      = flag.Int("jobs", 5000, "jobs to generate (trace models) or keep (SWF)")
		shrink    = flag.Float64("shrink", 1.0, "shrinking factor for submission times")
		scheduler = flag.String("scheduler", "dynP/SJF-preferred",
			"scheduler: FCFS, SJF, LJF, dynP/simple, dynP/advanced, dynP/<POLICY>-preferred")
		seed    = flag.Uint64("seed", 1, "random seed for workload generation")
		workers = flag.Int("workers", 0,
			"what-if planning workers for dynP schedulers (0 = all cores, 1 = sequential)")
		speculate = flag.Bool("speculate", false,
			"overlap the next event's what-if builds with the current event's bookkeeping (dynP schedulers; identical results)")
		decisions = flag.Int("decisions", 0, "print the first N self-tuning decisions")
		cases     = flag.Bool("cases", false, "print the Table 1 case histogram of all decisions")
		timelines = flag.Bool("timeline", false, "print queue-length and active-policy strips")
		verify    = flag.Bool("verify", false, "re-verify every schedule (slow)")
		list      = flag.Bool("list", false, "list the registered policies and deciders, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("policies:")
		for _, name := range dynp.PolicyNames() {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("deciders:")
		for _, name := range dynp.DeciderNames() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	set, err := loadSet(*swfPath, *trace, *jobs, *seed)
	fail(err)
	if *shrink != 1.0 {
		set = set.Shrink(*shrink)
	}

	spec, err := dynp.ParseSchedulerSpec(*scheduler)
	fail(err)
	driver := spec.New()
	if d, ok := driver.(*sim.DynP); ok {
		d.SetWorkers(*workers).SetSpeculation(*speculate)
		if *decisions > 0 || *cases || *timelines {
			d.Tuner.EnableTrace()
		}
	}

	var opts []sim.Option
	if *verify {
		opts = append(opts, sim.WithVerify())
	}
	var queue timeline.QueueSeries
	if *timelines {
		opts = append(opts, sim.WithQueueProbe(queue.Probe()))
	}
	res, err := sim.Run(set, driver, opts...)
	fail(err)

	fmt.Printf("workload : %s (%d jobs, %d processors)\n", set.Name, len(set.Jobs), set.Machine)
	fmt.Printf("scheduler: %s\n", res.Scheduler)
	fmt.Printf("events   : %d scheduling events, makespan %d s\n", res.Events, res.Makespan-res.First)
	fmt.Printf("SLDwA    : %.3f\n", dynp.SLDwA(res))
	fmt.Printf("SLDwA60  : %.3f (bounded, tau=60s)\n", dynp.BoundedSLDwA(res, metrics.DefaultTau))
	fmt.Printf("util     : %.2f%%\n", 100*dynp.Utilization(res))
	fmt.Printf("ART      : %.0f s   AWT: %.0f s   ARTwW: %.0f s\n",
		dynp.ART(res), dynp.AWT(res), dynp.ARTwW(res))

	if len(res.PolicyTime) > 1 {
		fmt.Println("policy usage (share of simulated time):")
		var total int64
		for _, d := range res.PolicyTime {
			total += d
		}
		type share struct {
			name string
			frac float64
		}
		var shares []share
		for p, d := range res.PolicyTime {
			shares = append(shares, share{p.Name(), float64(d) / float64(total)})
		}
		sort.Slice(shares, func(i, j int) bool { return shares[i].frac > shares[j].frac })
		for _, s := range shares {
			fmt.Printf("  %-5s %6.2f%%\n", s.name, 100*s.frac)
		}
	}

	if d, ok := driver.(*sim.DynP); ok {
		st := d.Stats()
		fmt.Printf("self-tuning: %d steps, %d policy switches\n", st.Steps, st.Switches)
		if sp := d.SpecStats(); sp.Dispatched > 0 {
			fmt.Printf("speculation: %d dispatched, %d hits (%.0f%%), %d misses, %d cancelled\n",
				sp.Dispatched, sp.Hits, 100*sp.HitRate(), sp.Misses, sp.Cancelled)
		}
		if *decisions > 0 {
			tr := d.Tuner.Trace()
			if len(tr) > *decisions {
				tr = tr[:*decisions]
			}
			fmt.Printf("first %d decisions (FCFS/SJF/LJF planned SLDwA):\n", len(tr))
			for _, dec := range tr {
				marker := " "
				if dec.Chosen != dec.Old {
					marker = "*"
				}
				fmt.Printf("  t=%-9d %s -> %-4s %s  [%.3f %.3f %.3f]  case %s\n",
					dec.Time, dec.Old, dec.Chosen, marker,
					dec.Values[0], dec.Values[1], dec.Values[2],
					dynp.DecisionCase(dec.Old, dec.Values[0], dec.Values[1], dec.Values[2]))
			}
		}
		if *cases {
			tr := d.Tuner.Trace()
			fmt.Printf("Table 1 case histogram over %d decisions:\n", len(tr))
			hist := dynp.ClassifyDecisions(tr)
			var wrongShare float64
			for _, c := range hist {
				if c.SimpleWrong {
					wrongShare += float64(c.Count)
				}
			}
			for _, line := range formatCases(hist, len(tr)) {
				fmt.Println("  " + line)
			}
			fmt.Printf("  decisions in simple-decider-wrong cases: %.1f%%\n",
				100*wrongShare/float64(len(tr)))
		}
		if *timelines {
			fmt.Println()
			fail(timeline.PolicyStrip(os.Stdout, d.Tuner.Trace(), res.Makespan, 100))
		}
	}
	if *timelines {
		fmt.Println()
		fail(queue.Sparkline(os.Stdout, 100))
	}
}

func formatCases(cases []dynp.CaseCount, total int) []string {
	var lines []string
	for _, c := range cases {
		mark := ""
		if c.SimpleWrong {
			mark = "  (simple decider decides wrongly here)"
		}
		lines = append(lines, fmt.Sprintf("case %-5s %7d  (%5.1f%%)%s",
			c.Case, c.Count, 100*float64(c.Count)/float64(total), mark))
	}
	return lines
}

func loadSet(swfPath, trace string, jobs int, seed uint64) (*dynp.JobSet, error) {
	if swfPath != "" {
		f, err := os.Open(swfPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dynp.ReadSWF(f, dynp.SWFReadOptions{Name: swfPath, MaxJobs: jobs})
	}
	m, err := dynp.ModelByName(trace)
	if err != nil {
		return nil, err
	}
	return m.Generate(jobs, dynp.NewStream(seed))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynpsim:", err)
		os.Exit(1)
	}
}
