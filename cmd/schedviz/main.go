// Command schedviz visualises a schedule: it runs one workload under one
// scheduler and renders the machine occupancy as an ASCII strip or an SVG
// file, plus the queue-length sparkline and — for the dynP schedulers —
// the active-policy strip over time.
//
// Examples:
//
//	schedviz -trace KTH -jobs 200 -shrink 0.8
//	schedviz -trace SDSC -scheduler dynP/advanced -svg out.svg
//	schedviz -swf trace.swf -scheduler EASY -width 100
package main

import (
	"flag"
	"fmt"
	"os"

	"dynp"
	"dynp/internal/gantt"
	"dynp/internal/sim"
	"dynp/internal/timeline"
)

func main() {
	var (
		trace     = flag.String("trace", "KTH", "trace model: CTC, KTH, LANL or SDSC")
		swfPath   = flag.String("swf", "", "SWF trace file (overrides -trace)")
		jobs      = flag.Int("jobs", 150, "jobs to simulate")
		shrink    = flag.Float64("shrink", 0.8, "shrinking factor")
		scheduler = flag.String("scheduler", "dynP/SJF-preferred", "scheduler name")
		seed      = flag.Uint64("seed", 1, "workload seed")
		width     = flag.Int("width", 100, "terminal strip width")
		svgPath   = flag.String("svg", "", "write an SVG occupancy chart to this file")
	)
	flag.Parse()

	var set *dynp.JobSet
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		fail(err)
		s, err := dynp.ReadSWF(f, dynp.SWFReadOptions{Name: *swfPath, MaxJobs: *jobs})
		f.Close()
		fail(err)
		set = s
	} else {
		m, err := dynp.ModelByName(*trace)
		fail(err)
		s, err := m.Generate(*jobs, dynp.NewStream(*seed))
		fail(err)
		set = s
	}
	if *shrink != 1.0 {
		set = set.Shrink(*shrink)
	}

	spec, err := dynp.ParseSchedulerSpec(*scheduler)
	fail(err)
	driver := spec.New()
	if d, ok := driver.(*sim.DynP); ok {
		d.Tuner.EnableTrace()
	}

	var q timeline.QueueSeries
	res, err := sim.Run(set, driver, sim.WithQueueProbe(q.Probe()))
	fail(err)

	fmt.Printf("%s under %s: SLDwA %.2f, utilization %.1f%%\n\n",
		set.Name, res.Scheduler, dynp.SLDwA(res), 100*dynp.Utilization(res))

	chart, err := gantt.FromResult(res)
	fail(err)
	if set.Machine <= 64 {
		fail(chart.ASCII(os.Stdout, *width))
	} else {
		fmt.Printf("(machine too tall for ASCII: %d processors; use -svg)\n", set.Machine)
	}
	fmt.Println()
	fail(q.Sparkline(os.Stdout, *width))

	if d, ok := driver.(*sim.DynP); ok {
		fmt.Println()
		fail(timeline.PolicyStrip(os.Stdout, d.Tuner.Trace(), res.Makespan, *width))
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		fail(err)
		err = chart.SVG(f, 1200, 600)
		cerr := f.Close()
		fail(err)
		fail(cerr)
		fmt.Fprintf(os.Stderr, "schedviz: wrote %s\n", *svgPath)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedviz:", err)
		os.Exit(1)
	}
}
