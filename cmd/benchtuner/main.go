// Command benchtuner measures the cost of one self-tuning dynP step —
// building and scoring one what-if schedule per candidate policy — across
// waiting-queue depths, candidate-set sizes and worker counts, and writes
// the measurements as a JSON snapshot (BENCH_tuner.json) so CI can track
// the planning-cost trajectory over time.
//
//	benchtuner -out BENCH_tuner.json
//	benchtuner -out - -steps 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// measurement is one (queue depth, candidate count, workers) cell.
type measurement struct {
	Queue       int     `json:"queue"`
	Candidates  int     `json:"candidates"`
	Workers     int     `json:"workers"`
	NsPerStep   int64   `json:"ns_per_step"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_sequential"`
}

type snapshot struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Steps      int           `json:"steps_per_measurement"`
	Capacity   int           `json:"capacity"`
	Running    int           `json:"running_jobs"`
	Results    []measurement `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_tuner.json", "output file ('-' for stdout)")
	steps := flag.Int("steps", 200, "self-tuning steps per measurement")
	flag.Parse()

	const capacity = 128
	const nRunning = 32

	r := rng.New(2004)
	running := make([]plan.Running, nRunning)
	for i := range running {
		running[i] = plan.Running{
			Job: &job.Job{
				ID: job.ID(i + 1), Submit: 0,
				Width: 1 + r.Intn(4), Estimate: int64(1000 + r.Intn(20000)),
			},
			Start: 0,
		}
	}

	candidateSets := []struct {
		n   int
		set []policy.Policy
	}{
		{len(policy.Candidates), policy.Candidates},
		{len(policy.All), policy.All},
	}

	snap := snapshot{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Steps:      *steps,
		Capacity:   capacity,
		Running:    nRunning,
	}
	for _, queued := range []int{64, 256, 1024} {
		waiting := make([]*job.Job, queued)
		for i := range waiting {
			est := int64(1 + r.Intn(20000))
			waiting[i] = &job.Job{
				ID: job.ID(nRunning + i + 1), Submit: int64(r.Intn(1000)),
				Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
			}
		}
		for _, cs := range candidateSets {
			var sequential int64
			for _, workers := range []int{1, 2, 4} {
				ns := stepCost(cs.set, workers, running, waiting, *steps)
				if workers == 1 {
					sequential = ns.ns
				}
				m := measurement{
					Queue: queued, Candidates: cs.n, Workers: workers,
					NsPerStep: ns.ns, AllocsPerOp: ns.allocs, BytesPerOp: ns.bytes,
				}
				if ns.ns > 0 {
					m.Speedup = round2(float64(sequential) / float64(ns.ns))
				}
				snap.Results = append(snap.Results, m)
				fmt.Fprintf(os.Stderr, "queue %4d  candidates %d  workers %d  %12d ns/step  %6d allocs/op  %9d B/op  %.2fx\n",
					queued, cs.n, workers, ns.ns, ns.allocs, ns.bytes, m.Speedup)
			}
		}
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fail(err)
}

// cost is one measured planning loop: wall time and heap traffic per step.
type cost struct {
	ns, allocs, bytes int64
}

// stepCost times steps self-tuning Plan calls and returns the per-step
// cost. One waiting job is replaced through the NoteSubmit/NoteRemove
// interface before every step, exactly as the scheduling engine reports
// queue changes: this keeps the incremental order views live (the
// production fast path) while defeating the tuner's plan memoization, so
// every step is a genuine rebuild rather than a memo hit.
func stepCost(candidates []policy.Policy, workers int, running []plan.Running, waiting []*job.Job, steps int) cost {
	const capacity = 128
	st := core.NewSelfTuner(candidates, core.Advanced{}, core.MetricSLDwA)
	st.SetWorkers(workers)
	waiting = append([]*job.Job(nil), waiting...)
	for _, j := range waiting {
		st.NoteSubmit(j)
	}
	churn := func(i int) {
		old := waiting[i%len(waiting)]
		st.NoteRemove(old)
		repl := &job.Job{
			ID: old.ID + job.ID(len(waiting)), Submit: old.Submit,
			Width: old.Width, Estimate: old.Estimate, Runtime: old.Runtime,
		}
		waiting[i%len(waiting)] = repl
		st.NoteSubmit(repl)
	}
	for i := 0; i < 5; i++ { // warm-up
		churn(i)
		st.Plan(1000, capacity, running, waiting)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < steps; i++ {
		churn(i)
		st.Plan(1000, capacity, running, waiting)
	}
	elapsed := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	n := int64(steps)
	return cost{
		ns:     elapsed / n,
		allocs: int64(after.Mallocs-before.Mallocs) / n,
		bytes:  int64(after.TotalAlloc-before.TotalAlloc) / n,
	}
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtuner:", err)
		os.Exit(1)
	}
}
