// Command benchplan measures the allocation behavior of the what-if
// planning path — the pooled against the unpooled builders, and the
// self-tuner's full planning step — and writes the measurements as a JSON
// snapshot (BENCH_plan.json) so CI can fail on allocation regressions.
//
//	benchplan -out BENCH_plan.json
//	benchplan -check BENCH_plan.json   # compare a fresh run against a baseline
//
// In -check mode nothing is written: the tool pins GOMAXPROCS to the
// value the baseline was recorded at (erroring if the environment
// demands a conflicting one), re-measures the tuner-step rows and exits
// non-zero when any allocs/op regresses more than 10% against the named
// baseline file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dynp/internal/benchgate"
	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// measurement is one benchmark row.
type measurement struct {
	Name        string `json:"name"`
	Queue       int    `json:"queue"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type snapshot struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Capacity   int           `json:"capacity"`
	Running    int           `json:"running_jobs"`
	Note       string        `json:"note"`
	Builds     []measurement `json:"builds"`
	TunerSteps []measurement `json:"tuner_steps"`
}

const (
	capacity = 128
	nRunning = 32
	// maxRegression is the allocs/op growth -check tolerates before
	// failing the build.
	maxRegression = 0.10
)

func main() {
	out := flag.String("out", "BENCH_plan.json", "output file ('-' for stdout)")
	check := flag.String("check", "", "baseline BENCH_plan.json to compare a fresh run against (no output written)")
	flag.Parse()

	if *check != "" {
		// Load the baseline before measuring: the fresh run must execute at
		// the GOMAXPROCS the baseline was recorded at, or allocs/op of the
		// parallel planning path (which sizes itself off GOMAXPROCS) are not
		// comparable across machines.
		raw, err := os.ReadFile(*check)
		fail(err)
		var base snapshot
		fail(json.Unmarshal(raw, &base))
		fail(benchgate.PinProcs("benchplan", base.GoMaxProcs))
		os.Exit(compare(base, measure(true)))
	}

	snap := measure(false)
	enc, err := json.MarshalIndent(snap, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fail(err)
}

// state builds the deterministic running-job-heavy event every row uses.
func state(queued int) ([]plan.Running, []*job.Job) {
	r := rng.New(5)
	running := make([]plan.Running, nRunning)
	for i := range running {
		running[i] = plan.Running{
			Job: &job.Job{
				ID: job.ID(i + 1), Submit: 0,
				Width: 1 + r.Intn(4), Estimate: int64(1000 + r.Intn(20000)),
			},
			Start: 0,
		}
	}
	waiting := make([]*job.Job, queued)
	for i := range waiting {
		est := int64(1 + r.Intn(20000))
		waiting[i] = &job.Job{
			ID: job.ID(100 + i), Submit: int64(r.Intn(1000)),
			Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
		}
	}
	return running, waiting
}

func row(name string, queued int, fn func(b *testing.B)) measurement {
	res := testing.Benchmark(fn)
	m := measurement{
		Name: name, Queue: queued,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	fmt.Fprintf(os.Stderr, "%-24s queue %4d  %10d ns/op  %6d allocs/op  %9d B/op\n",
		name, queued, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	return m
}

// measure runs every row; tunerOnly skips the build rows, which -check
// does not gate on.
func measure(tunerOnly bool) snapshot {
	snap := snapshot{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Capacity:   capacity,
		Running:    nRunning,
		Note: "pre-PR baseline at queue 64/256/1024, workers 1, cand3: " +
			"36/39/48 allocs per Plan (19551/50655/264159 B/op)",
	}
	for _, queued := range []int{64, 256, 1024} {
		running, waiting := state(queued)
		if !tunerOnly {
			snap.Builds = append(snap.Builds,
				row("build/unpooled", queued, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						base := plan.BuildBase(1000, capacity, running)
						for _, p := range policy.Candidates {
							s := plan.BuildFrom(base, waiting, p)
							s.PlannedSLDwA()
						}
					}
				}),
				row("build/pooled", queued, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						base := plan.BuildBasePooled(1000, capacity, running)
						for _, p := range policy.Candidates {
							s := plan.BuildFromPooled(base, waiting, p)
							s.PlannedSLDwA()
							s.Release()
						}
						base.Release()
					}
				}))
		}
		snap.TunerSteps = append(snap.TunerSteps,
			row("tuner/memo-hit", queued, func(b *testing.B) {
				st := core.NewSelfTuner(nil, core.Advanced{}, core.MetricSLDwA)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st.Plan(1000, capacity, running, waiting)
				}
			}),
			row("tuner/rebuild", queued, func(b *testing.B) {
				w := append([]*job.Job(nil), waiting...)
				st := core.NewSelfTuner(nil, core.Advanced{}, core.MetricSLDwA)
				for _, j := range w {
					st.NoteSubmit(j)
				}
				nextID := job.ID(100 + len(w))
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					old := w[i%len(w)]
					st.NoteRemove(old)
					repl := &job.Job{
						ID: nextID, Submit: old.Submit,
						Width: old.Width, Estimate: old.Estimate, Runtime: old.Runtime,
					}
					nextID++
					w[i%len(w)] = repl
					st.NoteSubmit(repl)
					st.Plan(1000, capacity, running, w)
				}
			}))
	}
	return snap
}

// compare re-measured tuner rows against the baseline, failing on
// allocs/op regressions beyond maxRegression.
func compare(base, fresh snapshot) int {
	baseline := make(map[string]measurement, len(base.TunerSteps))
	for _, m := range base.TunerSteps {
		baseline[key(m)] = m
	}
	bad := 0
	for _, m := range fresh.TunerSteps {
		b, ok := baseline[key(m)]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchplan: %s: no baseline row, skipping\n", key(m))
			continue
		}
		limit := int64(float64(b.AllocsPerOp)*(1+maxRegression)) + 1
		status := "ok"
		if m.AllocsPerOp > limit {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "benchplan: %-24s allocs/op %d vs baseline %d (limit %d): %s\n",
			key(m), m.AllocsPerOp, b.AllocsPerOp, limit, status)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchplan: %d allocation regression(s) beyond %.0f%%\n", bad, maxRegression*100)
		return 1
	}
	return 0
}

func key(m measurement) string { return fmt.Sprintf("%s/queue%d", m.Name, m.Queue) }

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchplan:", err)
		os.Exit(1)
	}
}
