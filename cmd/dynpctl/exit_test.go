package main

import (
	"bufio"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// stubDaemon answers every request line on every connection with the
// same canned response — just enough protocol to steer dynpctl into a
// particular exit path.
func stubDaemon(t *testing.T, response string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					if _, err := conn.Write([]byte(response + "\n")); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestExitCodes pins the CLI's exit-code contract: 0 success, 1 error,
// 2 usage, 4 busy shed — so scripts can tell "retry later" (4) from a
// real rejection (1). The busy case runs with retries disabled; with
// them enabled the client would retry through the shed instead.
func TestExitCodes(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "dynpctl")
	if out, err := exec.Command("go", "build", "-o", bin, "dynp/cmd/dynpctl").CombinedOutput(); err != nil {
		t.Fatalf("build dynpctl: %v\n%s", err, out)
	}

	cases := []struct {
		name     string
		response string
		args     []string
		exit     int
		stdout   string
	}{
		{
			name:     "quote success",
			response: `{"ok":true,"quotes":[{"width":8,"estimate":3600,"start":120,"finish":3720,"wait":120}],"now":0}`,
			args:     []string{"quote", "-width", "8", "-estimate", "3600"},
			exit:     0,
			stdout:   "starts t=120 (wait 120 s)",
		},
		{
			name:     "quote never starts",
			response: `{"ok":true,"quotes":[{"width":8,"estimate":3600,"start":-1,"finish":-1,"wait":-1}],"now":0}`,
			args:     []string{"quote", "-width", "8", "-estimate", "3600"},
			exit:     0,
			stdout:   "never starts at the current effective capacity",
		},
		{
			name:     "busy shed exits 4",
			response: `{"ok":false,"busy":true,"error":"rms: server busy: quote shed under load (retry)","now":0}`,
			args:     []string{"quote", "-retries", "-1"},
			exit:     4,
		},
		{
			name:     "hard rejection exits 1",
			response: `{"ok":false,"error":"rms: width 99 out of [1, 64] (effective capacity now 64)","now":0}`,
			args:     []string{"quote", "-width", "99", "-retries", "-1"},
			exit:     1,
		},
		{
			name: "usage exits 2",
			args: []string{"no-such-command"},
			exit: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := tc.args
			if tc.response != "" {
				args = append(args, "-addr", stubDaemon(t, tc.response))
			}
			out, err := exec.Command(bin, args...).Output()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatal(err)
			}
			if code != tc.exit {
				t.Errorf("dynpctl %s exited %d, want %d", strings.Join(args, " "), code, tc.exit)
			}
			if tc.stdout != "" && !strings.Contains(string(out), tc.stdout) {
				t.Errorf("stdout %q does not contain %q", out, tc.stdout)
			}
		})
	}
}
