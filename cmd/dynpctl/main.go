// Command dynpctl is the client CLI for a running dynpd daemon: submit
// jobs, report completions, inspect the live schedule, and drive the
// virtual clock.
//
// Examples:
//
//	dynpctl submit -width 8 -estimate 3600
//	dynpctl status
//	dynpctl done -id 3
//	dynpctl cancel -id 5
//	dynpctl tick -to 7200
//	dynpctl finished
//	dynpctl fail -procs 8        # take processors out of service
//	dynpctl trace -n 20          # recent engine transitions
//	dynpctl metrics              # lifetime engine metrics
//	dynpctl restore -procs 8     # bring them back
//	dynpctl health               # liveness: served even during replay
//	dynpctl ready                # readiness: exit 0 ready, 3 not ready
//	dynpctl policies             # scheduling policies the daemon knows
//	dynpctl deciders             # decider mechanisms the daemon knows
//	dynpctl quote -width 8 -estimate 3600 -count 2
//	                             # digital twin: when would these start?
//
// Exit codes: 0 success, 1 error, 2 usage, 3 not ready (ready), and 4
// when the daemon shed the request under overload (busy) — scripts can
// tell "retry later" from a real rejection.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dynp/internal/job"
	"dynp/internal/rms"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if !commands[cmd] {
		// Reject unknown commands before dialing: a typo is a usage error
		// (exit 2) whether or not a daemon is running.
		usage()
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7677", "dynpd address")
	width := fs.Int("width", 1, "processors (submit)")
	estimate := fs.Int64("estimate", 3600, "estimated run time in seconds (submit)")
	id := fs.Int64("id", 0, "job id (done/cancel/job)")
	to := fs.Int64("to", 0, "virtual time to advance to (tick)")
	procs := fs.Int("procs", 1, "processors to fail/restore")
	n := fs.Int("n", 0, "engine events to fetch (trace; 0 = all buffered)")
	count := fs.Int("count", 1, "hypothetical replicas to quote (quote)")
	timeout := fs.Duration("timeout", rms.DefaultCallTimeout, "per-call deadline (negative disables)")
	retries := fs.Int("retries", rms.DefaultRetries, "extra attempts for read-only calls on network failure")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	c, err := rms.DialOptions(*addr, rms.ClientOptions{
		Timeout: *timeout,
		Retries: *retries,
		Seed:    uint64(time.Now().UnixNano()),
	})
	fail(err)
	defer c.Close()

	switch cmd {
	case "submit":
		info, err := c.Submit(*width, *estimate)
		fail(err)
		fmt.Printf("job %d: %s", info.ID, info.State)
		if info.State == rms.StateWaiting {
			fmt.Printf(", planned start t=%d", info.PlannedStart)
		}
		fmt.Println()
	case "done":
		info, err := c.Done(job.ID(*id))
		fail(err)
		fmt.Printf("job %d completed at t=%d (ran %d s)\n",
			info.ID, info.Finished, info.Finished-info.Started)
	case "cancel":
		fail(c.Cancel(job.ID(*id)))
		fmt.Printf("job %d cancelled\n", *id)
	case "job":
		info, err := c.Job(job.ID(*id))
		fail(err)
		fmt.Printf("job %d: %s width %d est %d submitted %d planned %d started %d finished %d\n",
			info.ID, info.State, info.Width, info.Estimate,
			info.Submitted, info.PlannedStart, info.Started, info.Finished)
	case "tick":
		now, err := c.Tick(*to)
		fail(err)
		fmt.Printf("clock at t=%d\n", now)
	case "status":
		st, err := c.Status()
		fail(err)
		fmt.Printf("t=%d  scheduler %s  active policy %s\n", st.Now, st.Scheduler, st.ActivePolicy)
		fmt.Printf("machine: %d/%d processors busy, %d finished jobs\n",
			st.UsedProcs, st.Capacity, st.Finished)
		if st.FailedProcs > 0 {
			fmt.Printf("degraded: %d processors out of service (%d usable)\n",
				st.FailedProcs, st.Capacity-st.FailedProcs)
		}
		if len(st.Running) > 0 {
			fmt.Println("running:")
			for _, j := range st.Running {
				fmt.Printf("  job %-5d width %-4d since t=%-8d kill at t=%d\n",
					j.ID, j.Width, j.Started, j.Started+j.Estimate)
			}
		}
		if len(st.Waiting) > 0 {
			fmt.Println("waiting (planned starts):")
			for _, j := range st.Waiting {
				fmt.Printf("  job %-5d width %-4d est %-8d planned t=%d\n",
					j.ID, j.Width, j.Estimate, j.PlannedStart)
			}
		}
	case "finished":
		fin, err := c.Finished()
		fail(err)
		for _, j := range fin {
			fmt.Printf("job %-5d %-9s started %-8d finished %-8d waited %d s\n",
				j.ID, j.State, j.Started, j.Finished, j.Started-j.Submitted)
		}
	case "fail":
		st, err := c.Fail(*procs)
		fail(err)
		fmt.Printf("t=%d: %d processors out of service, %d/%d usable busy\n",
			st.Now, st.FailedProcs, st.UsedProcs, st.Capacity-st.FailedProcs)
	case "restore":
		st, err := c.Restore(*procs)
		fail(err)
		fmt.Printf("t=%d: %d processors out of service, %d/%d usable busy\n",
			st.Now, st.FailedProcs, st.UsedProcs, st.Capacity-st.FailedProcs)
	case "report":
		rep, err := c.Report()
		fail(err)
		fmt.Printf("t=%d: %d finished jobs (%d killed at estimate)\n", rep.Now, rep.Jobs, rep.Killed)
		fmt.Printf("SLDwA %.3f  utilization %.2f%%  ART %.0f s  AWT %.0f s  max wait %d s\n",
			rep.SLDwA, 100*rep.Util, rep.ART, rep.AWT, rep.MaxWait)
	case "trace":
		evs, err := c.Trace(*n)
		fail(err)
		for _, ev := range evs {
			fmt.Printf("#%-6d t=%-8d %-13s", ev.Seq, ev.Time, ev.Kind)
			if ev.Job != 0 {
				fmt.Printf(" job %-5d", ev.Job)
			}
			fmt.Printf(" queued %-4d running %-4d used %-4d policy %s", ev.Queued, ev.Running, ev.Used, ev.Policy)
			if ev.Case != "" {
				fmt.Printf(" case %s", ev.Case)
			}
			if ev.PlanNs > 0 {
				fmt.Printf(" plan %s", time.Duration(ev.PlanNs))
			}
			fmt.Println()
		}
	case "health":
		h, err := c.Health()
		fail(err)
		state := "ready"
		if !h.Ready {
			state = "not ready: " + h.Reason
		}
		fmt.Printf("%s  queue %d  conns %d\n", state, h.QueueDepth, h.Conns)
		if h.JournalErr != "" {
			fmt.Printf("journal error: %s\n", h.JournalErr)
		}
	case "ready":
		ok, reason, err := c.Ready()
		fail(err)
		if !ok {
			fmt.Printf("not ready: %s\n", reason)
			os.Exit(3)
		}
		fmt.Println("ready")
	case "policies":
		names, err := c.Policies()
		fail(err)
		for _, name := range names {
			fmt.Println(name)
		}
	case "deciders":
		names, err := c.Deciders()
		fail(err)
		for _, name := range names {
			fmt.Println(name)
		}
	case "quote":
		qs, err := c.Quote(*width, *estimate, *count)
		fail(err)
		for i, q := range qs {
			if q.Start == rms.NeverStart {
				fmt.Printf("quote %d: width %d est %d never starts at the current effective capacity\n",
					i+1, q.Width, q.Estimate)
				continue
			}
			fmt.Printf("quote %d: width %d est %d starts t=%d (wait %d s), killed by t=%d\n",
				i+1, q.Width, q.Estimate, q.Start, q.Wait, q.Finish)
		}
	case "metrics":
		m, err := c.Metrics()
		fail(err)
		fmt.Printf("events:")
		for _, k := range sortedKeys(m.Events) {
			fmt.Printf("  %s %d", k, m.Events[k])
		}
		fmt.Println()
		if m.Plans > 0 {
			fmt.Printf("planning: %d events, mean %s, max %s\n", m.Plans,
				time.Duration(m.PlanNsTotal/m.Plans), time.Duration(m.PlanNsMax))
		}
		if len(m.Cases) > 0 {
			fmt.Printf("decision cases:")
			for _, k := range sortedKeys(m.Cases) {
				fmt.Printf("  %s %d", k, m.Cases[k])
			}
			fmt.Println()
		}
		if m.Dropped > 0 {
			fmt.Printf("trace ring dropped %d events\n", m.Dropped)
		}
	}
}

// commands is the CLI verb set; usage() prints it in this spelling.
var commands = map[string]bool{
	"submit": true, "done": true, "cancel": true, "job": true, "status": true,
	"tick": true, "finished": true, "report": true, "fail": true, "restore": true,
	"trace": true, "metrics": true, "health": true, "ready": true,
	"policies": true, "deciders": true, "quote": true,
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dynpctl <submit|done|cancel|job|status|tick|finished|report|fail|restore|trace|metrics|health|ready|policies|deciders|quote> [flags]")
	os.Exit(2)
}

// sortedKeys returns the map's keys in lexical order for stable output.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "dynpctl:", err)
	// Overload shedding is not a verdict on the request: exit distinctly
	// so scripts can back off and retry instead of treating it as fatal.
	var serr *rms.ServerError
	if errors.As(err, &serr) && serr.Busy {
		os.Exit(4)
	}
	os.Exit(1)
}
