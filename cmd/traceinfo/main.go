// Command traceinfo prints the paper's Table 2 statistics for a workload:
// either a generated job set from one of the calibrated trace models, or
// an SWF file from the Parallel Workloads Archive.
//
// Examples:
//
//	traceinfo -trace LANL -jobs 10000
//	traceinfo -swf CTC-SP2-1996-3.1-cln.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"dynp"
)

func main() {
	var (
		trace   = flag.String("trace", "", "trace model: CTC, KTH, LANL or SDSC")
		swfPath = flag.String("swf", "", "SWF trace file")
		jobs    = flag.Int("jobs", 10000, "jobs to generate (trace models) or keep (SWF; 0 = all)")
		seed    = flag.Uint64("seed", 1, "random seed for generation")
	)
	flag.Parse()

	var set *dynp.JobSet
	switch {
	case *swfPath != "":
		f, err := os.Open(*swfPath)
		fail(err)
		defer f.Close()
		s, err := dynp.ReadSWF(f, dynp.SWFReadOptions{Name: *swfPath, MaxJobs: *jobs})
		fail(err)
		set = s
	case *trace != "":
		m, err := dynp.ModelByName(*trace)
		fail(err)
		s, err := m.Generate(*jobs, dynp.NewStream(*seed))
		fail(err)
		set = s
	default:
		fail(fmt.Errorf("need -trace or -swf"))
	}

	c := dynp.Characterize(set)
	fmt.Printf("workload: %s\n", c.Name)
	fmt.Printf("jobs    : %d on %d processors\n", c.Jobs, c.Machine)
	row := func(name string, min, mean, max float64) {
		fmt.Printf("%-22s min %10.0f   avg %12.2f   max %12.0f\n", name, min, mean, max)
	}
	row("width [procs]", c.Width.Min, c.Width.Mean, c.Width.Max)
	row("estimated run time [s]", c.Est.Min, c.Est.Mean, c.Est.Max)
	row("actual run time [s]", c.Act.Min, c.Act.Mean, c.Act.Max)
	row("interarrival time [s]", c.IAT.Min, c.IAT.Mean, c.IAT.Max)
	row("area [proc-s]", c.Area.Min, c.Area.Mean, c.Area.Max)
	fmt.Printf("%-22s %0.3f\n", "overestimation factor", c.Overest)
	fmt.Printf("%-22s %0.3f (mean area / (machine x mean IAT))\n", "offered load", c.OfferedLoad())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}
