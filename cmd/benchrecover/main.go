// Command benchrecover measures crash-recovery latency: it builds a
// journal with a deterministic 10k-event history (rotating through
// periodic checkpoints), then times restarting from it both ways —
// fast restore from the newest checkpoint plus tail replay, and full
// replay from genesis — and writes the measurements as a JSON snapshot
// (BENCH_recover.json) so CI can fail on recovery regressions.
//
//	benchrecover -out BENCH_recover.json
//	benchrecover -check BENCH_recover.json   # compare a fresh run against a baseline
//
// Absolute nanoseconds vary with the machine, so -check gates on the
// machine-neutral genesis-over-fast ratio: checkpointed restart must be
// at least 10x faster than full replay at a 10k-event history (the
// bounded-time recovery promise), and may not fall more than 25% below
// the baseline's ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"dynp/internal/benchgate"
	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rms"
	"dynp/internal/sim"
)

const (
	capacity = 64
	// events is the history length the recovery promise is stated at.
	events = 10_000
	// floorRatio is the acceptance bar: checkpoint restart must beat full
	// replay by at least this factor regardless of the baseline file.
	floorRatio = 10.0
	// maxRegression is how far the ratio may fall below its baseline
	// before -check fails the build. Recovery times are small, so the
	// tolerance is looser than the throughput benchmarks'.
	maxRegression = 0.25
)

type snapshot struct {
	GoMaxProcs      int     `json:"gomaxprocs"`
	Capacity        int     `json:"capacity"`
	Events          int64   `json:"events"`
	CheckpointEvery int     `json:"checkpoint_every"`
	Segments        int     `json:"segments"`
	FastNsPerOp     int64   `json:"fast_ns_per_op"`
	GenesisNsPerOp  int64   `json:"genesis_ns_per_op"`
	Ratio           float64 `json:"ratio"` // genesis ns / fast ns
}

func main() {
	out := flag.String("out", "BENCH_recover.json", "output file ('-' for stdout)")
	check := flag.String("check", "", "baseline BENCH_recover.json to compare a fresh run against (no output written)")
	ckptEvery := flag.Int("checkpoint-every", rms.DefaultSnapshotEvery, "journal checkpoint interval in events")
	flag.Parse()

	if *check != "" {
		raw, err := os.ReadFile(*check)
		fail(err)
		var base snapshot
		fail(json.Unmarshal(raw, &base))
		fail(benchgate.PinProcs("benchrecover", base.GoMaxProcs))
		os.Exit(compare(base, measure(*ckptEvery)))
	}

	snap := measure(*ckptEvery)
	enc, err := json.MarshalIndent(snap, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fail(err)
}

func newSched() *rms.Scheduler {
	s, err := rms.New(capacity, sim.NewDynP(core.Preferred{Policy: policy.SJF}), 0)
	fail(err)
	return s
}

// buildJournal drives a journaled scheduler through a deterministic
// mixed history (submissions, clock moves, completions, cancellations,
// atomic deliveries) until the journal holds the target event count.
func buildJournal(dir string, ckptEvery int) (string, int) {
	path := filepath.Join(dir, "journal")
	j, err := rms.OpenJournal(path)
	fail(err)
	j.SetSnapshotEvery(ckptEvery)
	s := newSched()
	fail(s.SetJournal(j))

	rng := uint64(0xD1CE)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	now := int64(0)
	for j.Events() < events {
		switch next(8) {
		case 0, 1, 2, 3:
			if _, err := s.Submit(1+next(8), int64(30+next(600))); err != nil {
				fail(err)
			}
		case 4:
			now += int64(1 + next(90))
			fail(s.Advance(now))
		case 5:
			if running := s.Status().Running; len(running) > 0 {
				if _, err := s.Complete(running[next(len(running))].ID); err != nil {
					fail(err)
				}
			}
		case 6:
			if waiting := s.Status().Waiting; len(waiting) > 0 {
				if err := s.Cancel(waiting[next(len(waiting))].ID); err != nil {
					fail(err)
				}
			}
		case 7:
			now += int64(1 + next(30))
			subs := make([]rms.Submission, 1+next(3))
			for i := range subs {
				subs[i] = rms.Submission{Width: 1 + next(8), Estimate: int64(30 + next(300))}
			}
			var completions []job.ID
			if running := s.Status().Running; len(running) > 0 {
				completions = []job.ID{running[next(len(running))].ID}
			}
			// A delivery may be rejected (e.g. the completion races the
			// estimate kill at the new time); the rejection is journaled
			// and replayed identically, so it still counts as history.
			_, _ = s.Deliver(now, completions, subs)
		}
		fail(j.Err())
	}
	segments := j.Segment()
	fail(j.Close())
	return path, segments
}

func measure(ckptEvery int) snapshot {
	dir, err := os.MkdirTemp("", "benchrecover")
	fail(err)
	defer os.RemoveAll(dir)
	path, segments := buildJournal(dir, ckptEvery)

	restart := func(genesis bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := rms.OpenJournal(path)
				if err != nil {
					b.Fatal(err)
				}
				s := newSched()
				if genesis {
					_, err = j.ReplayGenesis(s)
				} else {
					_, err = j.Replay(s)
				}
				if err != nil {
					b.Fatal(err)
				}
				if err := j.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	fastRes := testing.Benchmark(restart(false))
	genesisRes := testing.Benchmark(restart(true))

	snap := snapshot{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Capacity:        capacity,
		Events:          events,
		CheckpointEvery: ckptEvery,
		Segments:        segments,
		FastNsPerOp:     fastRes.NsPerOp(),
		GenesisNsPerOp:  genesisRes.NsPerOp(),
	}
	if snap.FastNsPerOp > 0 {
		snap.Ratio = float64(snap.GenesisNsPerOp) / float64(snap.FastNsPerOp)
	}
	fmt.Fprintf(os.Stderr, "benchrecover: %d events, %d segments, checkpoint every %d\n",
		snap.Events, snap.Segments, snap.CheckpointEvery)
	fmt.Fprintf(os.Stderr, "benchrecover: fast restart    %12d ns/op\n", snap.FastNsPerOp)
	fmt.Fprintf(os.Stderr, "benchrecover: genesis replay  %12d ns/op\n", snap.GenesisNsPerOp)
	fmt.Fprintf(os.Stderr, "benchrecover: speedup %.1fx\n", snap.Ratio)
	return snap
}

func compare(base, fresh snapshot) int {
	limit := floorRatio
	if b := base.Ratio * (1 - maxRegression); b > limit {
		limit = b
	}
	status := "ok"
	exit := 0
	if fresh.Ratio < limit {
		status = "REGRESSION"
		exit = 1
	}
	fmt.Fprintf(os.Stderr, "benchrecover: checkpoint-over-genesis speedup %.1fx (limit %.1fx): %s\n",
		fresh.Ratio, limit, status)
	return exit
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecover:", err)
		os.Exit(1)
	}
}
