// Command dynpd runs the dynP scheduler as an online resource management
// daemon: a planning-based RMS core speaking newline-delimited JSON over
// TCP. Clients submit jobs, report completions, and query the live
// schedule; the daemon kills jobs whose estimates expire, exactly like the
// CCS system the paper's scheduler was built for.
//
// Two clock modes:
//
//   - virtual (default): time only moves when a client sends
//     {"op":"tick","to":T} — fully deterministic, ideal for scripting
//     and testing.
//   - real time (-timescale N): every wall-clock second advances the
//     virtual clock by N seconds.
//
// With -journal <path> the daemon appends every state-changing event to a
// write-ahead journal before applying it. After a crash (even kill -9),
// restarting on the same journal replays the history and resumes with
// byte-identical state; see DESIGN.md's fault-model section.
//
// Example session (with netcat):
//
//	$ dynpd -procs 64 -scheduler dynP/SJF-preferred &
//	$ nc localhost 7677
//	{"op":"submit","width":8,"estimate":3600}
//	{"ok":true,"job":{"ID":1,...,"State":1},"now":0}
//	{"op":"status"}
//	...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynp"
	"dynp/internal/rms"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7677", "TCP listen address")
		procs     = flag.Int("procs", 64, "machine size in processors")
		scheduler = flag.String("scheduler", "dynP/SJF-preferred",
			"scheduler: FCFS, SJF, LJF, EASY, dynP/simple, dynP/advanced, dynP/<POLICY>-preferred")
		timescale = flag.Int64("timescale", 0,
			"real-time mode: virtual seconds per wall-clock second (0 = virtual clock via 'tick')")
		journalPath = flag.String("journal", "",
			"write-ahead event journal; an existing journal is replayed on startup, restoring pre-crash state")
		idleTimeout = flag.Duration("idle-timeout", 0,
			"drop client connections idle longer than this (0 = keep forever)")
		traceLen = flag.Int("trace", 512,
			"engine event trace: ring-buffer length backing the 'trace' and 'metrics' ops (0 = disabled)")
	)
	flag.Parse()

	spec, err := dynp.ParseSchedulerSpec(*scheduler)
	fail(err)
	sched, err := rms.New(*procs, spec.New(), 0)
	fail(err)

	// Attach the engine observer before journal replay so the trace and
	// metrics cover the replayed history too, exactly as if the daemon
	// had never crashed.
	var trace *rms.EventTrace
	if *traceLen > 0 {
		trace = rms.NewEventTrace(*traceLen)
		sched.AddObserver(trace)
	}

	if *journalPath != "" {
		journal, err := rms.OpenJournal(*journalPath)
		fail(err)
		replayed, err := journal.Replay(sched)
		fail(err)
		if replayed > 0 {
			fmt.Fprintf(os.Stderr, "dynpd: replayed %d events from %s, resuming at t=%d\n",
				replayed, *journalPath, sched.Now())
		}
		fail(sched.SetJournal(journal))
		defer journal.Close()
	}

	server := rms.NewServer(sched, *timescale == 0)
	server.IdleTimeout = *idleTimeout
	server.Trace = trace
	bound, err := server.Listen(*addr)
	fail(err)
	fmt.Fprintf(os.Stderr, "dynpd: %s scheduling %d processors on %s (clock: %s)\n",
		spec.Name, *procs, bound, clockMode(*timescale))

	stopTicker := make(chan struct{})
	if *timescale > 0 {
		go func() {
			// A replayed journal resumes mid-history: offset the wall
			// clock so time continues from the restored instant instead
			// of trying to advance backwards to zero.
			base := sched.Now()
			start := time.Now()
			ticker := time.NewTicker(250 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stopTicker:
					return
				case <-ticker.C:
					virtual := base + int64(time.Since(start).Seconds()*float64(*timescale))
					if err := sched.Advance(virtual); err != nil {
						fmt.Fprintf(os.Stderr, "dynpd: clock: %v\n", err)
					}
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	close(stopTicker)
	fail(server.Close())
	st := sched.Status()
	fmt.Fprintf(os.Stderr, "dynpd: shut down at t=%d, %d finished, %d running, %d waiting\n",
		st.Now, st.Finished, len(st.Running), len(st.Waiting))
}

func clockMode(scale int64) string {
	if scale == 0 {
		return "virtual, client-driven ticks"
	}
	return fmt.Sprintf("real time x%d", scale)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynpd:", err)
		os.Exit(1)
	}
}
