// Command dynpd runs the dynP scheduler as an online resource management
// daemon: a planning-based RMS core speaking newline-delimited JSON over
// TCP. Clients submit jobs, report completions, and query the live
// schedule; the daemon kills jobs whose estimates expire, exactly like the
// CCS system the paper's scheduler was built for.
//
// Two clock modes:
//
//   - virtual (default): time only moves when a client sends
//     {"op":"tick","to":T} — fully deterministic, ideal for scripting
//     and testing.
//   - real time (-timescale N): every wall-clock second advances the
//     virtual clock by N seconds.
//
// With -journal <path> the daemon appends every state-changing event to a
// write-ahead journal before applying it. After a crash (even kill -9),
// restarting on the same journal replays the history and resumes with
// byte-identical state; see DESIGN.md's fault-model section. Recovery is
// bounded-time: periodic checkpoints rotate the journal into segments, and
// -replay-mode fast restores from the newest valid checkpoint instead of
// replaying from genesis.
//
// The server degrades gracefully under overload: -max-conns bounds
// concurrent connections (reads are shed first so mutating operations are
// never starved by read floods), -write-timeout disconnects stalled
// clients, and the health/ready protocol ops report liveness and readiness
// even during journal replay.
//
// Example session (with netcat):
//
//	$ dynpd -procs 64 -scheduler dynP/SJF-preferred &
//	$ nc localhost 7677
//	{"op":"submit","width":8,"estimate":3600}
//	{"ok":true,"job":{"ID":1,...,"State":1},"now":0}
//	{"op":"status"}
//	...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynp"
	"dynp/internal/rms"
	"dynp/internal/vfs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7677", "TCP listen address")
		addrFile  = flag.String("addr-file", "", "write the bound listen address to this file (for :0 listeners)")
		procs     = flag.Int("procs", 64, "machine size in processors")
		scheduler = flag.String("scheduler", "dynP/SJF-preferred",
			"scheduler: FCFS, SJF, LJF, EASY, dynP/simple, dynP/advanced, dynP/<POLICY>-preferred")
		timescale = flag.Int64("timescale", 0,
			"real-time mode: virtual seconds per wall-clock second (0 = virtual clock via 'tick')")
		journalPath = flag.String("journal", "",
			"write-ahead event journal; an existing journal is replayed on startup, restoring pre-crash state")
		journalKeep = flag.Int("journal-keep", -1,
			"rotated journal segments to retain past the newest checkpoint (-1 = keep all, preserving full-history audit)")
		journalCkpt = flag.Int("journal-checkpoint", 0,
			"cut a checkpoint and rotate the journal every N events (0 = default interval)")
		replayMode = flag.String("replay-mode", "fast",
			"journal recovery: 'fast' restores from the newest valid checkpoint, 'genesis' replays the full history and verifies every checkpoint")
		diskFault = flag.String("disk-fault", "",
			"inject seeded disk faults into the journal (testing): e.g. seed=7,writefail=0.01,short=0.02,bitflip=0,syncfail=0.005,rename=0")
		idleTimeout = flag.Duration("idle-timeout", 0,
			"drop client connections idle longer than this (0 = keep forever)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second,
			"per-response write deadline; a stalled client is disconnected (0 = none)")
		maxConns = flag.Int("max-conns", 0,
			"connection cap: beyond it reads are shed, beyond twice it connections are refused (0 = unlimited)")
		readyMaxQueue = flag.Int("ready-max-queue", 0,
			"report not-ready when more than this many jobs are waiting (0 = no watermark)")
		quoteWorkers = flag.Int("quote-workers", rms.DefaultQuoteWorkers,
			"concurrent digital-twin simulations for the 'quote' op (0 disables quotes)")
		quoteMax = flag.Int("quote-max", 0,
			"quotes in flight before shedding with busy (0 = 4x -quote-workers, negative sheds all)")
		quoteSpeculate = flag.Bool("quote-speculate", false,
			"speculative cross-event planning inside quote twins (identical quotes, lower latency with spare cores)")
		traceLen = flag.Int("trace", 512,
			"engine event trace: ring-buffer length backing the 'trace' and 'metrics' ops (0 = disabled)")
	)
	flag.Parse()

	spec, err := dynp.ParseSchedulerSpec(*scheduler)
	fail(err)
	sched, err := rms.New(*procs, spec.New(), 0)
	fail(err)
	// The quote service forks twins from the same spec the live driver
	// was built from, so twin decisions replay the live tuner's exactly.
	if *quoteWorkers > 0 {
		fail(sched.EnableQuotes(spec.New))
		sched.SetQuoteSpeculation(*quoteSpeculate)
	}

	// Attach the engine observer before journal replay so the trace and
	// metrics cover the replayed history too, exactly as if the daemon
	// had never crashed.
	var trace *rms.EventTrace
	if *traceLen > 0 {
		trace = rms.NewEventTrace(*traceLen)
		sched.AddObserver(trace)
	}

	// Listen before replay: health and ready are served immediately, so
	// orchestrators can distinguish "recovering" from "dead" while a long
	// journal replays. Everything else is refused until SetReady(true).
	server := rms.NewServer(sched, *timescale == 0)
	server.IdleTimeout = *idleTimeout
	server.WriteTimeout = *writeTimeout
	server.MaxConns = *maxConns
	server.ReadyMaxQueue = *readyMaxQueue
	server.QuoteWorkers = *quoteWorkers
	server.QuoteMax = *quoteMax
	server.Trace = trace
	server.SetReady(false)
	bound, err := server.Listen(*addr)
	fail(err)
	if *addrFile != "" {
		fail(os.WriteFile(*addrFile, []byte(bound.String()+"\n"), 0o644))
	}

	if *journalPath != "" {
		fsys := vfs.FS(vfs.OS)
		if *diskFault != "" {
			cfg, err := vfs.ParseFaultConfig(*diskFault)
			fail(err)
			fsys = vfs.NewFaulty(vfs.OS, cfg)
			fmt.Fprintf(os.Stderr, "dynpd: journal disk-fault injection active (%s)\n", *diskFault)
		}
		journal, err := rms.OpenJournalFS(fsys, *journalPath)
		fail(err)
		journal.SetKeep(*journalKeep)
		if *journalCkpt > 0 {
			journal.SetSnapshotEvery(*journalCkpt)
		}
		var replayed int
		switch *replayMode {
		case "fast":
			replayed, err = journal.Replay(sched)
		case "genesis":
			replayed, err = journal.ReplayGenesis(sched)
		default:
			err = fmt.Errorf("unknown -replay-mode %q (want fast or genesis)", *replayMode)
		}
		fail(err)
		if replayed > 0 {
			fmt.Fprintf(os.Stderr, "dynpd: replayed %d events from %s (%s), resuming at t=%d\n",
				replayed, *journalPath, *replayMode, sched.Now())
		}
		fail(sched.SetJournal(journal))
		defer journal.Close()
	}

	server.SetReady(true)
	fmt.Fprintf(os.Stderr, "dynpd: %s scheduling %d processors on %s (clock: %s)\n",
		spec.Name, *procs, bound, clockMode(*timescale))

	stopTicker := make(chan struct{})
	if *timescale > 0 {
		go func() {
			// A replayed journal resumes mid-history: offset the wall
			// clock so time continues from the restored instant instead
			// of trying to advance backwards to zero.
			base := sched.Now()
			start := time.Now()
			ticker := time.NewTicker(250 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stopTicker:
					return
				case <-ticker.C:
					virtual := base + int64(time.Since(start).Seconds()*float64(*timescale))
					if err := sched.Advance(virtual); err != nil {
						fmt.Fprintf(os.Stderr, "dynpd: clock: %v\n", err)
					}
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	close(stopTicker)
	fail(server.Close())
	st := sched.Status()
	fmt.Fprintf(os.Stderr, "dynpd: shut down at t=%d, %d finished, %d running, %d waiting\n",
		st.Now, st.Finished, len(st.Running), len(st.Waiting))
}

func clockMode(scale int64) string {
	if scale == 0 {
		return "virtual, client-driven ticks"
	}
	return fmt.Sprintf("real time x%d", scale)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynpd:", err)
		os.Exit(1)
	}
}
