// Command wlgen generates synthetic job sets from the calibrated trace
// models and writes them in Standard Workload Format, so they can be
// inspected, archived, or replayed by other simulators.
//
// Examples:
//
//	wlgen -trace CTC -jobs 10000 > ctc-set00.swf
//	wlgen -trace SDSC -jobs 10000 -sets 10 -out /tmp/sdsc
//	wlgen -trace KTH -shrink 0.7 > kth-heavy.swf
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dynp"
)

func main() {
	var (
		trace  = flag.String("trace", "CTC", "trace model: CTC, KTH, LANL or SDSC")
		jobs   = flag.Int("jobs", 10000, "jobs per set")
		sets   = flag.Int("sets", 1, "number of independent sets")
		seed   = flag.Uint64("seed", 2004, "base random seed")
		shrink = flag.Float64("shrink", 1.0, "shrinking factor applied to submission times")
		outDir = flag.String("out", "", "output directory (default: stdout, single set only)")
	)
	flag.Parse()

	m, err := dynp.ModelByName(*trace)
	fail(err)
	if *sets > 1 && *outDir == "" {
		fail(fmt.Errorf("multiple sets need -out"))
	}

	all, err := m.GenerateSets(*sets, *jobs, *seed)
	fail(err)
	for k, set := range all {
		if *shrink != 1.0 {
			set = set.Shrink(*shrink)
		}
		if *outDir == "" {
			fail(dynp.WriteSWF(os.Stdout, set))
			continue
		}
		fail(os.MkdirAll(*outDir, 0o755))
		name := filepath.Join(*outDir, fmt.Sprintf("%s-set%02d.swf", m.Name, k))
		f, err := os.Create(name)
		fail(err)
		err = dynp.WriteSWF(f, set)
		cerr := f.Close()
		fail(err)
		fail(cerr)
		fmt.Fprintf(os.Stderr, "wrote %s (%d jobs)\n", name, len(set.Jobs))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}
