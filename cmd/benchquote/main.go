// Command benchquote measures the digital-twin quote service and its
// isolation promise: it loads a quote-enabled scheduler with a
// deterministic mix of running and waiting jobs, then times (a) a quote
// itself and (b) a mutator round trip with and without four quote
// goroutines hammering the scheduler. The measurements land in a JSON
// snapshot (BENCH_quote.json) so CI can fail the build if quotes ever
// start blocking mutators.
//
//	benchquote -out BENCH_quote.json
//	benchquote -check BENCH_quote.json   # compare a fresh run against a baseline
//
// Absolute nanoseconds vary with the machine, so -check gates on the
// machine-neutral mutator inflation — loaded-over-idle mutator latency.
// Quotes never take the scheduling lock, so concurrent quote load may
// cost mutators CPU time but must never cost them the lock: inflation
// beyond the allowance means the isolation broke (a quote path acquired
// the mutator lock, or twins stopped being forked from snapshots).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"dynp/internal/benchgate"
	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/rms"
	"dynp/internal/sim"
)

const (
	capacity = 64
	// quoters is the concurrent quote load applied while re-measuring the
	// mutator — matching the server's default quote-worker count.
	quoters = 4
	// inflationAllowance always passes: concurrent quotes sharing CPU with
	// a mutator legitimately cost it some latency, and small runners
	// oversubscribe. Beyond it the gate engages.
	inflationAllowance = 3.0
	// maxRegression is how far inflation may exceed its baseline once past
	// the allowance. Contention measurements are noisy, so the tolerance
	// is looser than the throughput benchmarks'.
	maxRegression = 0.5
)

type snapshot struct {
	GoMaxProcs      int   `json:"gomaxprocs"`
	Capacity        int   `json:"capacity"`
	LiveJobs        int   `json:"live_jobs"`
	QuoteNsPerOp    int64 `json:"quote_ns_per_op"`
	MutatorNsIdle   int64 `json:"mutator_ns_idle"`
	MutatorNsLoaded int64 `json:"mutator_ns_loaded"`
	// Inflation is loaded-over-idle mutator latency — the isolation gate.
	Inflation float64 `json:"inflation"`
	// QuoteOverMutator is quote cost relative to a mutator round trip on
	// the same machine (informational; a twin run is a full forward
	// simulation and is expected to dwarf one lock round trip).
	QuoteOverMutator float64 `json:"quote_over_mutator"`
}

func main() {
	out := flag.String("out", "BENCH_quote.json", "output file ('-' for stdout)")
	check := flag.String("check", "", "baseline BENCH_quote.json to compare a fresh run against (no output written)")
	flag.Parse()

	if *check != "" {
		raw, err := os.ReadFile(*check)
		fail(err)
		var base snapshot
		fail(json.Unmarshal(raw, &base))
		fail(benchgate.PinProcs("benchquote", base.GoMaxProcs))
		os.Exit(compare(base, measure()))
	}

	snap := measure()
	enc, err := json.MarshalIndent(snap, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fail(err)
}

// loadedScheduler builds the quote-enabled measurement fixture: a
// deterministic mid-drain state with the machine busy and a queue deep
// enough that every quote simulates real future scheduling.
func loadedScheduler() (*rms.Scheduler, int) {
	factory := func() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) }
	s, err := rms.New(capacity, factory(), 0)
	fail(err)
	fail(s.EnableQuotes(factory))

	rng := uint64(0xC0FFEE)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	now := int64(0)
	for i := 0; i < 40; i++ {
		subs := make([]rms.Submission, 1+next(3))
		for k := range subs {
			subs[k] = rms.Submission{Width: 1 + next(16), Estimate: int64(60 + next(600))}
		}
		now += int64(5 + next(40))
		if _, err := s.Deliver(now, nil, subs); err != nil {
			fail(err)
		}
	}
	st := s.Status()
	return s, len(st.Running) + len(st.Waiting)
}

func measure() snapshot {
	s, live := loadedScheduler()

	quoteRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Quote(4, 300, 1); err != nil {
				fail(err)
			}
		}
	})

	// The mutator unit is a submit/retract round trip: two journal-free
	// lock acquisitions plus a replan, leaving the fixture's live set
	// unchanged for the next iteration. The job is cancelled if it
	// queued, completed if free processors let it start immediately.
	mutate := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			info, err := s.Submit(1, 100)
			if err != nil {
				fail(err)
			}
			if info.State == rms.StateWaiting {
				err = s.Cancel(info.ID)
			} else {
				_, err = s.Complete(info.ID)
			}
			if err != nil {
				fail(err)
			}
		}
	}
	idleRes := testing.Benchmark(mutate)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < quoters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.Quote(4, 300, 1); err != nil {
					fail(err)
				}
			}
		}()
	}
	loadedRes := testing.Benchmark(mutate)
	stop.Store(true)
	wg.Wait()
	if n := s.QuoteTwinsLive(); n != 0 {
		fail(fmt.Errorf("%d twins still checked out after measurement", n))
	}

	snap := snapshot{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Capacity:        capacity,
		LiveJobs:        live,
		QuoteNsPerOp:    quoteRes.NsPerOp(),
		MutatorNsIdle:   idleRes.NsPerOp(),
		MutatorNsLoaded: loadedRes.NsPerOp(),
	}
	if snap.MutatorNsIdle > 0 {
		snap.Inflation = float64(snap.MutatorNsLoaded) / float64(snap.MutatorNsIdle)
		snap.QuoteOverMutator = float64(snap.QuoteNsPerOp) / float64(snap.MutatorNsIdle)
	}
	fmt.Fprintf(os.Stderr, "benchquote: %d live jobs on %d processors, %d quote goroutines\n",
		snap.LiveJobs, snap.Capacity, quoters)
	fmt.Fprintf(os.Stderr, "benchquote: quote           %12d ns/op\n", snap.QuoteNsPerOp)
	fmt.Fprintf(os.Stderr, "benchquote: mutator idle    %12d ns/op\n", snap.MutatorNsIdle)
	fmt.Fprintf(os.Stderr, "benchquote: mutator loaded  %12d ns/op\n", snap.MutatorNsLoaded)
	fmt.Fprintf(os.Stderr, "benchquote: inflation %.2fx, quote/mutator %.1fx\n",
		snap.Inflation, snap.QuoteOverMutator)
	return snap
}

func compare(base, fresh snapshot) int {
	// Inflation under the allowance always passes; beyond it, it may not
	// exceed the baseline by more than the regression tolerance. Lower is
	// better here, so the limit is the LOOSER of the two — the allowance
	// exists precisely because CPU-sharing noise is legitimate.
	limit := inflationAllowance
	if b := base.Inflation * (1 + maxRegression); b > limit {
		limit = b
	}
	status := "ok"
	exit := 0
	if fresh.Inflation > limit {
		status = "REGRESSION (quotes are costing mutators more than CPU)"
		exit = 1
	}
	fmt.Fprintf(os.Stderr, "benchquote: mutator inflation under quote load %.2fx (limit %.2fx): %s\n",
		fresh.Inflation, limit, status)
	return exit
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchquote:", err)
		os.Exit(1)
	}
}
