// Command benchscale measures how the scheduler's throughput scales with
// cores and writes the measurements as a JSON snapshot (BENCH_scale.json)
// so CI can fail on multi-core scaling regressions. Three families of
// rows, each at GOMAXPROCS 1, 2, 4 and all cores (deduplicated):
//
//   - experiment: the (shrink, scheduler, set) sweep of internal/
//     experiment on the work-stealing shard pool — end-to-end jobs/s of
//     the paper's evaluation harness;
//
//   - simpar: sim.RunParallel over independent replicas of one job set —
//     end-to-end jobs/s of the sharded simulator;
//
//   - planlat: one self-tuning Plan step with the tuner's candidate
//     builds fanned over SetWorkers(p) — the per-event planning latency
//     a single scheduling event pays (PR 1's parallel planning pool).
//
//     benchscale -out BENCH_scale.json
//     benchscale -check BENCH_scale.json   # compare a fresh run against a baseline
//
// Absolute jobs/s vary with the machine, so -check gates on
// machine-neutral ratios: each family's p-core-over-1-core speedup. The
// gate is hardware-aware — a ratio at p cores is enforced only when the
// machine actually has p cores (runtime.NumCPU), and only against
// baseline rows recorded on a machine that had them; rows beyond either
// machine's cores are recorded for trajectory tracking but never gated.
// On a >= 4-core machine the experiment sweep must additionally clear an
// absolute 2x floor at 4 cores, the PR's acceptance bar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"dynp/internal/core"
	"dynp/internal/experiment"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
	"dynp/internal/workload"
)

// row is one measurement: a named workload at one GOMAXPROCS setting.
type row struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"` // GOMAXPROCS and worker count of this row
	NsPerOp    int64   `json:"ns_per_op"`
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"` // throughput families only
}

// scalingRow is a derived row: how many times faster the family runs at
// Procs cores than at 1 core. This is what -check gates on.
type scalingRow struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs"`
	Ratio float64 `json:"ratio"` // 1-core ns / p-core ns
}

type snapshot struct {
	NumCPU  int          `json:"numcpu"` // cores of the recording machine; bounds which ratios are gateable
	Note    string       `json:"note"`
	Rows    []row        `json:"rows"`
	Scaling []scalingRow `json:"scaling"`
}

const (
	// The experiment sweep: enough independent cells that every worker
	// count divides into real work, small enough to finish in seconds.
	expSets, expJobsPerSet = 8, 300
	expShrink              = 0.8
	// The sim.RunParallel family: independent replicas of one set.
	simReplicas, simJobs = 8, 400
	// The planlat family: one planning event over a deep queue, where the
	// three candidate builds dominate and fanning them out can win.
	planQueue, planCapacity, planRunning = 1024, 128, 32
	// maxRegression is how far a scaling ratio may fall below its
	// baseline before -check fails the build.
	maxRegression = 0.10
	// floorProcs/floorRatio: on a machine with >= floorProcs cores the
	// experiment sweep must scale at least floorRatio x at floorProcs
	// cores regardless of the baseline file (the PR's acceptance bar).
	floorProcs = 4
	floorRatio = 2.0
)

// floorFamily is the end-to-end family the absolute floor applies to.
const floorFamily = "experiment"

func main() {
	out := flag.String("out", "BENCH_scale.json", "output file ('-' for stdout)")
	check := flag.String("check", "", "baseline BENCH_scale.json to compare a fresh run against (no output written)")
	flag.Parse()

	if *check != "" {
		raw, err := os.ReadFile(*check)
		fail(err)
		var base snapshot
		fail(json.Unmarshal(raw, &base))
		os.Exit(compare(base, measure()))
	}

	snap := measure()
	enc, err := json.MarshalIndent(snap, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fail(err)
}

// procSteps returns the deduplicated, ascending GOMAXPROCS settings to
// measure: 1, 2, 4 and every core the machine has. Settings beyond
// NumCPU are still measured — time-sliced, they cannot speed up, and the
// snapshot records NumCPU so -check knows not to gate them.
func procSteps() []int {
	steps := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var out []int
	for p := range steps {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func measure() snapshot {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore on exit
	snap := snapshot{
		NumCPU: runtime.NumCPU(),
		Note: "end-to-end multi-core scaling of the sharded paths: the " +
			"experiment sweep and sim.RunParallel on the internal/shard " +
			"work-stealing pool, and the tuner's parallel candidate " +
			"planning (plan latency, lower is better). Ratios beyond " +
			"numcpu record time-slicing overhead, not scaling; -check " +
			"gates only ratios both machines have the cores for.",
	}

	// Shrink rescales submit times but never drops jobs, so the sweep
	// simulates exactly sets x jobs x schedulers jobs per iteration.
	const expTotal = expSets * expJobsPerSet

	one, err := workload.KTH.GenerateSets(1, simJobs, 2)
	fail(err)
	shrunk := one[0].Shrink(expShrink)
	replicas := make([]*job.Set, simReplicas)
	for i := range replicas {
		replicas[i] = shrunk
	}

	for _, procs := range procSteps() {
		runtime.GOMAXPROCS(procs)

		// experiment: the full sweep, workers = procs. Two schedulers so
		// the task list mixes cheap and expensive cells, the shape the
		// strided shard pool is built for.
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := experiment.Run(experiment.Config{
					Model:      workload.KTH,
					Shrinks:    []float64{expShrink},
					Sets:       expSets,
					JobsPerSet: expJobsPerSet,
					Seed:       1,
					Workers:    procs,
					Schedulers: []experiment.SchedulerSpec{
						experiment.StaticSpec(policy.SJF),
						experiment.DynPSpec(core.Advanced{}),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		snap.Rows = append(snap.Rows, throughputRow("experiment", procs, res.NsPerOp(), 2*expTotal))

		// simpar: independent replicas of one contended set.
		res = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunParallel(replicas, func() sim.Driver { return sim.NewDynP(core.Advanced{}) }, procs); err != nil {
					b.Fatal(err)
				}
			}
		})
		snap.Rows = append(snap.Rows, throughputRow("simpar", procs, res.NsPerOp(), simReplicas*len(shrunk.Jobs)))

		// planlat: one self-tuning step, candidate builds fanned over
		// procs workers. The queue churns every iteration so the memo
		// fast path never hides the build cost.
		running, waiting := planState()
		res = testing.Benchmark(func(b *testing.B) {
			st := core.NewSelfTuner(nil, core.Advanced{}, core.MetricSLDwA)
			st.SetWorkers(procs)
			w := append([]*job.Job(nil), waiting...)
			nextID := job.ID(100 + len(w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				old := w[i%len(w)]
				w[i%len(w)] = &job.Job{
					ID: nextID, Submit: old.Submit,
					Width: old.Width, Estimate: old.Estimate, Runtime: old.Runtime,
				}
				nextID++
				st.Plan(1000, planCapacity, running, w)
			}
		})
		r := row{Name: "planlat", Procs: procs, NsPerOp: res.NsPerOp()}
		fmt.Fprintf(os.Stderr, "%-12s procs %2d  %12d ns/op\n", r.Name, r.Procs, r.NsPerOp)
		snap.Rows = append(snap.Rows, r)
	}

	snap.Scaling = scaling(snap.Rows)
	for _, s := range snap.Scaling {
		fmt.Fprintf(os.Stderr, "%-12s procs %2d  scaling %.2fx\n", s.Name, s.Procs, s.Ratio)
	}
	return snap
}

func throughputRow(name string, procs int, nsPerOp int64, jobs int) row {
	r := row{
		Name: name, Procs: procs, NsPerOp: nsPerOp,
		JobsPerSec: float64(jobs) / (float64(nsPerOp) / 1e9),
	}
	fmt.Fprintf(os.Stderr, "%-12s procs %2d  %12d ns/op  %10.0f jobs/s\n", r.Name, r.Procs, r.NsPerOp, r.JobsPerSec)
	return r
}

// planState builds the deterministic deep-queue planning event the
// planlat family replans (mirrors cmd/benchplan's state).
func planState() ([]plan.Running, []*job.Job) {
	r := rng.New(5)
	running := make([]plan.Running, planRunning)
	for i := range running {
		running[i] = plan.Running{
			Job: &job.Job{
				ID: job.ID(i + 1), Submit: 0,
				Width: 1 + r.Intn(4), Estimate: int64(1000 + r.Intn(20000)),
			},
			Start: 0,
		}
	}
	waiting := make([]*job.Job, planQueue)
	for i := range waiting {
		est := int64(1 + r.Intn(20000))
		waiting[i] = &job.Job{
			ID: job.ID(100 + i), Submit: int64(r.Intn(1000)),
			Width: 1 + r.Intn(planCapacity), Estimate: est, Runtime: est,
		}
	}
	return running, waiting
}

// scaling derives each family's 1-core-over-p-core time ratio (== p-core
// throughput gain; for planlat, latency reduction).
func scaling(rows []row) []scalingRow {
	oneCore := make(map[string]int64)
	for _, r := range rows {
		if r.Procs == 1 {
			oneCore[r.Name] = r.NsPerOp
		}
	}
	var out []scalingRow
	for _, r := range rows {
		if r.Procs == 1 || r.NsPerOp <= 0 || oneCore[r.Name] <= 0 {
			continue
		}
		out = append(out, scalingRow{
			Name: r.Name, Procs: r.Procs,
			Ratio: float64(oneCore[r.Name]) / float64(r.NsPerOp),
		})
	}
	return out
}

// compare gates a fresh run against the baseline: every gateable scaling
// ratio must hold to within maxRegression of its baseline, and the
// experiment family must clear the absolute floor at 4 cores when the
// machine has them. A ratio is gateable when this machine has the cores
// (procs <= fresh numcpu); the baseline ratio participates only when the
// recording machine had them too, otherwise the floor alone applies.
func compare(base, fresh snapshot) int {
	baseline := make(map[string]float64)
	for _, s := range base.Scaling {
		baseline[fmt.Sprintf("%s/%d", s.Name, s.Procs)] = s.Ratio
	}
	bad := 0
	for _, s := range fresh.Scaling {
		key := fmt.Sprintf("%s/%d", s.Name, s.Procs)
		if s.Procs > fresh.NumCPU {
			fmt.Fprintf(os.Stderr, "benchscale: %-16s scaling %.2fx (not gated: this machine has %d cores)\n",
				key, s.Ratio, fresh.NumCPU)
			continue
		}
		limit := 0.0
		if b, ok := baseline[key]; ok && s.Procs <= base.NumCPU {
			limit = b * (1 - maxRegression)
		} else {
			fmt.Fprintf(os.Stderr, "benchscale: %s: baseline recorded on a %d-core machine, floor only\n",
				key, base.NumCPU)
		}
		if s.Name == floorFamily && s.Procs == floorProcs && limit < floorRatio {
			limit = floorRatio
		}
		status := "ok"
		if s.Ratio < limit {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "benchscale: %-16s scaling %.2fx (limit %.2fx): %s\n", key, s.Ratio, limit, status)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchscale: %d scaling regression(s) beyond %.0f%%\n", bad, maxRegression*100)
		return 1
	}
	return 0
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscale:", err)
		os.Exit(1)
	}
}
