package dynp_test

// End-to-end acceptance of the open registries: a custom policy and a
// custom stateful decider, registered exclusively through the public
// dynp facade, drive (1) a plain simulation, (2) the experiment sweep,
// and (3) an online dynpd-style scheduler across a journal write,
// process "restart" and replay — with the tuner's registry-named state
// restored intact.

import (
	"encoding/json"
	"strings"
	"testing"

	"dynp"
	"dynp/internal/rms"
)

// widestFirst is the custom policy: widest job first, facade tie-break.
type widestFirst struct{}

func (widestFirst) Name() string { return "WIDEST" }
func (widestFirst) Less(a, b *dynp.Job) bool {
	if a.Width != b.Width {
		return a.Width > b.Width
	}
	return dynp.TieBreak(a, b)
}

// switchCounter is the custom decider: advanced decisions, counting how
// often the choice changes the active policy — state that must survive
// a journal restart.
type switchCounter struct {
	inner    dynp.Decider
	Switches int `json:"switches"`
}

func newSwitchCounter() *switchCounter {
	return &switchCounter{inner: dynp.AdvancedDecider()}
}

func (d *switchCounter) Name() string { return "switch-counter" }

func (d *switchCounter) Decide(old dynp.Policy, candidates []dynp.Policy, values []float64) dynp.Policy {
	chosen := d.inner.Decide(old, candidates, values)
	if chosen != old {
		d.Switches++
	}
	return chosen
}

func (d *switchCounter) SaveState() ([]byte, error)     { return json.Marshal(d) }
func (d *switchCounter) RestoreState(data []byte) error { return json.Unmarshal(data, d) }

// registerE2E registers both extensions once; idempotent re-registration
// of the identical policy value is allowed, and the decider registry is
// only fed on the first call.
func registerE2E(t *testing.T) {
	t.Helper()
	if err := dynp.RegisterPolicy(widestFirst{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dynp.NewDecider("switch-counter"); err != nil {
		if err := dynp.RegisterDecider("switch-counter", func() dynp.Decider {
			return newSwitchCounter()
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestE2ERegisteredPolicyAndDeciderSimulate(t *testing.T) {
	registerE2E(t)

	// The registered policy resolves by name and schedules a run.
	p, err := dynp.ParsePolicy("WIDEST")
	if err != nil {
		t.Fatal(err)
	}
	set, err := dynp.KTH.Generate(400, dynp.NewStream(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynp.Simulate(set, dynp.NewStaticScheduler(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "WIDEST" || len(res.Records) != len(set.Jobs) {
		t.Fatalf("scheduler %q, %d records", res.Scheduler, len(res.Records))
	}

	// The registered decider resolves by name and self-tunes a run.
	d, err := dynp.NewDecider("switch-counter")
	if err != nil {
		t.Fatal(err)
	}
	res, err = dynp.Simulate(set, dynp.NewDynPScheduler(d))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Scheduler, "switch-counter") {
		t.Fatalf("scheduler %q", res.Scheduler)
	}
	if d.(*switchCounter).Switches == 0 {
		t.Fatal("custom decider never observed a policy switch")
	}
}

func TestE2ERegisteredExtensionsInSweep(t *testing.T) {
	registerE2E(t)

	staticSpec, err := dynp.ParseSchedulerSpec("WIDEST")
	if err != nil {
		t.Fatal(err)
	}
	dynPSpec, err := dynp.ParseSchedulerSpec("dynP/switch-counter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynp.RunExperiment(dynp.ExperimentConfig{
		Model:      dynp.KTH,
		Shrinks:    []float64{1.0, 0.8},
		Sets:       2,
		JobsPerSet: 150,
		Seed:       5,
		Schedulers: []dynp.SchedulerSpec{staticSpec, dynPSpec},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []string{"WIDEST", "dynP/switch-counter"} {
		for _, f := range []float64{1.0, 0.8} {
			c := res.Cell(f, sched)
			if c == nil {
				t.Fatalf("no cell for %s at shrink %.1f", sched, f)
			}
			if c.SLDwA < 1 {
				t.Errorf("%s shrink %.1f: SLDwA %f", sched, f, c.SLDwA)
			}
		}
	}
}

func TestE2ERegisteredExtensionsSurviveJournalRestart(t *testing.T) {
	registerE2E(t)

	d, err := dynp.NewDecider("switch-counter")
	if err != nil {
		t.Fatal(err)
	}
	// Candidate set includes the custom policy, so checkpoints serialize
	// its registry name in tuner state and plan records.
	p, err := dynp.ParsePolicy("WIDEST")
	if err != nil {
		t.Fatal(err)
	}
	newDriver := func(dec dynp.Decider) dynp.Scheduler {
		return dynp.NewDynPSchedulerWith(
			[]dynp.Policy{dynp.FCFS, p, dynp.SJF}, dec, dynp.MetricSLDwA)
	}

	path := t.TempDir() + "/events.journal"
	j, err := rms.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSnapshotEvery(4)
	live, err := rms.New(16, newDriver(d), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	var ids []dynp.JobID
	for i := 0; i < 12; i++ {
		info, err := live.Submit(1+(i*5)%16, int64(40+i*17))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if err := live.Advance(90); err != nil {
		t.Fatal(err)
	}
	if err := live.Cancel(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	if err := live.Advance(200); err != nil {
		t.Fatal(err)
	}
	liveStatus, err := json.Marshal(live.Status())
	if err != nil {
		t.Fatal(err)
	}
	liveSwitches := d.(*switchCounter).Switches
	j.Close()

	// "Restart": a fresh process with the same registrations replays the
	// journal into a virgin scheduler.
	j2, err := rms.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	d2, err := dynp.NewDecider("switch-counter")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := rms.New(16, newDriver(d2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Replay(restored); err != nil {
		t.Fatalf("replay with registered extensions failed: %v", err)
	}
	restoredStatus, err := json.Marshal(restored.Status())
	if err != nil {
		t.Fatal(err)
	}
	if string(restoredStatus) != string(liveStatus) {
		t.Errorf("status diverges after restart\nlive:     %s\nrestored: %s",
			liveStatus, restoredStatus)
	}
	if got := d2.(*switchCounter).Switches; got != liveSwitches {
		t.Errorf("decider state: %d switches restored, live had %d", got, liveSwitches)
	}
	if liveSwitches == 0 {
		t.Error("fixture too tame: no policy switches happened before the restart")
	}
}
