// Package dynp is a library reproduction of the self-tuning dynP job
// scheduler and its decider mechanisms from
//
//	A. Streit, "Evaluation of an Unfair Decider Mechanism for the
//	Self-Tuning dynP Job Scheduler", IPPS/IPDPS 2004.
//
// dynP is a scheduler for planning-based resource management systems: at
// every scheduling event it computes a full schedule (a start time for
// every waiting job, with implicit backfilling) under each candidate
// policy — FCFS, SJF and LJF — scores the schedules with a performance
// metric, and lets a decider pick the policy to execute. The paper's
// contribution is the unfair "preferred" decider, which sticks to a
// designated policy unless another is strictly better and switches back as
// soon as the preferred policy merely equals the incumbent.
//
// The package is a facade over the implementation packages: the job model
// and workload generators, the availability-profile planner, the discrete
// event simulator, the deciders, the evaluation metrics and the experiment
// harness that regenerates every table and figure of the paper. A typical
// use:
//
//	set, _ := dynp.CTC.Generate(5000, dynp.NewStream(1))
//	res, _ := dynp.Simulate(set.Shrink(0.8), dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)))
//	fmt.Println(dynp.SLDwA(res), dynp.Utilization(res))
package dynp

import (
	"io"

	"dynp/internal/core"
	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/metrics"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
	"dynp/internal/swf"
	"dynp/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core model types.
type (
	// Job is a rigid parallel batch job (submit, width, estimate,
	// actual run time).
	Job = job.Job
	// JobID identifies a job within one set.
	JobID = job.ID
	// JobSet is a simulation input: a machine size plus jobs sorted by
	// submission time. Use Shrink to scale the offered load the way the
	// paper does.
	JobSet = job.Set
	// Policy is a waiting-queue ordering (FCFS, SJF, LJF, ...).
	Policy = policy.Policy
	// Stream is a deterministic random number stream.
	Stream = rng.Stream
)

// The built-in scheduling policies. Each is a singleton: every registry
// lookup of the name returns a value == the variable, so comparisons and
// map keys behave exactly as the pre-registry enum did.
var (
	FCFS = policy.FCFS // first come, first serve
	SJF  = policy.SJF  // shortest job first
	LJF  = policy.LJF  // longest job first
	SAF  = policy.SAF  // smallest area first (extension)
	LAF  = policy.LAF  // largest area first (extension)
)

// RegisterPolicy adds a custom policy to the registry under its Name, so
// string specs (experiment configs, CLI flags, journal checkpoints)
// resolve to it. Implementations must be comparable value types and Less
// must be a strict total order ending in the TieBreak fallback; see the
// Policy interface contract. Registration alone never perturbs
// scheduling — a registered-but-unused policy is never consulted.
func RegisterPolicy(p Policy) error { return policy.Register(p) }

// RegisterPolicyFamily adds a parameterized policy family: parse is
// offered every looked-up spec that matches no exact registration and
// reports whether it claims the spec. template is the display form shown
// in listings, e.g. "PSBS(a=<alpha>,r=<robust>)".
func RegisterPolicyFamily(template string, parse func(spec string) (Policy, bool, error)) error {
	return policy.RegisterFamily(template, parse)
}

// ParsePolicy resolves a policy name or family spec ("SJF",
// "PSBS(a=0.5,r=2)") through the registry. Unknown names return an error
// listing what is registered.
func ParsePolicy(name string) (Policy, error) { return policy.Lookup(name) }

// PolicyNames lists every registered policy name plus the templates of
// the registered families.
func PolicyNames() []string { return policy.Names() }

// TieBreak is the common final comparison every policy's Less must end
// in: submission time, then job ID. It makes any key-based ordering
// total.
func TieBreak(a, b *Job) bool { return policy.TieBreak(a, b) }

// NewFairSizePolicy returns the built-in PSBS-style fairness-aware
// size-based policy: jobs order by quantizedEstimatedArea +
// alpha*submitTime, where alpha (processors) controls fairness aging and
// robust >= 1 buckets areas to powers of robust so runtime-estimate
// error below that factor cannot reorder jobs. alpha = 0, robust = 1 is
// pure smallest-area-first; large alpha degenerates to FCFS. Specs like
// "PSBS(a=0.5,r=2)" resolve via ParsePolicy.
func NewFairSizePolicy(alpha, robust float64) (Policy, error) {
	return policy.NewFairSize(alpha, robust)
}

// NewStream returns a deterministic random stream for workload generation.
func NewStream(seed uint64) *Stream { return rng.New(seed) }

// Workload models calibrated to the paper's Table 2.
type Model = workload.Model

// The four trace models of the paper's evaluation.
var (
	CTC  = workload.CTC
	KTH  = workload.KTH
	LANL = workload.LANL
	SDSC = workload.SDSC
)

// Models returns the four trace models in the paper's order.
func Models() []Model { return workload.Models() }

// ModelByName looks up a trace model ("CTC", "KTH", "LANL", "SDSC").
func ModelByName(name string) (Model, error) { return workload.ByName(name) }

// Characteristics summarises a job set with the paper's Table 2 statistics.
type Characteristics = workload.Characteristics

// Characterize computes Table 2 statistics for a job set.
func Characterize(s *JobSet) Characteristics { return workload.Characterize(s) }

// PerfectEstimates returns a copy of the set where every estimate equals
// the actual run time — the upper bound of what better user estimates
// could buy.
func PerfectEstimates(s *JobSet) *JobSet { return workload.PerfectEstimates(s) }

// ScaleEstimates returns a copy with every estimate multiplied by factor
// (clamped below at the actual run time).
func ScaleEstimates(s *JobSet, factor float64) (*JobSet, error) {
	return workload.ScaleEstimates(s, factor)
}

// ConcatenateSets appends b after a with the given submission gap,
// building workloads with abrupt phase changes.
func ConcatenateSets(a, b *JobSet, gap int64) (*JobSet, error) {
	return workload.Concatenate(a, b, gap)
}

// Deciders.
type Decider = core.Decider

// SimpleDecider returns the three-if-then-else decider of the earlier dynP
// papers; Table 1 shows its four wrong decisions.
func SimpleDecider() Decider { return core.Simple{} }

// AdvancedDecider returns the fair decider implementing the "correct
// decision" column of the paper's Table 1.
func AdvancedDecider() Decider { return core.Advanced{} }

// PreferredDecider returns the paper's unfair decider with the given
// preferred policy (the paper evaluates SJF).
func PreferredDecider(p Policy) Decider { return core.Preferred{Policy: p} }

// NewDecider resolves a registered decider name: "simple", "advanced",
// "<POLICY>-preferred" (e.g. "SJF-preferred") or any name added with
// RegisterDecider.
func NewDecider(name string) (Decider, error) { return core.NewDecider(name) }

// StatefulDecider is a Decider whose internal state rides along in
// journal checkpoints (see the online RMS): SaveState/RestoreState are
// called by the self-tuner's checkpoint path, keyed by the decider's
// Name.
type StatefulDecider = core.StatefulDecider

// RegisterDecider adds a decider constructor under a fixed name, so
// string specs (CLI flags, daemon configs) resolve to it. The
// constructor runs once per NewDecider call — every scheduler gets a
// fresh instance, as stateful deciders require — and the constructed
// decider's Name must equal the registered name.
func RegisterDecider(name string, make func() Decider) error {
	return core.RegisterDecider(name, make)
}

// RegisterDeciderFamily adds a parameterized decider family, mirroring
// RegisterPolicyFamily.
func RegisterDeciderFamily(template string, parse func(spec string) (Decider, bool, error)) error {
	return core.RegisterDeciderFamily(template, parse)
}

// DeciderNames lists every registered decider name plus the templates of
// the registered families.
func DeciderNames() []string { return core.DeciderNames() }

// DecisionCase classifies one self-tuning decision into the case labels of
// the paper's Table 1 (see core.CaseOf for the partition used).
func DecisionCase(old Policy, fcfs, sjf, ljf float64) string {
	return core.CaseOf(old, fcfs, sjf, ljf)
}

// CaseCount is one row of a Table 1 case histogram over a decision trace.
type CaseCount = core.CaseCount

// ClassifyDecisions builds a Table 1 case histogram from a recorded
// decision trace, connecting the paper's static analysis to observed
// scheduler behaviour.
func ClassifyDecisions(trace []Decision) []CaseCount { return core.ClassifyTrace(trace) }

// DecisionMetric selects the score used to compare the what-if schedules
// of a self-tuning step.
type DecisionMetric = core.Metric

// The decision metrics; MetricSLDwA is the paper's choice.
const (
	MetricSLDwA    = core.MetricSLDwA
	MetricART      = core.MetricART
	MetricARTwW    = core.MetricARTwW
	MetricAWT      = core.MetricAWT
	MetricMakespan = core.MetricMakespan
)

// Schedulers and simulation.
type (
	// Scheduler plans the full schedule at every scheduling event.
	Scheduler = sim.Driver
	// Result is a completed simulation run.
	Result = sim.Result
	// Record is the outcome of a single job.
	Record = sim.Record
	// SelfTuner exposes the dynP self-tuning core for custom drivers.
	SelfTuner = core.SelfTuner
	// SelfTunerStats aggregates the decisions of one run (steps,
	// switches, per-policy choice counts).
	SelfTunerStats = core.Stats
	// Decision is one recorded self-tuning step (requires EnableTrace
	// on the tuner).
	Decision = core.Decision
)

// NewStaticScheduler returns a single-policy scheduler, the paper's
// baseline ("basic scheduling policies").
func NewStaticScheduler(p Policy) Scheduler { return &sim.Static{Policy: p} }

// NewDynPScheduler returns the self-tuning dynP scheduler with the given
// decider, the paper's candidate set {FCFS, SJF, LJF} and the paper's
// decision metric (planned SLDwA).
func NewDynPScheduler(d Decider) Scheduler { return sim.NewDynP(d) }

// NewDynPSchedulerWith returns a dynP scheduler with full control over the
// candidate policies and the decision metric, for ablation studies. A nil
// candidate slice selects the paper's set.
func NewDynPSchedulerWith(candidates []Policy, d Decider, m DecisionMetric) Scheduler {
	return sim.NewDynPWith(candidates, d, m)
}

// SetPlanningWorkers configures the number of goroutines a dynP scheduler
// uses to build and score its candidate what-if schedules at every
// self-tuning step: 1 (the default) keeps planning sequential, n <= 0
// selects all cores. The simulation outcome is identical for every worker
// count. Schedulers without a self-tuning core are returned unchanged.
func SetPlanningWorkers(s Scheduler, n int) Scheduler {
	if d, ok := s.(*sim.DynP); ok {
		d.SetWorkers(n)
	}
	return s
}

// NewEASYScheduler returns the queueing-based EASY-backfilling scheduler
// (one reservation for the queue head, aggressive backfilling behind it) —
// the classic contrast to planning-based scheduling discussed in reference
// [6] of the paper. The original EASY orders its queue FCFS.
func NewEASYScheduler(base Policy) Scheduler { return &sim.EASY{Base: base} }

// Simulate runs a job set to completion under the given scheduler.
func Simulate(set *JobSet, s Scheduler) (*Result, error) { return sim.Run(set, s) }

// SimulateMany runs several independent job sets concurrently on a
// work-stealing shard pool and returns the results in input order. Each
// run gets a fresh scheduler from newScheduler (schedulers carry tuner
// state); workers <= 0 selects all cores. Results are byte-identical to
// sequential Simulate calls with the same factory — the worker count
// decides only the wall clock. Repeated entries run independent replicas.
func SimulateMany(sets []*JobSet, newScheduler func() Scheduler, workers int) ([]*Result, error) {
	return sim.RunParallel(sets, newScheduler, workers)
}

// SimulateVerified additionally re-verifies every schedule against the
// machine state (slower; for debugging and tests).
func SimulateVerified(set *JobSet, s Scheduler) (*Result, error) {
	return sim.Run(set, s, sim.WithVerify())
}

// Structured observation: both the simulator and the online RMS run on
// one scheduling engine (internal/engine), which reports every
// transition — submissions, starts, completions, kills, and one plan
// event per scheduling step with queue depth, active policy, Table-1
// decision case and planning latency — to attached observers.
type (
	// EngineEvent is one observed scheduling-engine transition.
	EngineEvent = engine.Event
	// EngineEventKind classifies an EngineEvent.
	EngineEventKind = engine.EventKind
	// EngineObserver receives every engine transition, synchronously,
	// in order.
	EngineObserver = engine.Observer
	// SimOption configures a SimulateWith run.
	SimOption = sim.Option
)

// The engine event kinds.
const (
	EventSubmit       = engine.EventSubmit
	EventStart        = engine.EventStart
	EventFinish       = engine.EventFinish
	EventKill         = engine.EventKill
	EventJobFail      = engine.EventJobFail
	EventCancel       = engine.EventCancel
	EventProcsFail    = engine.EventProcsFail
	EventProcsRestore = engine.EventProcsRestore
	EventPlan         = engine.EventPlan
)

// ObserverFunc adapts a function to the EngineObserver interface.
func ObserverFunc(f func(EngineEvent)) EngineObserver { return engine.ObserverFunc(f) }

// WithObserver attaches an engine observer to a simulation run.
func WithObserver(o EngineObserver) SimOption { return sim.WithObserver(o) }

// WithVerify re-verifies every schedule against the machine state
// (slower; for debugging and tests).
func WithVerify() SimOption { return sim.WithVerify() }

// WithQueueProbe invokes probe after every scheduling event with the
// current time and waiting-queue length, for queue-dynamics analyses.
func WithQueueProbe(probe func(now int64, queued int)) SimOption {
	return sim.WithQueueProbe(probe)
}

// SimulateWith runs a job set to completion under the given scheduler
// with per-run options (observers, verification, queue probes).
func SimulateWith(set *JobSet, s Scheduler, opts ...SimOption) (*Result, error) {
	return sim.Run(set, s, opts...)
}

// Evaluation metrics (paper, Section 4.1).

// SLDwA returns the average slowdown weighted by job area.
func SLDwA(r *Result) float64 { return metrics.SLDwA(r) }

// BoundedSLDwA returns the area-weighted bounded slowdown with threshold
// tau seconds (the paper cites tau = 60).
func BoundedSLDwA(r *Result, tau int64) float64 { return metrics.BoundedSLDwA(r, tau) }

// Utilization returns the machine utilization in [0, 1].
func Utilization(r *Result) float64 { return metrics.Utilization(r) }

// ART returns the average response time in seconds.
func ART(r *Result) float64 { return metrics.ART(r) }

// ARTwW returns the average response time weighted by job width.
func ARTwW(r *Result) float64 { return metrics.ARTwW(r) }

// AWT returns the average waiting time in seconds.
func AWT(r *Result) float64 { return metrics.AWT(r) }

// SWF trace interchange.

// SWFReadOptions controls ReadSWF.
type SWFReadOptions = swf.ReadOptions

// ReadSWF parses a Standard Workload Format trace (Parallel Workloads
// Archive) into a job set.
func ReadSWF(r io.Reader, opts SWFReadOptions) (*JobSet, error) { return swf.Read(r, opts) }

// WriteSWF emits a job set in Standard Workload Format.
func WriteSWF(w io.Writer, set *JobSet) error { return swf.Write(w, set) }
