package dynp_test

import (
	"fmt"

	"dynp"
)

// ExampleSimulate runs a tiny hand-built workload under the paper's
// headline scheduler and reports the two evaluation metrics.
func ExampleSimulate() {
	set := &dynp.JobSet{
		Name:    "tiny",
		Machine: 4,
		Jobs: []*dynp.Job{
			{ID: 1, Submit: 0, Width: 4, Estimate: 100, Runtime: 100},
			{ID: 2, Submit: 10, Width: 2, Estimate: 200, Runtime: 150},
			{ID: 3, Submit: 20, Width: 2, Estimate: 50, Runtime: 50},
		},
	}
	res, err := dynp.Simulate(set, dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("SLDwA %.3f, utilization %.1f%%\n", dynp.SLDwA(res), 100*dynp.Utilization(res))
	// Output:
	// SLDwA 1.425, utilization 80.0%
}

// ExamplePreferredDecider shows the paper's unfair decision rule in
// isolation: the preferred policy wins ties, but a strictly better policy
// still takes over.
func ExamplePreferredDecider() {
	d := dynp.PreferredDecider(dynp.SJF)
	candidates := []dynp.Policy{dynp.FCFS, dynp.SJF, dynp.LJF}

	// SJF merely ties FCFS: the preferred policy is (re)chosen.
	fmt.Println(d.Decide(dynp.FCFS, candidates, []float64{2.0, 2.0, 3.0}))
	// FCFS is strictly better: the decider lets go of SJF.
	fmt.Println(d.Decide(dynp.SJF, candidates, []float64{1.0, 2.0, 3.0}))
	// Output:
	// SJF
	// FCFS
}

// ExampleJobSet_Shrink demonstrates the paper's workload scaling: factors
// below one compress the arrival process without changing the jobs.
func ExampleJobSet_Shrink() {
	set := &dynp.JobSet{Name: "s", Machine: 1, Jobs: []*dynp.Job{
		{ID: 1, Submit: 0, Width: 1, Estimate: 10, Runtime: 10},
		{ID: 2, Submit: 1000, Width: 1, Estimate: 10, Runtime: 10},
	}}
	heavier := set.Shrink(0.6)
	fmt.Println(heavier.Jobs[1].Submit)
	// Output:
	// 600
}

// ExampleModel_Generate synthesises a calibrated workload and prints a
// Table 2 style statistic.
func ExampleModel_Generate() {
	set, err := dynp.LANL.Generate(1000, dynp.NewStream(7))
	if err != nil {
		panic(err)
	}
	c := dynp.Characterize(set)
	// LANL/CM-5 widths are powers of two between 32 and 1024.
	fmt.Println(int(c.Width.Min), int(c.Width.Max))
	// Output:
	// 32 1024
}
