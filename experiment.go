package dynp

import (
	"dynp/internal/adaptive"
	"dynp/internal/experiment"
	"dynp/internal/table"
)

// Experiment harness re-exports: sweeps over shrinking factors, job sets
// and schedulers, aggregated with the paper's drop-min/max rule, plus the
// builders for every table and figure of the evaluation section.
type (
	// ExperimentConfig describes one trace's sweep.
	ExperimentConfig = experiment.Config
	// ExperimentResult is a completed sweep for one trace.
	ExperimentResult = experiment.Result
	// ExperimentCell is one (shrink, scheduler) aggregate.
	ExperimentCell = experiment.Cell
	// SchedulerSpec names a scheduler and builds fresh instances.
	SchedulerSpec = experiment.SchedulerSpec
	// Table is an aligned text table.
	Table = table.Table
	// Figure is a set of data series standing in for a paper plot.
	Figure = table.Figure
	// Series is one curve of a Figure.
	Series = table.Series
)

// RunExperiment executes one trace's sweep.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiment.Run(cfg)
}

// RunExperiments sweeps several traces with a shared configuration.
func RunExperiments(models []Model, cfg ExperimentConfig) ([]*ExperimentResult, error) {
	return experiment.RunAll(models, cfg)
}

// Ablation identifies one of the design-choice studies (see DESIGN.md).
type Ablation = experiment.Ablation

// The ablation studies.
const (
	AblationPreferred  = experiment.AblationPreferred
	AblationDecider    = experiment.AblationDecider
	AblationMetric     = experiment.AblationMetric
	AblationQueueing   = experiment.AblationQueueing
	AblationCandidates = experiment.AblationCandidates
)

// Ablations lists all implemented ablation studies.
func Ablations() []Ablation { return experiment.Ablations() }

// ComparisonTable renders a generic scheduler comparison over sweep
// results (used by the ablation studies).
func ComparisonTable(title string, results []*ExperimentResult, shrinks []float64, schedulers []string) *Table {
	return experiment.Comparison(title, results, shrinks, schedulers)
}

// StaticSpec returns the spec of a basic single-policy scheduler.
func StaticSpec(p Policy) SchedulerSpec { return experiment.StaticSpec(p) }

// EASYSpec returns the spec of the queueing-based EASY baseline.
func EASYSpec(base Policy) SchedulerSpec { return experiment.EASYSpec(base) }

// DynPSpec returns the spec of a dynP scheduler with the given decider.
func DynPSpec(d Decider) SchedulerSpec { return experiment.DynPSpec(d) }

// ParseSchedulerSpec parses "FCFS", "dynP/advanced", "dynP/SJF-preferred"
// and the like.
func ParseSchedulerSpec(name string) (SchedulerSpec, error) { return experiment.ParseSpec(name) }

// PaperSchedulers returns the paper's five evaluated schedulers.
func PaperSchedulers() []SchedulerSpec { return experiment.PaperSchedulers() }

// PaperShrinks returns the paper's shrinking factors 1.0..0.6.
func PaperShrinks() []float64 { return experiment.PaperShrinks() }

// PaperTable1 renders the decision analysis of the simple decider.
func PaperTable1() *Table { return experiment.Table1() }

// PaperTable2 renders generated job set properties against the paper's
// published trace statistics.
func PaperTable2(models []Model, jobs int, seed uint64) (*Table, error) {
	return experiment.Table2(models, jobs, seed)
}

// PaperTable3 condenses Table 5 into per-trace averages.
func PaperTable3(results []*ExperimentResult, shrinks []float64) *Table {
	return experiment.Table3(results, shrinks)
}

// PaperTable4 renders the basic-policy numbers behind Figures 1 and 2.
func PaperTable4(results []*ExperimentResult, shrinks []float64) *Table {
	return experiment.Table4(results, shrinks)
}

// PaperTable5 renders the dynP numbers behind Figures 3 and 4, with
// differences to SJF.
func PaperTable5(results []*ExperimentResult, shrinks []float64) *Table {
	return experiment.Table5(results, shrinks)
}

// PaperFigure assembles figure 1-4 data series (one Figure per trace).
func PaperFigure(results []*ExperimentResult, number int, shrinks []float64) ([]*Figure, error) {
	return experiment.Figure(results, number, shrinks)
}

// DetailTable renders per-set dispersion (min/max/stddev over job sets)
// behind the aggregated numbers.
func DetailTable(results []*ExperimentResult, shrinks []float64) *Table {
	return experiment.Detail(results, shrinks)
}

// PolicySharesTable renders, for one dynP scheduler, how the simulated
// time splits across the candidate policies per trace and shrinking
// factor (plus mean switch counts).
func PolicySharesTable(results []*ExperimentResult, shrinks []float64, scheduler string) *Table {
	return experiment.PolicyShares(results, shrinks, scheduler)
}

// FairnessResult is a completed fairness (estimate-robustness) study for
// one trace.
type FairnessResult = experiment.FairnessResult

// NewAdaptiveDecider returns the observer-driven adaptive decider shell:
// the advanced rule while calm, the unfair preferred rule toward fair
// once the observed backlog has stayed at or above depth for patience
// consecutive planning events (and back, with the same hysteresis). It
// is stateful (its observed mode rides checkpoints) and is registered as
// the decider family "adaptive(<POLICY>,depth=<n>,patience=<n>)".
func NewAdaptiveDecider(fair Policy, depth, patience int) (Decider, error) {
	return adaptive.New(fair, depth, patience)
}

// AdaptiveSpec returns the spec of a dynP scheduler driven by the
// adaptive decider shell; the fairness policy is appended to the
// candidate set when it is not already in it.
func AdaptiveSpec(fair Policy, depth, patience int) SchedulerSpec {
	return experiment.AdaptiveSpec(fair, depth, patience)
}

// FairnessSchedulers returns the scheduler set of the fairness study:
// FCFS, SJF, two PSBS members, the paper's SJF-preferred dynP and the
// adaptive shell.
func FairnessSchedulers() []SchedulerSpec { return experiment.FairnessSchedulers() }

// RunFairness executes the fairness study — the configured schedulers
// over job sets whose estimates are scaled by each overestimation factor
// — for one trace.
func RunFairness(cfg ExperimentConfig, factors []float64) (*FairnessResult, error) {
	return experiment.Fairness(cfg, factors)
}

// RunFairnessAll runs the fairness study over several traces.
func RunFairnessAll(models []Model, cfg ExperimentConfig, factors []float64) ([]*FairnessResult, error) {
	out := make([]*FairnessResult, 0, len(models))
	for _, m := range models {
		c := cfg
		c.Model = m
		r, err := experiment.Fairness(c, factors)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FairnessTable renders fairness-study results across traces.
func FairnessTable(results []*FairnessResult, factors []float64, schedulers []string) *Table {
	return experiment.FairnessTable(results, factors, schedulers)
}
