module dynp

go 1.22
