// Benchmarks regenerating every table and figure of the paper, plus the
// ablation studies listed in DESIGN.md. Each Benchmark<Exp> exercises the
// full pipeline behind the corresponding experiment at a reduced scale
// (see cmd/paper -full for paper-scale numbers); the reported ns/op is the
// cost of regenerating that artifact once.
package dynp_test

import (
	"fmt"
	"io"
	"testing"

	"dynp"
)

// benchSweep runs the sweep behind a figure/table at benchmark scale.
func benchSweep(b *testing.B, models []dynp.Model, schedulers []dynp.SchedulerSpec) []*dynp.ExperimentResult {
	b.Helper()
	cfg := dynp.ExperimentConfig{
		Shrinks:    []float64{1.0, 0.8},
		Sets:       2,
		JobsPerSet: 500,
		Seed:       2004,
		Schedulers: schedulers,
	}
	results, err := dynp.RunExperiments(models, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

var benchShrinks = []float64{1.0, 0.8}

func basicSpecs() []dynp.SchedulerSpec {
	return []dynp.SchedulerSpec{
		dynp.StaticSpec(dynp.FCFS),
		dynp.StaticSpec(dynp.SJF),
		dynp.StaticSpec(dynp.LJF),
	}
}

func dynpSpecs() []dynp.SchedulerSpec {
	return []dynp.SchedulerSpec{
		dynp.StaticSpec(dynp.SJF),
		dynp.DynPSpec(dynp.AdvancedDecider()),
		dynp.DynPSpec(dynp.PreferredDecider(dynp.SJF)),
	}
}

// BenchmarkTable1DeciderAnalysis regenerates Table 1 (pure decision
// logic, no simulation).
func BenchmarkTable1DeciderAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := dynp.PaperTable1().Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2WorkloadGeneration regenerates Table 2: one job set per
// trace plus its characterisation.
func BenchmarkTable2WorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := dynp.PaperTable2(dynp.Models(), 1000, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1BasicPoliciesSLDwA regenerates Figure 1 (and the SLDwA
// half of Table 4): the basic policies' slowdown curves over all traces.
func BenchmarkFigure1BasicPoliciesSLDwA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), basicSpecs())
		figs, err := dynp.PaperFigure(results, 1, benchShrinks)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range figs {
			if err := f.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure2BasicPoliciesUtilization regenerates Figure 2 (and the
// utilization half of Table 4).
func BenchmarkFigure2BasicPoliciesUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), basicSpecs())
		figs, err := dynp.PaperFigure(results, 2, benchShrinks)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range figs {
			if err := f.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4BasicPolicies regenerates Table 4 from a basic-policy
// sweep.
func BenchmarkTable4BasicPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), basicSpecs())
		if err := dynp.PaperTable4(results, benchShrinks).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3DynPSLDwA regenerates Figure 3 (and the SLDwA part of
// Table 5): SJF vs dynP with the advanced and SJF-preferred deciders.
func BenchmarkFigure3DynPSLDwA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), dynpSpecs())
		figs, err := dynp.PaperFigure(results, 3, benchShrinks)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range figs {
			if err := f.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4DynPUtilization regenerates Figure 4 (and the
// utilization part of Table 5).
func BenchmarkFigure4DynPUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), dynpSpecs())
		figs, err := dynp.PaperFigure(results, 4, benchShrinks)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range figs {
			if err := f.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable5DynPDetail regenerates Table 5.
func BenchmarkTable5DynPDetail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), dynpSpecs())
		if err := dynp.PaperTable5(results, benchShrinks).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3CondensedDifferences regenerates Table 3 (the condensed
// averages of Table 5).
func BenchmarkTable3CondensedDifferences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := benchSweep(b, dynp.Models(), dynpSpecs())
		if err := dynp.PaperTable3(results, benchShrinks).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md section 5) ---

// BenchmarkAblationDecisionMetric compares self-tuning decision metrics:
// the paper's planned SLDwA against planned average response time.
func BenchmarkAblationDecisionMetric(b *testing.B) {
	set, err := dynp.KTH.Generate(1500, dynp.NewStream(11))
	if err != nil {
		b.Fatal(err)
	}
	set = set.Shrink(0.8)
	for _, m := range []struct {
		name   string
		metric dynp.DecisionMetric
	}{
		{"SLDwA", dynp.MetricSLDwA},
		{"ART", dynp.MetricART},
		{"ARTwW", dynp.MetricARTwW},
		{"makespan", dynp.MetricMakespan},
	} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := dynp.NewDynPSchedulerWith(nil, dynp.AdvancedDecider(), m.metric)
				res, err := dynp.Simulate(set, s)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(dynp.SLDwA(res), "SLDwA")
				b.ReportMetric(100*dynp.Utilization(res), "util%")
			}
		})
	}
}

// BenchmarkAblationPreferredPolicy compares preferring each of the three
// candidate policies (the paper evaluates only SJF-preferred).
func BenchmarkAblationPreferredPolicy(b *testing.B) {
	set, err := dynp.CTC.Generate(1500, dynp.NewStream(12))
	if err != nil {
		b.Fatal(err)
	}
	set = set.Shrink(0.8)
	for _, p := range []dynp.Policy{dynp.FCFS, dynp.SJF, dynp.LJF} {
		b.Run(p.Name()+"-preferred", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dynp.Simulate(set, dynp.NewDynPScheduler(dynp.PreferredDecider(p)))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(dynp.SLDwA(res), "SLDwA")
				b.ReportMetric(100*dynp.Utilization(res), "util%")
			}
		})
	}
}

// BenchmarkAblationSimpleDecider quantifies the end-to-end cost of the
// simple decider's wrong decisions (Table 1) against the advanced decider.
func BenchmarkAblationSimpleDecider(b *testing.B) {
	set, err := dynp.SDSC.Generate(1500, dynp.NewStream(13))
	if err != nil {
		b.Fatal(err)
	}
	set = set.Shrink(0.8)
	for _, d := range []dynp.Decider{dynp.SimpleDecider(), dynp.AdvancedDecider()} {
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dynp.Simulate(set, dynp.NewDynPScheduler(d))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(dynp.SLDwA(res), "SLDwA")
			}
		})
	}
}

// BenchmarkAblationCandidateSet extends the candidate policies with the
// area-ordered extensions (a future-work direction of the dynP papers).
func BenchmarkAblationCandidateSet(b *testing.B) {
	set, err := dynp.KTH.Generate(1500, dynp.NewStream(14))
	if err != nil {
		b.Fatal(err)
	}
	set = set.Shrink(0.8)
	sets := map[string][]dynp.Policy{
		"paper":      nil, // FCFS, SJF, LJF
		"with-areas": {dynp.FCFS, dynp.SJF, dynp.LJF, dynp.SAF, dynp.LAF},
	}
	for name, candidates := range sets {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := dynp.NewDynPSchedulerWith(candidates, dynp.AdvancedDecider(), dynp.MetricSLDwA)
				res, err := dynp.Simulate(set, s)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(dynp.SLDwA(res), "SLDwA")
			}
		})
	}
}

// BenchmarkSimulateStatic measures raw simulator throughput with a static
// policy (jobs/op scale: 2000).
func BenchmarkSimulateStatic(b *testing.B) {
	set, err := dynp.CTC.Generate(2000, dynp.NewStream(15))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynp.Simulate(set, dynp.NewStaticScheduler(dynp.FCFS)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDynP measures the self-tuning overhead: three what-if
// schedules per event instead of one.
func BenchmarkSimulateDynP(b *testing.B) {
	set, err := dynp.CTC.Generate(2000, dynp.NewStream(15))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynp.Simulate(set, dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDynPWorkers measures the end-to-end effect of parallel
// what-if planning on a full dynP simulation (jobs/op scale: 2000).
func BenchmarkSimulateDynPWorkers(b *testing.B) {
	set, err := dynp.CTC.Generate(2000, dynp.NewStream(15))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := dynp.SetPlanningWorkers(dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)), workers)
				if _, err := dynp.Simulate(set, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures job set synthesis throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, m := range dynp.Models() {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Generate(1000, dynp.NewStream(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
