package dynp

import (
	"io"

	"dynp/internal/gantt"
	"dynp/internal/rms"
	"dynp/internal/vfs"
)

// Online RMS re-exports: the dynP scheduler embedded in a live,
// clock-driven resource manager (see internal/rms), plus schedule
// visualisation (internal/gantt).
type (
	// OnlineScheduler is a planning-based RMS core driven by an
	// explicit clock: Submit/Complete/Cancel/Advance.
	OnlineScheduler = rms.Scheduler
	// OnlineJobInfo is the externally visible status of one online job.
	OnlineJobInfo = rms.JobInfo
	// OnlineStatus is a snapshot of the online system.
	OnlineStatus = rms.Status
	// OnlineServer exposes an OnlineScheduler over newline-delimited
	// JSON (see cmd/dynpd).
	OnlineServer = rms.Server
	// JobState is the online job lifecycle state.
	JobState = rms.JobState
	// OnlineSubmission is one job of an atomic Deliver batch.
	OnlineSubmission = rms.Submission
	// OnlineReport is the online scheduler's self-assessment (SLDwA,
	// utilization, ...) over finished jobs.
	OnlineReport = rms.Report
	// OnlineJournal is the write-ahead event journal that makes an
	// online scheduler crash-safe (see dynpd -journal).
	OnlineJournal = rms.Journal
	// VictimPolicy orders running jobs for termination when processor
	// failures shrink the machine below the running set's footprint.
	VictimPolicy = rms.VictimPolicy
	// OnlineEventTrace is a ring-buffer engine observer: attach one to
	// an OnlineScheduler with AddObserver to serve the daemon's "trace"
	// and "metrics" ops.
	OnlineEventTrace = rms.EventTrace
	// OnlineTraceEvent is the wire form of one observed engine
	// transition.
	OnlineTraceEvent = rms.TraceEvent
	// OnlineEngineMetrics aggregates the engine's event stream over the
	// scheduler's lifetime.
	OnlineEngineMetrics = rms.EngineMetrics
	// OnlineHealthInfo is the server's health/readiness verdict: liveness
	// plus why (or whether) the daemon is ready for traffic.
	OnlineHealthInfo = rms.HealthInfo
	// OnlineServerError is a typed server-side rejection; its Busy flag
	// marks overload shedding, which is retryable.
	OnlineServerError = rms.ServerError
	// OnlineStatefulObserver is an engine observer whose state rides
	// along in journal checkpoints, surviving daemon restarts.
	OnlineStatefulObserver = rms.StatefulObserver
	// OnlineQuote is a digital-twin prediction of when a hypothetical
	// job would start, finish and wait if submitted right now (see
	// OnlineScheduler.EnableQuotes / Quote and the "quote" protocol op).
	OnlineQuote = rms.Quote
	// JournalFS abstracts the filesystem under a journal — swap in a
	// fault-injecting implementation to test crash recovery.
	JournalFS = vfs.FS
	// JournalFaultConfig configures seeded disk-fault injection (torn
	// writes, bit flips, failed syncs) for recovery testing.
	JournalFaultConfig = vfs.FaultConfig
	// GanttChart is a processor-time occupancy chart of a completed
	// run.
	GanttChart = gantt.Chart
)

// NewOnlineEventTrace returns an engine-event ring buffer retaining the
// last capacity transitions.
func NewOnlineEventTrace(capacity int) *OnlineEventTrace { return rms.NewEventTrace(capacity) }

// The online job lifecycle states.
const (
	StateWaiting   = rms.StateWaiting
	StateRunning   = rms.StateRunning
	StateCompleted = rms.StateCompleted
	StateKilled    = rms.StateKilled
	// StateFailed marks a job killed because its processors failed, not
	// because its estimate expired.
	StateFailed = rms.StateFailed
)

// NeverStart is the planned-start sentinel of a waiting job that cannot
// run until failed processors are restored.
const NeverStart = rms.NeverStart

// Victim orderings for capacity failures.
var (
	// VictimLastStarted (the default) kills the most recently started
	// jobs first, preserving the longest-running work.
	VictimLastStarted VictimPolicy = rms.VictimLastStarted
	// VictimWidestFirst kills the widest jobs first, minimising the
	// number of jobs lost.
	VictimWidestFirst VictimPolicy = rms.VictimWidestFirst
)

// OpenOnlineJournal opens (or creates) a write-ahead journal, repairing
// a torn tail after a crash. Replay it into a fresh scheduler (restoring
// from the newest valid checkpoint), then attach it with SetJournal.
func OpenOnlineJournal(path string) (*OnlineJournal, error) { return rms.OpenJournal(path) }

// OpenOnlineJournalFS is OpenOnlineJournal on an explicit filesystem —
// pass a fault-injecting JournalFS to test crash recovery.
func OpenOnlineJournalFS(fsys JournalFS, path string) (*OnlineJournal, error) {
	return rms.OpenJournalFS(fsys, path)
}

// NewFaultyJournalFS wraps the real filesystem in seeded disk-fault
// injection for recovery testing.
func NewFaultyJournalFS(cfg JournalFaultConfig) JournalFS { return vfs.NewFaulty(vfs.OS, cfg) }

// ParseJournalFaultConfig parses a disk-fault spec like
// "seed=7,writefail=0.01,short=0.02,bitflip=0,syncfail=0.005,rename=0".
func ParseJournalFaultConfig(spec string) (JournalFaultConfig, error) {
	return vfs.ParseFaultConfig(spec)
}

// NewOnlineScheduler returns an online RMS core for a machine with the
// given capacity using the given scheduler, with the clock at startTime.
func NewOnlineScheduler(capacity int, s Scheduler, startTime int64) (*OnlineScheduler, error) {
	return rms.New(capacity, s, startTime)
}

// NewOnlineServer wraps an online scheduler in the JSON protocol server.
// allowTick enables client-driven virtual clocks.
func NewOnlineServer(s *OnlineScheduler, allowTick bool) *OnlineServer {
	return rms.NewServer(s, allowTick)
}

// NewGanttChart reconstructs a processor assignment from a completed
// simulation for rendering with ASCII or SVG.
func NewGanttChart(res *Result) (*GanttChart, error) { return gantt.FromResult(res) }

// WriteScheduleSVG renders a completed run as an SVG occupancy chart in
// one call.
func WriteScheduleSVG(w io.Writer, res *Result, width, height int) error {
	c, err := gantt.FromResult(res)
	if err != nil {
		return err
	}
	return c.SVG(w, width, height)
}
