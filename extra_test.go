package dynp_test

import (
	"strings"
	"testing"

	"dynp"
)

func TestPerfectEstimatesImproveOrMatchSJFKnowledge(t *testing.T) {
	// With perfect estimates SJF orders by true run time; area-weighted
	// slowdown on a loaded machine should not get dramatically worse.
	// (This is a sanity check of the transform plumbed end to end, not a
	// theorem — SJF with perfect estimates can lose on synthetic ties.)
	set, err := dynp.KTH.Generate(800, dynp.NewStream(51))
	if err != nil {
		t.Fatal(err)
	}
	set = set.Shrink(0.8)
	base, err := dynp.Simulate(set, dynp.NewStaticScheduler(dynp.SJF))
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := dynp.Simulate(dynp.PerfectEstimates(set), dynp.NewStaticScheduler(dynp.SJF))
	if err != nil {
		t.Fatal(err)
	}
	if dynp.SLDwA(perfect) > 3*dynp.SLDwA(base) {
		t.Fatalf("perfect estimates tripled slowdown: %.2f vs %.2f",
			dynp.SLDwA(perfect), dynp.SLDwA(base))
	}
}

func TestScaleEstimatesEndToEnd(t *testing.T) {
	set, err := dynp.CTC.Generate(300, dynp.NewStream(52))
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := dynp.ScaleEstimates(set, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dynp.Simulate(scaled, dynp.NewStaticScheduler(dynp.FCFS)); err != nil {
		t.Fatal(err)
	}
}

func TestConcatenatePhaseWorkload(t *testing.T) {
	short, err := dynp.KTH.Generate(200, dynp.NewStream(53))
	if err != nil {
		t.Fatal(err)
	}
	long, err := dynp.KTH.Generate(200, dynp.NewStream(54))
	if err != nil {
		t.Fatal(err)
	}
	both, err := dynp.ConcatenateSets(short, long, 7200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynp.Simulate(both, dynp.NewDynPScheduler(dynp.AdvancedDecider()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 400 {
		t.Fatalf("completed %d jobs", len(res.Records))
	}
}

func TestEASYViaFacade(t *testing.T) {
	set, err := dynp.SDSC.Generate(400, dynp.NewStream(55))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynp.Simulate(set.Shrink(0.8), dynp.NewEASYScheduler(dynp.FCFS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "EASY" {
		t.Fatalf("scheduler = %q", res.Scheduler)
	}
}

func TestGanttViaFacade(t *testing.T) {
	set, err := dynp.KTH.Generate(100, dynp.NewStream(56))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynp.Simulate(set, dynp.NewStaticScheduler(dynp.FCFS))
	if err != nil {
		t.Fatal(err)
	}
	chart, err := dynp.NewGanttChart(res)
	if err != nil {
		t.Fatal(err)
	}
	got, want := chart.Utilization(), dynp.Utilization(res)
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("chart utilization %v != metric %v", got, want)
	}
	var b strings.Builder
	if err := dynp.WriteScheduleSVG(&b, res, 600, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("no SVG output")
	}
}

func TestOnlineSchedulerViaFacade(t *testing.T) {
	s, err := dynp.NewOnlineScheduler(16, dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Submit(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != dynp.StateRunning {
		t.Fatalf("a = %+v", a)
	}
	b, _ := s.Submit(8, 50)
	if b.State != dynp.StateWaiting || b.PlannedStart != 100 {
		t.Fatalf("b = %+v", b)
	}
	if err := s.Advance(120); err != nil {
		t.Fatal(err)
	}
	ai, _ := s.Job(a.ID)
	if ai.State != dynp.StateKilled {
		t.Fatalf("a should be killed at its estimate: %+v", ai)
	}
}

func TestOnlineServerViaFacade(t *testing.T) {
	s, err := dynp.NewOnlineScheduler(8, dynp.NewStaticScheduler(dynp.FCFS), 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := dynp.NewOnlineServer(s, true)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if addr.String() == "" {
		t.Fatal("no bound address")
	}
}

func TestSimulateEmptySet(t *testing.T) {
	set := &dynp.JobSet{Name: "empty", Machine: 4}
	res, err := dynp.Simulate(set, dynp.NewStaticScheduler(dynp.FCFS))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || dynp.Utilization(res) != 0 {
		t.Fatalf("empty result = %+v", res)
	}
}

func TestSimulateSimultaneousBurst(t *testing.T) {
	// Every job arrives at t=0 on a single processor: strictly
	// sequential execution under any policy; total runtime is invariant.
	set := &dynp.JobSet{Name: "burst", Machine: 1}
	var total int64
	for i := 1; i <= 50; i++ {
		run := int64(i)
		total += run
		set.Jobs = append(set.Jobs, &dynp.Job{
			ID: dynp.JobID(i), Submit: 0, Width: 1, Estimate: run, Runtime: run,
		})
	}
	for _, sched := range []dynp.Scheduler{
		dynp.NewStaticScheduler(dynp.SJF),
		dynp.NewStaticScheduler(dynp.LJF),
		dynp.NewDynPScheduler(dynp.AdvancedDecider()),
	} {
		res, err := dynp.SimulateVerified(set, sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != total {
			t.Fatalf("%s: makespan %d, want %d", res.Scheduler, res.Makespan, total)
		}
		if u := dynp.Utilization(res); u < 0.999 {
			t.Fatalf("%s: utilization %v on a gap-free sequence", res.Scheduler, u)
		}
	}
}

func TestFullWidthJobsSerialise(t *testing.T) {
	set := &dynp.JobSet{Name: "wide", Machine: 64}
	for i := 1; i <= 10; i++ {
		set.Jobs = append(set.Jobs, &dynp.Job{
			ID: dynp.JobID(i), Submit: int64(i), Width: 64, Estimate: 100, Runtime: 100,
		})
	}
	res, err := dynp.SimulateVerified(set, dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Start < res.Records[i-1].Finish {
			t.Fatal("full-width jobs overlapped")
		}
	}
}

func TestDecisionCaseViaFacade(t *testing.T) {
	if got := dynp.DecisionCase(dynp.SJF, 1, 1, 1); got != "1" {
		t.Fatalf("case = %q", got)
	}
	if got := dynp.DecisionCase(dynp.LJF, 2, 1, 1); got != "10c" {
		t.Fatalf("case = %q", got)
	}
}
