package dynp_test

import (
	"bytes"
	"strings"
	"testing"

	"dynp"
)

func TestQuickstartFlow(t *testing.T) {
	set, err := dynp.KTH.Generate(400, dynp.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	set = set.Shrink(0.9)
	for _, s := range []dynp.Scheduler{
		dynp.NewStaticScheduler(dynp.SJF),
		dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)),
	} {
		res, err := dynp.Simulate(set, s)
		if err != nil {
			t.Fatal(err)
		}
		if got := dynp.SLDwA(res); got < 1 {
			t.Errorf("%s: SLDwA %v < 1", res.Scheduler, got)
		}
		if u := dynp.Utilization(res); u <= 0 || u > 1 {
			t.Errorf("%s: utilization %v", res.Scheduler, u)
		}
		if dynp.ART(res) < dynp.AWT(res) {
			t.Errorf("%s: response below wait", res.Scheduler)
		}
		if dynp.BoundedSLDwA(res, 60) > dynp.SLDwA(res)+1e-9 {
			t.Errorf("%s: bounded slowdown above raw", res.Scheduler)
		}
		if dynp.ARTwW(res) <= 0 {
			t.Errorf("%s: ARTwW not positive", res.Scheduler)
		}
	}
}

func TestDecidersConstructors(t *testing.T) {
	names := map[dynp.Decider]string{
		dynp.SimpleDecider():             "simple",
		dynp.AdvancedDecider():           "advanced",
		dynp.PreferredDecider(dynp.SJF):  "SJF-preferred",
		dynp.PreferredDecider(dynp.LJF):  "LJF-preferred",
		dynp.PreferredDecider(dynp.FCFS): "FCFS-preferred",
	}
	for d, want := range names {
		if d.Name() != want {
			t.Errorf("decider name = %q, want %q", d.Name(), want)
		}
	}
	if _, err := dynp.NewDecider("SJF-preferred"); err != nil {
		t.Error(err)
	}
}

func TestSWFRoundTripViaFacade(t *testing.T) {
	set, err := dynp.SDSC.Generate(100, dynp.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dynp.WriteSWF(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := dynp.ReadSWF(&buf, dynp.SWFReadOptions{Machine: set.Machine})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(set.Jobs) {
		t.Fatalf("round trip: %d jobs, want %d", len(back.Jobs), len(set.Jobs))
	}
}

func TestModelLookup(t *testing.T) {
	if len(dynp.Models()) != 4 {
		t.Fatal("expected four trace models")
	}
	m, err := dynp.ModelByName("CTC")
	if err != nil || m.Machine != 430 {
		t.Fatalf("CTC lookup: %v %v", m.Machine, err)
	}
}

func TestCharacterizeViaFacade(t *testing.T) {
	set, err := dynp.CTC.Generate(500, dynp.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	c := dynp.Characterize(set)
	if c.Jobs != 500 || c.OfferedLoad() <= 0 {
		t.Fatalf("characteristics: %+v", c)
	}
}

func TestExperimentViaFacade(t *testing.T) {
	cfg := dynp.ExperimentConfig{
		Shrinks:    []float64{1.0},
		Sets:       2,
		JobsPerSet: 150,
		Seed:       4,
		Schedulers: dynp.PaperSchedulers(),
	}
	results, err := dynp.RunExperiments([]dynp.Model{dynp.KTH}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range []*dynp.Table{
		dynp.PaperTable4(results, cfg.Shrinks),
		dynp.PaperTable5(results, cfg.Shrinks),
		dynp.PaperTable3(results, cfg.Shrinks),
	} {
		if err := tb.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(b.String(), "KTH") {
		t.Fatal("tables missing trace name")
	}
	figs, err := dynp.PaperFigure(results, 3, cfg.Shrinks)
	if err != nil || len(figs) != 1 {
		t.Fatalf("figure 3: %v, %d", err, len(figs))
	}
}

func TestPaperTables12ViaFacade(t *testing.T) {
	var b strings.Builder
	if err := dynp.PaperTable1().Render(&b); err != nil {
		t.Fatal(err)
	}
	t2, err := dynp.PaperTable2(dynp.Models(), 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "simple decider") || !strings.Contains(b.String(), "LANL") {
		t.Fatal("tables incomplete")
	}
}

func TestCustomDeciderInterface(t *testing.T) {
	// A user-defined decider must plug into the scheduler construction.
	always := alwaysFCFS{}
	set, err := dynp.KTH.Generate(200, dynp.NewStream(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynp.Simulate(set, dynp.NewDynPScheduler(always))
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyTime[dynp.FCFS] == 0 {
		t.Fatal("custom decider never applied")
	}
}

type alwaysFCFS struct{}

func (alwaysFCFS) Name() string { return "always-FCFS" }
func (alwaysFCFS) Decide(_ dynp.Policy, _ []dynp.Policy, _ []float64) dynp.Policy {
	return dynp.FCFS
}

func TestNewDynPSchedulerWith(t *testing.T) {
	set, err := dynp.KTH.Generate(200, dynp.NewStream(8))
	if err != nil {
		t.Fatal(err)
	}
	s := dynp.NewDynPSchedulerWith(
		[]dynp.Policy{dynp.FCFS, dynp.SJF, dynp.LJF, dynp.SAF},
		dynp.AdvancedDecider(), dynp.MetricART)
	if _, err := dynp.Simulate(set, s); err != nil {
		t.Fatal(err)
	}
}
