// Crashrestart demonstrates the crash-safe journal of the online RMS:
// every external event (submissions, completions, clock moves, processor
// failures) is appended to a write-ahead journal before it takes effect,
// so a daemon killed mid-flight — even with kill -9 — restarts on the
// same journal with byte-identical state. The example runs a morning of
// work including a partial machine failure, "crashes" by throwing the
// scheduler away, replays the journal into a fresh one, and verifies the
// restored state matches exactly. The same mechanism backs dynpd's
// -journal flag.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dynp"
)

func newScheduler() *dynp.OnlineScheduler {
	sched, err := dynp.NewOnlineScheduler(32,
		dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)), 0)
	if err != nil {
		log.Fatal(err)
	}
	return sched
}

// fingerprint captures everything externally observable about the
// scheduler as canonical JSON.
func fingerprint(sched *dynp.OnlineScheduler) []byte {
	b, err := json.Marshal(struct {
		Status   dynp.OnlineStatus
		Report   dynp.OnlineReport
		Finished []dynp.OnlineJobInfo
	}{sched.Status(), sched.Report(), sched.Finished()})
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func main() {
	dir, err := os.MkdirTemp("", "crashrestart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "dynpd.journal")

	// --- Before the crash: a journaled scheduler takes a morning of
	// events, including a processor failure.
	journal, err := dynp.OpenOnlineJournal(path)
	if err != nil {
		log.Fatal(err)
	}
	sched := newScheduler()
	if err := sched.SetJournal(journal); err != nil {
		log.Fatal(err)
	}

	a, _ := sched.Submit(24, 4*3600)
	sched.Advance(600)
	b, _ := sched.Submit(8, 1800)
	sched.Advance(1200)
	sched.Submit(16, 900) // must wait behind a and b
	sched.Advance(2400)
	sched.Complete(b.ID) // early completion pulls work forward

	// A rack dies: 16 processors gone. The width-24 job no longer fits
	// and is killed as StateFailed; the machine keeps scheduling on what
	// is left.
	if err := sched.Fail(16); err != nil {
		log.Fatal(err)
	}
	if info, _ := sched.Job(a.ID); info.State == dynp.StateFailed {
		fmt.Printf("t=%d: rack failure killed job %d (width %d > %d live processors)\n",
			sched.Now(), a.ID, info.Width, 16)
	}
	sched.Advance(3600)
	if err := sched.Restore(16); err != nil {
		log.Fatal(err)
	}
	sched.Advance(4800)

	before := fingerprint(sched)
	st := sched.Status()
	fmt.Printf("t=%d before the crash: %d running, %d waiting, %d finished\n",
		st.Now, len(st.Running), len(st.Waiting), st.Finished)

	// --- The crash. No orderly shutdown: the scheduler simply ceases to
	// exist. (Every event was flushed to the journal before it was
	// applied, so closing here only releases the file descriptor.)
	journal.Close()
	sched = nil

	// --- The restart: replay the journal into a virgin scheduler, as
	// `dynpd -journal` does on startup.
	journal, err = dynp.OpenOnlineJournal(path)
	if err != nil {
		log.Fatal(err)
	}
	restored := newScheduler()
	replayed, err := journal.Replay(restored)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.SetJournal(journal); err != nil { // journal new events too
		log.Fatal(err)
	}
	defer journal.Close()
	fmt.Printf("replayed %d journal events, clock restored to t=%d\n", replayed, restored.Now())

	after := fingerprint(restored)
	if !bytes.Equal(before, after) {
		log.Fatalf("restored state diverged!\nbefore: %s\nafter:  %s", before, after)
	}
	fmt.Println("restored state is byte-identical to the pre-crash state")

	// The restored scheduler is live: it keeps journaling and scheduling.
	if _, err := restored.Submit(4, 600); err != nil {
		log.Fatal(err)
	}
	restored.Advance(restored.Now() + 600)
	fmt.Printf("t=%d after restart: %d finished jobs\n",
		restored.Now(), restored.Status().Finished)
}
