// Modeswitch reproduces the scenario that motivated dynamic policy
// switching in the first place (the Implicit Voting System of the paper's
// related work): a machine that alternates between an "interactive" phase
// of many short jobs and a "batch" phase of few long jobs. A static policy
// is right for one phase and wrong for the other; the self-tuning dynP
// scheduler detects the change from the waiting queue itself and switches.
package main

import (
	"fmt"
	"log"

	"dynp"
)

// buildPhases constructs a hand-crafted workload: three day-long phases —
// interactive (short, narrow, frequent), batch (long, wide, sparse), and
// interactive again — on a 64-processor machine.
func buildPhases() *dynp.JobSet {
	set := &dynp.JobSet{Name: "interactive/batch/interactive", Machine: 64}
	id := dynp.JobID(0)
	add := func(submit, est, run int64, width int) {
		id++
		set.Jobs = append(set.Jobs, &dynp.Job{
			ID: id, Submit: submit, Width: width, Estimate: est, Runtime: run,
		})
	}
	const day = 86400
	// Phase 1: interactive — every 2 minutes a 4-processor, ~10 minute job.
	for t := int64(0); t < day; t += 120 {
		add(t, 900, 600, 4)
	}
	// Phase 2: batch — every 90 minutes a 32-processor, ~8 hour job.
	for t := int64(day); t < 2*day; t += 5400 {
		add(t, 10*3600, 8*3600, 32)
	}
	// Phase 3: interactive again.
	for t := int64(2 * day); t < 3*day; t += 120 {
		add(t, 900, 600, 4)
	}
	return set
}

func main() {
	set := buildPhases()

	fmt.Printf("workload: %d jobs over 3 days (interactive / batch / interactive)\n\n", len(set.Jobs))
	fmt.Printf("%-22s %10s %8s %s\n", "scheduler", "SLDwA", "util", "policy usage")
	for _, s := range []dynp.Scheduler{
		dynp.NewStaticScheduler(dynp.SJF),
		dynp.NewStaticScheduler(dynp.LJF),
		dynp.NewDynPScheduler(dynp.AdvancedDecider()),
		dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)),
	} {
		res, err := dynp.Simulate(set, s)
		if err != nil {
			log.Fatal(err)
		}
		var span int64
		for _, d := range res.PolicyTime {
			span += d
		}
		usage := ""
		for _, p := range []dynp.Policy{dynp.FCFS, dynp.SJF, dynp.LJF} {
			if d := res.PolicyTime[p]; d > 0 {
				usage += fmt.Sprintf("%s %.0f%%  ", p, 100*float64(d)/float64(span))
			}
		}
		fmt.Printf("%-22s %10.2f %7.2f%% %s\n",
			res.Scheduler, dynp.SLDwA(res), 100*dynp.Utilization(res), usage)
	}
}
