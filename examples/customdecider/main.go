// Customdecider shows how to extend the library with a user-defined
// decider: a "sticky" decider that only switches policies when the best
// alternative beats the incumbent by a configurable margin. Frequent
// switching has hidden costs on real systems (operator confusion, user
// surprise); hysteresis trades a little schedule quality for stability.
// The example compares switch counts and quality against the paper's
// advanced decider.
package main

import (
	"fmt"
	"log"

	"dynp"
)

// Sticky is a hysteresis decider: the old policy is kept unless the best
// candidate improves on it by more than Margin (relative). It implements
// the dynp.Decider interface.
type Sticky struct {
	Margin float64 // e.g. 0.1 = require a 10% improvement to switch
}

// Name implements dynp.Decider.
func (s Sticky) Name() string { return fmt.Sprintf("sticky(%.0f%%)", 100*s.Margin) }

// Decide implements dynp.Decider.
func (s Sticky) Decide(old dynp.Policy, candidates []dynp.Policy, values []float64) dynp.Policy {
	bestIdx := 0
	oldIdx := -1
	for i, p := range candidates {
		if values[i] < values[bestIdx] {
			bestIdx = i
		}
		if p == old {
			oldIdx = i
		}
	}
	if oldIdx < 0 {
		return candidates[bestIdx]
	}
	if values[bestIdx] < values[oldIdx]*(1-s.Margin) {
		return candidates[bestIdx]
	}
	return old
}

func main() {
	set, err := dynp.SDSC.Generate(3000, dynp.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	set = set.Shrink(0.8)

	deciders := []dynp.Decider{
		dynp.AdvancedDecider(),
		dynp.PreferredDecider(dynp.SJF),
		Sticky{Margin: 0.05},
		Sticky{Margin: 0.25},
	}

	fmt.Printf("%-28s %10s %8s %10s\n", "decider", "SLDwA", "util", "switches")
	for _, d := range deciders {
		sched := dynp.NewDynPScheduler(d)
		res, err := dynp.Simulate(set, sched)
		if err != nil {
			log.Fatal(err)
		}
		switches := "-"
		if s, ok := sched.(interface{ Stats() dynp.SelfTunerStats }); ok {
			switches = fmt.Sprintf("%d", s.Stats().Switches)
		}
		fmt.Printf("%-28s %10.2f %7.2f%% %10s\n",
			res.Scheduler, dynp.SLDwA(res), 100*dynp.Utilization(res), switches)
	}
}
