// Saturation sweeps the shrinking factor the way the paper's Figures 1-4
// do and renders terminal plots of slowdown and utilization. It makes the
// saturation effect the paper discusses visible: below some shrinking
// factor the machine cannot absorb more load, utilization flattens, and
// jobs "simply wait longer until they are started".
package main

import (
	"fmt"
	"log"
	"os"

	"dynp"
)

func main() {
	model := dynp.SDSC // the paper's prime saturation example
	shrinks := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5}

	cfg := dynp.ExperimentConfig{
		Shrinks:    shrinks,
		Sets:       3,
		JobsPerSet: 1500,
		Seed:       99,
		Schedulers: []dynp.SchedulerSpec{
			dynp.StaticSpec(dynp.FCFS),
			dynp.StaticSpec(dynp.SJF),
			dynp.StaticSpec(dynp.LJF),
			dynp.DynPSpec(dynp.PreferredDecider(dynp.SJF)),
		},
	}
	results, err := dynp.RunExperiments([]dynp.Model{model}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, metric := range []struct {
		name string
		pick func(*dynp.ExperimentCell) float64
	}{
		{"SLDwA", func(c *dynp.ExperimentCell) float64 { return c.SLDwA }},
		{"utilization [%]", func(c *dynp.ExperimentCell) float64 { return 100 * c.Util }},
	} {
		fig := &dynp.Figure{
			Title:  fmt.Sprintf("%s: %s vs shrinking factor", model.Name, metric.name),
			XLabel: "shrinking factor",
			YLabel: metric.name,
		}
		for _, spec := range cfg.Schedulers {
			s := dynp.Series{Name: spec.Name}
			for _, f := range shrinks {
				if c := results[0].Cell(f, spec.Name); c != nil {
					s.X = append(s.X, f)
					s.Y = append(s.Y, metric.pick(c))
				}
			}
			fig.Series = append(fig.Series, s)
		}
		if err := fig.ASCII(os.Stdout, 64, 14); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
