// Onlinerms drives the dynP scheduler as an *online* resource manager the
// way the CCS system does on a real cluster: jobs are submitted over time,
// completions are reported by the "applications" themselves, the RMS kills
// jobs whose estimates expire, and the active policy adapts to the queue.
// The example uses the deterministic virtual clock, prints the planned
// start of every submission, and ends with a Gantt chart of the day.
package main

import (
	"fmt"
	"log"
	"os"

	"dynp"
)

func main() {
	sched, err := dynp.NewOnlineScheduler(32,
		dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)), 0)
	if err != nil {
		log.Fatal(err)
	}

	// A morning of work: a wide batch job, a burst of short interactive
	// jobs, and one job that lies about its run time (and is killed).
	submissions := []struct {
		at       int64
		width    int
		estimate int64
	}{
		{0, 24, 4 * 3600}, // big batch job
		{600, 8, 1800},    // fits beside it
		{1200, 16, 900},   // must wait or backfill
		{1800, 4, 600},    // interactive burst...
		{1810, 4, 600},
		{1820, 4, 600},
		{7200, 32, 7200}, // full-machine job
	}

	// Job 2 will report completion early, at half its estimate; the
	// plan is recomputed and waiting work moves forward.
	const job2Done = 600 + 900

	fmt.Println("t         action")
	completed := false
	for _, sub := range submissions {
		if !completed && sub.at >= job2Done {
			if err := sched.Advance(job2Done); err != nil {
				log.Fatal(err)
			}
			if _, err := sched.Complete(2); err != nil {
				log.Fatal(err)
			}
			completed = true
			fmt.Printf("%-9d job 2 reports completion (early, half its estimate)\n", sched.Now())
		}
		if err := sched.Advance(sub.at); err != nil {
			log.Fatal(err)
		}
		info, err := sched.Submit(sub.width, sub.estimate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9d submit job %d (width %d, est %ds) -> %s, planned start %d\n",
			sub.at, info.ID, sub.width, sub.estimate, info.State, info.PlannedStart)
	}

	// Let the rest of the day play out: everything else runs to its
	// estimate and is reclaimed by the RMS.
	if err := sched.Advance(24 * 3600); err != nil {
		log.Fatal(err)
	}

	st := sched.Status()
	fmt.Printf("\nend of day: t=%d, %d jobs finished, %d running, %d waiting, policy %s\n",
		st.Now, st.Finished, len(st.Running), len(st.Waiting), st.ActivePolicy)
	for _, j := range sched.Finished() {
		fmt.Printf("  job %d: %-9s started %-6d finished %-6d (waited %ds)\n",
			j.ID, j.State, j.Started, j.Finished, j.Started-j.Submitted)
	}

	// Render the day as an SVG occupancy chart next to this binary.
	if f, err := os.Create("schedule.svg"); err == nil {
		defer f.Close()
		fmt.Println("\nwriting schedule.svg (red = long waits)")
		// The online scheduler has no sim.Result; re-simulate the same
		// submissions offline for the chart.
		set := &dynp.JobSet{Name: "day", Machine: 32}
		for i, sub := range submissions {
			est := sub.estimate
			run := est
			if i == 1 {
				run = 900 // job 2 finished early
			}
			set.Jobs = append(set.Jobs, &dynp.Job{
				ID: dynp.JobID(i + 1), Submit: sub.at,
				Width: sub.width, Estimate: est, Runtime: run,
			})
		}
		res, err := dynp.Simulate(set, dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)))
		if err != nil {
			log.Fatal(err)
		}
		if err := dynp.WriteScheduleSVG(f, res, 900, 420); err != nil {
			log.Fatal(err)
		}
	}
}
