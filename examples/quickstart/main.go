// Quickstart: generate a workload from a calibrated trace model, run the
// self-tuning dynP scheduler next to the static baselines, and print the
// paper's two metrics (SLDwA and utilization).
package main

import (
	"fmt"
	"log"

	"dynp"
)

func main() {
	// A KTH-like workload of 3,000 jobs; shrinking the submission times
	// to 80% raises the offered load the way the paper does.
	set, err := dynp.KTH.Generate(3000, dynp.NewStream(42))
	if err != nil {
		log.Fatal(err)
	}
	set = set.Shrink(0.8)

	schedulers := []dynp.Scheduler{
		dynp.NewStaticScheduler(dynp.FCFS),
		dynp.NewStaticScheduler(dynp.SJF),
		dynp.NewStaticScheduler(dynp.LJF),
		dynp.NewDynPScheduler(dynp.AdvancedDecider()),
		dynp.NewDynPScheduler(dynp.PreferredDecider(dynp.SJF)),
	}

	fmt.Printf("%-22s %10s %8s\n", "scheduler", "SLDwA", "util")
	for _, s := range schedulers {
		res, err := dynp.Simulate(set, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.2f %7.2f%%\n",
			res.Scheduler, dynp.SLDwA(res), 100*dynp.Utilization(res))
	}
}
