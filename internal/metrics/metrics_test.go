package metrics

import (
	"math"
	"testing"

	"dynp/internal/job"
	"dynp/internal/sim"
)

func mkResult() *sim.Result {
	// Machine of 4 processors. Two jobs:
	//   a: width 1, runtime 10, submitted 0, started 0, finished 10.
	//   b: width 2, runtime 20, submitted 0, started 10, finished 30.
	a := &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 10, Runtime: 10}
	b := &job.Job{ID: 2, Submit: 0, Width: 2, Estimate: 20, Runtime: 20}
	return &sim.Result{
		Set:      &job.Set{Name: "m", Machine: 4, Jobs: []*job.Job{a, b}},
		Records:  []sim.Record{{Job: a, Start: 0, Finish: 10}, {Job: b, Start: 10, Finish: 30}},
		Makespan: 30,
		First:    0,
	}
}

func TestSlowdown(t *testing.T) {
	res := mkResult()
	if got := Slowdown(res.Records[0]); got != 1 {
		t.Errorf("slowdown a = %v, want 1", got)
	}
	if got := Slowdown(res.Records[1]); got != 1.5 {
		t.Errorf("slowdown b = %v, want 1.5 (wait 10, run 20)", got)
	}
}

func TestSlowdownPaperExample(t *testing.T) {
	// Paper, Section 4.1: a 0.5 s job waiting 10 minutes suffers
	// slowdown 1201; a 20 s job with the same wait suffers 31. With
	// integer seconds the first job becomes 1 s: slowdown 601.
	short := sim.Record{
		Job:   &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 1, Runtime: 1},
		Start: 600, Finish: 601,
	}
	if got := Slowdown(short); got != 601 {
		t.Errorf("short job slowdown = %v, want 601", got)
	}
	twenty := sim.Record{
		Job:   &job.Job{ID: 2, Submit: 0, Width: 1, Estimate: 20, Runtime: 20},
		Start: 600, Finish: 620,
	}
	if got := Slowdown(twenty); got != 31 {
		t.Errorf("20 s job slowdown = %v, want 31", got)
	}
}

func TestBoundedSlowdown(t *testing.T) {
	// 1 s job waiting 600 s: raw slowdown 601, bounded (tau=60) is
	// 601/60.
	r := sim.Record{
		Job:   &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 1, Runtime: 1},
		Start: 600, Finish: 601,
	}
	want := 601.0 / 60
	if got := BoundedSlowdown(r, DefaultTau); math.Abs(got-want) > 1e-12 {
		t.Errorf("bounded slowdown = %v, want %v", got, want)
	}
	// Bounded slowdown is never below 1.
	quick := sim.Record{
		Job:   &job.Job{ID: 2, Submit: 0, Width: 1, Estimate: 5, Runtime: 5},
		Start: 0, Finish: 5,
	}
	if got := BoundedSlowdown(quick, DefaultTau); got != 1 {
		t.Errorf("bounded slowdown of immediate short job = %v, want 1", got)
	}
	// For runtimes above tau it matches the raw slowdown.
	long := sim.Record{
		Job:   &job.Job{ID: 3, Submit: 0, Width: 1, Estimate: 100, Runtime: 100},
		Start: 50, Finish: 150,
	}
	if got, raw := BoundedSlowdown(long, DefaultTau), Slowdown(long); got != raw {
		t.Errorf("bounded %v != raw %v for long job", got, raw)
	}
}

func TestSLDwAWeighting(t *testing.T) {
	res := mkResult()
	// Areas: a = 10, b = 40. Slowdowns: 1, 1.5.
	want := (10*1.0 + 40*1.5) / 50
	if got := SLDwA(res); math.Abs(got-want) > 1e-12 {
		t.Errorf("SLDwA = %v, want %v", got, want)
	}
}

func TestSLDwAPaperWeightExample(t *testing.T) {
	// The paper's motivation: with area weighting the 1 s single-CPU
	// job contributes slowdown*area = 601, the 20 s job 620 — the
	// longer job dominates despite the smaller raw slowdown.
	short := &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 1, Runtime: 1}
	twenty := &job.Job{ID: 2, Submit: 0, Width: 1, Estimate: 20, Runtime: 20}
	res := &sim.Result{
		Set: &job.Set{Name: "p", Machine: 2, Jobs: []*job.Job{short, twenty}},
		Records: []sim.Record{
			{Job: short, Start: 600, Finish: 601},
			{Job: twenty, Start: 600, Finish: 620},
		},
		Makespan: 620,
	}
	want := (601.0*1 + 31.0*20) / 21
	if got := SLDwA(res); math.Abs(got-want) > 1e-12 {
		t.Errorf("SLDwA = %v, want %v", got, want)
	}
}

func TestART_AWT_ARTwW(t *testing.T) {
	res := mkResult()
	if got := ART(res); math.Abs(got-20) > 1e-12 { // (10+30)/2
		t.Errorf("ART = %v, want 20", got)
	}
	if got := AWT(res); math.Abs(got-5) > 1e-12 { // (0+10)/2
		t.Errorf("AWT = %v, want 5", got)
	}
	want := (1*10.0 + 2*30.0) / 3
	if got := ARTwW(res); math.Abs(got-want) > 1e-12 {
		t.Errorf("ARTwW = %v, want %v", got, want)
	}
}

func TestUtilization(t *testing.T) {
	res := mkResult()
	// Area 10 + 40 = 50 over 4 procs * 30 s = 120.
	want := 50.0 / 120
	if got := Utilization(res); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestUtilizationDegenerate(t *testing.T) {
	res := &sim.Result{Set: &job.Set{Machine: 4}, Makespan: 0, First: 0}
	if got := Utilization(res); got != 0 {
		t.Errorf("degenerate utilization = %v", got)
	}
}

func TestEmptyResultMetrics(t *testing.T) {
	res := &sim.Result{Set: &job.Set{Machine: 4}}
	for name, got := range map[string]float64{
		"SLDwA": SLDwA(res), "ART": ART(res), "AWT": AWT(res),
		"ARTwW": ARTwW(res), "BoundedSLDwA": BoundedSLDwA(res, DefaultTau),
	} {
		if got != 0 {
			t.Errorf("%s of empty result = %v", name, got)
		}
	}
	if MaxWait(res) != 0 {
		t.Error("MaxWait of empty result != 0")
	}
}

func TestMaxWait(t *testing.T) {
	if got := MaxWait(mkResult()); got != 10 {
		t.Errorf("MaxWait = %d, want 10", got)
	}
}

func TestSLDwAEqualsARTwWRelation(t *testing.T) {
	// For jobs of width 1 and slowdown computed over actual runtimes,
	// SLDwA = sum(run*sld)/sum(run) = sum(response)/sum(run); for unit
	// widths ARTwW = mean(response). Cross-check the two on a common
	// example: SLDwA * mean(run) == ARTwW when all runtimes are equal.
	a := &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 10, Runtime: 10}
	b := &job.Job{ID: 2, Submit: 0, Width: 1, Estimate: 10, Runtime: 10}
	res := &sim.Result{
		Set: &job.Set{Name: "r", Machine: 1, Jobs: []*job.Job{a, b}},
		Records: []sim.Record{
			{Job: a, Start: 0, Finish: 10},
			{Job: b, Start: 10, Finish: 20},
		},
		Makespan: 20,
	}
	if got, want := SLDwA(res)*10, ARTwW(res); math.Abs(got-want) > 1e-12 {
		t.Errorf("SLDwA*run = %v, ARTwW = %v", got, want)
	}
}
