// Package metrics computes the performance measures the paper evaluates on
// completed simulation runs: the slowdown weighted by job area (SLDwA),
// bounded slowdown, response-time averages and machine utilization.
package metrics

import (
	"math"

	"dynp/internal/sim"
)

// Slowdown returns the job slowdown s = response/runtime = 1 + wait/runtime
// (paper, Section 4.1). Run times are at least one second by the job
// invariants, so no clamping is needed.
func Slowdown(r sim.Record) float64 {
	return float64(r.Response()) / float64(r.Job.Runtime)
}

// BoundedSlowdown returns the bounded slowdown s^tau = max(response /
// max(runtime, tau), 1) of [2], which mutes the impact of very short jobs.
// The paper cites tau = 60 seconds.
func BoundedSlowdown(r sim.Record, tau int64) float64 {
	den := r.Job.Runtime
	if den < tau {
		den = tau
	}
	return math.Max(float64(r.Response())/float64(den), 1)
}

// DefaultTau is the bounded-slowdown threshold used in the paper (60 s).
const DefaultTau = 60

// SLDwA returns the average slowdown weighted by job area:
// sum(a_i*s_i)/sum(a_i) with a_i = runtime_i * width_i. Jobs with equal run
// times but different widths thereby impact the result proportionally to
// the resources they actually consumed.
func SLDwA(res *sim.Result) float64 {
	var num, den float64
	for _, r := range res.Records {
		a := float64(r.Job.Area())
		num += a * Slowdown(r)
		den += a
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// BoundedSLDwA is SLDwA computed over bounded slowdowns with threshold tau.
func BoundedSLDwA(res *sim.Result, tau int64) float64 {
	var num, den float64
	for _, r := range res.Records {
		a := float64(r.Job.Area())
		num += a * BoundedSlowdown(r, tau)
		den += a
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ART returns the average response time in seconds.
func ART(res *sim.Result) float64 {
	if len(res.Records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range res.Records {
		sum += float64(r.Response())
	}
	return sum / float64(len(res.Records))
}

// ARTwW returns the average response time weighted by job width. The paper
// notes SLDwA equals ARTwW up to a job-set-dependent constant.
func ARTwW(res *sim.Result) float64 {
	var num, den float64
	for _, r := range res.Records {
		w := float64(r.Job.Width)
		num += w * float64(r.Response())
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// AWT returns the average waiting time in seconds.
func AWT(res *sim.Result) float64 {
	if len(res.Records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range res.Records {
		sum += float64(r.Wait())
	}
	return sum / float64(len(res.Records))
}

// Utilization returns the fraction of processor-seconds used between the
// first submission and the last completion: sum(area) / (capacity *
// (makespan - first submit)). The result is in [0, 1].
func Utilization(res *sim.Result) float64 {
	span := res.Makespan - res.First
	if span <= 0 {
		return 0
	}
	var area float64
	for _, r := range res.Records {
		area += float64(r.Job.Area())
	}
	return area / (float64(res.Set.Machine) * float64(span))
}

// MaxWait returns the longest waiting time observed, a fairness indicator
// used by the extension experiments.
func MaxWait(res *sim.Result) int64 {
	var max int64
	for _, r := range res.Records {
		if w := r.Wait(); w > max {
			max = w
		}
	}
	return max
}
