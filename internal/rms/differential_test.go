package rms

// Differential test of the shared scheduling engine: the same SWF
// workload runs once through the offline simulator (sim.Run) and once
// through the online scheduler, fed by Deliver batches at exactly the
// simulator's event instants. Because both front ends delegate every
// transition to internal/engine, each job must start and finish at
// identical times and the self-tuning decider must take an identical
// decision trace — for all three deciders of the paper. The online
// trace carries one extra leading decision from the construction-time
// replan, whose outcome (the initial active policy) is decider-specific;
// every subsequent decision must match the offline one exactly.

import (
	"bytes"
	"sort"
	"testing"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
	"dynp/internal/swf"
)

// differentialWorkload builds a random workload and round-trips it
// through SWF, the interchange format both tools consume in practice.
// Runtimes are drawn up to the estimate, so some jobs exercise the
// client-completion path and some the RMS kill-at-estimate path.
func differentialWorkload(t *testing.T) *job.Set {
	t.Helper()
	r := rng.New(0x5eed)
	const n, machine = 120, 16
	src := &job.Set{Name: "diff", Machine: machine}
	var clock int64
	for i := 0; i < n; i++ {
		clock += int64(r.Intn(40))
		est := int64(1 + r.Intn(150))
		src.Jobs = append(src.Jobs, &job.Job{
			ID: job.ID(i + 1), Submit: clock,
			Width: 1 + r.Intn(machine), Estimate: est, Runtime: 1 + r.Int63n(est),
		})
	}
	var buf bytes.Buffer
	if err := swf.Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	set, err := swf.Read(&buf, swf.ReadOptions{Name: "diff", Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Jobs) != n {
		t.Fatalf("SWF round trip kept %d of %d jobs", len(set.Jobs), n)
	}
	return set
}

func TestDifferentialSimVsRMS(t *testing.T) {
	set := differentialWorkload(t)
	deciders := []struct {
		name string
		mk   func() core.Decider
	}{
		{"simple", func() core.Decider { return core.Simple{} }},
		{"advanced", func() core.Decider { return core.Advanced{} }},
		{"preferred-sjf", func() core.Decider { return core.Preferred{Policy: policy.SJF} }},
	}
	for _, d := range deciders {
		t.Run(d.name, func(t *testing.T) { runDifferential(t, set, d.mk) })
	}
}

func runDifferential(t *testing.T, set *job.Set, mkDecider func() core.Decider) {
	offDrv := sim.NewDynP(mkDecider())
	offDrv.Tuner.EnableTrace()
	offline, err := sim.Run(set, offDrv)
	if err != nil {
		t.Fatal(err)
	}
	start := make(map[job.ID]int64, len(set.Jobs))
	finish := make(map[job.ID]int64, len(set.Jobs))
	for _, rec := range offline.Records {
		start[rec.Job.ID] = rec.Start
		finish[rec.Job.ID] = rec.Finish
	}

	onDrv := sim.NewDynP(mkDecider())
	onDrv.Tuner.EnableTrace()
	online, err := New(set.Machine, onDrv, offline.First)
	if err != nil {
		t.Fatal(err)
	}

	// The simulator replans at every distinct submission or completion
	// instant; deliver one batch per such instant so the online side
	// takes exactly the same replanning steps. Jobs that exhaust their
	// estimate get no client completion — Deliver's kill sweep must
	// terminate them at the very same instant.
	instantSet := make(map[int64]struct{})
	for _, j := range set.Jobs {
		instantSet[j.Submit] = struct{}{}
		instantSet[finish[j.ID]] = struct{}{}
	}
	instants := make([]int64, 0, len(instantSet))
	for ti := range instantSet {
		instants = append(instants, ti)
	}
	sort.Slice(instants, func(a, b int) bool { return instants[a] < instants[b] })

	onlineID := make(map[job.ID]job.ID, len(set.Jobs)) // set job -> online job
	subIdx := 0
	for _, now := range instants {
		var done []job.ID
		for _, j := range set.Jobs {
			if j.Runtime < j.Estimate && finish[j.ID] == now {
				done = append(done, onlineID[j.ID])
			}
		}
		var subs []Submission
		var subJobs []job.ID
		for ; subIdx < len(set.Jobs) && set.Jobs[subIdx].Submit == now; subIdx++ {
			j := set.Jobs[subIdx]
			subs = append(subs, Submission{Width: j.Width, Estimate: j.Estimate})
			subJobs = append(subJobs, j.ID)
		}
		infos, err := online.Deliver(now, done, subs)
		if err != nil {
			t.Fatalf("deliver at t=%d: %v", now, err)
		}
		for i, info := range infos {
			onlineID[subJobs[i]] = info.ID
		}
	}

	if got := len(online.Finished()); got != len(set.Jobs) {
		t.Fatalf("online finished %d of %d jobs", got, len(set.Jobs))
	}
	for _, j := range set.Jobs {
		info, err := online.Job(onlineID[j.ID])
		if err != nil {
			t.Fatal(err)
		}
		if info.Started != start[j.ID] || info.Finished != finish[j.ID] {
			t.Errorf("job %d: online ran [%d, %d], offline [%d, %d]",
				j.ID, info.Started, info.Finished, start[j.ID], finish[j.ID])
		}
		wantState := StateCompleted
		if j.Runtime == j.Estimate {
			wantState = StateKilled
		}
		if info.State != wantState {
			t.Errorf("job %d: online state %s, want %s", j.ID, info.State, wantState)
		}
	}

	offT, onT := offDrv.Tuner.Trace(), onDrv.Tuner.Trace()
	if len(onT) != len(offT)+1 {
		t.Fatalf("decision traces: online took %d steps, offline %d (want offline+1 for the construction replan)",
			len(onT), len(offT))
	}
	for i, a := range offT {
		b := onT[i+1]
		if a.Time != b.Time || a.Chosen != b.Chosen {
			t.Fatalf("decision %d: offline t=%d %s->%s, online t=%d %s->%s",
				i, a.Time, a.Old, a.Chosen, b.Time, b.Old, b.Chosen)
		}
		// The first offline Old is the tuner's initial policy; the online
		// side already took its construction decision by then, so Old is
		// only comparable from the second shared step on.
		if i > 0 && a.Old != b.Old {
			t.Fatalf("decision %d: offline old policy %s, online %s", i, a.Old, b.Old)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("decision %d: %d offline scores, %d online", i, len(a.Values), len(b.Values))
		}
		for k := range a.Values {
			if a.Values[k] != b.Values[k] {
				t.Fatalf("decision %d, candidate %d: offline score %v, online %v",
					i, k, a.Values[k], b.Values[k])
			}
		}
	}
}
