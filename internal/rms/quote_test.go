package rms

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

// quoteDeciders enumerates the paper's three decider mechanisms; the
// honesty guarantee must hold for every one of them.
func quoteDeciders() map[string]func() sim.Driver {
	return map[string]func() sim.Driver{
		"simple":        func() sim.Driver { return sim.NewDynP(core.Simple{}) },
		"advanced":      func() sim.Driver { return sim.NewDynP(core.Advanced{}) },
		"SJF-preferred": func() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) },
	}
}

// loadedQuoteScheduler builds a quote-enabled scheduler mid-drain: a
// deterministic mix of running, waiting and finished jobs under the
// given driver factory.
func loadedQuoteScheduler(t *testing.T, capacity int, seed uint64, factory func() sim.Driver) *Scheduler {
	t.Helper()
	s, err := New(capacity, factory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableQuotes(factory); err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	now := int64(0)
	for i := 0; i < 15; i++ {
		subs := make([]Submission, 1+r.Intn(4))
		for k := range subs {
			subs[k] = Submission{Width: 1 + r.Intn(capacity/2), Estimate: int64(50 + r.Intn(400))}
		}
		now += int64(20 + r.Intn(80))
		if _, err := s.Deliver(now, nil, subs); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// driveUntilDone advances the scheduler until the given job leaves the
// waiting queue and then until it leaves the machine, returning its
// final info.
func driveUntilDone(t *testing.T, s *Scheduler, id job.ID) JobInfo {
	t.Helper()
	now := s.Now()
	for i := 0; i < 10000; i++ {
		info, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateWaiting && info.State != StateRunning {
			return info
		}
		now += 25
		if err := s.Advance(now); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("job %d never finished", id)
	return JobInfo{}
}

// TestQuoteHonesty is the differential guarantee of the quote service:
// on a quiescent scheduler (no further external submissions), the quote
// for a job equals the realized start of the same job submitted for
// real — for all three decider mechanisms, across job shapes. The twin
// must therefore replay future kills, launches and self-tuning policy
// switches exactly as the live scheduler performs them.
func TestQuoteHonesty(t *testing.T) {
	shapes := []struct {
		width    int
		estimate int64
	}{
		{1, 60}, {3, 250}, {8, 500}, {16, 120},
	}
	for name, factory := range quoteDeciders() {
		t.Run(name, func(t *testing.T) {
			for _, shape := range shapes {
				s := loadedQuoteScheduler(t, 32, 0xA11CE, factory)
				qs, err := s.Quote(shape.width, shape.estimate, 1)
				if err != nil {
					t.Fatal(err)
				}
				q := qs[0]
				if q.Start == NeverStart {
					t.Fatalf("width %d quoted NeverStart on a healthy machine", shape.width)
				}
				info, err := s.Submit(shape.width, shape.estimate)
				if err != nil {
					t.Fatal(err)
				}
				final := driveUntilDone(t, s, info.ID)
				if final.Started != q.Start {
					t.Errorf("%s width=%d est=%d: quoted start %d, realized %d",
						name, shape.width, shape.estimate, q.Start, final.Started)
				}
				if want := q.Start + shape.estimate; final.Finished != want || q.Finish != want {
					t.Errorf("%s width=%d est=%d: quoted finish %d, realized %d (start %d)",
						name, shape.width, shape.estimate, q.Finish, final.Finished, final.Started)
				}
				if q.Wait != q.Start-info.Submitted {
					t.Errorf("quote wait %d inconsistent with start %d at submit time %d",
						q.Wait, q.Start, info.Submitted)
				}
			}
		})
	}
}

// TestQuoteBatchHonesty extends the differential guarantee to batch
// quotes: quoting count replicas equals submitting them back to back.
func TestQuoteBatchHonesty(t *testing.T) {
	const replicas = 3
	for name, factory := range quoteDeciders() {
		t.Run(name, func(t *testing.T) {
			s := loadedQuoteScheduler(t, 32, 0xBA7C4, factory)
			qs, err := s.Quote(5, 300, replicas)
			if err != nil {
				t.Fatal(err)
			}
			if len(qs) != replicas {
				t.Fatalf("asked for %d quotes, got %d", replicas, len(qs))
			}
			ids := make([]job.ID, replicas)
			for i := range ids {
				info, err := s.Submit(5, 300)
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = info.ID
			}
			for i, id := range ids {
				final := driveUntilDone(t, s, id)
				if final.Started != qs[i].Start {
					t.Errorf("%s replica %d: quoted start %d, realized %d",
						name, i, qs[i].Start, final.Started)
				}
			}
		})
	}
}

// TestQuoteDoesNotPerturbScheduling interleaves a quote after every
// mutation of a full drain and asserts the outcome is byte-identical to
// a quote-free reference run: the twin shares nothing mutable with the
// live engine.
func TestQuoteDoesNotPerturbScheduling(t *testing.T) {
	run := func(quoteEvery bool) (*Scheduler, []JobInfo, Report) {
		factory := func() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) }
		s, err := New(24, factory(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableQuotes(factory); err != nil {
			t.Fatal(err)
		}
		// Quote parameters come from their own stream so both runs submit
		// the identical workload.
		r, qr := rng.New(42), rng.New(777)
		now := int64(0)
		for i := 0; i < 40; i++ {
			subs := []Submission{{Width: 1 + r.Intn(8), Estimate: int64(40 + r.Intn(300))}}
			now += int64(10 + r.Intn(60))
			if _, err := s.Deliver(now, nil, subs); err != nil {
				t.Fatal(err)
			}
			if quoteEvery {
				if _, err := s.Quote(1+qr.Intn(8), int64(50+qr.Intn(200)), 1+qr.Intn(3)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 1000 && s.Report().Jobs < 40; i++ {
			now += 200
			if err := s.Advance(now); err != nil {
				t.Fatal(err)
			}
			if quoteEvery {
				if _, err := s.Quote(2, 100, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s, s.Finished(), s.Report()
	}
	sQ, finQ, repQ := run(true)
	_, finRef, repRef := run(false)
	if !reflect.DeepEqual(finQ, finRef) {
		t.Errorf("finished histories diverged: with quotes %d jobs, reference %d", len(finQ), len(finRef))
		for i := range finRef {
			if i < len(finQ) && finQ[i] != finRef[i] {
				t.Errorf("first divergence at %d: %+v vs %+v", i, finQ[i], finRef[i])
				break
			}
		}
	}
	if repQ != repRef {
		t.Errorf("reports diverged: %+v vs %+v", repQ, repRef)
	}
	if err := sQ.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if live := sQ.QuoteTwinsLive(); live != 0 {
		t.Errorf("%d twins still checked out after quiescence", live)
	}
}

// TestQuoteNeverStartWiderThanEffective pins the failed-processor
// guard: a quote wider than the effective capacity answers with the
// NeverStart sentinel immediately — no twin run, no infinite forward
// simulation — and the Submit rejection for an impossible width names
// the current effective capacity.
func TestQuoteNeverStartWiderThanEffective(t *testing.T) {
	s := loadedQuoteScheduler(t, 16, 7, quoteDeciders()["SJF-preferred"])
	if err := s.Fail(10); err != nil {
		t.Fatal(err)
	}
	qs, err := s.Quote(8, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.Start != NeverStart || q.Finish != NeverStart || q.Wait != NeverStart {
			t.Errorf("replica %d of an unplaceable quote = %+v, want NeverStart sentinels", i, q)
		}
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("NeverStart fast path leaked %d twins", live)
	}
	// The same shape still fits the installed capacity: submitting it is
	// legal (it queues until processors return).
	if _, err := s.Submit(8, 100); err != nil {
		t.Fatalf("submit within installed capacity rejected: %v", err)
	}
	// A width beyond the installed capacity is rejected, naming the
	// effective capacity so the caller sees both limits.
	_, err = s.Submit(20, 100)
	if err == nil || !strings.Contains(err.Error(), "effective capacity now 6") {
		t.Errorf("submit error %v does not name the effective capacity", err)
	}
	if _, err := s.Quote(20, 100, 1); err == nil || !strings.Contains(err.Error(), "effective capacity now 6") {
		t.Errorf("quote error %v does not name the effective capacity", err)
	}
	// Once capacity returns, the same quote gets a real start again.
	if err := s.Restore(10); err != nil {
		t.Fatal(err)
	}
	qs, err = s.Quote(8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Start == NeverStart {
		t.Error("quote still NeverStart after capacity restore")
	}
}

// TestQuoteValidation pins the error paths that must answer without
// ever acquiring a twin.
func TestQuoteValidation(t *testing.T) {
	plain := newFCFS(t, 8)
	if _, err := plain.Quote(1, 1, 1); err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Errorf("quote on a quote-less scheduler: %v", err)
	}

	s := loadedQuoteScheduler(t, 8, 3, quoteDeciders()["simple"])
	for _, tc := range []struct {
		width    int
		estimate int64
		count    int
	}{
		{0, 100, 1}, {-1, 100, 1}, {9, 100, 1},
		{1, 0, 1}, {1, -5, 1},
		{1, 100, -1}, {1, 100, MaxQuoteBatch + 1},
	} {
		if _, err := s.Quote(tc.width, tc.estimate, tc.count); err == nil {
			t.Errorf("Quote(%d, %d, %d) accepted", tc.width, tc.estimate, tc.count)
		}
	}
	// count 0 means 1, matching an omitted protocol field.
	qs, err := s.Quote(1, 100, 0)
	if err != nil || len(qs) != 1 {
		t.Errorf("Quote(count=0) = %v, %v; want one quote", qs, err)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("validation paths leaked %d twins", live)
	}
}

// TestQuoteJournalSticky: a failed journal refuses every mutation, so
// quotes — predictions about submissions that can no longer happen —
// are refused too, before any twin is acquired.
func TestQuoteJournalSticky(t *testing.T) {
	s, j, _ := journaledScheduler(t, 8, 0)
	if err := s.EnableQuotes(newDynP); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quote(2, 100, 1); err != nil {
		t.Fatalf("quote on a healthy journaled scheduler: %v", err)
	}
	// Kill the file under the journal: the next append fails sticky.
	j.f.Close()
	if _, err := s.Submit(1, 10); err == nil {
		t.Fatal("submit succeeded with a dead journal")
	}
	_, err := s.Quote(2, 100, 1)
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("quote with a failed journal: %v", err)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("journal-sticky path leaked %d twins", live)
	}
}

// TestQuoteMidReplay: while the daemon replays its journal the server
// is not ready, and the quote op is refused like every other non-health
// op — without touching the twin pool.
func TestQuoteMidReplay(t *testing.T) {
	s := loadedQuoteScheduler(t, 8, 5, quoteDeciders()["simple"])
	sv := NewServer(s, true)
	sv.SetReady(false)
	resp := sv.Handle(Request{Op: "quote", Width: 2, Estimate: 100})
	if resp.OK || !strings.Contains(resp.Error, "replay") {
		t.Errorf("quote mid-replay = %+v", resp)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("mid-replay refusal leaked %d twins", live)
	}
	sv.SetReady(true)
	if resp := sv.Handle(Request{Op: "quote", Width: 2, Estimate: 100}); !resp.OK {
		t.Errorf("quote after replay = %+v", resp)
	}
}

// misnamedDriver wears the live driver's name but cannot restore its
// state: EnableQuotes's name probe passes, and the failure surfaces
// inside the twin run — after the twin was acquired.
type misnamedDriver struct {
	sim.Static
	name string
}

func (d *misnamedDriver) Name() string { return d.name }

// TestQuoteTwinLifecycle pins the pool discipline, mirroring
// plan.Schedule.Release: every acquire is paired with exactly one
// release on success and on the post-acquisition error path, and a
// double release panics instead of corrupting the pool.
func TestQuoteTwinLifecycle(t *testing.T) {
	factory := quoteDeciders()["SJF-preferred"]
	s := loadedQuoteScheduler(t, 16, 9, factory)

	// Success path: a storm of quotes leaves nothing checked out.
	for i := 0; i < 50; i++ {
		if _, err := s.Quote(1+i%8, int64(50+10*i), 1+i%3); err != nil {
			t.Fatal(err)
		}
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Fatalf("%d twins live after sequential quotes", live)
	}

	// Post-acquisition error path: swap in a factory whose driver wears
	// the right name but cannot restore the snapshot's tuner state. The
	// twin is acquired, the run fails, and the twin must still come back.
	name := factory().Name()
	bad := func() sim.Driver {
		return &misnamedDriver{Static: sim.Static{Policy: policy.FCFS}, name: name}
	}
	if err := s.EnableQuotes(bad); err != nil {
		t.Fatal(err)
	}
	_, err := s.Quote(2, 100, 1)
	if err == nil || !strings.Contains(err.Error(), "cannot restore") {
		t.Fatalf("quote with a stateless twin driver for a stateful scheduler: %v", err)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("error path leaked %d twins", live)
	}
	if err := s.EnableQuotes(factory); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quote(2, 100, 1); err != nil {
		t.Fatalf("quote after restoring the real factory: %v", err)
	}

	// Double release panics loudly.
	tw := s.acquireTwin()
	tw.release(s)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double twin release did not panic")
			}
		}()
		tw.release(s)
	}()
	// The panicked release must not have corrupted the gauge. It went
	// -1 transiently inside the panicking call? No: release panics
	// before touching the gauge, so the count is exact.
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("gauge at %d after double-release panic", live)
	}
}

// TestEnableQuotesRejectsMismatchedFactory: a factory that builds a
// different scheduler than the live one would produce confidently wrong
// quotes; it is rejected at enable time.
func TestEnableQuotesRejectsMismatchedFactory(t *testing.T) {
	s := newFCFS(t, 8)
	err := s.EnableQuotes(newDynP)
	if err == nil || !strings.Contains(err.Error(), "factory builds") {
		t.Errorf("mismatched factory accepted: %v", err)
	}
	if err := s.EnableQuotes(nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := s.EnableQuotes(func() sim.Driver { return nil }); err == nil {
		t.Error("nil-driver factory accepted")
	}
	if err := s.EnableQuotes(func() sim.Driver { return &sim.Static{Policy: policy.FCFS} }); err != nil {
		t.Errorf("matching factory rejected: %v", err)
	}
	if _, err := s.Quote(4, 100, 1); err != nil {
		t.Errorf("quote on a stateless scheduler: %v", err)
	}
}

// TestConcurrentQuoteSoak is the isolation proof at scale: thousands of
// concurrent quotes hammer the scheduler while it drains a 1000-job
// workload, and the drain's outcome must be byte-identical to a
// quote-free reference run — plus a latency bound showing quotes never
// block mutators (Quote never takes the scheduling lock at all). Run
// under -race by make race.
func TestConcurrentQuoteSoak(t *testing.T) {
	const (
		jobs        = 1000
		capacity    = 64
		quoters     = 4
		quoteTarget = 10000
	)
	factory := func() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) }

	drain := func(s *Scheduler) time.Duration {
		r := rng.New(1234)
		now := int64(0)
		var maxMut time.Duration
		mutate := func(f func() error) {
			begin := time.Now()
			if err := f(); err != nil {
				t.Error(err)
			}
			if d := time.Since(begin); d > maxMut {
				maxMut = d
			}
		}
		for submitted := 0; submitted < jobs; {
			subs := make([]Submission, 0, 4)
			for b := 0; b < 4 && submitted+len(subs) < jobs; b++ {
				subs = append(subs, Submission{Width: 1 + r.Intn(8), Estimate: int64(50 + r.Intn(400))})
			}
			now += int64(20 + r.Intn(120))
			mutate(func() error { _, err := s.Deliver(now, nil, subs); return err })
			submitted += len(subs)
		}
		for i := 0; i < 10000 && s.Report().Jobs < jobs; i++ {
			now += 400
			mutate(func() error { return s.Advance(now) })
		}
		return maxMut
	}

	// Reference: the same drain with no quote traffic.
	ref, err := New(capacity, factory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	drain(ref)

	s, err := New(capacity, factory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableQuotes(factory); err != nil {
		t.Fatal(err)
	}
	var (
		stop    atomic.Bool
		quotes  atomic.Int64
		never   atomic.Int64
		wg      sync.WaitGroup
		quoteRg [quoters]*rng.Stream
	)
	for i := range quoteRg {
		quoteRg[i] = rng.New(uint64(100 + i))
	}
	for w := 0; w < quoters; w++ {
		wg.Add(1)
		go func(r *rng.Stream) {
			defer wg.Done()
			for !stop.Load() {
				count := 1 + r.Intn(2)
				qs, err := s.Quote(1+r.Intn(4), int64(50+r.Intn(150)), count)
				if err != nil {
					t.Errorf("concurrent quote: %v", err)
					return
				}
				if len(qs) != count {
					t.Errorf("asked %d quotes, got %d", count, len(qs))
					return
				}
				for _, q := range qs {
					if q.Start == NeverStart {
						never.Add(1) // impossible: nothing ever fails here
					}
				}
				quotes.Add(int64(count))
			}
		}(quoteRg[w])
	}

	maxMut := drain(s)
	// Keep quoting against the drained scheduler until the target is
	// met; post-drain twins are nearly free, the in-drain ones were the
	// expensive, contended ones.
	for quotes.Load() < quoteTarget && !t.Failed() {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if got := quotes.Load(); got < quoteTarget {
		t.Errorf("soak produced %d quotes, want >= %d", got, quoteTarget)
	}
	if n := never.Load(); n != 0 {
		t.Errorf("%d quotes answered NeverStart on a healthy machine", n)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("%d twins still live after the soak", live)
	}
	// Mutators never touch the quote path; the bound is generous enough
	// for race-instrumented CI but catches real starvation outright.
	if maxMut > 5*time.Second {
		t.Errorf("worst mutator op took %v under quote load", maxMut)
	}
	// Zero divergence: the quote storm must not have changed one byte of
	// scheduling outcome.
	if finQ, finR := s.Finished(), ref.Finished(); !reflect.DeepEqual(finQ, finR) {
		t.Errorf("finished histories diverged under quote load (%d vs %d jobs)", len(finQ), len(finR))
	}
	if repQ, repR := s.Report(), ref.Report(); repQ != repR {
		t.Errorf("reports diverged under quote load: %+v vs %+v", repQ, repR)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
	t.Logf("soak: %d quotes, worst mutator op %v", quotes.Load(), maxMut)
}

// quoteServer starts a quote-enabled dynP server on a loopback listener.
func quoteServer(t *testing.T, configure func(*Server)) (*Server, *Scheduler, string) {
	t.Helper()
	factory := func() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) }
	s, err := New(16, factory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableQuotes(factory); err != nil {
		t.Fatal(err)
	}
	sv := NewServer(s, true)
	if configure != nil {
		configure(sv)
	}
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv, s, addr.String()
}

// TestQuoteOverProtocol drives the quote op end to end over the wire.
func TestQuoteOverProtocol(t *testing.T) {
	_, s, addr := quoteServer(t, nil)
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(4, 200); err != nil {
			t.Fatal(err)
		}
	}
	c, err := DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs, err := c.Quote(4, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("got %d quotes, want 2", len(qs))
	}
	want, err := s.Quote(4, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qs, want) {
		t.Errorf("wire quotes %+v != direct quotes %+v", qs, want)
	}
	// Deterministic rejection: not busy, not retried, surfaced as a
	// server error.
	if _, err := c.Quote(99, 300, 1); err == nil {
		t.Error("oversized quote width accepted over the wire")
	} else {
		var serr *ServerError
		if !errors.As(err, &serr) || serr.Busy {
			t.Errorf("oversized width error = %v, want non-busy server error", err)
		}
	}
}

// TestQuoteShedsBeforeReads pins the shedding order: on a degraded
// connection quotes are shed exactly like reads, and the quote kill
// switch (QuoteMax < 0) sheds every quote even at full service while
// reads keep flowing — quotes are always the first load dropped.
func TestQuoteShedsBeforeReads(t *testing.T) {
	sv, _, _ := quoteServer(t, func(sv *Server) { sv.QuoteMax = -1 })
	// Degraded connection: quote is a read-class op and is shed.
	resp := sv.handle(Request{Op: "quote", Width: 2, Estimate: 100}, true)
	if !resp.Busy {
		t.Errorf("degraded quote = %+v, want busy", resp)
	}
	// Full service with the kill switch: quotes shed, reads still served.
	resp = sv.handle(Request{Op: "quote", Width: 2, Estimate: 100}, false)
	if !resp.Busy {
		t.Errorf("kill-switched quote = %+v, want busy", resp)
	}
	if resp := sv.handle(Request{Op: "status"}, false); !resp.OK {
		t.Errorf("read shed alongside quotes: %+v", resp)
	}
	if resp := sv.handle(Request{Op: "submit", Width: 2, Estimate: 100}, false); !resp.OK {
		t.Errorf("mutator shed alongside quotes: %+v", resp)
	}
}

// TestQuoteAdmissionLane floods a stalled quote lane and asserts the
// contract: exactly QuoteMax requests are admitted (and wait for a
// worker), everything beyond is an honest busy shed — never an error.
// The single worker slot is held by the test, so the backpressure is
// deterministic rather than a race against quote latency.
func TestQuoteAdmissionLane(t *testing.T) {
	sv, s, _ := quoteServer(t, func(sv *Server) {
		sv.QuoteWorkers = 1
		sv.QuoteMax = 2
	})
	for i := 0; i < 30; i++ {
		if _, err := s.Submit(1+i%8, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	sv.quoteOnce.Do(sv.initQuoteLane)
	sv.quoteSem <- struct{}{} // stall the lane's only worker
	const flood = 32
	var ok, busy atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := sv.Handle(Request{Op: "quote", Width: 2, Estimate: 150})
			switch {
			case resp.OK:
				ok.Add(1)
			case resp.Busy:
				busy.Add(1)
			default:
				t.Errorf("quote flood produced a hard error: %+v", resp)
			}
		}()
	}
	// The two admitted requests wait on the stalled worker; the other
	// thirty must shed.
	for deadline := time.Now().Add(10 * time.Second); busy.Load() < flood-2; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d sheds against a stalled 2-slot lane", busy.Load())
		}
		time.Sleep(time.Millisecond)
	}
	<-sv.quoteSem // unstall; the admitted pair completes
	wg.Wait()
	if ok.Load() != 2 || busy.Load() != flood-2 {
		t.Errorf("flood: %d served, %d shed; want 2 and %d", ok.Load(), busy.Load(), flood-2)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("%d twins live after the flood", live)
	}
}

// TestClientQuoteRetriesBusy: busy sheds are not verdicts; the client
// treats quote as idempotent and retries through them with backoff.
func TestClientQuoteRetriesBusy(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A hand-rolled server: busy for the first two requests, then real
	// quotes.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for served := 0; ; served++ {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			_ = n
			if served < 2 {
				fmt.Fprintf(conn, "{\"ok\":false,\"busy\":true,\"error\":\"rms: server busy: quote shed under load (retry)\",\"now\":0}\n")
				continue
			}
			fmt.Fprintf(conn, "{\"ok\":true,\"quotes\":[{\"width\":2,\"estimate\":100,\"start\":7,\"finish\":107,\"wait\":7}],\"now\":0}\n")
		}
	}()
	c, err := DialOptions(l.Addr().String(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs, err := c.Quote(2, 100, 1)
	if err != nil {
		t.Fatalf("quote through busy sheds: %v", err)
	}
	if len(qs) != 1 || qs[0].Start != 7 {
		t.Errorf("quote = %+v", qs)
	}
}

// TestClientQuoteRetriesNetworkFault: quote is idempotent, so a severed
// connection is retried transparently like the other read ops.
func TestClientQuoteRetriesNetworkFault(t *testing.T) {
	_, s, addr := quoteServer(t, nil)
	if _, err := s.Submit(2, 100); err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Quote(2, 100, 1); err != nil {
		t.Fatal(err)
	}
	// Sever the connection; the idempotent retry loop reconnects.
	c.conn.Close()
	if _, err := c.Quote(2, 100, 1); err != nil {
		t.Fatalf("quote after severed connection: %v", err)
	}
}

// TestQuotePooledTwinReuse exercises arena reuse across quotes of very
// different shapes: growing and shrinking live-job counts must never
// leak state from one quote into the next.
func TestQuotePooledTwinReuse(t *testing.T) {
	factory := quoteDeciders()["SJF-preferred"]
	s := loadedQuoteScheduler(t, 32, 0xF00D, factory)
	first, err := s.Quote(4, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Quote(1+i%16, int64(60+i*13), 1+i%5); err != nil {
			t.Fatal(err)
		}
	}
	// The same question must get the same answer: quotes are pure reads
	// and the pool must not carry state between runs.
	again, err := s.Quote(4, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Errorf("repeated quote diverged: %+v then %+v", first, again)
	}
}

// TestQuoteSpeculationEquivalence is the quote-side byte-identity gate
// for the speculative planning pipeline: with twin speculation on, every
// quote — across deciders, shapes and batch sizes — must equal the
// spec-off answer exactly, and the concurrent-quote path must stay
// race-clean and leak-free (twins check their pooled arenas back in with
// speculation cancelled).
func TestQuoteSpeculationEquivalence(t *testing.T) {
	shapes := []struct {
		width    int
		estimate int64
		count    int
	}{
		{1, 60, 1}, {3, 250, 4}, {8, 500, 1}, {16, 120, 3},
	}
	for name, factory := range quoteDeciders() {
		t.Run(name, func(t *testing.T) {
			s := loadedQuoteScheduler(t, 32, 0xA11CE, factory)
			for _, shape := range shapes {
				base, err := s.Quote(shape.width, shape.estimate, shape.count)
				if err != nil {
					t.Fatal(err)
				}
				s.SetQuoteSpeculation(true)
				spec, err := s.Quote(shape.width, shape.estimate, shape.count)
				s.SetQuoteSpeculation(false)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base, spec) {
					t.Errorf("%s width=%d est=%d count=%d: speculative quote diverged:\n spec-off %+v\n spec-on  %+v",
						name, shape.width, shape.estimate, shape.count, base, spec)
				}
			}
			if live := s.QuoteTwinsLive(); live != 0 {
				t.Errorf("%d twins leaked", live)
			}
		})
	}

	// Concurrent speculative quotes: each twin speculates privately; the
	// answers must all agree and no twin may leak.
	factory := quoteDeciders()["advanced"]
	s := loadedQuoteScheduler(t, 32, 0xBEEF, factory)
	s.SetQuoteSpeculation(true)
	want, err := s.Quote(4, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.Quote(4, 200, 2)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("concurrent speculative quote diverged: %+v != %+v", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if live := s.QuoteTwinsLive(); live != 0 {
		t.Errorf("%d twins leaked", live)
	}
}
