package rms

import (
	"strings"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/sim"
)

func TestFailKillsLastStartedFirst(t *testing.T) {
	s := newFCFS(t, 8)
	a, _ := s.Submit(4, 100) // starts at 0
	s.Advance(10)
	b, _ := s.Submit(4, 100) // starts at 10
	if err := s.Fail(4); err != nil {
		t.Fatal(err)
	}
	ai, _ := s.Job(a.ID)
	bi, _ := s.Job(b.ID)
	if ai.State != StateRunning {
		t.Errorf("a (started first) = %+v, want still running", ai)
	}
	if bi.State != StateFailed || bi.Finished != 10 {
		t.Errorf("b (started last) = %+v, want failed at t=10", bi)
	}
	st := s.Status()
	if st.FailedProcs != 4 || st.UsedProcs != 4 {
		t.Errorf("status = %+v", st)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailLeavesSurvivorsWhenTheyFit(t *testing.T) {
	s := newFCFS(t, 8)
	s.Submit(2, 100)
	s.Submit(2, 100)
	// Losing 4 processors still fits both width-2 jobs: nobody dies.
	if err := s.Fail(4); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if len(st.Running) != 2 || st.Finished != 0 {
		t.Errorf("status = %+v, want both jobs alive", st)
	}
}

func TestFailMarksWideWaitersUnplaceable(t *testing.T) {
	s := newFCFS(t, 8)
	blocker, _ := s.Submit(8, 100)
	wide, _ := s.Submit(6, 50)
	if err := s.Fail(4); err != nil {
		t.Fatal(err)
	}
	// The blocker (width 8 > 4) dies; the waiting width-6 job cannot be
	// planned on 4 processors and must carry the sentinel, not panic.
	bi, _ := s.Job(blocker.ID)
	if bi.State != StateFailed {
		t.Fatalf("blocker = %+v", bi)
	}
	wi, _ := s.Job(wide.ID)
	if wi.State != StateWaiting || wi.PlannedStart != NeverStart {
		t.Fatalf("wide waiter = %+v, want waiting with PlannedStart=NeverStart", wi)
	}
	// Time may pass while the machine is too small; the job stays queued.
	if err := s.Advance(500); err != nil {
		t.Fatal(err)
	}
	wi, _ = s.Job(wide.ID)
	if wi.State != StateWaiting {
		t.Fatalf("wide waiter after advance = %+v", wi)
	}
	// Restoring capacity replans and starts it immediately.
	if err := s.Restore(4); err != nil {
		t.Fatal(err)
	}
	wi, _ = s.Job(wide.ID)
	if wi.State != StateRunning || wi.Started != 500 {
		t.Fatalf("wide waiter after restore = %+v, want running at 500", wi)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailEverything(t *testing.T) {
	s := newFCFS(t, 8)
	a, _ := s.Submit(4, 100)
	b, _ := s.Submit(2, 50)
	if err := s.Fail(8); err != nil {
		t.Fatal(err)
	}
	// Fully drained: every running job dies, every waiter is unplaceable.
	ai, _ := s.Job(a.ID)
	bi, _ := s.Job(b.ID)
	if ai.State != StateFailed || bi.State != StateFailed {
		t.Fatalf("a = %+v, b = %+v, want both failed", ai, bi)
	}
	c, err := s.Submit(1, 10)
	if err != nil {
		t.Fatalf("submit to a drained machine must queue, got %v", err)
	}
	if c.State != StateWaiting || c.PlannedStart != NeverStart {
		t.Fatalf("c = %+v", c)
	}
	if err := s.Advance(1000); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(8); err != nil {
		t.Fatal(err)
	}
	ci, _ := s.Job(c.ID)
	if ci.State != StateRunning || ci.Started != 1000 {
		t.Fatalf("c after restore = %+v", ci)
	}
}

func TestFailRestoreValidation(t *testing.T) {
	s := newFCFS(t, 8)
	if err := s.Fail(0); err == nil {
		t.Error("fail 0 accepted")
	}
	if err := s.Fail(9); err == nil {
		t.Error("failing more than capacity accepted")
	}
	if err := s.Restore(1); err == nil {
		t.Error("restore with nothing failed accepted")
	}
	if err := s.Fail(4); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(5); err == nil {
		t.Error("cumulative fail beyond capacity accepted")
	}
	if err := s.Restore(5); err == nil {
		t.Error("restore beyond failed accepted")
	}
	if err := s.Restore(0); err == nil {
		t.Error("restore 0 accepted")
	}
	if err := s.Restore(4); err != nil {
		t.Fatal(err)
	}
}

func TestVictimPolicyConfigurable(t *testing.T) {
	s := newFCFS(t, 8)
	s.SetVictimPolicy(VictimWidestFirst)
	wide, _ := s.Submit(4, 100) // started first, but widest
	s.Advance(10)
	narrow, _ := s.Submit(2, 100)
	s.Advance(20)
	narrow2, _ := s.Submit(2, 100)
	if err := s.Fail(4); err != nil {
		t.Fatal(err)
	}
	// Widest-first frees 4 procs with one kill; last-started would have
	// killed both narrow jobs instead.
	wi, _ := s.Job(wide.ID)
	if wi.State != StateFailed {
		t.Errorf("widest job = %+v, want failed", wi)
	}
	for _, id := range []job.ID{narrow.ID, narrow2.ID} {
		if info, _ := s.Job(id); info.State != StateRunning {
			t.Errorf("narrow job %d = %+v, want running", id, info)
		}
	}
	// nil restores the default.
	s.SetVictimPolicy(nil)
	if err := s.Fail(2); err != nil {
		t.Fatal(err)
	}
	n2, _ := s.Job(narrow2.ID)
	if n2.State != StateFailed {
		t.Errorf("after default policy, last-started = %+v, want failed", n2)
	}
}

func TestVictimPolicyBackstop(t *testing.T) {
	// A buggy policy that returns no usable victims must not leave the
	// machine oversubscribed: the default order backstops it.
	s := newFCFS(t, 8)
	s.SetVictimPolicy(func(now int64, running []plan.Running) []plan.Running {
		return nil
	})
	s.Submit(4, 100)
	s.Submit(4, 100)
	if err := s.Fail(6); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.UsedProcs > st.Capacity-st.FailedProcs {
		t.Fatalf("oversubscribed after buggy victim policy: %+v", st)
	}
}

func TestFailedJobsInReport(t *testing.T) {
	s := newFCFS(t, 8)
	s.Submit(4, 100)
	s.Advance(10)
	if err := s.Fail(8); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Jobs != 1 || rep.Failed != 1 || rep.Killed != 0 {
		t.Fatalf("report = %+v, want 1 failed job", rep)
	}
	if StateFailed.String() != "failed" {
		t.Fatal("StateFailed name wrong")
	}
}

// rogueDriver plans every waiting job at the current instant regardless
// of capacity — the pathological input that used to panic startDue.
type rogueDriver struct{}

func (rogueDriver) Name() string                { return "rogue" }
func (rogueDriver) ActivePolicy() policy.Policy { return policy.FCFS }
func (rogueDriver) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	sch := &plan.Schedule{Now: now, Capacity: capacity, Policy: policy.FCFS}
	for _, j := range waiting {
		sch.Entries = append(sch.Entries, plan.Entry{Job: j, Start: now})
	}
	return sch
}

func TestRogueDriverOversubscriptionDegradesGracefully(t *testing.T) {
	s, err := New(4, rogueDriver{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The rogue plan wants all three on the machine at once (10 > 4
	// procs). startDue must start what fits and skip the rest — the old
	// code panicked here.
	s.Submit(3, 100)
	s.Submit(3, 100)
	s.Submit(4, 100)
	st := s.Status()
	if st.UsedProcs > st.Capacity {
		t.Fatalf("oversubscribed: %+v", st)
	}
	if len(st.Running) != 1 || len(st.Waiting) != 2 {
		t.Fatalf("status = %+v, want 1 running, 2 skipped", st)
	}
	// Advancing over the stale infeasible entries must terminate and
	// still fire the estimate kill at t=100.
	if err := s.Advance(150); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Finished()); got == 0 {
		t.Fatal("estimate expiry never fired under rogue driver")
	}
}

func TestDeliverDuplicateCompletionRejected(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(2, 100)
	if _, err := s.Deliver(10, []job.ID{a.ID, a.ID}, nil); err == nil {
		t.Fatal("duplicate completion accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("error %q does not mention the duplicate", err)
	}
	// Atomicity: the rejected batch must not have completed the job.
	ai, _ := s.Job(a.ID)
	if ai.State != StateRunning {
		t.Fatalf("a = %+v, want still running", ai)
	}
	// The same completion delivered once still works.
	if _, err := s.Deliver(10, []job.ID{a.ID}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverSameInstantKillCompleteSubmit(t *testing.T) {
	// At one timestamp: a expires (killed), b completes (reported), and
	// a new full-width job is submitted. All must take effect before the
	// single replanning step, so the submission sees the whole machine.
	s := newFCFS(t, 4)
	a, _ := s.Submit(2, 50)  // expires at 50
	b, _ := s.Submit(2, 100) // completes early at 50
	infos, err := s.Deliver(50, []job.ID{b.ID}, []Submission{{Width: 4, Estimate: 30}})
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := s.Job(a.ID)
	if ai.State != StateKilled || ai.Finished != 50 {
		t.Errorf("a = %+v, want killed at 50", ai)
	}
	bi, _ := s.Job(b.ID)
	if bi.State != StateCompleted || bi.Finished != 50 {
		t.Errorf("b = %+v, want completed at 50", bi)
	}
	if infos[0].State != StateRunning || infos[0].Started != 50 {
		t.Errorf("submission = %+v, want running at 50 on the freed machine", infos[0])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverCapacityEventInterleaving(t *testing.T) {
	// Capacity events between deliveries: state stays consistent and
	// deliveries at the failure instant behave.
	s := newFCFS(t, 8)
	a, _ := s.Submit(8, 100)
	if err := s.Fail(2); err != nil {
		t.Fatal(err)
	}
	// a (width 8) no longer fits 6 procs: failed.
	ai, _ := s.Job(a.ID)
	if ai.State != StateFailed {
		t.Fatalf("a = %+v", ai)
	}
	// Deliver at the same instant: submit a job that fits the shrunken
	// machine and one that does not.
	infos, err := s.Deliver(0, nil, []Submission{{Width: 6, Estimate: 10}, {Width: 7, Estimate: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].State != StateRunning {
		t.Errorf("fitting submission = %+v", infos[0])
	}
	if infos[1].State != StateWaiting || infos[1].PlannedStart == infos[0].PlannedStart {
		t.Errorf("non-fitting submission = %+v", infos[1])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitWiderThanEffectiveQueues(t *testing.T) {
	s := newFCFS(t, 8)
	if err := s.Fail(6); err != nil {
		t.Fatal(err)
	}
	// Wider than the 2 live processors but within installed capacity:
	// queue it for better days.
	info, err := s.Submit(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateWaiting || info.PlannedStart != NeverStart {
		t.Fatalf("info = %+v", info)
	}
	// Wider than installed capacity: rejected outright.
	if _, err := s.Submit(9, 10); err == nil {
		t.Error("width 9 accepted on an 8-processor machine")
	}
}

func TestVictimOrderFunctions(t *testing.T) {
	mk := func(id job.ID, width int, start int64) plan.Running {
		return plan.Running{Job: &job.Job{ID: id, Width: width, Estimate: 100, Runtime: 100}, Start: start}
	}
	in := []plan.Running{mk(1, 2, 0), mk(2, 6, 5), mk(3, 2, 5)}
	last := VictimLastStarted(0, append([]plan.Running(nil), in...))
	if last[0].Job.ID != 3 || last[1].Job.ID != 2 || last[2].Job.ID != 1 {
		t.Errorf("VictimLastStarted order = %v, %v, %v", last[0].Job.ID, last[1].Job.ID, last[2].Job.ID)
	}
	wide := VictimWidestFirst(0, append([]plan.Running(nil), in...))
	if wide[0].Job.ID != 2 {
		t.Errorf("VictimWidestFirst first = %v, want the width-6 job", wide[0].Job.ID)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	s := newFCFS(t, 8)
	s.Submit(4, 100)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Corrupt deliberately: the info lifecycle contradicts the engine's
	// queues. (Engine-internal corruption, such as a duplicated running
	// entry, is covered by the engine's own invariant tests.)
	s.mu.Lock()
	s.infos[1].State = StateWaiting
	s.mu.Unlock()
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("contradictory job state not detected")
	}
}

var _ sim.Driver = rogueDriver{}
