// Tests for the registry-facing surface of the online RMS: the
// policies/deciders protocol ops, and checkpoint round-trips of
// registry-named state (a custom policy restores byte-identically; an
// unregistered policy name is refused, never silently substituted).
package rms

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/sim"
)

func TestServerPoliciesAndDecidersOps(t *testing.T) {
	sv := newServer(t)
	resp := sv.Handle(Request{Op: "policies"})
	if !resp.OK {
		t.Fatalf("policies op: %+v", resp)
	}
	got := strings.Join(resp.Policies, ",")
	for _, want := range []string{"FCFS", "SJF", "LJF", "PSBS("} {
		if !strings.Contains(got, want) {
			t.Errorf("policies %q missing %q", got, want)
		}
	}
	resp = sv.Handle(Request{Op: "deciders"})
	if !resp.OK {
		t.Fatalf("deciders op: %+v", resp)
	}
	got = strings.Join(resp.Deciders, ",")
	for _, want := range []string{"simple", "advanced", "-preferred"} {
		if !strings.Contains(got, want) {
			t.Errorf("deciders %q missing %q", got, want)
		}
	}
}

// fairDynP is a self-tuning driver whose candidate set includes a
// registered custom (PSBS family) policy next to the built-ins.
func fairDynP() sim.Driver {
	psbs := policy.MustFairSize(0.5, 2)
	return sim.NewDynPWith([]policy.Policy{policy.FCFS, psbs, policy.SJF},
		core.Preferred{Policy: psbs}, core.MetricSLDwA)
}

// TestJournalRoundTripWithCustomPolicy: a journal written by a scheduler
// whose tuner runs a registered custom policy — chosen, serialized into
// checkpoints by name — must restore byte-identically through both the
// checkpoint fast path and the genesis replay.
func TestJournalRoundTripWithCustomPolicy(t *testing.T) {
	path := t.TempDir() + "/events.journal"
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSnapshotEvery(5)
	live, err := New(8, fairDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	driveRandomEvents(t, live, 0x9a5b, 120)
	want := fingerprint(t, live)
	if !strings.Contains(want, "PSBS(a=0.5,r=2)") {
		t.Fatalf("custom policy never became active; fingerprint %s", want)
	}
	j.Close()

	jf, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	fast, err := New(8, fairDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Replay(fast); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, fast); got != want {
		t.Errorf("checkpoint restart diverges\nlive: %s\nfast: %s", want, got)
	}

	jg, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jg.Close()
	genesis, err := New(8, fairDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jg.ReplayGenesis(genesis); err != nil {
		t.Fatalf("genesis audit: %v", err)
	}
	if got := fingerprint(t, genesis); got != want {
		t.Errorf("genesis replay diverges\nlive:    %s\ngenesis: %s", want, got)
	}
}

// TestRestoreRefusesUnregisteredPolicy: a checkpoint whose plan names a
// policy this process never registered must be refused with an error
// naming the policy — no silent fallback to a default ordering.
func TestRestoreRefusesUnregisteredPolicy(t *testing.T) {
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := &checkpointState{
		Events: 1, Now: 0, NextID: 1,
		Waiting: []JobInfo{{ID: 1, Width: 1, Estimate: 10, State: StateWaiting}},
		Plan: &planRec{Policy: "NOPE-policy", Now: 0, Capacity: 8,
			Entries: []planEntryRec{{ID: 1, Start: 0}}},
	}
	err = s.restoreCheckpoint(cs)
	if err == nil || !strings.Contains(err.Error(), "NOPE-policy") {
		t.Fatalf("unregistered policy accepted or error unclear: %v", err)
	}
}

// TestJournalRefusesUnregisteredPolicy covers the same refusal through
// the on-disk path: the newest checkpoint record is rewritten (with a
// valid checksum) to name an unknown policy, and replay must surface
// the name instead of restoring something else.
func TestJournalRefusesUnregisteredPolicy(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 2)
	for i := 0; i < 6; i++ {
		if _, err := live.Submit(8, 50); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Advance(10); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	patched := false
	for i, line := range lines {
		l, ok := decodeRecord([]byte(line))
		if !ok || l.Checkpoint == nil || l.Checkpoint.Plan == nil {
			continue
		}
		l.Checkpoint.Plan.Policy = "NOPE-policy"
		rec, err := encodeRecord(&l)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = strings.TrimSuffix(string(rec), "\n")
		patched = true
	}
	if !patched {
		t.Skip("no checkpoint with a plan in the active segment")
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	jf, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	fresh, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Replay(fresh); err == nil || !strings.Contains(err.Error(), "NOPE-policy") {
		t.Fatalf("journal naming an unregistered policy replayed: %v", err)
	}
}

// TestStatusActivePolicyIsName pins the wire type: the status op carries
// the active policy as its registry name, so any registered policy —
// parameterized family members included — crosses the protocol intact.
func TestStatusActivePolicyIsName(t *testing.T) {
	s, err := New(8, fairDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(1, 10); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if _, err := policy.Lookup(st.ActivePolicy); err != nil {
		t.Fatalf("ActivePolicy %q does not resolve: %v", st.ActivePolicy, err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Status
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("Status does not round-trip JSON: %v", err)
	}
}
