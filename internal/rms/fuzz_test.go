package rms

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"dynp/internal/policy"
	"dynp/internal/sim"
)

// FuzzServeConn throws arbitrary bytes at the wire protocol and asserts
// the server's contract: it never panics, answers every complete request
// line with exactly one line of well-formed JSON, and leaves the
// scheduler in a consistent state afterwards.
func FuzzServeConn(f *testing.F) {
	f.Add([]byte(`{"op":"submit","width":4,"estimate":100}` + "\n"))
	f.Add([]byte(`{"op":"status"}` + "\n" + `{"op":"report"}` + "\n"))
	f.Add([]byte(`{"op":"tick","to":50}` + "\n" + `{"op":"finished"}` + "\n"))
	f.Add([]byte(`{"op":"fail","procs":3}` + "\n" + `{"op":"restore","procs":3}` + "\n"))
	f.Add([]byte(`{"op":"done","id":1}` + "\n" + `{"op":"cancel","id":-1}` + "\n"))
	f.Add([]byte("not json\n\n{broken\n"))
	f.Add([]byte(`{"op":"submit","width":-4,"estimate":-100}` + "\n"))
	f.Add([]byte{0xff, 0xfe, '\n', '{', '}', '\n'})
	f.Add([]byte(`{"op":"tick","to":9223372036854775807}` + "\n"))
	f.Add([]byte(`{"op":"quote","width":4,"estimate":100,"count":2}` + "\n"))
	f.Add([]byte(`{"op":"quote","width":-1,"estimate":0,"count":1025}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := New(8, &sim.Static{Policy: policy.FCFS}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableQuotes(func() sim.Driver { return &sim.Static{Policy: policy.FCFS} }); err != nil {
			t.Fatal(err)
		}
		sv := NewServer(s, true)
		var out bytes.Buffer
		rw := struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), &out}
		_ = sv.ServeConn(rw) // errors are fine; panics are not

		// Every emitted line must be a well-formed Response.
		responses := 0
		for _, line := range strings.Split(out.String(), "\n") {
			if line == "" {
				continue
			}
			var resp Response
			if err := json.Unmarshal([]byte(line), &resp); err != nil {
				t.Fatalf("malformed response line %q: %v", line, err)
			}
			if !resp.OK && resp.Error == "" {
				t.Fatalf("failure response without an error message: %q", line)
			}
			responses++
		}
		// One response per non-empty line — bufio.Scanner also delivers a
		// final line without a trailing newline — unless a line blew the
		// 64 KiB cap (that path answers once and stops). Stay clear of
		// exact-cap boundary lines, where \r-stripping makes the count
		// ambiguous.
		requests := 0
		overlong := false
		for _, line := range strings.Split(string(data), "\n") {
			if len(line) >= 1<<16-1 {
				overlong = true
				break
			}
			if strings.TrimSuffix(line, "\r") != "" {
				requests++
			}
		}
		if !overlong && responses != requests {
			t.Fatalf("%d responses for %d complete requests", responses, requests)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("scheduler corrupted by fuzzed input: %v", err)
		}
	})
}
