// Package rms embeds the dynP scheduler in an *online* planning-based
// resource management system — the role the CCS system plays for the
// paper's clusters. Unlike the offline simulator (internal/sim), which
// replays a job set whose actual run times are known in advance, the
// online scheduler learns completions from the outside world: clients
// submit jobs with estimates, report completions, and the RMS kills jobs
// whose estimates expire (the guarantee that makes planning sound).
//
// Time is explicit: the caller drives the clock with Advance, which makes
// the core fully deterministic and testable; a real-time front end (see
// cmd/dynpd) simply calls Advance from a wall-clock ticker.
//
// The scheduler survives the failure classes a real cluster sees:
// processors can fail and be restored at run time (Fail/Restore), with a
// configurable victim policy deciding which running jobs die when the
// machine shrinks under them, and every external event can be recorded in
// a crash-safe write-ahead journal (see journal.go) whose replay rebuilds
// identical state after a daemon crash.
package rms

import (
	"fmt"
	"sort"
	"sync"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/sim"
)

// JobState describes where a job currently is in its lifecycle.
type JobState int

// The job lifecycle states.
const (
	StateWaiting JobState = iota
	StateRunning
	StateCompleted
	StateKilled // estimate expired; the RMS terminated the job
	StateFailed // processors failed under the job; the victim policy terminated it
)

var stateNames = [...]string{"waiting", "running", "completed", "killed", "failed"}

// String returns the lowercase state name.
func (s JobState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// NeverStart is the sentinel planned start of a waiting job that cannot
// be placed at all under the current effective capacity (its width
// exceeds the processors that are still up). The job stays queued; once
// enough capacity is restored the next replanning event assigns it a
// real planned start again.
const NeverStart int64 = -1

// JobInfo is the externally visible status of one job.
type JobInfo struct {
	ID           job.ID
	Width        int
	Estimate     int64
	Submitted    int64
	State        JobState
	PlannedStart int64 // meaningful while waiting; NeverStart if unplaceable
	Started      int64 // meaningful once running
	Finished     int64 // meaningful once completed/killed/failed
}

// VictimPolicy orders the running jobs for termination when a capacity
// failure leaves the machine oversubscribed: victims are killed from the
// front of the returned slice until the remaining jobs fit the effective
// capacity. The input slice is a copy; the policy may reorder it freely.
type VictimPolicy func(now int64, running []plan.Running) []plan.Running

// VictimLastStarted kills the most recently started jobs first (ties
// broken by higher ID first), minimising the amount of finished work a
// capacity failure destroys. It is the default.
func VictimLastStarted(now int64, running []plan.Running) []plan.Running {
	sort.Slice(running, func(i, j int) bool {
		if running[i].Start != running[j].Start {
			return running[i].Start > running[j].Start
		}
		return running[i].Job.ID > running[j].Job.ID
	})
	return running
}

// VictimWidestFirst kills the widest jobs first (ties broken by later
// start, then higher ID), freeing the most processors per kill.
func VictimWidestFirst(now int64, running []plan.Running) []plan.Running {
	sort.Slice(running, func(i, j int) bool {
		if running[i].Job.Width != running[j].Job.Width {
			return running[i].Job.Width > running[j].Job.Width
		}
		if running[i].Start != running[j].Start {
			return running[i].Start > running[j].Start
		}
		return running[i].Job.ID > running[j].Job.ID
	})
	return running
}

// Scheduler is an online planning-based RMS core. Create with New; all
// methods are safe for concurrent use.
type Scheduler struct {
	mu       sync.Mutex
	capacity int // installed processors
	failed   int // processors currently failed
	driver   sim.Driver
	now      int64
	nextID   job.ID
	victims  VictimPolicy
	journal  *Journal

	waiting []*job.Job
	running []plan.Running
	infos   map[job.ID]*JobInfo
	plan    *plan.Schedule

	done []JobInfo // completed, killed and failed jobs, in finish order
}

// New returns an online scheduler for a machine with the given capacity,
// using the given planning driver (a static policy, dynP, or EASY). The
// clock starts at startTime.
func New(capacity int, driver sim.Driver, startTime int64) (*Scheduler, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("rms: capacity %d < 1", capacity)
	}
	if driver == nil {
		return nil, fmt.Errorf("rms: nil driver")
	}
	s := &Scheduler{
		capacity: capacity,
		driver:   driver,
		now:      startTime,
		victims:  VictimLastStarted,
		infos:    make(map[job.ID]*JobInfo),
	}
	s.replan()
	return s, nil
}

// SetVictimPolicy replaces the policy that picks which running jobs die
// when a capacity failure oversubscribes the machine. A nil policy
// restores the default (VictimLastStarted).
func (s *Scheduler) SetVictimPolicy(p VictimPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil {
		p = VictimLastStarted
	}
	s.victims = p
}

// SetJournal attaches a write-ahead journal: every subsequent external
// event (submit, complete, cancel, advance, deliver, fail, restore) is
// appended — and flushed — before it mutates scheduler state, so a
// crashed daemon can rebuild identical state with Journal.Replay. Attach
// after replaying, before serving traffic. If the journal is empty, a
// header describing this scheduler is written so a later replay can
// reject a mismatched configuration.
func (s *Scheduler) SetJournal(j *Journal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j != nil && j.fresh() {
		if err := j.writeHeader(journalHeader{
			Version:   journalVersion,
			Capacity:  s.capacity,
			Scheduler: s.driver.Name(),
			Start:     s.now,
		}); err != nil {
			return fmt.Errorf("rms: journal header: %w", err)
		}
	}
	s.journal = j
	return nil
}

// effective returns the processors currently usable for planning.
// Callers hold the lock.
func (s *Scheduler) effective() int { return s.capacity - s.failed }

// journalAppend records an external event ahead of applying it. On a
// journal write error the event must not be applied — the journal is the
// authority after a crash — so callers return the error to the client.
// Callers hold the lock.
func (s *Scheduler) journalAppend(ev Event) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(ev); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	return nil
}

// journalCheckpoint lets the journal cut a periodic snapshot of the
// post-event state. Callers hold the lock.
func (s *Scheduler) journalCheckpoint() {
	if s.journal != nil {
		s.journal.maybeSnapshot(s)
	}
}

// Now returns the scheduler's current time.
func (s *Scheduler) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Submit enters a job (width processors for at most estimate seconds) at
// the current time and returns its ID and planned start time. Width is
// validated against the installed capacity: a job wider than the
// processors currently up is accepted and queued (planned start
// NeverStart) until enough capacity is restored.
func (s *Scheduler) Submit(width int, estimate int64) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if width < 1 || width > s.capacity {
		return JobInfo{}, fmt.Errorf("rms: width %d out of [1, %d]", width, s.capacity)
	}
	if estimate < 1 {
		return JobInfo{}, fmt.Errorf("rms: estimate %d < 1", estimate)
	}
	if err := s.journalAppend(Event{Op: opSubmit, Width: width, Estimate: estimate}); err != nil {
		return JobInfo{}, err
	}
	s.nextID++
	j := &job.Job{
		ID: s.nextID, Submit: s.now, Width: width,
		Estimate: estimate,
		// The actual run time is unknown online; the planner never
		// reads it, but the job model requires validity.
		Runtime: estimate,
	}
	s.waiting = append(s.waiting, j)
	s.infos[j.ID] = &JobInfo{
		ID: j.ID, Width: width, Estimate: estimate,
		Submitted: s.now, State: StateWaiting,
	}
	s.replan()
	info := *s.infos[j.ID]
	s.journalCheckpoint()
	return info, nil
}

// Complete reports that a running job finished at the current time.
func (s *Scheduler) Complete(id job.ID) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.infos[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("rms: unknown job %d", id)
	}
	if info.State != StateRunning {
		return JobInfo{}, fmt.Errorf("rms: job %d is %s, not running", id, info.State)
	}
	if err := s.journalAppend(Event{Op: opDone, ID: int64(id)}); err != nil {
		return JobInfo{}, err
	}
	s.finish(id, StateCompleted)
	s.replan()
	s.journalCheckpoint()
	return *info, nil
}

// Cancel removes a waiting job from the queue.
func (s *Scheduler) Cancel(id job.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.infos[id]
	if !ok {
		return fmt.Errorf("rms: unknown job %d", id)
	}
	if info.State != StateWaiting {
		return fmt.Errorf("rms: job %d is %s, not waiting", id, info.State)
	}
	if err := s.journalAppend(Event{Op: opCancel, ID: int64(id)}); err != nil {
		return err
	}
	for i, j := range s.waiting {
		if j.ID == id {
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			break
		}
	}
	delete(s.infos, id)
	s.replan()
	s.journalCheckpoint()
	return nil
}

// Fail takes procs processors out of service at the current time — a
// node crash or a drain for maintenance. Running jobs that no longer fit
// the remaining capacity are terminated (state StateFailed) in the order
// chosen by the victim policy; waiting jobs wider than the remaining
// capacity stay queued with planned start NeverStart; everything else is
// replanned against the shrunken machine.
func (s *Scheduler) Fail(procs int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if procs < 1 {
		return fmt.Errorf("rms: fail %d processors < 1", procs)
	}
	if s.failed+procs > s.capacity {
		return fmt.Errorf("rms: failing %d processors exceeds capacity (%d of %d already failed)",
			procs, s.failed, s.capacity)
	}
	if err := s.journalAppend(Event{Op: opFail, Procs: procs}); err != nil {
		return err
	}
	s.failed += procs
	s.killVictims()
	s.replan()
	s.journalCheckpoint()
	return nil
}

// Restore returns procs previously failed processors to service at the
// current time and replans: unplaceable jobs get real planned starts
// again, and waiting work may begin immediately.
func (s *Scheduler) Restore(procs int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if procs < 1 {
		return fmt.Errorf("rms: restore %d processors < 1", procs)
	}
	if procs > s.failed {
		return fmt.Errorf("rms: restore %d exceeds %d failed processors", procs, s.failed)
	}
	if err := s.journalAppend(Event{Op: opRestore, Procs: procs}); err != nil {
		return err
	}
	s.failed -= procs
	s.replan()
	s.journalCheckpoint()
	return nil
}

// killVictims terminates running jobs until the rest fit the effective
// capacity, consulting the victim policy for the order. A policy that
// returns stale or insufficient victims is backstopped by the default
// order so the machine is never left oversubscribed. Callers hold the
// lock.
func (s *Scheduler) killVictims() {
	eff := s.effective()
	used := 0
	for _, r := range s.running {
		used += r.Job.Width
	}
	if used <= eff {
		return
	}
	order := s.victims(s.now, append([]plan.Running(nil), s.running...))
	order = append(order, VictimLastStarted(s.now, append([]plan.Running(nil), s.running...))...)
	for _, r := range order {
		if used <= eff {
			break
		}
		if info, ok := s.infos[r.Job.ID]; !ok || info.State != StateRunning {
			continue
		}
		s.finish(r.Job.ID, StateFailed)
		used -= r.Job.Width
	}
}

// Advance moves the clock to the given time, starting jobs whose planned
// start arrives and killing jobs whose estimates expire on the way. It is
// an error to move the clock backwards.
func (s *Scheduler) Advance(to int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if to < s.now {
		return fmt.Errorf("rms: cannot advance from %d back to %d", s.now, to)
	}
	if to != s.now {
		// Advancing to the current time is a no-op; journaling only real
		// moves keeps a real-time ticker from flooding the journal.
		if err := s.journalAppend(Event{Op: opTick, To: to}); err != nil {
			return err
		}
	}
	s.advanceLocked(to, false)
	s.now = to
	s.journalCheckpoint()
	return nil
}

// advanceLocked processes automatic actions (kills, planned starts) up to
// time `to` — strictly before it when exclusive is set. Callers hold the
// lock and are responsible for setting s.now afterwards.
func (s *Scheduler) advanceLocked(to int64, exclusive bool) {
	stuck := false
	for {
		// After a fruitless replan the due-now entries are infeasible for
		// good (rogue driver, shrunken machine); look strictly ahead so
		// later expiries and starts still fire instead of spinning on or
		// returning at the stuck instant.
		next, ok := s.nextActionTime(stuck)
		if !ok || next > to || (exclusive && next == to) {
			return
		}
		prevNow, prevRunning, prevDone := s.now, len(s.running), len(s.done)
		s.now = next
		s.killExpired()
		s.startDue()
		if s.now == prevNow && len(s.running) == prevRunning && len(s.done) == prevDone {
			// A plan entry is due but cannot act — it no longer fits, or
			// a rogue driver planned an infeasible start. Replan once to
			// self-heal before skipping past it.
			if stuck {
				return
			}
			stuck = true
			s.replan()
			continue
		}
		stuck = false
	}
}

// killExpired terminates running jobs whose estimates expired and replans
// if any were found. Callers hold the lock.
func (s *Scheduler) killExpired() {
	killed := false
	for _, r := range append([]plan.Running(nil), s.running...) {
		if r.EstimatedEnd() <= s.now {
			s.finish(r.Job.ID, StateKilled)
			killed = true
		}
	}
	if killed {
		s.replan()
	}
}

// Submission describes one job of a Deliver batch.
type Submission struct {
	Width    int   `json:"width"`
	Estimate int64 `json:"estimate"`
}

// Deliver applies a batch of simultaneous external events atomically: the
// clock moves to t (processing automatic actions strictly before t on the
// way), then all completions, estimate expiries and submissions at t take
// effect before a single replanning step. This mirrors how the offline
// discrete event simulator treats same-instant events and is the right
// entry point for bridges that replay simulated workloads; interactive
// use (Submit/Complete) replans eagerly instead, which can order
// same-instant events differently.
//
// The returned infos correspond to the submissions, in order.
func (s *Scheduler) Deliver(t int64, completions []job.ID, subs []Submission) ([]JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		return nil, fmt.Errorf("rms: cannot deliver at %d before current time %d", t, s.now)
	}
	// Journaled ahead of the clock move: a batch that fails validation
	// below is replayed and rejected identically, leaving the same state
	// (including the advanced clock) as the original run.
	if len(completions) > 0 || len(subs) > 0 || t != s.now {
		ids := make([]int64, len(completions))
		for i, id := range completions {
			ids[i] = int64(id)
		}
		if err := s.journalAppend(Event{Op: opDeliver, To: t, Completions: ids, Subs: subs}); err != nil {
			return nil, err
		}
	}
	s.advanceLocked(t, true)
	s.now = t

	// Validate the whole batch before mutating anything, so a bad entry
	// cannot leave the batch half-applied.
	seen := make(map[job.ID]struct{}, len(completions))
	for _, id := range completions {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("rms: duplicate completion for job %d", id)
		}
		seen[id] = struct{}{}
		info, ok := s.infos[id]
		if !ok {
			return nil, fmt.Errorf("rms: unknown job %d", id)
		}
		if info.State != StateRunning {
			return nil, fmt.Errorf("rms: job %d is %s, not running", id, info.State)
		}
	}
	for _, sub := range subs {
		if sub.Width < 1 || sub.Width > s.capacity {
			return nil, fmt.Errorf("rms: width %d out of [1, %d]", sub.Width, s.capacity)
		}
		if sub.Estimate < 1 {
			return nil, fmt.Errorf("rms: estimate %d < 1", sub.Estimate)
		}
	}

	// Client completions first (a job completing exactly at its
	// estimate counts as completed, not killed), then expiries.
	for _, id := range completions {
		s.finish(id, StateCompleted)
	}
	for _, r := range append([]plan.Running(nil), s.running...) {
		if r.EstimatedEnd() <= s.now {
			s.finish(r.Job.ID, StateKilled)
		}
	}

	out := make([]JobInfo, 0, len(subs))
	for _, sub := range subs {
		s.nextID++
		j := &job.Job{
			ID: s.nextID, Submit: s.now, Width: sub.Width,
			Estimate: sub.Estimate, Runtime: sub.Estimate,
		}
		s.waiting = append(s.waiting, j)
		s.infos[j.ID] = &JobInfo{
			ID: j.ID, Width: j.Width, Estimate: j.Estimate,
			Submitted: s.now, State: StateWaiting,
		}
	}

	s.replan()
	for id := s.nextID - job.ID(len(subs)) + 1; id <= s.nextID; id++ {
		out = append(out, *s.infos[id])
	}
	s.journalCheckpoint()
	return out, nil
}

// nextActionTime returns the earliest time at which the machine state
// changes by itself: a planned start or an estimate expiry. With
// strictlyAfter set, actions due at the current instant are ignored —
// advanceLocked uses this to step past entries that proved infeasible.
func (s *Scheduler) nextActionTime(strictlyAfter bool) (int64, bool) {
	var next int64
	found := false
	consider := func(t int64) {
		if t < s.now {
			t = s.now
		}
		if strictlyAfter && t <= s.now {
			return
		}
		if !found || t < next {
			next, found = t, true
		}
	}
	for _, r := range s.running {
		consider(r.EstimatedEnd())
	}
	if s.plan != nil {
		for _, e := range s.plan.Entries {
			// Only entries of still-waiting jobs can act; started jobs
			// leave stale entries behind until the next replan.
			if info, ok := s.infos[e.Job.ID]; ok && info.State == StateWaiting {
				consider(e.Start)
			}
		}
	}
	return next, found
}

// finish moves a job out of the running set. Callers hold the lock.
func (s *Scheduler) finish(id job.ID, state JobState) {
	for i, r := range s.running {
		if r.Job.ID == id {
			s.running = append(s.running[:i], s.running[i+1:]...)
			info := s.infos[id]
			info.State = state
			info.Finished = s.now
			s.done = append(s.done, *info)
			return
		}
	}
}

// replan recomputes the full schedule against the effective capacity and
// starts due jobs. Jobs wider than the effective capacity are
// unplaceable: they are withheld from the planner and marked with the
// NeverStart sentinel until capacity returns. Callers hold the lock.
func (s *Scheduler) replan() {
	eff := s.effective()
	if eff < 1 {
		// Fully drained machine: nothing can be planned or started.
		s.plan = nil
		for _, j := range s.waiting {
			s.infos[j.ID].PlannedStart = NeverStart
		}
		return
	}
	planned := s.waiting
	for i, j := range s.waiting {
		if j.Width <= eff {
			continue
		}
		// First unplaceable job found; split the queue once.
		planned = append([]*job.Job(nil), s.waiting[:i]...)
		for _, k := range s.waiting[i:] {
			if k.Width <= eff {
				planned = append(planned, k)
			} else {
				s.infos[k.ID].PlannedStart = NeverStart
			}
		}
		break
	}
	s.plan = s.driver.Plan(s.now, eff, s.running, planned)
	for _, e := range s.plan.Entries {
		if info, ok := s.infos[e.Job.ID]; ok && info.State == StateWaiting {
			info.PlannedStart = e.Start
		}
	}
	s.startDue()
}

// startDue launches every waiting job whose planned start is now. A plan
// entry that no longer fits — the capacity dropped after the plan was
// built, or a rogue driver oversubscribed — is skipped, not started: the
// job stays waiting and the next replanning event reschedules it. This
// graceful degradation replaces a former panic. Callers hold the lock.
func (s *Scheduler) startDue() {
	if s.plan == nil {
		return
	}
	used := 0
	for _, r := range s.running {
		used += r.Job.Width
	}
	for _, e := range s.plan.Entries {
		if e.Start != s.now {
			continue
		}
		info := s.infos[e.Job.ID]
		if info == nil || info.State != StateWaiting {
			continue
		}
		if used+e.Job.Width > s.effective() {
			continue
		}
		for i, wj := range s.waiting {
			if wj.ID == e.Job.ID {
				s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
				break
			}
		}
		s.running = append(s.running, plan.Running{Job: e.Job, Start: s.now})
		used += e.Job.Width
		info.State = StateRunning
		info.Started = s.now
	}
}

// Status is a snapshot of the whole system.
type Status struct {
	Now          int64
	Capacity     int // installed processors
	FailedProcs  int // processors currently out of service
	UsedProcs    int
	ActivePolicy policy.Policy
	Scheduler    string
	Waiting      []JobInfo // in planned-start order
	Running      []JobInfo // in start order
	Finished     int       // completed + killed + failed so far
}

// Status returns a consistent snapshot.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *Scheduler) statusLocked() Status {
	st := Status{
		Now:          s.now,
		Capacity:     s.capacity,
		FailedProcs:  s.failed,
		ActivePolicy: s.driver.ActivePolicy(),
		Scheduler:    s.driver.Name(),
		Finished:     len(s.done),
	}
	for _, r := range s.running {
		st.UsedProcs += r.Job.Width
		st.Running = append(st.Running, *s.infos[r.Job.ID])
	}
	for _, w := range s.waiting {
		st.Waiting = append(st.Waiting, *s.infos[w.ID])
	}
	sort.Slice(st.Running, func(i, j int) bool { return st.Running[i].Started < st.Running[j].Started })
	sort.Slice(st.Waiting, func(i, j int) bool {
		if st.Waiting[i].PlannedStart != st.Waiting[j].PlannedStart {
			return st.Waiting[i].PlannedStart < st.Waiting[j].PlannedStart
		}
		return st.Waiting[i].ID < st.Waiting[j].ID
	})
	return st
}

// Job returns the status of a single job (including finished ones).
func (s *Scheduler) Job(id job.ID) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := s.infos[id]; ok {
		return *info, nil
	}
	return JobInfo{}, fmt.Errorf("rms: unknown job %d", id)
}

// Finished returns the jobs that completed, were killed, or died to a
// capacity failure, in finish order.
func (s *Scheduler) Finished() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]JobInfo(nil), s.done...)
}

// CheckInvariants verifies the scheduler's internal consistency: the
// running set fits the effective capacity, every queue entry has a
// matching info in the matching state, and no job is both waiting and
// running. It exists for tests and the chaos harness; a healthy
// scheduler always returns nil.
func (s *Scheduler) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed < 0 || s.failed > s.capacity {
		return fmt.Errorf("rms: %d failed processors out of [0, %d]", s.failed, s.capacity)
	}
	used := 0
	runningIDs := make(map[job.ID]struct{}, len(s.running))
	for _, r := range s.running {
		if _, dup := runningIDs[r.Job.ID]; dup {
			return fmt.Errorf("rms: job %d running twice", r.Job.ID)
		}
		runningIDs[r.Job.ID] = struct{}{}
		used += r.Job.Width
		info, ok := s.infos[r.Job.ID]
		if !ok || info.State != StateRunning {
			return fmt.Errorf("rms: running job %d has no running info", r.Job.ID)
		}
	}
	if used > s.effective() {
		return fmt.Errorf("rms: %d processors in use exceed effective capacity %d",
			used, s.effective())
	}
	for _, w := range s.waiting {
		if _, alsoRunning := runningIDs[w.ID]; alsoRunning {
			return fmt.Errorf("rms: job %d both waiting and running", w.ID)
		}
		info, ok := s.infos[w.ID]
		if !ok || info.State != StateWaiting {
			return fmt.Errorf("rms: waiting job %d has no waiting info", w.ID)
		}
	}
	for id, info := range s.infos {
		switch info.State {
		case StateWaiting:
			found := false
			for _, w := range s.waiting {
				if w.ID == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("rms: job %d marked waiting but not queued", id)
			}
		case StateRunning:
			if _, ok := runningIDs[id]; !ok {
				return fmt.Errorf("rms: job %d marked running but not on the machine", id)
			}
		}
	}
	return nil
}
