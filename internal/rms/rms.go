// Package rms embeds the dynP scheduler in an *online* planning-based
// resource management system — the role the CCS system plays for the
// paper's clusters. Unlike the offline simulator (internal/sim), which
// replays a job set whose actual run times are known in advance, the
// online scheduler learns completions from the outside world: clients
// submit jobs with estimates, report completions, and the RMS kills jobs
// whose estimates expire (the guarantee that makes planning sound).
//
// Time is explicit: the caller drives the clock with Advance, which makes
// the core fully deterministic and testable; a real-time front end (see
// cmd/dynpd) simply calls Advance from a wall-clock ticker.
//
// The schedule mechanics — machine state, replan-and-launch, kill and
// victim transitions — live in internal/engine, shared with the offline
// simulator, so the simulator-tested logic and the crash-safe online
// logic are one implementation. This package is the concurrency, journal
// and protocol shell around that engine: it serialises access, keeps the
// externally visible JobInfo lifecycle, and records every external event
// in an optional crash-safe write-ahead journal (see journal.go) whose
// replay rebuilds identical state after a daemon crash. Processors can
// fail and be restored at run time (Fail/Restore), with a configurable
// victim policy deciding which running jobs die when the machine shrinks
// under them.
package rms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/sim"
)

// JobState describes where a job currently is in its lifecycle.
type JobState int

// The job lifecycle states.
const (
	StateWaiting JobState = iota
	StateRunning
	StateCompleted
	StateKilled // estimate expired; the RMS terminated the job
	StateFailed // processors failed under the job; the victim policy terminated it
)

var stateNames = [...]string{"waiting", "running", "completed", "killed", "failed"}

// String returns the lowercase state name.
func (s JobState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// NeverStart is the sentinel planned start of a waiting job that cannot
// be placed at all under the current effective capacity (its width
// exceeds the processors that are still up). The job stays queued; once
// enough capacity is restored the next replanning event assigns it a
// real planned start again.
const NeverStart int64 = -1

// JobInfo is the externally visible status of one job.
type JobInfo struct {
	ID           job.ID
	Width        int
	Estimate     int64
	Submitted    int64
	State        JobState
	PlannedStart int64 // meaningful while waiting; NeverStart if unplaceable
	Started      int64 // meaningful once running
	Finished     int64 // meaningful once completed/killed/failed
}

// VictimPolicy orders the running jobs for termination when a capacity
// failure leaves the machine oversubscribed: victims are killed from the
// front of the returned slice until the remaining jobs fit the effective
// capacity. The input slice is a copy; the policy may reorder it freely.
type VictimPolicy = engine.VictimPolicy

// Victim orderings for capacity failures (see internal/engine).
var (
	// VictimLastStarted kills the most recently started jobs first (ties
	// broken by higher ID first), minimising the amount of finished work
	// a capacity failure destroys. It is the default.
	VictimLastStarted VictimPolicy = engine.VictimLastStarted
	// VictimWidestFirst kills the widest jobs first (ties broken by
	// later start, then higher ID), freeing the most processors per kill.
	VictimWidestFirst VictimPolicy = engine.VictimWidestFirst
)

// Scheduler is an online planning-based RMS core. Create with New; all
// methods are safe for concurrent use.
//
// Reads and writes are decoupled: every mutation, while still holding
// the scheduling mutex, publishes an immutable snapshot of the
// externally visible state, and the heavy-traffic read operations —
// Status, Report, Finished, Now — serve from the latest snapshot with a
// single atomic load. A storm of status readers therefore never delays
// a scheduling event, and a long replan never delays a reader: readers
// see the state as of the last completed mutation, which is exactly the
// consistency a mutex would give them minus the waiting.
type Scheduler struct {
	mu      sync.Mutex
	eng     *engine.Engine
	driver  sim.Driver
	nextID  job.ID
	journal *Journal

	infos map[job.ID]*JobInfo
	done  []JobInfo // completed, killed and failed jobs, in finish order
	agg   reportAgg // running Report aggregates over done, in finish order

	// doneIdx maps a finished job to its index in done, letting Job(id)
	// answer history lookups from the read snapshot without the
	// scheduling lock. Guarded by doneMu, not mu, so readers resolving an
	// index never contend with a replan.
	doneMu  sync.RWMutex
	doneIdx map[job.ID]int

	// stateful collects the attached observers whose state rides along
	// in journal checkpoints (see StatefulObserver).
	stateful []StatefulObserver

	// jp mirrors journal for lock-free health checks (see JournalErr).
	jp atomic.Pointer[Journal]

	// snap is the immutable read model, swapped wholesale after every
	// mutation (see publish). Never nil once New returns.
	snap atomic.Pointer[readSnapshot]

	// Quote service state (see quote.go). quotesOn gates the extra
	// driver-state capture in publish, so schedulers that never call
	// EnableQuotes pay nothing; quoteNew is written once before quotesOn
	// flips and read lock-free afterwards.
	quotesOn  atomic.Bool
	quoteNew  func() sim.Driver
	quoteSpec atomic.Bool
	twinPool  sync.Pool
	twinsLive atomic.Int64
}

// readSnapshot is one immutable published state: a fully built Status
// (the snapshot owns its slices), the precomputed Report, and the
// finish-ordered done list. The done slice aliases the scheduler's
// backing array capped at its published length — appends behind it touch
// only indices the snapshot never reads, and finished entries are never
// mutated in place, so sharing is safe.
type readSnapshot struct {
	status Status
	report Report
	done   []JobInfo
	byID   map[job.ID]JobInfo // the live (waiting + running) jobs

	// driverState is the driver's serialized decision state as of this
	// snapshot, captured only while quotes are enabled (see quote.go):
	// it is what lets a digital twin resume the live tuner's decisions
	// without ever touching the live driver. nil for stateless drivers.
	driverState    []byte
	driverStateErr error
}

// publish rebuilds the read model from the current state and swaps it
// in. Callers hold the scheduling lock; readers are never blocked by it.
func (s *Scheduler) publish() {
	st := s.statusLocked()
	byID := make(map[job.ID]JobInfo, len(st.Waiting)+len(st.Running))
	for _, ji := range st.Waiting {
		byID[ji.ID] = ji
	}
	for _, ji := range st.Running {
		byID[ji.ID] = ji
	}
	snap := &readSnapshot{
		status: st,
		report: s.reportLocked(),
		done:   s.done[:len(s.done):len(s.done)],
		byID:   byID,
	}
	if s.quotesOn.Load() {
		if sd, ok := s.driver.(engine.StatefulDriver); ok {
			snap.driverState, snap.driverStateErr = sd.SaveState()
		}
	}
	s.snap.Store(snap)
}

// New returns an online scheduler for a machine with the given capacity,
// using the given planning driver (a static policy, dynP, or EASY). The
// clock starts at startTime.
func New(capacity int, driver sim.Driver, startTime int64) (*Scheduler, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("rms: capacity %d < 1", capacity)
	}
	if driver == nil {
		return nil, fmt.Errorf("rms: nil driver")
	}
	s := &Scheduler{
		driver:  driver,
		infos:   make(map[job.ID]*JobInfo),
		doneIdx: make(map[job.ID]int),
	}
	engOpts := []engine.Option{engine.WithHooks(engine.Hooks{
		Started:  s.onStarted,
		Finished: s.onFinished,
		Planned:  s.onPlanned,
	})}
	// Observer-driven deciders watch the engine they decide for; their
	// observed state rides tuner checkpoints (core.StatefulDecider), so
	// a journal restart resumes them mid-stream.
	if dp, ok := driver.(*sim.DynP); ok {
		if o := dp.DeciderObserver(); o != nil {
			engOpts = append(engOpts, engine.WithObserver(o))
		}
	}
	s.eng = engine.New(capacity, driver, startTime, engOpts...)
	s.replan()
	s.publish()
	return s, nil
}

// onStarted keeps the JobInfo lifecycle in step with engine launches.
// The engine calls it with the scheduler lock held.
func (s *Scheduler) onStarted(j *job.Job, now int64) {
	info := s.infos[j.ID]
	info.State = StateRunning
	info.Started = now
}

// onFinished records a job leaving the machine, whatever the reason.
func (s *Scheduler) onFinished(j *job.Job, st engine.FinishState, now int64) {
	info := s.infos[j.ID]
	switch st {
	case engine.FinishCompleted:
		info.State = StateCompleted
	case engine.FinishKilled:
		info.State = StateKilled
	case engine.FinishFailed:
		info.State = StateFailed
	}
	info.Finished = now
	s.doneMu.Lock()
	s.doneIdx[j.ID] = len(s.done)
	s.doneMu.Unlock()
	s.done = append(s.done, *info)
	s.agg.add(*info)
}

// onPlanned refreshes the planned starts after every replanning step.
// Unplaceable jobs (wider than the effective capacity) carry the
// NeverStart sentinel until capacity returns.
func (s *Scheduler) onPlanned(sched *plan.Schedule, unplaceable []*job.Job) {
	if sched != nil {
		for _, e := range sched.Entries {
			if info, ok := s.infos[e.Job.ID]; ok && info.State == StateWaiting {
				info.PlannedStart = e.Start
			}
		}
	}
	for _, j := range unplaceable {
		s.infos[j.ID].PlannedStart = NeverStart
	}
}

// replan runs one shared scheduling event. The engine's graceful launch
// mode never returns an error. Callers hold the lock.
func (s *Scheduler) replan() { _ = s.eng.Replan() }

// SetVictimPolicy replaces the policy that picks which running jobs die
// when a capacity failure oversubscribes the machine. A nil policy
// restores the default (VictimLastStarted).
func (s *Scheduler) SetVictimPolicy(p VictimPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.SetVictimPolicy(p)
}

// AddObserver attaches an observer to the scheduling engine: it receives
// every transition (submissions, starts, completions, kills, capacity
// changes and one EventPlan per scheduling event) as structured
// engine.Event values, synchronously under the scheduler lock. Observe
// must not call back into the scheduler.
func (s *Scheduler) AddObserver(o engine.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.AddObserver(o)
	if so, ok := o.(StatefulObserver); ok {
		s.stateful = append(s.stateful, so)
	}
}

// StatefulObserver is an optional engine.Observer extension: observers
// with state worth surviving a restart (the event trace ring) implement
// it so journal checkpoints capture that state and a restored scheduler
// reinstalls it. States are matched by key, leniently: a checkpoint
// entry with no attached observer of that key is skipped, so observer
// wiring can change between runs without invalidating old checkpoints.
type StatefulObserver interface {
	engine.Observer
	// StateKey identifies the observer's state in a checkpoint.
	StateKey() string
	// SaveState serialises the observer's state.
	SaveState() ([]byte, error)
	// RestoreState installs a previously saved state.
	RestoreState(data []byte) error
}

// SetJournal attaches a write-ahead journal: every subsequent external
// event (submit, complete, cancel, advance, deliver, fail, restore) is
// appended — and flushed — before it mutates scheduler state, so a
// crashed daemon can rebuild identical state with Journal.Replay. Attach
// after replaying, before serving traffic. If the journal is empty, a
// header describing this scheduler is written so a later replay can
// reject a mismatched configuration.
func (s *Scheduler) SetJournal(j *Journal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j != nil && j.fresh() {
		if err := j.writeHeader(journalHeader{
			Version:   journalVersion,
			Capacity:  s.eng.Capacity(),
			Scheduler: s.driver.Name(),
			Start:     s.eng.Now(),
		}); err != nil {
			return fmt.Errorf("rms: journal header: %w", err)
		}
	}
	s.journal = j
	s.jp.Store(j)
	return nil
}

// JournalErr reports the attached journal's sticky failure, if any,
// without taking the scheduling lock. A scheduler whose journal has
// failed still serves reads but refuses every mutation, and the
// daemon's readiness check turns not-ready.
func (s *Scheduler) JournalErr() error {
	if j := s.jp.Load(); j != nil {
		return j.Err()
	}
	return nil
}

// QueueDepth returns the number of waiting jobs as of the last
// completed mutation, without taking the scheduling lock. The daemon's
// readiness watermark reads it on every health probe.
func (s *Scheduler) QueueDepth() int {
	return len(s.snap.Load().status.Waiting)
}

// journalAppend records an external event ahead of applying it. On a
// journal write error the event must not be applied — the journal is the
// authority after a crash — so callers return the error to the client.
// Callers hold the lock.
func (s *Scheduler) journalAppend(ev Event) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(ev); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	return nil
}

// journalCheckpoint lets the journal cut a periodic checkpoint of the
// post-event state and rotate its segment. Callers hold the lock.
func (s *Scheduler) journalCheckpoint() {
	if s.journal != nil {
		s.journal.maybeCheckpoint(s)
	}
}

// Now returns the scheduler's current time as of the last completed
// mutation. It never takes the scheduling lock.
func (s *Scheduler) Now() int64 {
	return s.snap.Load().status.Now
}

// Submit enters a job (width processors for at most estimate seconds) at
// the current time and returns its ID and planned start time. Width is
// validated against the installed capacity: a job wider than the
// processors currently up is accepted and queued (planned start
// NeverStart) until enough capacity is restored.
func (s *Scheduler) Submit(width int, estimate int64) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if width < 1 || width > s.eng.Capacity() {
		return JobInfo{}, fmt.Errorf("rms: width %d out of [1, %d] (effective capacity now %d)",
			width, s.eng.Capacity(), s.eng.Effective())
	}
	if estimate < 1 {
		return JobInfo{}, fmt.Errorf("rms: estimate %d < 1", estimate)
	}
	if err := s.journalAppend(Event{Op: opSubmit, Width: width, Estimate: estimate}); err != nil {
		return JobInfo{}, err
	}
	s.nextID++
	j := &job.Job{
		ID: s.nextID, Submit: s.eng.Now(), Width: width,
		Estimate: estimate,
		// The actual run time is unknown online; the planner never
		// reads it, but the job model requires validity.
		Runtime: estimate,
	}
	s.infos[j.ID] = &JobInfo{
		ID: j.ID, Width: width, Estimate: estimate,
		Submitted: s.eng.Now(), State: StateWaiting,
	}
	s.eng.Submit(j)
	s.replan()
	info := *s.infos[j.ID]
	s.journalCheckpoint()
	return info, nil
}

// Complete reports that a running job finished at the current time.
func (s *Scheduler) Complete(id job.ID) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	info, ok := s.infos[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("rms: unknown job %d", id)
	}
	if info.State != StateRunning {
		return JobInfo{}, fmt.Errorf("rms: job %d is %s, not running", id, info.State)
	}
	if err := s.journalAppend(Event{Op: opDone, ID: int64(id)}); err != nil {
		return JobInfo{}, err
	}
	s.eng.Finish(id, engine.FinishCompleted)
	s.replan()
	s.journalCheckpoint()
	return *info, nil
}

// Cancel removes a waiting job from the queue.
func (s *Scheduler) Cancel(id job.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	info, ok := s.infos[id]
	if !ok {
		return fmt.Errorf("rms: unknown job %d", id)
	}
	if info.State != StateWaiting {
		return fmt.Errorf("rms: job %d is %s, not waiting", id, info.State)
	}
	if err := s.journalAppend(Event{Op: opCancel, ID: int64(id)}); err != nil {
		return err
	}
	s.eng.CancelWaiting(id)
	delete(s.infos, id)
	s.replan()
	s.journalCheckpoint()
	return nil
}

// Fail takes procs processors out of service at the current time — a
// node crash or a drain for maintenance. Running jobs that no longer fit
// the remaining capacity are terminated (state StateFailed) in the order
// chosen by the victim policy; waiting jobs wider than the remaining
// capacity stay queued with planned start NeverStart; everything else is
// replanned against the shrunken machine.
func (s *Scheduler) Fail(procs int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if procs < 1 {
		return fmt.Errorf("rms: fail %d processors < 1", procs)
	}
	if s.eng.FailedProcs()+procs > s.eng.Capacity() {
		return fmt.Errorf("rms: failing %d processors exceeds capacity (%d of %d already failed)",
			procs, s.eng.FailedProcs(), s.eng.Capacity())
	}
	if err := s.journalAppend(Event{Op: opFail, Procs: procs}); err != nil {
		return err
	}
	s.eng.FailProcs(procs)
	s.replan()
	s.journalCheckpoint()
	return nil
}

// Restore returns procs previously failed processors to service at the
// current time and replans: unplaceable jobs get real planned starts
// again, and waiting work may begin immediately.
func (s *Scheduler) Restore(procs int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if procs < 1 {
		return fmt.Errorf("rms: restore %d processors < 1", procs)
	}
	if procs > s.eng.FailedProcs() {
		return fmt.Errorf("rms: restore %d exceeds %d failed processors", procs, s.eng.FailedProcs())
	}
	if err := s.journalAppend(Event{Op: opRestore, Procs: procs}); err != nil {
		return err
	}
	s.eng.RestoreProcs(procs)
	s.replan()
	s.journalCheckpoint()
	return nil
}

// Advance moves the clock to the given time, starting jobs whose planned
// start arrives and killing jobs whose estimates expire on the way. It is
// an error to move the clock backwards.
func (s *Scheduler) Advance(to int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if to < s.eng.Now() {
		return fmt.Errorf("rms: cannot advance from %d back to %d", s.eng.Now(), to)
	}
	if to != s.eng.Now() {
		// Advancing to the current time is a no-op; journaling only real
		// moves keeps a real-time ticker from flooding the journal.
		if err := s.journalAppend(Event{Op: opTick, To: to}); err != nil {
			return err
		}
	}
	_ = s.eng.AdvanceTo(to, false)
	s.eng.JumpTo(to)
	s.journalCheckpoint()
	return nil
}

// Submission describes one job of a Deliver batch.
type Submission struct {
	Width    int   `json:"width"`
	Estimate int64 `json:"estimate"`
}

// Deliver applies a batch of simultaneous external events atomically: the
// clock moves to t (processing automatic actions strictly before t on the
// way), then all completions, estimate expiries and submissions at t take
// effect before a single replanning step. This mirrors how the offline
// discrete event simulator treats same-instant events and is the right
// entry point for bridges that replay simulated workloads; interactive
// use (Submit/Complete) replans eagerly instead, which can order
// same-instant events differently.
//
// The returned infos correspond to the submissions, in order.
func (s *Scheduler) Deliver(t int64, completions []job.ID, subs []Submission) ([]JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if t < s.eng.Now() {
		return nil, fmt.Errorf("rms: cannot deliver at %d before current time %d", t, s.eng.Now())
	}
	// Journaled ahead of the clock move: a batch that fails validation
	// below is replayed and rejected identically, leaving the same state
	// (including the advanced clock) as the original run.
	if len(completions) > 0 || len(subs) > 0 || t != s.eng.Now() {
		ids := make([]int64, len(completions))
		for i, id := range completions {
			ids[i] = int64(id)
		}
		if err := s.journalAppend(Event{Op: opDeliver, To: t, Completions: ids, Subs: subs}); err != nil {
			return nil, err
		}
	}
	_ = s.eng.AdvanceTo(t, true)
	s.eng.JumpTo(t)

	// Validate the whole batch before mutating anything, so a bad entry
	// cannot leave the batch half-applied.
	seen := make(map[job.ID]struct{}, len(completions))
	for _, id := range completions {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("rms: duplicate completion for job %d", id)
		}
		seen[id] = struct{}{}
		info, ok := s.infos[id]
		if !ok {
			return nil, fmt.Errorf("rms: unknown job %d", id)
		}
		if info.State != StateRunning {
			return nil, fmt.Errorf("rms: job %d is %s, not running", id, info.State)
		}
	}
	for _, sub := range subs {
		if sub.Width < 1 || sub.Width > s.eng.Capacity() {
			return nil, fmt.Errorf("rms: width %d out of [1, %d] (effective capacity now %d)",
				sub.Width, s.eng.Capacity(), s.eng.Effective())
		}
		if sub.Estimate < 1 {
			return nil, fmt.Errorf("rms: estimate %d < 1", sub.Estimate)
		}
	}

	// Client completions first (a job completing exactly at its
	// estimate counts as completed, not killed), then expiries.
	for _, id := range completions {
		s.eng.Finish(id, engine.FinishCompleted)
	}
	s.eng.KillExpired()

	out := make([]JobInfo, 0, len(subs))
	for _, sub := range subs {
		s.nextID++
		j := &job.Job{
			ID: s.nextID, Submit: s.eng.Now(), Width: sub.Width,
			Estimate: sub.Estimate, Runtime: sub.Estimate,
		}
		s.infos[j.ID] = &JobInfo{
			ID: j.ID, Width: j.Width, Estimate: j.Estimate,
			Submitted: s.eng.Now(), State: StateWaiting,
		}
		s.eng.Submit(j)
	}

	s.replan()
	for id := s.nextID - job.ID(len(subs)) + 1; id <= s.nextID; id++ {
		out = append(out, *s.infos[id])
	}
	s.journalCheckpoint()
	return out, nil
}

// Status is a snapshot of the whole system.
type Status struct {
	Now          int64
	Capacity     int // installed processors
	FailedProcs  int // processors currently out of service
	UsedProcs    int
	ActivePolicy string // policy name; "" before the first plan
	Scheduler    string
	Waiting      []JobInfo // in planned-start order
	Running      []JobInfo // in start order
	Finished     int       // completed + killed + failed so far
}

// Status returns a consistent snapshot of the whole system as of the
// last completed mutation. It never takes the scheduling lock: a storm
// of status readers cannot delay a scheduling event. The slices are the
// caller's to keep.
func (s *Scheduler) Status() Status {
	st := s.snap.Load().status
	// The snapshot is shared by every concurrent reader; hand out copies
	// of its slices so no caller can mutate another's view.
	st.Waiting = append([]JobInfo(nil), st.Waiting...)
	st.Running = append([]JobInfo(nil), st.Running...)
	return st
}

func (s *Scheduler) statusLocked() Status {
	st := Status{
		Now:          s.eng.Now(),
		Capacity:     s.eng.Capacity(),
		FailedProcs:  s.eng.FailedProcs(),
		ActivePolicy: policyName(s.driver.ActivePolicy()),
		Scheduler:    s.driver.Name(),
		Finished:     len(s.done),
	}
	for _, r := range s.eng.Running() {
		st.UsedProcs += r.Job.Width
		st.Running = append(st.Running, *s.infos[r.Job.ID])
	}
	for _, w := range s.eng.Waiting() {
		st.Waiting = append(st.Waiting, *s.infos[w.ID])
	}
	sort.Slice(st.Running, func(i, j int) bool { return st.Running[i].Started < st.Running[j].Started })
	sort.Slice(st.Waiting, func(i, j int) bool {
		if st.Waiting[i].PlannedStart != st.Waiting[j].PlannedStart {
			return st.Waiting[i].PlannedStart < st.Waiting[j].PlannedStart
		}
		return st.Waiting[i].ID < st.Waiting[j].ID
	})
	return st
}

// Job returns the status of a single job (including finished ones). The
// common cases — a live job or a finished one — are answered from the
// published read snapshot without the scheduling lock, so single-job
// pollers cannot be starved by a long replan. Only the race window
// between a job finishing and the next publish falls back to the lock.
func (s *Scheduler) Job(id job.ID) (JobInfo, error) {
	snap := s.snap.Load()
	if info, ok := snap.byID[id]; ok {
		return info, nil
	}
	s.doneMu.RLock()
	idx, ok := s.doneIdx[id]
	s.doneMu.RUnlock()
	if ok && idx < len(snap.done) {
		return snap.done[idx], nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := s.infos[id]; ok {
		return *info, nil
	}
	return JobInfo{}, fmt.Errorf("rms: unknown job %d", id)
}

// Finished returns the jobs that completed, were killed, or died to a
// capacity failure, in finish order, as of the last completed mutation.
// It never takes the scheduling lock.
func (s *Scheduler) Finished() []JobInfo {
	return append([]JobInfo(nil), s.snap.Load().done...)
}

// CheckInvariants verifies the scheduler's internal consistency: the
// engine's machine state is coherent (see engine.CheckInvariants), every
// queue entry has a matching info in the matching state, and no job is
// both waiting and running. It exists for tests and the chaos harness; a
// healthy scheduler always returns nil.
func (s *Scheduler) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.eng.CheckInvariants(); err != nil {
		return fmt.Errorf("rms: %w", err)
	}
	for _, r := range s.eng.Running() {
		info, ok := s.infos[r.Job.ID]
		if !ok || info.State != StateRunning {
			return fmt.Errorf("rms: running job %d has no running info", r.Job.ID)
		}
	}
	for _, w := range s.eng.Waiting() {
		info, ok := s.infos[w.ID]
		if !ok || info.State != StateWaiting {
			return fmt.Errorf("rms: waiting job %d has no waiting info", w.ID)
		}
	}
	for id, info := range s.infos {
		switch info.State {
		case StateWaiting:
			if !s.eng.IsWaiting(id) {
				return fmt.Errorf("rms: job %d marked waiting but not queued", id)
			}
		case StateRunning:
			if !s.eng.IsRunning(id) {
				return fmt.Errorf("rms: job %d marked running but not on the machine", id)
			}
		}
	}
	return nil
}
