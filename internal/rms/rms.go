// Package rms embeds the dynP scheduler in an *online* planning-based
// resource management system — the role the CCS system plays for the
// paper's clusters. Unlike the offline simulator (internal/sim), which
// replays a job set whose actual run times are known in advance, the
// online scheduler learns completions from the outside world: clients
// submit jobs with estimates, report completions, and the RMS kills jobs
// whose estimates expire (the guarantee that makes planning sound).
//
// Time is explicit: the caller drives the clock with Advance, which makes
// the core fully deterministic and testable; a real-time front end (see
// cmd/dynpd) simply calls Advance from a wall-clock ticker.
package rms

import (
	"fmt"
	"sort"
	"sync"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/sim"
)

// JobState describes where a job currently is in its lifecycle.
type JobState int

// The job lifecycle states.
const (
	StateWaiting JobState = iota
	StateRunning
	StateCompleted
	StateKilled // estimate expired; the RMS terminated the job
)

var stateNames = [...]string{"waiting", "running", "completed", "killed"}

// String returns the lowercase state name.
func (s JobState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// JobInfo is the externally visible status of one job.
type JobInfo struct {
	ID           job.ID
	Width        int
	Estimate     int64
	Submitted    int64
	State        JobState
	PlannedStart int64 // meaningful while waiting
	Started      int64 // meaningful once running
	Finished     int64 // meaningful once completed/killed
}

// Scheduler is an online planning-based RMS core. Create with New; all
// methods are safe for concurrent use.
type Scheduler struct {
	mu       sync.Mutex
	capacity int
	driver   sim.Driver
	now      int64
	nextID   job.ID

	waiting []*job.Job
	running []plan.Running
	infos   map[job.ID]*JobInfo
	plan    *plan.Schedule

	done []JobInfo // completed and killed jobs, in finish order
}

// New returns an online scheduler for a machine with the given capacity,
// using the given planning driver (a static policy, dynP, or EASY). The
// clock starts at startTime.
func New(capacity int, driver sim.Driver, startTime int64) (*Scheduler, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("rms: capacity %d < 1", capacity)
	}
	if driver == nil {
		return nil, fmt.Errorf("rms: nil driver")
	}
	s := &Scheduler{
		capacity: capacity,
		driver:   driver,
		now:      startTime,
		infos:    make(map[job.ID]*JobInfo),
	}
	s.replan()
	return s, nil
}

// Now returns the scheduler's current time.
func (s *Scheduler) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Submit enters a job (width processors for at most estimate seconds) at
// the current time and returns its ID and planned start time.
func (s *Scheduler) Submit(width int, estimate int64) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if width < 1 || width > s.capacity {
		return JobInfo{}, fmt.Errorf("rms: width %d out of [1, %d]", width, s.capacity)
	}
	if estimate < 1 {
		return JobInfo{}, fmt.Errorf("rms: estimate %d < 1", estimate)
	}
	s.nextID++
	j := &job.Job{
		ID: s.nextID, Submit: s.now, Width: width,
		Estimate: estimate,
		// The actual run time is unknown online; the planner never
		// reads it, but the job model requires validity.
		Runtime: estimate,
	}
	s.waiting = append(s.waiting, j)
	s.infos[j.ID] = &JobInfo{
		ID: j.ID, Width: width, Estimate: estimate,
		Submitted: s.now, State: StateWaiting,
	}
	s.replan()
	info := *s.infos[j.ID]
	return info, nil
}

// Complete reports that a running job finished at the current time.
func (s *Scheduler) Complete(id job.ID) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.infos[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("rms: unknown job %d", id)
	}
	if info.State != StateRunning {
		return JobInfo{}, fmt.Errorf("rms: job %d is %s, not running", id, info.State)
	}
	s.finish(id, StateCompleted)
	s.replan()
	return *info, nil
}

// Cancel removes a waiting job from the queue.
func (s *Scheduler) Cancel(id job.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.infos[id]
	if !ok {
		return fmt.Errorf("rms: unknown job %d", id)
	}
	if info.State != StateWaiting {
		return fmt.Errorf("rms: job %d is %s, not waiting", id, info.State)
	}
	for i, j := range s.waiting {
		if j.ID == id {
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			break
		}
	}
	delete(s.infos, id)
	s.replan()
	return nil
}

// Advance moves the clock to the given time, starting jobs whose planned
// start arrives and killing jobs whose estimates expire on the way. It is
// an error to move the clock backwards.
func (s *Scheduler) Advance(to int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if to < s.now {
		return fmt.Errorf("rms: cannot advance from %d back to %d", s.now, to)
	}
	s.advanceLocked(to, false)
	s.now = to
	return nil
}

// advanceLocked processes automatic actions (kills, planned starts) up to
// time `to` — strictly before it when exclusive is set. Callers hold the
// lock and are responsible for setting s.now afterwards.
func (s *Scheduler) advanceLocked(to int64, exclusive bool) {
	for {
		next, ok := s.nextActionTime()
		if !ok || next > to || (exclusive && next == to) {
			return
		}
		s.now = next
		s.killExpired()
		s.startDue()
	}
}

// killExpired terminates running jobs whose estimates expired and replans
// if any were found. Callers hold the lock.
func (s *Scheduler) killExpired() {
	killed := false
	for _, r := range append([]plan.Running(nil), s.running...) {
		if r.EstimatedEnd() <= s.now {
			s.finish(r.Job.ID, StateKilled)
			killed = true
		}
	}
	if killed {
		s.replan()
	}
}

// Submission describes one job of a Deliver batch.
type Submission struct {
	Width    int
	Estimate int64
}

// Deliver applies a batch of simultaneous external events atomically: the
// clock moves to t (processing automatic actions strictly before t on the
// way), then all completions, estimate expiries and submissions at t take
// effect before a single replanning step. This mirrors how the offline
// discrete event simulator treats same-instant events and is the right
// entry point for bridges that replay simulated workloads; interactive
// use (Submit/Complete) replans eagerly instead, which can order
// same-instant events differently.
//
// The returned infos correspond to the submissions, in order.
func (s *Scheduler) Deliver(t int64, completions []job.ID, subs []Submission) ([]JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		return nil, fmt.Errorf("rms: cannot deliver at %d before current time %d", t, s.now)
	}
	s.advanceLocked(t, true)
	s.now = t

	// Validate the whole batch before mutating anything, so a bad entry
	// cannot leave the batch half-applied.
	for _, id := range completions {
		info, ok := s.infos[id]
		if !ok {
			return nil, fmt.Errorf("rms: unknown job %d", id)
		}
		if info.State != StateRunning {
			return nil, fmt.Errorf("rms: job %d is %s, not running", id, info.State)
		}
	}
	for _, sub := range subs {
		if sub.Width < 1 || sub.Width > s.capacity {
			return nil, fmt.Errorf("rms: width %d out of [1, %d]", sub.Width, s.capacity)
		}
		if sub.Estimate < 1 {
			return nil, fmt.Errorf("rms: estimate %d < 1", sub.Estimate)
		}
	}

	// Client completions first (a job completing exactly at its
	// estimate counts as completed, not killed), then expiries.
	for _, id := range completions {
		s.finish(id, StateCompleted)
	}
	for _, r := range append([]plan.Running(nil), s.running...) {
		if r.EstimatedEnd() <= s.now {
			s.finish(r.Job.ID, StateKilled)
		}
	}

	out := make([]JobInfo, 0, len(subs))
	for _, sub := range subs {
		s.nextID++
		j := &job.Job{
			ID: s.nextID, Submit: s.now, Width: sub.Width,
			Estimate: sub.Estimate, Runtime: sub.Estimate,
		}
		s.waiting = append(s.waiting, j)
		s.infos[j.ID] = &JobInfo{
			ID: j.ID, Width: j.Width, Estimate: j.Estimate,
			Submitted: s.now, State: StateWaiting,
		}
	}

	s.replan()
	for id := s.nextID - job.ID(len(subs)) + 1; id <= s.nextID; id++ {
		out = append(out, *s.infos[id])
	}
	return out, nil
}

// nextActionTime returns the earliest time at which the machine state
// changes by itself: a planned start or an estimate expiry.
func (s *Scheduler) nextActionTime() (int64, bool) {
	var next int64
	found := false
	consider := func(t int64) {
		if t < s.now {
			t = s.now
		}
		if !found || t < next {
			next, found = t, true
		}
	}
	for _, r := range s.running {
		consider(r.EstimatedEnd())
	}
	if s.plan != nil {
		for _, e := range s.plan.Entries {
			// Only entries of still-waiting jobs can act; started jobs
			// leave stale entries behind until the next replan.
			if info, ok := s.infos[e.Job.ID]; ok && info.State == StateWaiting {
				consider(e.Start)
			}
		}
	}
	return next, found
}

// finish moves a job out of the running set. Callers hold the lock.
func (s *Scheduler) finish(id job.ID, state JobState) {
	for i, r := range s.running {
		if r.Job.ID == id {
			s.running = append(s.running[:i], s.running[i+1:]...)
			info := s.infos[id]
			info.State = state
			info.Finished = s.now
			s.done = append(s.done, *info)
			return
		}
	}
}

// replan recomputes the full schedule and starts due jobs. Callers hold
// the lock.
func (s *Scheduler) replan() {
	s.plan = s.driver.Plan(s.now, s.capacity, s.running, s.waiting)
	for _, e := range s.plan.Entries {
		if info, ok := s.infos[e.Job.ID]; ok && info.State == StateWaiting {
			info.PlannedStart = e.Start
		}
	}
	s.startDue()
}

// startDue launches every waiting job whose planned start is now.
// Callers hold the lock.
func (s *Scheduler) startDue() {
	if s.plan == nil {
		return
	}
	for _, e := range s.plan.Entries {
		if e.Start != s.now {
			continue
		}
		info := s.infos[e.Job.ID]
		if info == nil || info.State != StateWaiting {
			continue
		}
		used := 0
		for _, r := range s.running {
			used += r.Job.Width
		}
		if used+e.Job.Width > s.capacity {
			panic(fmt.Sprintf("rms: starting job %d would use %d of %d processors",
				e.Job.ID, used+e.Job.Width, s.capacity))
		}
		for i, wj := range s.waiting {
			if wj.ID == e.Job.ID {
				s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
				break
			}
		}
		s.running = append(s.running, plan.Running{Job: e.Job, Start: s.now})
		info.State = StateRunning
		info.Started = s.now
	}
}

// Status is a snapshot of the whole system.
type Status struct {
	Now          int64
	Capacity     int
	UsedProcs    int
	ActivePolicy policy.Policy
	Scheduler    string
	Waiting      []JobInfo // in planned-start order
	Running      []JobInfo // in start order
	Finished     int       // completed + killed so far
}

// Status returns a consistent snapshot.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Now:          s.now,
		Capacity:     s.capacity,
		ActivePolicy: s.driver.ActivePolicy(),
		Scheduler:    s.driver.Name(),
		Finished:     len(s.done),
	}
	for _, r := range s.running {
		st.UsedProcs += r.Job.Width
		st.Running = append(st.Running, *s.infos[r.Job.ID])
	}
	for _, w := range s.waiting {
		st.Waiting = append(st.Waiting, *s.infos[w.ID])
	}
	sort.Slice(st.Running, func(i, j int) bool { return st.Running[i].Started < st.Running[j].Started })
	sort.Slice(st.Waiting, func(i, j int) bool {
		if st.Waiting[i].PlannedStart != st.Waiting[j].PlannedStart {
			return st.Waiting[i].PlannedStart < st.Waiting[j].PlannedStart
		}
		return st.Waiting[i].ID < st.Waiting[j].ID
	})
	return st
}

// Job returns the status of a single job (including finished ones).
func (s *Scheduler) Job(id job.ID) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := s.infos[id]; ok {
		return *info, nil
	}
	return JobInfo{}, fmt.Errorf("rms: unknown job %d", id)
}

// Finished returns the jobs that completed or were killed, in finish
// order.
func (s *Scheduler) Finished() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]JobInfo(nil), s.done...)
}
