package rms

import (
	"testing"

	"dynp/internal/policy"
	"dynp/internal/sim"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s, err := New(8, &sim.Static{Policy: policy.FCFS}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(s, true)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv, addr.String()
}

func TestClientFullLifecycle(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a, err := c.Submit(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != StateRunning {
		t.Fatalf("a = %+v", a)
	}
	b, err := c.Submit(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateWaiting || b.PlannedStart != 100 {
		t.Fatalf("b = %+v", b)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedProcs != 8 || len(st.Waiting) != 1 {
		t.Fatalf("status = %+v", st)
	}

	if now, err := c.Tick(40); err != nil || now != 40 {
		t.Fatalf("tick: %v %v", now, err)
	}
	if _, err := c.Done(a.ID); err != nil {
		t.Fatal(err)
	}
	bi, err := c.Job(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bi.State != StateRunning || bi.Started != 40 {
		t.Fatalf("b after early completion = %+v", bi)
	}

	fin, err := c.Finished()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 1 || fin[0].ID != a.ID {
		t.Fatalf("finished = %+v", fin)
	}
}

func TestClientCancel(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Submit(8, 100)
	b, _ := c.Submit(1, 10)
	if err := c.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(b.ID); err == nil {
		t.Fatal("cancelled job still queryable")
	}
}

func TestClientServerErrorsSurface(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(99, 10); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := c.Done(12345); err == nil {
		t.Error("done on unknown job accepted")
	}
	// Errors must not desynchronise the stream.
	if _, err := c.Status(); err != nil {
		t.Fatalf("connection desynchronised: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTwoClientsShareOneMachine(t *testing.T) {
	_, addr := startServer(t)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	c1.Submit(6, 100)
	info, err := c2.Submit(6, 100) // must queue behind client 1's job
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateWaiting {
		t.Fatalf("second client's job = %+v", info)
	}
	st, err := c1.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedProcs != 6 || len(st.Waiting) != 1 {
		t.Fatalf("shared status = %+v", st)
	}
}

func TestClientReport(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, _ := c.Submit(4, 100)
	c.Tick(30)
	c.Done(a.ID)
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 1 || rep.Killed != 0 || rep.SLDwA != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
