// Crash-safe persistence for the online scheduler: a write-ahead event
// journal with periodic state snapshots.
//
// The journal is a plain file of newline-delimited JSON. The first line
// is a header describing the scheduler configuration; every further line
// is either one external event (written and flushed *before* the event
// mutates scheduler state) or a snapshot of the full post-event state.
// Because the scheduler is deterministic — the clock is explicit and
// every source of change is an external event — replaying the events
// into a freshly constructed scheduler with the same configuration
// rebuilds byte-identical state, including the internal state of a
// stateful driver such as the self-tuning dynP scheduler. Snapshots are
// consistency checkpoints: replay verifies the rebuilt state against
// each one, so silent divergence (a tampered journal, a changed binary)
// is detected instead of propagated.
//
// A crash can leave a partial last line; OpenJournal recovers the
// longest valid prefix and truncates the rest, so a kill -9 loses at
// most the event whose append did not reach the operating system.
package rms

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"dynp/internal/job"
)

// journalVersion identifies the on-disk format.
const journalVersion = 1

// DefaultSnapshotEvery is the default number of events between state
// snapshots in the journal.
const DefaultSnapshotEvery = 256

// The external event operations recorded in the journal. They double as
// the protocol op names (see server.go).
const (
	opSubmit  = "submit"
	opDone    = "done"
	opCancel  = "cancel"
	opTick    = "tick"
	opDeliver = "deliver"
	opFail    = "fail"
	opRestore = "restore"
)

// Event is one external scheduler event: everything that can change
// scheduler state besides the deterministic consequences of time.
type Event struct {
	Op          string       `json:"op"`
	Width       int          `json:"width,omitempty"`
	Estimate    int64        `json:"estimate,omitempty"`
	ID          int64        `json:"id,omitempty"`
	To          int64        `json:"to,omitempty"`
	Procs       int          `json:"procs,omitempty"`
	Completions []int64      `json:"completions,omitempty"`
	Subs        []Submission `json:"subs,omitempty"`
}

// journalHeader pins the scheduler configuration a journal belongs to.
type journalHeader struct {
	Version   int    `json:"version"`
	Capacity  int    `json:"capacity"`
	Scheduler string `json:"scheduler"`
	Start     int64  `json:"start"`
}

// snapshotState is the full externally visible scheduler state, cut
// after an event applied. Replay verifies against it.
type snapshotState struct {
	Now      int64     `json:"now"`
	NextID   int64     `json:"next_id"`
	Failed   int       `json:"failed"`
	Status   Status    `json:"status"`
	Finished []JobInfo `json:"finished"`
}

// snapshotLocked captures the verification snapshot. Callers hold the
// scheduler lock.
func (s *Scheduler) snapshotLocked() snapshotState {
	return snapshotState{
		Now:      s.eng.Now(),
		NextID:   int64(s.nextID),
		Failed:   s.eng.FailedProcs(),
		Status:   s.statusLocked(),
		Finished: append([]JobInfo{}, s.done...),
	}
}

// journalLine is one line of the file: exactly one field is set.
type journalLine struct {
	Header   *journalHeader `json:"header,omitempty"`
	Event    *Event         `json:"event,omitempty"`
	Snapshot *snapshotState `json:"snapshot,omitempty"`
}

// Journal is an append-only write-ahead log of scheduler events. Open
// one with OpenJournal, replay it into a fresh scheduler with Replay,
// then attach it with Scheduler.SetJournal. Safe for concurrent use.
type Journal struct {
	mu            sync.Mutex
	path          string
	f             *os.File
	w             *bufio.Writer
	valid         int64 // length of the validated prefix at open time
	lines         int   // valid lines at open time
	hasHeader     bool
	appended      bool // any write since open
	sinceSnapshot int  // events since the last snapshot
	snapshotEvery int
	err           error // sticky write error; the journal refuses further appends
}

// OpenJournal opens (or creates) the journal at path, validates its
// contents and truncates any corrupt suffix — a partial line from a
// crash, or garbage — so the file ends at the longest valid prefix.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rms: journal: %w", err)
	}
	j := &Journal{path: path, f: f, w: bufio.NewWriter(f), snapshotEvery: DefaultSnapshotEvery}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the file, records the longest valid prefix, truncates
// the rest and positions the writer at the end of the valid data.
func (j *Journal) recover() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	r := bufio.NewReader(j.f)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial (unterminated) line: a crashed append.
			// Anything else ends validation at the current offset too.
			break
		}
		var l journalLine
		if !validLine(line, &l) {
			break
		}
		if offset == 0 && l.Header == nil {
			// A journal must start with its header.
			break
		}
		if l.Header != nil {
			if offset != 0 {
				break // a header anywhere else is corruption
			}
			j.hasHeader = true
		}
		if l.Event != nil {
			j.sinceSnapshot++
		}
		if l.Snapshot != nil {
			j.sinceSnapshot = 0
		}
		offset += int64(len(line))
		j.lines++
	}
	j.valid = offset
	if offset == 0 {
		// Nothing valid at all. An empty file is a fresh journal; a
		// non-empty one is not ours (foreign file, unsupported format,
		// or a header torn by a crash during the very first write) —
		// refuse rather than destroy it by truncating.
		if st, err := j.f.Stat(); err == nil && st.Size() > 0 {
			return fmt.Errorf("rms: journal %s: no valid header; not a dynpd journal (delete it to start fresh)", j.path)
		}
	}
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("rms: journal truncate: %w", err)
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	return nil
}

// validLine reports whether b is one well-formed journal line and
// decodes it into l.
func validLine(b []byte, l *journalLine) bool {
	if len(bytes.TrimSpace(b)) == 0 {
		return false
	}
	if err := json.Unmarshal(b, l); err != nil {
		return false
	}
	set := 0
	if l.Header != nil {
		set++
	}
	if l.Event != nil {
		set++
	}
	if l.Snapshot != nil {
		set++
	}
	return set == 1
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// SetSnapshotEvery sets the number of events between snapshots; n < 1
// disables snapshots.
func (j *Journal) SetSnapshotEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.snapshotEvery = n
}

// fresh reports whether the journal holds no valid data yet.
func (j *Journal) fresh() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.valid == 0 && !j.appended
}

// writeHeader records the scheduler configuration as the first line.
func (j *Journal) writeHeader(h journalHeader) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.hasHeader = true
	return j.appendLine(journalLine{Header: &h})
}

// Append records one event and flushes it to the operating system before
// returning, so a subsequent process crash cannot lose it. After any
// write error the journal turns itself off permanently (every further
// Append fails): a journal with a hole must not keep growing.
func (j *Journal) Append(ev Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLine(journalLine{Event: &ev}); err != nil {
		return err
	}
	j.sinceSnapshot++
	return nil
}

func (j *Journal) appendLine(l journalLine) error {
	if j.err != nil {
		return j.err
	}
	b, err := json.Marshal(l)
	if err != nil {
		j.err = fmt.Errorf("rms: journal encode: %w", err)
		return j.err
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = fmt.Errorf("rms: journal write: %w", err)
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("rms: journal flush: %w", err)
		return j.err
	}
	j.appended = true
	return nil
}

// maybeSnapshot cuts a state snapshot when enough events accumulated
// since the last one, and syncs the file to disk at that boundary. The
// scheduler calls it with its own lock held, after an event applied.
func (j *Journal) maybeSnapshot(s *Scheduler) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.snapshotEvery < 1 || j.sinceSnapshot < j.snapshotEvery {
		return
	}
	snap := s.snapshotLocked()
	if j.appendLine(journalLine{Snapshot: &snap}) == nil {
		j.sinceSnapshot = 0
		_ = j.f.Sync()
	}
}

// Sync flushes buffered data and fsyncs the file.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("rms: journal flush: %w", err)
		return j.err
	}
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	syncErr := j.Sync()
	j.mu.Lock()
	defer j.mu.Unlock()
	if closeErr := j.f.Close(); syncErr == nil {
		return closeErr
	}
	return syncErr
}

// Replay feeds every recorded event into the scheduler, which must be
// freshly constructed with the configuration the journal's header
// records and must not have the journal attached yet. Events the
// scheduler rejects are skipped — the original process rejected them
// identically, so state is unaffected — while structural problems
// (missing or mismatched header, unknown ops, snapshot divergence)
// abort with an error. It returns the number of events applied.
func (j *Journal) Replay(s *Scheduler) (int, error) {
	j.mu.Lock()
	valid := j.valid
	appended := j.appended
	j.mu.Unlock()
	if appended {
		return 0, fmt.Errorf("rms: journal: replay after appends")
	}
	if valid == 0 {
		return 0, nil // empty journal: nothing to do
	}

	s.mu.Lock()
	attached := s.journal
	virgin := s.nextID == 0 && len(s.done) == 0
	capacity, name, now := s.eng.Capacity(), s.driver.Name(), s.eng.Now()
	s.mu.Unlock()
	if attached != nil {
		return 0, fmt.Errorf("rms: journal: replay into a journaled scheduler would re-append every event")
	}
	if !virgin {
		return 0, fmt.Errorf("rms: journal: replay target already has state")
	}

	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("rms: journal: %w", err)
	}
	defer j.f.Seek(valid, io.SeekStart)
	r := bufio.NewReader(io.LimitReader(j.f, valid))

	applied, lineNo := 0, 0
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			break // end of the valid prefix
		}
		lineNo++
		var l journalLine
		if !validLine(line, &l) {
			return applied, fmt.Errorf("rms: journal: line %d invalid inside validated prefix", lineNo)
		}
		switch {
		case l.Header != nil:
			if lineNo != 1 {
				return applied, fmt.Errorf("rms: journal: header on line %d", lineNo)
			}
			h := *l.Header
			if h.Version != journalVersion {
				return applied, fmt.Errorf("rms: journal: version %d, want %d", h.Version, journalVersion)
			}
			if h.Capacity != capacity || h.Scheduler != name || h.Start != now {
				return applied, fmt.Errorf(
					"rms: journal: recorded for %q with %d processors from t=%d, scheduler is %q with %d from t=%d",
					h.Scheduler, h.Capacity, h.Start, name, capacity, now)
			}
		case l.Event != nil:
			if lineNo == 1 {
				return applied, fmt.Errorf("rms: journal: missing header")
			}
			if err := applyEvent(s, *l.Event); err != nil {
				return applied, err
			}
			applied++
		case l.Snapshot != nil:
			want, err := json.Marshal(l.Snapshot)
			if err != nil {
				return applied, fmt.Errorf("rms: journal: %w", err)
			}
			s.mu.Lock()
			live := s.snapshotLocked()
			s.mu.Unlock()
			got, err := json.Marshal(&live)
			if err != nil {
				return applied, fmt.Errorf("rms: journal: %w", err)
			}
			if !bytes.Equal(want, got) {
				return applied, fmt.Errorf(
					"rms: journal: snapshot on line %d does not match replayed state (journal tampered with, or written by different code)", lineNo)
			}
		}
	}
	return applied, nil
}

// applyEvent dispatches one journaled event through the scheduler's
// normal entry points. Rejections are deterministic re-runs of the
// original rejection and are deliberately ignored; an op this version
// does not know is a structural error.
func applyEvent(s *Scheduler, ev Event) error {
	switch ev.Op {
	case opSubmit:
		_, _ = s.Submit(ev.Width, ev.Estimate)
	case opDone:
		_, _ = s.Complete(job.ID(ev.ID))
	case opCancel:
		_ = s.Cancel(job.ID(ev.ID))
	case opTick:
		_ = s.Advance(ev.To)
	case opFail:
		_ = s.Fail(ev.Procs)
	case opRestore:
		_ = s.Restore(ev.Procs)
	case opDeliver:
		ids := make([]job.ID, len(ev.Completions))
		for i, id := range ev.Completions {
			ids[i] = job.ID(id)
		}
		_, _ = s.Deliver(ev.To, ids, ev.Subs)
	default:
		return fmt.Errorf("rms: journal: unknown event op %q", ev.Op)
	}
	return nil
}
