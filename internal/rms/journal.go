// Crash-safe persistence for the online scheduler: a write-ahead event
// journal with periodic checkpoint-restore points, segment rotation and
// per-record checksums.
//
// On-disk format (version 2). A journal is a family of files: the
// active segment at `path` plus zero or more rotated segments at
// `path.<seq>`. Every record is one line of the form
//
//	crc32c-hex(8) SP json LF
//
// where the checksum covers the JSON payload, so any torn, flipped or
// truncated record is detected instead of parsed. The first record of
// every segment is a header pinning the scheduler configuration and the
// segment's sequence number; segment 0 is the genesis segment. Event
// records are written and flushed *before* the event mutates scheduler
// state, so a kill -9 loses at most the un-acknowledged event in
// flight.
//
// Checkpoints and rotation. Every checkpointEvery events the journal
// cuts a checkpoint: the active segment is flushed, fsynced and renamed
// to `path.<seq>`, and a new active segment is created whose header
// (Checkpoint: true) is followed by a checkpoint record — the full
// restorable scheduler state (machine, queues, finished history, plan,
// driver and observer state). Restart therefore reads one segment: the
// newest checkpoint plus the events behind it, instead of the whole
// history (see Replay in replay.go). Rotated segments are immutable;
// Compact retires the ones older than the last durable checkpoint.
//
// Failure policy. Any write, flush, fsync or rotation failure is sticky:
// the journal permanently refuses further appends, because a journal
// with a hole must not keep growing and an unsynced checkpoint must not
// be trusted. Recovery at open truncates a torn tail of the active
// segment (the crash case) but refuses interior corruption that is
// followed by valid records — truncating there would silently discard
// acknowledged events.
package rms

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dynp/internal/vfs"
)

// journalVersion identifies the on-disk format. Version 2 added record
// checksums, segment rotation and restorable checkpoints; version 1
// files are refused (their records carry no checksums to trust).
const journalVersion = 2

// DefaultSnapshotEvery is the default number of events between
// checkpoints (and therefore segment rotations) in the journal.
const DefaultSnapshotEvery = 256

// The external event operations recorded in the journal. They double as
// the protocol op names (see server.go).
const (
	opSubmit  = "submit"
	opDone    = "done"
	opCancel  = "cancel"
	opTick    = "tick"
	opDeliver = "deliver"
	opFail    = "fail"
	opRestore = "restore"
)

// Event is one external scheduler event: everything that can change
// scheduler state besides the deterministic consequences of time.
type Event struct {
	Op          string       `json:"op"`
	Width       int          `json:"width,omitempty"`
	Estimate    int64        `json:"estimate,omitempty"`
	ID          int64        `json:"id,omitempty"`
	To          int64        `json:"to,omitempty"`
	Procs       int          `json:"procs,omitempty"`
	Completions []int64      `json:"completions,omitempty"`
	Subs        []Submission `json:"subs,omitempty"`
}

// journalHeader pins the scheduler configuration a journal belongs to
// and identifies the segment. Checkpoint promises that the segment's
// second record is a checkpoint — the recovery ladder relies on the
// promise to fall back past a corrupted checkpoint record without
// losing the events behind it.
type journalHeader struct {
	Version    int    `json:"version"`
	Capacity   int    `json:"capacity"`
	Scheduler  string `json:"scheduler"`
	Start      int64  `json:"start"` // genesis start time
	Segment    int    `json:"segment"`
	Checkpoint bool   `json:"checkpoint,omitempty"`
}

// planEntryRec is one schedule entry of a checkpointed plan.
type planEntryRec struct {
	ID    int64 `json:"id"`
	Start int64 `json:"start"`
}

// planRec captures the schedule in force at checkpoint time, so a
// restored engine can fire planned starts and compute its next action
// time before its first replanning event, exactly like the original.
// The policy travels by name: restore resolves it through the policy
// registry, so journals survive registry refactors and work for any
// registered custom policy — and fail loudly for an unregistered one.
type planRec struct {
	Policy   string         `json:"policy"`
	Now      int64          `json:"now"`
	Capacity int            `json:"capacity"`
	Entries  []planEntryRec `json:"entries,omitempty"`
}

// observerState is one stateful observer's checkpointed state, matched
// by key at restore (see StatefulObserver in rms.go).
type observerState struct {
	Key   string          `json:"key"`
	State json.RawMessage `json:"state,omitempty"`
}

// checkpointState is the full restorable scheduler state, cut after an
// event applied. Replay restores from the newest valid one; genesis
// replay verifies the rebuilt state against every one it passes.
type checkpointState struct {
	Events    int64           `json:"events"` // events since genesis folded into this state
	Now       int64           `json:"now"`
	NextID    int64           `json:"next_id"`
	Failed    int             `json:"failed"`
	Waiting   []JobInfo       `json:"waiting,omitempty"` // engine submission order
	Running   []JobInfo       `json:"running,omitempty"` // engine start order
	Done      []JobInfo       `json:"done,omitempty"`    // finish order
	Plan      *planRec        `json:"plan,omitempty"`
	Driver    json.RawMessage `json:"driver,omitempty"`
	Observers []observerState `json:"observers,omitempty"`
}

// journalLine is the JSON payload of one record: exactly one field set.
type journalLine struct {
	Header     *journalHeader   `json:"header,omitempty"`
	Event      *Event           `json:"event,omitempty"`
	Checkpoint *checkpointState `json:"checkpoint,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord frames one journal line: checksum, space, payload,
// newline.
func encodeRecord(l *journalLine) ([]byte, error) {
	payload, err := json.Marshal(l)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(payload)+10)
	var sum [4]byte
	crc := crc32.Checksum(payload, crcTable)
	sum[0], sum[1], sum[2], sum[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	buf = hex.AppendEncode(buf, sum[:])
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	buf = append(buf, '\n')
	return buf, nil
}

// decodeRecord validates and decodes one record line (without its
// newline): checksum intact, payload well-formed, exactly one field.
func decodeRecord(b []byte) (journalLine, bool) {
	var l journalLine
	if len(b) < 10 || b[8] != ' ' {
		return l, false
	}
	sum, err := hex.DecodeString(string(b[:8]))
	if err != nil {
		return l, false
	}
	payload := b[9:]
	crc := crc32.Checksum(payload, crcTable)
	if sum[0] != byte(crc>>24) || sum[1] != byte(crc>>16) || sum[2] != byte(crc>>8) || sum[3] != byte(crc) {
		return l, false
	}
	if err := json.Unmarshal(payload, &l); err != nil {
		return l, false
	}
	set := 0
	if l.Header != nil {
		set++
	}
	if l.Event != nil {
		set++
	}
	if l.Checkpoint != nil {
		set++
	}
	return l, set == 1
}

// record is one raw line of a segment file.
type record struct {
	off        int64
	data       []byte // without the newline
	terminated bool   // false for a trailing chunk missing its newline
}

// splitRecords cuts a segment file into its lines. A final unterminated
// chunk — a torn append — is returned with terminated false.
func splitRecords(data []byte) []record {
	var recs []record
	off := int64(0)
	for len(data) > 0 {
		i := indexByte(data, '\n')
		if i < 0 {
			recs = append(recs, record{off: off, data: data, terminated: false})
			break
		}
		recs = append(recs, record{off: off, data: data[:i], terminated: true})
		off += int64(i) + 1
		data = data[i+1:]
	}
	return recs
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// segScan is the validated interpretation of one segment file.
type segScan struct {
	seq         int
	header      journalHeader
	headerOK    bool
	ckpt        *checkpointState // valid head checkpoint, if any
	ckptCorrupt bool             // header promises a checkpoint, record is invalid or missing
	events      []Event          // valid events after the head, in order
	clean       bool             // the events region is fully valid to the end of the file
}

// interpretSegment classifies a segment's records. In repair mode (the
// active segment at open) it additionally decides recovery: a torn tail
// of invalid records yields a truncation offset, while an invalid
// record *followed by valid records* is interior corruption and an
// error — truncating there would discard acknowledged events. The one
// tolerated interior casualty is the header-promised checkpoint record,
// which is redundant (rebuildable from older segments) and therefore
// skipped rather than fatal.
func interpretSegment(recs []record, repair bool) (segScan, int64, error) {
	sc := segScan{clean: true}
	truncateAt := int64(-1)
	if len(recs) == 0 {
		sc.clean = false
		return sc, truncateAt, nil
	}
	l, ok := journalLine{}, false
	if recs[0].terminated {
		l, ok = decodeRecord(recs[0].data)
	}
	if !ok || l.Header == nil {
		sc.headerOK = false
		sc.clean = false
		return sc, truncateAt, nil
	}
	sc.header = *l.Header
	sc.headerOK = true
	sc.seq = sc.header.Segment

	i := 1
	if sc.header.Checkpoint {
		if len(recs) < 2 {
			sc.ckptCorrupt = true // promised but absent (torn and truncated earlier)
		} else {
			l1, ok1 := journalLine{}, false
			if recs[1].terminated {
				l1, ok1 = decodeRecord(recs[1].data)
			}
			switch {
			case ok1 && l1.Checkpoint != nil:
				sc.ckpt = l1.Checkpoint
				i = 2
			case ok1:
				// A valid non-checkpoint record where the checkpoint was
				// promised: the torn checkpoint was truncated at an earlier
				// open and appends continued. Fall back past it.
				sc.ckptCorrupt = true
				i = 1
			default:
				sc.ckptCorrupt = true
				i = 2
				if repair && len(recs) == 2 {
					// The corrupt checkpoint is the torn tail itself.
					truncateAt = recs[1].off
					return sc, truncateAt, nil
				}
			}
		}
	}

	firstBad := -1
	for ; i < len(recs); i++ {
		le, oke := journalLine{}, false
		if recs[i].terminated {
			le, oke = decodeRecord(recs[i].data)
		}
		if !oke || le.Event == nil {
			firstBad = i
			break
		}
		sc.events = append(sc.events, *le.Event)
	}
	if firstBad >= 0 {
		sc.clean = false
		if repair {
			for k := firstBad + 1; k < len(recs); k++ {
				if _, okk := decodeRecord(recs[k].data); okk && recs[k].terminated {
					return sc, truncateAt, fmt.Errorf(
						"rms: journal: corrupt record %d is followed by valid records — refusing to truncate acknowledged events (restore the file or move it aside)", firstBad)
				}
			}
			truncateAt = recs[firstBad].off
		}
	}
	return sc, truncateAt, nil
}

// Journal is an append-only write-ahead log of scheduler events with
// checkpoint-rotation. Open one with OpenJournal, rebuild a fresh
// scheduler with Replay (or audit with ReplayGenesis), then attach it
// with Scheduler.SetJournal. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	fs   vfs.FS
	path string
	f    vfs.File // active segment
	w    *bufio.Writer

	seg     int            // active segment sequence number
	header  *journalHeader // genesis configuration; nil until known
	valid   int64          // validated length of the active segment at open
	records int            // valid records in the active segment at open

	appended        bool
	events          int64 // events since genesis folded into the log
	sinceCheckpoint int
	checkpointEvery int
	keep            int // rotated segments auto-compact retains; < 0 keeps all

	activeScan *segScan // cached open-time scan, consumed by Replay; dropped on append
	err        error    // sticky failure; the journal refuses further appends
}

// OpenJournal opens (or creates) the journal at path on the real
// filesystem. See OpenJournalFS.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(vfs.OS, path)
}

// OpenJournalFS opens (or creates) the journal at path on the given
// filesystem — tests and the disk-fault soak inject a vfs.Faulty here.
// It validates the active segment, truncates a torn tail left by a
// crash, and self-heals the crash windows of a checkpoint rotation
// (a missing or torn new active segment becomes a continuation
// segment). Interior corruption followed by valid records is refused
// rather than truncated.
func OpenJournalFS(fsys vfs.FS, path string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rms: journal: %w", err)
	}
	j := &Journal{
		fs: fsys, path: path, f: f, w: bufio.NewWriter(f),
		checkpointEvery: DefaultSnapshotEvery, keep: -1,
	}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// segPath returns the file name of rotated segment seq.
func (j *Journal) segPath(seq int) string {
	return fmt.Sprintf("%s.%d", j.path, seq)
}

// rotatedSegments lists the rotated segment sequence numbers, sorted
// ascending.
func (j *Journal) rotatedSegments() ([]int, error) {
	dir := filepath.Dir(j.path)
	base := filepath.Base(j.path) + "."
	entries, err := j.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rms: journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, base) {
			continue
		}
		seq, err := strconv.Atoi(name[len(base):])
		if err != nil || seq < 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// readSegment scans one rotated segment file.
func (j *Journal) readSegment(seq int) (segScan, error) {
	f, err := j.fs.OpenFile(j.segPath(seq), os.O_RDONLY, 0)
	if err != nil {
		return segScan{}, fmt.Errorf("rms: journal: segment %d: %w", seq, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return segScan{}, fmt.Errorf("rms: journal: segment %d: %w", seq, err)
	}
	sc, _, err := interpretSegment(splitRecords(data), false)
	if err != nil {
		return segScan{}, err
	}
	if sc.headerOK && sc.header.Segment != seq {
		// The file's name and its header disagree; trust neither.
		sc.headerOK = false
		sc.clean = false
	}
	sc.seq = seq
	return sc, nil
}

// recover validates the active segment, truncates a torn tail, repairs
// rotation crash windows and reconstructs the event accounting.
func (j *Journal) recover() error {
	rot, err := j.rotatedSegments()
	if err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	recs := splitRecords(data)

	// No valid header at the front?
	headerValid := false
	if len(recs) > 0 && recs[0].terminated {
		if l, ok := decodeRecord(recs[0].data); ok && l.Header != nil {
			headerValid = true
		}
	}
	if !headerValid {
		if len(rot) == 0 {
			if len(data) > 0 {
				// Not ours (foreign file, unsupported format, or a header
				// torn by a crash during the very first write) — refuse
				// rather than destroy it by truncating.
				return fmt.Errorf("rms: journal %s: no valid header; not a dynpd journal (delete it to start fresh)", j.path)
			}
			// A fresh, empty journal: the header is written by SetJournal.
			j.seg = 0
			return nil
		}
		// Rotated segments exist, so this journal was mid-rotation when
		// it died: the new active segment is missing or its first write
		// was torn. Any valid record in the debris would mean we are
		// about to discard acknowledged data — refuse then.
		for _, r := range recs {
			if !r.terminated {
				continue
			}
			if _, ok := decodeRecord(r.data); ok {
				return fmt.Errorf("rms: journal %s: active segment has valid records but no valid header — refusing to repair over them", j.path)
			}
		}
		return j.startContinuation(rot)
	}

	sc, truncateAt, err := interpretSegment(recs, true)
	if err != nil {
		return err
	}
	if sc.header.Version != journalVersion {
		return fmt.Errorf("rms: journal %s: format version %d, want %d (move the old journal aside to start fresh)", j.path, sc.header.Version, journalVersion)
	}
	if len(rot) > 0 && sc.header.Segment <= rot[len(rot)-1] {
		return fmt.Errorf("rms: journal %s: active segment %d is not newer than rotated segment %d", j.path, sc.header.Segment, rot[len(rot)-1])
	}
	j.seg = sc.header.Segment
	h := sc.header
	j.header = &h

	end := int64(len(data))
	if truncateAt >= 0 {
		end = truncateAt
		// Re-interpret the repaired prefix so the cached scan matches the
		// file contents exactly.
		if sc2, _, err2 := interpretSegment(splitRecords(data[:end]), false); err2 == nil {
			sc = sc2
		}
	}
	if err := j.f.Truncate(end); err != nil {
		return fmt.Errorf("rms: journal truncate: %w", err)
	}
	if _, err := j.f.Seek(end, io.SeekStart); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	j.valid = end
	sc.seq = j.seg
	j.activeScan = &sc
	j.records = 1 + len(sc.events)
	if sc.ckpt != nil {
		j.records++
	}
	return j.countEvents(&sc, rot)
}

// countEvents reconstructs the events-since-genesis and
// events-since-checkpoint counters from the active scan, walking back
// through rotated segments only when the active segment carries no
// checkpoint of its own. The counts are best-effort on a corrupt
// history: Replay is the authority that refuses.
func (j *Journal) countEvents(sc *segScan, rot []int) error {
	tail := int64(len(sc.events))
	if sc.ckpt != nil {
		j.events = sc.ckpt.Events + tail
		j.sinceCheckpoint = int(tail)
		return nil
	}
	if j.seg == 0 {
		j.events = tail
		j.sinceCheckpoint = int(tail)
		return nil
	}
	acc := tail
	for i := len(rot) - 1; i >= 0; i-- {
		ss, err := j.readSegment(rot[i])
		if err != nil || !ss.headerOK {
			break // best effort; Replay will refuse if it matters
		}
		if ss.ckpt != nil {
			j.events = ss.ckpt.Events + int64(len(ss.events)) + acc
			j.sinceCheckpoint = int(int64(len(ss.events)) + acc)
			return nil
		}
		acc += int64(len(ss.events))
		if ss.seq == 0 {
			j.events = acc
			j.sinceCheckpoint = int(acc)
			return nil
		}
	}
	j.events = acc
	j.sinceCheckpoint = int(acc)
	return nil
}

// startContinuation creates a fresh header-only active segment after a
// crash mid-rotation, copying the genesis configuration from the newest
// readable rotated segment. The segment carries no checkpoint; the
// recovery ladder falls back to the previous one.
func (j *Journal) startContinuation(rot []int) error {
	var h journalHeader
	found := false
	for i := len(rot) - 1; i >= 0 && !found; i-- {
		if ss, err := j.readSegment(rot[i]); err == nil && ss.headerOK {
			h = ss.header
			found = true
		}
	}
	if !found {
		return fmt.Errorf("rms: journal %s: cannot repair after crashed rotation: no rotated segment has a readable header", j.path)
	}
	h.Segment = rot[len(rot)-1] + 1
	h.Checkpoint = false
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("rms: journal truncate: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("rms: journal: %w", err)
	}
	line, err := encodeRecord(&journalLine{Header: &h})
	if err != nil {
		return fmt.Errorf("rms: journal encode: %w", err)
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("rms: journal write: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("rms: journal flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("rms: journal sync: %w", err)
	}
	j.seg = h.Segment
	j.header = &h
	j.valid = int64(len(line))
	j.records = 1
	sc := segScan{seq: j.seg, header: h, headerOK: true, clean: true}
	j.activeScan = &sc
	return j.countEvents(&sc, rot)
}

// Path returns the journal's active segment path.
func (j *Journal) Path() string { return j.path }

// Segment returns the active segment's sequence number.
func (j *Journal) Segment() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seg
}

// Events returns the number of events since genesis the journal holds.
func (j *Journal) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// Err returns the journal's sticky failure, if any. A journal with a
// non-nil Err refuses every further append; the daemon's "ready" check
// reports it.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// SetSnapshotEvery sets the number of events between checkpoints (and
// segment rotations); n < 1 disables them.
func (j *Journal) SetSnapshotEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.checkpointEvery = n
}

// SetKeep bounds the rotated segments retained after each checkpoint:
// once a checkpoint is durable, all but the newest n rotated segments
// are deleted automatically. n < 0 (the default) keeps every segment,
// preserving the ability to replay — and audit — from genesis.
func (j *Journal) SetKeep(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.keep = n
}

// fresh reports whether the journal holds no valid data yet.
func (j *Journal) fresh() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.valid == 0 && !j.appended
}

// writeHeader records the scheduler configuration as the genesis
// segment's first record.
func (j *Journal) writeHeader(h journalHeader) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	h.Segment = j.seg
	if err := j.appendLine(&journalLine{Header: &h}); err != nil {
		return err
	}
	j.header = &h
	return nil
}

// Append records one event and flushes it to the operating system
// before returning, so a subsequent process crash cannot lose it. After
// any write error the journal turns itself off permanently (every
// further Append fails): a journal with a hole must not keep growing.
func (j *Journal) Append(ev Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLine(&journalLine{Event: &ev}); err != nil {
		return err
	}
	j.events++
	j.sinceCheckpoint++
	return nil
}

func (j *Journal) appendLine(l *journalLine) error {
	if j.err != nil {
		return j.err
	}
	b, err := encodeRecord(l)
	if err != nil {
		j.err = fmt.Errorf("rms: journal encode: %w", err)
		return j.err
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = fmt.Errorf("rms: journal write: %w", err)
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("rms: journal flush: %w", err)
		return j.err
	}
	j.appended = true
	j.activeScan = nil // the cached open-time scan no longer matches the file
	return nil
}

// maybeCheckpoint cuts a checkpoint and rotates the segment when enough
// events accumulated since the last one. The scheduler calls it with
// its own lock held, after an event applied. Failures — including fsync
// failures — are sticky: the journal refuses further appends and the
// daemon's readiness check trips.
func (j *Journal) maybeCheckpoint(s *Scheduler) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.checkpointEvery < 1 || j.sinceCheckpoint < j.checkpointEvery {
		return
	}
	cs, err := s.captureCheckpointLocked(j.events)
	if err != nil {
		j.err = fmt.Errorf("rms: journal checkpoint: %w", err)
		return
	}
	j.rotateLocked(&cs)
}

// rotateLocked seals the active segment and opens its successor headed
// by the given checkpoint. Any failure is sticky. Callers hold j.mu.
func (j *Journal) rotateLocked(cs *checkpointState) {
	fail := func(stage string, err error) {
		j.err = fmt.Errorf("rms: journal %s: %w", stage, err)
	}
	// Seal: everything the clients were acknowledged for must be durable
	// before the old segment becomes immutable.
	if err := j.w.Flush(); err != nil {
		fail("flush", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		fail("sync", err)
		return
	}
	if err := j.f.Close(); err != nil {
		fail("close", err)
		return
	}
	if err := j.fs.Rename(j.path, j.segPath(j.seg)); err != nil {
		fail("rotate", err)
		return
	}
	nf, err := j.fs.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		fail("rotate", err)
		return
	}
	j.f = nf
	j.w = bufio.NewWriter(nf)
	j.seg++
	h := *j.header
	h.Segment = j.seg
	h.Checkpoint = true
	hl, err := encodeRecord(&journalLine{Header: &h})
	if err != nil {
		fail("encode", err)
		return
	}
	cl, err := encodeRecord(&journalLine{Checkpoint: cs})
	if err != nil {
		fail("encode", err)
		return
	}
	if _, err := j.w.Write(hl); err != nil {
		fail("write", err)
		return
	}
	if _, err := j.w.Write(cl); err != nil {
		fail("write", err)
		return
	}
	if err := j.w.Flush(); err != nil {
		fail("flush", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		fail("sync", err)
		return
	}
	j.sinceCheckpoint = 0
	if j.keep >= 0 {
		// The checkpoint just became durable; retire history beyond the
		// retention bound. Failure to delete is not fatal to the journal.
		_, _ = j.compactLocked(j.keep, j.seg)
	}
}

// Compact deletes rotated segments older than the last durable
// checkpoint, retaining the newest keep of them as extra fallback rungs
// (keep 0 retires everything the newest checkpoint makes redundant).
// Segments at or above the newest checkpoint are never touched. It
// returns the number of segments deleted. Compacting away segment 0
// gives up replay-from-genesis; ReplayGenesis then refuses.
func (j *Journal) Compact(keep int) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if keep < 0 {
		return 0, nil
	}
	rung := -1
	if j.activeHasCheckpointLocked() {
		rung = j.seg
	} else {
		rot, err := j.rotatedSegments()
		if err != nil {
			return 0, err
		}
		for i := len(rot) - 1; i >= 0; i-- {
			if ss, err := j.readSegment(rot[i]); err == nil && ss.ckpt != nil {
				rung = rot[i]
				break
			}
		}
	}
	if rung < 0 {
		return 0, nil // no durable checkpoint; everything is still needed
	}
	return j.compactLocked(keep, rung)
}

// activeHasCheckpointLocked reports whether the active segment is
// headed by a checkpoint. Callers hold j.mu.
func (j *Journal) activeHasCheckpointLocked() bool {
	if j.activeScan != nil {
		return j.activeScan.ckpt != nil
	}
	// After appends the cached scan is gone, but the segment structure
	// cannot have changed: the header written at rotation promised it.
	return j.header != nil && j.header.Checkpoint && j.seg > 0 && j.sinceCheckpoint < int(j.events)+1
}

// compactLocked deletes rotated segments with sequence numbers below
// rung, keeping the newest keep of them. Callers hold j.mu.
func (j *Journal) compactLocked(keep, rung int) (int, error) {
	rot, err := j.rotatedSegments()
	if err != nil {
		return 0, err
	}
	var eligible []int
	for _, seq := range rot {
		if seq < rung {
			eligible = append(eligible, seq)
		}
	}
	if len(eligible) <= keep {
		return 0, nil
	}
	removed := 0
	for _, seq := range eligible[:len(eligible)-keep] {
		if err := j.fs.Remove(j.segPath(seq)); err != nil {
			return removed, fmt.Errorf("rms: journal compact: %w", err)
		}
		removed++
	}
	return removed, nil
}

// Sync flushes buffered data and fsyncs the active segment. Like write
// errors, a failed fsync is sticky: the journal cannot promise
// durability any more, so it stops accepting events.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("rms: journal flush: %w", err)
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("rms: journal sync: %w", err)
		return j.err
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	syncErr := j.Sync()
	j.mu.Lock()
	defer j.mu.Unlock()
	if closeErr := j.f.Close(); syncErr == nil {
		return closeErr
	}
	return syncErr
}
