package rms

import (
	"testing"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

// BenchmarkOnlineLifecycle measures submit/advance/complete throughput of
// the online scheduler core — the per-request cost a dynpd deployment
// pays, dominated by the full replanning at every event.
func BenchmarkOnlineLifecycle(b *testing.B) {
	for _, tc := range []struct {
		name   string
		driver func() sim.Driver
	}{
		{"FCFS", func() sim.Driver { return &sim.Static{Policy: policy.FCFS} }},
		{"dynP", func() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			r := rng.New(1)
			s, err := New(64, tc.driver(), 0)
			if err != nil {
				b.Fatal(err)
			}
			// Offered load is kept well below one (mean area 8x1000
			// against 64 processors x 1000 s interarrival) so the
			// system stays in steady state: per-iteration cost must
			// not depend on b.N.
			now := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += int64(r.Intn(2000))
				if err := s.Advance(now); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Submit(1+r.Intn(16), int64(60+r.Intn(2000))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
