package rms

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"dynp/internal/policy"
	"dynp/internal/sim"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(8, &sim.Static{Policy: policy.FCFS}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(s, true)
}

func TestHandleSubmitStatusDone(t *testing.T) {
	sv := newServer(t)
	resp := sv.Handle(Request{Op: "submit", Width: 4, Estimate: 100})
	if !resp.OK || resp.Job == nil || resp.Job.State != StateRunning {
		t.Fatalf("submit = %+v", resp)
	}
	id := int64(resp.Job.ID)

	resp = sv.Handle(Request{Op: "status"})
	if !resp.OK || resp.Status == nil || resp.Status.UsedProcs != 4 {
		t.Fatalf("status = %+v", resp)
	}

	resp = sv.Handle(Request{Op: "tick", To: 50})
	if !resp.OK || resp.Now != 50 {
		t.Fatalf("tick = %+v", resp)
	}

	resp = sv.Handle(Request{Op: "done", ID: id})
	if !resp.OK || resp.Job.State != StateCompleted || resp.Job.Finished != 50 {
		t.Fatalf("done = %+v", resp)
	}

	resp = sv.Handle(Request{Op: "finished"})
	if !resp.OK || len(resp.Finished) != 1 {
		t.Fatalf("finished = %+v", resp)
	}
}

func TestHandleErrors(t *testing.T) {
	sv := newServer(t)
	for _, req := range []Request{
		{Op: "submit", Width: 0, Estimate: 10},
		{Op: "done", ID: 99},
		{Op: "cancel", ID: 99},
		{Op: "job", ID: 99},
		{Op: "nonsense"},
	} {
		if resp := sv.Handle(req); resp.OK || resp.Error == "" {
			t.Errorf("request %+v did not fail", req)
		}
	}
}

func TestHandleTickDisabled(t *testing.T) {
	s, err := New(8, &sim.Static{Policy: policy.FCFS}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(s, false)
	if resp := sv.Handle(Request{Op: "tick", To: 10}); resp.OK {
		t.Fatal("tick accepted in real-time mode")
	}
}

func TestServeConnProtocol(t *testing.T) {
	sv := newServer(t)
	client, server := net.Pipe()
	go func() {
		_ = sv.ServeConn(server)
		server.Close()
	}()
	enc := json.NewEncoder(client)
	dec := json.NewDecoder(bufio.NewReader(client))

	roundTrip := func(req Request) Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(Request{Op: "submit", Width: 2, Estimate: 60}); !resp.OK {
		t.Fatalf("submit over pipe: %+v", resp)
	}
	if resp := roundTrip(Request{Op: "status"}); !resp.OK || resp.Status.UsedProcs != 2 {
		t.Fatalf("status over pipe: %+v", resp)
	}
	client.Close()
}

func TestServeConnBadJSON(t *testing.T) {
	sv := newServer(t)
	in := strings.NewReader("this is not json\n")
	var out strings.Builder
	rw := struct {
		*strings.Reader
		*strings.Builder
	}{in, &out}
	if err := sv.ServeConn(rw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bad request") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestListenAndServeTCP(t *testing.T) {
	sv := newServer(t)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte(`{"op":"submit","width":3,"estimate":30}` + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Job == nil || resp.Job.Width != 3 {
		t.Fatalf("response = %+v", resp)
	}
}

func TestCloseDisconnectsClients(t *testing.T) {
	sv := newServer(t)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	// The connection must be closed by the server: reads end.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after Close")
	}
}
