package rms

import (
	"encoding/json"
	"sync"

	"dynp/internal/engine"
	"dynp/internal/policy"
)

// TraceEvent is the wire form of one observed engine transition, as
// served by the daemon's "trace" op: job pointers become IDs and the
// event kind becomes its string name, so the record is self-contained
// and JSON-friendly.
type TraceEvent struct {
	Seq     uint64 `json:"seq"` // monotonically increasing over the scheduler's life
	Kind    string `json:"kind"`
	Time    int64  `json:"time"`
	Job     int64  `json:"job,omitempty"`   // job-scoped kinds only
	Procs   int    `json:"procs,omitempty"` // job width, or processors failed/restored
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Used    int    `json:"used"`
	Policy  string `json:"policy"`
	Case    string `json:"case,omitempty"`    // plan events of a dynP driver: Table-1 decision case
	PlanNs  int64  `json:"plan_ns,omitempty"` // plan events: wall-clock planning latency
}

// EngineMetrics aggregates the engine's event stream over the
// scheduler's lifetime, as served by the daemon's "metrics" op.
type EngineMetrics struct {
	Events      map[string]int64 `json:"events"`          // transitions by kind
	Cases       map[string]int64 `json:"cases,omitempty"` // Table-1 decision cases (dynP drivers)
	Plans       int64            `json:"plans"`           // scheduling events observed
	PlanNsTotal int64            `json:"plan_ns_total"`   // cumulative planning latency
	PlanNsMax   int64            `json:"plan_ns_max"`     // worst single planning latency
	Dropped     uint64           `json:"dropped"`         // trace events evicted from the ring buffer
}

// EventTrace is an engine observer that keeps the most recent
// transitions in a bounded ring buffer and aggregates lifetime metrics.
// Attach one with Scheduler.AddObserver; it is safe for concurrent
// readers (the protocol server) while the scheduler appends.
type EventTrace struct {
	mu      sync.Mutex
	buf     []TraceEvent
	start   int // index of the oldest buffered event
	n       int // buffered events
	seq     uint64
	dropped uint64

	events      map[string]int64
	cases       map[string]int64
	plans       int64
	planNsTotal int64
	planNsMax   int64
}

// NewEventTrace returns a trace retaining the last capacity events
// (minimum 1).
func NewEventTrace(capacity int) *EventTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &EventTrace{
		buf:    make([]TraceEvent, capacity),
		events: make(map[string]int64),
		cases:  make(map[string]int64),
	}
}

// Observe implements engine.Observer.
func (t *EventTrace) Observe(ev engine.Event) {
	te := TraceEvent{
		Kind:    ev.Kind.String(),
		Time:    ev.Time,
		Procs:   ev.Procs,
		Queued:  ev.Queued,
		Running: ev.Running,
		Used:    ev.Used,
		Policy:  policyName(ev.Policy),
		Case:    ev.Case,
		PlanNs:  ev.Latency.Nanoseconds(),
	}
	if ev.Job != nil {
		te.Job = int64(ev.Job.ID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	te.Seq = t.seq
	if t.n == len(t.buf) {
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	} else {
		t.n++
	}
	t.buf[(t.start+t.n-1)%len(t.buf)] = te
	t.events[te.Kind]++
	if ev.Kind == engine.EventPlan {
		t.plans++
		t.planNsTotal += te.PlanNs
		if te.PlanNs > t.planNsMax {
			t.planNsMax = te.PlanNs
		}
		if te.Case != "" {
			t.cases[te.Case]++
		}
	}
}

// Last returns the most recent n buffered events in chronological order
// (all of them when n < 1 or n exceeds the buffer).
func (t *EventTrace) Last(n int) []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 || n > t.n {
		n = t.n
	}
	out := make([]TraceEvent, 0, n)
	for i := t.n - n; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// traceState is the EventTrace's checkpoint serialisation.
type traceState struct {
	Seq         uint64           `json:"seq"`
	Dropped     uint64           `json:"dropped"`
	Buf         []TraceEvent     `json:"buf,omitempty"` // chronological
	Events      map[string]int64 `json:"events,omitempty"`
	Cases       map[string]int64 `json:"cases,omitempty"`
	Plans       int64            `json:"plans"`
	PlanNsTotal int64            `json:"plan_ns_total"`
	PlanNsMax   int64            `json:"plan_ns_max"`
}

// StateKey implements StatefulObserver.
func (t *EventTrace) StateKey() string { return "trace" }

// SaveState implements StatefulObserver: the buffered events and the
// lifetime aggregates ride along in journal checkpoints, so "trace" and
// "metrics" survive a daemon restart.
func (t *EventTrace) SaveState() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := traceState{
		Seq:         t.seq,
		Dropped:     t.dropped,
		Plans:       t.plans,
		PlanNsTotal: t.planNsTotal,
		PlanNsMax:   t.planNsMax,
	}
	for i := 0; i < t.n; i++ {
		st.Buf = append(st.Buf, t.buf[(t.start+i)%len(t.buf)])
	}
	if len(t.events) > 0 {
		st.Events = t.events
	}
	if len(t.cases) > 0 {
		st.Cases = t.cases
	}
	return json.Marshal(&st)
}

// RestoreState implements StatefulObserver. A restored trace with a
// smaller ring than the saved one keeps the newest events and counts
// the rest as dropped.
func (t *EventTrace) RestoreState(data []byte) error {
	var st traceState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq = st.Seq
	t.dropped = st.Dropped
	t.plans = st.Plans
	t.planNsTotal = st.PlanNsTotal
	t.planNsMax = st.PlanNsMax
	t.events = make(map[string]int64, len(st.Events))
	for k, v := range st.Events {
		t.events[k] = v
	}
	t.cases = make(map[string]int64, len(st.Cases))
	for k, v := range st.Cases {
		t.cases[k] = v
	}
	t.start, t.n = 0, 0
	keep := st.Buf
	if len(keep) > len(t.buf) {
		t.dropped += uint64(len(keep) - len(t.buf))
		keep = keep[len(keep)-len(t.buf):]
	}
	t.n = copy(t.buf, keep)
	return nil
}

// Metrics returns the lifetime aggregates.
func (t *EventTrace) Metrics() EngineMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := EngineMetrics{
		Events:      make(map[string]int64, len(t.events)),
		Plans:       t.plans,
		PlanNsTotal: t.planNsTotal,
		PlanNsMax:   t.planNsMax,
		Dropped:     t.dropped,
	}
	for k, v := range t.events {
		m.Events[k] = v
	}
	if len(t.cases) > 0 {
		m.Cases = make(map[string]int64, len(t.cases))
		for k, v := range t.cases {
			m.Cases[k] = v
		}
	}
	return m
}

// policyName is a nil-safe ev.Policy.Name(): a driver that has not
// planned yet may report a nil active policy.
func policyName(p policy.Policy) string {
	if p == nil {
		return ""
	}
	return p.Name()
}
