package rms

import (
	"sort"
	"testing"
	"testing/quick"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

func newFCFS(t *testing.T, capacity int) *Scheduler {
	t.Helper()
	s, err := New(capacity, &sim.Static{Policy: policy.FCFS}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, &sim.Static{Policy: policy.FCFS}, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(4, nil, 0); err == nil {
		t.Error("nil driver accepted")
	}
}

func TestSubmitStartsImmediatelyOnIdleMachine(t *testing.T) {
	s := newFCFS(t, 8)
	info, err := s.Submit(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateRunning || info.Started != 0 {
		t.Fatalf("job = %+v, want running at 0", info)
	}
	st := s.Status()
	if st.UsedProcs != 4 || len(st.Running) != 1 || len(st.Waiting) != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newFCFS(t, 8)
	if _, err := s.Submit(0, 10); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := s.Submit(9, 10); err == nil {
		t.Error("width 9 accepted on 8-processor machine")
	}
	if _, err := s.Submit(1, 0); err == nil {
		t.Error("estimate 0 accepted")
	}
}

func TestQueueingAndPlannedStart(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(4, 100)
	b, err := s.Submit(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != StateRunning {
		t.Fatalf("a = %+v", a)
	}
	if b.State != StateWaiting || b.PlannedStart != 100 {
		t.Fatalf("b = %+v, want waiting with planned start 100", b)
	}
}

func TestEarlyCompletionPullsWorkForward(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(4, 100)
	s.Submit(4, 50)
	if err := s.Advance(30); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete(a.ID); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if len(st.Running) != 1 || st.Running[0].Started != 30 {
		t.Fatalf("b should start at 30, status %+v", st)
	}
}

func TestKillAtEstimate(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(4, 100)
	if err := s.Advance(150); err != nil {
		t.Fatal(err)
	}
	info, err := s.Job(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateKilled || info.Finished != 100 {
		t.Fatalf("job = %+v, want killed at 100", info)
	}
}

func TestKillFreesProcessorsForWaiting(t *testing.T) {
	s := newFCFS(t, 4)
	s.Submit(4, 100)
	b, _ := s.Submit(2, 50)
	if err := s.Advance(120); err != nil {
		t.Fatal(err)
	}
	info, _ := s.Job(b.ID)
	if info.State != StateRunning || info.Started != 100 {
		t.Fatalf("b = %+v, want started at 100 after the kill", info)
	}
}

func TestCompleteValidation(t *testing.T) {
	s := newFCFS(t, 4)
	if _, err := s.Complete(99); err == nil {
		t.Error("unknown job accepted")
	}
	s.Submit(4, 100)
	b, _ := s.Submit(1, 10)
	if _, err := s.Complete(b.ID); err == nil {
		t.Error("completing a waiting job accepted")
	}
}

func TestCancel(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(4, 100)
	b, _ := s.Submit(2, 50)
	if err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Job(b.ID); err == nil {
		t.Error("cancelled job still known")
	}
	if err := s.Cancel(a.ID); err == nil {
		t.Error("cancelling a running job accepted")
	}
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	s := newFCFS(t, 4)
	if err := s.Advance(100); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(50); err == nil {
		t.Fatal("clock moved backwards")
	}
}

func TestBackfillingOnline(t *testing.T) {
	// 8 processors. a: width 6 runs [0, 100). b: width 8 waits for 100.
	// c: width 2, est 50 backfills immediately.
	s := newFCFS(t, 8)
	s.Submit(6, 100)
	b, _ := s.Submit(8, 100)
	c, _ := s.Submit(2, 50)
	ci, _ := s.Job(c.ID)
	if ci.State != StateRunning || ci.Started != 0 {
		t.Fatalf("c = %+v, want backfilled at 0", ci)
	}
	bi, _ := s.Job(b.ID)
	if bi.State != StateWaiting || bi.PlannedStart != 100 {
		t.Fatalf("b = %+v", bi)
	}
}

func TestDynPDriverOnline(t *testing.T) {
	d := sim.NewDynP(core.Preferred{Policy: policy.SJF})
	s, err := New(8, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A long and a short job behind a blocker: SJF should order the
	// short one first once the blocker frees the machine.
	s.Submit(8, 100)            // blocker
	long, _ := s.Submit(8, 500) // submitted first
	short, _ := s.Submit(8, 10) // shorter, submitted second
	li, _ := s.Job(long.ID)
	si, _ := s.Job(short.ID)
	if !(si.PlannedStart < li.PlannedStart) {
		t.Fatalf("SJF ordering violated: short %d, long %d", si.PlannedStart, li.PlannedStart)
	}
	if st := s.Status(); st.ActivePolicy != "SJF" {
		t.Fatalf("active policy = %v", st.ActivePolicy)
	}
}

func TestFinishedLog(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(2, 100)
	s.Advance(10)
	s.Complete(a.ID)
	b, _ := s.Submit(2, 20)
	s.Advance(50) // b killed at 30
	done := s.Finished()
	if len(done) != 2 {
		t.Fatalf("finished = %+v", done)
	}
	if done[0].ID != a.ID || done[0].State != StateCompleted {
		t.Fatalf("first = %+v", done[0])
	}
	if done[1].ID != b.ID || done[1].State != StateKilled || done[1].Finished != 30 {
		t.Fatalf("second = %+v", done[1])
	}
}

func TestStateString(t *testing.T) {
	if StateWaiting.String() != "waiting" || StateKilled.String() != "killed" {
		t.Fatal("state names wrong")
	}
	if JobState(99).String() == "" {
		t.Fatal("out of range state empty")
	}
}

// TestPropertyOnlineMatchesOfflineSim replays random job sets through the
// online scheduler as a proper event loop (submissions, client-reported
// completions, RMS kills, planned starts) and checks that every job starts
// exactly when the offline simulator starts it on the same input.
func TestPropertyOnlineMatchesOfflineSim(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		return onlineMatchesOffline(t, seed)
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineMatchesOfflineRegressionSeeds pins seeds that once failed.
func TestOnlineMatchesOfflineRegressionSeeds(t *testing.T) {
	for _, seed := range []uint64{0xbf1935662dda1936} {
		if !onlineMatchesOffline(t, seed) {
			t.Fatalf("seed %#x diverges", seed)
		}
	}
}

func onlineMatchesOffline(t *testing.T, seed uint64) bool {
	{
		r := rng.New(seed)
		const n, capacity = 40, 8
		set := &job.Set{Name: "p", Machine: capacity}
		var clock int64
		for i := 0; i < n; i++ {
			clock += int64(r.Intn(50))
			est := int64(1 + r.Intn(100))
			set.Jobs = append(set.Jobs, &job.Job{
				ID: job.ID(i + 1), Submit: clock,
				Width: 1 + r.Intn(capacity), Estimate: est,
				Runtime: 1 + r.Int63n(est),
			})
		}
		offline, err := sim.Run(set, &sim.Static{Policy: policy.FCFS})
		if err != nil {
			t.Log(err)
			return false
		}
		offStart := map[job.ID]int64{}
		for _, rec := range offline.Records {
			offStart[rec.Job.ID] = rec.Start
		}

		online, err := New(capacity, &sim.Static{Policy: policy.FCFS}, 0)
		if err != nil {
			t.Log(err)
			return false
		}

		const inf = int64(1) << 60
		subIdx := 0
		idMap := map[job.ID]job.ID{}   // set ID -> online ID
		backMap := map[job.ID]job.ID{} // online ID -> set ID
		comp := map[job.ID]int64{}     // online ID -> client completion time
		started := map[job.ID]bool{}   // online IDs already discovered running

		// discover registers completion events for newly started jobs; a
		// job whose actual run time equals its estimate is left to the
		// RMS kill, which fires at the same instant.
		discover := func() {
			st := online.Status()
			for _, ri := range st.Running {
				if started[ri.ID] {
					continue
				}
				started[ri.ID] = true
				setJob := set.Jobs[backMap[ri.ID]-1]
				if setJob.Runtime < setJob.Estimate {
					comp[ri.ID] = ri.Started + setJob.Runtime
				}
			}
		}

		for round := 0; ; round++ {
			if round > 10*n+1000 {
				t.Logf("seed %d: event loop did not terminate", seed)
				return false
			}
			st := online.Status()
			next := inf
			if subIdx < len(set.Jobs) && set.Jobs[subIdx].Submit < next {
				next = set.Jobs[subIdx].Submit
			}
			for _, tc := range comp {
				if tc < next {
					next = tc
				}
			}
			for _, ri := range st.Running {
				if _, hasComp := comp[ri.ID]; !hasComp {
					if end := ri.Started + ri.Estimate; end < next {
						next = end
					}
				}
			}
			for _, wi := range st.Waiting {
				if wi.PlannedStart < next {
					next = wi.PlannedStart
				}
			}
			if next == inf {
				break
			}
			// Batch every event at this instant and deliver atomically —
			// the offline simulator applies all same-time events before
			// one replanning step, and Deliver mirrors exactly that.
			var doneIDs []job.ID
			for id, tc := range comp {
				if tc == next {
					doneIDs = append(doneIDs, id)
					delete(comp, id)
				}
			}
			sort.Slice(doneIDs, func(a, b int) bool { return doneIDs[a] < doneIDs[b] })
			var subs []Submission
			var setIDs []job.ID
			for subIdx < len(set.Jobs) && set.Jobs[subIdx].Submit == next {
				j := set.Jobs[subIdx]
				subs = append(subs, Submission{Width: j.Width, Estimate: j.Estimate})
				setIDs = append(setIDs, j.ID)
				subIdx++
			}
			infos, err := online.Deliver(next, doneIDs, subs)
			if err != nil {
				t.Log(err)
				return false
			}
			for i, info := range infos {
				idMap[setIDs[i]] = info.ID
				backMap[info.ID] = setIDs[i]
			}
			discover()
		}

		if got := len(online.Finished()); got != n {
			t.Logf("seed %d: %d of %d jobs finished", seed, got, n)
			return false
		}
		for setID, onlineID := range idMap {
			info, err := online.Job(onlineID)
			if err != nil {
				t.Log(err)
				return false
			}
			if info.Started != offStart[setID] {
				t.Logf("seed %d: job %d online start %d, offline %d",
					seed, setID, info.Started, offStart[setID])
				return false
			}
		}
		return true
	}
}

func TestReport(t *testing.T) {
	s := newFCFS(t, 4)
	// Job a: width 2, runs [0, 40) (reported done), waited 0.
	a, _ := s.Submit(2, 100)
	// Job b: width 4, waits for a's estimated end... but a completes at
	// 40, so b starts then and is killed at 40+50.
	b, _ := s.Submit(4, 50)
	s.Advance(40)
	if _, err := s.Complete(a.ID); err != nil {
		t.Fatal(err)
	}
	s.Advance(200)

	rep := s.Report()
	if rep.Jobs != 2 || rep.Killed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// a: run 40, wait 0, resp 40, slowdown 1, area 80.
	// b: run 50, wait 40, resp 90, slowdown 1.8, area 200.
	wantSLDwA := (80.0*1 + 200*1.8) / 280
	if diff := rep.SLDwA - wantSLDwA; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("SLDwA = %v, want %v", rep.SLDwA, wantSLDwA)
	}
	// Area 280 over capacity 4 x span 90.
	wantUtil := 280.0 / (4 * 90)
	if diff := rep.Util - wantUtil; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Util = %v, want %v", rep.Util, wantUtil)
	}
	if rep.MaxWait != 40 || rep.AWT != 20 || rep.ART != 65 {
		t.Fatalf("wait/resp stats wrong: %+v", rep)
	}
	_ = b
}

func TestReportEmpty(t *testing.T) {
	s := newFCFS(t, 4)
	s.Advance(123)
	rep := s.Report()
	if rep.Jobs != 0 || rep.SLDwA != 0 || rep.Now != 123 {
		t.Fatalf("empty report = %+v", rep)
	}
}

func TestDeliverBatchAtomicOrdering(t *testing.T) {
	// Machine 4: a (width 2) runs [0, 100) est 100; d (width 2) runs
	// beside it. At t=50, one batch delivers a's completion together
	// with a new submission; the new job must see the freed processors
	// in the same replanning step.
	s := newFCFS(t, 4)
	a, _ := s.Submit(2, 100)
	s.Submit(2, 200)
	infos, err := s.Deliver(50, []job.ID{a.ID}, []Submission{{Width: 2, Estimate: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("infos = %+v", infos)
	}
	if infos[0].State != StateRunning || infos[0].Started != 50 {
		t.Fatalf("batched submission should start immediately: %+v", infos[0])
	}
	ai, _ := s.Job(a.ID)
	if ai.State != StateCompleted || ai.Finished != 50 {
		t.Fatalf("a = %+v", ai)
	}
}

func TestDeliverValidatesAtomically(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(2, 100)
	// Batch with a valid completion but an invalid submission: nothing
	// may be applied.
	if _, err := s.Deliver(10, []job.ID{a.ID}, []Submission{{Width: 99, Estimate: 10}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	ai, _ := s.Job(a.ID)
	if ai.State != StateRunning {
		t.Fatalf("half-applied batch: a = %+v", ai)
	}
	if s.Now() != 10 {
		// The clock may legitimately advance to the delivery instant.
		t.Logf("now = %d", s.Now())
	}
	// Unknown completion also rejects the batch.
	if _, err := s.Deliver(20, []job.ID{777}, nil); err == nil {
		t.Fatal("unknown completion accepted")
	}
}

func TestDeliverCompletionBeatsKillAtSameInstant(t *testing.T) {
	s := newFCFS(t, 4)
	a, _ := s.Submit(2, 100)
	// The client reports completion exactly at the estimate expiry; the
	// job must count as completed, not killed.
	if _, err := s.Deliver(100, []job.ID{a.ID}, nil); err != nil {
		t.Fatal(err)
	}
	ai, _ := s.Job(a.ID)
	if ai.State != StateCompleted || ai.Finished != 100 {
		t.Fatalf("a = %+v", ai)
	}
}

func TestDeliverRejectsPastTime(t *testing.T) {
	s := newFCFS(t, 4)
	s.Advance(100)
	if _, err := s.Deliver(50, nil, nil); err == nil {
		t.Fatal("delivery in the past accepted")
	}
}
