// Tests for the server's overload protection (connection cap, degraded
// priority lane, hard shedding), the readiness protocol, and the
// snapshot-served Job lookups that keep single-job reads off the
// scheduling lock.
package rms

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"dynp/internal/job"
)

// rawConn is a minimal protocol client that bypasses the Client's retry
// machinery, so tests can observe busy responses directly.
type rawConn struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{conn: conn, r: bufio.NewReader(conn), enc: json.NewEncoder(conn)}
}

func (rc *rawConn) roundTrip(t *testing.T, req Request) Response {
	t.Helper()
	rc.conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := rc.enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	line, err := rc.r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func overloadServer(t *testing.T, maxConns int) (*Server, string) {
	t.Helper()
	s, err := New(16, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(s, true)
	sv.MaxConns = maxConns
	sv.WriteTimeout = 5 * time.Second
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv, addr.String()
}

// TestServerPriorityLaneUnderReadFlood is the acceptance scenario: with
// the connection cap fully occupied by status readers, a newcomer must
// still get its mutating ops (submit, done, deliver) through — only its
// reads are shed.
func TestServerPriorityLaneUnderReadFlood(t *testing.T) {
	_, addr := overloadServer(t, 4)

	// Four readers occupy every full-service slot and keep hammering.
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 4; i++ {
		rc := dialRaw(t, addr)
		if resp := rc.roundTrip(t, Request{Op: "status"}); !resp.OK {
			t.Fatalf("reader %d: %s", i, resp.Error)
		}
		go func() {
			enc := json.NewEncoder(rc.conn)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if enc.Encode(Request{Op: "status"}) != nil {
					return
				}
				if _, err := rc.r.ReadBytes('\n'); err != nil {
					return
				}
			}
		}()
	}

	// The fifth connection lands in the degraded lane.
	late := dialRaw(t, addr)
	if resp := late.roundTrip(t, Request{Op: "status"}); !resp.Busy {
		t.Errorf("degraded read not shed: %+v", resp)
	}
	resp := late.roundTrip(t, Request{Op: "submit", Width: 2, Estimate: 60})
	if !resp.OK || resp.Job == nil {
		t.Fatalf("submit shed on the priority lane: %+v", resp)
	}
	id := resp.Job.ID
	if r := late.roundTrip(t, Request{Op: "deliver", To: 10, Subs: []Submission{{Width: 1, Estimate: 5}}}); !r.OK {
		t.Errorf("deliver shed on the priority lane: %+v", r)
	}
	if r := late.roundTrip(t, Request{Op: "done", ID: int64(id)}); !r.OK {
		t.Errorf("done shed on the priority lane: %+v", r)
	}
	// Health stays served even on the degraded lane.
	if r := late.roundTrip(t, Request{Op: "health"}); !r.OK || r.Health == nil {
		t.Errorf("health shed on the priority lane: %+v", r)
	}
}

// TestServerHardConnectionCap: beyond twice the cap, connections get one
// busy response and the door.
func TestServerHardConnectionCap(t *testing.T) {
	_, addr := overloadServer(t, 1)

	full := dialRaw(t, addr)
	if resp := full.roundTrip(t, Request{Op: "status"}); !resp.OK {
		t.Fatal(resp.Error)
	}
	degraded := dialRaw(t, addr)
	if resp := degraded.roundTrip(t, Request{Op: "submit", Width: 1, Estimate: 5}); !resp.OK {
		t.Fatal(resp.Error)
	}

	over := dialRaw(t, addr)
	over.conn.SetDeadline(time.Now().Add(10 * time.Second))
	line, err := over.r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("no busy response before close: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Busy || resp.OK {
		t.Errorf("over-cap connection got %+v, want busy", resp)
	}
	if _, err := over.r.ReadBytes('\n'); err == nil {
		t.Error("over-cap connection stayed open")
	}
}

// TestClientRetriesBusyReads: the typed client treats busy shedding as
// retryable for idempotent calls and surfaces a ServerError carrying
// the busy flag when retries run out.
func TestClientRetriesBusyReads(t *testing.T) {
	_, addr := overloadServer(t, 1)
	hog := dialRaw(t, addr)
	if resp := hog.roundTrip(t, Request{Op: "status"}); !resp.OK {
		t.Fatal(resp.Error)
	}

	c, err := DialOptions(addr, ClientOptions{Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Status()
	if err == nil {
		t.Fatal("degraded status read succeeded without a free slot")
	}
	var serr *ServerError
	if !errors.As(err, &serr) || !serr.Busy {
		t.Errorf("error %v is not a busy ServerError", err)
	}
	// Mutations on the same degraded connection still work.
	if _, err := c.Submit(1, 10); err != nil {
		t.Errorf("submit on degraded connection: %v", err)
	}

	// Once the flooders leave, a fresh reader succeeds again.
	c.Close()
	hog.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := DialOptions(addr, ClientOptions{Retries: 2, Backoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c2.Status()
		c2.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status still shed after the flood ended: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerReadiness: before SetReady(true) only health and ready are
// served; the ready verdict distinguishes replay, journal failure and
// queue pressure, and a deep queue makes the server not-ready without
// refusing work.
func TestServerReadiness(t *testing.T) {
	s, err := New(4, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(s, true)
	sv.ReadyMaxQueue = 2
	sv.SetReady(false)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Submit(1, 10); err == nil || !strings.Contains(err.Error(), "starting") {
		t.Errorf("submit while starting: %v", err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready || !strings.Contains(h.Reason, "replay") {
		t.Errorf("health while starting: %+v", h)
	}
	if ok, reason, err := c.Ready(); err != nil || ok || !strings.Contains(reason, "replay") {
		t.Errorf("ready while starting: ok=%v reason=%q err=%v", ok, reason, err)
	}

	sv.SetReady(true)
	if ok, reason, err := c.Ready(); err != nil || !ok {
		t.Fatalf("ready after SetReady(true): ok=%v reason=%q err=%v", ok, reason, err)
	}

	// Build queue pressure past the watermark: capacity 4, so wide jobs
	// pile up waiting.
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(4, 1000); err != nil {
			t.Fatal(err)
		}
	}
	ok, reason, err := c.Ready()
	if err != nil || ok || !strings.Contains(reason, "queue depth") {
		t.Errorf("ready under queue pressure: ok=%v reason=%q err=%v", ok, reason, err)
	}
	// Not-ready is advisory: work is still accepted.
	if _, err := c.Submit(1, 10); err != nil {
		t.Errorf("submit under queue pressure: %v", err)
	}
}

// TestJobServedFromSnapshot: Job lookups for published jobs — live or
// finished — must complete while the scheduling mutex is held by a
// long-running mutation.
func TestJobServedFromSnapshot(t *testing.T) {
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	running, err := s.Submit(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	waiting, err := s.Submit(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	doneJob, err := s.Submit(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete(doneJob.ID); err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	got := make(chan error, 1)
	go func() {
		for _, id := range []job.ID{running.ID, waiting.ID, doneJob.ID} {
			if _, err := s.Job(id); err != nil {
				got <- err
				return
			}
		}
		got <- nil
	}()
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Job blocked on the scheduling mutex for a published job")
	}
}
