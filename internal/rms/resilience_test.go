package rms

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// fastOptions keeps retry/backoff delays test-sized.
func fastOptions() ClientOptions {
	return ClientOptions{
		Timeout:    2 * time.Second,
		Retries:    5,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	}
}

func TestClientReconnectsIdempotentCall(t *testing.T) {
	_, addr := startServer(t)
	c, err := DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(2, 100); err != nil {
		t.Fatal(err)
	}
	// Kill the connection out from under the client; the idempotent call
	// must reconnect and retry by itself.
	c.conn.Close()
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status after severed connection: %v", err)
	}
	if len(st.Running) != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestClientMutatingCallNotRetriedButReconnectsNextCall(t *testing.T) {
	_, addr := startServer(t)
	c, err := DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Poison the connection so the write (or the read of the response)
	// fails. The mutating call must NOT be silently retried — its outcome
	// is unknown — so it surfaces an error...
	c.conn.Close()
	if _, err := c.Submit(2, 100); err == nil {
		t.Fatal("submit on a severed connection reported success")
	}
	// ...and the next call starts from a fresh connection.
	if _, err := c.Submit(2, 100); err != nil {
		t.Fatalf("submit after reconnect: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Running) != 1 {
		t.Fatalf("status = %+v, want exactly the second submit's job", st)
	}
}

func TestClientRetriesThroughFlakyDialer(t *testing.T) {
	_, addr := startServer(t)
	fails := 2
	dials := 0
	opts := fastOptions()
	opts.Dialer = func() (net.Conn, error) {
		dials++
		if fails > 0 {
			fails--
			return nil, fmt.Errorf("flaky: dial refused")
		}
		return net.Dial("tcp", addr)
	}
	// The initial dial is eager and surfaces failures immediately.
	if _, err := DialOptions("", opts); err == nil {
		t.Fatal("initial dial is eager and must surface the first failure")
	}
	if _, err := DialOptions("", opts); err == nil {
		t.Fatal("second eager dial should also fail")
	}
	c, err := DialOptions("", opts)
	if err != nil {
		t.Fatalf("third dial should succeed: %v", err)
	}
	defer c.Close()
	// Sever and make the dialer flaky again: the idempotent retry loop
	// must work through the failed reconnects.
	fails = 2
	c.conn.Close()
	if _, err := c.Status(); err != nil {
		t.Fatalf("status through flaky reconnects: %v", err)
	}
	if dials < 6 {
		t.Fatalf("dials = %d, expected the retry loop to keep dialing", dials)
	}
}

// malformedServer accepts one connection and answers every request line
// with a fixed raw response.
func malformedServer(t *testing.T, raw string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					fmt.Fprintf(conn, "%s\n", raw)
				}
			}()
		}
	}()
	return l.Addr().String()
}

func TestClientSurvivesMalformedResponses(t *testing.T) {
	// {"ok":true} with no payload used to nil-deref in Done and Job.
	addr := malformedServer(t, `{"ok":true}`)
	opts := fastOptions()
	opts.Retries = 0
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checks := []struct {
		name string
		call func() error
	}{
		{"submit", func() error { _, err := c.Submit(1, 10); return err }},
		{"done", func() error { _, err := c.Done(1); return err }},
		{"job", func() error { _, err := c.Job(1); return err }},
		{"status", func() error { _, err := c.Status(); return err }},
		{"report", func() error { _, err := c.Report(); return err }},
		{"fail", func() error { _, err := c.Fail(1); return err }},
		{"restore", func() error { _, err := c.Restore(1); return err }},
	}
	for _, ck := range checks {
		if err := ck.call(); err == nil {
			t.Errorf("%s: accepted a payload-free response", ck.name)
		} else if !strings.Contains(err.Error(), "empty response") {
			t.Errorf("%s: error %q does not name the empty response", ck.name, err)
		}
	}
	// Garbage that is not JSON at all errors too (decode path).
	addr = malformedServer(t, `not json`)
	c2, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Status(); err == nil {
		t.Error("non-JSON response accepted")
	}
}

func TestClientPerCallTimeout(t *testing.T) {
	// A server that accepts but never replies: the per-call deadline must
	// bound each attempt instead of hanging forever.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, conn) }() // read, never reply
		}
	}()
	opts := fastOptions()
	opts.Timeout = 30 * time.Millisecond
	opts.Retries = 1
	c, err := DialOptions(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Status(); err == nil {
		t.Fatal("status against a mute server succeeded")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("timeout did not bound the call: took %v", e)
	}
	// Non-idempotent: exactly one attempt, also bounded.
	start = time.Now()
	if _, err := c.Tick(10); err == nil {
		t.Fatal("tick against a mute server succeeded")
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("single-attempt timeout took %v", e)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	// Only the options and the jitter stream matter for backoffDelay;
	// build the clients by hand.
	opts := ClientOptions{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}.withDefaults()
	a := &Client{opts: opts, jitter: newClientJitter(7)}
	b := &Client{opts: opts, jitter: newClientJitter(7)}
	for i := 0; i < 8; i++ {
		da, db := a.backoffDelay(i), b.backoffDelay(i)
		if da != db {
			t.Fatalf("attempt %d: %v vs %v — jitter not seeded", i, da, db)
		}
		base := 10 * time.Millisecond << uint(i)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if da < base/2 || da > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, da, base/2, base)
		}
	}
	// Different seeds diverge (eventually).
	cOther := &Client{opts: a.opts, jitter: newClientJitter(8)}
	same := true
	for i := 0; i < 8; i++ {
		if a.backoffDelay(i) != cOther.backoffDelay(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestClientFailRestore(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Fail(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedProcs != 3 {
		t.Fatalf("status after fail = %+v", st)
	}
	if _, err := c.Fail(99); err == nil {
		t.Error("failing 99 of 8 processors accepted")
	}
	st, err = c.Restore(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedProcs != 0 {
		t.Fatalf("status after restore = %+v", st)
	}
	if _, err := c.Restore(1); err == nil {
		t.Error("restore with nothing failed accepted")
	}
}

func TestResponseNowAlwaysMarshals(t *testing.T) {
	// "now":0 is a real clock reading; omitempty would hide it and make
	// clients misparse t=0 as "no clock".
	b, err := json.Marshal(Response{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"now":0`)) {
		t.Fatalf("marshaled response %s lacks \"now\":0", b)
	}
}

func TestServeConnOversizedLineGetsErrorResponse(t *testing.T) {
	sched := newFCFS(t, 8)
	sv := NewServer(sched, true)
	big := strings.Repeat("x", 1<<17) // twice the 64 KiB cap, one line
	var out bytes.Buffer
	rw := struct {
		io.Reader
		io.Writer
	}{strings.NewReader(big), &out}
	err := sv.ServeConn(rw)
	if err == nil {
		t.Fatal("oversized line did not error")
	}
	var resp Response
	if jerr := json.Unmarshal(out.Bytes(), &resp); jerr != nil {
		t.Fatalf("no parseable error response before close: %v (wrote %q)", jerr, out.String())
	}
	if resp.OK || !strings.Contains(resp.Error, "64 KiB") {
		t.Fatalf("response = %+v, want explicit line-limit error", resp)
	}
}

func TestHandleFailRestore(t *testing.T) {
	sched := newFCFS(t, 8)
	sv := NewServer(sched, true)
	resp := sv.Handle(Request{Op: "fail", Procs: 2})
	if !resp.OK || resp.Status == nil || resp.Status.FailedProcs != 2 {
		t.Fatalf("fail response = %+v", resp)
	}
	if resp = sv.Handle(Request{Op: "fail", Procs: 100}); resp.OK {
		t.Fatalf("fail 100 accepted: %+v", resp)
	}
	resp = sv.Handle(Request{Op: "restore", Procs: 2})
	if !resp.OK || resp.Status == nil || resp.Status.FailedProcs != 0 {
		t.Fatalf("restore response = %+v", resp)
	}
	if resp = sv.Handle(Request{Op: "restore", Procs: 1}); resp.OK {
		t.Fatalf("restore with nothing failed accepted: %+v", resp)
	}
}

func TestServerIdleTimeoutDropsConnection(t *testing.T) {
	sched := newFCFS(t, 8)
	sv := NewServer(sched, true)
	sv.IdleTimeout = 50 * time.Millisecond
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection was not dropped")
	}
}

func TestServerDrainFinishesInFlightRequest(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, `{"op":"status"}`+"\n")
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no response before drain: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil || !resp.OK {
		t.Fatalf("bad response %q (%v)", sc.Text(), err)
	}
}
