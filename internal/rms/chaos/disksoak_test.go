package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynp/internal/job"
	"dynp/internal/rms"
)

// TestDiskFaultRecoverySoak exercises the full crash-recovery promise
// against a real dynpd process: cycles of load through the TCP protocol
// with seeded disk faults (failed and torn writes, failed syncs) eating
// at the journal underneath, each ended by kill -9 mid-history and a
// restart on the same journal. After every restart the restored state
// must be byte-identical to the pre-kill capture (modulo wall-clock
// planning times), and at the end no acknowledged job may be lost and
// no job may finish twice. The fault schedule is seeded, so a failure
// reproduces. Bit flips are deliberately excluded: a flipped byte that
// the write syscall accepted is silent interior corruption, which the
// journal detects and refuses on restart rather than recovers from.
func TestDiskFaultRecoverySoak(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	dir := t.TempDir()
	bin := buildDynpd(t, dir)

	const cycles = 4
	accepted := make(map[job.ID]rms.JobInfo) // every acked submission, all cycles
	now := int64(0)

	// First start is fault-free so the genesis header lands durably; every
	// later restart runs with injected faults (replay reads are clean, so
	// recovery itself is deterministic).
	d := startDynpd(t, bin, dir, 0)
	for cycle := 0; cycle < cycles; cycle++ {
		c := dialReady(t, d)
		now = loadBurst(t, c, cycle, now, accepted)

		// Quiesce: no mutations in flight, so everything acknowledged is
		// journaled. Capture, kill -9, restart, and the restored state
		// must match byte for byte.
		pre := capture(t, c)
		c.Close()
		d.kill(t)
		d = startDynpd(t, bin, dir, 1000+cycle*101)
		c2 := dialReady(t, d)
		post := capture(t, c2)
		if pre != post {
			t.Errorf("cycle %d: state diverged across kill -9\npre:  %s\npost: %s", cycle, pre, post)
		}
		c2.Close()
	}

	// Final phase: restart without faults so the drain cannot trip the
	// sticky journal, run the clock until the machine empties, and audit
	// the books.
	d.kill(t)
	d = startDynpd(t, bin, dir, 0)
	defer d.kill(t)
	c := dialReady(t, d)
	defer c.Close()
	for i := 0; i < 1000; i++ {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Waiting) == 0 && len(st.Running) == 0 {
			break
		}
		now += 50
		if _, err := c.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Waiting) != 0 || len(st.Running) != 0 {
		t.Fatalf("machine did not drain: %d waiting, %d running", len(st.Waiting), len(st.Running))
	}

	fin, err := c.Finished()
	if err != nil {
		t.Fatal(err)
	}
	finCount := make(map[job.ID]int)
	for _, j := range fin {
		finCount[j.ID]++
		if j.State != rms.StateCompleted && j.State != rms.StateKilled && j.State != rms.StateFailed {
			t.Errorf("finished job %d in state %s", j.ID, j.State)
		}
	}
	for id, n := range finCount {
		if n > 1 {
			t.Errorf("job %d finished %d times across restarts", id, n)
		}
	}
	lost := 0
	for id := range accepted {
		if finCount[id] == 0 {
			lost++
			t.Errorf("job %d acknowledged but lost across kill -9", id)
		}
	}
	if len(accepted) == 0 {
		t.Fatal("no submissions survived the disk faults; rates too high for a meaningful soak")
	}
	t.Logf("disk soak: %d acknowledged submissions, %d finished jobs, %d lost, t=%d",
		len(accepted), len(finCount), lost, now)
}

// buildDynpd compiles the daemon once into the soak's temp dir.
func buildDynpd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "dynpd")
	cmd := exec.Command("go", "build", "-o", bin, "dynp/cmd/dynpd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dynpd: %v\n%s", err, out)
	}
	return bin
}

type dynpdProc struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	exited chan error
	addr   string
}

// startDynpd launches the daemon on the shared journal and waits for it
// to bind. faultSeed 0 runs clean; otherwise the journal sits on the
// fault-injecting filesystem. A daemon that dies during startup (an
// injected fault can fail the open-time sync) is retried on a shifted
// seed — the journal on disk stays authoritative either way.
func startDynpd(t *testing.T, bin, dir string, faultSeed int) *dynpdProc {
	t.Helper()
	for attempt := 0; attempt < 5; attempt++ {
		addrFile := filepath.Join(dir, "addr")
		os.Remove(addrFile)
		args := []string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-journal", filepath.Join(dir, "journal"),
			"-journal-checkpoint", "16",
			"-procs", "16",
			"-max-conns", "8",
			"-write-timeout", "5s",
			"-trace", "128",
		}
		if faultSeed > 0 {
			args = append(args, "-disk-fault", fmt.Sprintf(
				"seed=%d,writefail=0.01,short=0.01,bitflip=0,syncfail=0.005,rename=0", faultSeed+attempt))
		}
		d := &dynpdProc{cmd: exec.Command(bin, args...), stderr: &bytes.Buffer{}, exited: make(chan error, 1)}
		d.cmd.Stderr = d.stderr
		if err := d.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { d.exited <- d.cmd.Wait() }()

		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && bytes.HasSuffix(b, []byte("\n")) {
				d.addr = strings.TrimSpace(string(b))
				return d
			}
			select {
			case <-d.exited:
				goto retry
			case <-time.After(5 * time.Millisecond):
			}
		}
		t.Fatalf("dynpd did not bind within 10s\nstderr:\n%s", d.stderr)
	retry:
		t.Logf("dynpd startup attempt %d died (injected fault?): %s", attempt, d.stderr)
	}
	t.Fatal("dynpd failed to start after 5 attempts")
	return nil
}

func (d *dynpdProc) kill(t *testing.T) {
	t.Helper()
	if d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGKILL)
	select {
	case <-d.exited:
	case <-time.After(10 * time.Second):
		t.Fatal("dynpd did not exit after SIGKILL")
	}
}

// dialReady connects and blocks until the daemon reports ready (replay
// complete), so captures never race recovery.
func dialReady(t *testing.T, d *dynpdProc) *rms.Client {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := rms.DialOptions(d.addr, rms.ClientOptions{
			Timeout: 2 * time.Second,
			Retries: 3,
			Backoff: time.Millisecond,
		})
		if err == nil {
			if ok, _, rerr := c.Ready(); rerr == nil && ok {
				return c
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("dynpd not ready within 10s (last err %v)\nstderr:\n%s", err, d.stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// loadBurst pushes a deterministic mix of submissions, clock moves and
// completions through the protocol. Once an injected fault turns the
// journal sticky, mutations fail — those jobs were never acknowledged
// and are not counted. Everything acknowledged is in the journal.
func loadBurst(t *testing.T, c *rms.Client, cycle int, now int64, accepted map[job.ID]rms.JobInfo) int64 {
	t.Helper()
	for i := 0; i < 20; i++ {
		width := 1 + (cycle*5+i)%6
		est := int64(20 + (i*13)%80)
		if info, err := c.Submit(width, est); err == nil {
			accepted[info.ID] = info
		}
		if i%3 == 2 {
			now += 7
			c.Tick(now) // fails once the journal is sticky; the clock just stays put
		}
		if i%5 == 4 {
			if st, err := c.Status(); err == nil && len(st.Running) > 0 {
				c.Done(st.Running[0].ID)
			}
		}
	}
	return now
}

// capture fingerprints everything the daemon can tell a client — status,
// report, finished jobs and the engine trace — with the one wall-clock
// field (per-event planning nanoseconds) zeroed.
func capture(t *testing.T, c *rms.Client) string {
	t.Helper()
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Finished()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		tr[i].PlanNs = 0
	}
	b, err := json.Marshal(struct {
		Status   rms.Status
		Report   rms.Report
		Finished []rms.JobInfo
		Trace    []rms.TraceEvent
	}{st, rep, fin, tr})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
