// Package chaos provides deterministic fault injection for the online
// RMS: a network dialer whose connections fail, stall and die on a
// schedule derived from a seed, and a reproducible capacity-failure
// schedule to drive Scheduler.Fail/Restore. The soak test in this
// package (see soak_test.go) runs clients through both at once and
// asserts that no job is lost or double-started.
//
// Determinism scope: the fault schedule of the k-th connection handed
// out by a Dialer depends only on (seed, k), and a capacity schedule
// depends only on its seed — so a failing run's faults reproduce
// exactly. Goroutine interleaving still varies across runs; the
// harness asserts invariants, not byte-identical transcripts.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dynp/internal/rng"
)

// Config bounds the injected connection faults. Probabilities are per
// decision point: DialFail per Dial call, Sever and Delay per Read and
// per Write.
type Config struct {
	DialFail float64       // probability a Dial attempt is refused
	Sever    float64       // probability an I/O op cuts the connection
	Delay    float64       // probability an I/O op stalls first
	MaxDelay time.Duration // upper bound for an injected stall
}

// Dialer hands out connections to one address that misbehave
// deterministically. It plugs into rms.ClientOptions.Dialer. Safe for
// concurrent use.
type Dialer struct {
	addr string
	cfg  Config
	base *rng.Stream

	mu    sync.Mutex
	conns uint64 // connections handed out so far
}

// NewDialer returns a fault-injecting dialer for addr. All randomness
// derives from seed.
func NewDialer(addr string, seed uint64, cfg Config) *Dialer {
	return &Dialer{addr: addr, cfg: cfg, base: rng.New(seed)}
}

// Dial opens the next connection. Its fault schedule depends only on
// the dialer's seed and the connection's sequence number.
func (d *Dialer) Dial() (net.Conn, error) {
	d.mu.Lock()
	k := d.conns
	d.conns++
	d.mu.Unlock()
	r := d.base.Derive(0xc0a05, k)
	if r.Float64() < d.cfg.DialFail {
		return nil, fmt.Errorf("chaos: dial attempt %d refused", k)
	}
	c, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	return &conn{Conn: c, r: r, cfg: d.cfg}, nil
}

// Conns returns how many connections the dialer has handed out (counting
// refused dial attempts).
func (d *Dialer) Conns() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conns
}

// conn wraps a TCP connection with fault injection on every Read and
// Write. Once severed, the underlying connection is closed and every
// further op fails.
type conn struct {
	net.Conn
	cfg Config

	mu      sync.Mutex
	r       *rng.Stream
	severed bool
}

// fault runs one decision point: maybe stall, maybe sever.
func (c *conn) fault() error {
	c.mu.Lock()
	if c.severed {
		c.mu.Unlock()
		return fmt.Errorf("chaos: connection severed")
	}
	var stall time.Duration
	if c.cfg.MaxDelay > 0 && c.r.Float64() < c.cfg.Delay {
		stall = time.Duration(1 + c.r.Int63n(int64(c.cfg.MaxDelay)))
	}
	sever := c.r.Float64() < c.cfg.Sever
	if sever {
		c.severed = true
	}
	c.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if sever {
		c.Conn.Close()
		return fmt.Errorf("chaos: connection severed")
	}
	return nil
}

func (c *conn) Read(p []byte) (int, error) {
	if err := c.fault(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if err := c.fault(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// CapacityEvent is one step of a capacity-failure schedule.
type CapacityEvent struct {
	Fail  bool // true: fail Procs processors; false: restore them
	Procs int
}

// CapacitySchedule derives a deterministic sequence of fail/restore
// events that never takes more than maxDown processors down at once and
// ends with every processor restored. The same (seed, steps, maxDown)
// always yields the same schedule.
func CapacitySchedule(seed uint64, steps, maxDown int) []CapacityEvent {
	if maxDown < 1 {
		return nil
	}
	r := rng.New(seed).Derive(0xca9ac17)
	var out []CapacityEvent
	down := 0
	for i := 0; i < steps; i++ {
		restore := down == maxDown || (down > 0 && r.Float64() < 0.5)
		if restore {
			n := 1 + r.Intn(down)
			out = append(out, CapacityEvent{Fail: false, Procs: n})
			down -= n
		} else {
			n := 1 + r.Intn(maxDown-down)
			out = append(out, CapacityEvent{Fail: true, Procs: n})
			down += n
		}
	}
	if down > 0 {
		out = append(out, CapacityEvent{Fail: false, Procs: down})
	}
	return out
}
