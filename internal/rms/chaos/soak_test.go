package chaos

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rms"
	"dynp/internal/sim"
)

// TestChaosSoak runs concurrent clients against a live dynP server
// through a fault-injecting network while processors fail and recover
// underneath the running jobs, then asserts the system's core promises:
// no accepted job is lost, no job finishes (hence starts) twice, the
// machine is never oversubscribed, and nothing panics. The fault
// schedules are seeded, so a failure reproduces. CI runs this with the
// race detector (`make soak`).
func TestChaosSoak(t *testing.T) {
	const capacity = 16
	sched, err := rms.New(capacity, sim.NewDynP(core.Preferred{Policy: policy.SJF}), 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := rms.NewServer(sched, true)
	sv.IdleTimeout = 5 * time.Second
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	dialer := NewDialer(addr.String(), 0xC4A05, Config{
		DialFail: 0.15,
		Sever:    0.04,
		Delay:    0.25,
		MaxDelay: 2 * time.Millisecond,
	})

	const workers = 4
	const perWorker = 25
	accepted := make(chan rms.JobInfo, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c *rms.Client
			for attempt := 0; attempt < 100; attempt++ {
				cl, err := rms.DialOptions("", rms.ClientOptions{
					Dialer:     dialer.Dial,
					Timeout:    2 * time.Second,
					Retries:    10,
					Backoff:    time.Millisecond,
					MaxBackoff: 4 * time.Millisecond,
					Seed:       uint64(w),
				})
				if err == nil {
					c = cl
					break
				}
			}
			if c == nil {
				t.Error("worker could not connect through chaos dialer")
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				width := 1 + (w*7+i)%8
				est := int64(5 + (i*13)%40)
				info, err := c.Submit(width, est)
				if err != nil {
					// Submits are not auto-retried (not idempotent); the
					// fate of this one is unknown and checked at the end
					// against the server's books. The client reconnects
					// on the next call by itself.
					continue
				}
				accepted <- info
				if i%5 == 0 {
					// Idempotent path: survives faults via retry.
					if _, err := c.Status(); err != nil {
						t.Errorf("status failed through retries: %v", err)
					}
				}
			}
		}(w)
	}

	// Drive the clock and the capacity-failure schedule while the
	// workers hammer the server.
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()
	events := CapacitySchedule(0xFA11, 40, capacity-4)
	ei := 0
	now := int64(0)
	for running := true; running; {
		select {
		case <-workersDone:
			running = false
		default:
		}
		now += 3
		if err := sched.Advance(now); err != nil {
			t.Fatal(err)
		}
		if ei < len(events) {
			ev := events[ei]
			ei++
			if ev.Fail {
				err = sched.Fail(ev.Procs)
			} else {
				err = sched.Restore(ev.Procs)
			}
			if err != nil {
				t.Fatalf("capacity event %d (%+v): %v", ei-1, ev, err)
			}
		}
		if err := sched.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	for ; ei < len(events); ei++ {
		ev := events[ei]
		if ev.Fail {
			err = sched.Fail(ev.Procs)
		} else {
			err = sched.Restore(ev.Procs)
		}
		if err != nil {
			t.Fatalf("capacity event %d (%+v): %v", ei, ev, err)
		}
	}

	// Every processor is back; run the clock until the machine drains.
	for i := 0; i < 100000; i++ {
		st := sched.Status()
		if len(st.Waiting) == 0 && len(st.Running) == 0 {
			break
		}
		now += 10
		if err := sched.Advance(now); err != nil {
			t.Fatal(err)
		}
	}
	st := sched.Status()
	if len(st.Waiting) != 0 || len(st.Running) != 0 {
		t.Fatalf("machine did not drain: %d waiting, %d running", len(st.Waiting), len(st.Running))
	}
	if st.FailedProcs != 0 {
		t.Fatalf("%d processors still failed after full restore", st.FailedProcs)
	}
	if err := sched.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// No job finishes twice (a double start would), and no accepted job
	// is lost.
	finCount := make(map[job.ID]int)
	for _, j := range sched.Finished() {
		finCount[j.ID]++
		if j.State != rms.StateCompleted && j.State != rms.StateKilled && j.State != rms.StateFailed {
			t.Errorf("finished job %d in state %s", j.ID, j.State)
		}
	}
	for id, n := range finCount {
		if n > 1 {
			t.Errorf("job %d finished %d times", id, n)
		}
	}
	close(accepted)
	got := 0
	for info := range accepted {
		got++
		if finCount[info.ID] == 0 {
			t.Errorf("job %d accepted but lost", info.ID)
		}
	}
	if got == 0 {
		t.Fatal("no submissions survived the chaos; fault rates too high for a meaningful soak")
	}
	t.Logf("soak: %d accepted submissions, %d finished jobs, %d connections, t=%d",
		got, len(finCount), dialer.Conns(), sched.Now())
}

func TestCapacityScheduleDeterministicAndBounded(t *testing.T) {
	a := CapacitySchedule(7, 50, 5)
	b := CapacitySchedule(7, 50, 5)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a), len(b))
	}
	down := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Fail {
			down += a[i].Procs
		} else {
			down -= a[i].Procs
		}
		if down < 0 || down > 5 {
			t.Fatalf("schedule leaves %d processors down at step %d", down, i)
		}
	}
	if down != 0 {
		t.Fatalf("schedule ends with %d processors down", down)
	}
	if CapacitySchedule(7, 10, 0) != nil {
		t.Fatal("maxDown 0 should yield no events")
	}
}

func TestDialerDeterministicPerConnection(t *testing.T) {
	// Two dialers with the same seed must make identical dial-level
	// decisions for the same connection index.
	a := NewDialer("127.0.0.1:1", 42, Config{DialFail: 0.5})
	b := NewDialer("127.0.0.1:1", 42, Config{DialFail: 0.5})
	refused := 0
	for i := 0; i < 32; i++ {
		_, errA := a.Dial()
		_, errB := b.Dial()
		// Port 1 refuses the TCP dial, so both always error; what must
		// agree is whether chaos refused before dialing at all.
		chaosA := errA != nil && strings.HasPrefix(errA.Error(), "chaos:")
		chaosB := errB != nil && strings.HasPrefix(errB.Error(), "chaos:")
		if chaosA != chaosB {
			t.Fatalf("divergent dial outcome at connection %d: %v vs %v", i, errA, errB)
		}
		if chaosA {
			refused++
		}
	}
	if refused == 0 || refused == 32 {
		t.Fatalf("chaos refused %d of 32 dials at p=0.5; rng not wired up", refused)
	}
	if a.Conns() != 32 || b.Conns() != 32 {
		t.Fatalf("conns = %d, %d", a.Conns(), b.Conns())
	}
}
