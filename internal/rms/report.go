package rms

// Report is the online scheduler's self-assessment over its finished
// jobs — the same metrics the paper evaluates offline (Section 4.1),
// computed from what the RMS observed.
type Report struct {
	Now        int64
	Jobs       int     // finished jobs (completed + killed + failed)
	Killed     int     // jobs terminated at their estimate
	Failed     int     // jobs terminated by a capacity failure
	SLDwA      float64 // slowdown weighted by actual area
	ART        float64 // average response time, seconds
	AWT        float64 // average waiting time, seconds
	MaxWait    int64
	Util       float64 // used area / (capacity x observed span)
	FirstSub   int64
	LastFinish int64
}

// Report computes the metrics over all finished jobs. With no finished
// jobs, the zero Report (with the current time) is returned.
func (s *Scheduler) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := Report{Now: s.eng.Now(), Jobs: len(s.done)}
	if len(s.done) == 0 {
		return rep
	}
	first := s.done[0].Submitted
	var last int64
	var area, weighted float64
	var waitSum, respSum float64
	for _, j := range s.done {
		switch j.State {
		case StateKilled:
			rep.Killed++
		case StateFailed:
			rep.Failed++
		}
		if j.Submitted < first {
			first = j.Submitted
		}
		if j.Finished > last {
			last = j.Finished
		}
		run := j.Finished - j.Started
		if run < 1 {
			run = 1
		}
		wait := j.Started - j.Submitted
		resp := j.Finished - j.Submitted
		a := float64(run) * float64(j.Width)
		area += a
		weighted += a * float64(resp) / float64(run)
		waitSum += float64(wait)
		respSum += float64(resp)
		if wait > rep.MaxWait {
			rep.MaxWait = wait
		}
	}
	n := float64(len(s.done))
	rep.SLDwA = weighted / area
	rep.ART = respSum / n
	rep.AWT = waitSum / n
	rep.FirstSub = first
	rep.LastFinish = last
	if span := last - first; span > 0 {
		rep.Util = area / (float64(s.eng.Capacity()) * float64(span))
	}
	return rep
}
