package rms

// Report is the online scheduler's self-assessment over its finished
// jobs — the same metrics the paper evaluates offline (Section 4.1),
// computed from what the RMS observed.
type Report struct {
	Now        int64
	Jobs       int     // finished jobs (completed + killed + failed)
	Killed     int     // jobs terminated at their estimate
	Failed     int     // jobs terminated by a capacity failure
	SLDwA      float64 // slowdown weighted by actual area
	ART        float64 // average response time, seconds
	AWT        float64 // average waiting time, seconds
	MaxWait    int64
	Util       float64 // used area / (capacity x observed span)
	FirstSub   int64
	LastFinish int64
}

// reportAgg accumulates the Report sums incrementally, one finished job
// at a time in finish order — the same order (and therefore the same
// floating-point results) the retired per-read loop over the done list
// produced. Maintaining it on the write path makes Report O(1) on the
// read path, served straight from the published snapshot.
type reportAgg struct {
	n                int // finished jobs folded in
	killed, failed   int
	first, last      int64
	area, weighted   float64
	waitSum, respSum float64
	maxWait          int64
}

// add folds one finished job into the sums. Called from the engine's
// Finished hook under the scheduling lock.
func (a *reportAgg) add(j JobInfo) {
	switch j.State {
	case StateKilled:
		a.killed++
	case StateFailed:
		a.failed++
	}
	if a.n == 0 {
		a.first = j.Submitted
	}
	a.n++
	if j.Submitted < a.first {
		a.first = j.Submitted
	}
	if j.Finished > a.last {
		a.last = j.Finished
	}
	run := j.Finished - j.Started
	if run < 1 {
		run = 1
	}
	wait := j.Started - j.Submitted
	resp := j.Finished - j.Submitted
	area := float64(run) * float64(j.Width)
	a.area += area
	a.weighted += area * float64(resp) / float64(run)
	a.waitSum += float64(wait)
	a.respSum += float64(resp)
	if wait > a.maxWait {
		a.maxWait = wait
	}
}

// Report computes the metrics over all finished jobs, as of the last
// completed mutation. With no finished jobs, the zero Report (with the
// current time) is returned. It never takes the scheduling lock: the
// report is precomputed on the write path and served from the published
// snapshot.
func (s *Scheduler) Report() Report {
	return s.snap.Load().report
}

// reportLocked derives the Report from the running aggregates. Callers
// hold the scheduling lock.
func (s *Scheduler) reportLocked() Report {
	rep := Report{Now: s.eng.Now(), Jobs: len(s.done)}
	if len(s.done) == 0 {
		return rep
	}
	n := float64(len(s.done))
	rep.Killed = s.agg.killed
	rep.Failed = s.agg.failed
	rep.SLDwA = s.agg.weighted / s.agg.area
	rep.ART = s.agg.respSum / n
	rep.AWT = s.agg.waitSum / n
	rep.MaxWait = s.agg.maxWait
	rep.FirstSub = s.agg.first
	rep.LastFinish = s.agg.last
	if span := s.agg.last - s.agg.first; span > 0 {
		rep.Util = s.agg.area / (float64(s.eng.Capacity()) * float64(span))
	}
	return rep
}
