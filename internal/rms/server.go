package rms

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
)

// Server exposes a Scheduler over a newline-delimited JSON protocol, the
// role the RMS frontend plays for cluster users. One JSON object per line
// in, one per line out.
//
// Requests:
//
//	{"op":"submit","width":4,"estimate":3600}
//	{"op":"done","id":7}
//	{"op":"cancel","id":7}
//	{"op":"job","id":7}
//	{"op":"status"}
//	{"op":"finished"}
//	{"op":"report"}             metrics over finished jobs (SLDwA, util, ...)
//	{"op":"tick","to":5000}     advance the virtual clock (virtual mode)
//	{"op":"fail","procs":8}     take processors out of service (operator op)
//	{"op":"restore","procs":8}  return failed processors to service
//	{"op":"trace","n":50}       the last n engine transitions (needs -trace)
//	{"op":"metrics"}            lifetime engine metrics (needs -trace)
//	{"op":"deliver","to":50,"completions":[7],"subs":[{"width":2,"estimate":60}]}
//	                            atomic event batch (virtual mode)
//	{"op":"health"}             liveness + readiness detail, always served
//	{"op":"ready"}              ok iff the server is ready to take load
//	{"op":"policies"}           registered policy names + family templates
//	{"op":"deciders"}           registered decider names + family templates
//	{"op":"quote","width":8,"estimate":3600,"count":2}
//	                            digital-twin prediction: when would these
//	                            jobs start if submitted now? (needs quotes
//	                            enabled on the scheduler)
//
// Responses carry {"ok":true,...} or {"ok":false,"error":"..."}. A
// response with "busy":true was shed by overload protection, not
// rejected on its merits: the request is safe to retry after backoff.
//
// Overload policy. MaxConns bounds the connections served at full
// service. The next MaxConns connections are still accepted but
// degraded: reads — which every client can get from a retry later, and
// which the scheduler answers from lock-free snapshots anyway — are
// shed with busy responses, while mutating ops (submit, done, deliver)
// execute normally, so a flood of status pollers can never starve the
// operations that lose work when starved. Beyond that the connection is
// answered with one busy response and closed.
//
// Quotes shed before reads: each quote runs a twin simulation, so the
// quote lane is bounded even at full service — QuoteWorkers simulations
// run concurrently and at most QuoteMax quotes may be in flight (running
// or waiting for a worker) before further ones get busy responses. A
// snapshot read costs an atomic load and is never shed at full service;
// a quote is the first thing to go when load climbs, and mutators never
// wait on either.
type Server struct {
	sched *Scheduler
	// AllowTick enables the "tick" and "deliver" ops; a real-time daemon
	// drives the clock itself and rejects client clock movement.
	AllowTick bool
	// Trace backs the "trace" and "metrics" ops; both report an error
	// when it is nil. Attach the same EventTrace to the scheduler with
	// AddObserver and set it here before Listen.
	Trace *EventTrace
	// IdleTimeout bounds how long a connection may sit between requests
	// before the server drops it (0 = no limit). Set it before Listen.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (0 = no limit); a client
	// that stops draining its socket cannot pin a handler forever.
	WriteTimeout time.Duration
	// MaxConns bounds full-service connections (0 = unlimited); see the
	// overload policy above. Set before Listen.
	MaxConns int
	// ReadyMaxQueue is the readiness watermark: with more than this many
	// jobs waiting the server reports not-ready (0 = no watermark), so
	// load balancers and submit scripts steer work elsewhere first.
	ReadyMaxQueue int
	// QuoteWorkers bounds the twin simulations running concurrently for
	// the "quote" op (0 = DefaultQuoteWorkers). Set before Listen.
	QuoteWorkers int
	// QuoteMax bounds the quotes in flight — running or queued for a
	// worker — before further ones are shed with busy responses
	// (0 = 4x QuoteWorkers; negative sheds every quote, an operational
	// kill switch). Set before Listen.
	QuoteMax int

	ready atomic.Bool

	quoteOnce    sync.Once
	quoteSem     chan struct{}
	quoteLimit   int64
	quotePending atomic.Int64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewServer wraps a scheduler. The server starts ready; a daemon that
// must replay a journal first calls SetReady(false) before Listen and
// SetReady(true) when replay completes, keeping health checks
// responsive throughout.
func NewServer(s *Scheduler, allowTick bool) *Server {
	sv := &Server{sched: s, AllowTick: allowTick}
	sv.ready.Store(true)
	return sv
}

// SetReady flips the readiness gate. While not ready, every op except
// "health" and "ready" is rejected.
func (sv *Server) SetReady(ok bool) { sv.ready.Store(ok) }

// HealthInfo is the payload of the "health" and "ready" ops.
type HealthInfo struct {
	Ready      bool   `json:"ready"`
	Reason     string `json:"reason,omitempty"` // why not ready
	QueueDepth int    `json:"queue_depth"`
	Conns      int    `json:"conns"` // connections currently served
	JournalErr string `json:"journal_err,omitempty"`
}

// healthInfo computes the current health verdict. Ready means: the
// replay gate is open, the journal (if any) has not failed, and the
// waiting queue is under the watermark.
func (sv *Server) healthInfo() HealthInfo {
	sv.mu.Lock()
	conns := len(sv.conns)
	sv.mu.Unlock()
	h := HealthInfo{Ready: true, QueueDepth: sv.sched.QueueDepth(), Conns: conns}
	if !sv.ready.Load() {
		h.Ready = false
		h.Reason = "starting: journal replay in progress"
	}
	if err := sv.sched.JournalErr(); err != nil {
		h.JournalErr = err.Error()
		if h.Ready {
			h.Ready = false
			h.Reason = "journal failed: " + err.Error()
		}
	}
	if h.Ready && sv.ReadyMaxQueue > 0 && h.QueueDepth > sv.ReadyMaxQueue {
		h.Ready = false
		h.Reason = fmt.Sprintf("queue depth %d over watermark %d", h.QueueDepth, sv.ReadyMaxQueue)
	}
	return h
}

// Request is one protocol request.
type Request struct {
	Op          string       `json:"op"`
	Width       int          `json:"width,omitempty"`
	Estimate    int64        `json:"estimate,omitempty"`
	ID          int64        `json:"id,omitempty"`
	To          int64        `json:"to,omitempty"`
	Procs       int          `json:"procs,omitempty"`
	N           int          `json:"n,omitempty"`           // trace: how many recent events (0 = all buffered)
	Count       int          `json:"count,omitempty"`       // quote: hypothetical replicas (0 = 1)
	Completions []int64      `json:"completions,omitempty"` // deliver
	Subs        []Submission `json:"subs,omitempty"`        // deliver
}

// Response is one protocol response. Now is always present — "now":0 at
// t=0 is a real clock reading, not an absent field.
type Response struct {
	OK       bool           `json:"ok"`
	Error    string         `json:"error,omitempty"`
	Busy     bool           `json:"busy,omitempty"` // shed by overload protection; retry later
	Job      *JobInfo       `json:"job,omitempty"`
	Jobs     []JobInfo      `json:"jobs,omitempty"` // deliver: the batch's submissions
	Status   *Status        `json:"status,omitempty"`
	Finished []JobInfo      `json:"finished,omitempty"`
	Report   *Report        `json:"report,omitempty"`
	Trace    []TraceEvent   `json:"trace,omitempty"`
	Metrics  *EngineMetrics `json:"metrics,omitempty"`
	Health   *HealthInfo    `json:"health,omitempty"`
	Policies []string       `json:"policies,omitempty"` // policies op
	Deciders []string       `json:"deciders,omitempty"` // deciders op
	Quotes   []Quote        `json:"quotes,omitempty"`   // quote op, one per replica
	Now      int64          `json:"now"`
}

// readOnlyOps are the ops a degraded connection sheds: all answered
// from the scheduler's read snapshots, all safe to retry elsewhere.
// Quotes are in the set — and additionally bounded by their own
// admission lane at full service, so they shed before plain reads do.
var readOnlyOps = map[string]bool{
	"job": true, "status": true, "finished": true,
	"report": true, "trace": true, "metrics": true, "quote": true,
}

// DefaultQuoteWorkers is the twin-simulation concurrency when
// Server.QuoteWorkers is left zero.
const DefaultQuoteWorkers = 4

// initQuoteLane sizes the quote admission lane from the configuration,
// once, on the first quote.
func (sv *Server) initQuoteLane() {
	workers := sv.QuoteWorkers
	if workers <= 0 {
		workers = DefaultQuoteWorkers
	}
	limit := int64(sv.QuoteMax)
	if sv.QuoteMax == 0 {
		limit = int64(4 * workers)
	}
	if limit < 0 {
		limit = 0 // kill switch: shed every quote
	}
	sv.quoteSem = make(chan struct{}, workers)
	sv.quoteLimit = limit
}

// quote runs one quote request through the bounded admission lane:
// over-limit requests are shed immediately with a busy response, the
// rest wait for one of the QuoteWorkers twin slots. Mutators are never
// behind this gate — quotes only ever throttle quotes.
func (sv *Server) quote(req Request) Response {
	sv.quoteOnce.Do(sv.initQuoteLane)
	if sv.quotePending.Add(1) > sv.quoteLimit {
		sv.quotePending.Add(-1)
		return Response{
			Busy:  true,
			Error: "rms: server busy: quote shed under load (retry)",
			Now:   sv.sched.Now(),
		}
	}
	sv.quoteSem <- struct{}{}
	quotes, err := sv.sched.Quote(req.Width, req.Estimate, req.Count)
	<-sv.quoteSem
	sv.quotePending.Add(-1)
	if err != nil {
		return Response{Error: err.Error(), Now: sv.sched.Now()}
	}
	return Response{OK: true, Quotes: quotes, Now: sv.sched.Now()}
}

// Handle executes one request against the scheduler at full service.
func (sv *Server) Handle(req Request) Response {
	return sv.handle(req, false)
}

// handle executes one request. On a degraded connection (over the
// connection cap) read ops are shed with a busy response; mutating ops
// always run — losing a completion or a submission loses real work,
// losing a status read loses nothing.
func (sv *Server) handle(req Request, degraded bool) Response {
	fail := func(err error) Response { return Response{Error: err.Error(), Now: sv.sched.Now()} }
	// Health ops are served unconditionally — before the readiness gate,
	// on degraded connections — so probes keep working exactly when
	// things go wrong.
	switch req.Op {
	case "health":
		h := sv.healthInfo()
		return Response{OK: true, Health: &h, Now: sv.sched.Now()}
	case "ready":
		h := sv.healthInfo()
		if !h.Ready {
			return Response{Error: "rms: not ready: " + h.Reason, Health: &h, Now: sv.sched.Now()}
		}
		return Response{OK: true, Health: &h, Now: sv.sched.Now()}
	}
	if !sv.ready.Load() {
		return fail(fmt.Errorf("rms: server starting (journal replay in progress)"))
	}
	if degraded && readOnlyOps[req.Op] {
		return Response{
			Busy:  true,
			Error: "rms: server busy: read shed under overload (retry)",
			Now:   sv.sched.Now(),
		}
	}
	switch req.Op {
	case "submit":
		info, err := sv.sched.Submit(req.Width, req.Estimate)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "done":
		info, err := sv.sched.Complete(job.ID(req.ID))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "cancel":
		if err := sv.sched.Cancel(job.ID(req.ID)); err != nil {
			return fail(err)
		}
		return Response{OK: true, Now: sv.sched.Now()}
	case "job":
		info, err := sv.sched.Job(job.ID(req.ID))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "status":
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "finished":
		return Response{OK: true, Finished: sv.sched.Finished(), Now: sv.sched.Now()}
	case "report":
		rep := sv.sched.Report()
		return Response{OK: true, Report: &rep, Now: rep.Now}
	case "tick":
		if !sv.AllowTick {
			return fail(fmt.Errorf("rms: tick disabled (real-time mode)"))
		}
		if err := sv.sched.Advance(req.To); err != nil {
			return fail(err)
		}
		return Response{OK: true, Now: sv.sched.Now()}
	case "deliver":
		if !sv.AllowTick {
			return fail(fmt.Errorf("rms: deliver disabled (real-time mode)"))
		}
		ids := make([]job.ID, len(req.Completions))
		for i, id := range req.Completions {
			ids[i] = job.ID(id)
		}
		jobs, err := sv.sched.Deliver(req.To, ids, req.Subs)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Jobs: jobs, Now: sv.sched.Now()}
	case "fail":
		if err := sv.sched.Fail(req.Procs); err != nil {
			return fail(err)
		}
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "restore":
		if err := sv.sched.Restore(req.Procs); err != nil {
			return fail(err)
		}
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "quote":
		return sv.quote(req)
	case "policies":
		return Response{OK: true, Policies: policy.Names(), Now: sv.sched.Now()}
	case "deciders":
		return Response{OK: true, Deciders: core.DeciderNames(), Now: sv.sched.Now()}
	case "trace":
		if sv.Trace == nil {
			return fail(fmt.Errorf("rms: tracing disabled (start the daemon with -trace)"))
		}
		return Response{OK: true, Trace: sv.Trace.Last(req.N), Now: sv.sched.Now()}
	case "metrics":
		if sv.Trace == nil {
			return fail(fmt.Errorf("rms: tracing disabled (start the daemon with -trace)"))
		}
		m := sv.Trace.Metrics()
		return Response{OK: true, Metrics: &m, Now: sv.sched.Now()}
	default:
		return fail(fmt.Errorf("rms: unknown op %q", req.Op))
	}
}

// readDeadliner is the subset of net.Conn the server needs for idle
// timeouts and drain wake-ups; plain io.ReadWriters (tests, pipes
// without deadlines) simply serve without them.
type readDeadliner interface {
	SetReadDeadline(time.Time) error
}

// writeDeadliner is the subset of net.Conn the server needs to bound
// response writes against clients that stop draining their sockets.
type writeDeadliner interface {
	SetWriteDeadline(time.Time) error
}

// ServeConn speaks the protocol on one connection until EOF, the idle
// timeout, or a server drain. An oversized request line (beyond the
// 64 KiB protocol limit) is answered with an explicit error response
// before the connection closes, instead of dying silently.
func (sv *Server) ServeConn(conn io.ReadWriter) error {
	return sv.serveConn(conn, false)
}

func (sv *Server) serveConn(conn io.ReadWriter, degraded bool) error {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	enc := json.NewEncoder(conn)
	rdl, hasRead := conn.(readDeadliner)
	wdl, hasWrite := conn.(writeDeadliner)
	write := func(resp Response) error {
		if hasWrite && sv.WriteTimeout > 0 {
			_ = wdl.SetWriteDeadline(time.Now().Add(sv.WriteTimeout))
		}
		return enc.Encode(resp)
	}
	for {
		if hasRead && sv.IdleTimeout > 0 {
			_ = rdl.SetReadDeadline(time.Now().Add(sv.IdleTimeout))
		}
		if !sc.Scan() {
			break
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Error: fmt.Sprintf("rms: bad request: %v", err), Now: sv.sched.Now()}
		} else {
			resp = sv.handle(req, degraded)
		}
		if err := write(resp); err != nil {
			return err
		}
		if sv.isDraining() {
			// Graceful drain: the request in flight got its response;
			// stop before reading the next one.
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			_ = write(Response{
				Error: "rms: request exceeds the 64 KiB line limit",
				Now:   sv.sched.Now(),
			})
		}
		return err
	}
	return nil
}

func (sv *Server) isDraining() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.draining
}

// Listen serves the protocol on a TCP address until Close is called. It
// returns the bound address (useful with ":0").
func (sv *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	sv.mu.Lock()
	sv.listener = l
	if sv.conns == nil {
		sv.conns = make(map[net.Conn]struct{})
	}
	sv.mu.Unlock()
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			sv.mu.Lock()
			if sv.draining {
				sv.mu.Unlock()
				conn.Close()
				continue
			}
			n := len(sv.conns)
			degraded := false
			if sv.MaxConns > 0 {
				if n >= 2*sv.MaxConns {
					// Hard cap: one busy response, then the door.
					sv.mu.Unlock()
					sv.rejectBusy(conn)
					continue
				}
				degraded = n >= sv.MaxConns
			}
			sv.conns[conn] = struct{}{}
			sv.mu.Unlock()
			sv.wg.Add(1)
			go func() {
				defer sv.wg.Done()
				defer func() {
					sv.mu.Lock()
					delete(sv.conns, conn)
					sv.mu.Unlock()
					conn.Close()
				}()
				_ = sv.serveConn(conn, degraded)
			}()
		}
	}()
	return l.Addr(), nil
}

// rejectBusy answers a connection beyond the hard cap with a single
// busy response and closes it, under a bounded write deadline so a
// hostile peer cannot stall the accept loop's goroutine collection.
func (sv *Server) rejectBusy(conn net.Conn) {
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		defer conn.Close()
		timeout := sv.WriteTimeout
		if timeout <= 0 {
			timeout = 2 * time.Second
		}
		_ = conn.SetWriteDeadline(time.Now().Add(timeout))
		_ = json.NewEncoder(conn).Encode(Response{
			Busy:  true,
			Error: "rms: server busy: connection limit reached (retry)",
			Now:   sv.sched.Now(),
		})
	}()
}

// Close stops the listener and drains gracefully: requests already in
// flight get their responses, blocked reads are woken by an immediate
// read deadline, and every handler has exited — and closed its
// connection — before Close returns.
func (sv *Server) Close() error {
	sv.mu.Lock()
	l := sv.listener
	sv.listener = nil
	sv.draining = true
	for c := range sv.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	sv.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	sv.wg.Wait()
	return err
}
