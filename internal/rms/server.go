package rms

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dynp/internal/job"
)

// Server exposes a Scheduler over a newline-delimited JSON protocol, the
// role the RMS frontend plays for cluster users. One JSON object per line
// in, one per line out.
//
// Requests:
//
//	{"op":"submit","width":4,"estimate":3600}
//	{"op":"done","id":7}
//	{"op":"cancel","id":7}
//	{"op":"job","id":7}
//	{"op":"status"}
//	{"op":"finished"}
//	{"op":"report"}             metrics over finished jobs (SLDwA, util, ...)
//	{"op":"tick","to":5000}     advance the virtual clock (virtual mode)
//	{"op":"fail","procs":8}     take processors out of service (operator op)
//	{"op":"restore","procs":8}  return failed processors to service
//	{"op":"trace","n":50}       the last n engine transitions (needs -trace)
//	{"op":"metrics"}            lifetime engine metrics (needs -trace)
//
// Responses carry {"ok":true,...} or {"ok":false,"error":"..."}.
type Server struct {
	sched *Scheduler
	// AllowTick enables the "tick" op; a real-time daemon drives the
	// clock itself and rejects client ticks.
	AllowTick bool
	// Trace backs the "trace" and "metrics" ops; both report an error
	// when it is nil. Attach the same EventTrace to the scheduler with
	// AddObserver and set it here before Listen.
	Trace *EventTrace
	// IdleTimeout bounds how long a connection may sit between requests
	// before the server drops it (0 = no limit). Set it before Listen.
	IdleTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewServer wraps a scheduler.
func NewServer(s *Scheduler, allowTick bool) *Server {
	return &Server{sched: s, AllowTick: allowTick}
}

// Request is one protocol request.
type Request struct {
	Op       string `json:"op"`
	Width    int    `json:"width,omitempty"`
	Estimate int64  `json:"estimate,omitempty"`
	ID       int64  `json:"id,omitempty"`
	To       int64  `json:"to,omitempty"`
	Procs    int    `json:"procs,omitempty"`
	N        int    `json:"n,omitempty"` // trace: how many recent events (0 = all buffered)
}

// Response is one protocol response. Now is always present — "now":0 at
// t=0 is a real clock reading, not an absent field.
type Response struct {
	OK       bool           `json:"ok"`
	Error    string         `json:"error,omitempty"`
	Job      *JobInfo       `json:"job,omitempty"`
	Status   *Status        `json:"status,omitempty"`
	Finished []JobInfo      `json:"finished,omitempty"`
	Report   *Report        `json:"report,omitempty"`
	Trace    []TraceEvent   `json:"trace,omitempty"`
	Metrics  *EngineMetrics `json:"metrics,omitempty"`
	Now      int64          `json:"now"`
}

// Handle executes one request against the scheduler.
func (sv *Server) Handle(req Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error(), Now: sv.sched.Now()} }
	switch req.Op {
	case "submit":
		info, err := sv.sched.Submit(req.Width, req.Estimate)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "done":
		info, err := sv.sched.Complete(job.ID(req.ID))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "cancel":
		if err := sv.sched.Cancel(job.ID(req.ID)); err != nil {
			return fail(err)
		}
		return Response{OK: true, Now: sv.sched.Now()}
	case "job":
		info, err := sv.sched.Job(job.ID(req.ID))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "status":
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "finished":
		return Response{OK: true, Finished: sv.sched.Finished(), Now: sv.sched.Now()}
	case "report":
		rep := sv.sched.Report()
		return Response{OK: true, Report: &rep, Now: rep.Now}
	case "tick":
		if !sv.AllowTick {
			return fail(fmt.Errorf("rms: tick disabled (real-time mode)"))
		}
		if err := sv.sched.Advance(req.To); err != nil {
			return fail(err)
		}
		return Response{OK: true, Now: sv.sched.Now()}
	case "fail":
		if err := sv.sched.Fail(req.Procs); err != nil {
			return fail(err)
		}
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "restore":
		if err := sv.sched.Restore(req.Procs); err != nil {
			return fail(err)
		}
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "trace":
		if sv.Trace == nil {
			return fail(fmt.Errorf("rms: tracing disabled (start the daemon with -trace)"))
		}
		return Response{OK: true, Trace: sv.Trace.Last(req.N), Now: sv.sched.Now()}
	case "metrics":
		if sv.Trace == nil {
			return fail(fmt.Errorf("rms: tracing disabled (start the daemon with -trace)"))
		}
		m := sv.Trace.Metrics()
		return Response{OK: true, Metrics: &m, Now: sv.sched.Now()}
	default:
		return fail(fmt.Errorf("rms: unknown op %q", req.Op))
	}
}

// readDeadliner is the subset of net.Conn the server needs for idle
// timeouts and drain wake-ups; plain io.ReadWriters (tests, pipes
// without deadlines) simply serve without them.
type readDeadliner interface {
	SetReadDeadline(time.Time) error
}

// ServeConn speaks the protocol on one connection until EOF, the idle
// timeout, or a server drain. An oversized request line (beyond the
// 64 KiB protocol limit) is answered with an explicit error response
// before the connection closes, instead of dying silently.
func (sv *Server) ServeConn(conn io.ReadWriter) error {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	enc := json.NewEncoder(conn)
	dl, hasDeadline := conn.(readDeadliner)
	for {
		if hasDeadline && sv.IdleTimeout > 0 {
			_ = dl.SetReadDeadline(time.Now().Add(sv.IdleTimeout))
		}
		if !sc.Scan() {
			break
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Error: fmt.Sprintf("rms: bad request: %v", err), Now: sv.sched.Now()}
		} else {
			resp = sv.Handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if sv.isDraining() {
			// Graceful drain: the request in flight got its response;
			// stop before reading the next one.
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			_ = enc.Encode(Response{
				Error: "rms: request exceeds the 64 KiB line limit",
				Now:   sv.sched.Now(),
			})
		}
		return err
	}
	return nil
}

func (sv *Server) isDraining() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.draining
}

// Listen serves the protocol on a TCP address until Close is called. It
// returns the bound address (useful with ":0").
func (sv *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	sv.mu.Lock()
	sv.listener = l
	if sv.conns == nil {
		sv.conns = make(map[net.Conn]struct{})
	}
	sv.mu.Unlock()
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			sv.mu.Lock()
			if sv.draining {
				sv.mu.Unlock()
				conn.Close()
				continue
			}
			sv.conns[conn] = struct{}{}
			sv.mu.Unlock()
			sv.wg.Add(1)
			go func() {
				defer sv.wg.Done()
				defer func() {
					sv.mu.Lock()
					delete(sv.conns, conn)
					sv.mu.Unlock()
					conn.Close()
				}()
				_ = sv.ServeConn(conn)
			}()
		}
	}()
	return l.Addr(), nil
}

// Close stops the listener and drains gracefully: requests already in
// flight get their responses, blocked reads are woken by an immediate
// read deadline, and every handler has exited — and closed its
// connection — before Close returns.
func (sv *Server) Close() error {
	sv.mu.Lock()
	l := sv.listener
	sv.listener = nil
	sv.draining = true
	for c := range sv.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	sv.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	sv.wg.Wait()
	return err
}
