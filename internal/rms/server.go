package rms

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"dynp/internal/job"
)

// Server exposes a Scheduler over a newline-delimited JSON protocol, the
// role the RMS frontend plays for cluster users. One JSON object per line
// in, one per line out.
//
// Requests:
//
//	{"op":"submit","width":4,"estimate":3600}
//	{"op":"done","id":7}
//	{"op":"cancel","id":7}
//	{"op":"job","id":7}
//	{"op":"status"}
//	{"op":"finished"}
//	{"op":"report"}             metrics over finished jobs (SLDwA, util, ...)
//	{"op":"tick","to":5000}     advance the virtual clock (virtual mode)
//
// Responses carry {"ok":true,...} or {"ok":false,"error":"..."}.
type Server struct {
	sched *Scheduler
	// AllowTick enables the "tick" op; a real-time daemon drives the
	// clock itself and rejects client ticks.
	AllowTick bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// NewServer wraps a scheduler.
func NewServer(s *Scheduler, allowTick bool) *Server {
	return &Server{sched: s, AllowTick: allowTick}
}

// Request is one protocol request.
type Request struct {
	Op       string `json:"op"`
	Width    int    `json:"width,omitempty"`
	Estimate int64  `json:"estimate,omitempty"`
	ID       int64  `json:"id,omitempty"`
	To       int64  `json:"to,omitempty"`
}

// Response is one protocol response.
type Response struct {
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Job      *JobInfo  `json:"job,omitempty"`
	Status   *Status   `json:"status,omitempty"`
	Finished []JobInfo `json:"finished,omitempty"`
	Report   *Report   `json:"report,omitempty"`
	Now      int64     `json:"now,omitempty"`
}

// Handle executes one request against the scheduler.
func (sv *Server) Handle(req Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	switch req.Op {
	case "submit":
		info, err := sv.sched.Submit(req.Width, req.Estimate)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "done":
		info, err := sv.sched.Complete(job.ID(req.ID))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "cancel":
		if err := sv.sched.Cancel(job.ID(req.ID)); err != nil {
			return fail(err)
		}
		return Response{OK: true, Now: sv.sched.Now()}
	case "job":
		info, err := sv.sched.Job(job.ID(req.ID))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Job: &info, Now: sv.sched.Now()}
	case "status":
		st := sv.sched.Status()
		return Response{OK: true, Status: &st, Now: st.Now}
	case "finished":
		return Response{OK: true, Finished: sv.sched.Finished(), Now: sv.sched.Now()}
	case "report":
		rep := sv.sched.Report()
		return Response{OK: true, Report: &rep, Now: rep.Now}
	case "tick":
		if !sv.AllowTick {
			return fail(fmt.Errorf("rms: tick disabled (real-time mode)"))
		}
		if err := sv.sched.Advance(req.To); err != nil {
			return fail(err)
		}
		return Response{OK: true, Now: sv.sched.Now()}
	default:
		return fail(fmt.Errorf("rms: unknown op %q", req.Op))
	}
}

// ServeConn speaks the protocol on one connection until EOF.
func (sv *Server) ServeConn(conn io.ReadWriter) error {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Error: fmt.Sprintf("rms: bad request: %v", err)}
		} else {
			resp = sv.Handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Listen serves the protocol on a TCP address until Close is called. It
// returns the bound address (useful with ":0").
func (sv *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	sv.mu.Lock()
	sv.listener = l
	if sv.conns == nil {
		sv.conns = make(map[net.Conn]struct{})
	}
	sv.mu.Unlock()
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			sv.mu.Lock()
			sv.conns[conn] = struct{}{}
			sv.mu.Unlock()
			sv.wg.Add(1)
			go func() {
				defer sv.wg.Done()
				defer func() {
					sv.mu.Lock()
					delete(sv.conns, conn)
					sv.mu.Unlock()
					conn.Close()
				}()
				_ = sv.ServeConn(conn)
			}()
		}
	}()
	return l.Addr(), nil
}

// Close stops the listener, disconnects clients and waits for handlers.
func (sv *Server) Close() error {
	sv.mu.Lock()
	l := sv.listener
	sv.listener = nil
	for c := range sv.conns {
		c.Close()
	}
	sv.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	sv.wg.Wait()
	return err
}
