// Checkpoint capture and restore for the online scheduler. A checkpoint
// is the full externally observable state — machine, queues, finished
// history, plan, driver and observer state — cut after an event
// applied, such that a virgin scheduler restored from it is
// indistinguishable from one that replayed every event since genesis:
// same Status, same Report (the float aggregates are refolded in the
// original finish order, so even the bit patterns match), same job
// histories, and the same future behaviour (the tuner's decision state
// travels in the checkpoint; its pure-optimisation fast paths rebuild).
package rms

import (
	"fmt"

	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// captureCheckpointLocked serialises the current scheduler state as a
// checkpoint that folds in the given number of events since genesis.
// Callers hold the scheduling lock.
func (s *Scheduler) captureCheckpointLocked(events int64) (checkpointState, error) {
	cs := checkpointState{
		Events: events,
		Now:    s.eng.Now(),
		NextID: int64(s.nextID),
		Failed: s.eng.FailedProcs(),
	}
	for _, w := range s.eng.Waiting() {
		cs.Waiting = append(cs.Waiting, *s.infos[w.ID])
	}
	for _, r := range s.eng.Running() {
		cs.Running = append(cs.Running, *s.infos[r.Job.ID])
	}
	if len(s.done) > 0 {
		cs.Done = append([]JobInfo(nil), s.done...)
	}
	if p := s.eng.Schedule(); p != nil {
		pr := &planRec{Policy: policyName(p.Policy), Now: p.Now, Capacity: p.Capacity}
		for _, e := range p.Entries {
			pr.Entries = append(pr.Entries, planEntryRec{ID: int64(e.Job.ID), Start: e.Start})
		}
		cs.Plan = pr
	}
	if sd, ok := s.driver.(engine.StatefulDriver); ok {
		b, err := sd.SaveState()
		if err != nil {
			return checkpointState{}, fmt.Errorf("driver state: %w", err)
		}
		cs.Driver = b
	}
	for _, so := range s.stateful {
		b, err := so.SaveState()
		if err != nil {
			return checkpointState{}, fmt.Errorf("observer %q state: %w", so.StateKey(), err)
		}
		cs.Observers = append(cs.Observers, observerState{Key: so.StateKey(), State: b})
	}
	return cs, nil
}

// restoreCheckpoint installs a checkpoint into a virgin scheduler (fresh
// from New, nothing submitted). The finished history is refolded into
// the report aggregates in its original finish order, the engine's
// machine state is rebuilt (priming the driver's queue tracker), and
// driver and observer state reinstalled; replayed tail events then take
// it from there. No replanning happens here — the checkpointed plan is
// the one that was in force.
func (s *Scheduler) restoreCheckpoint(cs *checkpointState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if s.nextID != 0 || len(s.done) != 0 {
		return fmt.Errorf("rms: checkpoint restore on a non-virgin scheduler")
	}

	install := func(info JobInfo) (*JobInfo, error) {
		if info.ID < 1 || int64(info.ID) > cs.NextID {
			return nil, fmt.Errorf("rms: checkpoint job %d outside the issued ID range", info.ID)
		}
		if _, dup := s.infos[info.ID]; dup {
			return nil, fmt.Errorf("rms: checkpoint lists job %d twice", info.ID)
		}
		cp := info
		s.infos[info.ID] = &cp
		return &cp, nil
	}

	for i, d := range cs.Done {
		if d.State != StateCompleted && d.State != StateKilled && d.State != StateFailed {
			return fmt.Errorf("rms: checkpoint done job %d in state %s", d.ID, d.State)
		}
		if _, err := install(d); err != nil {
			return err
		}
		s.done = append(s.done, d)
		s.agg.add(d)
		s.doneIdx[d.ID] = i
	}

	// The engine job objects behind the live infos. The run time is
	// unknown online; like Submit, the planner never reads it.
	mkJob := func(info JobInfo) *job.Job {
		return &job.Job{
			ID: info.ID, Submit: info.Submitted, Width: info.Width,
			Estimate: info.Estimate, Runtime: info.Estimate,
		}
	}
	byID := make(map[job.ID]*job.Job, len(cs.Waiting)+len(cs.Running))
	var waiting []*job.Job
	for _, info := range cs.Waiting {
		if info.State != StateWaiting {
			return fmt.Errorf("rms: checkpoint waiting job %d in state %s", info.ID, info.State)
		}
		if _, err := install(info); err != nil {
			return err
		}
		j := mkJob(info)
		waiting = append(waiting, j)
		byID[j.ID] = j
	}
	var running []plan.Running
	for _, info := range cs.Running {
		if info.State != StateRunning {
			return fmt.Errorf("rms: checkpoint running job %d in state %s", info.ID, info.State)
		}
		if _, err := install(info); err != nil {
			return err
		}
		j := mkJob(info)
		running = append(running, plan.Running{Job: j, Start: info.Started})
		byID[j.ID] = j
	}

	var sched *plan.Schedule
	if cs.Plan != nil {
		var pol policy.Policy
		if cs.Plan.Policy != "" {
			var err error
			if pol, err = policy.Lookup(cs.Plan.Policy); err != nil {
				return fmt.Errorf("rms: checkpoint plan references a policy this process does not know: %w (register it before restoring)", err)
			}
		}
		sched = &plan.Schedule{Now: cs.Plan.Now, Capacity: cs.Plan.Capacity, Policy: pol}
		for _, e := range cs.Plan.Entries {
			jj := byID[job.ID(e.ID)]
			if jj == nil {
				// The entry's job already left the system (plans are only
				// consulted for still-waiting jobs); a placeholder keeps
				// the entry list faithful without resurrecting it.
				jj = &job.Job{ID: job.ID(e.ID)}
			}
			sched.Entries = append(sched.Entries, plan.Entry{Job: jj, Start: e.Start})
		}
	}

	if err := s.eng.RestoreState(engine.State{
		Now:      cs.Now,
		Failed:   cs.Failed,
		Finished: len(cs.Done),
		Waiting:  waiting,
		Running:  running,
		Plan:     sched,
	}); err != nil {
		return fmt.Errorf("rms: checkpoint restore: %w", err)
	}
	s.nextID = job.ID(cs.NextID)

	if len(cs.Driver) > 0 {
		sd, ok := s.driver.(engine.StatefulDriver)
		if !ok {
			return fmt.Errorf("rms: checkpoint carries driver state but %s cannot restore it", s.driver.Name())
		}
		if err := sd.RestoreState(cs.Driver); err != nil {
			return fmt.Errorf("rms: checkpoint driver state: %w", err)
		}
	}
	for _, os := range cs.Observers {
		for _, so := range s.stateful {
			if so.StateKey() == os.Key {
				if err := so.RestoreState(os.State); err != nil {
					return fmt.Errorf("rms: checkpoint observer %q state: %w", os.Key, err)
				}
				break
			}
		}
	}
	return nil
}
