package rms

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

func newDynP() sim.Driver { return sim.NewDynP(core.Preferred{Policy: policy.SJF}) }

// journaledScheduler returns a scheduler writing to a fresh journal in a
// temp dir.
func journaledScheduler(t *testing.T, capacity int, snapshotEvery int) (*Scheduler, *Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSnapshotEvery(snapshotEvery)
	s, err := New(capacity, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	return s, j, path
}

// driveRandomEvents pushes a deterministic pseudo-random mix of every
// external event through the scheduler: submissions, completions,
// cancels, clock advances, capacity failures/restores and atomic
// deliveries — including some the scheduler rejects.
func driveRandomEvents(t *testing.T, s *Scheduler, seed uint64, n int) {
	t.Helper()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0, 1, 2:
			if _, err := s.Submit(1+r.Intn(8), int64(1+r.Intn(80))); err != nil {
				t.Fatal(err)
			}
		case 3:
			st := s.Status()
			if len(st.Running) > 0 {
				id := st.Running[r.Intn(len(st.Running))].ID
				if _, err := s.Complete(id); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			st := s.Status()
			if len(st.Waiting) > 0 {
				id := st.Waiting[r.Intn(len(st.Waiting))].ID
				if err := s.Cancel(id); err != nil {
					t.Fatal(err)
				}
			}
		case 5, 6:
			if err := s.Advance(s.Now() + int64(r.Intn(40))); err != nil {
				t.Fatal(err)
			}
		case 7:
			st := s.Status()
			if free := st.Capacity - st.FailedProcs; free > 1 {
				if err := s.Fail(1 + r.Intn(free-1)); err != nil {
					t.Fatal(err)
				}
			}
		case 8:
			st := s.Status()
			if st.FailedProcs > 0 {
				if err := s.Restore(1 + r.Intn(st.FailedProcs)); err != nil {
					t.Fatal(err)
				}
			}
		case 9:
			subs := []Submission{{Width: 1 + r.Intn(8), Estimate: int64(1 + r.Intn(50))}}
			if r.Intn(4) == 0 {
				// A batch the scheduler rejects (unknown completion):
				// journaled ahead of validation, it must replay into the
				// identical rejection.
				_, err := s.Deliver(s.Now()+int64(r.Intn(10)), []job.ID{99999}, subs)
				if err == nil {
					t.Fatal("unknown completion accepted")
				}
			} else if _, err := s.Deliver(s.Now()+int64(r.Intn(10)), nil, subs); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after event %d: %v", i, err)
		}
	}
}

// fingerprint summarises externally visible scheduler state as JSON.
func fingerprint(t *testing.T, s *Scheduler) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Status   Status
		Report   Report
		Finished []JobInfo
	}{s.Status(), s.Report(), s.Finished()})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func replayFresh(t *testing.T, path string, capacity int) (*Scheduler, *Journal, int, error) {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(capacity, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := j.Replay(s)
	return s, j, n, err
}

func TestJournalReplayEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 0xdead, 0xc0ffee} {
		live, j, path := journaledScheduler(t, 16, 5)
		driveRandomEvents(t, live, seed, 120)
		want := fingerprint(t, live)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		replayed, j2, n, err := replayFresh(t, path, 16)
		if err != nil {
			t.Fatalf("seed %#x: replay: %v", seed, err)
		}
		defer j2.Close()
		if n == 0 {
			t.Fatalf("seed %#x: no events replayed", seed)
		}
		if got := fingerprint(t, replayed); got != want {
			t.Errorf("seed %#x: replayed state diverges\nlive:     %s\nreplayed: %s", seed, want, got)
		}
	}
}

func TestJournalReplayThenContinue(t *testing.T) {
	// A replayed scheduler must accept new journaled events and replay
	// again to the same state: the crash/restart cycle is closed.
	live, j, path := journaledScheduler(t, 8, 3)
	driveRandomEvents(t, live, 7, 40)
	j.Close()

	restarted, j2, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.SetJournal(j2); err != nil {
		t.Fatal(err)
	}
	driveRandomEvents(t, restarted, 8, 40)
	want := fingerprint(t, restarted)
	j2.Close()

	again, j3, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := fingerprint(t, again); got != want {
		t.Errorf("second-generation replay diverges\nlive:     %s\nreplayed: %s", want, got)
	}
}

func TestJournalRecoversTruncatedTail(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 0)
	driveRandomEvents(t, live, 3, 30)
	want := fingerprint(t, live)
	j.Close()

	// A kill -9 mid-append leaves a partial final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":{"op":"submit","wi`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	replayed, j2, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatalf("replay after torn write: %v", err)
	}
	defer j2.Close()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if got := fingerprint(t, replayed); got != want {
		t.Errorf("state after torn-write recovery diverges\nlive:     %s\nreplayed: %s", want, got)
	}
}

func TestJournalInteriorCorruptionRefused(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 0)
	for i := 0; i < 5; i++ {
		if _, err := live.Submit(1, 10); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Corrupt a middle line. The events after it were acknowledged to
	// clients; truncating them away would silently lose jobs, so the
	// journal must refuse to open rather than "recover".
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	corrupted := append([]string(nil), lines...)
	corrupted[3] = "garbage not json\n"
	if err := os.WriteFile(path, []byte(strings.Join(corrupted, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("journal with interior corruption opened")
	}
	if got, _ := os.ReadFile(path); string(got) != strings.Join(corrupted, "") {
		t.Error("refused open modified the journal file")
	}

	// The same garbage as the *last* line is a torn tail: recoverable by
	// truncation, losing only the final, never-acknowledged event.
	trunc := append([]string(nil), lines[:5]...)
	trunc = append(trunc, "garbage not json\n")
	if err := os.WriteFile(path, []byte(strings.Join(trunc, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	replayed, j2, n, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatalf("replay after torn-tail garbage: %v", err)
	}
	defer j2.Close()
	if n != 4 {
		t.Errorf("replayed %d events, want 4", n)
	}
	if got := len(replayed.Status().Running) + len(replayed.Status().Waiting); got != 4 {
		t.Errorf("%d jobs after tail recovery, want 4", got)
	}
}

// retamper rewrites one journal record's payload and recomputes its
// checksum, simulating tampering that the per-record CRC cannot catch —
// only checkpoint verification can.
func retamper(t *testing.T, path, old, new string) bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if len(line) < 10 || !strings.Contains(line, old) {
			continue
		}
		payload := strings.Replace(line[9:], old, new, 1)
		lines[i] = string(encodeRecordPayload(t, payload))
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
		return true
	}
	return false
}

func encodeRecordPayload(t *testing.T, payload string) []byte {
	t.Helper()
	var l journalLine
	if err := json.Unmarshal([]byte(payload), &l); err != nil {
		t.Fatal(err)
	}
	b, err := encodeRecord(&l)
	if err != nil {
		t.Fatal(err)
	}
	return b[:len(b)-1] // strip the newline; Join re-adds it
}

func TestJournalGenesisReplayDetectsTampering(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 2)
	driveRandomEvents(t, live, 11, 30)
	j.Close()

	// Flip a submitted width deep in the history — in a rotated segment,
	// where a later checkpoint covers it — with a recomputed checksum, so
	// only semantic verification can notice. Fast replay never re-applies
	// pre-checkpoint events; the genesis audit must catch the divergence.
	if !retamper(t, path+".0", `"width":`, `"width":1`) {
		t.Skip("no submit event in the genesis segment to tamper with")
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.ReplayGenesis(s); err == nil {
		t.Fatal("tampered journal passed the genesis audit")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("error %q does not mention the checkpoint verification", err)
	}
}

func TestJournalHeaderGuards(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 0)
	if _, err := live.Submit(2, 10); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Wrong capacity.
	if _, j2, _, err := replayFresh(t, path, 16); err == nil {
		t.Error("capacity-mismatched replay accepted")
	} else {
		j2.Close()
	}

	// Wrong scheduler.
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := New(8, &sim.Static{Policy: policy.FCFS}, 0)
	if _, err := j3.Replay(other); err == nil {
		t.Error("scheduler-mismatched replay accepted")
	}
	j3.Close()

	// Replay into a scheduler that already has state.
	j4, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	dirty, _ := New(8, newDynP(), 0)
	dirty.Submit(1, 5)
	if _, err := j4.Replay(dirty); err == nil {
		t.Error("replay into a non-fresh scheduler accepted")
	}
	j4.Close()

	// A file without a valid header is not ours: refuse to open it
	// rather than truncate someone's data to zero.
	nohdr := filepath.Join(t.TempDir(), "nohdr.journal")
	if err := os.WriteFile(nohdr, []byte(`{"event":{"op":"submit","width":1,"estimate":5}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(nohdr); err == nil {
		t.Error("headerless file opened as a journal")
	}
	if data, err := os.ReadFile(nohdr); err != nil || len(data) == 0 {
		t.Errorf("foreign file was destroyed: %d bytes, %v", len(data), err)
	}
}

func TestJournalAppendAfterReplayGuard(t *testing.T) {
	_, j, path := journaledScheduler(t, 8, 0)
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Append(Event{Op: opTick, To: 5}); err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(8, newDynP(), 0)
	if _, err := j2.Replay(fresh); err == nil {
		t.Error("replay after appends accepted")
	}
}

func TestJournalWriteErrorFailsOperations(t *testing.T) {
	s, j, _ := journaledScheduler(t, 8, 0)
	// Close the file under the journal: the next append must fail, the
	// operation must be rejected, and state must stay unchanged.
	j.f.Close()
	if _, err := s.Submit(1, 10); err == nil {
		t.Fatal("submit succeeded with a dead journal")
	}
	if st := s.Status(); len(st.Waiting)+len(st.Running) != 0 {
		t.Errorf("state mutated despite journal failure: %+v", st)
	}
	// The error is sticky.
	if err := j.Append(Event{Op: opTick, To: 1}); err == nil {
		t.Error("append after write error accepted")
	}
}
