// Journal replay: rebuilding a scheduler from disk after a restart.
//
// Replay is the fast path and the one dynpd uses: it restores the
// newest valid checkpoint and applies only the events journaled behind
// it, so restart time is bounded by the checkpoint interval instead of
// the life of the system. Checkpoints are redundant (the events can
// always rebuild them) so a corrupt checkpoint record is not fatal:
// the ladder falls back one checkpoint at a time — restore the previous
// one, apply the segments in between — and from genesis as the last
// resort. Events are *not* redundant; a corrupt event record that no
// newer checkpoint covers makes the journal unrecoverable and replay
// refuses, loudly, instead of resurrecting a partial history.
//
// ReplayGenesis is the strict auditor: it replays every event from
// segment 0 and verifies the rebuilt state against every checkpoint it
// passes. Both paths produce byte-identical schedulers; the soak and
// equivalence tests hold them to that.
package rms

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dynp/internal/job"
)

// Replay rebuilds scheduler state from the journal into s, which must
// be a virgin scheduler configured identically (capacity, driver, start
// time) to the one that wrote the journal. It restores the newest
// usable checkpoint and applies the events behind it, falling back one
// checkpoint at a time over corrupted ones, down to a full replay from
// genesis. It returns the number of events since genesis the rebuilt
// state folds in. Replay, then SetJournal, then serve.
func (j *Journal) Replay(s *Scheduler) (int, error) {
	return j.replayInto(s, false)
}

// ReplayGenesis rebuilds scheduler state by replaying every event from
// the genesis segment, verifying the rebuilt state against every
// checkpoint on the way — the audit that proves the checkpoints honest.
// It refuses if segment 0 was compacted away or any record is invalid.
func (j *Journal) ReplayGenesis(s *Scheduler) (int, error) {
	return j.replayInto(s, true)
}

func (j *Journal) replayInto(s *Scheduler, genesis bool) (int, error) {
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return 0, err
	}
	if j.appended {
		j.mu.Unlock()
		return 0, fmt.Errorf("rms: journal: cannot replay after appending")
	}
	header := j.header
	active := j.activeScan
	j.mu.Unlock()

	if header == nil {
		return 0, nil // fresh, empty journal: nothing to replay
	}

	s.mu.Lock()
	attached := s.journal != nil
	virgin := s.nextID == 0 && len(s.done) == 0 &&
		len(s.eng.Waiting()) == 0 && len(s.eng.Running()) == 0
	capacity, name, now := s.eng.Capacity(), s.driver.Name(), s.eng.Now()
	s.mu.Unlock()
	if attached {
		return 0, fmt.Errorf("rms: journal: replay into a scheduler that already journals")
	}
	if !virgin {
		return 0, fmt.Errorf("rms: journal: replay into a non-virgin scheduler")
	}
	if header.Capacity != capacity {
		return 0, fmt.Errorf("rms: journal is for capacity %d, scheduler has %d", header.Capacity, capacity)
	}
	if header.Scheduler != name {
		return 0, fmt.Errorf("rms: journal is for scheduler %q, not %q", header.Scheduler, name)
	}
	if header.Start != now {
		return 0, fmt.Errorf("rms: journal starts at %d, scheduler at %d", header.Start, now)
	}

	rot, err := j.rotatedSegments()
	if err != nil {
		return 0, err
	}
	if genesis {
		return j.replayGenesis(s, rot, active)
	}
	return j.replayLadder(s, rot, active)
}

// replayLadder is the fast path: descend from the active segment to the
// newest segment whose head checkpoint is intact, restore it, apply the
// events above it. In the normal case the active segment itself carries
// the checkpoint and no rotated segment is read at all.
func (j *Journal) replayLadder(s *Scheduler, rot []int, active *segScan) (int, error) {
	rotated := make(map[int]bool, len(rot))
	for _, seq := range rot {
		rotated[seq] = true
	}

	// stack holds the checkpoint-less segments passed on the way down,
	// newest first; their events replay in reverse stack order.
	var stack []*segScan
	finish := func(rung *segScan, base int64) (int, error) {
		applied := 0
		apply := func(events []Event) error {
			for i := range events {
				if err := s.applyEvent(&events[i]); err != nil {
					return err
				}
				applied++
			}
			return nil
		}
		if err := apply(rung.events); err != nil {
			return applied, err
		}
		for i := len(stack) - 1; i >= 0; i-- {
			if err := apply(stack[i].events); err != nil {
				return applied, err
			}
		}
		return int(base) + applied, nil
	}

	cur := active
	for {
		if !cur.clean {
			return 0, fmt.Errorf("rms: journal: segment %d has corrupt event records not covered by any newer checkpoint — unrecoverable (audit with the rotated segments or move the journal aside)", cur.seq)
		}
		if cur.ckpt != nil {
			if err := s.restoreCheckpoint(cur.ckpt); err != nil {
				return 0, err
			}
			return finish(cur, cur.ckpt.Events)
		}
		if cur.seq == 0 {
			// The genesis segment: a virgin scheduler is the rung.
			return finish(cur, 0)
		}
		stack = append(stack, cur)
		want := cur.seq - 1
		if !rotated[want] {
			return 0, fmt.Errorf("rms: journal: segment %d is missing (compacted?) and no newer checkpoint is usable", want)
		}
		sc, err := j.readSegment(want)
		if err != nil {
			return 0, err
		}
		if !sc.headerOK {
			return 0, fmt.Errorf("rms: journal: segment %d has no valid header and no newer checkpoint is usable", want)
		}
		cur = &sc
	}
}

// replayGenesis replays every event from segment 0, verifying state
// against each checkpoint passed. Any defect refuses.
func (j *Journal) replayGenesis(s *Scheduler, rot []int, active *segScan) (int, error) {
	segs := make([]*segScan, 0, len(rot)+1)
	for _, seq := range rot {
		sc, err := j.readSegment(seq)
		if err != nil {
			return 0, err
		}
		segs = append(segs, &sc)
	}
	segs = append(segs, active)
	for i, sc := range segs {
		if sc.seq != i {
			return 0, fmt.Errorf("rms: journal: genesis replay needs every segment; segment %d is missing (compacted?)", i)
		}
		if !sc.headerOK {
			return 0, fmt.Errorf("rms: journal: segment %d has no valid header", i)
		}
		if !sc.clean {
			return 0, fmt.Errorf("rms: journal: segment %d has corrupt records", i)
		}
		if sc.header.Checkpoint && sc.ckpt == nil {
			return 0, fmt.Errorf("rms: journal: segment %d checkpoint record is corrupt", i)
		}
		if g := segs[0].header; sc.header.Capacity != g.Capacity ||
			sc.header.Scheduler != g.Scheduler || sc.header.Start != g.Start {
			return 0, fmt.Errorf("rms: journal: segment %d header disagrees with genesis configuration", i)
		}
	}
	applied := 0
	for _, sc := range segs {
		if sc.ckpt != nil {
			if err := verifyCheckpoint(s, sc.ckpt, int64(applied)); err != nil {
				return applied, err
			}
		}
		for i := range sc.events {
			if err := s.applyEvent(&sc.events[i]); err != nil {
				return applied, err
			}
			applied++
		}
	}
	return applied, nil
}

// verifyCheckpoint compares the replayed state against a journaled
// checkpoint. Observer state (the event trace) carries wall-clock plan
// timings and is excluded; everything else must match byte for byte.
func verifyCheckpoint(s *Scheduler, want *checkpointState, applied int64) error {
	if want.Events != applied {
		return fmt.Errorf("rms: journal: checkpoint claims %d events but replay applied %d", want.Events, applied)
	}
	s.mu.Lock()
	got, err := s.captureCheckpointLocked(applied)
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("rms: journal: checkpoint verification: %w", err)
	}
	got.Observers = nil
	w := *want
	w.Observers = nil
	a, err := json.Marshal(&got)
	if err != nil {
		return fmt.Errorf("rms: journal: checkpoint verification: %w", err)
	}
	b, err := json.Marshal(&w)
	if err != nil {
		return fmt.Errorf("rms: journal: checkpoint verification: %w", err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("rms: journal: replayed state diverges from the checkpoint after %d events — the journal was tampered with or the scheduler is not deterministic", applied)
	}
	return nil
}

// applyEvent re-applies one journaled external event through the public
// mutators. Domain rejections are ignored: rejected events (a Deliver
// batch that failed validation) are journaled too, and replaying the
// rejection — including its clock movement — reproduces the original
// state exactly. Only an event the scheduler cannot even dispatch is an
// error.
func (s *Scheduler) applyEvent(ev *Event) error {
	switch ev.Op {
	case opSubmit:
		_, _ = s.Submit(ev.Width, ev.Estimate)
	case opDone:
		_, _ = s.Complete(job.ID(ev.ID))
	case opCancel:
		_ = s.Cancel(job.ID(ev.ID))
	case opTick:
		_ = s.Advance(ev.To)
	case opFail:
		_ = s.Fail(ev.Procs)
	case opRestore:
		_ = s.Restore(ev.Procs)
	case opDeliver:
		ids := make([]job.ID, len(ev.Completions))
		for i, id := range ev.Completions {
			ids[i] = job.ID(id)
		}
		_, _ = s.Deliver(ev.To, ids, ev.Subs)
	default:
		return fmt.Errorf("rms: journal: unknown op %q", ev.Op)
	}
	return nil
}
