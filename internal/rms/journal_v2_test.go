// Tests for the version-2 journal: checkpoint rotation, the recovery
// ladder, compaction, continuation repair after a crashed rotation, and
// the sticky-error policy under injected disk faults.
package rms

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynp/internal/vfs"
)

// corruptSegmentRecord overwrites record n (0-based line) of the given
// segment file with bytes that fail the checksum.
func corruptSegmentRecord(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if n >= len(lines) {
		t.Fatalf("segment %s has %d records, wanted to corrupt %d", path, len(lines), n)
	}
	lines[n] = strings.Repeat("x", len(lines[n])-1) + "\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCheckpointRestart: a restart from the newest checkpoint and
// a full genesis replay must rebuild byte-identical externally visible
// state, and the fast path must not need the full history.
func TestJournalCheckpointRestart(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 5)
	driveRandomEvents(t, live, 0xbeef, 120)
	want := fingerprint(t, live)
	if j.Segment() < 2 {
		t.Fatalf("only %d rotations after 120 events with checkpoints every 5", j.Segment())
	}
	total := j.Events()
	j.Close()

	fast, jf, n, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if int64(n) != total {
		t.Errorf("fast replay accounts for %d events, journal holds %d", n, total)
	}
	if got := fingerprint(t, fast); got != want {
		t.Errorf("checkpoint restart diverges\nlive: %s\nfast: %s", want, got)
	}

	jg, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jg.Close()
	genesis, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jg.ReplayGenesis(genesis); err != nil {
		t.Fatalf("genesis audit: %v", err)
	}
	if got := fingerprint(t, genesis); got != want {
		t.Errorf("genesis replay diverges\nlive:    %s\ngenesis: %s", want, got)
	}

	// Both restarted schedulers must behave identically from here on.
	driveRandomEvents(t, fast, 0xf00d, 40)
	driveRandomEvents(t, genesis, 0xf00d, 40)
	if f, g := fingerprint(t, fast), fingerprint(t, genesis); f != g {
		t.Errorf("restored schedulers diverge on identical futures\nfast:    %s\ngenesis: %s", f, g)
	}
}

// TestJournalLadderFallback: a corrupted checkpoint record must not lose
// the journal — replay falls back one checkpoint at a time, and with
// every checkpoint destroyed, all the way to genesis, rebuilding the
// same state each time.
func TestJournalLadderFallback(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 5)
	driveRandomEvents(t, live, 0xabc, 60)
	want := fingerprint(t, live)
	top := j.Segment()
	if top < 3 {
		t.Fatalf("only %d segments", top)
	}
	j.Close()

	// Destroy the newest checkpoint (record 1 of the active segment).
	corruptSegmentRecord(t, path, 1)
	s1, j1, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatalf("replay with newest checkpoint corrupt: %v", err)
	}
	j1.Close()
	if got := fingerprint(t, s1); got != want {
		t.Errorf("one-rung fallback diverges\nlive: %s\ngot:  %s", want, got)
	}

	// Destroy every checkpoint: only genesis replay remains, and it must
	// still rebuild the identical state.
	for seq := 1; seq < top; seq++ {
		corruptSegmentRecord(t, path+"."+itoa(seq), 1)
	}
	s2, j2, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatalf("replay with all checkpoints corrupt: %v", err)
	}
	j2.Close()
	if got := fingerprint(t, s2); got != want {
		t.Errorf("genesis fallback diverges\nlive: %s\ngot:  %s", want, got)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestJournalCompact: compaction retires segments the newest durable
// checkpoint makes redundant — fast replay keeps working, the genesis
// audit honestly refuses.
func TestJournalCompact(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 5)
	driveRandomEvents(t, live, 0x777, 80)
	want := fingerprint(t, live)
	top := j.Segment()
	if top < 4 {
		t.Fatalf("only %d segments", top)
	}
	removed, err := j.Compact(1)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	if _, err := os.Stat(path + ".0"); !os.IsNotExist(err) {
		t.Error("genesis segment survived Compact(1)")
	}
	j.Close()

	fast, jf, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatalf("replay after compaction: %v", err)
	}
	jf.Close()
	if got := fingerprint(t, fast); got != want {
		t.Errorf("post-compaction replay diverges\nlive: %s\ngot:  %s", want, got)
	}

	jg, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jg.Close()
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jg.ReplayGenesis(s); err == nil {
		t.Error("genesis audit succeeded without the genesis segment")
	} else if !strings.Contains(err.Error(), "compacted") {
		t.Errorf("error %q does not mention compaction", err)
	}
}

// TestJournalAutoCompact: with SetKeep, every checkpoint rotation prunes
// the history down to the retention bound automatically.
func TestJournalAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSnapshotEvery(5)
	j.SetKeep(2)
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	driveRandomEvents(t, s, 0x222, 80)
	want := fingerprint(t, s)
	rot, err := j.rotatedSegments()
	if err != nil {
		t.Fatal(err)
	}
	// Everything below the newest checkpoint is pruned to 2 segments; the
	// segment carrying that checkpoint (and any later ones) also remain.
	if len(rot) > 3 {
		t.Errorf("%d rotated segments remain with keep=2: %v", len(rot), rot)
	}
	j.Close()
	fast, jf, _, err := replayFresh(t, path, 8)
	if err != nil {
		t.Fatalf("replay after auto-compaction: %v", err)
	}
	jf.Close()
	if got := fingerprint(t, fast); got != want {
		t.Errorf("auto-compacted replay diverges\nlive: %s\ngot:  %s", want, got)
	}
}

// TestJournalContinuationAfterCrashedRotation: a crash between sealing
// the old segment and writing the new one leaves an empty (or torn)
// active file; reopening must self-heal into a continuation segment and
// replay losslessly via the ladder.
func TestJournalContinuationAfterCrashedRotation(t *testing.T) {
	live, j, path := journaledScheduler(t, 8, 5)
	driveRandomEvents(t, live, 0x919, 60)
	want := fingerprint(t, live)
	top := j.Segment()
	j.Close()

	for name, damage := range map[string]func(){
		"missing": func() { os.Remove(path) },
		"empty":   func() { os.WriteFile(path, nil, 0o644) },
		"torn":    func() { os.WriteFile(path, []byte("xxxxxxxx {\"torn\":"), 0o644) },
	} {
		// Simulate the crash window: the rotation's rename happened but
		// the new active segment never made it.
		saved, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(path, path+"."+itoa(top)); err != nil {
			t.Fatal(err)
		}
		damage()

		fast, j2, _, err := replayFresh(t, path, 8)
		if err != nil {
			t.Fatalf("%s active segment: %v", name, err)
		}
		if got := fingerprint(t, fast); got != want {
			t.Errorf("%s active segment: continuation replay diverges\nlive: %s\ngot:  %s", name, want, got)
		}
		if got := j2.Segment(); got != top+1 {
			t.Errorf("%s active segment: continuation got sequence %d, want %d", name, got, top+1)
		}

		// The continuation must journal further events durably.
		if _, err := fast.Submit(1, 5); err != nil {
			t.Errorf("%s active segment: submit on continuation: %v", name, err)
		}
		j2.Close()

		// Restore the original layout for the next damage mode.
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(path+"."+itoa(top), path); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, saved, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalStickyFsync is the regression test for the swallowed
// checkpoint fsync: a failed sync — during a checkpoint rotation or an
// explicit Sync — must permanently fail the journal, and with it every
// further mutation, instead of being silently ignored.
func TestJournalStickyFsync(t *testing.T) {
	faulty := vfs.NewFaulty(vfs.OS, vfs.FaultConfig{Seed: 1, SyncFail: 1})
	path := filepath.Join(t.TempDir(), "events.journal")
	j, err := OpenJournalFS(faulty, path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSnapshotEvery(3)
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	if s.JournalErr() != nil {
		t.Fatalf("journal failed before any sync: %v", s.JournalErr())
	}

	// Drive events until a checkpoint rotation attempts the doomed sync.
	var failed error
	for i := 0; i < 10 && failed == nil; i++ {
		_, err := s.Submit(1, 10)
		failed = s.JournalErr()
		if failed == nil && err != nil {
			t.Fatal(err)
		}
	}
	if failed == nil {
		t.Fatal("checkpoint rotation swallowed the fsync failure")
	}
	if !strings.Contains(failed.Error(), "sync") {
		t.Errorf("sticky error %q does not mention sync", failed)
	}
	// Sticky: every further mutation is refused.
	if _, err := s.Submit(1, 10); err == nil {
		t.Error("mutation accepted on a journal that cannot sync")
	}
	if err := j.Sync(); err == nil {
		t.Error("Sync succeeded on a failed journal")
	}
	j.Close()
}

// TestJournalFaultyWrites: under injected write failures the journal
// turns itself off at the first failure and the scheduler refuses the
// mutation, leaving published state consistent.
func TestJournalFaultyWrites(t *testing.T) {
	faulty := vfs.NewFaulty(vfs.OS, vfs.FaultConfig{Seed: 7, WriteFail: 0.2})
	path := filepath.Join(t.TempDir(), "events.journal")
	j, err := OpenJournalFS(faulty, path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(8, newDynP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetJournal(j); err != nil {
		// The header write itself may be the first casualty.
		return
	}
	accepted := 0
	for i := 0; i < 200; i++ {
		if _, err := s.Submit(1, 10); err != nil {
			break
		}
		accepted++
	}
	if s.JournalErr() == nil {
		t.Fatal("200 writes at 20% failure rate all passed")
	}
	// Everything acknowledged before the failure is real state.
	st := s.Status()
	if got := len(st.Waiting) + len(st.Running); got != accepted {
		t.Errorf("%d jobs for %d acknowledged submissions", got, accepted)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
	j.Close()
}
