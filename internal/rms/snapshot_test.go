package rms

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

// TestReadsBypassSchedulingLock is the direct proof of the snapshot read
// model: with the scheduling mutex held — as it is for the whole of a
// replanning event — Status, Report, Finished and Now must still return,
// because they serve from the atomically published snapshot instead of
// the lock. Under the retired mutex-based readers this test deadlocks
// until the watchdog fires.
func TestReadsBypassSchedulingLock(t *testing.T) {
	s, err := New(16, sim.NewDynP(core.Advanced{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(4, 100); err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(chan Status, 1)
	go func() {
		st := s.Status()
		_ = s.Report()
		_ = s.Finished()
		_ = s.Now()
		done <- st
	}()
	select {
	case st := <-done:
		if len(st.Running) != 1 || st.UsedProcs != 4 {
			t.Fatalf("snapshot status lost the running job: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Status/Report/Finished/Now blocked on the scheduling mutex")
	}
}

// TestConcurrentReadersWhileScheduling floods the scheduler with status,
// report and finished readers while 1000 jobs are submitted, scheduled
// and reaped. Run under the race detector (make race) it proves the
// snapshot handoff is race-free; the assertions pin the reader-facing
// guarantees: every observed clock and finished count is monotone per
// reader, no observed state is incoherent, and no single read takes
// anywhere near a scheduling event's latency — readers never wait for
// the scheduling lock.
func TestConcurrentReadersWhileScheduling(t *testing.T) {
	const (
		jobs     = 1000
		batch    = 4
		capacity = 64
		readers  = 4
	)
	s, err := New(capacity, sim.NewDynP(core.Preferred{Policy: policy.SJF}), 0)
	if err != nil {
		t.Fatal(err)
	}

	var (
		stop    atomic.Bool
		maxRead atomic.Int64 // worst single read latency, ns
		reads   atomic.Int64
		wg      sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			var lastNow int64
			var lastJobs int
			for !stop.Load() {
				begin := time.Now()
				switch kind % 3 {
				case 0:
					st := s.Status()
					if st.Now < lastNow {
						t.Errorf("status clock went backwards: %d after %d", st.Now, lastNow)
						return
					}
					lastNow = st.Now
					if st.UsedProcs > st.Capacity || len(st.Waiting)+len(st.Running) > jobs {
						t.Errorf("incoherent status: %+v", st)
						return
					}
				case 1:
					rep := s.Report()
					if rep.Jobs < lastJobs {
						t.Errorf("finished count went backwards: %d after %d", rep.Jobs, lastJobs)
						return
					}
					lastJobs = rep.Jobs
					if rep.Jobs > 0 && rep.SLDwA < 1 {
						t.Errorf("impossible SLDwA %f over %d jobs", rep.SLDwA, rep.Jobs)
						return
					}
				case 2:
					fin := s.Finished()
					if len(fin) < lastJobs {
						t.Errorf("finished list shrank: %d after %d", len(fin), lastJobs)
						return
					}
					lastJobs = len(fin)
				}
				if d := time.Since(begin).Nanoseconds(); d > maxRead.Load() {
					maxRead.Store(d)
				}
				reads.Add(1)
			}
		}(r)
	}

	// The writer: submit 1000 jobs in small batches, advancing the clock
	// so estimates expire and the machine churns through the backlog.
	r := rng.New(11)
	now := int64(0)
	for submitted := 0; submitted < jobs; {
		subs := make([]Submission, 0, batch)
		for b := 0; b < batch && submitted+len(subs) < jobs; b++ {
			subs = append(subs, Submission{Width: 1 + r.Intn(8), Estimate: int64(50 + r.Intn(500))})
		}
		now += int64(10 + r.Intn(90))
		if _, err := s.Deliver(now, nil, subs); err != nil {
			t.Fatal(err)
		}
		submitted += len(subs)
	}
	// Drain: run the clock until everything finished.
	for i := 0; i < 10000 && s.Report().Jobs < jobs; i++ {
		now += 500
		if err := s.Advance(now); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := s.Report().Jobs; got != jobs {
		t.Fatalf("%d of %d jobs finished", got, jobs)
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress while the scheduler ran")
	}
	// A snapshot read is two atomic loads and a slice copy — microseconds.
	// The bound is three orders of magnitude above that so slow race-mode
	// CI machines pass, yet far below the seconds a reader stuck behind
	// the scheduling mutex for a 1000-job drain would take.
	if worst := time.Duration(maxRead.Load()); worst > time.Second {
		t.Fatalf("worst read latency %v: readers are contending with the scheduler", worst)
	}
	t.Logf("%d reads, worst latency %v", reads.Load(), time.Duration(maxRead.Load()))
}
