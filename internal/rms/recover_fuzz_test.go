// FuzzJournalRecover throws arbitrary bytes at the journal recovery
// path: whatever is on disk, opening and replaying must either recover a
// consistent scheduler or refuse with an error — never panic, never
// resurrect phantom jobs, never present the same job twice.
package rms

import (
	"os"
	"path/filepath"
	"testing"

	"dynp/internal/job"
)

// fuzzSeedJournal drives a journaled scheduler through a short mixed
// history and returns the resulting active segment's bytes, giving the
// fuzzer a structurally valid journal to mutate. A small snapshotEvery
// produces a checkpoint-headed segment, exercising checkpoint restore.
func fuzzSeedJournal(f *testing.F, snapshotEvery int) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "journal")
	j, err := OpenJournal(path)
	if err != nil {
		f.Fatal(err)
	}
	j.SetSnapshotEvery(snapshotEvery)
	s, err := New(8, newDynP(), 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.SetJournal(j); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(1+i%4, int64(20+7*i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Advance(10); err != nil {
		f.Fatal(err)
	}
	if running := s.Status().Running; len(running) > 0 {
		if _, err := s.Complete(running[0].ID); err != nil {
			f.Fatal(err)
		}
	}
	if waiting := s.Status().Waiting; len(waiting) > 0 {
		if err := s.Cancel(waiting[len(waiting)-1].ID); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := s.Deliver(30, nil, []Submission{{Width: 2, Estimate: 40}}); err != nil {
		f.Fatal(err)
	}
	if err := s.Advance(200); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func FuzzJournalRecover(f *testing.F) {
	plain := fuzzSeedJournal(f, 0)  // genesis segment, no checkpoint
	ckpted := fuzzSeedJournal(f, 4) // rotated: checkpoint-headed active segment
	f.Add(plain)
	f.Add(ckpted)
	f.Add(plain[:len(plain)-11])                // torn tail
	f.Add([]byte{})                             // empty file
	f.Add([]byte("not a journal\n"))            // foreign file
	f.Add([]byte("00000000 {\"header\":{}}\n")) // bad CRC on a header
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path)
		if err != nil {
			return // clean refusal is a correct outcome
		}
		defer j.Close()
		s, err := New(8, newDynP(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Replay(s); err != nil {
			return // clean refusal is a correct outcome
		}

		// Recovery succeeded: the scheduler must be internally consistent
		// and present every job at most once across all lifecycle views.
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("recovered scheduler violates invariants: %v", err)
		}
		seen := make(map[job.ID]bool)
		st := s.Status()
		for _, view := range [][]JobInfo{st.Waiting, st.Running, s.Finished()} {
			for _, info := range view {
				if seen[info.ID] {
					t.Fatalf("job %d recovered into two lifecycle states", info.ID)
				}
				seen[info.ID] = true
			}
		}

		// A journal that recovered must also accept new appends: attach it
		// and submit. Only a journal-layer failure is a bug; the real
		// filesystem underneath should not fail here.
		if err := s.SetJournal(j); err != nil {
			t.Fatalf("recovered journal rejected by scheduler: %v", err)
		}
		if _, err := s.Submit(1, 10); err != nil {
			t.Fatalf("submit after recovery: %v", err)
		}
		if err := j.Sync(); err != nil {
			t.Fatalf("sync after recovery: %v", err)
		}
	})
}
