package rms

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"dynp/internal/job"
)

// Client is a typed client for the Server protocol. It is not safe for
// concurrent use; open one client per goroutine (the server side handles
// any number of connections).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a dynpd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rms: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("rms: send: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Response{}, fmt.Errorf("rms: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("rms: decode: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("rms: server: %s", resp.Error)
	}
	return resp, nil
}

// Submit submits a job and returns its info (state, planned start).
func (c *Client) Submit(width int, estimate int64) (JobInfo, error) {
	resp, err := c.call(Request{Op: "submit", Width: width, Estimate: estimate})
	if err != nil {
		return JobInfo{}, err
	}
	if resp.Job == nil {
		return JobInfo{}, fmt.Errorf("rms: submit: empty response")
	}
	return *resp.Job, nil
}

// Done reports a running job's completion.
func (c *Client) Done(id job.ID) (JobInfo, error) {
	resp, err := c.call(Request{Op: "done", ID: int64(id)})
	if err != nil {
		return JobInfo{}, err
	}
	return *resp.Job, nil
}

// Cancel removes a waiting job.
func (c *Client) Cancel(id job.ID) error {
	_, err := c.call(Request{Op: "cancel", ID: int64(id)})
	return err
}

// Job queries one job.
func (c *Client) Job(id job.ID) (JobInfo, error) {
	resp, err := c.call(Request{Op: "job", ID: int64(id)})
	if err != nil {
		return JobInfo{}, err
	}
	return *resp.Job, nil
}

// Status queries the system snapshot.
func (c *Client) Status() (Status, error) {
	resp, err := c.call(Request{Op: "status"})
	if err != nil {
		return Status{}, err
	}
	if resp.Status == nil {
		return Status{}, fmt.Errorf("rms: status: empty response")
	}
	return *resp.Status, nil
}

// Finished lists completed and killed jobs.
func (c *Client) Finished() ([]JobInfo, error) {
	resp, err := c.call(Request{Op: "finished"})
	if err != nil {
		return nil, err
	}
	return resp.Finished, nil
}

// Report fetches the server's metrics over finished jobs.
func (c *Client) Report() (Report, error) {
	resp, err := c.call(Request{Op: "report"})
	if err != nil {
		return Report{}, err
	}
	if resp.Report == nil {
		return Report{}, fmt.Errorf("rms: report: empty response")
	}
	return *resp.Report, nil
}

// Tick advances the server's virtual clock (virtual mode only).
func (c *Client) Tick(to int64) (int64, error) {
	resp, err := c.call(Request{Op: "tick", To: to})
	if err != nil {
		return 0, err
	}
	return resp.Now, nil
}
