package rms

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"dynp/internal/job"
	"dynp/internal/rng"
)

// ServerError is a deterministic server-side rejection ({"ok":false}).
// Busy marks overload shedding: the request was not judged on its
// merits and is safe to retry after backoff — the client does so
// automatically for idempotent calls.
type ServerError struct {
	Msg  string
	Busy bool
}

func (e *ServerError) Error() string { return "rms: server: " + e.Msg }

// Default reliability parameters for ClientOptions zero values.
const (
	DefaultCallTimeout = 10 * time.Second
	DefaultRetries     = 3
	DefaultBackoff     = 50 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
)

// ClientOptions configure the client's behaviour on an unreliable
// network. The zero value means "use the defaults above".
type ClientOptions struct {
	// Timeout is the per-call deadline covering send and receive.
	// Negative disables deadlines entirely.
	Timeout time.Duration
	// Retries is the number of extra attempts for idempotent calls
	// (Status, Job, Finished, Report) after a network failure; each
	// attempt reconnects first if the connection died. Mutating calls
	// (Submit, Done, Cancel, Tick, Fail, Restore) are never retried
	// automatically — a lost response leaves the outcome unknown.
	// Negative disables retries.
	Retries int
	// Backoff is the initial delay before a retry; it doubles per
	// attempt up to MaxBackoff, with deterministic jitter drawn from
	// Seed in [delay/2, delay].
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed seeds the jitter stream, making retry timing reproducible.
	Seed uint64
	// Dialer replaces the default TCP dialer; fault-injection harnesses
	// (internal/rms/chaos) and tests hook in here.
	Dialer func() (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout == 0 {
		o.Timeout = DefaultCallTimeout
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	return o
}

// Client is a typed client for the Server protocol. It is not safe for
// concurrent use; open one client per goroutine (the server side handles
// any number of connections). On network failures the client closes the
// poisoned connection and reconnects — transparently, with exponential
// backoff, for idempotent calls; on the next call otherwise.
type Client struct {
	opts   ClientOptions
	dial   func() (net.Conn, error)
	jitter *rng.Stream
	sleep  func(time.Duration) // test hook; time.Sleep

	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a dynpd server with default reliability options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions connects to a dynpd server. The initial connection is
// attempted once, eagerly, so configuration errors surface immediately;
// reconnection and retries apply to later calls.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	dial := opts.Dialer
	if dial == nil {
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	c := &Client{
		opts:   opts,
		dial:   dial,
		jitter: newClientJitter(opts.Seed),
		sleep:  time.Sleep,
	}
	if err := c.connect(); err != nil {
		return nil, fmt.Errorf("rms: dial %s: %w", addr, err)
	}
	return c, nil
}

// newClientJitter derives the deterministic backoff-jitter stream for a
// given seed.
func newClientJitter(seed uint64) *rng.Stream {
	return rng.New(seed).Derive(0x636c69656e74) // "client"
}

// connect establishes a fresh connection, replacing any previous one.
func (c *Client) connect() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := c.dial()
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.enc = json.NewEncoder(conn)
	return nil
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// backoffDelay returns the jittered exponential backoff before retry
// attempt i (0-based).
func (c *Client) backoffDelay(i int) time.Duration {
	d := c.opts.Backoff
	for ; i > 0 && d < c.opts.MaxBackoff; i-- {
		d *= 2
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	half := int64(d / 2)
	if half < 1 {
		return d
	}
	return time.Duration(half + c.jitter.Int63n(half+1))
}

// roundTrip performs one request/response exchange on the current
// connection under the per-call deadline.
func (c *Client) roundTrip(req Request) (Response, error) {
	if c.opts.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("rms: send: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Response{}, fmt.Errorf("rms: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("rms: decode: %w", err)
	}
	return resp, nil
}

// call executes one protocol request. Idempotent requests survive
// network faults: the client reconnects and retries with backoff.
// Server-side rejections ({"ok":false}) are deterministic and are never
// retried.
func (c *Client) call(req Request, idempotent bool) (Response, error) {
	attempts := 1
	if idempotent {
		attempts += c.opts.Retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.sleep(c.backoffDelay(attempt - 1))
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = fmt.Errorf("rms: reconnect: %w", err)
				if !idempotent {
					return Response{}, lastErr
				}
				continue
			}
		}
		resp, err := c.roundTrip(req)
		if err == nil {
			if !resp.OK {
				serr := &ServerError{Msg: resp.Error, Busy: resp.Busy}
				if resp.Busy && idempotent {
					// Overload shedding, not a verdict: back off and
					// retry. The connection itself is healthy.
					lastErr = serr
					continue
				}
				return resp, serr
			}
			return resp, nil
		}
		// The stream is poisoned (a partial exchange may be buffered);
		// drop the connection so the next attempt starts clean.
		lastErr = err
		c.conn.Close()
		c.conn = nil
		if !idempotent {
			break
		}
	}
	return Response{}, lastErr
}

// Submit submits a job and returns its info (state, planned start).
func (c *Client) Submit(width int, estimate int64) (JobInfo, error) {
	resp, err := c.call(Request{Op: "submit", Width: width, Estimate: estimate}, false)
	if err != nil {
		return JobInfo{}, err
	}
	if resp.Job == nil {
		return JobInfo{}, fmt.Errorf("rms: submit: empty response")
	}
	return *resp.Job, nil
}

// Done reports a running job's completion.
func (c *Client) Done(id job.ID) (JobInfo, error) {
	resp, err := c.call(Request{Op: "done", ID: int64(id)}, false)
	if err != nil {
		return JobInfo{}, err
	}
	if resp.Job == nil {
		return JobInfo{}, fmt.Errorf("rms: done: empty response")
	}
	return *resp.Job, nil
}

// Cancel removes a waiting job.
func (c *Client) Cancel(id job.ID) error {
	_, err := c.call(Request{Op: "cancel", ID: int64(id)}, false)
	return err
}

// Job queries one job. Idempotent: retried on network failures.
func (c *Client) Job(id job.ID) (JobInfo, error) {
	resp, err := c.call(Request{Op: "job", ID: int64(id)}, true)
	if err != nil {
		return JobInfo{}, err
	}
	if resp.Job == nil {
		return JobInfo{}, fmt.Errorf("rms: job: empty response")
	}
	return *resp.Job, nil
}

// Status queries the system snapshot. Idempotent: retried on network
// failures.
func (c *Client) Status() (Status, error) {
	resp, err := c.call(Request{Op: "status"}, true)
	if err != nil {
		return Status{}, err
	}
	if resp.Status == nil {
		return Status{}, fmt.Errorf("rms: status: empty response")
	}
	return *resp.Status, nil
}

// Finished lists completed, killed and failed jobs. Idempotent: retried
// on network failures.
func (c *Client) Finished() ([]JobInfo, error) {
	resp, err := c.call(Request{Op: "finished"}, true)
	if err != nil {
		return nil, err
	}
	return resp.Finished, nil
}

// Report fetches the server's metrics over finished jobs. Idempotent:
// retried on network failures.
func (c *Client) Report() (Report, error) {
	resp, err := c.call(Request{Op: "report"}, true)
	if err != nil {
		return Report{}, err
	}
	if resp.Report == nil {
		return Report{}, fmt.Errorf("rms: report: empty response")
	}
	return *resp.Report, nil
}

// Tick advances the server's virtual clock (virtual mode only).
func (c *Client) Tick(to int64) (int64, error) {
	resp, err := c.call(Request{Op: "tick", To: to}, false)
	if err != nil {
		return 0, err
	}
	return resp.Now, nil
}

// Fail takes procs processors out of service on the server (operator
// op); it returns the resulting status.
func (c *Client) Fail(procs int) (Status, error) {
	resp, err := c.call(Request{Op: "fail", Procs: procs}, false)
	if err != nil {
		return Status{}, err
	}
	if resp.Status == nil {
		return Status{}, fmt.Errorf("rms: fail: empty response")
	}
	return *resp.Status, nil
}

// Restore returns failed processors to service on the server; it
// returns the resulting status.
func (c *Client) Restore(procs int) (Status, error) {
	resp, err := c.call(Request{Op: "restore", Procs: procs}, false)
	if err != nil {
		return Status{}, err
	}
	if resp.Status == nil {
		return Status{}, fmt.Errorf("rms: restore: empty response")
	}
	return *resp.Status, nil
}

// Deliver applies an atomic event batch on the server (virtual mode
// only): move the clock to t, complete the given jobs, submit subs, one
// replanning step. It returns the submissions' infos, in order.
func (c *Client) Deliver(t int64, completions []job.ID, subs []Submission) ([]JobInfo, error) {
	ids := make([]int64, len(completions))
	for i, id := range completions {
		ids[i] = int64(id)
	}
	resp, err := c.call(Request{Op: "deliver", To: t, Completions: ids, Subs: subs}, false)
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Quote asks the server's digital twin when count hypothetical jobs of
// the given width and estimate would start if submitted now; it returns
// one Quote per replica (count 0 means 1). Idempotent — a quote changes
// nothing on the server — so it is retried on network failures and,
// with backoff, on busy shed responses.
func (c *Client) Quote(width int, estimate int64, count int) ([]Quote, error) {
	resp, err := c.call(Request{Op: "quote", Width: width, Estimate: estimate, Count: count}, true)
	if err != nil {
		return nil, err
	}
	if len(resp.Quotes) == 0 {
		return nil, fmt.Errorf("rms: quote: empty response")
	}
	return resp.Quotes, nil
}

// Health fetches the server's health detail. It is served even while
// the server is starting up or its journal has failed. Idempotent:
// retried on network failures.
func (c *Client) Health() (HealthInfo, error) {
	resp, err := c.call(Request{Op: "health"}, true)
	if err != nil {
		return HealthInfo{}, err
	}
	if resp.Health == nil {
		return HealthInfo{}, fmt.Errorf("rms: health: empty response")
	}
	return *resp.Health, nil
}

// Ready asks whether the server is ready to take load. A reachable
// server that answers "not ready" yields ok false with its reason and a
// nil error; only transport failures return an error.
func (c *Client) Ready() (bool, string, error) {
	resp, err := c.call(Request{Op: "ready"}, true)
	if err != nil {
		var serr *ServerError
		if errors.As(err, &serr) {
			reason := serr.Msg
			if resp.Health != nil && resp.Health.Reason != "" {
				reason = resp.Health.Reason
			}
			return false, reason, nil
		}
		return false, "", err
	}
	return true, "", nil
}

// Trace fetches the last n engine transitions from the server's event
// trace (0 = all buffered). Idempotent: retried on network failures.
func (c *Client) Trace(n int) ([]TraceEvent, error) {
	resp, err := c.call(Request{Op: "trace", N: n}, true)
	if err != nil {
		return nil, err
	}
	return resp.Trace, nil
}

// Metrics fetches the server's lifetime engine metrics. Idempotent:
// retried on network failures.
func (c *Client) Metrics() (EngineMetrics, error) {
	resp, err := c.call(Request{Op: "metrics"}, true)
	if err != nil {
		return EngineMetrics{}, err
	}
	if resp.Metrics == nil {
		return EngineMetrics{}, fmt.Errorf("rms: metrics: empty response")
	}
	return *resp.Metrics, nil
}

// Policies fetches the server's registered policy names and family
// templates. Idempotent: retried on network failures.
func (c *Client) Policies() ([]string, error) {
	resp, err := c.call(Request{Op: "policies"}, true)
	if err != nil {
		return nil, err
	}
	return resp.Policies, nil
}

// Deciders fetches the server's registered decider names and family
// templates. Idempotent: retried on network failures.
func (c *Client) Deciders() ([]string, error) {
	resp, err := c.call(Request{Op: "deciders"}, true)
	if err != nil {
		return nil, err
	}
	return resp.Deciders, nil
}
