// The digital-twin quote service: "when will my job start?" answered at
// high QPS without touching live scheduling state.
//
// A quote forks the scheduler's current state into a pooled twin — a
// fresh engine + driver seeded from the lock-free read snapshot — then
// injects the hypothetical job(s) and runs the twin forward through
// kills, launches and self-tuning policy switches until every
// hypothetical has started. The twin never shares mutable state with
// the live engine: jobs are rebuilt from the snapshot's JobInfos
// (exactly as checkpoint restore does), and the tuner's decision state
// travels as the serialized bytes the snapshot captured under the
// scheduling lock. Quotes therefore read like any other snapshot
// consumer — a storm of them never delays a mutator — and the twin's
// forward run is honest: on a quiescent scheduler the quoted start
// equals the realized start of the same job submitted for real (see
// TestQuoteHonesty and DESIGN.md §15 for the argument).
package rms

import (
	"fmt"
	"sort"

	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/sim"
)

// MaxQuoteBatch bounds count in a single quote: one twin run simulates
// at most this many hypothetical replicas.
const MaxQuoteBatch = 1024

// Quote is the predicted schedule of one hypothetical job under the
// scheduler's current state and active policy. Start, Finish and Wait
// are NeverStart when the job can never be placed at the current
// effective capacity. Finish is the planning bound start+estimate — the
// instant the RMS would kill the job, and the latest it can end.
type Quote struct {
	Width    int   `json:"width"`
	Estimate int64 `json:"estimate"`
	Start    int64 `json:"start"`
	Finish   int64 `json:"finish"`
	Wait     int64 `json:"wait"`
}

// twin is one reusable digital-twin scratch state. The engine and
// driver are rebuilt per quote (a fresh driver restored from snapshot
// bytes is the only construction proven byte-identical to the live
// tuner's decisions); what the pool recycles is the O(live jobs)
// memory: the job arena the twin engine points into, the queue slices,
// and the started-time map. Release discipline mirrors plan.Schedule:
// exactly one release per acquire, double release panics.
type twin struct {
	jobs     []job.Job // arena backing every *job.Job handed to the twin engine
	waiting  []*job.Job
	running  []plan.Running
	started  map[job.ID]int64 // hypothetical job ID -> realized twin start
	released bool
}

// acquireTwin takes a twin from the pool (or builds one) and counts it
// live for leak detection.
func (s *Scheduler) acquireTwin() *twin {
	s.twinsLive.Add(1)
	if tw, ok := s.twinPool.Get().(*twin); ok {
		tw.released = false
		return tw
	}
	return &twin{started: make(map[job.ID]int64)}
}

// release returns the twin's scratch state to the pool. Exactly once
// per acquire: releasing twice would let two concurrent quotes share an
// arena, so it panics loudly instead, like plan.Schedule.Release.
func (tw *twin) release(s *Scheduler) {
	if tw.released {
		panic("rms: quote twin released twice")
	}
	tw.released = true
	tw.jobs = tw.jobs[:0]
	tw.waiting = tw.waiting[:0]
	tw.running = tw.running[:0]
	for id := range tw.started {
		delete(tw.started, id)
	}
	s.twinPool.Put(tw)
	s.twinsLive.Add(-1)
}

// EnableQuotes switches the quote service on: newDriver must build a
// fresh driver of the same configuration as the live one (dynpd passes
// its scheduler spec's factory), so a twin restored from the live
// tuner's serialized state makes identical decisions. From the next
// publish on, every read snapshot additionally captures the driver's
// decision state; schedulers that never enable quotes keep paying
// nothing for it.
func (s *Scheduler) EnableQuotes(newDriver func() sim.Driver) error {
	if newDriver == nil {
		return fmt.Errorf("rms: EnableQuotes: nil driver factory")
	}
	probe := newDriver()
	if probe == nil {
		return fmt.Errorf("rms: EnableQuotes: driver factory returned nil")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if probe.Name() != s.driver.Name() {
		return fmt.Errorf("rms: EnableQuotes: factory builds %q, live scheduler is %q",
			probe.Name(), s.driver.Name())
	}
	s.quoteNew = newDriver
	s.quotesOn.Store(true)
	return nil
}

// SetQuoteSpeculation toggles speculative cross-event planning inside
// quote twins (default off, like everything speculative in the online
// RMS — see core.SelfTuner.SetSpeculation). A twin is the one online
// component whose future IS predictable: every twin job runs to its
// estimate, so each estimate expiry — and with it the inputs of the next
// planning step — is known before the twin advances, and the forward run
// overlaps the next step's what-if builds with the current one's
// bookkeeping (sim.SpeculateNextKills). Quotes are byte-identical either
// way; only dynP-driven twins speculate, other drivers ignore the knob.
func (s *Scheduler) SetQuoteSpeculation(on bool) { s.quoteSpec.Store(on) }

// Quote predicts when a hypothetical job (width processors, estimate
// seconds) would start, finish and wait if submitted right now, without
// submitting it and without perturbing live scheduling. count > 1 asks
// for the schedule of count replicas submitted back to back; the i-th
// returned Quote is the i-th replica's. A job wider than the current
// effective capacity gets the NeverStart sentinel in all three fields.
//
// Quote never takes the scheduling lock: it forks the latest read
// snapshot into a pooled digital twin and runs the twin forward under
// the live tuner's decision state. It is safe for any number of
// concurrent callers.
func (s *Scheduler) Quote(width int, estimate int64, count int) ([]Quote, error) {
	if !s.quotesOn.Load() {
		return nil, fmt.Errorf("rms: quotes not enabled on this scheduler")
	}
	if count == 0 {
		count = 1
	}
	if count < 1 || count > MaxQuoteBatch {
		return nil, fmt.Errorf("rms: quote count %d out of [1, %d]", count, MaxQuoteBatch)
	}
	snap := s.snap.Load()
	st := &snap.status
	if width < 1 || width > st.Capacity {
		return nil, fmt.Errorf("rms: width %d out of [1, %d] (effective capacity now %d)",
			width, st.Capacity, st.Capacity-st.FailedProcs)
	}
	if estimate < 1 {
		return nil, fmt.Errorf("rms: estimate %d < 1", estimate)
	}
	// A failed journal refuses every mutation, so a quote would predict a
	// future no submission can reach; refuse it for the same reason.
	if err := s.JournalErr(); err != nil {
		return nil, fmt.Errorf("rms: quotes unavailable: %w", err)
	}
	if snap.driverStateErr != nil {
		return nil, fmt.Errorf("rms: quote: capturing driver state: %w", snap.driverStateErr)
	}
	if width > st.Capacity-st.FailedProcs {
		// Unplaceable at the current effective capacity: the twin would
		// queue it forever. Answer with the sentinel instead of running.
		out := make([]Quote, count)
		for i := range out {
			out[i] = Quote{Width: width, Estimate: estimate,
				Start: NeverStart, Finish: NeverStart, Wait: NeverStart}
		}
		return out, nil
	}
	tw := s.acquireTwin()
	defer tw.release(s)
	return s.runTwin(tw, snap, width, estimate, count)
}

// QuoteTwinsLive reports the twins currently checked out of the pool; a
// quiescent scheduler always reads 0. It exists for leak tests and
// operational gauges.
func (s *Scheduler) QuoteTwinsLive() int64 { return s.twinsLive.Load() }

// runTwin seeds a twin engine from the snapshot, injects count
// hypothetical jobs, and runs the twin forward until they all started.
func (s *Scheduler) runTwin(tw *twin, snap *readSnapshot, width int, estimate int64, count int) ([]Quote, error) {
	st := &snap.status

	drv := s.quoteNew()
	if len(snap.driverState) > 0 {
		sd, ok := drv.(engine.StatefulDriver)
		if !ok {
			return nil, fmt.Errorf("rms: quote: snapshot carries driver state but %s cannot restore it", drv.Name())
		}
		if err := sd.RestoreState(snap.driverState); err != nil {
			return nil, fmt.Errorf("rms: quote: driver state: %w", err)
		}
	}

	// Rebuild the live jobs into the twin's arena, exactly as checkpoint
	// restore does: the run time is unknown online, so Runtime=Estimate
	// and the twin kills at the estimate — the same guarantee the real
	// RMS enforces. The arena never aliases live scheduler memory.
	need := len(st.Waiting) + len(st.Running) + count
	if cap(tw.jobs) < need {
		tw.jobs = make([]job.Job, 0, need)
	}
	mk := func(info JobInfo) *job.Job {
		tw.jobs = append(tw.jobs, job.Job{
			ID: info.ID, Submit: info.Submitted, Width: info.Width,
			Estimate: info.Estimate, Runtime: info.Estimate,
		})
		return &tw.jobs[len(tw.jobs)-1]
	}
	var maxID job.ID
	for _, info := range st.Waiting {
		tw.waiting = append(tw.waiting, mk(info))
		if info.ID > maxID {
			maxID = info.ID
		}
	}
	// The snapshot orders waiting jobs by planned start; the engine wants
	// submission order, which is ID order (IDs are issued monotonically).
	sort.Slice(tw.waiting, func(i, j int) bool { return tw.waiting[i].ID < tw.waiting[j].ID })
	for _, info := range st.Running {
		tw.running = append(tw.running, plan.Running{Job: mk(info), Start: info.Started})
		if info.ID > maxID {
			maxID = info.ID
		}
	}

	engOpts := []engine.Option{engine.WithHooks(engine.Hooks{
		Started: func(j *job.Job, now int64) {
			if j.ID > maxID {
				tw.started[j.ID] = now
			}
		},
	})}
	// Observer-driven deciders watch the engine they decide for, in the
	// twin exactly as in the live scheduler (see New).
	var spec engine.Lookaheader
	if dp, ok := drv.(*sim.DynP); ok {
		if o := dp.DeciderObserver(); o != nil {
			engOpts = append(engOpts, engine.WithObserver(o))
		}
		// Twins opt in to speculative planning: their forward run is the
		// predictable-future replay the pipeline was built for.
		if s.quoteSpec.Load() {
			dp.SetSpeculation(true)
			spec = dp
			defer dp.CancelLookahead()
		}
	}
	eng := engine.New(st.Capacity, drv, st.Now, engOpts...)
	if err := eng.RestoreState(engine.State{
		Now:     st.Now,
		Failed:  st.FailedProcs,
		Waiting: tw.waiting,
		Running: tw.running,
	}); err != nil {
		return nil, fmt.Errorf("rms: quote: twin restore: %w", err)
	}

	// Inject the hypotheticals one by one, each with its own replanning
	// step, mirroring real back-to-back submissions. IDs continue past
	// the highest live ID, preserving every policy tie-break against the
	// live jobs — the real submission would draw an ID at least this
	// high, and all orderings only compare IDs, never read their value.
	hypBase := maxID
	for i := 0; i < count; i++ {
		tw.jobs = append(tw.jobs, job.Job{
			ID: hypBase + 1 + job.ID(i), Submit: st.Now, Width: width,
			Estimate: estimate, Runtime: estimate,
		})
		eng.Submit(&tw.jobs[len(tw.jobs)-1])
		if err := eng.Replan(); err != nil {
			return nil, fmt.Errorf("rms: quote: twin replan: %w", err)
		}
	}

	// Run forward until every hypothetical started (or provably never
	// will). Each pass processes the next automatic action; AdvanceTo's
	// stuck self-heal replans past infeasible instants, and the
	// strictly-after fallback steps over an instant that made no progress
	// at all. The generous cap only guards against a rogue registered
	// driver planning nonsense forever — every event starts or finishes a
	// job, so an honest run takes at most ~2 actions per job.
	limit := 4*need + 64
	for iters := 0; len(tw.started) < count; iters++ {
		if iters > limit {
			return nil, fmt.Errorf("rms: quote: twin did not converge within %d steps", limit)
		}
		next, ok := eng.NextActionTime(false)
		if !ok {
			break // drained with hypotheticals unplaced: never starts
		}
		prevNow, prevRun, prevWait := eng.Now(), len(eng.Running()), len(eng.Waiting())
		sim.SpeculateNextKills(spec, eng, next)
		if err := eng.AdvanceTo(next, false); err != nil {
			return nil, fmt.Errorf("rms: quote: twin advance: %w", err)
		}
		if eng.Now() < next {
			eng.JumpTo(next)
		}
		if eng.Now() == prevNow && len(eng.Running()) == prevRun && len(eng.Waiting()) == prevWait {
			after, ok := eng.NextActionTime(true)
			if !ok {
				break
			}
			eng.JumpTo(after)
		}
	}

	out := make([]Quote, count)
	for i := range out {
		q := Quote{Width: width, Estimate: estimate,
			Start: NeverStart, Finish: NeverStart, Wait: NeverStart}
		if start, ok := tw.started[hypBase+1+job.ID(i)]; ok {
			q.Start = start
			q.Finish = start + estimate
			q.Wait = start - st.Now
		}
		out[i] = q
	}
	return out, nil
}
