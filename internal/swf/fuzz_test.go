package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the SWF parser with arbitrary input: it must never
// panic, and whenever it accepts an input, the resulting job set must
// satisfy all job invariants (Read validates internally — a nil error
// implies a valid set). Runs as a regular test over the seed corpus; use
// `go test -fuzz=FuzzRead ./internal/swf` to explore further.
func FuzzRead(f *testing.F) {
	f.Add(sample)
	f.Add("")
	f.Add("; MaxProcs: 64\n")
	f.Add("1 0 5 100 4 -1 -1 4 200 -1 1 1 1 -1 1 -1 -1 -1\n")
	f.Add("1 0 5 100 4 -1 -1 4 200 -1 1 1 1 -1 1 -1 -1\n") // 17 fields
	f.Add("x y z\n")
	f.Add("1 -5 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\n") // negative submit
	f.Add("9999999999999999999 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\n")
	f.Add("1 0 0 1e3 4 -1 -1 4 1e4 -1 1 1 1 -1 1 -1 -1 -1\n") // float fields
	f.Fuzz(func(t *testing.T, input string) {
		set, err := Read(strings.NewReader(input), ReadOptions{MaxJobs: 1000})
		if err != nil {
			return
		}
		if verr := set.Validate(); verr != nil {
			t.Fatalf("accepted set fails validation: %v", verr)
		}
		// Accepted sets must round-trip: write and re-read losslessly.
		var buf bytes.Buffer
		if err := Write(&buf, set); err != nil {
			t.Fatalf("cannot write accepted set: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()),
			ReadOptions{Machine: set.Machine, MaxJobs: 1000})
		if err != nil {
			t.Fatalf("cannot re-read written set: %v", err)
		}
		if len(back.Jobs) != len(set.Jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(set.Jobs), len(back.Jobs))
		}
	})
}
