package swf

import (
	"bytes"
	"strings"
	"testing"

	"dynp/internal/rng"
	"dynp/internal/workload"
)

const sample = `; Computer: Test SP2
; MaxProcs: 64
; UnixStartTime: 0
1 0 5 100 4 -1 -1 4 200 -1 1 1 1 -1 1 -1 -1 -1
2 10 0 50 8 -1 -1 8 60 -1 1 2 1 -1 1 -1 -1 -1
3 20 0 -1 4 -1 -1 4 100 -1 5 1 1 -1 1 -1 -1 -1
4 30 0 10 -1 -1 -1 -1 20 -1 1 1 1 -1 1 -1 -1 -1
5 40 0 300 2 -1 -1 2 200 -1 1 1 1 -1 1 -1 -1 -1
`

func TestReadBasic(t *testing.T) {
	set, err := Read(strings.NewReader(sample), ReadOptions{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 3 (run -1) and 4 (width -1 in both columns) are skipped.
	if len(set.Jobs) != 3 {
		t.Fatalf("accepted %d jobs, want 3", len(set.Jobs))
	}
	if set.Machine != 64 {
		t.Fatalf("machine = %d, want 64 from MaxProcs header", set.Machine)
	}
	j := set.Jobs[0]
	if j.Submit != 0 || j.Width != 4 || j.Runtime != 100 || j.Estimate != 200 {
		t.Fatalf("first job = %+v", j)
	}
	// IDs are re-assigned in submission order.
	for i, j := range set.Jobs {
		if int(j.ID) != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestReadClampsEstimateUpToRuntime(t *testing.T) {
	set, err := Read(strings.NewReader(sample), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 5 ran 300 s against a 200 s request: planning semantics clamp
	// the estimate up.
	last := set.Jobs[len(set.Jobs)-1]
	if last.Runtime != 300 || last.Estimate != 300 {
		t.Fatalf("overrun job = %+v", last)
	}
}

func TestReadMaxJobs(t *testing.T) {
	set, err := Read(strings.NewReader(sample), ReadOptions{MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Jobs) != 1 {
		t.Fatalf("MaxJobs ignored: %d jobs", len(set.Jobs))
	}
}

func TestReadMachineOverride(t *testing.T) {
	set, err := Read(strings.NewReader(sample), ReadOptions{Machine: 128})
	if err != nil {
		t.Fatal(err)
	}
	if set.Machine != 128 {
		t.Fatalf("machine = %d, want 128", set.Machine)
	}
}

func TestReadMachineFallsBackToWidestJob(t *testing.T) {
	noHeader := "1 0 0 10 16 -1 -1 16 10 -1 1 1 1 -1 1 -1 -1 -1\n"
	set, err := Read(strings.NewReader(noHeader), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Machine != 16 {
		t.Fatalf("machine = %d, want 16", set.Machine)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"short line":   "1 2 3\n",
		"bad number":   "x 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\n",
		"no jobs":      "; MaxProcs: 4\n",
		"only skipped": "1 0 0 -1 1 -1 -1 1 10 -1 5 1 1 -1 1 -1 -1 -1\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input), ReadOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	set, err := workload.KTH.Generate(500, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), ReadOptions{Name: set.Name, Machine: set.Machine})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(set.Jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(got.Jobs), len(set.Jobs))
	}
	for i := range set.Jobs {
		a, b := set.Jobs[i], got.Jobs[i]
		if a.Submit != b.Submit || a.Width != b.Width ||
			a.Estimate != b.Estimate || a.Runtime != b.Runtime {
			t.Fatalf("job %d: %+v != %+v", i, a, b)
		}
	}
	if got.Machine != set.Machine {
		t.Fatalf("machine %d != %d", got.Machine, set.Machine)
	}
}

func TestHeaderInt(t *testing.T) {
	cases := []struct {
		line string
		want int
		ok   bool
	}{
		{"; MaxProcs: 430", 430, true},
		{";MaxProcs: 100", 100, true},
		{"; MaxProcs: 128 nodes", 128, true},
		{"; MaxNodes: 64", 0, false},
		{"; MaxProcs: many", 0, false},
	}
	for _, c := range cases {
		got, ok := headerInt(c.line, "MaxProcs")
		if got != c.want || ok != c.ok {
			t.Errorf("headerInt(%q) = %d, %v", c.line, got, ok)
		}
	}
}
