package timeline

import (
	"strings"
	"testing"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
	"dynp/internal/workload"
)

func TestQueueSeriesProbe(t *testing.T) {
	set, err := workload.KTH.Generate(300, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	var q QueueSeries
	_, err = sim.Run(set.Shrink(0.7), &sim.Static{Policy: policy.FCFS},
		sim.WithQueueProbe(q.Probe()))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Times) == 0 || len(q.Times) != len(q.Queue) {
		t.Fatalf("samples: %d/%d", len(q.Times), len(q.Queue))
	}
	if q.Max() == 0 {
		t.Fatal("no queueing observed on a loaded machine")
	}
	if q.Mean() <= 0 || q.Mean() > float64(q.Max()) {
		t.Fatalf("mean %v outside (0, max]", q.Mean())
	}
}

func TestSparkline(t *testing.T) {
	q := QueueSeries{
		Times: []int64{0, 100, 200, 300},
		Queue: []int{0, 7, 3, 0},
	}
	var b strings.Builder
	if err := q.Sparkline(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "max 7") {
		t.Fatalf("missing max in header:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("peak glyph missing:\n%s", out)
	}
}

func TestSparklineErrors(t *testing.T) {
	var empty QueueSeries
	var b strings.Builder
	if err := empty.Sparkline(&b, 40); err == nil {
		t.Error("empty series accepted")
	}
	q := QueueSeries{Times: []int64{0}, Queue: []int{1}}
	if err := q.Sparkline(&b, 2); err == nil {
		t.Error("tiny width accepted")
	}
	// A single sample must not divide by zero.
	if err := q.Sparkline(&b, 20); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrip(t *testing.T) {
	trace := []core.Decision{
		{Time: 0, Old: policy.FCFS, Chosen: policy.SJF},
		{Time: 500, Old: policy.SJF, Chosen: policy.LJF},
		{Time: 900, Old: policy.LJF, Chosen: policy.SJF},
	}
	var b strings.Builder
	if err := PolicyStrip(&b, trace, 1000, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "S") || !strings.Contains(out, "L") {
		t.Fatalf("strip missing policies:\n%s", out)
	}
	// SJF dominates [0,500) and [900,1000): the first half of the strip
	// must be S.
	strip := out[strings.Index(out, "|")+1:]
	if strip[0] != 'S' {
		t.Fatalf("strip starts with %q:\n%s", strip[0], out)
	}
}

func TestPolicyStripErrors(t *testing.T) {
	var b strings.Builder
	if err := PolicyStrip(&b, nil, 10, 20); err == nil {
		t.Error("empty trace accepted")
	}
	trace := []core.Decision{{Time: 100, Chosen: policy.SJF}}
	if err := PolicyStrip(&b, trace, 100, 20); err == nil {
		t.Error("end == first decision accepted")
	}
	if err := PolicyStrip(&b, trace, 200, 5); err == nil {
		t.Error("tiny width accepted")
	}
}

func TestSwitches(t *testing.T) {
	trace := []core.Decision{
		{Old: policy.FCFS, Chosen: policy.SJF},
		{Old: policy.SJF, Chosen: policy.SJF},
		{Old: policy.SJF, Chosen: policy.LJF},
	}
	if got := Switches(trace); got != 2 {
		t.Fatalf("Switches = %d, want 2", got)
	}
}

func TestEndToEndWithDynP(t *testing.T) {
	set, err := workload.SDSC.Generate(400, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	d := sim.NewDynP(core.Advanced{})
	d.Tuner.EnableTrace()
	var q QueueSeries
	res, err := sim.Run(set.Shrink(0.8), d, sim.WithQueueProbe(q.Probe()))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := q.Sparkline(&b, 60); err != nil {
		t.Fatal(err)
	}
	if err := PolicyStrip(&b, d.Tuner.Trace(), res.Makespan, 60); err != nil {
		t.Fatal(err)
	}
	if Switches(d.Tuner.Trace()) != d.Stats().Switches {
		t.Fatal("switch counts disagree between timeline and tuner stats")
	}
}
