// Package timeline records and renders the dynamics of a simulation run:
// the waiting-queue length over time and the active-policy history of the
// self-tuning scheduler. Both render as compact terminal strips, which is
// how the saturation effects and the policy switching of the paper become
// visible on a single screen.
package timeline

import (
	"fmt"
	"io"
	"strings"

	"dynp/internal/core"
	"dynp/internal/policy"
)

// QueueSeries is a sampled time series of the waiting-queue length. Feed
// it to sim.Run through WithQueueProbe.
type QueueSeries struct {
	Times []int64
	Queue []int
}

// Probe returns a callback for sim.WithQueueProbe that appends samples.
func (q *QueueSeries) Probe() func(now int64, queued int) {
	return func(now int64, queued int) {
		q.Times = append(q.Times, now)
		q.Queue = append(q.Queue, queued)
	}
}

// Max returns the largest observed queue length.
func (q *QueueSeries) Max() int {
	max := 0
	for _, v := range q.Queue {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the time-unweighted mean queue length over the samples.
func (q *QueueSeries) Mean() float64 {
	if len(q.Queue) == 0 {
		return 0
	}
	var sum int
	for _, v := range q.Queue {
		sum += v
	}
	return float64(sum) / float64(len(q.Queue))
}

// sparkGlyphs are eight fill levels for the queue strip.
const sparkGlyphs = " .:-=+*#"

// Sparkline renders the queue series as a fixed-width strip: time is
// bucketed onto the width, each bucket shows the maximum queue length seen
// in it, scaled against the global maximum.
func (q *QueueSeries) Sparkline(w io.Writer, width int) error {
	if width < 10 {
		return fmt.Errorf("timeline: width %d too small", width)
	}
	if len(q.Times) == 0 {
		return fmt.Errorf("timeline: no samples")
	}
	t0, t1 := q.Times[0], q.Times[len(q.Times)-1]
	if t1 == t0 {
		t1 = t0 + 1
	}
	buckets := make([]int, width)
	for i, tm := range q.Times {
		b := int(float64(tm-t0) / float64(t1-t0) * float64(width-1))
		if q.Queue[i] > buckets[b] {
			buckets[b] = q.Queue[i]
		}
	}
	max := q.Max()
	var sb strings.Builder
	fmt.Fprintf(&sb, "queue length over time (max %d, mean %.1f)\n", max, q.Mean())
	sb.WriteString("|")
	for _, v := range buckets {
		idx := 0
		if max > 0 {
			idx = v * (len(sparkGlyphs) - 1) / max
		}
		sb.WriteByte(sparkGlyphs[idx])
	}
	sb.WriteString("|\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// PolicyStrip renders the active-policy history from a decision trace as
// a fixed-width strip (F/S/L per time bucket; the policy active for the
// longest span in a bucket wins). The end time bounds the last segment.
func PolicyStrip(w io.Writer, trace []core.Decision, end int64, width int) error {
	if width < 10 {
		return fmt.Errorf("timeline: width %d too small", width)
	}
	if len(trace) == 0 {
		return fmt.Errorf("timeline: empty decision trace")
	}
	t0 := trace[0].Time
	if end <= t0 {
		return fmt.Errorf("timeline: end %d not after first decision %d", end, t0)
	}
	span := float64(end - t0)

	// Accumulate active time per policy per bucket.
	letters := map[policy.Policy]byte{policy.FCFS: 'F', policy.SJF: 'S', policy.LJF: 'L',
		policy.SAF: 'A', policy.LAF: 'G'}
	type acc map[policy.Policy]float64
	buckets := make([]acc, width)
	for i := range buckets {
		buckets[i] = acc{}
	}
	add := func(p policy.Policy, from, to int64) {
		if to <= from {
			return
		}
		b0 := float64(from-t0) / span * float64(width)
		b1 := float64(to-t0) / span * float64(width)
		for b := int(b0); b <= int(b1) && b < width; b++ {
			lo, hi := float64(b), float64(b+1)
			if b0 > lo {
				lo = b0
			}
			if b1 < hi {
				hi = b1
			}
			if hi > lo {
				buckets[b][p] += hi - lo
			}
		}
	}
	for i, d := range trace {
		segEnd := end
		if i+1 < len(trace) {
			segEnd = trace[i+1].Time
		}
		add(d.Chosen, d.Time, segEnd)
	}

	var sb strings.Builder
	sb.WriteString("active policy over time (F=FCFS, S=SJF, L=LJF)\n|")
	for _, b := range buckets {
		best, bestV := byte(' '), 0.0
		for p, v := range b {
			if v > bestV {
				best, bestV = letters[p], v
			}
		}
		sb.WriteByte(best)
	}
	sb.WriteString("|\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Switches counts policy changes in a decision trace.
func Switches(trace []core.Decision) int {
	n := 0
	for _, d := range trace {
		if d.Chosen != d.Old {
			n++
		}
	}
	return n
}
