package sim

import (
	"dynp/internal/core"
	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// DynP is the Driver for the self-tuning dynP scheduler: every scheduling
// event performs one self-tuning step (three what-if schedules, one per
// candidate policy, scored and decided).
type DynP struct {
	Tuner *core.SelfTuner
	label string
}

// NewDynP returns a dynP driver over the paper's candidate set with the
// given decider and the paper's decision metric (planned SLDwA). The
// initial active policy is FCFS, matching a freshly started scheduler.
func NewDynP(d core.Decider) *DynP {
	return &DynP{Tuner: core.NewSelfTuner(nil, d, core.MetricSLDwA),
		label: "dynP/" + d.Name()}
}

// NewDynPWith returns a dynP driver with full control over candidate set,
// decider and decision metric, for the ablation experiments.
func NewDynPWith(candidates []policy.Policy, d core.Decider, m core.Metric) *DynP {
	return &DynP{Tuner: core.NewSelfTuner(candidates, d, m),
		label: "dynP/" + d.Name() + "/" + m.String()}
}

// SetWorkers bounds the goroutines used for the candidate what-if builds
// of every self-tuning step (see core.SelfTuner.SetWorkers): 1 keeps
// planning sequential, n <= 0 selects all cores. The simulation outcome
// is identical for every worker count. It returns d for chaining.
func (d *DynP) SetWorkers(n int) *DynP {
	d.Tuner.SetWorkers(n)
	return d
}

// SetSpeculation toggles the tuner's speculative cross-event planning
// pipeline (see core.SelfTuner.SetSpeculation): with it on, Run overlaps
// the next event's what-if builds with the current event's bookkeeping
// via the engine.Lookaheader protocol. The simulation outcome is
// byte-identical either way. It returns d for chaining.
func (d *DynP) SetSpeculation(on bool) *DynP {
	d.Tuner.SetSpeculation(on)
	return d
}

// SpeculationEnabled implements engine.Lookaheader.
func (d *DynP) SpeculationEnabled() bool { return d.Tuner.SpeculationEnabled() }

// Lookahead implements engine.Lookaheader by dispatching a speculative
// self-tuning build for the predicted next event.
func (d *DynP) Lookahead(now int64, capacity int, running []plan.Running, waiting []*job.Job) {
	d.Tuner.Speculate(now, capacity, running, waiting)
}

// CancelLookahead implements engine.Lookaheader.
func (d *DynP) CancelLookahead() { d.Tuner.CancelSpeculation() }

// SpecStats exposes the tuner's speculation outcome counters.
func (d *DynP) SpecStats() core.SpecStats { return d.Tuner.SpecStats() }

// Name implements Driver.
func (d *DynP) Name() string { return d.label }

// SetLabel overrides the driver's display name (used in results and
// sweep columns). It returns d for chaining.
func (d *DynP) SetLabel(label string) *DynP {
	d.label = label
	return d
}

// Plan implements Driver by performing one self-tuning step.
func (d *DynP) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	return d.Tuner.Plan(now, capacity, running, waiting)
}

// ActivePolicy implements Driver.
func (d *DynP) ActivePolicy() policy.Policy { return d.Tuner.Active() }

// NoteSubmit implements engine.QueueTracker: the tuner keeps one
// incrementally-spliced order of the waiting queue per candidate policy,
// sparing every self-tuning step its three full re-sorts.
func (d *DynP) NoteSubmit(j *job.Job) { d.Tuner.NoteSubmit(j) }

// NoteRemove implements engine.QueueTracker.
func (d *DynP) NoteRemove(j *job.Job) { d.Tuner.NoteRemove(j) }

// SaveState implements engine.StatefulDriver: the tuner's active policy,
// statistics and decision trace go into journal checkpoints so a
// restored scheduler keeps tuning from where it stopped.
func (d *DynP) SaveState() ([]byte, error) { return d.Tuner.MarshalState() }

// RestoreState implements engine.StatefulDriver.
func (d *DynP) RestoreState(data []byte) error { return d.Tuner.UnmarshalState(data) }

// Stats exposes the tuner's decision statistics.
func (d *DynP) Stats() core.Stats { return d.Tuner.Stats() }

// DeciderObserver returns the tuner's decider when it is observer-driven
// (implements engine.Observer), or nil. Run and the online RMS attach it
// to their engines, so such deciders see every transition without any
// caller-side wiring — and unobserved runs keep their allocation-free
// emit path, since nothing is attached for plain deciders.
func (d *DynP) DeciderObserver() engine.Observer {
	if o, ok := d.Tuner.Decider().(engine.Observer); ok {
		return o
	}
	return nil
}

// LastDecisionCase classifies the most recent self-tuning step as one of
// the paper's Table-1 cases; the scheduling engine stamps it on every
// EventPlan it emits (see engine.DecisionCaser).
func (d *DynP) LastDecisionCase() string { return d.Tuner.LastDecisionCase() }
