package sim

import (
	"dynp/internal/core"
	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// DynP is the Driver for the self-tuning dynP scheduler: every scheduling
// event performs one self-tuning step (three what-if schedules, one per
// candidate policy, scored and decided).
type DynP struct {
	Tuner *core.SelfTuner
	label string
}

// NewDynP returns a dynP driver over the paper's candidate set with the
// given decider and the paper's decision metric (planned SLDwA). The
// initial active policy is FCFS, matching a freshly started scheduler.
func NewDynP(d core.Decider) *DynP {
	return &DynP{Tuner: core.NewSelfTuner(nil, d, core.MetricSLDwA),
		label: "dynP/" + d.Name()}
}

// NewDynPWith returns a dynP driver with full control over candidate set,
// decider and decision metric, for the ablation experiments.
func NewDynPWith(candidates []policy.Policy, d core.Decider, m core.Metric) *DynP {
	return &DynP{Tuner: core.NewSelfTuner(candidates, d, m),
		label: "dynP/" + d.Name() + "/" + m.String()}
}

// SetWorkers bounds the goroutines used for the candidate what-if builds
// of every self-tuning step (see core.SelfTuner.SetWorkers): 1 keeps
// planning sequential, n <= 0 selects all cores. The simulation outcome
// is identical for every worker count. It returns d for chaining.
func (d *DynP) SetWorkers(n int) *DynP {
	d.Tuner.SetWorkers(n)
	return d
}

// Name implements Driver.
func (d *DynP) Name() string { return d.label }

// SetLabel overrides the driver's display name (used in results and
// sweep columns). It returns d for chaining.
func (d *DynP) SetLabel(label string) *DynP {
	d.label = label
	return d
}

// Plan implements Driver by performing one self-tuning step.
func (d *DynP) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	return d.Tuner.Plan(now, capacity, running, waiting)
}

// ActivePolicy implements Driver.
func (d *DynP) ActivePolicy() policy.Policy { return d.Tuner.Active() }

// NoteSubmit implements engine.QueueTracker: the tuner keeps one
// incrementally-spliced order of the waiting queue per candidate policy,
// sparing every self-tuning step its three full re-sorts.
func (d *DynP) NoteSubmit(j *job.Job) { d.Tuner.NoteSubmit(j) }

// NoteRemove implements engine.QueueTracker.
func (d *DynP) NoteRemove(j *job.Job) { d.Tuner.NoteRemove(j) }

// SaveState implements engine.StatefulDriver: the tuner's active policy,
// statistics and decision trace go into journal checkpoints so a
// restored scheduler keeps tuning from where it stopped.
func (d *DynP) SaveState() ([]byte, error) { return d.Tuner.MarshalState() }

// RestoreState implements engine.StatefulDriver.
func (d *DynP) RestoreState(data []byte) error { return d.Tuner.UnmarshalState(data) }

// Stats exposes the tuner's decision statistics.
func (d *DynP) Stats() core.Stats { return d.Tuner.Stats() }

// DeciderObserver returns the tuner's decider when it is observer-driven
// (implements engine.Observer), or nil. Run and the online RMS attach it
// to their engines, so such deciders see every transition without any
// caller-side wiring — and unobserved runs keep their allocation-free
// emit path, since nothing is attached for plain deciders.
func (d *DynP) DeciderObserver() engine.Observer {
	if o, ok := d.Tuner.Decider().(engine.Observer); ok {
		return o
	}
	return nil
}

// LastDecisionCase classifies the most recent self-tuning step as one of
// the paper's Table-1 cases; the scheduling engine stamps it on every
// EventPlan it emits (see engine.DecisionCaser).
func (d *DynP) LastDecisionCase() string { return d.Tuner.LastDecisionCase() }
