package sim

import (
	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
)

// SpeculateNextKills hands a speculating driver the predicted inputs of
// the planning step that engine.AdvanceTo(next, false) is about to run —
// the second lookahead front end besides Run's event loop, used by
// twin-style replays (the rms quote service) whose jobs all finish by
// estimate expiry.
//
// AdvanceTo replans exactly when KillExpired removed a job, so the
// prediction is dispatched only when some running job's estimate expires
// by next; the planning step then sees now = next, the unchanged
// effective capacity, the running set minus every expired job, and the
// waiting queue minus the jobs the replanning step itself withholds as
// unplaceable (wider than the effective capacity — mirrored here so the
// elementwise waiting-set verification holds under failed processors).
// When no expiry is due — the next action is a planned start, which
// launches without replanning — no prediction is dispatched and the call
// is free. As everywhere in the pipeline, a wrong prediction (a stuck
// self-heal replan, a capacity change) is discarded by verification, so
// callers may over- or under-predict without affecting results.
//
// spec may be nil or disabled; the call is then a no-op.
func SpeculateNextKills(spec engine.Lookaheader, eng *engine.Engine, next int64) {
	if spec == nil || !spec.SpeculationEnabled() {
		return
	}
	eff := eng.Effective()
	if eff < 1 {
		return // a drained machine replans to a nil schedule, no Plan call
	}
	expiring := false
	for _, r := range eng.Running() {
		if r.EstimatedEnd() <= next {
			expiring = true
			break
		}
	}
	if !expiring {
		return
	}
	cur := eng.Running()
	running := make([]plan.Running, 0, len(cur))
	for _, r := range cur {
		if r.EstimatedEnd() > next {
			running = append(running, r)
		}
	}
	queued := eng.Waiting()
	waiting := make([]*job.Job, 0, len(queued))
	for _, j := range queued {
		if j.Width <= eff {
			waiting = append(waiting, j)
		}
	}
	spec.Lookahead(next, eff, running, waiting)
}
