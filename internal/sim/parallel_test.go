package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/workload"
)

// fingerprint renders everything observable about a run — per-job starts
// and finishes in completion order, the event count, and the policy-time
// split — so two results are byte-identical iff their fingerprints match.
func fingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s makespan=%d events=%d\n", r.Scheduler, r.Makespan, r.Events)
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "job %d start=%d finish=%d\n", rec.Job.ID, rec.Start, rec.Finish)
	}
	ps := make([]policy.Policy, 0, len(r.PolicyTime))
	for p := range r.PolicyTime {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name() < ps[j].Name() })
	for _, p := range ps {
		fmt.Fprintf(&b, "policy %v=%d\n", p, r.PolicyTime[p])
	}
	return b.String()
}

func parallelTestSets(t *testing.T) []*job.Set {
	t.Helper()
	sets, err := workload.KTH.GenerateSets(6, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sets {
		sets[i] = s.Shrink(0.8)
	}
	return sets
}

// TestRunParallelMatchesSequential is the byte-identity proof for the
// sharded simulation path: the same sets through sequential Run and
// through RunParallel at several worker counts produce identical
// fingerprints slot for slot, for a stateful dynP driver and decider.
func TestRunParallelMatchesSequential(t *testing.T) {
	sets := parallelTestSets(t)
	newDriver := func() Driver { return NewDynP(core.Advanced{}) }

	want := make([]string, len(sets))
	for i, s := range sets {
		res, err := Run(s, newDriver())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(res)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		results, err := RunParallel(sets, newDriver, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(sets) {
			t.Fatalf("workers=%d: %d results for %d sets", workers, len(results), len(sets))
		}
		for i, res := range results {
			if got := fingerprint(res); got != want[i] {
				t.Errorf("workers=%d set %d: parallel result diverged from sequential:\n got: %s\nwant: %s",
					workers, i, got, want[i])
			}
		}
	}
}

// TestRunParallelReplicas runs the same set several times concurrently:
// every replica must reproduce the identical schedule, proving fresh
// drivers share no state.
func TestRunParallelReplicas(t *testing.T) {
	sets := parallelTestSets(t)[:1]
	replicas := []*job.Set{sets[0], sets[0], sets[0], sets[0]}
	results, err := RunParallel(replicas, func() Driver { return NewDynP(core.Preferred{Policy: policy.SJF}) }, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := fingerprint(results[0])
	for i, res := range results[1:] {
		if got := fingerprint(res); got != first {
			t.Errorf("replica %d diverged:\n got: %s\nwant: %s", i+1, got, first)
		}
	}
}

// TestRunParallelError checks that an invalid set fails the batch with
// the smallest failing index's error and no partial results.
func TestRunParallelError(t *testing.T) {
	sets := parallelTestSets(t)
	bad := &job.Set{Machine: 0}
	mixed := append(append([]*job.Set{}, sets[:2]...), bad)
	results, err := RunParallel(mixed, func() Driver { return &Static{Policy: policy.FCFS} }, 2)
	if err == nil {
		t.Fatal("invalid set produced no error")
	}
	if results != nil {
		t.Fatal("failed batch returned partial results")
	}
}
