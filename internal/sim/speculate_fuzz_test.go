package sim

import (
	"fmt"
	"strings"
	"testing"

	"dynp/internal/core"
	"dynp/internal/engine"
	"dynp/internal/job"
)

// FuzzSpeculationDifferential drives two identical engines — one with
// the speculative pipeline on, one spec-off as the oracle — through the
// same fuzzer-chosen interleaving of submissions, kill-at-estimate
// advances and processor fail/restore events, and requires bit-identical
// outcomes. Proc fails are injected between a dispatched prediction and
// the advance that would consume it, so the fuzzer explores exactly the
// regime where speculation misses: stale capacity, victims killed off
// the predicted running set, waiting queues split by the unplaceable
// filter. The differential holds regardless — misses discard, hits
// consume, results never differ.
func FuzzSpeculationDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 4, 2, 5, 2, 0, 1, 2, 3, 2})
	f.Add([]byte{8, 16, 2, 2, 10, 2, 42, 7, 2, 3, 2, 99, 2})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2, 5, 10, 2, 3, 3, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		run := func(spec bool) (string, core.SpecStats) {
			d := NewDynP(core.Advanced{}).SetWorkers(1).SetSpeculation(spec)
			d.Tuner.EnableTrace()
			eng := engine.New(16, d, 0)
			defer d.CancelLookahead()
			var la engine.Lookaheader
			if spec {
				la = d
			}
			var id job.ID
			for i := 0; i < len(data); i++ {
				op := data[i]
				switch op % 4 {
				case 0, 1: // submit one job and replan
					id++
					est := int64(1 + int(op)%97)
					eng.Submit(&job.Job{
						ID: id, Submit: eng.Now(), Width: 1 + int(op/4)%8,
						Estimate: est, Runtime: est,
					})
					if err := eng.Replan(); err != nil {
						t.Fatal(err)
					}
				case 2: // advance through the next automatic action
					next, ok := eng.NextActionTime(false)
					if !ok {
						continue
					}
					SpeculateNextKills(la, eng, next)
					// Sometimes yank a processor after the prediction was
					// dispatched — the canonical speculation-invalidation.
					if i+1 < len(data) && data[i+1]%5 == 0 && eng.Effective() > 2 {
						eng.FailProcs(1)
						if err := eng.Replan(); err != nil {
							t.Fatal(err)
						}
					}
					if err := eng.AdvanceTo(next, false); err != nil {
						t.Fatal(err)
					}
					if eng.Now() < next {
						eng.JumpTo(next)
					}
				case 3: // restore a failed processor and replan
					if eng.FailedProcs() > 0 {
						eng.RestoreProcs(1)
						if err := eng.Replan(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			d.CancelLookahead()

			var b strings.Builder
			fmt.Fprintf(&b, "now=%d eff=%d active=%v\n", eng.Now(), eng.Effective(), d.ActivePolicy())
			for _, r := range eng.Running() {
				fmt.Fprintf(&b, "run %d@%d\n", r.Job.ID, r.Start)
			}
			for _, j := range eng.Waiting() {
				fmt.Fprintf(&b, "wait %d\n", j.ID)
			}
			b.WriteString(traceFingerprint(d.Tuner.Trace()))
			return b.String(), d.SpecStats()
		}

		want, oracleStats := run(false)
		got, stats := run(true)
		if got != want {
			t.Fatalf("speculation changed the outcome:\n--- spec-off\n%s\n--- spec-on\n%s", want, got)
		}
		if oracleStats.Dispatched != 0 {
			t.Fatalf("spec-off run dispatched %d speculative builds", oracleStats.Dispatched)
		}
		if total := stats.Hits + stats.Misses + stats.Cancelled; total != stats.Dispatched {
			t.Fatalf("speculation outcomes %+v do not account for every dispatch", stats)
		}
	})
}
