package sim

import (
	"reflect"
	"testing"

	"dynp/internal/core"
)

// TestDynPSimulationIdenticalAcrossWorkers: a whole simulation — records,
// makespan, policy usage and tuner statistics — must not depend on the
// what-if planning worker count.
func TestDynPSimulationIdenticalAcrossWorkers(t *testing.T) {
	set := randomSet(21, 400, 32)
	run := func(workers int) (*Result, core.Stats) {
		d := NewDynP(core.Advanced{}).SetWorkers(workers)
		res, err := Run(set, d, WithVerify())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, d.Stats()
	}
	wantRes, wantStats := run(1)
	for _, workers := range []int{2, 0} { // 0 = all cores
		res, stats := run(workers)
		if !reflect.DeepEqual(res.Records, wantRes.Records) {
			t.Errorf("workers=%d: job records differ from sequential", workers)
		}
		if res.Makespan != wantRes.Makespan || res.Events != wantRes.Events {
			t.Errorf("workers=%d: makespan/events %d/%d, want %d/%d",
				workers, res.Makespan, res.Events, wantRes.Makespan, wantRes.Events)
		}
		if !reflect.DeepEqual(res.PolicyTime, wantRes.PolicyTime) {
			t.Errorf("workers=%d: policy usage differs from sequential", workers)
		}
		if !reflect.DeepEqual(stats, wantStats) {
			t.Errorf("workers=%d: tuner stats %+v, want %+v", workers, stats, wantStats)
		}
	}
}
