package sim

import (
	"runtime"

	"dynp/internal/job"
	"dynp/internal/shard"
)

// RunParallel simulates several independent job sets concurrently on a
// work-stealing shard pool (internal/shard) and returns the results in
// input order. Each run gets a fresh driver from newDriver — drivers
// carry tuner state, so one instance must never serve two concurrent
// runs. workers <= 0 selects GOMAXPROCS.
//
// The output is byte-identical to running the same sets sequentially
// through Run with drivers from the same factory: every simulation is an
// independent event stream writing into its fixed result slot, so the
// worker count decides only the wall clock. The first failure cancels
// the remaining runs and is returned (smallest set index wins when
// several fail).
//
// Repeated entries are allowed — passing the same *job.Set n times runs
// n independent replicas — and the per-run options of Run (observers,
// verification) are deliberately absent: an observer shared across
// concurrent runs would race, so observed runs go through Run.
func RunParallel(sets []*job.Set, newDriver func() Driver, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*Result, len(sets))
	err := shard.Run(workers, len(sets), func(i int) (err error) {
		results[i], err = Run(sets[i], newDriver())
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
