package sim

import (
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/profile"
)

// EASY is a queueing-based scheduler with aggressive (EASY) backfilling,
// the classic contrast to the planning-based dynP approach (reference [6]
// of the paper compares the two paradigms). The queue is ordered by a base
// policy (FCFS in the original EASY); only the queue head receives a
// reservation, and any later job may start immediately if it fits beside
// the running jobs without delaying that single reservation — unlike the
// planner, which gives every waiting job a start time and therefore
// backfills conservatively.
type EASY struct {
	// Base orders the queue; the original EASY scheduler uses FCFS.
	Base policy.Policy
}

// Name implements Driver.
func (e *EASY) Name() string {
	if e.Base == policy.FCFS {
		return "EASY"
	}
	return "EASY/" + e.Base.Name()
}

// ActivePolicy implements Driver.
func (e *EASY) ActivePolicy() policy.Policy { return e.Base }

// Plan implements Driver. The returned schedule starts backfillable jobs
// now and gives the head its reservation; jobs the backfill pass rejects
// are placed conservatively afterwards so that the schedule stays feasible
// (the engine only acts on entries starting now, so those placements never
// bind).
func (e *EASY) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	prof := profile.New(capacity, now)
	for _, r := range running {
		if rem := r.EstimatedEnd() - now; rem > 0 {
			prof.Alloc(now, r.Job.Width, rem)
		}
	}
	s := &plan.Schedule{Now: now, Capacity: capacity, Policy: e.Base,
		Entries: make([]plan.Entry, 0, len(waiting))}

	queue := policy.Order(e.Base, waiting)
	if len(queue) == 0 {
		return s
	}

	// The head job: starts now if it fits, otherwise it gets the one
	// reservation EASY maintains (committed to the profile so backfill
	// candidates cannot delay it).
	head := queue[0]
	headStart := prof.Place(now, head.Width, head.Estimate)
	s.Entries = append(s.Entries, plan.Entry{Job: head, Start: headStart})

	// Aggressive backfilling: any later job may start immediately if it
	// fits beside the running jobs, the head reservation, and the jobs
	// already backfilled this round. Unlike the conservative planner,
	// rejected jobs impose no constraints — EASY promises them nothing —
	// so jobs arbitrarily deep in the queue can jump ahead.
	var rejected []*job.Job
	for _, j := range queue[1:] {
		if prof.EarliestFit(now, j.Width, j.Estimate) == now {
			prof.Alloc(now, j.Width, j.Estimate)
			s.Entries = append(s.Entries, plan.Entry{Job: j, Start: now})
			continue
		}
		rejected = append(rejected, j)
	}

	// The schedule contract wants a feasible start for every waiting
	// job, so rejected jobs receive nominal conservative placements in a
	// scratch profile after all real decisions are fixed. The engine
	// only acts on entries starting now; these placements never bind.
	rest := prof.Clone()
	for _, j := range rejected {
		start := rest.Place(now, j.Width, j.Estimate)
		s.Entries = append(s.Entries, plan.Entry{Job: j, Start: start})
	}
	return s
}
