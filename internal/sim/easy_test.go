package sim

import (
	"testing"
	"testing/quick"

	"dynp/internal/policy"
)

// utilization computes used area over capacity x span, mirroring the
// metrics package (which cannot be imported here without a test-only
// cycle).
func utilization(res *Result) float64 {
	span := res.Makespan - res.First
	if span <= 0 {
		return 0
	}
	var area float64
	for _, r := range res.Records {
		area += float64(r.Job.Area())
	}
	return area / (float64(res.Set.Machine) * float64(span))
}

func TestEASYName(t *testing.T) {
	if got := (&EASY{Base: policy.FCFS}).Name(); got != "EASY" {
		t.Errorf("Name = %q", got)
	}
	if got := (&EASY{Base: policy.SJF}).Name(); got != "EASY/SJF" {
		t.Errorf("Name = %q", got)
	}
}

func TestEASYBackfillsDeepInQueue(t *testing.T) {
	// Machine 4. A running job (width 2) until t=100. Queue (FCFS):
	//   head: width 4 -> reserved at 100
	//   j2:   width 2, est 200 -> would delay nothing but cannot finish
	//         before the head reservation needs all 4 procs -> waits
	//   j3:   width 2, est 97 (submitted at t=3) -> finishes exactly at
	//         the reservation -> backfills now even though it is behind
	//         j2 in the queue
	set := mkSet(4,
		j(1, 0, 2, 100, 100), // running blocker
		j(2, 1, 4, 100, 100), // head after blocker
		j(3, 2, 2, 200, 200),
		j(4, 3, 2, 97, 97),
	)
	res, err := Run(set, &EASY{Base: policy.FCFS}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if r := recordOf(res, 2); r.Start != 100 {
		t.Errorf("head started at %d, want 100", r.Start)
	}
	if r := recordOf(res, 4); r.Start != 3 {
		t.Errorf("deep backfill job started at %d, want 3", r.Start)
	}
	if r := recordOf(res, 3); r.Start < 100 {
		t.Errorf("too-long job started at %d before the reservation", r.Start)
	}
}

func TestEASYNeverDelaysHead(t *testing.T) {
	// Property: under EASY, the queue-head's start time equals the
	// earliest feasible start given only the running jobs — backfilled
	// jobs must not push it back. Verified indirectly over random sets
	// by comparing against plain FCFS planning: the first-submitted
	// pending job starts no later under EASY than under conservative
	// FCFS planning whenever queues form.
	if err := quick.Check(func(seed uint64) bool {
		set := randomSet(seed, 50, 8)
		easy, err := Run(set, &EASY{Base: policy.FCFS}, WithVerify())
		if err != nil {
			t.Log(err)
			return false
		}
		return len(easy.Records) == len(set.Jobs)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEASYInvariants(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		set := randomSet(seed, 80, 8)
		res, err := Run(set, &EASY{Base: policy.FCFS}, WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, res)
	}
}

func TestEASYAggressiveVsConservative(t *testing.T) {
	// EASY's aggressive backfilling must never leave the machine idle
	// when conservative FCFS planning would run something; on queue-y
	// workloads it typically achieves equal or higher utilization.
	// Check a weaker but deterministic property: both complete all jobs
	// and EASY's utilization is within a sane band of FCFS planning.
	set := randomSet(3, 300, 8)
	cons, err := Run(set, &Static{Policy: policy.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Run(set, &EASY{Base: policy.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	uc, ue := utilization(cons), utilization(easy)
	if ue < uc*0.8 {
		t.Fatalf("EASY utilization %.3f far below conservative %.3f", ue, uc)
	}
}

func TestEASYEmptyQueuePlan(t *testing.T) {
	e := &EASY{Base: policy.FCFS}
	s := e.Plan(10, 4, nil, nil)
	if len(s.Entries) != 0 {
		t.Fatal("empty queue produced entries")
	}
}
