package sim

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"dynp/internal/adaptive"
	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/workload"
)

// traceFingerprint renders a decider trace exactly: every self-tuning
// decision's time, policy transition and candidate scores, the scores as
// hexadecimal float bits so two traces render identically iff every
// score is bit-identical.
func traceFingerprint(trace []core.Decision) string {
	var b strings.Builder
	for _, d := range trace {
		fmt.Fprintf(&b, "t=%d %v->%v", d.Time, d.Old, d.Chosen)
		for _, v := range d.Values {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDeterminismAcrossGOMAXPROCS is the regression gate for the PR's
// central invariant: parallelism is an implementation detail that never
// leaks into results. One contended workload is simulated at GOMAXPROCS
// 1, 2 and 8 with every parallel width tied to the setting — the tuner's
// candidate what-if builds fan out over GOMAXPROCS workers, and the
// batch runs through RunParallel with GOMAXPROCS shards. The schedule
// fingerprint (every start and finish) and the full decider trace
// (every decision's bit-exact candidate scores) must be byte-identical
// across all three settings.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	sets, err := workload.KTH.GenerateSets(1, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := sets[0].Shrink(0.8)

	type outcome struct {
		schedule, trace string
	}
	run := func(procs int) outcome {
		runtime.GOMAXPROCS(procs)
		d := NewDynP(core.Advanced{}).SetWorkers(0) // 0: fan out over all of GOMAXPROCS
		d.Tuner.EnableTrace()
		res, err := Run(set, d)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		return outcome{fingerprint(res), traceFingerprint(d.Tuner.Trace())}
	}

	want := run(1)
	if want.trace == "" {
		t.Fatal("decider trace is empty: the workload exercised no self-tuning steps")
	}
	for _, procs := range []int{2, 8} {
		got := run(procs)
		if got.schedule != want.schedule {
			t.Errorf("GOMAXPROCS=%d: schedule diverged from GOMAXPROCS=1:\n got: %s\nwant: %s",
				procs, got.schedule, want.schedule)
		}
		if got.trace != want.trace {
			t.Errorf("GOMAXPROCS=%d: decider trace diverged from GOMAXPROCS=1", procs)
		}
	}

	// The sharded batch path at the same settings: replicas of the set
	// through RunParallel must reproduce the sequential schedule exactly.
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		results, err := RunParallel([]*job.Set{set, set, set},
			func() Driver { return NewDynP(core.Advanced{}).SetWorkers(0) }, procs)
		if err != nil {
			t.Fatalf("RunParallel procs=%d: %v", procs, err)
		}
		for i, res := range results {
			if got := fingerprint(res); got != want.schedule {
				t.Errorf("GOMAXPROCS=%d replica %d: parallel schedule diverged from sequential", procs, i)
			}
		}
	}
}

// TestDeterminismSpeculationMatrix is the regression gate for the
// speculative cross-event pipeline's central invariant: speculation is an
// implementation detail that never leaks into results. Every decider —
// the three paper deciders plus the observer-driven adaptive decider,
// the likeliest victim of a speculation-invalidation bug because it can
// flip its choice between the prediction and the event — runs the same
// contended workload at {speculation off, on} × {GOMAXPROCS 1, 2, 8};
// the schedule fingerprint and the bit-exact decider trace must be
// byte-identical across all six settings, and the speculative runs must
// actually speculate (hits > 0), so a silently disabled pipeline cannot
// pass vacuously.
func TestDeterminismSpeculationMatrix(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	sets, err := workload.KTH.GenerateSets(1, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := sets[0].Shrink(0.8)

	// Fresh decider per run: the adaptive decider is stateful (it
	// observes the engine it decides for), so instances never cross runs.
	deciders := []struct {
		name string
		make func(t *testing.T) core.Decider
	}{
		{"simple", func(*testing.T) core.Decider { return core.Simple{} }},
		{"advanced", func(*testing.T) core.Decider { return core.Advanced{} }},
		{"preferred", func(*testing.T) core.Decider { return core.Preferred{Policy: policy.SJF} }},
		{"adaptive", func(*testing.T) core.Decider { return adaptive.Must(policy.SJF, 4, 2) }},
	}

	type outcome struct {
		schedule, trace string
		stats           core.SpecStats
	}
	for _, dec := range deciders {
		t.Run(dec.name, func(t *testing.T) {
			run := func(spec bool, procs int) outcome {
				runtime.GOMAXPROCS(procs)
				d := NewDynP(dec.make(t)).SetWorkers(0).SetSpeculation(spec)
				d.Tuner.EnableTrace()
				res, err := Run(set, d)
				if err != nil {
					t.Fatalf("spec=%v procs=%d: %v", spec, procs, err)
				}
				return outcome{fingerprint(res), traceFingerprint(d.Tuner.Trace()), d.SpecStats()}
			}

			want := run(false, 1)
			if want.trace == "" {
				t.Fatal("decider trace is empty: the workload exercised no self-tuning steps")
			}
			if want.stats.Dispatched != 0 {
				t.Fatalf("speculation off dispatched %d builds", want.stats.Dispatched)
			}
			for _, spec := range []bool{false, true} {
				for _, procs := range []int{1, 2, 8} {
					if !spec && procs == 1 {
						continue // the baseline itself
					}
					got := run(spec, procs)
					if got.schedule != want.schedule {
						t.Errorf("spec=%v GOMAXPROCS=%d: schedule diverged from spec-off baseline", spec, procs)
					}
					if got.trace != want.trace {
						t.Errorf("spec=%v GOMAXPROCS=%d: decider trace diverged from spec-off baseline", spec, procs)
					}
					if spec {
						if got.stats.Hits == 0 {
							t.Errorf("GOMAXPROCS=%d: speculation enabled but no hits (%+v)", procs, got.stats)
						}
						if total := got.stats.Hits + got.stats.Misses + got.stats.Cancelled; total != got.stats.Dispatched {
							t.Errorf("GOMAXPROCS=%d: speculation outcomes %+v do not account for every dispatch", procs, got.stats)
						}
					}
				}
			}

			// The sharded batch path with speculation on: every replica
			// speculates in its own shard and must reproduce the baseline.
			runtime.GOMAXPROCS(8)
			results, err := RunParallel([]*job.Set{set, set, set},
				func() Driver { return NewDynP(dec.make(t)).SetWorkers(0).SetSpeculation(true) }, 8)
			if err != nil {
				t.Fatalf("RunParallel spec-on: %v", err)
			}
			for i, res := range results {
				if got := fingerprint(res); got != want.schedule {
					t.Errorf("spec-on replica %d: parallel schedule diverged from sequential baseline", i)
				}
			}
		})
	}
}
