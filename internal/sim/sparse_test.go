package sim

import (
	"testing"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// TestAllSchedulersAgreeWithoutContention: when the machine never
// saturates (every job fits at submission), scheduling policy is
// irrelevant — every driver must start every job immediately. This pins
// down a subtle class of bugs where a scheduler delays work the machine
// could run.
func TestAllSchedulersAgreeWithoutContention(t *testing.T) {
	r := rng.New(61)
	const capacity = 64
	set := &job.Set{Name: "sparse", Machine: capacity}
	clock := int64(0)
	for i := 0; i < 120; i++ {
		// Interarrival always exceeds every runtime: no overlap at all.
		clock += 1000 + int64(r.Intn(1000))
		est := int64(1 + r.Intn(500))
		set.Jobs = append(set.Jobs, &job.Job{
			ID: job.ID(i + 1), Submit: clock,
			Width: 1 + r.Intn(capacity), Estimate: est, Runtime: 1 + r.Int63n(est),
		})
	}
	drivers := []Driver{
		&Static{Policy: policy.FCFS},
		&Static{Policy: policy.SJF},
		&Static{Policy: policy.LJF},
		NewDynP(core.Simple{}),
		NewDynP(core.Advanced{}),
		NewDynP(core.Preferred{Policy: policy.SJF}),
		&EASY{Base: policy.FCFS},
	}
	for _, d := range drivers {
		res, err := Run(set, d, WithVerify())
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for _, rec := range res.Records {
			if rec.Start != rec.Job.Submit {
				t.Fatalf("%s: %s delayed to %d without contention",
					d.Name(), rec.Job, rec.Start)
			}
		}
	}
}

// TestModerateOverlapSchedulersStillAgreeOnStarts: with pairwise overlap
// but never more demand than capacity, starts must still be immediate.
func TestModerateOverlapSchedulersStillAgreeOnStarts(t *testing.T) {
	set := &job.Set{Name: "overlap", Machine: 10}
	for i := 0; i < 50; i++ {
		set.Jobs = append(set.Jobs, &job.Job{
			ID: job.ID(i + 1), Submit: int64(i * 10),
			Width: 5, Estimate: 20, Runtime: 20,
		})
	}
	// At any instant at most two jobs overlap (widths 5+5 = machine).
	for _, d := range []Driver{
		&Static{Policy: policy.LJF},
		NewDynP(core.Preferred{Policy: policy.SJF}),
		&EASY{Base: policy.FCFS},
	} {
		res, err := Run(set, d, WithVerify())
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for _, rec := range res.Records {
			if rec.Start != rec.Job.Submit {
				t.Fatalf("%s: %s delayed", d.Name(), rec.Job)
			}
		}
	}
}
