package sim

import (
	"testing"
	"testing/quick"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

func mkSet(machine int, jobs ...*job.Job) *job.Set {
	return &job.Set{Name: "test", Machine: machine, Jobs: jobs}
}

func j(id job.ID, submit int64, width int, est, run int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: run}
}

func recordOf(res *Result, id job.ID) Record {
	for _, r := range res.Records {
		if r.Job.ID == id {
			return r
		}
	}
	return Record{}
}

func TestSingleJob(t *testing.T) {
	set := mkSet(4, j(1, 10, 2, 100, 60))
	res, err := Run(set, &Static{Policy: policy.FCFS}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	r := recordOf(res, 1)
	if r.Start != 10 || r.Finish != 70 {
		t.Fatalf("record = %+v", r)
	}
	if res.Makespan != 70 || res.First != 10 {
		t.Fatalf("makespan/first = %d/%d", res.Makespan, res.First)
	}
}

func TestRejectsInvalidSet(t *testing.T) {
	set := mkSet(4, j(1, 0, 8, 10, 10)) // wider than the machine
	if _, err := Run(set, &Static{Policy: policy.FCFS}); err == nil {
		t.Fatal("invalid set accepted")
	}
}

func TestSequentialOnFullMachine(t *testing.T) {
	set := mkSet(2,
		j(1, 0, 2, 50, 50),
		j(2, 0, 2, 50, 50),
	)
	res, err := Run(set, &Static{Policy: policy.FCFS}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if r := recordOf(res, 2); r.Start != 50 {
		t.Fatalf("second job started at %d, want 50", r.Start)
	}
}

func TestEarlyCompletionPullsStartForward(t *testing.T) {
	// Job 1 estimates 100 but runs 30; job 2 (same width) must start at
	// 30, not at the estimated end.
	set := mkSet(2,
		j(1, 0, 2, 100, 30),
		j(2, 0, 2, 100, 100),
	)
	res, err := Run(set, &Static{Policy: policy.FCFS}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if r := recordOf(res, 2); r.Start != 30 {
		t.Fatalf("job 2 started at %d, want 30", r.Start)
	}
}

func TestBackfillingHappens(t *testing.T) {
	// Machine 4. Job 1 runs [0, 100) on 3 procs. Job 2 (width 4) must
	// wait until 100. Job 3 (width 1, est 50) backfills beside job 1.
	set := mkSet(4,
		j(1, 0, 3, 100, 100),
		j(2, 1, 4, 100, 100),
		j(3, 2, 1, 50, 50),
	)
	res, err := Run(set, &Static{Policy: policy.FCFS}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if r := recordOf(res, 2); r.Start != 100 {
		t.Fatalf("wide job started at %d, want 100", r.Start)
	}
	if r := recordOf(res, 3); r.Start != 2 {
		t.Fatalf("backfill job started at %d, want 2", r.Start)
	}
}

func TestStaticPoliciesDiffer(t *testing.T) {
	// One processor, one running blocker, then a long and a short job:
	// SJF runs the short one first, LJF the long one first.
	mk := func() *job.Set {
		return mkSet(1,
			j(1, 0, 1, 10, 10),
			j(2, 1, 1, 100, 100),
			j(3, 2, 1, 20, 20),
		)
	}
	sjf, err := Run(mk(), &Static{Policy: policy.SJF}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	ljf, err := Run(mk(), &Static{Policy: policy.LJF}, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if s3, s2 := recordOf(sjf, 3).Start, recordOf(sjf, 2).Start; !(s3 < s2) {
		t.Errorf("SJF: short job at %d not before long at %d", s3, s2)
	}
	if s2, s3 := recordOf(ljf, 2).Start, recordOf(ljf, 3).Start; !(s2 < s3) {
		t.Errorf("LJF: long job at %d not before short at %d", s2, s3)
	}
}

func TestPolicyTimeAccounting(t *testing.T) {
	set := mkSet(1, j(1, 0, 1, 10, 10), j(2, 5, 1, 10, 10))
	res, err := Run(set, &Static{Policy: policy.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, d := range res.PolicyTime {
		total += d
	}
	if total != res.Makespan-res.First {
		t.Fatalf("policy time %d != simulated span %d", total, res.Makespan-res.First)
	}
}

// TestPolicyTimeSpansTotal locks the final-span attribution: for every
// driver — including the self-tuning ones, whose active policy changes
// mid-run, with and without the speculative pipeline — the per-policy
// spans must sum exactly to Makespan - First.
//
// This is the regression gate for Run's tail guard: on every real
// workload the last event is a completion, Makespan only advances on
// completions, and the completing iteration's span attribution already
// reaches the makespan — so the guard itself is dead code and totality
// holds by construction. The test asserts the invariant the guard
// backstops, so a future loop restructure that CAN end before the
// makespan (making the guard live) is still covered.
func TestPolicyTimeSpansTotal(t *testing.T) {
	drivers := []func() Driver{
		func() Driver { return &Static{Policy: policy.FCFS} },
		func() Driver { return &Static{Policy: policy.SJF} },
		func() Driver { return NewDynP(core.Simple{}) },
		func() Driver { return NewDynP(core.Advanced{}) },
		func() Driver { return NewDynP(core.Preferred{Policy: policy.SJF}) },
		func() Driver { return NewDynP(core.Simple{}).SetSpeculation(true) },
		func() Driver { return NewDynP(core.Advanced{}).SetSpeculation(true) },
		func() Driver { return NewDynP(core.Preferred{Policy: policy.SJF}).SetSpeculation(true) },
		func() Driver { return &EASY{Base: policy.FCFS} },
	}
	for seed := uint64(0); seed < 5; seed++ {
		set := randomSet(seed, 120, 8)
		for _, mk := range drivers {
			d := mk()
			res, err := Run(set, d)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, d.Name(), err)
			}
			var total int64
			for _, span := range res.PolicyTime {
				total += span
			}
			if total != res.Makespan-res.First {
				t.Fatalf("seed %d, %s: policy spans sum to %d, simulated span is %d",
					seed, d.Name(), total, res.Makespan-res.First)
			}
			// The attribution must reach the makespan exactly — the
			// stronger form of "the tail span is empty today".
			if res.Makespan < res.First {
				t.Fatalf("seed %d, %s: makespan %d before first submission %d",
					seed, d.Name(), res.Makespan, res.First)
			}
		}
	}
}

func TestDynPDriverRuns(t *testing.T) {
	set := mkSet(2,
		j(1, 0, 2, 100, 100),
		j(2, 1, 1, 10, 10),
		j(3, 2, 1, 200, 200),
		j(4, 3, 2, 50, 50),
	)
	d := NewDynP(core.Advanced{})
	res, err := Run(set, d, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("completed %d jobs", len(res.Records))
	}
	st := d.Stats()
	if st.Steps != res.Events {
		t.Fatalf("tuner steps %d != scheduling events %d", st.Steps, res.Events)
	}
}

func TestQueueProbe(t *testing.T) {
	set := mkSet(1, j(1, 0, 1, 10, 10), j(2, 0, 1, 10, 10))
	var samples int
	_, err := Run(set, &Static{Policy: policy.FCFS},
		WithQueueProbe(func(now int64, queued int) { samples++ }))
	if err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("probe never invoked")
	}
}

// randomSet builds a random but valid job set.
func randomSet(seed uint64, n, machine int) *job.Set {
	r := rng.New(seed)
	set := &job.Set{Name: "rand", Machine: machine}
	var clock int64
	for i := 0; i < n; i++ {
		clock += int64(r.Intn(30))
		est := int64(1 + r.Intn(200))
		run := 1 + r.Int63n(est)
		set.Jobs = append(set.Jobs, &job.Job{
			ID: job.ID(i + 1), Submit: clock,
			Width: 1 + r.Intn(machine), Estimate: est, Runtime: run,
		})
	}
	return set
}

// checkInvariants verifies the fundamental correctness properties of a
// completed simulation: every job ran exactly once, after submission, for
// exactly its actual run time, and the machine was never over-subscribed.
func checkInvariants(t *testing.T, res *Result) {
	t.Helper()
	seen := make(map[job.ID]bool)
	type delta struct {
		t int64
		d int
	}
	var deltas []delta
	for _, r := range res.Records {
		if seen[r.Job.ID] {
			t.Fatalf("%s completed twice", r.Job)
		}
		seen[r.Job.ID] = true
		if r.Start < r.Job.Submit {
			t.Fatalf("%s started before submission at %d", r.Job, r.Start)
		}
		if r.Finish-r.Start != r.Job.Runtime {
			t.Fatalf("%s ran %d, want %d", r.Job, r.Finish-r.Start, r.Job.Runtime)
		}
		deltas = append(deltas, delta{r.Start, r.Job.Width}, delta{r.Finish, -r.Job.Width})
	}
	if len(seen) != len(res.Set.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(seen), len(res.Set.Jobs))
	}
	// Sweep usage over time.
	for i := 1; i < len(deltas); i++ {
		for k := i; k > 0 && (deltas[k].t < deltas[k-1].t ||
			(deltas[k].t == deltas[k-1].t && deltas[k].d < deltas[k-1].d)); k-- {
			deltas[k], deltas[k-1] = deltas[k-1], deltas[k]
		}
	}
	used := 0
	for _, d := range deltas {
		used += d.d
		if used > res.Set.Machine {
			t.Fatalf("machine over-subscribed: %d > %d at t=%d", used, res.Set.Machine, d.t)
		}
	}
	if used != 0 {
		t.Fatalf("usage sweep did not return to zero: %d", used)
	}
}

func TestPropertyInvariantsAllSchedulers(t *testing.T) {
	drivers := func() []Driver {
		return []Driver{
			&Static{Policy: policy.FCFS},
			&Static{Policy: policy.SJF},
			&Static{Policy: policy.LJF},
			NewDynP(core.Simple{}),
			NewDynP(core.Advanced{}),
			NewDynP(core.Preferred{Policy: policy.SJF}),
		}
	}
	if err := quick.Check(func(seed uint64) bool {
		set := randomSet(seed, 60, 8)
		for _, d := range drivers() {
			res, err := Run(set, d, WithVerify())
			if err != nil {
				t.Logf("seed %d, %s: %v", seed, d.Name(), err)
				return false
			}
			checkInvariants(t, res)
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNoIdleWithWaitingWork(t *testing.T) {
	// Work conservation at scheduling instants: whenever a job waits,
	// the machine cannot fit it now (checked through WithVerify's plan
	// feasibility plus this coarse throughput check: total completion
	// equals the job count).
	for seed := uint64(0); seed < 10; seed++ {
		set := randomSet(seed, 80, 4)
		res, err := Run(set, &Static{Policy: policy.FCFS}, WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != len(set.Jobs) {
			t.Fatal("lost jobs")
		}
	}
}

func TestDeterminism(t *testing.T) {
	set := randomSet(7, 100, 8)
	a, err := Run(set, NewDynP(core.Advanced{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(set, NewDynP(core.Advanced{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].Job.ID != b.Records[i].Job.ID ||
			a.Records[i].Start != b.Records[i].Start {
			t.Fatalf("non-deterministic at record %d", i)
		}
	}
}

func TestDynPPreferredSpendsMoreTimeInSJF(t *testing.T) {
	// The SJF-preferred decider must spend at least as much active time
	// in SJF as the advanced decider on the same input.
	set := randomSet(42, 200, 8)
	adv := NewDynP(core.Advanced{})
	resAdv, err := Run(set, adv)
	if err != nil {
		t.Fatal(err)
	}
	pref := NewDynP(core.Preferred{Policy: policy.SJF})
	resPref, err := Run(set, pref)
	if err != nil {
		t.Fatal(err)
	}
	advSJF := resAdv.PolicyTime[policy.SJF]
	prefSJF := resPref.PolicyTime[policy.SJF]
	if prefSJF < advSJF {
		t.Fatalf("preferred decider spent %d in SJF, advanced %d", prefSJF, advSJF)
	}
}
