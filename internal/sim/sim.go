// Package sim is the discrete event simulator of a planning-based resource
// management system. The machine is a space-shared pool of identical
// processors; scheduling events are job submissions and job completions; at
// every event the active scheduler driver recomputes the full schedule and
// the engine starts all jobs whose planned start time equals the current
// simulation time.
//
// Jobs run for their actual run time, which is at most their estimate.
// Because running jobs reserve their processors until the estimated end,
// every waiting job's planned start time coincides with the current time or
// with the estimated end of a running job — and the corresponding actual
// completion event fires no later than that, so starts are always triggered
// by an event and the event loop needs no additional timers.
package sim

import (
	"fmt"

	"dynp/internal/eventq"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// Driver produces the full schedule at every scheduling event. It is
// implemented by Static (one fixed policy) and by DynP (the self-tuning
// dynP scheduler of internal/core).
type Driver interface {
	// Name identifies the scheduler in result tables.
	Name() string
	// Plan computes a full schedule for the waiting jobs.
	Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule
	// ActivePolicy returns the policy the last plan was built with.
	ActivePolicy() policy.Policy
}

// Static is a Driver that always uses a single policy — the paper's basic
// scheduling approach used as the baseline.
type Static struct {
	Policy policy.Policy
}

// Name implements Driver.
func (s *Static) Name() string { return s.Policy.String() }

// Plan implements Driver.
func (s *Static) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	return plan.Build(now, capacity, running, waiting, s.Policy)
}

// ActivePolicy implements Driver.
func (s *Static) ActivePolicy() policy.Policy { return s.Policy }

// Record is the outcome of one job.
type Record struct {
	Job    *job.Job
	Start  int64
	Finish int64 // Start + actual run time
}

// Wait returns the job's waiting time.
func (r Record) Wait() int64 { return r.Start - r.Job.Submit }

// Response returns the job's response time (wait + run).
func (r Record) Response() int64 { return r.Finish - r.Job.Submit }

// Result is the outcome of one simulation run.
type Result struct {
	Set       *job.Set
	Scheduler string
	Records   []Record // in completion order
	Makespan  int64    // last completion time
	First     int64    // first submission time
	Events    int      // scheduling events processed

	// PolicyTime maps each policy to the simulated time it was active,
	// weighted by the span between scheduling events. For static drivers
	// it contains a single entry.
	PolicyTime map[policy.Policy]int64
}

// event payloads.
type evKind int

const (
	evFinish evKind = iota // processed before submissions at equal time
	evSubmit
)

type event struct {
	kind evKind
	job  *job.Job
}

// Option configures a simulation run.
type Option func(*engine)

// WithVerify makes the engine verify every schedule against the current
// machine state (slow; used by tests and debugging).
func WithVerify() Option { return func(e *engine) { e.verify = true } }

// WithQueueProbe registers a callback invoked after every scheduling event
// with the current time and waiting-queue length, for queue-dynamics
// analyses.
func WithQueueProbe(probe func(now int64, queued int)) Option {
	return func(e *engine) { e.probe = probe }
}

type engine struct {
	set      *job.Set
	driver   Driver
	events   eventq.Queue[event]
	running  []plan.Running
	waiting  []*job.Job
	used     int // processors in use
	verify   bool
	probe    func(int64, int)
	finished map[job.ID]bool
}

// Run simulates the job set under the given scheduler driver and returns
// the per-job records and run statistics. The job set must validate.
func Run(set *job.Set, driver Driver, opts ...Option) (*Result, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	e := &engine{set: set, driver: driver, finished: make(map[job.ID]bool, len(set.Jobs))}
	for _, o := range opts {
		o(e)
	}
	for _, j := range set.Jobs {
		e.events.Push(j.Submit, int(evSubmit), event{evSubmit, j})
	}

	res := &Result{
		Set:        set,
		Scheduler:  driver.Name(),
		Records:    make([]Record, 0, len(set.Jobs)),
		PolicyTime: make(map[policy.Policy]int64),
	}
	if len(set.Jobs) > 0 {
		res.First = set.Jobs[0].Submit
	}

	starts := make(map[job.ID]int64, len(set.Jobs))
	lastEvent := res.First
	for e.events.Len() > 0 {
		head, _ := e.events.Peek()
		now := head.Time

		// Attribute the elapsed span to the policy active since the
		// previous event.
		if now > lastEvent {
			res.PolicyTime[e.driver.ActivePolicy()] += now - lastEvent
			lastEvent = now
		}

		// Apply every event at this instant before replanning:
		// completions free processors, submissions extend the queue.
		for e.events.Len() > 0 {
			if h, _ := e.events.Peek(); h.Time != now {
				break
			}
			ev, _ := e.events.Pop()
			switch ev.Payload.kind {
			case evFinish:
				e.removeRunning(ev.Payload.job)
				res.Records = append(res.Records, Record{
					Job:    ev.Payload.job,
					Start:  starts[ev.Payload.job.ID],
					Finish: now,
				})
				if now > res.Makespan {
					res.Makespan = now
				}
			case evSubmit:
				e.waiting = append(e.waiting, ev.Payload.job)
			}
		}

		// One scheduling event: recompute the full schedule.
		schedule := e.driver.Plan(now, set.Machine, e.running, e.waiting)
		res.Events++
		if e.verify {
			if err := schedule.Verify(e.running); err != nil {
				return nil, fmt.Errorf("sim: at t=%d: %w", now, err)
			}
		}

		// Launch the jobs planned to start right now.
		for _, entry := range schedule.StartingNow() {
			j := entry.Job
			if e.used+j.Width > set.Machine {
				return nil, fmt.Errorf("sim: at t=%d: starting %s exceeds capacity (%d used of %d)",
					now, j, e.used, set.Machine)
			}
			e.used += j.Width
			e.running = append(e.running, plan.Running{Job: j, Start: now})
			e.removeWaiting(j)
			starts[j.ID] = now
			e.events.Push(now+j.Runtime, int(evFinish), event{evFinish, j})
		}

		if e.probe != nil {
			e.probe(now, len(e.waiting))
		}
	}

	if len(res.Records) != len(set.Jobs) {
		return nil, fmt.Errorf("sim: %d of %d jobs completed", len(res.Records), len(set.Jobs))
	}
	return res, nil
}

func (e *engine) removeRunning(j *job.Job) {
	for i, r := range e.running {
		if r.Job.ID == j.ID {
			e.used -= j.Width
			e.running = append(e.running[:i], e.running[i+1:]...)
			if e.finished[j.ID] {
				panic(fmt.Sprintf("sim: %s finished twice", j))
			}
			e.finished[j.ID] = true
			return
		}
	}
	panic(fmt.Sprintf("sim: finish event for %s which is not running", j))
}

func (e *engine) removeWaiting(j *job.Job) {
	for i, w := range e.waiting {
		if w.ID == j.ID {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sim: started %s which is not waiting", j))
}
