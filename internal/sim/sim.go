// Package sim is the discrete event simulator of a planning-based resource
// management system. The machine is a space-shared pool of identical
// processors; scheduling events are job submissions and job completions; at
// every event the active scheduler driver recomputes the full schedule and
// the engine starts all jobs whose planned start time equals the current
// simulation time.
//
// Jobs run for their actual run time, which is at most their estimate.
// Because running jobs reserve their processors until the estimated end,
// every waiting job's planned start time coincides with the current time or
// with the estimated end of a running job — and the corresponding actual
// completion event fires no later than that, so starts are always triggered
// by an event and the event loop needs no additional timers.
//
// The scheduling mechanics — machine state, replan-and-launch, finish
// transitions — live in internal/engine, shared with the online RMS
// (internal/rms). Run is a thin virtual-clock harness over that engine:
// it orders the known submission and completion events in a queue, jumps
// the engine's clock to each instant, applies the instant's events, and
// triggers one shared replanning step.
package sim

import (
	"fmt"

	"dynp/internal/engine"
	"dynp/internal/eventq"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// Driver produces the full schedule at every scheduling event. It is the
// engine's planning interface, implemented here by Static (one fixed
// policy), DynP (the self-tuning dynP scheduler of internal/core) and
// EASY (aggressive backfilling).
type Driver = engine.Driver

// Static is a Driver that always uses a single policy — the paper's basic
// scheduling approach used as the baseline.
type Static struct {
	Policy policy.Policy
}

// Name implements Driver.
func (s *Static) Name() string { return s.Policy.Name() }

// Plan implements Driver.
func (s *Static) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	return plan.Build(now, capacity, running, waiting, s.Policy)
}

// ActivePolicy implements Driver.
func (s *Static) ActivePolicy() policy.Policy { return s.Policy }

// Record is the outcome of one job.
type Record struct {
	Job    *job.Job
	Start  int64
	Finish int64 // Start + actual run time
}

// Wait returns the job's waiting time.
func (r Record) Wait() int64 { return r.Start - r.Job.Submit }

// Response returns the job's response time (wait + run).
func (r Record) Response() int64 { return r.Finish - r.Job.Submit }

// Result is the outcome of one simulation run.
type Result struct {
	Set       *job.Set
	Scheduler string
	Records   []Record // in completion order
	Makespan  int64    // last completion time
	First     int64    // first submission time
	Events    int      // scheduling events processed

	// PolicyTime maps each policy to the simulated time it was active,
	// weighted by the span between scheduling events; the tail from the
	// last scheduling event to the makespan is attributed to the policy
	// active then, so the spans always sum to Makespan - First. For
	// static drivers it contains a single entry.
	PolicyTime map[policy.Policy]int64
}

// event payloads.
type evKind int

const (
	evFinish evKind = iota // processed before submissions at equal time
	evSubmit
)

type event struct {
	kind evKind
	job  *job.Job
}

// runConfig collects the per-run options.
type runConfig struct {
	verify    bool
	observers []engine.Observer
}

// Option configures a simulation run.
type Option func(*runConfig)

// WithVerify makes the engine verify every schedule against the current
// machine state (slow; used by tests and debugging).
func WithVerify() Option { return func(c *runConfig) { c.verify = true } }

// WithObserver attaches an observer to the run's scheduling engine: it
// receives every transition (submissions, starts, completions and one
// EventPlan per scheduling event) as structured engine.Event values.
func WithObserver(o engine.Observer) Option {
	return func(c *runConfig) { c.observers = append(c.observers, o) }
}

// WithQueueProbe registers a callback invoked after every scheduling event
// with the current time and waiting-queue length, for queue-dynamics
// analyses. It is an adapter over WithObserver.
func WithQueueProbe(probe func(now int64, queued int)) Option {
	return WithObserver(engine.ObserverFunc(func(ev engine.Event) {
		if ev.Kind == engine.EventPlan {
			probe(ev.Time, ev.Queued)
		}
	}))
}

// Run simulates the job set under the given scheduler driver and returns
// the per-job records and run statistics. The job set must validate.
func Run(set *job.Set, driver Driver, opts ...Option) (*Result, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}

	res := &Result{
		Set:        set,
		Scheduler:  driver.Name(),
		Records:    make([]Record, 0, len(set.Jobs)),
		PolicyTime: make(map[policy.Policy]int64),
	}
	if len(set.Jobs) > 0 {
		res.First = set.Jobs[0].Submit
	}

	// Every job submits once and finishes once, so the queue never holds
	// more than two events per job; reserving that bound up front keeps
	// the heap from reallocating mid-run — which adds up when RunParallel
	// replays thousands of replicas.
	var events eventq.Queue[event]
	events.Reserve(2 * len(set.Jobs))
	for _, j := range set.Jobs {
		events.Push(j.Submit, int(evSubmit), event{evSubmit, j})
	}

	// The engine launches jobs; the harness turns every launch into the
	// completion event the virtual clock already knows about.
	starts := make(map[job.ID]int64, len(set.Jobs))
	finished := make(map[job.ID]bool, len(set.Jobs))
	engOpts := []engine.Option{
		engine.WithStrictLaunch(),
		engine.WithHooks(engine.Hooks{
			Started: func(j *job.Job, now int64) {
				starts[j.ID] = now
				events.Push(now+j.Runtime, int(evFinish), event{evFinish, j})
			},
		}),
	}
	if cfg.verify {
		engOpts = append(engOpts, engine.WithVerify())
	}
	for _, o := range cfg.observers {
		engOpts = append(engOpts, engine.WithObserver(o))
	}
	// Observer-driven deciders watch the engine they decide for.
	if dp, ok := driver.(*DynP); ok {
		if o := dp.DeciderObserver(); o != nil {
			engOpts = append(engOpts, engine.WithObserver(o))
		}
	}
	eng := engine.New(set.Machine, driver, res.First, engOpts...)

	// Speculating drivers overlap the next event's what-if builds with
	// this loop's bookkeeping: right after each replanning step the
	// harness pre-pops the next instant's whole batch — safe, because
	// events are only ever pushed during Replan (the Started hook), so
	// the batch is complete the moment the step returns — predicts the
	// post-batch machine state and hands it over (engine.Lookaheader).
	la, _ := driver.(engine.Lookaheader)
	if la != nil && !la.SpeculationEnabled() {
		la = nil
	}
	if la != nil {
		defer la.CancelLookahead()
	}

	// Two batch buffers alternate: while one holds the pre-popped next
	// batch, the other (already consumed) is free to take the one after.
	var bufs [2][]eventq.Event[event]
	bufs[0] = make([]eventq.Event[event], 0, 16)
	bufs[1] = make([]eventq.Event[event], 0, 16)
	cur := 0
	var pending []eventq.Event[event]

	lastEvent := res.First
	for events.Len() > 0 || pending != nil {
		// The instant's batch: pre-popped by the previous iteration's
		// lookahead, or drained from the queue head now.
		batch := pending
		pending = nil
		if batch == nil {
			head, _ := events.Peek()
			batch = popBatch(&events, head.Time, bufs[cur][:0])
		}
		now := batch[0].Time

		// Attribute the elapsed span to the policy active since the
		// previous event.
		if now > lastEvent {
			res.PolicyTime[driver.ActivePolicy()] += now - lastEvent
			lastEvent = now
		}
		eng.JumpTo(now)

		// Apply every event at this instant before replanning:
		// completions free processors, submissions extend the queue.
		for _, ev := range batch {
			switch ev.Payload.kind {
			case evFinish:
				j := ev.Payload.job
				if !eng.Finish(j.ID, engine.FinishCompleted) {
					if finished[j.ID] {
						panic(fmt.Sprintf("sim: %s finished twice", j))
					}
					panic(fmt.Sprintf("sim: finish event for %s which is not running", j))
				}
				finished[j.ID] = true
				res.Records = append(res.Records, Record{
					Job:    j,
					Start:  starts[j.ID],
					Finish: now,
				})
				if now > res.Makespan {
					res.Makespan = now
				}
			case evSubmit:
				eng.Submit(ev.Payload.job)
			}
		}

		// One scheduling event: recompute the full schedule and launch
		// the jobs planned to start right now.
		if err := eng.Replan(); err != nil {
			return nil, err
		}
		res.Events++

		// Hand the driver the next event's predicted inputs while its
		// batch is still queued knowledge, not applied state.
		if la != nil && events.Len() > 0 {
			head, _ := events.Peek()
			cur ^= 1
			pending = popBatch(&events, head.Time, bufs[cur][:0])
			la.Lookahead(head.Time, eng.Effective(),
				predictRunning(eng, pending), predictWaiting(eng, pending))
		}
	}

	// The last completion is itself a scheduling event, so this tail span
	// is empty today: Makespan only advances on finish events, every
	// finish is processed by an iteration above, and that iteration's
	// span attribution already reaches now == Makespan. The guard is kept
	// so PolicyTime stays total by construction should the loop ever end
	// before the makespan; TestPolicyTimeSpansTotal asserts the totality
	// invariant either way.
	if res.Makespan > lastEvent {
		res.PolicyTime[driver.ActivePolicy()] += res.Makespan - lastEvent
	}

	if len(res.Records) != len(set.Jobs) {
		return nil, fmt.Errorf("sim: %d of %d jobs completed", len(res.Records), len(set.Jobs))
	}
	return res, nil
}

// popBatch drains every event scheduled at exactly time t into buf and
// returns it, preserving dispatch order. The queue head must lie at t.
func popBatch(q *eventq.Queue[event], t int64, buf []eventq.Event[event]) []eventq.Event[event] {
	for {
		ev, ok := q.PopIf(t)
		if !ok {
			return buf
		}
		buf = append(buf, ev)
	}
}

// predictRunning returns the running set as the next replanning step will
// see it: the current one minus the batch's completions. The order of the
// survivors is preserved but need not match the engine's post-splice
// representation — speculative base profiles are verified with
// plan.Base.EqualFrom, which compares promised availability, not
// representation.
func predictRunning(eng *engine.Engine, batch []eventq.Event[event]) []plan.Running {
	running := eng.Running()
	out := make([]plan.Running, 0, len(running))
outer:
	for _, r := range running {
		for _, ev := range batch {
			if ev.Payload.kind == evFinish && ev.Payload.job == r.Job {
				continue outer
			}
		}
		out = append(out, r)
	}
	return out
}

// predictWaiting returns the waiting queue as the next replanning step
// will see it: the current one plus the batch's submissions, in dispatch
// order — exactly how engine.Submit will append them, so the speculative
// verification's elementwise comparison holds. Completions never touch
// the waiting queue, and the set validation's width bound (no job wider
// than the machine) means the engine's unplaceable filter never splits
// it either.
func predictWaiting(eng *engine.Engine, batch []eventq.Event[event]) []*job.Job {
	waiting := eng.Waiting()
	out := make([]*job.Job, 0, len(waiting)+len(batch))
	out = append(out, waiting...)
	for _, ev := range batch {
		if ev.Payload.kind == evSubmit {
			out = append(out, ev.Payload.job)
		}
	}
	return out
}
