package sim

import (
	"strings"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// faultyDriver returns schedules crafted to violate the engine's
// assumptions, to prove the engine fails loudly instead of corrupting the
// machine state.
type faultyDriver struct {
	mode string
}

func (f *faultyDriver) Name() string                { return "faulty/" + f.mode }
func (f *faultyDriver) ActivePolicy() policy.Policy { return policy.FCFS }

func (f *faultyDriver) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	s := &plan.Schedule{Now: now, Capacity: capacity, Policy: policy.FCFS}
	switch f.mode {
	case "overcommit":
		// Start everything immediately regardless of capacity.
		for _, j := range waiting {
			s.Entries = append(s.Entries, plan.Entry{Job: j, Start: now})
		}
	case "never":
		// Plan everything for a far future that never arrives.
		for _, j := range waiting {
			s.Entries = append(s.Entries, plan.Entry{Job: j, Start: now + (1 << 40)})
		}
	}
	return s
}

func TestEngineRejectsOvercommittingDriver(t *testing.T) {
	set := mkSet(4,
		j(1, 0, 3, 10, 10),
		j(2, 0, 3, 10, 10),
	)
	_, err := Run(set, &faultyDriver{mode: "overcommit"})
	if err == nil {
		t.Fatal("over-committing driver accepted")
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEngineDetectsStarvingDriver(t *testing.T) {
	// A driver that never starts anything leaves jobs uncompleted; the
	// engine must report that rather than looping or succeeding.
	set := mkSet(4, j(1, 0, 1, 10, 10))
	_, err := Run(set, &faultyDriver{mode: "never"})
	if err == nil {
		t.Fatal("starving driver accepted")
	}
	if !strings.Contains(err.Error(), "jobs completed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifyCatchesFaultySchedules(t *testing.T) {
	set := mkSet(4,
		j(1, 0, 3, 10, 10),
		j(2, 0, 3, 10, 10),
	)
	_, err := Run(set, &faultyDriver{mode: "overcommit"}, WithVerify())
	if err == nil {
		t.Fatal("WithVerify accepted an infeasible schedule")
	}
}
