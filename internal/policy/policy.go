// Package policy defines the scheduling policies the dynP scheduler can
// switch between: the paper's three candidates FCFS, SJF and LJF, plus two
// extension policies (shortest/largest estimated area) used by the ablation
// experiments. A policy is an ordering of the waiting queue; the planning
// scheduler places jobs at their earliest feasible start time in that order.
package policy

import (
	"fmt"
	"sort"

	"dynp/internal/job"
)

// Policy identifies a waiting-queue ordering.
type Policy int

// The policies. FCFS, SJF and LJF are the candidate set of the paper;
// SAF and LAF (smallest/largest area first) are ablation extensions.
const (
	FCFS Policy = iota // first come, first serve
	SJF                // shortest (estimated run time) job first
	LJF                // longest (estimated run time) job first
	SAF                // smallest estimated area first (extension)
	LAF                // largest estimated area first (extension)
	numPolicies
)

// Candidates is the policy set of the self-tuning dynP scheduler as used
// throughout the paper.
var Candidates = []Policy{FCFS, SJF, LJF}

// All lists every implemented policy including the extensions.
var All = []Policy{FCFS, SJF, LJF, SAF, LAF}

var names = [numPolicies]string{"FCFS", "SJF", "LJF", "SAF", "LAF"}

// String returns the conventional abbreviation of the policy.
func (p Policy) String() string {
	if p < 0 || p >= numPolicies {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return names[p]
}

// Valid reports whether p is an implemented policy.
func (p Policy) Valid() bool { return p >= 0 && p < numPolicies }

// Parse converts an abbreviation such as "SJF" into a Policy.
func Parse(s string) (Policy, error) {
	for i, n := range names {
		if n == s {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", s)
}

// Less reports whether job a precedes job b under policy p. Every policy
// falls back to submission time and then job ID, so orderings are total
// and deterministic.
func (p Policy) Less(a, b *job.Job) bool {
	switch p {
	case SJF:
		if a.Estimate != b.Estimate {
			return a.Estimate < b.Estimate
		}
	case LJF:
		if a.Estimate != b.Estimate {
			return a.Estimate > b.Estimate
		}
	case SAF:
		if aa, ba := a.EstimatedArea(), b.EstimatedArea(); aa != ba {
			return aa < ba
		}
	case LAF:
		if aa, ba := a.EstimatedArea(), b.EstimatedArea(); aa != ba {
			return aa > ba
		}
	case FCFS:
		// fall through to the common tie-break
	default:
		panic(fmt.Sprintf("policy: Less on invalid policy %d", int(p)))
	}
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// Order returns a new slice with the jobs sorted according to p. The input
// slice is not modified; the planner orders a fresh copy of the waiting
// queue for every what-if schedule of a self-tuning step.
func (p Policy) Order(jobs []*job.Job) []*job.Job {
	out := append([]*job.Job(nil), jobs...)
	sort.SliceStable(out, func(i, j int) bool { return p.Less(out[i], out[j]) })
	return out
}
