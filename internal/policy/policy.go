// Package policy defines the scheduling policies the dynP scheduler can
// switch between: the paper's three candidates FCFS, SJF and LJF, two
// extension policies (shortest/largest estimated area) used by the
// ablation experiments, and — since the registry refactor — any
// user-registered ordering.
//
// A policy is an ordering of the waiting queue; the planning scheduler
// places jobs at their earliest feasible start time in that order. The
// ordering contract is strict: Less must be a total order over distinct
// jobs (use TieBreak to fall back to submission time and job ID), because
// the self-tuner's incrementally spliced order views and the planner's
// stable sorts are only byte-equivalent when every pair of jobs orders
// the same way everywhere.
//
// Policies are registered by name (see Register/Lookup); the five
// built-ins are pre-registered and their values compare identical across
// lookups, so existing code that switches on policy.FCFS keeps working.
package policy

import (
	"fmt"
	"sort"

	"dynp/internal/job"
)

// Policy is a waiting-queue ordering.
//
// Implementations must be comparable value types (no slice, map or
// function fields): Policy values are used as map keys and compared with
// == throughout the scheduler, and Register refuses non-comparable
// implementations. Less must be a strict total order over jobs with
// distinct IDs — deterministic, antisymmetric and transitive — ending in
// the TieBreak fallback so no distinct pair is unordered. Name must be
// stable: it keys serialized tuner state, journal checkpoints and result
// tables.
type Policy interface {
	// Name returns the policy's stable identifier, e.g. "SJF".
	Name() string
	// Less reports whether job a precedes job b under the policy.
	Less(a, b *job.Job) bool
}

// builtin implements the five built-in policies. The type is unexported
// and its values are created only below, so an invalid builtin cannot be
// constructed from the outside — configuration paths go through Lookup,
// which fails on unknown names instead of producing a value whose Less
// would panic mid-plan.
type builtin uint8

const (
	bFCFS builtin = iota // first come, first serve
	bSJF                 // shortest (estimated run time) job first
	bLJF                 // longest (estimated run time) job first
	bSAF                 // smallest estimated area first (extension)
	bLAF                 // largest estimated area first (extension)
	numBuiltins
)

var builtinNames = [numBuiltins]string{"FCFS", "SJF", "LJF", "SAF", "LAF"}

// The built-in policies. FCFS, SJF and LJF are the candidate set of the
// paper; SAF and LAF (smallest/largest area first) are ablation
// extensions. Each is a singleton: every lookup of "SJF" returns a value
// == SJF, so the built-ins behave exactly like the closed enum they
// replaced.
var (
	FCFS Policy = bFCFS
	SJF  Policy = bSJF
	LJF  Policy = bLJF
	SAF  Policy = bSAF
	LAF  Policy = bLAF
)

// Candidates is the policy set of the self-tuning dynP scheduler as used
// throughout the paper.
var Candidates = []Policy{FCFS, SJF, LJF}

// All lists every built-in policy including the extensions.
var All = []Policy{FCFS, SJF, LJF, SAF, LAF}

// Name implements Policy.
func (p builtin) Name() string {
	if p >= numBuiltins {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return builtinNames[p]
}

// String implements fmt.Stringer for debugging output.
func (p builtin) String() string { return p.Name() }

// Less implements Policy. Every built-in falls back to TieBreak, so the
// orderings are total and deterministic.
func (p builtin) Less(a, b *job.Job) bool {
	switch p {
	case bSJF:
		if a.Estimate != b.Estimate {
			return a.Estimate < b.Estimate
		}
	case bLJF:
		if a.Estimate != b.Estimate {
			return a.Estimate > b.Estimate
		}
	case bSAF:
		if aa, ba := a.EstimatedArea(), b.EstimatedArea(); aa != ba {
			return aa < ba
		}
	case bLAF:
		if aa, ba := a.EstimatedArea(), b.EstimatedArea(); aa != ba {
			return aa > ba
		}
	case bFCFS:
		// fall through to the common tie-break
	default:
		// Unreachable: builtin values outside the enum cannot be
		// constructed outside this package.
		panic(fmt.Sprintf("policy: Less on invalid builtin %d", int(p)))
	}
	return TieBreak(a, b)
}

// TieBreak is the common final comparison every policy must end in:
// submission time, then job ID. It makes any key-based ordering total —
// two jobs never share an ID, so TieBreak orients every distinct pair.
func TieBreak(a, b *job.Job) bool {
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// Order returns a new slice with the jobs sorted according to p. The
// input slice is not modified; the planner orders a fresh copy of the
// waiting queue for every what-if schedule of a self-tuning step.
func Order(p Policy, jobs []*job.Job) []*job.Job {
	out := append([]*job.Job(nil), jobs...)
	sort.SliceStable(out, func(i, j int) bool { return p.Less(out[i], out[j]) })
	return out
}
