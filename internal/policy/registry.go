// The policy registry: the open extension point that replaced the closed
// Policy enum. Policies resolve by stable name; unknown names fail at
// parse/registration time with an error, never mid-plan. Parameterized
// families (e.g. the PSBS-style fairness policies) register a parser that
// claims spec strings like "PSBS(a=0.5,r=2)".
package policy

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// family is one registered parameterized policy family.
type family struct {
	template string // display form for listings, e.g. "PSBS(a=<alpha>,r=<robust>)"
	parse    func(spec string) (Policy, bool, error)
}

var registry = struct {
	sync.RWMutex
	byName   map[string]Policy
	families []family
}{byName: make(map[string]Policy)}

func init() {
	for _, p := range All {
		MustRegister(p)
	}
	MustRegisterFamily(FairSizeTemplate, parseFairSize)
}

// Register adds a policy to the registry under its Name. Registration
// validates everything a config path previously discovered only by
// panicking mid-plan:
//
//   - the policy must be non-nil with a non-empty name;
//   - the dynamic type must be comparable (Policy values key maps and are
//     compared with == throughout the scheduler);
//   - the name must be free, or already bound to an identical value
//     (re-registering the same policy is a no-op, so init-order races in
//     user code stay harmless).
//
// Registering a name changes nothing about scheduling behaviour: a
// registered-but-unused policy is never consulted.
func Register(p Policy) error {
	if p == nil {
		return fmt.Errorf("policy: Register(nil)")
	}
	if !reflect.TypeOf(p).Comparable() {
		return fmt.Errorf("policy: %T is not comparable; Policy implementations must be comparable value types (no slice, map or func fields)", p)
	}
	name := p.Name()
	if name == "" {
		return fmt.Errorf("policy: Register with empty name (%T)", p)
	}
	registry.Lock()
	defer registry.Unlock()
	if old, ok := registry.byName[name]; ok {
		if old == p {
			return nil
		}
		return fmt.Errorf("policy: name %q already registered to %T", name, old)
	}
	registry.byName[name] = p
	return nil
}

// MustRegister is Register, panicking on error — for init-time use.
func MustRegister(p Policy) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// RegisterFamily adds a parameterized policy family. parse is offered
// every looked-up name that matches no exact registration; it reports
// whether it claims the spec, and an error when it claims a spec that is
// malformed (wrong parameter syntax, out-of-range values). template is
// the display form shown by Names, e.g. "PSBS(a=<alpha>,r=<robust>)".
//
// A policy returned by parse must obey the same contract as Register:
// comparable, stable name, total-order Less. Equal specs must parse to
// == values, so repeated lookups agree.
func RegisterFamily(template string, parse func(spec string) (Policy, bool, error)) error {
	if template == "" || parse == nil {
		return fmt.Errorf("policy: RegisterFamily needs a template and a parser")
	}
	registry.Lock()
	defer registry.Unlock()
	for _, f := range registry.families {
		if f.template == template {
			return fmt.Errorf("policy: family %q already registered", template)
		}
	}
	registry.families = append(registry.families, family{template, parse})
	return nil
}

// MustRegisterFamily is RegisterFamily, panicking on error.
func MustRegisterFamily(template string, parse func(spec string) (Policy, bool, error)) {
	if err := RegisterFamily(template, parse); err != nil {
		panic(err)
	}
}

// Lookup resolves a policy name: exact registrations first, then the
// registered families in registration order. Unknown names return an
// error — configuration paths fail here, at parse time, instead of
// carrying an invalid value into the planner.
func Lookup(name string) (Policy, error) {
	registry.RLock()
	p, ok := registry.byName[name]
	families := registry.families
	registry.RUnlock()
	if ok {
		return p, nil
	}
	for _, f := range families {
		p, claimed, err := f.parse(name)
		if err != nil {
			return nil, fmt.Errorf("policy: %q: %w", name, err)
		}
		if claimed {
			if p.Name() != name {
				return nil, fmt.Errorf("policy: family spec %q parsed to inconsistent name %q", name, p.Name())
			}
			return p, nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, Names())
}

// Parse is Lookup under its historical name.
func Parse(s string) (Policy, error) { return Lookup(s) }

// Names lists every registered policy name in sorted order, followed by
// the templates of the registered families — the enumeration behind the
// CLIs' -list output and the daemon's "policies" op.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.byName)+len(registry.families))
	for name := range registry.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	for _, f := range registry.families {
		out = append(out, f.template)
	}
	return out
}
