// The PSBS-style fairness-aware size-based policy family ("Practical
// Size-Based Scheduling"). Pure size-based orderings (SAF) minimise mean
// slowdown but starve large jobs and are brittle when run-time estimates
// are wrong — exactly the regime our workload models parameterize via
// overestimation factors. This family addresses both knobs:
//
//   - Fairness via virtual time. The ordering key is
//     quantizedArea + alpha*Submit. Aging by waiting time normally needs
//     the current clock, but in a pairwise comparison the now-terms
//     cancel: (area_a - alpha*(now-Submit_a)) < (area_b - ...) iff
//     area_a + alpha*Submit_a < area_b + alpha*Submit_b. alpha is
//     measured in processors: alpha = 8 means 8 processor-seconds of
//     size advantage expire per second a job has waited longer. alpha=0
//     is pure smallest-area-first; alpha -> infinity degenerates to
//     FCFS.
//
//   - Robustness to estimate error via size quantization. With robust
//     r > 1 the estimated area is bucketed to powers of r before entering
//     the key, so two jobs whose estimates differ by less than a factor
//     of r (the typical magnitude of user overestimation) land in the
//     same bucket and order by the fairness/tie-break terms instead of by
//     noise. r = 1 disables quantization.
package policy

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dynp/internal/job"
)

// FairSizeTemplate is the family's spec form as shown in listings.
const FairSizeTemplate = "PSBS(a=<alpha>,r=<robust>)"

// FairSize is a PSBS-style fairness-aware size-based policy. Construct
// with NewFairSize (which validates the parameters) or resolve a spec
// string like "PSBS(a=0.5,r=2)" through Lookup. The zero value is not a
// valid policy.
type FairSize struct {
	alpha  float64 // fairness weight in processors; >= 0
	robust float64 // size quantization base; >= 1 (1 = exact areas)
	name   string  // precomputed: Name() is on the per-decision hot path
}

// NewFairSize returns the family member with the given fairness weight
// (alpha, in processors) and estimate-error robustness (robust, the
// quantization base). alpha must be finite and >= 0; robust finite and
// >= 1.
func NewFairSize(alpha, robust float64) (FairSize, error) {
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha < 0 {
		return FairSize{}, fmt.Errorf("policy: FairSize alpha %v must be finite and >= 0", alpha)
	}
	if math.IsNaN(robust) || math.IsInf(robust, 0) || robust < 1 {
		return FairSize{}, fmt.Errorf("policy: FairSize robust %v must be finite and >= 1", robust)
	}
	return FairSize{alpha: alpha, robust: robust, name: fairSizeName(alpha, robust)}, nil
}

// MustFairSize is NewFairSize, panicking on invalid parameters.
func MustFairSize(alpha, robust float64) FairSize {
	p, err := NewFairSize(alpha, robust)
	if err != nil {
		panic(err)
	}
	return p
}

func fairSizeName(alpha, robust float64) string {
	return fmt.Sprintf("PSBS(a=%g,r=%g)", alpha, robust)
}

// Name implements Policy.
func (f FairSize) Name() string { return f.name }

// String implements fmt.Stringer.
func (f FairSize) String() string { return f.name }

// Alpha returns the fairness weight in processors.
func (f FairSize) Alpha() float64 { return f.alpha }

// Robust returns the size-quantization base.
func (f FairSize) Robust() float64 { return f.robust }

// key computes the virtual-time ordering key. Deterministic: a pure
// float function of the job's immutable fields and the policy's
// parameters, so every comparison of the same pair agrees everywhere
// (sorts, spliced views, memoized plans).
func (f FairSize) key(j *job.Job) float64 {
	area := float64(j.EstimatedArea())
	if f.robust > 1 && area > 0 {
		// Bucket to the nearest power of robust at or below the area.
		area = math.Pow(f.robust, math.Floor(math.Log(area)/math.Log(f.robust)))
	}
	return area + f.alpha*float64(j.Submit)
}

// Less implements Policy: ascending virtual-time key, TieBreak on equal
// keys. Keys are finite for valid jobs, so the order is total.
func (f FairSize) Less(a, b *job.Job) bool {
	if ka, kb := f.key(a), f.key(b); ka != kb {
		return ka < kb
	}
	return TieBreak(a, b)
}

// parseFairSize claims specs of the form "PSBS(a=<float>,r=<float>)".
// The spec must round-trip: it is compared against the constructed
// policy's canonical Name, so serialized names (always produced by Name)
// resolve exactly and a non-canonical spelling like "PSBS(a=0.50,r=2)"
// is rejected with a pointer to the canonical form.
func parseFairSize(spec string) (Policy, bool, error) {
	body, ok := strings.CutPrefix(spec, "PSBS(")
	if !ok {
		return nil, false, nil
	}
	body, ok = strings.CutSuffix(body, ")")
	if !ok {
		return nil, true, fmt.Errorf("malformed PSBS spec (want %s)", FairSizeTemplate)
	}
	parts := strings.Split(body, ",")
	if len(parts) != 2 || !strings.HasPrefix(parts[0], "a=") || !strings.HasPrefix(parts[1], "r=") {
		return nil, true, fmt.Errorf("malformed PSBS spec (want %s)", FairSizeTemplate)
	}
	alpha, err := strconv.ParseFloat(parts[0][len("a="):], 64)
	if err != nil {
		return nil, true, fmt.Errorf("bad alpha: %w", err)
	}
	robust, err := strconv.ParseFloat(parts[1][len("r="):], 64)
	if err != nil {
		return nil, true, fmt.Errorf("bad robust: %w", err)
	}
	p, err := NewFairSize(alpha, robust)
	if err != nil {
		return nil, true, err
	}
	if p.Name() != spec {
		return nil, true, fmt.Errorf("non-canonical PSBS spec (canonical: %s)", p.Name())
	}
	return p, true, nil
}
