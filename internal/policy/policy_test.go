package policy

import (
	"sort"
	"testing"
	"testing/quick"

	"dynp/internal/job"
	"dynp/internal/rng"
)

func jobs() []*job.Job {
	return []*job.Job{
		{ID: 1, Submit: 0, Width: 8, Estimate: 100, Runtime: 100},
		{ID: 2, Submit: 5, Width: 1, Estimate: 500, Runtime: 400},
		{ID: 3, Submit: 10, Width: 4, Estimate: 50, Runtime: 50},
		{ID: 4, Submit: 15, Width: 2, Estimate: 100, Runtime: 90},
	}
}

func ids(js []*job.Job) []job.ID {
	out := make([]job.ID, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func equalIDs(a, b []job.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOrderings(t *testing.T) {
	// Estimated areas: job 1 = 800, job 2 = 500, job 3 = 200, job 4 = 200.
	cases := []struct {
		p    Policy
		want []job.ID
	}{
		{FCFS, []job.ID{1, 2, 3, 4}},
		{SJF, []job.ID{3, 1, 4, 2}}, // estimates 50, 100 (submit 0), 100 (submit 15), 500
		{LJF, []job.ID{2, 1, 4, 3}}, // estimates 500, 100, 100, 50
		{SAF, []job.ID{3, 4, 2, 1}}, // area ties 200/200 broken by submit
		{LAF, []job.ID{1, 2, 3, 4}},
	}
	for _, c := range cases {
		got := ids(c.p.Order(jobs()))
		if !equalIDs(got, c.want) {
			t.Errorf("%v order = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestOrderDoesNotMutateInput(t *testing.T) {
	in := jobs()
	before := ids(in)
	SJF.Order(in)
	if !equalIDs(ids(in), before) {
		t.Fatal("Order mutated its input slice")
	}
}

func TestParseAndString(t *testing.T) {
	for _, p := range All {
		got, err := Parse(p.String())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse accepted junk")
	}
	if Policy(99).String() == "" {
		t.Error("out-of-range String empty")
	}
	if Policy(99).Valid() {
		t.Error("Policy(99) reported valid")
	}
}

func TestLessPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Less on invalid policy did not panic")
		}
	}()
	js := jobs()
	Policy(99).Less(js[0], js[1])
}

func TestCandidatesArePaperSet(t *testing.T) {
	if len(Candidates) != 3 || Candidates[0] != FCFS || Candidates[1] != SJF || Candidates[2] != LJF {
		t.Fatalf("Candidates = %v", Candidates)
	}
}

func TestPropertyTotalOrder(t *testing.T) {
	// For every policy, Less is a strict weak order: irreflexive,
	// asymmetric, and total up to identical (Submit, ID) pairs.
	r := rng.New(99)
	for _, p := range All {
		for trial := 0; trial < 50; trial++ {
			a := &job.Job{ID: job.ID(r.Intn(10)), Submit: int64(r.Intn(10)),
				Width: 1 + r.Intn(8), Estimate: int64(1 + r.Intn(100)), Runtime: 1}
			b := &job.Job{ID: job.ID(r.Intn(10)), Submit: int64(r.Intn(10)),
				Width: 1 + r.Intn(8), Estimate: int64(1 + r.Intn(100)), Runtime: 1}
			if p.Less(a, a) {
				t.Fatalf("%v: Less(a,a) true", p)
			}
			if p.Less(a, b) && p.Less(b, a) {
				t.Fatalf("%v: Less not asymmetric for %v, %v", p, a, b)
			}
			if a.ID != b.ID && !p.Less(a, b) && !p.Less(b, a) {
				// Totality: distinct IDs must order one way.
				if a.Submit != b.Submit || a.ID != b.ID {
					t.Fatalf("%v: neither %v < %v nor converse", p, a, b)
				}
			}
		}
	}
}

func TestPropertySJFSortedByEstimate(t *testing.T) {
	if err := quick.Check(func(ests []uint16) bool {
		js := make([]*job.Job, len(ests))
		for i, e := range ests {
			js[i] = &job.Job{ID: job.ID(i + 1), Submit: int64(i),
				Width: 1, Estimate: int64(e) + 1, Runtime: 1}
		}
		got := SJF.Order(js)
		return sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].Estimate != got[j].Estimate {
				return got[i].Estimate < got[j].Estimate
			}
			return got[i].Submit <= got[j].Submit
		})
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLJFIsReverseOfSJFByEstimate(t *testing.T) {
	if err := quick.Check(func(ests []uint16) bool {
		js := make([]*job.Job, len(ests))
		for i, e := range ests {
			js[i] = &job.Job{ID: job.ID(i + 1), Submit: 0,
				Width: 1, Estimate: int64(e) + 1, Runtime: 1}
		}
		s, l := SJF.Order(js), LJF.Order(js)
		for i := range s {
			if s[i].Estimate != l[len(l)-1-i].Estimate {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
