package policy

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"dynp/internal/job"
	"dynp/internal/rng"
)

func jobs() []*job.Job {
	return []*job.Job{
		{ID: 1, Submit: 0, Width: 8, Estimate: 100, Runtime: 100},
		{ID: 2, Submit: 5, Width: 1, Estimate: 500, Runtime: 400},
		{ID: 3, Submit: 10, Width: 4, Estimate: 50, Runtime: 50},
		{ID: 4, Submit: 15, Width: 2, Estimate: 100, Runtime: 90},
	}
}

func ids(js []*job.Job) []job.ID {
	out := make([]job.ID, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func equalIDs(a, b []job.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOrderings(t *testing.T) {
	// Estimated areas: job 1 = 800, job 2 = 500, job 3 = 200, job 4 = 200.
	cases := []struct {
		p    Policy
		want []job.ID
	}{
		{FCFS, []job.ID{1, 2, 3, 4}},
		{SJF, []job.ID{3, 1, 4, 2}}, // estimates 50, 100 (submit 0), 100 (submit 15), 500
		{LJF, []job.ID{2, 1, 4, 3}}, // estimates 500, 100, 100, 50
		{SAF, []job.ID{3, 4, 2, 1}}, // area ties 200/200 broken by submit
		{LAF, []job.ID{1, 2, 3, 4}},
	}
	for _, c := range cases {
		got := ids(Order(c.p, jobs()))
		if !equalIDs(got, c.want) {
			t.Errorf("%v order = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestOrderDoesNotMutateInput(t *testing.T) {
	in := jobs()
	before := ids(in)
	Order(SJF, in)
	if !equalIDs(ids(in), before) {
		t.Fatal("Order mutated its input slice")
	}
}

func TestParseAndName(t *testing.T) {
	for _, p := range All {
		got, err := Parse(p.Name())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.Name(), got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse accepted junk")
	}
}

// TestLookupErrsInsteadOfPanicking pins the registry fix for the old
// enum's failure mode: an invalid policy reached through an unvalidated
// config path used to panic inside Less mid-plan; now every config path
// resolves names through Lookup, which returns an error at parse time,
// and invalid values cannot be constructed at all.
func TestLookupErrsInsteadOfPanicking(t *testing.T) {
	for _, bad := range []string{"", "Policy(99)", "sjf", " SJF", "SJF ", "PSBS(", "PSBS(a=x,r=2)"} {
		if _, err := Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) succeeded, want error", bad)
		}
	}
	// The error enumerates what is registered, so a typo is actionable.
	_, err := Lookup("SJFF")
	if err == nil || !strings.Contains(err.Error(), "SJF") {
		t.Errorf("Lookup error %v does not list registered names", err)
	}
}

func TestCandidatesArePaperSet(t *testing.T) {
	if len(Candidates) != 3 || Candidates[0] != FCFS || Candidates[1] != SJF || Candidates[2] != LJF {
		t.Fatalf("Candidates = %v", Candidates)
	}
}

type testPolicy struct{ name string }

func (p testPolicy) Name() string            { return p.name }
func (p testPolicy) Less(a, b *job.Job) bool { return TieBreak(a, b) }

type uncomparablePolicy struct{ fn func(a, b *job.Job) bool }

func (p uncomparablePolicy) Name() string            { return "uncomparable" }
func (p uncomparablePolicy) Less(a, b *job.Job) bool { return p.fn(a, b) }

func TestRegister(t *testing.T) {
	p := testPolicy{name: "test-register-ok"}
	if err := Register(p); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Idempotent for the identical value.
	if err := Register(p); err != nil {
		t.Fatalf("re-Register identical: %v", err)
	}
	got, err := Lookup("test-register-ok")
	if err != nil || got != Policy(p) {
		t.Fatalf("Lookup after Register = %v, %v", got, err)
	}
	// A different value under a taken name is refused.
	if err := Register(testPolicy{name: "FCFS"}); err == nil {
		t.Fatal("Register shadowing FCFS succeeded")
	}
	if err := Register(nil); err == nil {
		t.Fatal("Register(nil) succeeded")
	}
	if err := Register(testPolicy{}); err == nil {
		t.Fatal("Register with empty name succeeded")
	}
	// Non-comparable implementations would panic as map keys deep in the
	// scheduler; registration is where that is caught.
	if err := Register(uncomparablePolicy{fn: TieBreak}); err == nil {
		t.Fatal("Register accepted a non-comparable implementation")
	}
}

func TestNamesListsBuiltinsAndFamilies(t *testing.T) {
	names := Names()
	for _, want := range []string{"FCFS", "SJF", "LJF", "SAF", "LAF", FairSizeTemplate} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Names() = %v, missing %q", names, want)
		}
	}
}

func TestFairSizeLookupRoundTrip(t *testing.T) {
	p := MustFairSize(0.5, 2)
	got, err := Lookup(p.Name())
	if err != nil {
		t.Fatalf("Lookup(%q): %v", p.Name(), err)
	}
	if got != Policy(p) {
		t.Fatalf("Lookup(%q) = %#v, want %#v", p.Name(), got, p)
	}
	if _, err := Lookup("PSBS(a=0.50,r=2)"); err == nil {
		t.Fatal("non-canonical PSBS spec accepted")
	}
	if _, err := NewFairSize(-1, 2); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewFairSize(0, 0.5); err == nil {
		t.Fatal("robust < 1 accepted")
	}
}

func TestFairSizeSemantics(t *testing.T) {
	js := jobs() // areas: 800, 500, 200, 200 at submits 0, 5, 10, 15
	// alpha=0, r=1: pure smallest-area-first == SAF.
	if got, want := ids(Order(MustFairSize(0, 1), js)), ids(Order(SAF, js)); !equalIDs(got, want) {
		t.Errorf("FairSize(0,1) = %v, want SAF order %v", got, want)
	}
	// Huge alpha: submission time dominates == FCFS.
	if got, want := ids(Order(MustFairSize(1e12, 1), js)), ids(Order(FCFS, js)); !equalIDs(got, want) {
		t.Errorf("FairSize(1e12,1) = %v, want FCFS order %v", got, want)
	}
	// Robustness: areas 400 and 300 land in the same r=2 bucket (256), so
	// with alpha=0 the earlier submit wins even though its area is larger —
	// estimate noise within a factor of r no longer decides. With r=1 the
	// exact areas decide and the order flips.
	a := &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 400, Runtime: 1}
	b := &job.Job{ID: 2, Submit: 5, Width: 1, Estimate: 300, Runtime: 1}
	if r2 := MustFairSize(0, 2); !r2.Less(a, b) {
		t.Error("FairSize(0,2): expected bucket tie to favour the earlier submit")
	}
	if r1 := MustFairSize(0, 1); !r1.Less(b, a) {
		t.Error("FairSize(0,1): expected exact areas to favour the smaller job")
	}
}

// TestPropertyTotalOrder checks the comparator contract every registered
// policy must honour for sort.SliceStable and the tuner's incremental
// order views to stay byte-stable: over jobs with distinct IDs, Less is
// irreflexive, antisymmetric, transitive and total (every distinct pair
// orders exactly one way, ending in the Submit/ID tie-break).
func TestPropertyTotalOrder(t *testing.T) {
	policies := append([]Policy{}, All...)
	policies = append(policies,
		MustFairSize(0, 1), MustFairSize(0.5, 2), MustFairSize(8, 4), MustFairSize(1e12, 1))
	r := rng.New(99)
	mk := func() *job.Job {
		return &job.Job{ID: job.ID(1 + r.Intn(10)), Submit: int64(r.Intn(10)),
			Width: 1 + r.Intn(8), Estimate: int64(1 + r.Intn(100)), Runtime: 1}
	}
	for _, p := range policies {
		for trial := 0; trial < 200; trial++ {
			a, b, c := mk(), mk(), mk()
			checkOrderTriple(t, p, a, b, c)
		}
	}
}

// checkOrderTriple asserts the strict-total-order laws on one triple.
func checkOrderTriple(t *testing.T, p Policy, a, b, c *job.Job) {
	t.Helper()
	if p.Less(a, a) {
		t.Fatalf("%v: Less(a,a) true for %v", p.Name(), a)
	}
	if p.Less(a, b) && p.Less(b, a) {
		t.Fatalf("%v: Less not antisymmetric for %v, %v", p.Name(), a, b)
	}
	if a.ID != b.ID && !p.Less(a, b) && !p.Less(b, a) {
		t.Fatalf("%v: distinct jobs unordered: %v, %v", p.Name(), a, b)
	}
	if p.Less(a, b) && p.Less(b, c) && !p.Less(a, c) {
		t.Fatalf("%v: Less not transitive over %v, %v, %v", p.Name(), a, b, c)
	}
}

// FuzzPolicyTotalOrder fuzzes the same laws plus sort determinism: the
// sorted order of a job multiset must not depend on input permutation
// (that equivalence is exactly what lets the tuner splice views instead
// of re-sorting).
func FuzzPolicyTotalOrder(f *testing.F) {
	f.Add(uint64(1), int64(0), int64(5), int64(10), int64(50), int64(100), int64(500), 1, 2, 4)
	f.Add(uint64(7), int64(3), int64(3), int64(3), int64(9), int64(9), int64(9), 8, 8, 8)
	f.Add(uint64(42), int64(0), int64(1), int64(2), int64(1), int64(1), int64(1), 1, 1, 1)
	f.Fuzz(func(t *testing.T, seed uint64, s1, s2, s3, e1, e2, e3 int64, w1, w2, w3 int) {
		norm := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % 100000
		}
		normW := func(w int) int {
			if w < 0 {
				w = -w
			}
			return 1 + w%1024
		}
		js := []*job.Job{
			{ID: 1, Submit: norm(s1), Width: normW(w1), Estimate: 1 + norm(e1), Runtime: 1},
			{ID: 2, Submit: norm(s2), Width: normW(w2), Estimate: 1 + norm(e2), Runtime: 1},
			{ID: 3, Submit: norm(s3), Width: normW(w3), Estimate: 1 + norm(e3), Runtime: 1},
		}
		r := rng.New(seed)
		policies := append([]Policy{}, All...)
		policies = append(policies,
			MustFairSize(float64(r.Intn(16)), 1+float64(r.Intn(4))),
			MustFairSize(0, 2))
		for _, p := range policies {
			checkOrderTriple(t, p, js[0], js[1], js[2])
			want := ids(Order(p, js))
			perm := []*job.Job{js[1], js[2], js[0]}
			if got := ids(Order(p, perm)); !equalIDs(got, want) {
				t.Fatalf("%v: order depends on input permutation: %v vs %v", p.Name(), got, want)
			}
		}
	})
}

func TestPropertySJFSortedByEstimate(t *testing.T) {
	if err := quick.Check(func(ests []uint16) bool {
		js := make([]*job.Job, len(ests))
		for i, e := range ests {
			js[i] = &job.Job{ID: job.ID(i + 1), Submit: int64(i),
				Width: 1, Estimate: int64(e) + 1, Runtime: 1}
		}
		got := Order(SJF, js)
		return sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].Estimate != got[j].Estimate {
				return got[i].Estimate < got[j].Estimate
			}
			return got[i].Submit <= got[j].Submit
		})
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLJFIsReverseOfSJFByEstimate(t *testing.T) {
	if err := quick.Check(func(ests []uint16) bool {
		js := make([]*job.Job, len(ests))
		for i, e := range ests {
			js[i] = &job.Job{ID: job.ID(i + 1), Submit: 0,
				Width: 1, Estimate: int64(e) + 1, Runtime: 1}
		}
		s, l := Order(SJF, js), Order(LJF, js)
		for i := range s {
			if s[i].Estimate != l[len(l)-1-i].Estimate {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
