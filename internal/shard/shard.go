// Package shard is the work-stealing task pool behind every parallel
// fan-out of independent event streams: the experiment sweep's
// (shrink, scheduler, set) cells, sim.RunParallel's simulation replicas,
// and any future sharded event loop. It exists so the repo has exactly
// one answer to "run n independent tasks on w cores deterministically".
//
// The pool is deterministic by construction: tasks are identified by
// their index in [0, n), every task runs exactly once, and a caller that
// writes task i's result into slot i of a pre-sized slice obtains output
// that is byte-identical for every worker count — scheduling decides only
// *when* a task runs, never *what* it computes or where its result lands.
//
// Work distribution is sharded with stealing. The index range is split
// into one strided shard per worker — worker w owns w, w+workers,
// w+2·workers, … — so systematic cost patterns in the task list (an
// experiment sweep lists all sets of one expensive scheduler
// consecutively) spread across all workers instead of landing on one.
// Each worker drains its own shard first, contention-free while the load
// is balanced, and when it runs dry it steals single tasks from the
// fullest remaining shard. Long tasks therefore never strand a tail of
// work behind them: an uneven sweep — one slow dynP cell among cheap
// static cells — finishes in the time of its slowest single task plus an
// even share of the rest, not in the time of the unluckiest pre-assigned
// chunk.
package shard

import (
	"sync"
	"sync/atomic"
)

// shardState is one worker's strided index sequence base, base+stride,
// …, base+(count-1)·stride. next counts claimed positions; the owner and
// thieves claim through the same atomic counter, so a task can never run
// twice. base, stride and count are immutable after construction.
type shardState struct {
	next   atomic.Int64
	base   int64
	stride int64
	count  int64
	// pad spaces the hot counters one cache line apart so owner claims on
	// neighbouring shards do not false-share.
	_ [32]byte
}

// remaining returns how many unclaimed tasks the shard still holds.
func (s *shardState) remaining() int64 {
	r := s.count - s.next.Load()
	if r < 0 {
		return 0
	}
	return r
}

// claim takes the next unclaimed index, reporting false when the shard
// is exhausted. Over-claims (racing thieves) burn a counter increment
// beyond count but never yield an index twice.
func (s *shardState) claim() (int64, bool) {
	k := s.next.Add(1) - 1
	if k >= s.count {
		return 0, false
	}
	return s.base + k*s.stride, true
}

// Run executes task(0) … task(n-1) exactly once each over min(workers, n)
// goroutines (workers <= 0 means 1). The first failure observed stops
// every worker from claiming further tasks; among the failures that did
// occur, the one with the smallest task index is returned, so the
// reported error does not depend on goroutine timing when several tasks
// fail in one run. Tasks already started when the failure occurs run to
// completion.
//
// With workers == 1 the tasks run on the calling goroutine in index
// order, with no goroutines spawned — the sequential path and the
// parallel path are the same code.
func Run(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Strided shards, sized within one task of each other: worker w owns
	// w, w+workers, w+2·workers, ….
	shards := make([]shardState, workers)
	for w := 0; w < workers; w++ {
		shards[w].base = int64(w)
		shards[w].stride = int64(workers)
		shards[w].count = int64((n - w + workers - 1) / workers)
	}

	var (
		cancelled atomic.Bool
		mu        sync.Mutex
		failIdx   int64 = -1
		failure   error
		wg        sync.WaitGroup
	)
	fail := func(i int64, err error) {
		mu.Lock()
		if failIdx < 0 || i < failIdx {
			failIdx, failure = i, err
		}
		mu.Unlock()
		cancelled.Store(true)
	}
	runTask := func(i int64) bool {
		if err := task(int(i)); err != nil {
			fail(i, err)
			return false
		}
		return true
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Drain the own shard first.
			for !cancelled.Load() {
				i, ok := shards[self].claim()
				if !ok {
					break
				}
				runTask(i)
			}
			// Steal: repeatedly pick the fullest other shard and take one
			// task. One at a time keeps the tail balanced — two thieves on
			// the same victim split its remainder instead of racing for a
			// chunk — and the extra atomic per task is noise against task
			// granularity (whole simulations).
			for !cancelled.Load() {
				victim := -1
				var most int64
				for v := range shards {
					if v == self {
						continue
					}
					if r := shards[v].remaining(); r > most {
						victim, most = v, r
					}
				}
				if victim < 0 {
					return
				}
				if i, ok := shards[victim].claim(); ok {
					runTask(i)
				}
			}
		}(w)
	}
	wg.Wait()
	if failIdx >= 0 {
		return failure
	}
	return nil
}
