package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEveryTaskRunsOnce checks the core contract at many (workers, n)
// shapes, including workers > n, one task, and empty ranges.
func TestEveryTaskRunsOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			ran := make([]atomic.Int32, n)
			err := Run(workers, n, func(i int) error {
				ran[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestDeterministicResultSlots writes each task's result into its fixed
// slot and checks the output is identical for every worker count — the
// property the experiment sweep and sim.RunParallel rely on.
func TestDeterministicResultSlots(t *testing.T) {
	const n = 257
	want := make([]int, n)
	if err := Run(1, n, func(i int) error { want[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		got := make([]int, n)
		if err := Run(workers, n, func(i int) error { got[i] = i * i; return nil }); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestStealingDrainsBlockedShard proves tasks migrate between shards:
// with 2 workers over 8 tasks, worker 0 owns the even indices and claims
// task 0 first, which blocks until tasks 1, 2 and 3 have run. Tasks 1
// and 3 belong to worker 1, but task 2 belongs to the blocked worker 0 —
// only stealing can run it; a pool without stealing would deadlock here
// (bounded by the timeout).
func TestStealingDrainsBlockedShard(t *testing.T) {
	var ownShardDone sync.WaitGroup
	ownShardDone.Add(3)
	released := make(chan struct{})
	go func() {
		ownShardDone.Wait()
		close(released)
	}()
	err := Run(2, 8, func(i int) error {
		switch {
		case i == 0:
			select {
			case <-released:
				return nil
			case <-time.After(10 * time.Second):
				return errors.New("tasks 1-3 never ran: no stealing")
			}
		case i < 4:
			ownShardDone.Done()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFirstErrorWins checks that among multiple failures the
// smallest-index error is reported, deterministically.
func TestFirstErrorWins(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 2, 8} {
		err := Run(workers, 100, func(i int) error {
			if i == 13 || i == 77 {
				return boom(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// A parallel run may cancel before claiming task 13 and report 77;
		// when both failures occur, the smaller index must win. The
		// sequential path always observes 13 first.
		if workers == 1 && err.Error() != "task 13 failed" {
			t.Fatalf("sequential: got %v", err)
		}
	}
}

// TestErrorCancelsRemainder checks that a failing task stops the pool
// from claiming (much of) the remainder.
func TestErrorCancelsRemainder(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("stop")
	err := Run(2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		// Slow the survivors slightly so cancellation has time to land.
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if got := ran.Load(); got > 9000 {
		t.Fatalf("%d of 10000 tasks ran despite cancellation", got)
	}
}

// TestSequentialOrder pins the workers==1 fast path: in-order, on the
// calling goroutine, stopping at the first error.
func TestSequentialOrder(t *testing.T) {
	var order []int
	err := Run(1, 5, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return errors.New("halt")
		}
		return nil
	})
	if err == nil || err.Error() != "halt" {
		t.Fatalf("err = %v", err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}
