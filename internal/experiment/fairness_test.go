package experiment

import (
	"strings"
	"testing"

	"dynp/internal/adaptive"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
	"dynp/internal/workload"
)

func TestFairnessSweep(t *testing.T) {
	robust := policy.MustFairSize(0.5, 2)
	cfg := Config{
		Model:      workload.KTH,
		Sets:       3,
		JobsPerSet: 250,
		Seed:       7,
		Schedulers: []SchedulerSpec{
			StaticSpec(policy.SJF),
			StaticSpec(robust),
			AdaptiveSpec(robust, 8, 3),
		},
		Workers: 2,
	}
	factors := []float64{1, 2, 5}
	res, err := Fairness(cfg, factors)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(factors) * len(cfg.Schedulers); len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if len(c.SLDwAPerSet) != cfg.Sets || len(c.AWTPerSet) != cfg.Sets {
			t.Fatalf("cell %s x%.1f: per-set lengths %d/%d",
				c.Scheduler, c.Factor, len(c.SLDwAPerSet), len(c.AWTPerSet))
		}
		if c.SLDwA < 1 {
			t.Errorf("cell %s x%.1f: SLDwA %f < 1 (slowdown is >= 1 by definition)",
				c.Scheduler, c.Factor, c.SLDwA)
		}
		if c.Util <= 0 || c.Util > 1 {
			t.Errorf("cell %s x%.1f: util %f out of (0,1]", c.Scheduler, c.Factor, c.Util)
		}
		if c.AWT < 0 {
			t.Errorf("cell %s x%.1f: negative AWT %f", c.Scheduler, c.Factor, c.AWT)
		}
	}
	// Lookup finds configured cells and misses unconfigured ones.
	if res.Cell(2, "SJF") == nil {
		t.Error("Cell(2, SJF) missing")
	}
	if res.Cell(3, "SJF") != nil {
		t.Error("Cell(3, SJF) exists but was never configured")
	}

	// The table renders one row per factor plus a separator.
	names := make([]string, len(cfg.Schedulers))
	for i, s := range cfg.Schedulers {
		names[i] = s.Name
	}
	tbl := FairnessTable([]*FairnessResult{res}, factors, names)
	if tbl.Len() != len(factors)+1 {
		t.Errorf("table rows = %d, want %d", tbl.Len(), len(factors)+1)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PSBS(a=0.5,r=2)", "adaptive(", "est x"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFairnessValidates(t *testing.T) {
	cfg := Config{Model: workload.KTH, Sets: 1, JobsPerSet: 10,
		Schedulers: []SchedulerSpec{StaticSpec(policy.SJF)}}
	if _, err := Fairness(cfg, nil); err == nil {
		t.Error("empty factor list accepted")
	}
	if _, err := Fairness(Config{Model: workload.KTH, Sets: 0, JobsPerSet: 10,
		Schedulers: cfg.Schedulers}, []float64{1}); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := Fairness(cfg, []float64{-1}); err == nil {
		t.Error("negative factor accepted")
	}
}

// TestAdaptiveSpecObservesThroughSimRun pins the auto-attachment: a
// driver built by AdaptiveSpec runs through the plain sim.Run entry
// point with no observer options, and its decider still sees the
// engine's planning events.
func TestAdaptiveSpecObservesThroughSimRun(t *testing.T) {
	spec := AdaptiveSpec(policy.MustFairSize(0, 1), 2, 2)
	driver := spec.New()
	set, err := workload.KTH.Generate(200, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(set, driver)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != spec.Name {
		t.Errorf("scheduler label %q, want %q", res.Scheduler, spec.Name)
	}
	dec := driver.(*sim.DynP).Tuner.Decider().(*adaptive.Decider)
	snap := dec.Snapshot()
	if snap.Plans == 0 {
		t.Fatal("decider observed no planning events; observer not attached")
	}
	if snap.Decisions == 0 {
		t.Fatal("decider made no decisions")
	}
	if snap.PlanNs <= 0 {
		t.Error("no plan latency observed")
	}
	// Table-1 cases exist only over the paper's three-candidate set; the
	// PSBS run above extends it, so its case stream is empty by design.
	if len(snap.Cases) != 0 {
		t.Errorf("extended candidate set produced Table-1 cases: %v", snap.Cases)
	}

	// With the fairness policy inside the paper set, the candidate triple
	// is unchanged and the shell sees the per-step decision cases.
	spec = AdaptiveSpec(policy.SJF, 2, 2)
	driver = spec.New()
	if _, err := sim.Run(set, driver); err != nil {
		t.Fatal(err)
	}
	snap = driver.(*sim.DynP).Tuner.Decider().(*adaptive.Decider).Snapshot()
	if len(snap.Cases) == 0 {
		t.Error("no Table-1 cases observed over the paper candidate set")
	}
}

// TestFairnessSchedulersParse pins that every scheduler of the study can
// also be resolved from its name alone — the registry path users take.
func TestFairnessSchedulersParse(t *testing.T) {
	for _, s := range FairnessSchedulers() {
		if _, err := ParseSpec(s.Name); err != nil {
			t.Errorf("ParseSpec(%q): %v", s.Name, err)
		}
	}
}
