package experiment

import (
	"fmt"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/sim"
	"dynp/internal/table"
)

// Ablation identifies one of the design-choice studies listed in
// DESIGN.md, each comparing scheduler variants beyond the paper's five.
type Ablation string

// The ablation studies.
const (
	// AblationPreferred compares preferring each candidate policy (the
	// paper evaluates only SJF-preferred).
	AblationPreferred Ablation = "pref"
	// AblationDecider compares the three decider generations end to
	// end, quantifying the cost of the simple decider's Table 1 errors.
	AblationDecider Ablation = "decider"
	// AblationMetric compares self-tuning decision metrics.
	AblationMetric Ablation = "metric"
	// AblationQueueing contrasts planning-based scheduling with the
	// queueing-based EASY backfilling of reference [6].
	AblationQueueing Ablation = "easy"
	// AblationCandidates extends the candidate set with the
	// area-ordered policies.
	AblationCandidates Ablation = "candidates"
)

// Ablations lists all implemented ablation studies.
func Ablations() []Ablation {
	return []Ablation{AblationPreferred, AblationDecider, AblationMetric,
		AblationQueueing, AblationCandidates}
}

// Schedulers returns the scheduler set of the ablation study.
func (a Ablation) Schedulers() ([]SchedulerSpec, error) {
	switch a {
	case AblationPreferred:
		return []SchedulerSpec{
			DynPSpec(core.Advanced{}),
			DynPSpec(core.Preferred{Policy: policy.FCFS}),
			DynPSpec(core.Preferred{Policy: policy.SJF}),
			DynPSpec(core.Preferred{Policy: policy.LJF}),
		}, nil
	case AblationDecider:
		return []SchedulerSpec{
			DynPSpec(core.Simple{}),
			DynPSpec(core.Advanced{}),
			DynPSpec(core.Preferred{Policy: policy.SJF}),
		}, nil
	case AblationMetric:
		return []SchedulerSpec{
			DynPMetricSpec(core.Advanced{}, core.MetricSLDwA),
			DynPMetricSpec(core.Advanced{}, core.MetricART),
			DynPMetricSpec(core.Advanced{}, core.MetricARTwW),
			DynPMetricSpec(core.Advanced{}, core.MetricMakespan),
		}, nil
	case AblationQueueing:
		return []SchedulerSpec{
			StaticSpec(policy.FCFS),
			EASYSpec(policy.FCFS),
			DynPSpec(core.Preferred{Policy: policy.SJF}),
		}, nil
	case AblationCandidates:
		return []SchedulerSpec{
			DynPSpec(core.Advanced{}),
			{
				Name: "dynP/advanced+areas",
				New: func() sim.Driver {
					return sim.NewDynPWith(policy.All, core.Advanced{}, core.MetricSLDwA)
				},
			},
		}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown ablation %q (want one of %v)", a, Ablations())
	}
}

// Title returns a human-readable description for table headers.
func (a Ablation) Title() string {
	switch a {
	case AblationPreferred:
		return "preferred-policy ablation: which policy should the unfair decider prefer?"
	case AblationDecider:
		return "decider ablation: end-to-end cost of the simple decider's wrong decisions"
	case AblationMetric:
		return "decision-metric ablation: what should the self-tuning step optimise?"
	case AblationQueueing:
		return "queueing vs planning: EASY backfilling against planning-based scheduling"
	case AblationCandidates:
		return "candidate-set ablation: paper set vs area-ordered extensions"
	default:
		return string(a)
	}
}

// Comparison renders a generic scheduler-comparison table over sweep
// results: one row per trace and shrinking factor, SLDwA and utilization
// columns per scheduler.
func Comparison(title string, results []*Result, shrinks []float64, schedulers []string) *table.Table {
	headers := []string{"trace", "shrink"}
	for _, s := range schedulers {
		headers = append(headers, "SLDwA "+s)
	}
	for _, s := range schedulers {
		headers = append(headers, "util% "+s)
	}
	t := table.New(title, headers...)
	for _, r := range results {
		for _, f := range shrinks {
			cells := []any{r.Model.Name, fmt.Sprintf("%.1f", f)}
			ok := true
			for _, s := range schedulers {
				c := r.Cell(f, s)
				if c == nil {
					ok = false
					break
				}
				cells = append(cells, c.SLDwA)
			}
			for _, s := range schedulers {
				c := r.Cell(f, s)
				if c == nil {
					ok = false
					break
				}
				cells = append(cells, 100*c.Util)
			}
			if ok {
				t.AddRowf(cells...)
			}
		}
		t.AddSeparator()
	}
	return t
}
