package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dynp/internal/job"
	"dynp/internal/metrics"
	"dynp/internal/policy"
	"dynp/internal/shard"
	"dynp/internal/sim"
	"dynp/internal/stats"
	"dynp/internal/workload"
)

// Config describes one trace's sweep: which workload model, how many job
// sets of which size, which shrinking factors and schedulers.
type Config struct {
	Model      workload.Model
	Shrinks    []float64
	Sets       int    // independent job sets (paper: 10)
	JobsPerSet int    // jobs per set (paper: 10,000)
	Seed       uint64 // base seed; job set k is a pure function of (model, seed, k)
	Schedulers []SchedulerSpec
	Workers    int // worker pool size; 0 = GOMAXPROCS

	// TunerWorkers bounds the goroutines each dynP tuner uses for its
	// candidate what-if builds within one self-tuning step. The default 0
	// keeps tuner planning sequential — the sweep already parallelises
	// across whole simulations — while values > 1 help when Workers is
	// small relative to the core count. Results are identical for every
	// value.
	TunerWorkers int

	// Speculate enables the speculative cross-event planning pipeline in
	// every dynP driver of the sweep (core.SelfTuner.SetSpeculation).
	// Results are identical with or without — the golden checks prove it
	// byte-for-byte — only the serial/overlapped execution shape changes.
	Speculate bool

	// Progress, when set, is invoked after each completed simulation.
	// Calls are serialized (never concurrent) and done is strictly
	// increasing from 1 to the final task count, regardless of the worker
	// count or completion order. The callback runs under the sweep's
	// progress lock, so it should not block for long.
	Progress func(done, total int)
}

// Cell is the aggregated outcome of one (shrink, scheduler) combination:
// the drop-min/max mean over the job sets, plus the raw per-set values.
type Cell struct {
	Shrink    float64
	Scheduler string

	SLDwA float64 // paper aggregation over sets
	Util  float64 // utilization in [0,1], paper aggregation over sets

	SLDwAPerSet []float64
	UtilPerSet  []float64

	// Self-tuning statistics, averaged over sets (zero for static
	// schedulers): policy switches and the share of simulated time each
	// policy was active.
	Switches    float64
	PolicyShare map[policy.Policy]float64
}

// Result is the full sweep outcome for one trace.
type Result struct {
	Model workload.Model
	Cells []Cell // shrink-major, scheduler-minor, in Config order
}

// shrinkEps bounds the distance within which two float64 shrink factors
// are considered the same factor in Cell lookups. Factors live in (0, 1]
// and adjacent configured factors differ by ≥ 0.01 in practice, so a 1e-9
// tolerance absorbs accumulated rounding (e.g. a caller recomputing 0.7 as
// 7*0.1 = 0.7000000000000001) without ever bridging two distinct factors.
const shrinkEps = 1e-9

// Cell returns the cell for the given shrink and scheduler name, or nil.
// The shrink factor is matched within a small epsilon, so callers that
// recompute factors arithmetically (e.g. i*0.1 loops) find the cell they
// configured even when the recomputed float64 differs in the last bits.
func (r *Result) Cell(shrink float64, scheduler string) *Cell {
	for i := range r.Cells {
		if math.Abs(r.Cells[i].Shrink-shrink) <= shrinkEps && r.Cells[i].Scheduler == scheduler {
			return &r.Cells[i]
		}
	}
	return nil
}

// Run executes the sweep. Independent simulations are distributed over a
// work-stealing shard pool (internal/shard): each worker owns a strided
// slice of the (shrink, scheduler, set) task list and steals from the
// fullest remaining shard when its own runs dry, so one
// expensive cell never strands the tail of the sweep. Every task writes
// into its fixed outcome slot, so results are byte-identical regardless
// of worker count. The first simulation failure cancels the sweep:
// workers stop claiming tasks and Run returns that failure instead of
// simulating the remainder.
func Run(cfg Config) (*Result, error) {
	if cfg.Sets < 1 || cfg.JobsPerSet < 1 {
		return nil, fmt.Errorf("experiment: need at least one set and one job, got %d/%d",
			cfg.Sets, cfg.JobsPerSet)
	}
	if len(cfg.Shrinks) == 0 || len(cfg.Schedulers) == 0 {
		return nil, fmt.Errorf("experiment: empty shrink or scheduler list")
	}
	sets, err := cfg.Model.GenerateSets(cfg.Sets, cfg.JobsPerSet, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type task struct {
		shrinkIdx, schedIdx, setIdx int
	}
	type outcome struct {
		sldwa, util float64
		switches    float64
		policyShare map[policy.Policy]float64
	}

	var tasks []task
	for si := range cfg.Shrinks {
		for di := range cfg.Schedulers {
			for k := range sets {
				tasks = append(tasks, task{si, di, k})
			}
		}
	}
	outcomes := make([]outcome, len(tasks))

	// Pre-shrink each set once per factor (shared, read-only).
	shrunk := make([][]*job.Set, len(cfg.Shrinks))
	for si, f := range cfg.Shrinks {
		shrunk[si] = make([]*job.Set, len(sets))
		for k, s := range sets {
			shrunk[si][k] = s.Shrink(f)
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var (
		mu   sync.Mutex // serializes cfg.Progress and its done counter
		done int
	)
	err = shard.Run(workers, len(tasks), func(i int) error {
		tk := tasks[i]
		driver := cfg.Schedulers[tk.schedIdx].New()
		if d, ok := driver.(*sim.DynP); ok {
			if cfg.TunerWorkers != 0 {
				d.SetWorkers(cfg.TunerWorkers)
			}
			d.SetSpeculation(cfg.Speculate)
		}
		res, err := sim.Run(shrunk[tk.shrinkIdx][tk.setIdx], driver)
		if err != nil {
			return fmt.Errorf("experiment: %s shrink %.2f set %d: %w",
				cfg.Schedulers[tk.schedIdx].Name, cfg.Shrinks[tk.shrinkIdx], tk.setIdx, err)
		}
		o := outcome{
			sldwa:       metrics.SLDwA(res),
			util:        metrics.Utilization(res),
			policyShare: make(map[policy.Policy]float64),
		}
		var span int64
		for _, d := range res.PolicyTime {
			span += d
		}
		if span > 0 {
			for p, d := range res.PolicyTime {
				o.policyShare[p] = float64(d) / float64(span)
			}
		}
		if d, ok := driver.(*sim.DynP); ok {
			o.switches = float64(d.Stats().Switches)
		}
		outcomes[i] = o
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(tasks))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	result := &Result{Model: cfg.Model}
	ti := 0
	for _, f := range cfg.Shrinks {
		for di := range cfg.Schedulers {
			cell := Cell{
				Shrink:      f,
				Scheduler:   cfg.Schedulers[di].Name,
				PolicyShare: make(map[policy.Policy]float64),
			}
			var switches float64
			for range sets {
				o := outcomes[ti]
				cell.SLDwAPerSet = append(cell.SLDwAPerSet, o.sldwa)
				cell.UtilPerSet = append(cell.UtilPerSet, o.util)
				switches += o.switches
				for p, s := range o.policyShare {
					cell.PolicyShare[p] += s
				}
				ti++
			}
			n := float64(len(sets))
			cell.SLDwA = stats.DropMinMaxMean(cell.SLDwAPerSet)
			cell.Util = stats.DropMinMaxMean(cell.UtilPerSet)
			cell.Switches = switches / n
			for p := range cell.PolicyShare {
				cell.PolicyShare[p] /= n
			}
			result.Cells = append(result.Cells, cell)
		}
	}
	return result, nil
}

// RunAll sweeps several traces with a shared configuration.
func RunAll(models []workload.Model, cfg Config) ([]*Result, error) {
	out := make([]*Result, 0, len(models))
	for _, m := range models {
		c := cfg
		c.Model = m
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
