package experiment

import (
	"math"
	"strings"
	"testing"

	"dynp/internal/policy"
	"dynp/internal/workload"
)

func sweep(t *testing.T) []*Result {
	t.Helper()
	cfg := Config{
		Shrinks:    []float64{1.0, 0.8},
		Sets:       3,
		JobsPerSet: 250,
		Seed:       2,
		Schedulers: PaperSchedulers(),
	}
	results, err := RunAll([]workload.Model{workload.KTH, workload.SDSC}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestTable1Rendering(t *testing.T) {
	tb := Table1()
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"6b", "8c", "10c", "old policy", "FCFS = SJF = LJF"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	// Exactly four wrong decisions are marked.
	if got := strings.Count(out, "X"); got != 4 {
		t.Errorf("Table 1 marks %d wrong cases, want 4", got)
	}
}

func TestTable2Rendering(t *testing.T) {
	tb, err := Table2(workload.Models(), 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, trace := range []string{"CTC", "KTH", "LANL", "SDSC"} {
		if !strings.Contains(out, trace) {
			t.Errorf("Table 2 missing trace %s", trace)
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	results := sweep(t)
	tb := Table4(results, []float64{1.0, 0.8})
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "KTH") || !strings.Contains(out, "SDSC") {
		t.Fatalf("Table 4 missing traces:\n%s", out)
	}
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "0.8") {
		t.Fatalf("Table 4 missing shrinks:\n%s", out)
	}
}

func TestTable5RowsArithmetic(t *testing.T) {
	results := sweep(t)
	rows := Table5Rows(results, []float64{1.0, 0.8})
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		wantRelAdv := 100 * (r.SLDwASJF - r.SLDwAAdv) / r.SLDwASJF
		if math.Abs(r.RelAdv-wantRelAdv) > 1e-9 {
			t.Errorf("%s/%.1f: RelAdv = %v, want %v", r.Trace, r.Shrink, r.RelAdv, wantRelAdv)
		}
		if math.Abs(r.DiffPref-(r.UtilPref-r.UtilSJF)) > 1e-9 {
			t.Errorf("%s/%.1f: DiffPref inconsistent", r.Trace, r.Shrink)
		}
	}
}

func TestTable3RowsAreAverages(t *testing.T) {
	results := sweep(t)
	shrinks := []float64{1.0, 0.8}
	rows5 := Table5Rows(results, shrinks)
	rows3 := Table3Rows(results, shrinks)
	if len(rows3) != 2 {
		t.Fatalf("table 3 rows = %d, want 2", len(rows3))
	}
	for _, r3 := range rows3 {
		var sum float64
		var n int
		for _, r5 := range rows5 {
			if r5.Trace == r3.Trace {
				sum += r5.RelPref
				n++
			}
		}
		if math.Abs(r3.RelPrefAvg-sum/float64(n)) > 1e-9 {
			t.Errorf("%s: RelPrefAvg = %v, want %v", r3.Trace, r3.RelPrefAvg, sum/float64(n))
		}
	}
}

func TestTable5AndTable3Render(t *testing.T) {
	results := sweep(t)
	shrinks := []float64{1.0, 0.8}
	var b strings.Builder
	if err := Table5(results, shrinks).Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := Table3(results, shrinks).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "SJF-pref") {
		t.Fatalf("missing SJF-pref columns:\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	results := sweep(t)
	shrinks := []float64{1.0, 0.8}
	for n := 1; n <= 4; n++ {
		figs, err := Figure(results, n, shrinks)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if len(figs) != len(results) {
			t.Fatalf("figure %d: %d sub-figures", n, len(figs))
		}
		for _, f := range figs {
			if len(f.Series) != 3 {
				t.Fatalf("figure %d: %d series", n, len(f.Series))
			}
			for _, s := range f.Series {
				if len(s.X) != len(shrinks) {
					t.Fatalf("figure %d series %s: %d points", n, s.Name, len(s.X))
				}
			}
		}
	}
	if _, err := Figure(results, 5, shrinks); err == nil {
		t.Fatal("figure 5 accepted")
	}
}

func TestFigureMetricSelection(t *testing.T) {
	results := sweep(t)
	shrinks := []float64{1.0, 0.8}
	f1, _ := Figure(results, 1, shrinks)
	f2, _ := Figure(results, 2, shrinks)
	// Figure 2 plots percentages (0..100); figure 1 slowdowns (>= 1,
	// typically far below 100 on this small sweep).
	if f2[0].Series[0].Y[0] <= f1[0].Series[0].Y[0] {
		t.Fatalf("figure 2 should plot utilization percentages, got %v vs %v",
			f2[0].Series[0].Y[0], f1[0].Series[0].Y[0])
	}
}

func TestPolicyShares(t *testing.T) {
	results := sweep(t)
	tb := PolicyShares(results, []float64{1.0, 0.8}, NameSJFPref)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "SJF-preferred") || !strings.Contains(out, "switches") {
		t.Fatalf("policy shares table incomplete:\n%s", out)
	}
	// Sanity: the SJF-preferred decider must spend the majority of time
	// in SJF on every cell of this sweep.
	for _, r := range results {
		for _, f := range []float64{1.0, 0.8} {
			c := r.Cell(f, NameSJFPref)
			if c.PolicyShare[policy.LJF] > 0.5 { // policy.LJF
				t.Fatalf("%s/%.1f: LJF share %v above 50%% under SJF-preferred",
					r.Model.Name, f, c.PolicyShare[policy.LJF])
			}
		}
	}
}

func TestDetail(t *testing.T) {
	results := sweep(t)
	tb := Detail(results, []float64{1.0, 0.8})
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "stddev") || !strings.Contains(out, "dynP/advanced") {
		t.Fatalf("detail table incomplete:\n%s", out)
	}
	// 2 traces x 2 shrinks x 5 schedulers data rows (+2 separators).
	if tb.Len() != 2*2*5+2 {
		t.Fatalf("detail rows = %d", tb.Len())
	}
}

func TestSummary(t *testing.T) {
	results := sweep(t)
	tb := Summary(results)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FCFS", "SJF", "LJF", "dynP/advanced", "dynP/SJF-preferred"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("summary missing %s", want)
		}
	}
}
