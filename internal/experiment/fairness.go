package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"dynp/internal/adaptive"
	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/metrics"
	"dynp/internal/policy"
	"dynp/internal/shard"
	"dynp/internal/sim"
	"dynp/internal/stats"
	"dynp/internal/table"
	"dynp/internal/workload"
)

// FairnessCell is the aggregated outcome of one (overestimation factor,
// scheduler) combination of the fairness study.
type FairnessCell struct {
	Factor    float64 // estimate scale factor (1 = trace estimates)
	Scheduler string

	SLDwA float64 // drop-min/max mean over sets
	Util  float64
	AWT   float64 // average wait time — where unfairness to wide/long jobs shows

	SLDwAPerSet []float64
	AWTPerSet   []float64
}

// FairnessResult is the fairness study's outcome for one trace.
type FairnessResult struct {
	Model workload.Model
	Cells []FairnessCell // factor-major, scheduler-minor, in sweep order
}

// Cell returns the cell for the given factor and scheduler name, or nil.
func (r *FairnessResult) Cell(factor float64, scheduler string) *FairnessCell {
	for i := range r.Cells {
		if r.Cells[i].Factor == factor && r.Cells[i].Scheduler == scheduler {
			return &r.Cells[i]
		}
	}
	return nil
}

// AdaptiveSpec returns the spec of a dynP scheduler driven by the
// observer-driven adaptive decider shell: advanced decisions while calm,
// the unfair preferred rule toward fair once the observed backlog stays
// at or above depth for patience planning events. The fairness policy is
// appended to the paper's candidate set so the unfair rule can elect it.
func AdaptiveSpec(fair policy.Policy, depth, patience int) SchedulerSpec {
	name := "dynP/" + adaptive.Must(fair, depth, patience).Name()
	return SchedulerSpec{
		Name: name,
		New: func() sim.Driver {
			// Fresh decider per run: the shell carries observed state.
			return newDynPFor(adaptive.Must(fair, depth, patience))
		},
	}
}

// FairnessSchedulers returns the scheduler set of the fairness study:
// the paper's FCFS and SJF poles, the size-based PSBS family — the pure
// area ordering (alpha=0, r=1), an aged robust member (alpha=0.5, r=2)
// — plus the paper's unfair SJF-preferred dynP and the observer-driven
// adaptive shell preferring the robust PSBS member under pressure.
func FairnessSchedulers() []SchedulerSpec {
	robust := policy.MustFairSize(0.5, 2)
	return []SchedulerSpec{
		StaticSpec(policy.FCFS),
		StaticSpec(policy.SJF),
		StaticSpec(policy.MustFairSize(0, 1)),
		StaticSpec(robust),
		DynPSpec(core.Preferred{Policy: policy.SJF}),
		AdaptiveSpec(robust, 8, 3),
	}
}

// Fairness runs the estimate-robustness study: the configured schedulers
// over job sets whose estimates are scaled by each overestimation factor
// (workload.ScaleEstimates — factor 1 keeps the trace estimates, larger
// factors model users overestimating run times). Size-based policies
// order by estimated area, so their quality under estimate error is
// exactly what this sweep measures. cfg.Shrinks is ignored; the sets are
// simulated at their native load. Like Run, the sweep distributes
// simulations over a work-stealing shard pool and aggregates per-set
// values with the paper's drop-min/max rule.
func Fairness(cfg Config, factors []float64) (*FairnessResult, error) {
	if cfg.Sets < 1 || cfg.JobsPerSet < 1 {
		return nil, fmt.Errorf("experiment: need at least one set and one job, got %d/%d",
			cfg.Sets, cfg.JobsPerSet)
	}
	if len(factors) == 0 || len(cfg.Schedulers) == 0 {
		return nil, fmt.Errorf("experiment: empty factor or scheduler list")
	}
	sets, err := cfg.Model.GenerateSets(cfg.Sets, cfg.JobsPerSet, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Pre-scale each set once per factor (shared, read-only).
	scaledSets := make([][]*job.Set, len(factors))
	for fi, f := range factors {
		scaledSets[fi] = make([]*job.Set, len(sets))
		for k, s := range sets {
			sc, err := workload.ScaleEstimates(s, f)
			if err != nil {
				return nil, err
			}
			scaledSets[fi][k] = sc
		}
	}

	type task struct {
		factorIdx, schedIdx, setIdx int
	}
	type outcome struct {
		sldwa, util, awt float64
	}
	var tasks []task
	for fi := range factors {
		for di := range cfg.Schedulers {
			for k := range sets {
				tasks = append(tasks, task{fi, di, k})
			}
		}
	}
	outcomes := make([]outcome, len(tasks))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu   sync.Mutex
		done int
	)
	err = shard.Run(workers, len(tasks), func(i int) error {
		tk := tasks[i]
		driver := cfg.Schedulers[tk.schedIdx].New()
		if d, ok := driver.(*sim.DynP); ok {
			if cfg.TunerWorkers != 0 {
				d.SetWorkers(cfg.TunerWorkers)
			}
			d.SetSpeculation(cfg.Speculate)
		}
		res, err := sim.Run(scaledSets[tk.factorIdx][tk.setIdx], driver)
		if err != nil {
			return fmt.Errorf("experiment: %s estimate x%.2f set %d: %w",
				cfg.Schedulers[tk.schedIdx].Name, factors[tk.factorIdx], tk.setIdx, err)
		}
		outcomes[i] = outcome{
			sldwa: metrics.SLDwA(res),
			util:  metrics.Utilization(res),
			awt:   metrics.AWT(res),
		}
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(tasks))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	result := &FairnessResult{Model: cfg.Model}
	ti := 0
	for _, f := range factors {
		for di := range cfg.Schedulers {
			cell := FairnessCell{Factor: f, Scheduler: cfg.Schedulers[di].Name}
			var utils []float64
			for range sets {
				o := outcomes[ti]
				cell.SLDwAPerSet = append(cell.SLDwAPerSet, o.sldwa)
				cell.AWTPerSet = append(cell.AWTPerSet, o.awt)
				utils = append(utils, o.util)
				ti++
			}
			cell.SLDwA = stats.DropMinMaxMean(cell.SLDwAPerSet)
			cell.AWT = stats.DropMinMaxMean(cell.AWTPerSet)
			cell.Util = stats.DropMinMaxMean(utils)
			result.Cells = append(result.Cells, cell)
		}
	}
	return result, nil
}

// FairnessTable renders fairness-study results: one row per trace and
// overestimation factor, SLDwA and average-wait columns per scheduler.
func FairnessTable(results []*FairnessResult, factors []float64, schedulers []string) *table.Table {
	headers := []string{"trace", "est x"}
	for _, s := range schedulers {
		headers = append(headers, "SLDwA "+s)
	}
	for _, s := range schedulers {
		headers = append(headers, "AWT "+s)
	}
	t := table.New("fairness study: size-based scheduling under estimate overestimation", headers...)
	for _, r := range results {
		for _, f := range factors {
			cells := []any{r.Model.Name, fmt.Sprintf("%.1f", f)}
			ok := true
			for _, s := range schedulers {
				c := r.Cell(f, s)
				if c == nil {
					ok = false
					break
				}
				cells = append(cells, c.SLDwA)
			}
			for _, s := range schedulers {
				c := r.Cell(f, s)
				if c == nil {
					ok = false
					break
				}
				cells = append(cells, c.AWT)
			}
			if ok {
				t.AddRowf(cells...)
			}
		}
		t.AddSeparator()
	}
	return t
}
