// Package experiment is the evaluation harness: it generates the paper's
// job sets, sweeps shrinking factors and schedulers, aggregates the
// per-set results with the paper's drop-min/max rule, and assembles the
// data behind every table and figure of the evaluation section.
package experiment

import (
	"fmt"
	"strings"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/sim"
)

// SchedulerSpec names a scheduler and constructs fresh driver instances:
// dynP drivers carry tuner state, so every simulation run needs its own.
type SchedulerSpec struct {
	Name string
	New  func() sim.Driver
}

// StaticSpec returns the spec of a basic single-policy scheduler.
func StaticSpec(p policy.Policy) SchedulerSpec {
	return SchedulerSpec{
		Name: p.Name(),
		New:  func() sim.Driver { return &sim.Static{Policy: p} },
	}
}

// DynPSpec returns the spec of a self-tuning dynP scheduler with the given
// decider and the paper's decision metric. The decider instance is shared
// across the runs the spec constructs, so it must be stateless; resolve
// stateful deciders by name through ParseSpec instead, which builds a
// fresh instance per run.
func DynPSpec(d core.Decider) SchedulerSpec {
	return SchedulerSpec{
		Name: "dynP/" + d.Name(),
		New:  func() sim.Driver { return sim.NewDynP(d) },
	}
}

// newDynPFor builds a dynP driver for the decider. A decider that
// prefers a policy outside the paper's candidate set and says so (by
// exposing Fair, like the adaptive shell) gets that policy appended to
// the candidates — the tuner refuses decisions outside the set, so the
// preferred policy must be electable.
func newDynPFor(d core.Decider) sim.Driver {
	if f, ok := d.(interface{ Fair() policy.Policy }); ok {
		fair := f.Fair()
		in := false
		for _, c := range policy.Candidates {
			if c == fair {
				in = true
				break
			}
		}
		if !in {
			cands := append(append([]policy.Policy{}, policy.Candidates...), fair)
			return sim.NewDynPWith(cands, d, core.MetricSLDwA).SetLabel("dynP/" + d.Name())
		}
	}
	return sim.NewDynP(d)
}

// DynPMetricSpec returns a dynP spec with an explicit decision metric, for
// the decision-metric ablation.
func DynPMetricSpec(d core.Decider, m core.Metric) SchedulerSpec {
	return SchedulerSpec{
		Name: "dynP/" + d.Name() + "/" + m.String(),
		New:  func() sim.Driver { return sim.NewDynPWith(nil, d, m) },
	}
}

// EASYSpec returns the spec of the queueing-based EASY-backfilling
// scheduler (reference [6] of the paper contrasts queueing and planning).
func EASYSpec(base policy.Policy) SchedulerSpec {
	name := "EASY"
	if base != policy.FCFS {
		name = "EASY/" + base.Name()
	}
	return SchedulerSpec{
		Name: name,
		New:  func() sim.Driver { return &sim.EASY{Base: base} },
	}
}

// ParseSpec converts a scheduler name into a spec. Accepted forms: a
// policy name ("FCFS", "SJF", "LJF", ...), "dynP/<decider>" with decider
// one of "simple", "advanced", "<POLICY>-preferred", or "EASY" /
// "EASY/<POLICY>" for the queueing baseline.
func ParseSpec(name string) (SchedulerSpec, error) {
	if p, err := policy.Parse(name); err == nil {
		return StaticSpec(p), nil
	}
	if rest, ok := strings.CutPrefix(name, "dynP/"); ok {
		d, err := core.NewDecider(rest)
		if err != nil {
			return SchedulerSpec{}, fmt.Errorf("experiment: %w", err)
		}
		return SchedulerSpec{
			Name: "dynP/" + d.Name(),
			New: func() sim.Driver {
				// Fresh decider per run: registry deciders may be
				// stateful, and concurrent sweep runs must not share.
				nd, err := core.NewDecider(rest)
				if err != nil { // registry mutated since parse; unreachable in practice
					panic(fmt.Sprintf("experiment: decider %q vanished: %v", rest, err))
				}
				return newDynPFor(nd)
			},
		}, nil
	}
	if name == "EASY" {
		return EASYSpec(policy.FCFS), nil
	}
	if rest, ok := strings.CutPrefix(name, "EASY/"); ok {
		p, err := policy.Parse(rest)
		if err != nil {
			return SchedulerSpec{}, fmt.Errorf("experiment: %w", err)
		}
		return EASYSpec(p), nil
	}
	return SchedulerSpec{}, fmt.Errorf("experiment: unknown scheduler %q", name)
}

// PaperSchedulers returns the five schedulers of the paper's evaluation:
// the three basic policies, dynP with the advanced decider, and dynP with
// the SJF-preferred decider.
func PaperSchedulers() []SchedulerSpec {
	return []SchedulerSpec{
		StaticSpec(policy.FCFS),
		StaticSpec(policy.SJF),
		StaticSpec(policy.LJF),
		DynPSpec(core.Advanced{}),
		DynPSpec(core.Preferred{Policy: policy.SJF}),
	}
}

// PaperShrinks returns the paper's shrinking factors 1.0 down to 0.6.
func PaperShrinks() []float64 { return []float64{1.0, 0.9, 0.8, 0.7, 0.6} }
