package experiment

import (
	"fmt"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/stats"
	"dynp/internal/table"
	"dynp/internal/workload"
)

// Scheduler names as produced by the paper specs.
const (
	NameFCFS    = "FCFS"
	NameSJF     = "SJF"
	NameLJF     = "LJF"
	NameAdv     = "dynP/advanced"
	NameSJFPref = "dynP/SJF-preferred"
)

// Table1 renders the paper's Table 1, the decision analysis of the simple
// decider.
func Table1() *table.Table {
	t := table.New("Table 1: detailed analysis of the simple decider",
		"case", "combinations", "simple decider", "correct decision", "wrong")
	for _, row := range core.Table1() {
		var correct string
		switch {
		case row.CorrectIsOld:
			correct = "old policy"
		case row.OldSpecific && row.Correct == row.Old:
			correct = fmt.Sprintf("old policy (= %s)", row.Old.Name())
		default:
			correct = row.Correct.Name()
		}
		wrong := ""
		if row.Wrong {
			wrong = "X"
		}
		t.AddRow(row.Case, row.Combination, row.Simple.Name(), correct, wrong)
	}
	return t
}

// Table2 renders the paper's Table 2: the basic properties of one
// generated job set per trace, next to the published trace targets.
func Table2(models []workload.Model, jobs int, seed uint64) (*table.Table, error) {
	t := table.New("Table 2: basic properties of the generated job sets (paper targets in parentheses)",
		"trace", "jobs", "width min/avg/max (avg target)", "est. run time min/avg/max [s] (avg target)",
		"act. run time min/avg/max [s] (avg target)", "overest. (target)", "interarrival min/avg/max [s] (avg target)")
	for _, m := range models {
		set, err := m.Generate(jobs, rng.New(seed).Derive(0x7ab1e2))
		if err != nil {
			return nil, err
		}
		c := workload.Characterize(set)
		t.AddRow(
			m.Name,
			fmt.Sprintf("%d", c.Jobs),
			fmt.Sprintf("%.0f/%.2f/%.0f (%.2f)", c.Width.Min, c.Width.Mean, c.Width.Max, m.WidthAvg),
			fmt.Sprintf("%.0f/%.0f/%.0f (%.0f)", c.Est.Min, c.Est.Mean, c.Est.Max, m.EstAvg),
			fmt.Sprintf("%.0f/%.0f/%.0f (%.0f)", c.Act.Min, c.Act.Mean, c.Act.Max, m.ActAvg),
			fmt.Sprintf("%.3f (%.3f)", c.Overest, m.Overest),
			fmt.Sprintf("%.0f/%.0f/%.0f (%.0f)", c.IAT.Min, c.IAT.Mean, c.IAT.Max, m.IATAvg),
		)
	}
	return t, nil
}

// Table4 renders the paper's Table 4: SLDwA and utilization of the three
// basic policies per trace and shrinking factor.
func Table4(results []*Result, shrinks []float64) *table.Table {
	t := table.New("Table 4: SLDwA and utilization of the basic policies",
		"trace", "shrink", "SLDwA FCFS", "SLDwA SJF", "SLDwA LJF",
		"util% FCFS", "util% SJF", "util% LJF")
	for _, r := range results {
		for _, f := range shrinks {
			fc, sj, lj := r.Cell(f, NameFCFS), r.Cell(f, NameSJF), r.Cell(f, NameLJF)
			if fc == nil || sj == nil || lj == nil {
				continue
			}
			t.AddRowf(r.Model.Name, fmt.Sprintf("%.1f", f),
				fc.SLDwA, sj.SLDwA, lj.SLDwA,
				100*fc.Util, 100*sj.Util, 100*lj.Util)
		}
		t.AddSeparator()
	}
	return t
}

// Table5Row is one row of the paper's Table 5 in numeric form, also the
// input to Table 3.
type Table5Row struct {
	Trace  string
	Shrink float64

	SLDwASJF, SLDwAAdv, SLDwAPref float64
	RelAdv, RelPref               float64 // relative SLDwA improvement over SJF, %
	UtilSJF, UtilAdv, UtilPref    float64 // percent
	DiffAdv, DiffPref             float64 // utilization difference to SJF, percentage points
}

// Table5Rows extracts the Table 5 numbers from sweep results. Positive
// relative slowdown differences are improvements over SJF (the paper's
// sign convention); utilization differences are percentage points.
func Table5Rows(results []*Result, shrinks []float64) []Table5Row {
	var rows []Table5Row
	for _, r := range results {
		for _, f := range shrinks {
			sj, ad, pr := r.Cell(f, NameSJF), r.Cell(f, NameAdv), r.Cell(f, NameSJFPref)
			if sj == nil || ad == nil || pr == nil {
				continue
			}
			row := Table5Row{
				Trace: r.Model.Name, Shrink: f,
				SLDwASJF: sj.SLDwA, SLDwAAdv: ad.SLDwA, SLDwAPref: pr.SLDwA,
				UtilSJF: 100 * sj.Util, UtilAdv: 100 * ad.Util, UtilPref: 100 * pr.Util,
			}
			if sj.SLDwA != 0 {
				row.RelAdv = 100 * (sj.SLDwA - ad.SLDwA) / sj.SLDwA
				row.RelPref = 100 * (sj.SLDwA - pr.SLDwA) / sj.SLDwA
			}
			row.DiffAdv = row.UtilAdv - row.UtilSJF
			row.DiffPref = row.UtilPref - row.UtilSJF
			rows = append(rows, row)
		}
	}
	return rows
}

// Table5 renders the paper's Table 5: detailed dynP numbers with
// differences to SJF.
func Table5(results []*Result, shrinks []float64) *table.Table {
	t := table.New("Table 5: self-tuning dynP vs SJF (positive SLDwA differences are good)",
		"trace", "shrink", "SLDwA SJF", "SLDwA adv.", "SLDwA SJF-pref.",
		"rel.diff adv. %", "rel.diff pref. %",
		"util% SJF", "util% adv.", "util% SJF-pref.",
		"diff adv. pp", "diff pref. pp")
	last := ""
	for _, row := range Table5Rows(results, shrinks) {
		if last != "" && row.Trace != last {
			t.AddSeparator()
		}
		last = row.Trace
		t.AddRowf(row.Trace, fmt.Sprintf("%.1f", row.Shrink),
			row.SLDwASJF, row.SLDwAAdv, row.SLDwAPref,
			row.RelAdv, row.RelPref,
			row.UtilSJF, row.UtilAdv, row.UtilPref,
			row.DiffAdv, row.DiffPref)
	}
	return t
}

// Table3Row is one row of the paper's condensed Table 3.
type Table3Row struct {
	Trace                   string
	RelAdvAvg, RelPrefAvg   float64 // mean relative SLDwA difference, %
	DiffAdvAvg, DiffPrefAvg float64 // mean utilization difference, pp
}

// Table3Rows condenses Table 5 into per-trace averages over all shrinking
// factors, the paper's Table 3.
func Table3Rows(results []*Result, shrinks []float64) []Table3Row {
	byTrace := map[string]*Table3Row{}
	counts := map[string]int{}
	var order []string
	for _, row := range Table5Rows(results, shrinks) {
		tr, ok := byTrace[row.Trace]
		if !ok {
			tr = &Table3Row{Trace: row.Trace}
			byTrace[row.Trace] = tr
			order = append(order, row.Trace)
		}
		tr.RelAdvAvg += row.RelAdv
		tr.RelPrefAvg += row.RelPref
		tr.DiffAdvAvg += row.DiffAdv
		tr.DiffPrefAvg += row.DiffPref
		counts[row.Trace]++
	}
	out := make([]Table3Row, 0, len(order))
	for _, name := range order {
		tr := byTrace[name]
		n := float64(counts[name])
		tr.RelAdvAvg /= n
		tr.RelPrefAvg /= n
		tr.DiffAdvAvg /= n
		tr.DiffPrefAvg /= n
		out = append(out, *tr)
	}
	return out
}

// Table3 renders the paper's Table 3.
func Table3(results []*Result, shrinks []float64) *table.Table {
	t := table.New("Table 3: average differences to SJF over all shrinking factors",
		"trace", "SLDwA rel.diff adv. %", "SLDwA rel.diff SJF-pref. %",
		"util diff adv. pp", "util diff SJF-pref. pp")
	for _, row := range Table3Rows(results, shrinks) {
		t.AddRowf(row.Trace, row.RelAdvAvg, row.RelPrefAvg, row.DiffAdvAvg, row.DiffPrefAvg)
	}
	return t
}

// Figure assembles one of the paper's figures as data series: Figures 1
// and 2 plot the basic policies, Figures 3 and 4 the dynP deciders with
// SJF as reference; odd figures plot SLDwA, even ones utilization.
func Figure(results []*Result, number int, shrinks []float64) ([]*table.Figure, error) {
	var schedulers []string
	var useUtil bool
	switch number {
	case 1:
		schedulers = []string{NameFCFS, NameSJF, NameLJF}
	case 2:
		schedulers, useUtil = []string{NameFCFS, NameSJF, NameLJF}, true
	case 3:
		schedulers = []string{NameSJF, NameAdv, NameSJFPref}
	case 4:
		schedulers, useUtil = []string{NameSJF, NameAdv, NameSJFPref}, true
	default:
		return nil, fmt.Errorf("experiment: the paper has figures 1-4, not %d", number)
	}
	metric, ylabel := "SLDwA", "slowdown weighted by area"
	if useUtil {
		metric, ylabel = "utilization", "utilization [%]"
	}
	var figs []*table.Figure
	for _, r := range results {
		fig := &table.Figure{
			Title:  fmt.Sprintf("Figure %d (%s): %s", number, r.Model.Name, metric),
			XLabel: "shrinking factor",
			YLabel: ylabel,
		}
		for _, sched := range schedulers {
			s := table.Series{Name: sched}
			for _, f := range shrinks {
				c := r.Cell(f, sched)
				if c == nil {
					continue
				}
				y := c.SLDwA
				if useUtil {
					y = 100 * c.Util
				}
				s.X = append(s.X, f)
				s.Y = append(s.Y, y)
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// PolicyShares renders, for one dynP scheduler, the share of simulated
// time each candidate policy was active per trace and shrinking factor,
// plus the mean number of policy switches — the behavioural view behind
// the paper's performance numbers.
func PolicyShares(results []*Result, shrinks []float64, scheduler string) *table.Table {
	t := table.New(
		fmt.Sprintf("Policy usage of %s (share of simulated time, mean switches per run)", scheduler),
		"trace", "shrink", "FCFS %", "SJF %", "LJF %", "switches")
	for _, r := range results {
		for _, f := range shrinks {
			c := r.Cell(f, scheduler)
			if c == nil {
				continue
			}
			t.AddRowf(r.Model.Name, fmt.Sprintf("%.1f", f),
				100*c.PolicyShare[policy.FCFS],
				100*c.PolicyShare[policy.SJF],
				100*c.PolicyShare[policy.LJF],
				c.Switches)
		}
		t.AddSeparator()
	}
	return t
}

// Detail renders the per-set dispersion behind the headline numbers: for
// every (trace, shrink, scheduler) cell the drop-min/max mean next to the
// raw min, max and sample standard deviation over the job sets — the
// noise the paper's aggregation rule exists to control.
func Detail(results []*Result, shrinks []float64) *table.Table {
	t := table.New("Per-set dispersion (SLDwA: aggregated / min / max / stddev over job sets)",
		"trace", "shrink", "scheduler", "SLDwA", "min", "max", "stddev", "util%", "util stddev pp")
	for _, r := range results {
		for _, f := range shrinks {
			for i := range r.Cells {
				c := &r.Cells[i]
				if c.Shrink != f {
					continue
				}
				s := stats.Summarize(c.SLDwAPerSet)
				u := stats.Summarize(c.UtilPerSet)
				t.AddRowf(r.Model.Name, fmt.Sprintf("%.1f", f), c.Scheduler,
					c.SLDwA, s.Min, s.Max, s.StdDev, 100*c.Util, 100*u.StdDev)
			}
		}
		t.AddSeparator()
	}
	return t
}

// Summary condenses a full sweep into per-scheduler means over every
// trace and shrink, used by the quickstart example and smoke tooling.
func Summary(results []*Result) *table.Table {
	t := table.New("Sweep summary (means over traces and shrinking factors)",
		"scheduler", "mean SLDwA", "mean util%", "mean switches")
	agg := map[string]*[3][]float64{}
	var order []string
	for _, r := range results {
		for _, c := range r.Cells {
			a, ok := agg[c.Scheduler]
			if !ok {
				a = &[3][]float64{}
				agg[c.Scheduler] = a
				order = append(order, c.Scheduler)
			}
			a[0] = append(a[0], c.SLDwA)
			a[1] = append(a[1], 100*c.Util)
			a[2] = append(a[2], c.Switches)
		}
	}
	for _, name := range order {
		a := agg[name]
		t.AddRowf(name, stats.Mean(a[0]), stats.Mean(a[1]), stats.Mean(a[2]))
	}
	return t
}
