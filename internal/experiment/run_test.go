package experiment

import (
	"math"
	"testing"

	"dynp/internal/core"
	"dynp/internal/policy"
	"dynp/internal/workload"
)

// smallConfig is a fast sweep used throughout the tests.
func smallConfig() Config {
	return Config{
		Model:      workload.KTH,
		Shrinks:    []float64{1.0, 0.8},
		Sets:       4,
		JobsPerSet: 300,
		Seed:       1,
		Schedulers: PaperSchedulers(),
	}
}

func TestRunProducesAllCells(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(PaperSchedulers()); len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if len(c.SLDwAPerSet) != 4 || len(c.UtilPerSet) != 4 {
			t.Fatalf("cell %s/%.1f missing per-set values", c.Scheduler, c.Shrink)
		}
		if c.SLDwA < 1 {
			t.Fatalf("cell %s/%.1f SLDwA %v < 1", c.Scheduler, c.Shrink, c.SLDwA)
		}
		if c.Util <= 0 || c.Util > 1 {
			t.Fatalf("cell %s/%.1f util %v out of (0,1]", c.Scheduler, c.Shrink, c.Util)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i].SLDwA != b.Cells[i].SLDwA || a.Cells[i].Util != b.Cells[i].Util {
			t.Fatalf("cell %d differs across worker counts", i)
		}
	}
}

func TestRunDeterministicAcrossTunerWorkers(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 2, 200
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TunerWorkers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i].SLDwA != b.Cells[i].SLDwA || a.Cells[i].Util != b.Cells[i].Util ||
			a.Cells[i].Switches != b.Cells[i].Switches {
			t.Fatalf("cell %d differs across tuner worker counts", i)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.Sets = 0 },
		func(c *Config) { c.JobsPerSet = 0 },
		func(c *Config) { c.Shrinks = nil },
		func(c *Config) { c.Schedulers = nil },
	}
	for i, mutate := range bads {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCellLookup(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Cell(1.0, NameSJF); c == nil || c.Scheduler != NameSJF {
		t.Fatal("Cell lookup failed")
	}
	if c := res.Cell(0.5, NameSJF); c != nil {
		t.Fatal("Cell returned a non-existent shrink")
	}
}

func TestHigherLoadRaisesSLDwA(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []string{NameFCFS, NameSJF, NameLJF} {
		light := res.Cell(1.0, sched)
		heavy := res.Cell(0.8, sched)
		if heavy.SLDwA < light.SLDwA {
			t.Errorf("%s: SLDwA fell from %.2f to %.2f under higher load",
				sched, light.SLDwA, heavy.SLDwA)
		}
		if heavy.Util < light.Util {
			t.Errorf("%s: utilization fell from %.3f to %.3f under higher load",
				sched, light.Util, heavy.Util)
		}
	}
}

func TestDynPTracksPolicyShares(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cell(0.8, NameAdv)
	var total float64
	for _, s := range c.PolicyShare {
		total += s
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("policy shares sum to %v", total)
	}
	if c.Switches <= 0 {
		t.Fatal("dynP reported no policy switches on a mixed workload")
	}
	// Static schedulers report no switches and a single policy.
	s := res.Cell(0.8, NameSJF)
	if s.Switches != 0 {
		t.Fatal("static scheduler reported switches")
	}
	if math.Abs(s.PolicyShare[policy.SJF]-1) > 1e-9 {
		t.Fatalf("static SJF share = %v", s.PolicyShare[policy.SJF])
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 2, 100
	var calls int
	cfg.Progress = func(done, total int) {
		calls++
		if done < 1 || done > total {
			t.Errorf("progress %d/%d out of range", done, total)
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never called")
	}
}

func TestRunAll(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 2, 100
	cfg.Shrinks = []float64{1.0}
	results, err := RunAll([]workload.Model{workload.KTH, workload.SDSC}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Model.Name != "KTH" || results[1].Model.Name != "SDSC" {
		t.Fatalf("RunAll results wrong: %d", len(results))
	}
}

func TestParseSpec(t *testing.T) {
	good := []string{"FCFS", "SJF", "LJF", "dynP/simple", "dynP/advanced", "dynP/SJF-preferred"}
	for _, name := range good {
		spec, err := ParseSpec(name)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", name, err)
			continue
		}
		if spec.New() == nil {
			t.Errorf("ParseSpec(%q): nil driver", name)
		}
	}
	for _, bad := range []string{"", "bogus", "dynP/", "dynP/xx"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecsProduceFreshDrivers(t *testing.T) {
	spec := DynPSpec(core.Advanced{})
	a, b := spec.New(), spec.New()
	if a == b {
		t.Fatal("DynPSpec reuses driver instances")
	}
}
