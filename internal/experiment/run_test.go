package experiment

import (
	"math"
	"sync/atomic"
	"testing"

	"dynp/internal/core"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/sim"
	"dynp/internal/workload"
)

// smallConfig is a fast sweep used throughout the tests.
func smallConfig() Config {
	return Config{
		Model:      workload.KTH,
		Shrinks:    []float64{1.0, 0.8},
		Sets:       4,
		JobsPerSet: 300,
		Seed:       1,
		Schedulers: PaperSchedulers(),
	}
}

func TestRunProducesAllCells(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(PaperSchedulers()); len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if len(c.SLDwAPerSet) != 4 || len(c.UtilPerSet) != 4 {
			t.Fatalf("cell %s/%.1f missing per-set values", c.Scheduler, c.Shrink)
		}
		if c.SLDwA < 1 {
			t.Fatalf("cell %s/%.1f SLDwA %v < 1", c.Scheduler, c.Shrink, c.SLDwA)
		}
		if c.Util <= 0 || c.Util > 1 {
			t.Fatalf("cell %s/%.1f util %v out of (0,1]", c.Scheduler, c.Shrink, c.Util)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i].SLDwA != b.Cells[i].SLDwA || a.Cells[i].Util != b.Cells[i].Util {
			t.Fatalf("cell %d differs across worker counts", i)
		}
	}
}

func TestRunDeterministicAcrossTunerWorkers(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 2, 200
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TunerWorkers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i].SLDwA != b.Cells[i].SLDwA || a.Cells[i].Util != b.Cells[i].Util ||
			a.Cells[i].Switches != b.Cells[i].Switches {
			t.Fatalf("cell %d differs across tuner worker counts", i)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.Sets = 0 },
		func(c *Config) { c.JobsPerSet = 0 },
		func(c *Config) { c.Shrinks = nil },
		func(c *Config) { c.Schedulers = nil },
	}
	for i, mutate := range bads {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCellLookup(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Cell(1.0, NameSJF); c == nil || c.Scheduler != NameSJF {
		t.Fatal("Cell lookup failed")
	}
	if c := res.Cell(0.5, NameSJF); c != nil {
		t.Fatal("Cell returned a non-existent shrink")
	}
}

// neverDriver plans nothing, so no job ever starts and sim.Run fails
// deterministically once the submission events drain.
type neverDriver struct{}

func (neverDriver) Name() string { return "never" }

func (neverDriver) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	return &plan.Schedule{Now: now, Capacity: capacity, Policy: policy.FCFS}
}

func (neverDriver) ActivePolicy() policy.Policy { return policy.FCFS }

func TestRunShortCircuitsOnFailure(t *testing.T) {
	// A sweep mixing a scheduler that fails every simulation with a healthy
	// one: the first failure must cancel the sweep instead of letting the
	// other workers simulate the remaining tasks. Tasks are claimed
	// scheduler-minor, so the failing spec's first task is claimed
	// immediately and fails in well under the time the healthy worker needs
	// to get through even a fraction of its 30 tasks.
	var goodRuns atomic.Int64
	cfg := Config{
		Model:      workload.KTH,
		Shrinks:    []float64{1.0},
		Sets:       30,
		JobsPerSet: 200,
		Seed:       1,
		Workers:    2,
		Schedulers: []SchedulerSpec{
			{Name: "never", New: func() sim.Driver { return neverDriver{} }},
			{Name: "SJF", New: func() sim.Driver {
				goodRuns.Add(1)
				return &sim.Static{Policy: policy.SJF}
			}},
		},
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("sweep with an always-failing scheduler reported no error")
	}
	if n := goodRuns.Load(); n >= 15 {
		t.Fatalf("sweep kept simulating after the failure: %d of 30 healthy tasks ran", n)
	}
}

func TestCellMatchesRecomputedShrink(t *testing.T) {
	// Callers often recompute shrink factors arithmetically; the float64
	// they derive need not be bit-identical to the configured one. The
	// lookup must match within an epsilon instead of ==. 0.1+0.2 is the
	// canonical IEEE 754 example: it differs from the literal 0.3. The
	// operands are variables so the addition happens at runtime in float64
	// (Go folds constant expressions in arbitrary precision).
	tenth, fifth := 0.1, 0.2
	shrink := tenth + fifth
	if shrink == 0.3 {
		t.Fatal("runtime 0.1+0.2 == 0.3: the platform is not using IEEE 754 doubles")
	}
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 1, 30
	cfg.Shrinks = []float64{shrink}
	cfg.Schedulers = []SchedulerSpec{StaticSpec(policy.SJF)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Cell(0.3, NameSJF); c == nil {
		t.Fatalf("Cell(0.3) missed the cell configured with shrink %v", shrink)
	}
	if c := res.Cell(0.4, NameSJF); c != nil {
		t.Fatal("epsilon lookup matched a clearly different factor")
	}
}

func TestProgressSerializedAndOrdered(t *testing.T) {
	// cfg.Progress is documented to be called serially with strictly
	// increasing done counts. The callback below is deliberately
	// unsynchronized: under `go test -race` any concurrent invocation is
	// flagged, and the recorded sequence checks the ordering contract.
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 3, 80
	cfg.Workers = 4
	var seen []int
	cfg.Progress = func(done, total int) {
		if total != 2*len(PaperSchedulers())*3 {
			t.Errorf("progress total = %d", total)
		}
		seen = append(seen, done)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2*len(PaperSchedulers())*3 {
		t.Fatalf("progress called %d times, want %d", len(seen), 2*len(PaperSchedulers())*3)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done counts out of order: %v", seen)
		}
	}
}

func TestHigherLoadRaisesSLDwA(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []string{NameFCFS, NameSJF, NameLJF} {
		light := res.Cell(1.0, sched)
		heavy := res.Cell(0.8, sched)
		if heavy.SLDwA < light.SLDwA {
			t.Errorf("%s: SLDwA fell from %.2f to %.2f under higher load",
				sched, light.SLDwA, heavy.SLDwA)
		}
		if heavy.Util < light.Util {
			t.Errorf("%s: utilization fell from %.3f to %.3f under higher load",
				sched, light.Util, heavy.Util)
		}
	}
}

func TestDynPTracksPolicyShares(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cell(0.8, NameAdv)
	var total float64
	for _, s := range c.PolicyShare {
		total += s
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("policy shares sum to %v", total)
	}
	if c.Switches <= 0 {
		t.Fatal("dynP reported no policy switches on a mixed workload")
	}
	// Static schedulers report no switches and a single policy.
	s := res.Cell(0.8, NameSJF)
	if s.Switches != 0 {
		t.Fatal("static scheduler reported switches")
	}
	if math.Abs(s.PolicyShare[policy.SJF]-1) > 1e-9 {
		t.Fatalf("static SJF share = %v", s.PolicyShare[policy.SJF])
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 2, 100
	var calls int
	cfg.Progress = func(done, total int) {
		calls++
		if done < 1 || done > total {
			t.Errorf("progress %d/%d out of range", done, total)
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never called")
	}
}

func TestRunAll(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.JobsPerSet = 2, 100
	cfg.Shrinks = []float64{1.0}
	results, err := RunAll([]workload.Model{workload.KTH, workload.SDSC}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Model.Name != "KTH" || results[1].Model.Name != "SDSC" {
		t.Fatalf("RunAll results wrong: %d", len(results))
	}
}

func TestParseSpec(t *testing.T) {
	good := []string{"FCFS", "SJF", "LJF", "dynP/simple", "dynP/advanced", "dynP/SJF-preferred"}
	for _, name := range good {
		spec, err := ParseSpec(name)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", name, err)
			continue
		}
		if spec.New() == nil {
			t.Errorf("ParseSpec(%q): nil driver", name)
		}
	}
	for _, bad := range []string{"", "bogus", "dynP/", "dynP/xx"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecsProduceFreshDrivers(t *testing.T) {
	spec := DynPSpec(core.Advanced{})
	a, b := spec.New(), spec.New()
	if a == b {
		t.Fatal("DynPSpec reuses driver instances")
	}
}
