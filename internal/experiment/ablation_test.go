package experiment

import (
	"strings"
	"testing"

	"dynp/internal/policy"
	"dynp/internal/workload"
)

func TestAblationSchedulers(t *testing.T) {
	wantCounts := map[Ablation]int{
		AblationPreferred:  4,
		AblationDecider:    3,
		AblationMetric:     4,
		AblationQueueing:   3,
		AblationCandidates: 2,
	}
	for _, a := range Ablations() {
		specs, err := a.Schedulers()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(specs) != wantCounts[a] {
			t.Errorf("%s: %d schedulers, want %d", a, len(specs), wantCounts[a])
		}
		seen := map[string]bool{}
		for _, s := range specs {
			if s.New == nil || s.New() == nil {
				t.Errorf("%s: spec %q builds nil driver", a, s.Name)
			}
			if seen[s.Name] {
				t.Errorf("%s: duplicate scheduler name %q", a, s.Name)
			}
			seen[s.Name] = true
		}
		if a.Title() == string(a) {
			t.Errorf("%s: missing title", a)
		}
	}
	if _, err := Ablation("nope").Schedulers(); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestAblationEndToEnd(t *testing.T) {
	specs, err := AblationQueueing.Schedulers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Shrinks:    []float64{1.0},
		Sets:       2,
		JobsPerSet: 150,
		Seed:       5,
		Schedulers: specs,
	}
	results, err := RunAll([]workload.Model{workload.KTH}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	tb := Comparison(AblationQueueing.Title(), results, cfg.Shrinks, names)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EASY", "FCFS", "dynP/SJF-preferred"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("comparison missing %q:\n%s", want, b.String())
		}
	}
}

func TestParseSpecEASY(t *testing.T) {
	for _, name := range []string{"EASY", "EASY/SJF"} {
		spec, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("spec name %q, want %q", spec.Name, name)
		}
		if spec.New() == nil {
			t.Errorf("%q: nil driver", name)
		}
	}
	if _, err := ParseSpec("EASY/xx"); err == nil {
		t.Error("EASY/xx accepted")
	}
}

func TestComparisonSkipsMissingCells(t *testing.T) {
	res, err := Run(Config{
		Model:      workload.KTH,
		Shrinks:    []float64{1.0},
		Sets:       2,
		JobsPerSet: 100,
		Seed:       6,
		Schedulers: []SchedulerSpec{StaticSpec(policy.FCFS)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb := Comparison("t", []*Result{res}, []float64{1.0}, []string{"FCFS", "missing"})
	if tb.Len() > 1 { // only the separator row
		t.Fatalf("rows with missing schedulers rendered: %d", tb.Len())
	}
}
