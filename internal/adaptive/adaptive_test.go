package adaptive

import (
	"strings"
	"testing"
	"time"

	"dynp/internal/core"
	"dynp/internal/engine"
	"dynp/internal/policy"
)

// planEvent builds one planning event with the given post-launch queue
// depth.
func planEvent(queued int) engine.Event {
	return engine.Event{Kind: engine.EventPlan, Queued: queued,
		Case: "1", Latency: 5 * time.Microsecond}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, 8, 3); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(policy.SJF, 0, 3); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := New(policy.SJF, 8, 0); err == nil {
		t.Error("patience 0 accepted")
	}
}

func TestNameIsCanonicalAndResolvable(t *testing.T) {
	fair := policy.MustFairSize(0.5, 2)
	d := Must(fair, 8, 3)
	want := "adaptive(PSBS(a=0.5,r=2),depth=8,patience=3)"
	if d.Name() != want {
		t.Fatalf("Name = %q, want %q", d.Name(), want)
	}
	// The name resolves back through the decider registry, even with the
	// nested parameterized policy name.
	got, err := core.NewDecider(want)
	if err != nil {
		t.Fatalf("NewDecider(%q): %v", want, err)
	}
	ad, ok := got.(*Decider)
	if !ok || ad.Name() != want || ad.Fair().Name() != fair.Name() {
		t.Fatalf("resolved %#v", got)
	}
	// Fresh instance per resolution: stateful deciders must not share.
	if got2, _ := core.NewDecider(want); got2 == got {
		t.Fatal("NewDecider returned a shared adaptive instance")
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"adaptive(SJF,depth=8)",            // missing patience
		"adaptive(SJF,patience=3)",         // missing depth
		"adaptive(SJF,depth=x,patience=3)", // non-integer
		"adaptive(SJF,depth=0,patience=3)", // invalid range
		"adaptive(NOPE,depth=8,patience=3)",
	} {
		if _, err := core.NewDecider(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	// Unclaimed specs fall through to the registry's unknown-name error.
	if _, err := core.NewDecider("adaptive-ish"); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Errorf("unclaimed spec: %v", err)
	}
}

func TestPressureSwitchesDecisionRule(t *testing.T) {
	fair := policy.MustFairSize(0, 1)
	d := Must(fair, 4, 2)
	candidates := []policy.Policy{policy.FCFS, policy.SJF, fair}
	// SJF and fair tie the minimum; FCFS (the old policy) is worse.
	values := []float64{2.0, 1.0, 1.0}

	// Calm: the advanced rule picks the first minimal candidate.
	if got := d.Decide(policy.FCFS, candidates, values); got != policy.SJF {
		t.Fatalf("calm decision = %v, want SJF", got)
	}

	// One deep observation is below patience: still calm.
	d.Observe(planEvent(10))
	if got := d.Decide(policy.FCFS, candidates, values); got != policy.SJF {
		t.Fatalf("below-patience decision = %v, want SJF", got)
	}

	// A shallow observation resets the streak; two consecutive deep ones
	// engage pressure mode, where the unfair rule elects the fair policy.
	d.Observe(planEvent(1))
	d.Observe(planEvent(4))
	d.Observe(planEvent(7))
	if got := d.Decide(policy.FCFS, candidates, values); got != fair {
		t.Fatalf("pressure decision = %v, want %v", got, fair)
	}

	// Hysteresis: one shallow observation does not leave pressure mode,
	// patience consecutive ones do.
	d.Observe(planEvent(0))
	if got := d.Decide(policy.FCFS, candidates, values); got != fair {
		t.Fatalf("single shallow observation left pressure mode: %v", got)
	}
	d.Observe(planEvent(0))
	if got := d.Decide(policy.FCFS, candidates, values); got != policy.SJF {
		t.Fatalf("post-pressure decision = %v, want SJF", got)
	}

	snap := d.Snapshot()
	if snap.Plans != 6 || snap.Decisions != 5 || snap.Unfair != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Cases["1"] != 6 {
		t.Errorf("case histogram = %v", snap.Cases)
	}
	if snap.PlanNs <= 0 {
		t.Errorf("latency EWMA not tracked: %v", snap.PlanNs)
	}
}

func TestNonPlanEventsAreIgnored(t *testing.T) {
	d := Must(policy.SJF, 1, 1)
	for _, k := range []engine.EventKind{engine.EventSubmit, engine.EventStart,
		engine.EventFinish, engine.EventKill, engine.EventCancel} {
		d.Observe(engine.Event{Kind: k, Queued: 100})
	}
	if s := d.Snapshot(); s.Pressure || s.Plans != 0 {
		t.Fatalf("non-plan events observed: %+v", s)
	}
}

func TestStateRoundTrip(t *testing.T) {
	d := Must(policy.SJF, 4, 2)
	// Enter pressure (5,6), leave it again (1,1), then start a new deep
	// streak (9) that is one observation short of re-entering.
	for _, q := range []int{5, 6, 1, 1, 9} {
		d.Observe(planEvent(q))
	}
	d.Decide(policy.FCFS, []policy.Policy{policy.FCFS, policy.SJF}, []float64{1, 1})
	data, err := d.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	twin := Must(policy.SJF, 4, 2)
	if err := twin.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	a, b := d.Snapshot(), twin.Snapshot()
	if a.Pressure != b.Pressure || a.Plans != b.Plans || a.Decisions != b.Decisions ||
		a.Unfair != b.Unfair || a.Cases["1"] != b.Cases["1"] || a.PlanNs != b.PlanNs {
		t.Fatalf("state did not round-trip: %+v vs %+v", a, b)
	}
	// Streak internals round-trip too: the twin continues mid-streak —
	// one more deep observation completes the pending re-entry.
	if a.Pressure {
		t.Fatal("fixture error: pressure should be off at save time")
	}
	twin.Observe(planEvent(9))
	if !twin.Snapshot().Pressure {
		t.Fatal("restored streak did not continue")
	}

	if err := twin.RestoreState([]byte("{broken")); err == nil {
		t.Fatal("malformed state accepted")
	}
}
