// Package adaptive provides an observer-driven decider shell for the
// self-tuning dynP scheduler: a core.Decider that watches the scheduling
// engine's event stream (queue depth, Table-1 decision case, per-plan
// latency) and switches its decision rule by observed load.
//
// Under calm conditions the shell delegates to an inner decider (the
// paper's advanced decider by default). When the post-launch backlog has
// stayed at or above Depth for Patience consecutive planning events, the
// shell enters pressure mode and decides like an unfair preferred-policy
// decider toward its fairness policy — the paper's unfair mechanism,
// engaged only when backlog actually builds up. It leaves pressure mode
// again after Patience consecutive shallow observations (hysteresis, so
// a queue oscillating around the threshold does not thrash the rule).
//
// The Table-1 case histogram and a per-plan latency EWMA are folded into
// the same observed state. They are deliberately excluded from the
// decision rule — wall-clock latency is nondeterministic, and decisions
// must replay identically from a journal — but they ride SaveState into
// checkpoints and are exposed via Snapshot for monitoring.
//
// The shell is registered as the decider family
// "adaptive(<POLICY>,depth=<n>,patience=<n>)", so any component that
// resolves deciders by name (scheduler specs, dynpd configuration) can
// construct one for any registered policy. For the fairness policy to be
// electable, it must be in the tuner's candidate set; see
// experiment.AdaptiveSpec.
package adaptive

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"dynp/internal/core"
	"dynp/internal/engine"
	"dynp/internal/policy"
)

// Template is the registered decider-family template.
const Template = "adaptive(<POLICY>,depth=<n>,patience=<n>)"

// Decider is the observer-driven shell. It implements core.Decider,
// core.StatefulDecider and engine.Observer. The zero value is not
// usable; construct with New.
type Decider struct {
	fair     policy.Policy // preferred under pressure
	inner    core.Decider  // decision rule while calm
	depth    int           // backlog threshold (post-launch waiting jobs)
	patience int           // consecutive observations to enter/leave pressure
	name     string        // canonical, precomputed

	obs observed
}

// observed is the decider's accumulated view of the engine's event
// stream. It is the unit of checkpointed state.
type observed struct {
	Pressure  bool             `json:"pressure,omitempty"`
	Deep      int              `json:"deep,omitempty"`      // consecutive deep plan events
	Calm      int              `json:"calm,omitempty"`      // consecutive shallow plan events
	Plans     int64            `json:"plans,omitempty"`     // plan events observed
	Decisions int64            `json:"decisions,omitempty"` // Decide calls served
	Unfair    int64            `json:"unfair,omitempty"`    // decisions taken in pressure mode
	Cases     map[string]int64 `json:"cases,omitempty"`     // Table-1 case histogram
	PlanNs    float64          `json:"plan_ns,omitempty"`   // latency EWMA (monitoring only)
}

// Snapshot is the exported monitoring view of the observed state.
type Snapshot struct {
	Pressure  bool
	Plans     int64
	Decisions int64
	Unfair    int64
	Cases     map[string]int64
	PlanNs    float64
}

// ewmaWeight is the weight of the newest plan latency in the EWMA.
const ewmaWeight = 0.1

// New returns an adaptive decider preferring fair under pressure. Depth
// is the queue-depth threshold (≥ 1 waiting jobs after launches) and
// patience the number of consecutive planning events on one side of the
// threshold required to change mode (≥ 1).
func New(fair policy.Policy, depth, patience int) (*Decider, error) {
	if fair == nil {
		return nil, fmt.Errorf("adaptive: nil fairness policy")
	}
	if depth < 1 {
		return nil, fmt.Errorf("adaptive: depth %d must be >= 1", depth)
	}
	if patience < 1 {
		return nil, fmt.Errorf("adaptive: patience %d must be >= 1", patience)
	}
	return &Decider{
		fair:     fair,
		inner:    core.Advanced{},
		depth:    depth,
		patience: patience,
		name:     fmt.Sprintf("adaptive(%s,depth=%d,patience=%d)", fair.Name(), depth, patience),
	}, nil
}

// Must is New, panicking on invalid parameters.
func Must(fair policy.Policy, depth, patience int) *Decider {
	d, err := New(fair, depth, patience)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements core.Decider with the canonical family spelling.
func (d *Decider) Name() string { return d.name }

// Fair returns the policy preferred under pressure.
func (d *Decider) Fair() policy.Policy { return d.fair }

// Decide implements core.Decider: the unfair preferred rule toward the
// fairness policy while under observed pressure, the inner (advanced)
// rule otherwise.
func (d *Decider) Decide(old policy.Policy, candidates []policy.Policy, values []float64) policy.Policy {
	d.obs.Decisions++
	if d.obs.Pressure {
		d.obs.Unfair++
		return core.Preferred{Policy: d.fair}.Decide(old, candidates, values)
	}
	return d.inner.Decide(old, candidates, values)
}

// Observe implements engine.Observer. Only planning events matter: their
// queue depth is the post-launch backlog that drives the mode, and they
// carry the Table-1 case and the plan latency.
func (d *Decider) Observe(ev engine.Event) {
	if ev.Kind != engine.EventPlan {
		return
	}
	d.obs.Plans++
	if ev.Case != "" {
		if d.obs.Cases == nil {
			d.obs.Cases = make(map[string]int64)
		}
		d.obs.Cases[ev.Case]++
	}
	if ev.Latency > 0 {
		if d.obs.PlanNs == 0 {
			d.obs.PlanNs = float64(ev.Latency)
		} else {
			d.obs.PlanNs += ewmaWeight * (float64(ev.Latency) - d.obs.PlanNs)
		}
	}
	if ev.Queued >= d.depth {
		d.obs.Deep++
		d.obs.Calm = 0
		if d.obs.Deep >= d.patience {
			d.obs.Pressure = true
		}
	} else {
		d.obs.Calm++
		d.obs.Deep = 0
		if d.obs.Calm >= d.patience {
			d.obs.Pressure = false
		}
	}
}

// Snapshot returns the current observed state for monitoring.
func (d *Decider) Snapshot() Snapshot {
	s := Snapshot{
		Pressure:  d.obs.Pressure,
		Plans:     d.obs.Plans,
		Decisions: d.obs.Decisions,
		Unfair:    d.obs.Unfair,
		PlanNs:    d.obs.PlanNs,
	}
	if len(d.obs.Cases) > 0 {
		s.Cases = make(map[string]int64, len(d.obs.Cases))
		for k, v := range d.obs.Cases {
			s.Cases[k] = v
		}
	}
	return s
}

// SaveState implements core.StatefulDecider: the observed state rides
// tuner checkpoints, so a restored scheduler resumes in the same mode
// with the same streaks.
func (d *Decider) SaveState() ([]byte, error) { return json.Marshal(&d.obs) }

// RestoreState implements core.StatefulDecider.
func (d *Decider) RestoreState(data []byte) error {
	var obs observed
	if err := json.Unmarshal(data, &obs); err != nil {
		return fmt.Errorf("adaptive: state: %w", err)
	}
	d.obs = obs
	return nil
}

func init() {
	core.MustRegisterDeciderFamily(Template, parse)
}

// parse resolves one canonical family spec. The fairness policy name may
// itself contain commas and parentheses (e.g. a PSBS instance), so the
// numeric suffix is split off from the right.
func parse(spec string) (core.Decider, bool, error) {
	body, ok := strings.CutPrefix(spec, "adaptive(")
	if !ok {
		return nil, false, nil
	}
	body, ok = strings.CutSuffix(body, ")")
	if !ok {
		return nil, true, badSpec(spec, "missing closing parenthesis")
	}
	body, patStr, ok := cutLast(body, ",patience=")
	if !ok {
		return nil, true, badSpec(spec, "missing patience")
	}
	polName, depthStr, ok := cutLast(body, ",depth=")
	if !ok {
		return nil, true, badSpec(spec, "missing depth")
	}
	depth, err := strconv.Atoi(depthStr)
	if err != nil {
		return nil, true, badSpec(spec, "depth is not an integer")
	}
	patience, err := strconv.Atoi(patStr)
	if err != nil {
		return nil, true, badSpec(spec, "patience is not an integer")
	}
	fair, err := policy.Lookup(polName)
	if err != nil {
		return nil, true, fmt.Errorf("adaptive: spec %q: %w", spec, err)
	}
	d, err := New(fair, depth, patience)
	if err != nil {
		return nil, true, err
	}
	return d, true, nil
}

func badSpec(spec, why string) error {
	return fmt.Errorf("adaptive: spec %q: %s (want %s)", spec, why, Template)
}

// cutLast splits s around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}
