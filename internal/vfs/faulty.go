// Deterministic disk fault injection. Faulty wraps an FS and makes its
// files misbehave on a schedule derived from a seed, the way the chaos
// package's Dialer makes network connections misbehave: the fault
// schedule of the k-th file opened through a Faulty depends only on
// (seed, k), so a failing run reproduces exactly.
//
// Fault model (probabilities are per decision point):
//
//   - WriteFail: the write persists nothing and reports an error — a
//     full device-level rejection. Nothing acknowledged is lost.
//   - ShortWrite: only a random prefix of the buffer reaches the file
//     and the call reports the short count — a torn write. The caller
//     sees the failure (bufio turns it into io.ErrShortWrite), so
//     nothing acknowledged is lost, but the file now ends in a torn
//     record, exactly like a crash mid-append.
//   - BitFlip: the write persists with one bit flipped and reports
//     success — silent media corruption of acknowledged data. Recovery
//     must detect it (checksums) and fall back or refuse; it cannot
//     restore the lost bytes, so soaks asserting "no acked event lost"
//     must leave BitFlip at zero.
//   - SyncFail: Sync reports failure without flushing — a dying disk's
//     fsync. The journal must treat this as fatal (sticky).
//   - RenameFail: Rename reports failure and does nothing — faults the
//     journal's segment rotation.
package vfs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"dynp/internal/rng"
)

// FaultConfig bounds the injected disk faults.
type FaultConfig struct {
	Seed       uint64  // seed for the derived fault schedules
	WriteFail  float64 // probability a write fails outright, persisting nothing
	ShortWrite float64 // probability a write tears: a random prefix persists, short count returned
	BitFlip    float64 // probability a write persists with one bit silently flipped
	SyncFail   float64 // probability a Sync reports failure without flushing
	RenameFail float64 // probability a Rename fails without renaming
}

// Faulty wraps an FS with deterministic fault injection. Safe for
// concurrent use.
type Faulty struct {
	fs  FS
	cfg FaultConfig
	ops *rng.Stream // schedule for FS-level ops (rename)

	mu    sync.Mutex
	base  *rng.Stream
	opens uint64 // files handed out so far
}

// NewFaulty wraps fs with faults drawn from cfg. All randomness derives
// from cfg.Seed.
func NewFaulty(fs FS, cfg FaultConfig) *Faulty {
	base := rng.New(cfg.Seed)
	return &Faulty{fs: fs, cfg: cfg, base: base, ops: base.Derive(0xd15c, 0xf5)}
}

// OpenFile opens the next file. Its fault schedule depends only on the
// Faulty's seed and the open's sequence number.
func (v *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	v.mu.Lock()
	k := v.opens
	v.opens++
	v.mu.Unlock()
	f, err := v.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: f, cfg: v.cfg, r: v.base.Derive(0xd15c, k)}, nil
}

// Rename forwards to the wrapped FS unless the schedule says the rename
// fails.
func (v *Faulty) Rename(oldpath, newpath string) error {
	v.mu.Lock()
	fail := v.cfg.RenameFail > 0 && v.ops.Float64() < v.cfg.RenameFail
	v.mu.Unlock()
	if fail {
		return fmt.Errorf("vfs: injected rename failure: %s", oldpath)
	}
	return v.fs.Rename(oldpath, newpath)
}

func (v *Faulty) Remove(name string) error { return v.fs.Remove(name) }
func (v *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	return v.fs.ReadDir(name)
}

// faultyFile injects faults on Write and Sync. Reads, seeks and
// truncates pass through untouched: recovery must see exactly what the
// faulted writes left on disk.
type faultyFile struct {
	File
	cfg FaultConfig

	mu sync.Mutex
	r  *rng.Stream
}

func (f *faultyFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.WriteFail > 0 && f.r.Float64() < f.cfg.WriteFail {
		return 0, fmt.Errorf("vfs: injected write failure: %s", f.Name())
	}
	if f.cfg.ShortWrite > 0 && len(p) > 1 && f.r.Float64() < f.cfg.ShortWrite {
		n := 1 + f.r.Intn(len(p)-1)
		m, err := f.File.Write(p[:n])
		if err != nil {
			return m, err
		}
		return m, nil // short count, no error: bufio reports io.ErrShortWrite
	}
	if f.cfg.BitFlip > 0 && len(p) > 0 && f.r.Float64() < f.cfg.BitFlip {
		q := make([]byte, len(p))
		copy(q, p)
		q[f.r.Intn(len(q))] ^= 1 << uint(f.r.Intn(8))
		return f.File.Write(q)
	}
	return f.File.Write(p)
}

func (f *faultyFile) Sync() error {
	f.mu.Lock()
	fail := f.cfg.SyncFail > 0 && f.r.Float64() < f.cfg.SyncFail
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("vfs: injected sync failure: %s", f.Name())
	}
	return f.File.Sync()
}

// ParseFaultConfig parses a comma-separated key=value fault spec, e.g.
// "seed=7,writefail=0.01,short=0.02,bitflip=0,syncfail=0.005,rename=0".
// An empty spec is the zero config (no faults).
func ParseFaultConfig(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("vfs: fault spec %q: want key=value", kv)
		}
		if k == "seed" {
			seed, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return cfg, fmt.Errorf("vfs: fault spec seed: %v", err)
			}
			cfg.Seed = seed
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return cfg, fmt.Errorf("vfs: fault spec %q: want probability in [0,1]", kv)
		}
		switch k {
		case "writefail":
			cfg.WriteFail = p
		case "short":
			cfg.ShortWrite = p
		case "bitflip":
			cfg.BitFlip = p
		case "syncfail":
			cfg.SyncFail = p
		case "rename":
			cfg.RenameFail = p
		default:
			return cfg, fmt.Errorf("vfs: fault spec: unknown key %q", k)
		}
	}
	return cfg, nil
}
