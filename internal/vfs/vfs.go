// Package vfs abstracts the few filesystem operations the journal
// needs — open, rename, remove, list — behind an interface so tests can
// inject disk faults underneath it. The production implementation (OS)
// is a thin veneer over the os package; Faulty (faulty.go) wraps any FS
// with deterministic, seeded write/sync faults mirroring the chaos
// package's network dialer.
package vfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the journal uses. Implementations must
// support interleaved reads and writes through a shared file offset,
// exactly like an *os.File opened O_RDWR.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer

	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
}

// FS is the filesystem surface the journal runs on.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}
