package vfs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeAll appends chunks through fs to path and returns per-chunk
// errors plus the final file contents.
func writeAll(t *testing.T, fs FS, path string, chunks [][]byte) ([]error, []byte) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var errs []error
	for _, c := range chunks {
		n, err := f.Write(c)
		if err == nil && n < len(c) {
			err = os.ErrInvalid // stand-in for io.ErrShortWrite, value irrelevant
		}
		errs = append(errs, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return errs, got
}

// TestFaultyDeterminism: the same seed must yield byte-identical fault
// schedules — same errors, same file contents — across independent
// Faulty instances, and a different seed must diverge.
func TestFaultyDeterminism(t *testing.T) {
	chunks := make([][]byte, 64)
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 32)
	}
	cfg := FaultConfig{Seed: 42, WriteFail: 0.2, ShortWrite: 0.2, BitFlip: 0.2, SyncFail: 0.2}
	run := func(seed uint64) (string, []byte) {
		c := cfg
		c.Seed = seed
		dir := t.TempDir()
		errs, data := writeAll(t, NewFaulty(OS, c), filepath.Join(dir, "f"), chunks)
		var sig strings.Builder
		for _, e := range errs {
			if e != nil {
				// Strip the per-run temp path; keep the fault kind.
				msg, _, _ := strings.Cut(e.Error(), ": /")
				sig.WriteString(msg)
			}
			sig.WriteByte(';')
		}
		return sig.String(), data
	}
	sig1, data1 := run(42)
	sig2, data2 := run(42)
	sig3, data3 := run(43)
	if sig1 != sig2 || !bytes.Equal(data1, data2) {
		t.Fatal("same seed produced different fault schedules")
	}
	if sig1 == sig3 && bytes.Equal(data1, data3) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	if !strings.Contains(sig1, "injected write failure") {
		t.Fatal("no write failure injected at p=0.2 over 64 writes")
	}
}

// TestFaultyShortWrite: a torn write persists a strict prefix and
// reports a short count, never inventing or reordering bytes.
func TestFaultyShortWrite(t *testing.T) {
	fs := NewFaulty(OS, FaultConfig{Seed: 7, ShortWrite: 1})
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if err != nil {
		t.Fatalf("short write must report a count, not an error: %v", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("short write persisted %d of %d bytes", n, len(payload))
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("torn write persisted %q, want prefix %q", got, payload[:n])
	}
}

// TestFaultyBitFlip: a flipped write persists the same length with
// exactly one bit changed and reports success.
func TestFaultyBitFlip(t *testing.T) {
	fs := NewFaulty(OS, FaultConfig{Seed: 7, BitFlip: 1})
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("bit-flip write must report success: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if len(got) != len(payload) {
		t.Fatalf("bit flip changed length: %d vs %d", len(got), len(payload))
	}
	diff := 0
	for i := range got {
		for b := got[i] ^ payload[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bits, want exactly 1", diff)
	}
}

// TestFaultySyncAndRename: injected sync and rename failures surface as
// errors and leave the filesystem untouched.
func TestFaultySyncAndRename(t *testing.T) {
	fs := NewFaulty(OS, FaultConfig{Seed: 7, SyncFail: 1, RenameFail: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync did not fail at p=1")
	}
	f.Close()
	if err := fs.Rename(path, path+".1"); err == nil {
		t.Fatal("rename did not fail at p=1")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("failed rename moved the file: %v", err)
	}
}

// TestParseFaultConfig round-trips a spec and rejects malformed ones.
func TestParseFaultConfig(t *testing.T) {
	cfg, err := ParseFaultConfig("seed=9,writefail=0.1,short=0.2,bitflip=0.3,syncfail=0.4,rename=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{Seed: 9, WriteFail: 0.1, ShortWrite: 0.2, BitFlip: 0.3, SyncFail: 0.4, RenameFail: 0.5}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if c, err := ParseFaultConfig(""); err != nil || c != (FaultConfig{}) {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"writefail", "writefail=2", "bogus=0.1", "seed=x"} {
		if _, err := ParseFaultConfig(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
