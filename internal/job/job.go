// Package job defines the job model shared by the workload generators, the
// planning scheduler and the discrete event simulator.
//
// A job is described the way the paper (Section 4.2) defines it: by its
// submission time, the number of requested resources (its width) and the
// estimated run time (its length). The actual run time is carried along for
// the simulation. All times and durations are integer seconds, matching the
// resolution of the Parallel Workloads Archive traces.
package job

import (
	"errors"
	"fmt"
)

// ID identifies a job within one job set. IDs are assigned in submission
// order starting at 1, so they double as a first-come tie-breaker.
type ID int64

// Job is a rigid parallel batch job.
//
// Invariants (checked by Validate):
//
//	Submit   >= 0
//	Width    >= 1
//	Estimate >= 1
//	1 <= Runtime <= Estimate
//
// Runtime <= Estimate reflects planning-based RMS semantics: a job is killed
// when its estimate expires, so the simulator never observes a longer run.
type Job struct {
	ID       ID
	Submit   int64 // submission time, seconds from job set start
	Width    int   // requested processors
	Estimate int64 // estimated (requested) run time, seconds
	Runtime  int64 // actual run time, seconds
}

// Area is the actual resource consumption of the job in processor-seconds
// (run time x width). It is the weight used by the SLDwA metric.
func (j *Job) Area() int64 { return j.Runtime * int64(j.Width) }

// EstimatedArea is the planned resource consumption in processor-seconds
// (estimate x width), the weight visible to the planner before the job ran.
func (j *Job) EstimatedArea() int64 { return j.Estimate * int64(j.Width) }

// EstimatedEnd returns the latest possible completion time if the job
// started at the given time.
func (j *Job) EstimatedEnd(start int64) int64 { return start + j.Estimate }

// String implements fmt.Stringer for debugging output.
func (j *Job) String() string {
	return fmt.Sprintf("job %d (submit %d, width %d, est %d, run %d)",
		j.ID, j.Submit, j.Width, j.Estimate, j.Runtime)
}

// Validation errors returned by Validate.
var (
	ErrNegativeSubmit  = errors.New("job: negative submission time")
	ErrNonPositiveSize = errors.New("job: width must be >= 1")
	ErrTooWide         = errors.New("job: width exceeds machine size")
	ErrBadEstimate     = errors.New("job: estimate must be >= 1")
	ErrBadRuntime      = errors.New("job: runtime must satisfy 1 <= runtime <= estimate")
)

// Validate checks the job invariants against a machine with the given
// number of processors. A maxWidth of 0 skips the machine size check.
func (j *Job) Validate(maxWidth int) error {
	switch {
	case j.Submit < 0:
		return fmt.Errorf("%w: %s", ErrNegativeSubmit, j)
	case j.Width < 1:
		return fmt.Errorf("%w: %s", ErrNonPositiveSize, j)
	case maxWidth > 0 && j.Width > maxWidth:
		return fmt.Errorf("%w (machine %d): %s", ErrTooWide, maxWidth, j)
	case j.Estimate < 1:
		return fmt.Errorf("%w: %s", ErrBadEstimate, j)
	case j.Runtime < 1 || j.Runtime > j.Estimate:
		return fmt.Errorf("%w: %s", ErrBadRuntime, j)
	}
	return nil
}

// Set is an ordered collection of jobs forming one simulation input.
type Set struct {
	Name    string
	Machine int // available processors on the modelled machine
	Jobs    []*Job
}

// Validate checks every job in the set and that jobs are sorted by
// submission time (ties broken by ID), which the simulator relies on.
func (s *Set) Validate() error {
	if s.Machine < 1 {
		return fmt.Errorf("job: set %q: machine size %d < 1", s.Name, s.Machine)
	}
	for i, j := range s.Jobs {
		if err := j.Validate(s.Machine); err != nil {
			return fmt.Errorf("job: set %q, index %d: %w", s.Name, i, err)
		}
		if i > 0 {
			prev := s.Jobs[i-1]
			if j.Submit < prev.Submit || (j.Submit == prev.Submit && j.ID <= prev.ID) {
				return fmt.Errorf("job: set %q not sorted at index %d: %s after %s",
					s.Name, i, j, prev)
			}
		}
	}
	return nil
}

// TotalArea returns the summed actual area of all jobs in processor-seconds.
func (s *Set) TotalArea() int64 {
	var a int64
	for _, j := range s.Jobs {
		a += j.Area()
	}
	return a
}

// Span returns the interval [first submit, last submit] covered by the set.
// A nil or empty set spans [0, 0].
func (s *Set) Span() (first, last int64) {
	if s == nil || len(s.Jobs) == 0 {
		return 0, 0
	}
	return s.Jobs[0].Submit, s.Jobs[len(s.Jobs)-1].Submit
}

// Shrink returns a copy of the set with every submission time multiplied by
// factor and rounded to the nearest second. Factors below one compress the
// arrival process and thereby increase the offered load without changing the
// outlook (area) of the jobs — the workload scaling used by the paper.
// The jobs themselves are copied, so the receiver is never aliased.
func (s *Set) Shrink(factor float64) *Set {
	out := &Set{
		Name:    fmt.Sprintf("%s/shrink=%.2f", s.Name, factor),
		Machine: s.Machine,
		Jobs:    make([]*Job, len(s.Jobs)),
	}
	for i, j := range s.Jobs {
		c := *j
		c.Submit = int64(float64(j.Submit)*factor + 0.5)
		out.Jobs[i] = &c
	}
	return out
}
