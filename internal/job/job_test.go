package job

import (
	"errors"
	"testing"
	"testing/quick"
)

func valid() *Job {
	return &Job{ID: 1, Submit: 10, Width: 4, Estimate: 100, Runtime: 60}
}

func TestAreas(t *testing.T) {
	j := valid()
	if got := j.Area(); got != 240 {
		t.Errorf("Area = %d, want 240", got)
	}
	if got := j.EstimatedArea(); got != 400 {
		t.Errorf("EstimatedArea = %d, want 400", got)
	}
	if got := j.EstimatedEnd(50); got != 150 {
		t.Errorf("EstimatedEnd(50) = %d, want 150", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(8); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	if err := valid().Validate(0); err != nil {
		t.Fatalf("maxWidth 0 must skip machine check: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Job)
		want   error
	}{
		{func(j *Job) { j.Submit = -1 }, ErrNegativeSubmit},
		{func(j *Job) { j.Width = 0 }, ErrNonPositiveSize},
		{func(j *Job) { j.Width = 9 }, ErrTooWide},
		{func(j *Job) { j.Estimate = 0 }, ErrBadEstimate},
		{func(j *Job) { j.Runtime = 0 }, ErrBadRuntime},
		{func(j *Job) { j.Runtime = j.Estimate + 1 }, ErrBadRuntime},
	}
	for _, c := range cases {
		j := valid()
		c.mutate(j)
		if err := j.Validate(8); !errors.Is(err, c.want) {
			t.Errorf("Validate(%+v) = %v, want %v", j, err, c.want)
		}
	}
}

func set() *Set {
	return &Set{
		Name:    "t",
		Machine: 8,
		Jobs: []*Job{
			{ID: 1, Submit: 0, Width: 2, Estimate: 10, Runtime: 5},
			{ID: 2, Submit: 0, Width: 2, Estimate: 10, Runtime: 10},
			{ID: 3, Submit: 7, Width: 8, Estimate: 20, Runtime: 20},
		},
	}
}

func TestSetValidate(t *testing.T) {
	if err := set().Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	s := set()
	s.Jobs[2].Submit = -5
	if err := s.Validate(); err == nil {
		t.Error("invalid job accepted")
	}
	s = set()
	s.Jobs[0], s.Jobs[2] = s.Jobs[2], s.Jobs[0]
	if err := s.Validate(); err == nil {
		t.Error("unsorted set accepted")
	}
	s = set()
	s.Machine = 0
	if err := s.Validate(); err == nil {
		t.Error("machine size 0 accepted")
	}
}

func TestSetValidateEqualSubmitNeedsIncreasingID(t *testing.T) {
	s := &Set{Name: "t", Machine: 8, Jobs: []*Job{
		{ID: 2, Submit: 0, Width: 1, Estimate: 1, Runtime: 1},
		{ID: 1, Submit: 0, Width: 1, Estimate: 1, Runtime: 1},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("equal submit with decreasing ID accepted")
	}
}

func TestTotalAreaAndSpan(t *testing.T) {
	s := set()
	if got := s.TotalArea(); got != 5*2+10*2+20*8 {
		t.Fatalf("TotalArea = %d", got)
	}
	first, last := s.Span()
	if first != 0 || last != 7 {
		t.Fatalf("Span = (%d,%d)", first, last)
	}
	var empty *Set
	if f, l := empty.Span(); f != 0 || l != 0 {
		t.Fatal("nil set span not zero")
	}
}

func TestShrinkScalesSubmits(t *testing.T) {
	s := set()
	half := s.Shrink(0.5)
	if half.Jobs[2].Submit != 4 { // round(7*0.5 + 0.5) = 4
		t.Fatalf("shrunk submit = %d, want 4", half.Jobs[2].Submit)
	}
	// Widths, estimates and runtimes (the job "outlook") are unchanged.
	for i := range s.Jobs {
		o, c := s.Jobs[i], half.Jobs[i]
		if o.Width != c.Width || o.Estimate != c.Estimate || o.Runtime != c.Runtime {
			t.Fatalf("Shrink changed job outlook at %d", i)
		}
	}
	// Deep copy: mutating the copy must not touch the original.
	half.Jobs[0].Width = 99
	if s.Jobs[0].Width == 99 {
		t.Fatal("Shrink aliases jobs")
	}
}

func TestShrinkIdentity(t *testing.T) {
	s := set()
	same := s.Shrink(1.0)
	for i := range s.Jobs {
		if same.Jobs[i].Submit != s.Jobs[i].Submit {
			t.Fatalf("Shrink(1.0) changed submit at %d", i)
		}
	}
}

func TestShrinkPropertyMonotone(t *testing.T) {
	// Shrinking preserves submission order and total area.
	if err := quick.Check(func(seeds []uint16, factor uint8) bool {
		f := 0.5 + float64(factor%50)/100 // 0.5 .. 0.99
		s := &Set{Name: "p", Machine: 1 << 20}
		var clock int64
		for i, v := range seeds {
			clock += int64(v)
			s.Jobs = append(s.Jobs, &Job{
				ID: ID(i + 1), Submit: clock, Width: 1,
				Estimate: int64(v) + 1, Runtime: int64(v)/2 + 1,
			})
		}
		sh := s.Shrink(f)
		if sh.TotalArea() != s.TotalArea() {
			return false
		}
		for i := 1; i < len(sh.Jobs); i++ {
			if sh.Jobs[i].Submit < sh.Jobs[i-1].Submit {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
