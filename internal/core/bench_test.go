package core

import (
	"testing"

	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// BenchmarkDeciders measures the pure decision step (negligible next to
// schedule construction, quantified here to prove it).
func BenchmarkDeciders(b *testing.B) {
	values := []float64{3.2, 2.9, 4.1}
	for _, d := range []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.SJF}} {
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Decide(policy.SJF, policy.Candidates, values)
			}
		})
	}
}

// BenchmarkSelfTuningStep measures one full self-tuning step (three
// what-if schedules plus decision) at several queue depths.
func BenchmarkSelfTuningStep(b *testing.B) {
	for _, queued := range []int{16, 128, 512} {
		b.Run(map[int]string{16: "queue16", 128: "queue128", 512: "queue512"}[queued], func(b *testing.B) {
			r := rng.New(5)
			waiting := make([]*job.Job, queued)
			for i := range waiting {
				est := int64(1 + r.Intn(20000))
				waiting[i] = &job.Job{
					ID: job.ID(i + 1), Submit: int64(r.Intn(1000)),
					Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
				}
			}
			st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Plan(1000, 128, nil, waiting)
			}
		})
	}
}
