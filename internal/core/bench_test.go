package core

import (
	"fmt"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// BenchmarkDeciders measures the pure decision step (negligible next to
// schedule construction, quantified here to prove it).
func BenchmarkDeciders(b *testing.B) {
	values := []float64{3.2, 2.9, 4.1}
	for _, d := range []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.SJF}} {
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Decide(policy.SJF, policy.Candidates, values)
			}
		})
	}
}

// BenchmarkSelfTunerPlan measures one full self-tuning step across
// waiting-queue depths, candidate-set sizes and worker counts. workers=1
// is the sequential baseline; the CI acceptance target is a >= 1.5x
// speedup at 4 workers on queues of 256+ jobs. Running jobs are present
// so the shared base profile carries real reservations.
func BenchmarkSelfTunerPlan(b *testing.B) {
	const capacity = 128
	candidateSets := []struct {
		name string
		set  []policy.Policy
	}{
		{"cand3", policy.Candidates},
		{"cand5", policy.All},
	}
	for _, queued := range []int{64, 256, 1024} {
		for _, cs := range candidateSets {
			for _, workers := range []int{1, 2, 4} {
				b.Run(fmt.Sprintf("queue%d/%s/workers%d", queued, cs.name, workers), func(b *testing.B) {
					r := rng.New(5)
					running := make([]plan.Running, 32)
					for i := range running {
						running[i] = plan.Running{
							Job: &job.Job{
								ID: job.ID(i + 1), Submit: 0,
								Width: 1 + r.Intn(4), Estimate: int64(1000 + r.Intn(20000)),
							},
							Start: 0,
						}
					}
					waiting := make([]*job.Job, queued)
					for i := range waiting {
						est := int64(1 + r.Intn(20000))
						waiting[i] = &job.Job{
							ID: job.ID(100 + i), Submit: int64(r.Intn(1000)),
							Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
						}
					}
					st := NewSelfTuner(cs.set, Advanced{}, MetricSLDwA)
					st.SetWorkers(workers)
					b.ResetTimer()
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						st.Plan(1000, capacity, running, waiting)
					}
				})
			}
		}
	}
}

// BenchmarkSelfTunerPlanIncremental measures the pooled + incremental-view
// planning path with the memoization deliberately defeated: every
// iteration removes one job and submits a replacement through the
// NoteSubmit/NoteRemove interface, as the scheduling engine does, so each
// Plan is a genuine rebuild over spliced views. This is the honest
// steady-state cost of one scheduling event; BenchmarkSelfTunerPlan's
// identical repeated calls now measure the memo hit instead.
func BenchmarkSelfTunerPlanIncremental(b *testing.B) {
	const capacity = 128
	for _, queued := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("queue%d", queued), func(b *testing.B) {
			r := rng.New(5)
			running := make([]plan.Running, 32)
			for i := range running {
				running[i] = plan.Running{
					Job: &job.Job{
						ID: job.ID(i + 1), Submit: 0,
						Width: 1 + r.Intn(4), Estimate: int64(1000 + r.Intn(20000)),
					},
					Start: 0,
				}
			}
			waiting := make([]*job.Job, queued)
			st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
			nextID := job.ID(100)
			for i := range waiting {
				est := int64(1 + r.Intn(20000))
				waiting[i] = &job.Job{
					ID: nextID, Submit: int64(r.Intn(1000)),
					Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
				}
				nextID++
				st.NoteSubmit(waiting[i])
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Churn one job so neither the memo nor the base profile
				// can short-circuit the rebuild.
				old := waiting[i%queued]
				st.NoteRemove(old)
				est := int64(1 + r.Intn(20000))
				repl := &job.Job{
					ID: nextID, Submit: int64(r.Intn(1000)),
					Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
				}
				nextID++
				waiting[i%queued] = repl
				st.NoteSubmit(repl)
				st.Plan(1000, capacity, running, waiting)
			}
		})
	}
}

// BenchmarkSelfTuningStep measures one full self-tuning step (three
// what-if schedules plus decision) at several queue depths.
func BenchmarkSelfTuningStep(b *testing.B) {
	for _, queued := range []int{16, 128, 512} {
		b.Run(map[int]string{16: "queue16", 128: "queue128", 512: "queue512"}[queued], func(b *testing.B) {
			r := rng.New(5)
			waiting := make([]*job.Job, queued)
			for i := range waiting {
				est := int64(1 + r.Intn(20000))
				waiting[i] = &job.Job{
					ID: job.ID(i + 1), Submit: int64(r.Intn(1000)),
					Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
				}
			}
			st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Plan(1000, 128, nil, waiting)
			}
		})
	}
}
