package core

import (
	"math"
	"strings"
	"testing"

	"dynp/internal/policy"
)

var candidates = []policy.Policy{policy.FCFS, policy.SJF, policy.LJF}

func decide(d Decider, old policy.Policy, f, s, l float64) policy.Policy {
	return d.Decide(old, candidates, []float64{f, s, l})
}

// valueTriples enumerates all order types of three values: every
// assignment of {1, 2, 3} (with repetition) to (FCFS, SJF, LJF) covers
// every possible <,=,> relation pattern.
func valueTriples() [][3]float64 {
	var out [][3]float64
	for f := 1; f <= 3; f++ {
		for s := 1; s <= 3; s++ {
			for l := 1; l <= 3; l++ {
				out = append(out, [3]float64{float64(f), float64(s), float64(l)})
			}
		}
	}
	return out
}

func TestSimpleMatchesReferenceExhaustively(t *testing.T) {
	d := Simple{}
	for _, v := range valueTriples() {
		for _, old := range candidates {
			got := decide(d, old, v[0], v[1], v[2])
			want := ReferenceSimple(v[0], v[1], v[2])
			if got != want {
				t.Fatalf("Simple(%v, old=%v) = %v, want %v", v, old, got, want)
			}
		}
	}
}

func TestAdvancedMatchesReferenceExhaustively(t *testing.T) {
	d := Advanced{}
	for _, v := range valueTriples() {
		for _, old := range candidates {
			got := decide(d, old, v[0], v[1], v[2])
			want := ReferenceCorrect(old, v[0], v[1], v[2])
			if got != want {
				t.Fatalf("Advanced(%v, old=%v) = %v, want %v", v, old, got, want)
			}
		}
	}
}

func TestPreferredMatchesReferenceExhaustively(t *testing.T) {
	for _, pref := range candidates {
		d := Preferred{Policy: pref}
		for _, v := range valueTriples() {
			for _, old := range candidates {
				got := decide(d, old, v[0], v[1], v[2])
				want := ReferencePreferred(pref, old, v[0], v[1], v[2])
				if got != want {
					t.Fatalf("Preferred(%v)(%v, old=%v) = %v, want %v",
						pref, v, old, got, want)
				}
			}
		}
	}
}

func TestSimpleIgnoresOldPolicy(t *testing.T) {
	d := Simple{}
	for _, v := range valueTriples() {
		first := decide(d, policy.FCFS, v[0], v[1], v[2])
		for _, old := range candidates[1:] {
			if got := decide(d, old, v[0], v[1], v[2]); got != first {
				t.Fatalf("Simple depends on old policy at %v", v)
			}
		}
	}
}

func TestAdvancedKeepsOldOnTies(t *testing.T) {
	d := Advanced{}
	for _, old := range candidates {
		if got := decide(d, old, 1, 1, 1); got != old {
			t.Errorf("all-equal: Advanced(old=%v) = %v, want old", old, got)
		}
	}
	// Case 6b of Table 1: FCFS = SJF < LJF, old = SJF -> stay with SJF.
	if got := decide(d, policy.SJF, 1, 1, 2); got != policy.SJF {
		t.Errorf("case 6b: got %v, want SJF", got)
	}
	// Case 8c: FCFS = LJF < SJF, old = LJF -> stay with LJF.
	if got := decide(d, policy.LJF, 1, 2, 1); got != policy.LJF {
		t.Errorf("case 8c: got %v, want LJF", got)
	}
	// Case 10c: SJF = LJF < FCFS, old = LJF -> stay with LJF.
	if got := decide(d, policy.LJF, 2, 1, 1); got != policy.LJF {
		t.Errorf("case 10c: got %v, want LJF", got)
	}
}

func TestAdvancedStrictMinimumAlwaysWins(t *testing.T) {
	d := Advanced{}
	for _, old := range candidates {
		if got := decide(d, old, 2, 1, 3); got != policy.SJF {
			t.Errorf("strict SJF min, old=%v: got %v", old, got)
		}
		if got := decide(d, old, 1, 2, 3); got != policy.FCFS {
			t.Errorf("strict FCFS min, old=%v: got %v", old, got)
		}
		if got := decide(d, old, 3, 2, 1); got != policy.LJF {
			t.Errorf("strict LJF min, old=%v: got %v", old, got)
		}
	}
}

func TestPreferredPaperSemantics(t *testing.T) {
	d := Preferred{Policy: policy.SJF}

	// Stays with SJF when merely equal to the best.
	if got := decide(d, policy.SJF, 1, 1, 2); got != policy.SJF {
		t.Errorf("SJF tied with FCFS while active: got %v, want SJF", got)
	}
	// Switches away only when another policy is strictly better.
	if got := decide(d, policy.SJF, 1, 2, 3); got != policy.FCFS {
		t.Errorf("FCFS strictly better: got %v, want FCFS", got)
	}
	// Switches back on equality: FCFS active, SJF ties FCFS.
	if got := decide(d, policy.FCFS, 1, 1, 2); got != policy.SJF {
		t.Errorf("equal performance must switch back to SJF: got %v", got)
	}
	// All equal: back to the preferred policy regardless of old.
	for _, old := range candidates {
		if got := decide(d, old, 1, 1, 1); got != policy.SJF {
			t.Errorf("all equal, old=%v: got %v, want SJF", old, got)
		}
	}
	// Preferred not minimal and old not minimal: best policy wins.
	if got := decide(d, policy.SJF, 3, 2, 1); got != policy.LJF {
		t.Errorf("LJF strict min: got %v, want LJF", got)
	}
	// Preferred not minimal but old is: old retained (fair fallback).
	if got := decide(d, policy.LJF, 1, 2, 1); got != policy.LJF {
		t.Errorf("old ties min without SJF: got %v, want LJF", got)
	}
}

func TestPreferredDiffersFromAdvancedExactlyOnPreferredTies(t *testing.T) {
	adv, pref := Advanced{}, Preferred{Policy: policy.SJF}
	for _, v := range valueTriples() {
		for _, old := range candidates {
			a := decide(adv, old, v[0], v[1], v[2])
			p := decide(pref, old, v[0], v[1], v[2])
			if a == p {
				continue
			}
			// They may only differ when SJF ties the minimum and the
			// advanced decider chose something else.
			min := v[0]
			if v[1] < min {
				min = v[1]
			}
			if v[2] < min {
				min = v[2]
			}
			if v[1] != min || p != policy.SJF {
				t.Fatalf("unexpected divergence at %v old=%v: adv=%v pref=%v",
					v, old, a, p)
			}
		}
	}
}

func TestToleranceTreatsNearEqualAsTie(t *testing.T) {
	d := Advanced{}
	// Values differing by less than the relative tolerance are ties.
	v := 100.0
	got := d.Decide(policy.LJF, candidates, []float64{v, v * (1 + 1e-12), v})
	if got != policy.LJF {
		t.Fatalf("near-tie not detected: got %v", got)
	}
}

func TestNewDecider(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"simple", "simple"},
		{"advanced", "advanced"},
		{"SJF-preferred", "SJF-preferred"},
		{"FCFS-preferred", "FCFS-preferred"},
		{"LJF-preferred", "LJF-preferred"},
	}
	for _, c := range cases {
		d, err := NewDecider(c.name)
		if err != nil {
			t.Errorf("NewDecider(%q): %v", c.name, err)
			continue
		}
		if d.Name() != c.want {
			t.Errorf("NewDecider(%q).Name() = %q", c.name, d.Name())
		}
	}
	for _, bad := range []string{
		"", "unknown", "XXX-preferred", "-preferred",
		// Regression: the former fmt.Sscanf parsing skipped leading
		// whitespace and stopped at the first space, accepting all of
		// these as SJF-preferred.
		"SJF-preferred junk",
		" SJF-preferred",
		"SJF-preferred\textra",
		"SJF-preferred ",
		"\nSJF-preferred",
		"simple ",
		" advanced",
	} {
		if _, err := NewDecider(bad); err == nil {
			t.Errorf("NewDecider(%q) accepted", bad)
		}
	}
}

func TestDecidersPanicOnEmptyCandidates(t *testing.T) {
	for _, d := range []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.SJF}} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic on empty candidates", d.Name())
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "no candidates") {
					t.Errorf("%s: empty-candidates panic %v does not say so", d.Name(), r)
				}
			}()
			d.Decide(policy.FCFS, nil, nil)
		}()
	}
}

// TestDecidersWithNonFiniteValues pins the deciders' behavior when a
// what-if score degenerates: NaN orders deterministically last (treated
// as +Inf), equal infinities tie, and no decider ever panics on a
// non-empty candidate set. Regression: a NaN used to poison minimal()'s
// minimum (every comparison false), returning an empty index set and
// panicking with the misleading "Decide with no candidates".
func TestDecidersWithNonFiniteValues(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name                    string
		values                  [3]float64 // FCFS, SJF, LJF
		old                     policy.Policy
		simple, advanced, sjfPr policy.Policy
	}{
		// A single NaN loses to any finite value.
		{"nan-first", [3]float64{nan, 1, 2}, policy.FCFS, policy.SJF, policy.SJF, policy.SJF},
		{"nan-middle", [3]float64{1, nan, 2}, policy.SJF, policy.FCFS, policy.FCFS, policy.FCFS},
		{"nan-last", [3]float64{2, 1, nan}, policy.LJF, policy.SJF, policy.SJF, policy.SJF},
		// All NaN: a three-way last-place tie; the usual tie rules apply.
		{"all-nan", [3]float64{nan, nan, nan}, policy.LJF, policy.FCFS, policy.LJF, policy.SJF},
		// NaN ties +Inf (both order last).
		{"nan-vs-inf", [3]float64{nan, inf, 1}, policy.FCFS, policy.LJF, policy.LJF, policy.LJF},
		{"nan-and-inf-only", [3]float64{nan, inf, inf}, policy.FCFS, policy.FCFS, policy.FCFS, policy.SJF},
		// Equal infinities tie instead of panicking (Inf-Inf is NaN, which
		// fails every tolerance test without the equality short-circuit).
		{"all-inf", [3]float64{inf, inf, inf}, policy.SJF, policy.FCFS, policy.SJF, policy.SJF},
		// -Inf is a legitimate strict minimum.
		{"neg-inf-wins", [3]float64{math.Inf(-1), 0, 1}, policy.SJF, policy.FCFS, policy.FCFS, policy.FCFS},
		{"neg-inf-tie", [3]float64{math.Inf(-1), math.Inf(-1), 0}, policy.SJF, policy.FCFS, policy.SJF, policy.SJF},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := c.values
			if got := decide(Simple{}, c.old, v[0], v[1], v[2]); got != c.simple {
				t.Errorf("Simple = %v, want %v", got, c.simple)
			}
			if got := decide(Advanced{}, c.old, v[0], v[1], v[2]); got != c.advanced {
				t.Errorf("Advanced = %v, want %v", got, c.advanced)
			}
			if got := decide(Preferred{Policy: policy.SJF}, c.old, v[0], v[1], v[2]); got != c.sjfPr {
				t.Errorf("SJF-preferred = %v, want %v", got, c.sjfPr)
			}
		})
	}
}
