package core

import (
	"reflect"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// TestIncrementalViewsMatchFallback drives two tuners through the same
// churning waiting queue — one hearing every NoteSubmit/NoteRemove, one
// hearing nothing (full re-sorts every step) — and requires byte-identical
// schedules, choices, traces and statistics.
func TestIncrementalViewsMatchFallback(t *testing.T) {
	const capacity = 32
	r := rng.New(11)
	for _, d := range []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.SJF}} {
		tracked := NewSelfTuner(nil, d, MetricSLDwA)
		plain := NewSelfTuner(nil, d, MetricSLDwA)
		tracked.EnableTrace()
		plain.EnableTrace()

		var waiting []*job.Job
		nextID := job.ID(1)
		now := int64(0)
		for step := 0; step < 40; step++ {
			now += int64(r.Intn(50))
			// Churn: a few submissions, a few departures.
			for k := r.Intn(4); k > 0; k-- {
				est := int64(1 + r.Intn(5000))
				j := &job.Job{ID: nextID, Submit: now - int64(r.Intn(20)),
					Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est}
				nextID++
				waiting = append(waiting, j)
				tracked.NoteSubmit(j)
			}
			for k := r.Intn(3); k > 0 && len(waiting) > 0; k-- {
				i := r.Intn(len(waiting))
				j := waiting[i]
				waiting = append(waiting[:i], waiting[i+1:]...)
				tracked.NoteRemove(j)
			}
			a := tracked.Plan(now, capacity, nil, waiting)
			b := plain.Plan(now, capacity, nil, waiting)
			if a.Policy != b.Policy || !reflect.DeepEqual(a.Entries, b.Entries) {
				t.Fatalf("%s step %d: tracked and plain schedules differ", d.Name(), step)
			}
		}
		if !reflect.DeepEqual(tracked.Trace(), plain.Trace()) {
			t.Fatalf("%s: traces differ", d.Name())
		}
		if !reflect.DeepEqual(tracked.Stats(), plain.Stats()) {
			t.Fatalf("%s: stats differ", d.Name())
		}
		// The fast path must actually have been live at the end.
		if tracked.orderedViews(waiting) == nil {
			t.Fatalf("%s: incremental views not authoritative after clean tracking", d.Name())
		}
		if plain.orderedViews(waiting) != nil {
			t.Fatalf("%s: untracked tuner claims authoritative views", d.Name())
		}
	}
}

// TestViewsFallBackOnPartialQueue covers the engine's capacity-failure
// path: Plan is handed a filtered subset of the tracked queue and must
// fall back to full sorts instead of planning with stale views.
func TestViewsFallBackOnPartialQueue(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	jobs := []*job.Job{mkJob(1, 0, 4, 100), mkJob(2, 0, 8, 50), mkJob(3, 0, 1, 10)}
	for _, j := range jobs {
		st.NoteSubmit(j)
	}
	subset := []*job.Job{jobs[0], jobs[2]} // job 2 withheld (too wide)
	if st.orderedViews(subset) != nil {
		t.Fatal("views claimed authority over a filtered queue")
	}
	sched := st.Plan(0, 4, nil, subset)
	want := plan.Build(0, 4, nil, subset, sched.Policy)
	if !reflect.DeepEqual(sched.Entries, want.Entries) {
		t.Fatalf("fallback schedule differs from direct build:\n%v\n%v", sched.Entries, want.Entries)
	}
}

func TestNoteRemoveUnknownIgnored(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.NoteRemove(mkJob(9, 0, 1, 10)) // before tracking starts: no-op
	a := mkJob(1, 0, 1, 10)
	st.NoteSubmit(a)
	st.NoteRemove(mkJob(2, 0, 1, 10)) // never submitted: no-op
	if got := st.orderedViews([]*job.Job{a}); got == nil {
		t.Fatal("stray NoteRemove disturbed the views")
	}
}

func TestNoteSubmitReplacesLiveID(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	a := mkJob(1, 0, 1, 10)
	st.NoteSubmit(a)
	b := mkJob(1, 5, 2, 20) // same ID, different object
	st.NoteSubmit(b)
	if st.orderedViews([]*job.Job{b}) == nil {
		t.Fatal("replacement job not tracked")
	}
	if st.orderedViews([]*job.Job{a}) != nil {
		t.Fatal("stale job still tracked after ID reuse")
	}
	for _, v := range st.views {
		if len(v) != 1 || v[0] != b {
			t.Fatalf("view holds %v, want just the replacement", v)
		}
	}
}

// TestMemoHitReusesSchedule pins the memoization fast path: when nothing
// observable changed between two events — same queue, same availability
// from the new instant on, no planned start overtaken — Plan returns the
// very same schedule object, advanced to the new Now, with statistics and
// trace moving exactly as a rebuild's would.
func TestMemoHitReusesSchedule(t *testing.T) {
	const capacity = 8
	// The machine is fully blocked until t=2000, so every planned start
	// is >= 2000 and instants 1000 and 1500 see identical futures.
	running := []plan.Running{{Job: mkJob(1, 0, capacity, 2000), Start: 0}}
	waiting := []*job.Job{mkJob(10, 900, 2, 300), mkJob(11, 950, 4, 100), mkJob(12, 980, 1, 700)}

	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.EnableTrace()
	first := st.Plan(1000, capacity, running, waiting)
	second := st.Plan(1500, capacity, running, waiting)
	if first != second {
		t.Fatal("memoizable event rebuilt: different schedule object returned")
	}
	if second.Now != 1500 {
		t.Fatalf("memo hit left Now at %d, want 1500", second.Now)
	}

	// A rebuild at 1500 must agree entry for entry and value for value.
	control := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	control.EnableTrace()
	control.Plan(1000, capacity, running, waiting)
	control.prevValid = false // force the rebuild path
	rebuilt := control.Plan(1500, capacity, running, waiting)
	if first == rebuilt {
		t.Fatal("control did not rebuild")
	}
	if !reflect.DeepEqual(second.Entries, rebuilt.Entries) || second.Policy != rebuilt.Policy {
		t.Fatal("memoized schedule differs from rebuild")
	}
	if !reflect.DeepEqual(st.Trace(), control.Trace()) {
		t.Fatalf("memo trace %v differs from rebuild trace %v", st.Trace(), control.Trace())
	}
	if !reflect.DeepEqual(st.Stats(), control.Stats()) {
		t.Fatalf("memo stats %+v differ from rebuild stats %+v", st.Stats(), control.Stats())
	}
}

// TestMemoMissOnChange enumerates the invalidation conditions: any
// observable change must force a rebuild that reflects it.
func TestMemoMissOnChange(t *testing.T) {
	const capacity = 8
	running := []plan.Running{{Job: mkJob(1, 0, capacity, 2000), Start: 0}}
	waiting := []*job.Job{mkJob(10, 900, 2, 300), mkJob(11, 950, 4, 100)}

	t.Run("queue-grew", func(t *testing.T) {
		st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
		first := st.Plan(1000, capacity, running, waiting)
		grown := append(append([]*job.Job(nil), waiting...), mkJob(12, 1100, 1, 50))
		second := st.Plan(1500, capacity, running, grown)
		if first == second {
			t.Fatal("queue growth did not invalidate the memo")
		}
		if len(second.Entries) != 3 {
			t.Fatalf("rebuild has %d entries, want 3", len(second.Entries))
		}
	})
	t.Run("availability-changed", func(t *testing.T) {
		st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
		st.Plan(1000, capacity, running, waiting)
		// The running job vanished early: the machine is free from 1500.
		second := st.Plan(1500, capacity, nil, waiting)
		for _, e := range second.Entries {
			if e.Start >= 2000 {
				t.Fatalf("entry %v still waits for the departed job", e)
			}
		}
	})
	t.Run("start-overtaken", func(t *testing.T) {
		// A planned start at 2000 is in the past of an event at 2500: the
		// retained plan is unusable even though the queue is unchanged.
		st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
		first := st.Plan(1000, capacity, running, waiting)
		second := st.Plan(2500, capacity, nil, waiting)
		if first == second {
			t.Fatal("overtaken start did not invalidate the memo")
		}
		for _, e := range second.Entries {
			if e.Start < 2500 {
				t.Fatalf("rebuilt entry %v starts before now", e)
			}
		}
	})
	t.Run("capacity-changed", func(t *testing.T) {
		st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
		first := st.Plan(1000, capacity, running, waiting)
		second := st.Plan(1500, capacity-4, nil, waiting)
		if first == second {
			t.Fatal("capacity change did not invalidate the memo")
		}
	})
}
