package core

import (
	"fmt"

	"dynp/internal/plan"
)

// Metric selects the performance measure used to score the what-if
// schedules of a self-tuning step. All metrics are oriented so that lower
// values are better; utilization-style measures are therefore expressed
// through the planned makespan (a shorter plan packs the same work more
// densely, i.e. achieves a higher utilization).
type Metric int

// The decision metrics. MetricSLDwA is the paper's choice.
const (
	MetricSLDwA    Metric = iota // planned slowdown weighted by job area
	MetricART                    // planned average response time
	MetricARTwW                  // planned average response time weighted by width
	MetricAWT                    // planned average waiting time
	MetricMakespan               // planned makespan (utilization proxy)
	numMetrics
)

var metricNames = [numMetrics]string{"SLDwA", "ART", "ARTwW", "AWT", "makespan"}

// String returns the metric's table name.
func (m Metric) String() string {
	if m < 0 || m >= numMetrics {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// ParseMetric converts a table name such as "SLDwA" into a Metric.
func ParseMetric(s string) (Metric, error) {
	for i, n := range metricNames {
		if n == s {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown metric %q", s)
}

// Score evaluates a planned schedule. Lower is better for every metric.
func (m Metric) Score(s *plan.Schedule) float64 {
	switch m {
	case MetricSLDwA:
		return s.PlannedSLDwA()
	case MetricART:
		return s.PlannedART()
	case MetricARTwW:
		return s.PlannedARTwW()
	case MetricAWT:
		return s.PlannedAWT()
	case MetricMakespan:
		return s.PlannedMakespan()
	default:
		panic(fmt.Sprintf("core: Score on invalid metric %d", int(m)))
	}
}
