// Package core implements the paper's contribution: the self-tuning dynP
// scheduling step and its decider mechanisms. At every scheduling event the
// self-tuner builds one full what-if schedule per candidate policy, scores
// each schedule with a performance metric (lower is better), and asks a
// Decider which policy to activate.
//
// Three deciders are provided:
//
//   - Simple: the minimum-value policy with a fixed FCFS > SJF > LJF
//     tie-break. Table 1 of the paper shows it decides wrongly whenever
//     ties involve the currently active policy (cases 1, 6b, 8c, 10c).
//   - Advanced (fair): the "correct decision" column of Table 1 — on ties
//     the old policy wins if it is among the minima.
//   - Preferred (unfair, the paper's new mechanism): a designated policy is
//     kept unless another policy is strictly better, and is switched back
//     to as soon as it is merely equal to the active one.
package core

import (
	"math"

	"dynp/internal/policy"
)

// Tolerance is the relative tolerance under which two schedule scores are
// considered equal. Identical schedules produce bit-identical floats, but
// distinct orderings can reach equal plans through different float
// summation orders, so a small relative band is used.
const Tolerance = 1e-9

// approxEqual reports whether two scores are equal within Tolerance.
// Non-finite values need explicit handling, and both branches are
// byte-neutral for the finite scores real schedules produce: equal
// infinities compare equal (their difference is NaN, which fails every
// tolerance test), while an infinity never ties anything else (the
// relative band Tolerance*Inf would otherwise swallow every finite
// value).
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	return math.Abs(a-b) <= Tolerance*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// Decider chooses the next active policy from per-policy schedule scores.
type Decider interface {
	// Name returns a short identifier used in result tables.
	Name() string
	// Decide returns the policy to activate. candidates and values are
	// parallel slices ordered by the canonical candidate order (FCFS,
	// SJF, LJF for the paper's configuration); lower values are better;
	// old is the currently active policy.
	Decide(old policy.Policy, candidates []policy.Policy, values []float64) policy.Policy
}

// minimal returns the indices of all candidates whose value ties the
// minimum within Tolerance. NaN scores order deterministically last
// (treated as +Inf): a NaN compares false to everything, so without the
// normalisation a single NaN as values[0] would poison the minimum and
// minimal would return an empty set for a non-empty input, making the
// deciders report "no candidates" for a scoring problem.
func minimal(values []float64) []int {
	if len(values) == 0 {
		return nil
	}
	norm := func(v float64) float64 {
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	min := norm(values[0])
	for _, v := range values[1:] {
		if norm(v) < min {
			min = norm(v)
		}
	}
	var idx []int
	for i, v := range values {
		if approxEqual(norm(v), min) {
			idx = append(idx, i)
		}
	}
	return idx
}

// mustMinimal wraps minimal for the deciders' precondition checks,
// distinguishing an empty candidate set from values the decider cannot
// order (impossible after NaN normalisation, kept as a backstop).
func mustMinimal(who string, values []float64) []int {
	if len(values) == 0 {
		panic("core: " + who + ".Decide with no candidates")
	}
	mins := minimal(values)
	if len(mins) == 0 {
		panic("core: " + who + ".Decide with unorderable values")
	}
	return mins
}

// Simple is the three-if-then-else decider of [21]: it returns the policy
// with the minimum value and resolves ties by candidate order, ignoring
// the active policy entirely.
type Simple struct{}

// Name implements Decider.
func (Simple) Name() string { return "simple" }

// Decide implements Decider.
func (Simple) Decide(_ policy.Policy, candidates []policy.Policy, values []float64) policy.Policy {
	mins := mustMinimal("Simple", values)
	return candidates[mins[0]]
}

// Advanced is the fair decider: the unique minimum wins; on ties the old
// policy is kept when it is among the minima, otherwise the first minimal
// candidate in canonical order is chosen. This reproduces the "correct
// decision" column of Table 1 exactly.
type Advanced struct{}

// Name implements Decider.
func (Advanced) Name() string { return "advanced" }

// Decide implements Decider.
func (Advanced) Decide(old policy.Policy, candidates []policy.Policy, values []float64) policy.Policy {
	mins := mustMinimal("Advanced", values)
	for _, i := range mins {
		if candidates[i] == old {
			return old
		}
	}
	return candidates[mins[0]]
}

// Preferred is the paper's unfair decider. The preferred policy stays
// active unless another policy is strictly better; when a non-preferred
// policy is active, equal performance already suffices to switch back to
// the preferred one. When neither the preferred nor the old policy ties
// the minimum, the first minimal candidate in canonical order is chosen.
type Preferred struct {
	Policy policy.Policy // the preferred policy, SJF in the paper's evaluation
}

// Name implements Decider.
func (p Preferred) Name() string { return p.Policy.Name() + "-preferred" }

// Decide implements Decider.
func (p Preferred) Decide(old policy.Policy, candidates []policy.Policy, values []float64) policy.Policy {
	mins := mustMinimal("Preferred", values)
	for _, i := range mins {
		if candidates[i] == p.Policy {
			return p.Policy
		}
	}
	for _, i := range mins {
		if candidates[i] == old {
			return old
		}
	}
	return candidates[mins[0]]
}
