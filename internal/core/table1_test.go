package core

import (
	"testing"

	"dynp/internal/policy"
)

// TestTable1Reproduction checks every row of the paper's Table 1 against
// the Decider implementations: the simple column against Simple, the
// correct column against Advanced.
func TestTable1Reproduction(t *testing.T) {
	for _, row := range Table1() {
		olds := candidates
		if row.OldSpecific {
			olds = []policy.Policy{row.Old}
		}
		for _, old := range olds {
			gotSimple := Simple{}.Decide(old, candidates, []float64{row.F, row.S, row.L})
			if gotSimple != row.Simple {
				t.Errorf("case %s: simple decider = %v, want %v", row.Case, gotSimple, row.Simple)
			}
			gotCorrect := Advanced{}.Decide(old, candidates, []float64{row.F, row.S, row.L})
			wantCorrect := row.Correct
			if row.CorrectIsOld {
				wantCorrect = old
			}
			if gotCorrect != wantCorrect {
				t.Errorf("case %s (old=%v): advanced decider = %v, want %v",
					row.Case, old, gotCorrect, wantCorrect)
			}
		}
	}
}

// TestTable1WrongCases verifies the paper's claim that the simple decider
// makes a wrong decision in exactly four cases: 1, 6b, 8c and 10c, with
// FCFS favoured in three of them and SJF in one.
func TestTable1WrongCases(t *testing.T) {
	wrong := map[string]bool{}
	favoured := map[policy.Policy]int{}
	for _, row := range Table1() {
		if row.Wrong {
			wrong[row.Case] = true
			favoured[row.Simple]++
		}
	}
	want := []string{"1", "6b", "8c", "10c"}
	if len(wrong) != len(want) {
		t.Fatalf("wrong cases = %v, want %v", wrong, want)
	}
	for _, c := range want {
		if !wrong[c] {
			t.Errorf("case %s not marked wrong", c)
		}
	}
	if favoured[policy.FCFS] != 3 || favoured[policy.SJF] != 1 {
		t.Errorf("favoured = %v, want FCFS:3 SJF:1", favoured)
	}
}

// TestTable1RowsConsistent checks that each row's representative value
// triple actually satisfies the relation its combination describes, by
// confirming the Wrong flag equals (simple != correct).
func TestTable1RowsConsistent(t *testing.T) {
	for _, row := range Table1() {
		olds := candidates
		if row.OldSpecific {
			olds = []policy.Policy{row.Old}
		}
		anyWrong := false
		for _, old := range olds {
			want := row.Correct
			if row.CorrectIsOld {
				want = old
			}
			if ReferenceSimple(row.F, row.S, row.L) != want {
				anyWrong = true
			}
		}
		if anyWrong != row.Wrong {
			t.Errorf("case %s: computed wrongness %v, table says %v",
				row.Case, anyWrong, row.Wrong)
		}
	}
}
