package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// Decision records one self-tuning step for auditing and the
// policy-usage statistics reported by the experiment harness.
type Decision struct {
	Time   int64
	Old    policy.Policy
	Chosen policy.Policy
	Values []float64 // scores in candidate order
}

// Stats aggregates the decisions of one simulation run.
type Stats struct {
	Steps    int                   // self-tuning steps performed
	Switches int                   // steps that changed the active policy
	Chosen   map[policy.Policy]int // how often each policy was chosen
}

// SelfTuner is the self-tuning dynP scheduler core. At every scheduling
// event, Plan builds a full what-if schedule per candidate policy, scores
// them with Metric and lets Decider pick the policy whose schedule is
// executed. The zero value is not usable; construct with NewSelfTuner.
type SelfTuner struct {
	candidates []policy.Policy
	decider    Decider
	metric     Metric
	active     policy.Policy
	stats      Stats
	trace      []Decision // populated only when Trace is enabled
	traceOn    bool
	last       Decision // most recent decision, kept regardless of tracing
	hasLast    bool
	workers    int // bound on concurrent candidate builds; <= 1 = sequential
}

// NewSelfTuner returns a self-tuner over the given candidate policies
// (the paper's set policy.Candidates when nil), starting with the first
// candidate as the active policy.
func NewSelfTuner(candidates []policy.Policy, d Decider, m Metric) *SelfTuner {
	if len(candidates) == 0 {
		candidates = policy.Candidates
	}
	if d == nil {
		panic("core: NewSelfTuner with nil decider")
	}
	cs := append([]policy.Policy(nil), candidates...)
	return &SelfTuner{
		candidates: cs,
		decider:    d,
		metric:     m,
		active:     cs[0],
		stats:      Stats{Chosen: make(map[policy.Policy]int)},
		workers:    1,
	}
}

// SetWorkers bounds the number of goroutines Plan uses to build and score
// the candidate what-if schedules of one self-tuning step. n == 1 (the
// default) keeps planning on the caller's goroutine; n <= 0 selects
// runtime.GOMAXPROCS(0). The effective bound never exceeds the candidate
// count or GOMAXPROCS. Schedules, scores, decisions and statistics are
// identical for every worker count: each candidate writes into its fixed
// slot and the decider always sees the values in canonical candidate
// order, so its tie-breaks are unchanged.
func (t *SelfTuner) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	t.workers = n
}

// Workers returns the configured worker bound (see SetWorkers).
func (t *SelfTuner) Workers() int {
	if t.workers < 1 {
		return 1
	}
	return t.workers
}

// SetActive overrides the active policy, e.g. to start an experiment from
// a defined policy. It panics when p is not a candidate.
func (t *SelfTuner) SetActive(p policy.Policy) {
	for _, c := range t.candidates {
		if c == p {
			t.active = p
			return
		}
	}
	panic(fmt.Sprintf("core: SetActive(%v) is not a candidate", p))
}

// Active returns the currently active policy.
func (t *SelfTuner) Active() policy.Policy { return t.active }

// Candidates returns the candidate policies in canonical order.
func (t *SelfTuner) Candidates() []policy.Policy {
	return append([]policy.Policy(nil), t.candidates...)
}

// EnableTrace makes Plan record every Decision; retrieve them with Trace.
func (t *SelfTuner) EnableTrace() { t.traceOn = true }

// Trace returns the recorded decisions (nil unless EnableTrace was called).
func (t *SelfTuner) Trace() []Decision { return t.trace }

// LastDecision returns the most recent self-tuning decision and whether
// one has been made. Unlike Trace it is always available.
func (t *SelfTuner) LastDecision() (Decision, bool) { return t.last, t.hasLast }

// LastDecisionCase classifies the most recent decision as one of the
// paper's Table-1 cases (see CaseOf). It returns "" before the first
// decision or when the candidate set is not the paper's FCFS/SJF/LJF
// triple, whose value patterns the table enumerates.
func (t *SelfTuner) LastDecisionCase() string {
	if !t.hasLast || len(t.last.Values) != 3 {
		return ""
	}
	if t.candidates[0] != policy.FCFS || t.candidates[1] != policy.SJF || t.candidates[2] != policy.LJF {
		return ""
	}
	return CaseOf(t.last.Old, t.last.Values[0], t.last.Values[1], t.last.Values[2])
}

// Stats returns the aggregated decision statistics so far.
func (t *SelfTuner) Stats() Stats {
	s := t.stats
	s.Chosen = make(map[policy.Policy]int, len(t.stats.Chosen))
	for k, v := range t.stats.Chosen {
		s.Chosen[k] = v
	}
	return s
}

// Plan performs one self-tuning dynP step: build a what-if schedule per
// candidate policy, score each, decide, and return the schedule of the
// chosen policy (reused, not rebuilt). The chosen policy becomes active.
//
// The running-job availability profile is built once and shared by all
// candidate builds; with SetWorkers(n > 1) the builds and scoring fan out
// over a bounded worker pool. Plan panics — before touching any tuner
// state — when the decider returns a policy outside the candidate set.
func (t *SelfTuner) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	schedules := make([]*plan.Schedule, len(t.candidates))
	values := make([]float64, len(t.candidates))
	base := plan.BuildBase(now, capacity, running)

	workers := t.Workers()
	if workers > len(t.candidates) {
		workers = len(t.candidates)
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(t.candidates) {
						return
					}
					schedules[i] = plan.BuildFrom(base, waiting, t.candidates[i])
					values[i] = t.metric.Score(schedules[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i, p := range t.candidates {
			schedules[i] = plan.BuildFrom(base, waiting, p)
			values[i] = t.metric.Score(schedules[i])
		}
	}
	chosen := t.decider.Decide(t.active, t.candidates, values)

	// Validate the decider's choice before mutating stats, trace or the
	// active policy, so a buggy custom decider (see examples/customdecider)
	// cannot leave the tuner with half-updated state.
	chosenIdx := -1
	for i, p := range t.candidates {
		if p == chosen {
			chosenIdx = i
			break
		}
	}
	if chosenIdx < 0 {
		panic(fmt.Sprintf("core: decider %s returned non-candidate %v", t.decider.Name(), chosen))
	}

	t.stats.Steps++
	t.stats.Chosen[chosen]++
	if chosen != t.active {
		t.stats.Switches++
	}
	// values is built fresh every step and escapes only here, so the
	// last decision can retain it without a copy.
	t.last = Decision{Time: now, Old: t.active, Chosen: chosen, Values: values}
	t.hasLast = true
	if t.traceOn {
		t.trace = append(t.trace, Decision{
			Time: now, Old: t.active, Chosen: chosen,
			Values: append([]float64(nil), values...),
		})
	}
	t.active = chosen
	return schedules[chosenIdx]
}
