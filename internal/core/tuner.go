package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// Decision records one self-tuning step for auditing and the
// policy-usage statistics reported by the experiment harness.
type Decision struct {
	Time   int64
	Old    policy.Policy
	Chosen policy.Policy
	Values []float64 // scores in candidate order
}

// Stats aggregates the decisions of one simulation run. Chosen is keyed
// by policy name (not policy value) so the counts serialize stably and
// survive registry changes across a checkpoint restart.
type Stats struct {
	Steps    int            // self-tuning steps performed
	Switches int            // steps that changed the active policy
	Chosen   map[string]int // how often each policy was chosen, by Name
}

// SelfTuner is the self-tuning dynP scheduler core. At every scheduling
// event, Plan builds a full what-if schedule per candidate policy, scores
// them with Metric and lets Decider pick the policy whose schedule is
// executed. The zero value is not usable; construct with NewSelfTuner.
//
// Two allocation-lean fast paths engage automatically and never change a
// single byte of the schedules, decisions, statistics or traces:
//
//   - Incremental policy orders. A front end that reports every waiting
//     queue change through NoteSubmit/NoteRemove (the scheduling engine
//     does, via engine.QueueTracker) keeps one sorted view per candidate
//     policy spliced up to date, so Plan skips the per-candidate
//     O(n log n) re-sort. Every policy's order is total (submission time
//     and job ID break all ties), so a spliced view is byte-identical to
//     policy.Order's stable sort. Plan verifies the views cover exactly
//     the waiting slice it was handed and silently falls back to full
//     sorts when they do not (e.g. when the engine withholds unplaceable
//     jobs during a capacity failure).
//
//   - Plan memoization. When an event provably cannot change the what-if
//     schedules — the waiting queue is the same, the availability profile
//     promises the same processors from the new instant on (a completion
//     exactly at its estimate), and every retained planned start is still
//     in the future — Plan reuses the previous candidate schedules,
//     re-scores them from their fused aggregates and re-runs the decider,
//     instead of rebuilding. Statistics and traces advance exactly as a
//     rebuild would.
type SelfTuner struct {
	candidates []policy.Policy
	decider    Decider
	metric     Metric
	active     policy.Policy
	stats      Stats
	trace      []Decision // populated only when Trace is enabled
	traceOn    bool
	last       Decision // most recent decision, kept regardless of tracing
	hasLast    bool
	workers    int // bound on concurrent candidate builds; <= 1 = sequential

	// Incrementally maintained per-policy orders of the waiting queue,
	// active once the front end starts calling NoteSubmit/NoteRemove.
	tracking bool
	tracked  map[job.ID]*job.Job
	views    [][]*job.Job // parallel to candidates, each in its policy's order

	// Memoization of the previous event's planning step. prevChosen is
	// also the schedule handed to the caller, so the tuner never recycles
	// its storage; the losing candidates never escape and are released
	// back to the plan pools every step.
	schedBuf      []*plan.Schedule // reused result slots of one step
	prevValid     bool
	prevNow       int64
	prevCap       int
	prevBase      *plan.Base // retained for availability comparison; pooled
	prevWaiting   []*job.Job // reused snapshot of the planned waiting slice
	prevChosen    *plan.Schedule
	prevChosenIdx int
	prevValues    []float64
	prevMaxEnds   []int64 // per-candidate MaxEstimatedEnd, for re-scoring makespan
	prevMinStart  int64   // min planned start over all candidates' entries

	// Speculative cross-event planning (see speculate.go). specCh is
	// non-nil exactly while one speculative build is in flight.
	specOn    bool
	specCh    chan *specResult
	specStats SpecStats
}

// NewSelfTuner returns a self-tuner over the given candidate policies
// (the paper's set policy.Candidates when nil), starting with the first
// candidate as the active policy.
func NewSelfTuner(candidates []policy.Policy, d Decider, m Metric) *SelfTuner {
	if len(candidates) == 0 {
		candidates = policy.Candidates
	}
	if d == nil {
		panic("core: NewSelfTuner with nil decider")
	}
	cs := append([]policy.Policy(nil), candidates...)
	return &SelfTuner{
		candidates: cs,
		decider:    d,
		metric:     m,
		active:     cs[0],
		stats:      Stats{Chosen: make(map[string]int)},
		workers:    1,
	}
}

// SetWorkers bounds the number of goroutines Plan uses to build and score
// the candidate what-if schedules of one self-tuning step. n == 1 (the
// default) keeps planning on the caller's goroutine; n <= 0 selects
// runtime.GOMAXPROCS(0). The effective bound never exceeds the candidate
// count or GOMAXPROCS. Schedules, scores, decisions and statistics are
// identical for every worker count: each candidate writes into its fixed
// slot and the decider always sees the values in canonical candidate
// order, so its tie-breaks are unchanged.
func (t *SelfTuner) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	t.workers = n
}

// Workers returns the configured worker bound (see SetWorkers).
func (t *SelfTuner) Workers() int {
	if t.workers < 1 {
		return 1
	}
	return t.workers
}

// SetActive overrides the active policy, e.g. to start an experiment from
// a defined policy. It panics when p is not a candidate.
func (t *SelfTuner) SetActive(p policy.Policy) {
	for _, c := range t.candidates {
		if c == p {
			t.active = p
			return
		}
	}
	panic(fmt.Sprintf("core: SetActive(%v) is not a candidate", p))
}

// Active returns the currently active policy.
func (t *SelfTuner) Active() policy.Policy { return t.active }

// Decider returns the tuner's decider mechanism, letting callers
// discover optional capabilities (StatefulDecider, observers) on it.
func (t *SelfTuner) Decider() Decider { return t.decider }

// Candidates returns the candidate policies in canonical order.
func (t *SelfTuner) Candidates() []policy.Policy {
	return append([]policy.Policy(nil), t.candidates...)
}

// EnableTrace makes Plan record every Decision; retrieve them with Trace.
func (t *SelfTuner) EnableTrace() { t.traceOn = true }

// Trace returns the recorded decisions (nil unless EnableTrace was called).
func (t *SelfTuner) Trace() []Decision { return t.trace }

// LastDecision returns the most recent self-tuning decision and whether
// one has been made. Unlike Trace it is always available.
func (t *SelfTuner) LastDecision() (Decision, bool) { return t.last, t.hasLast }

// LastDecisionCase classifies the most recent decision as one of the
// paper's Table-1 cases (see CaseOf). It returns "" before the first
// decision or when the candidate set is not the paper's FCFS/SJF/LJF
// triple, whose value patterns the table enumerates.
func (t *SelfTuner) LastDecisionCase() string {
	if !t.hasLast || len(t.last.Values) != 3 {
		return ""
	}
	if t.candidates[0] != policy.FCFS || t.candidates[1] != policy.SJF || t.candidates[2] != policy.LJF {
		return ""
	}
	return CaseOf(t.last.Old, t.last.Values[0], t.last.Values[1], t.last.Values[2])
}

// Stats returns the aggregated decision statistics so far.
func (t *SelfTuner) Stats() Stats {
	s := t.stats
	s.Chosen = make(map[string]int, len(t.stats.Chosen))
	for k, v := range t.stats.Chosen {
		s.Chosen[k] = v
	}
	return s
}

// NoteSubmit tells the tuner a job entered the waiting queue. The first
// call enables the incremental policy-order views; from then on every
// queue change must be reported (NoteRemove on start or cancel) for the
// views to stay authoritative — Plan cross-checks them against the
// waiting slice it is handed and falls back to full sorts on any
// mismatch, so a missed notification costs speed, never correctness.
func (t *SelfTuner) NoteSubmit(j *job.Job) {
	if t.tracked == nil {
		t.tracked = make(map[job.ID]*job.Job)
		t.views = make([][]*job.Job, len(t.candidates))
	}
	t.tracking = true
	if old, ok := t.tracked[j.ID]; ok {
		// Re-submission of a live ID: replace the stale entry so the
		// views never hold two jobs with one ID.
		t.NoteRemove(old)
	}
	t.tracked[j.ID] = j
	for i, p := range t.candidates {
		v := t.views[i]
		k := sort.Search(len(v), func(m int) bool { return p.Less(j, v[m]) })
		v = append(v, nil)
		copy(v[k+1:], v[k:])
		v[k] = j
		t.views[i] = v
	}
}

// NoteRemove tells the tuner a job left the waiting queue (it started,
// finished or was cancelled). Unknown jobs are ignored.
func (t *SelfTuner) NoteRemove(j *job.Job) {
	if !t.tracking || t.tracked[j.ID] != j {
		return
	}
	delete(t.tracked, j.ID)
	for i, p := range t.candidates {
		v := t.views[i]
		// The policy orders are total, so the leftmost element not less
		// than j is j itself.
		k := sort.Search(len(v), func(m int) bool { return !p.Less(v[m], j) })
		if k >= len(v) || v[k] != j {
			panic(fmt.Sprintf("core: job %d not at its ordered position in the %v view", j.ID, p))
		}
		t.views[i] = append(v[:k], v[k+1:]...)
	}
}

// orderedViews returns the per-candidate orders of waiting when the
// incremental views cover exactly that slice, or nil to request the full
// sort fallback.
func (t *SelfTuner) orderedViews(waiting []*job.Job) [][]*job.Job {
	if !t.tracking || len(t.tracked) != len(waiting) {
		return nil
	}
	for _, j := range waiting {
		if t.tracked[j.ID] != j {
			return nil
		}
	}
	return t.views
}

// Plan performs one self-tuning dynP step: build a what-if schedule per
// candidate policy, score each, decide, and return the schedule of the
// chosen policy (reused, not rebuilt). The chosen policy becomes active.
//
// The running-job availability profile is built once and shared by all
// candidate builds; with SetWorkers(n > 1) the builds and scoring fan out
// over a bounded worker pool. Plan panics — before touching any tuner
// state — when the decider returns a policy outside the candidate set.
//
// Ownership: the returned schedule belongs to the caller and is never
// recycled by the tuner; its entries stay valid indefinitely. All other
// planning storage (candidate profiles, losing schedules, base profiles)
// cycles through the plan package's pools.
func (t *SelfTuner) Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule {
	base := plan.BuildBasePooled(now, capacity, running)

	// A verified speculative build (see speculate.go) short-circuits the
	// whole step; tryMemo only runs when no speculation matched, so the
	// two fast paths never double-consume an event.
	if s := t.trySpec(now, capacity, base, waiting); s != nil {
		return s
	}
	if s := t.tryMemo(now, capacity, base, waiting); s != nil {
		return s
	}

	// Full rebuild: the previous event's base is no longer needed.
	if t.prevBase != nil {
		t.prevBase.Release()
		t.prevBase = nil
	}
	t.prevValid = false

	n := len(t.candidates)
	if cap(t.schedBuf) < n {
		t.schedBuf = make([]*plan.Schedule, n)
	}
	schedules := t.schedBuf[:n]
	values := make([]float64, n)
	buildCandidates(t.candidates, t.metric, base, waiting, t.orderedViews(waiting),
		t.Workers(), schedules, values)
	chosen := t.decider.Decide(t.active, t.candidates, values)

	// Validate the decider's choice before mutating stats, trace or the
	// active policy, so a buggy custom decider (see examples/customdecider)
	// cannot leave the tuner with half-updated state.
	chosenIdx := -1
	for i, p := range t.candidates {
		if p == chosen {
			chosenIdx = i
			break
		}
	}
	if chosenIdx < 0 {
		panic(fmt.Sprintf("core: decider %s returned non-candidate %v", t.decider.Name(), chosen))
	}

	t.commit(now, chosen, values)
	t.saveMemo(now, capacity, base, waiting, schedules, chosenIdx, values)
	return schedules[chosenIdx]
}

// buildCandidates fills schedules and values (parallel to candidates)
// with one pooled what-if schedule and fused metric score per candidate,
// all derived from the shared base. ordered, when non-nil, supplies each
// candidate's pre-ordered waiting view (the incremental splice path);
// otherwise every build sorts waiting itself — byte-identical output
// either way, because the policy orders are total. workers bounds the
// fan-out; each candidate writes only its fixed slot, so the results are
// identical at any worker count. It is the one build loop shared by the
// rebuild path of Plan and the speculative worker (Speculate), which is
// what makes a verified speculation byte-for-byte a rebuild.
func buildCandidates(candidates []policy.Policy, metric Metric, base *plan.Base,
	waiting []*job.Job, ordered [][]*job.Job, workers int,
	schedules []*plan.Schedule, values []float64) {
	build := func(i int) {
		if ordered != nil {
			schedules[i] = plan.BuildFromOrdered(base, ordered[i], candidates[i])
		} else {
			schedules[i] = plan.BuildFromPooled(base, waiting, candidates[i])
		}
		values[i] = metric.Score(schedules[i])
	}
	n := len(candidates)
	if workers > n {
		workers = n
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					build(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			build(i)
		}
	}
}

// commit applies one decision to the tuner's statistics, trace and active
// policy. values must be a fresh slice (it is retained by LastDecision).
func (t *SelfTuner) commit(now int64, chosen policy.Policy, values []float64) {
	t.stats.Steps++
	t.stats.Chosen[chosen.Name()]++
	if chosen != t.active {
		t.stats.Switches++
	}
	// values is built fresh every step and escapes only here, so the
	// last decision can retain it without a copy.
	t.last = Decision{Time: now, Old: t.active, Chosen: chosen, Values: values}
	t.hasLast = true
	if t.traceOn {
		t.trace = append(t.trace, Decision{
			Time: now, Old: t.active, Chosen: chosen,
			Values: append([]float64(nil), values...),
		})
	}
	t.active = chosen
}

// saveMemo retains everything the next event needs to prove (or refute)
// that rebuilding would reproduce this event's schedules, then releases
// the losing candidates' storage. The aggregates needed for re-scoring
// are copied out first: a released schedule may be handed to any other
// build — including one in a concurrently running simulation — at any
// moment.
func (t *SelfTuner) saveMemo(now int64, capacity int, base *plan.Base, waiting []*job.Job, schedules []*plan.Schedule, chosenIdx int, values []float64) {
	n := len(schedules)
	if cap(t.prevMaxEnds) < n {
		t.prevMaxEnds = make([]int64, n)
	}
	t.prevMaxEnds = t.prevMaxEnds[:n]
	t.prevMinStart = math.MaxInt64
	for i, s := range schedules {
		t.prevMaxEnds[i] = s.MaxEstimatedEnd()
		if ms := s.MinStart(); ms < t.prevMinStart {
			t.prevMinStart = ms
		}
	}
	for i, s := range schedules {
		if i != chosenIdx {
			s.Release()
			schedules[i] = nil
		}
	}
	t.prevValid = true
	t.prevNow, t.prevCap = now, capacity
	t.prevBase = base
	t.prevWaiting = append(t.prevWaiting[:0], waiting...)
	t.prevChosen, t.prevChosenIdx = schedules[chosenIdx], chosenIdx
	t.prevValues = values
}

// tryMemo reuses the previous event's planning step when rebuilding is
// provably redundant. The conditions, each required for the proof that a
// rebuild reproduces the retained schedules byte-for-byte:
//
//   - same capacity and a non-empty, elementwise-identical waiting slice
//     (identical jobs => identical policy orders);
//   - every retained planned start is >= the new instant (no entry has
//     silently slipped into the past);
//   - the new base profile equals the previous one over [now, infinity)
//     (the machine promises the same future availability — e.g. the only
//     change since the last event is a completion exactly at its
//     estimate, whose reservation the planner had already written off).
//
// Under those conditions every candidate's placement recursion visits the
// same profile states and produces the same entries, so the fused scores
// are reusable as-is (re-derived from the retained max estimated ends for
// the Now-relative makespan metric). The decider is re-run on those
// scores — its tie-breaks may consult the active policy, which a rebuild
// would also see — and on the standard deciders it provably re-selects
// the retained choice; if a custom decider picks another candidate, whose
// schedule is already released, tryMemo reports a miss and the full
// rebuild supplies it.
func (t *SelfTuner) tryMemo(now int64, capacity int, base *plan.Base, waiting []*job.Job) *plan.Schedule {
	if !t.prevValid || capacity != t.prevCap || now < t.prevNow ||
		len(waiting) == 0 || len(waiting) != len(t.prevWaiting) ||
		t.prevMinStart < now {
		return nil
	}
	for i, j := range waiting {
		if t.prevWaiting[i] != j {
			return nil
		}
	}
	if !base.EqualFrom(t.prevBase, now) {
		return nil
	}

	values := make([]float64, len(t.candidates))
	if t.metric == MetricMakespan {
		for i, end := range t.prevMaxEnds {
			if end != 0 {
				values[i] = float64(end - now)
			}
		}
	} else {
		copy(values, t.prevValues)
	}
	chosen := t.decider.Decide(t.active, t.candidates, values)
	if chosen != t.candidates[t.prevChosenIdx] {
		return nil
	}

	t.commit(now, chosen, values)
	t.prevChosen.Now = now
	t.prevBase.Release()
	t.prevBase = base
	t.prevNow = now
	t.prevValues = values
	return t.prevChosen
}
