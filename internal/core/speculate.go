package core

import (
	"fmt"

	"dynp/internal/job"
	"dynp/internal/plan"
)

// Speculative cross-event planning: the pipeline that lets one
// simulation overlap the next scheduling event's what-if builds with the
// current event's bookkeeping.
//
// A virtual-clock front end knows its next scheduling event
// deterministically — the next submission is in the job set, the next
// completion was scheduled when the job launched — so right after one
// planning step commits it can predict the *inputs* of the next Plan
// call exactly: the instant, the capacity, the post-event running set
// and the post-event waiting queue. Speculate takes that prediction and
// builds the whole what-if state on a worker goroutine (base
// availability profile, one candidate schedule per policy, fused metric
// scores) while the front end's main goroutine applies the event's
// bookkeeping. The next Plan call then verifies the prediction against
// the real inputs — same instant, same capacity, elementwise-identical
// waiting queue, and a base profile equal over [now, infinity) — and on
// a hit consumes the prebuilt schedules; on a miss it discards them and
// rebuilds from scratch, so correctness never depends on prediction
// quality. This is the memoization discipline of tryMemo extended
// across events and across goroutines.
//
// What is deliberately NOT speculated is the decision itself: the
// decider always runs on the main goroutine at commit time, against the
// tuner's live state. An observer-driven decider (internal/adaptive)
// may change its mind between the prediction and the event — queue
// pressure observed in the meantime can flip it — and because every
// candidate's schedule is still alive at that point, a flip simply
// selects a different prebuilt schedule instead of invalidating the
// speculation. Statistics, traces and the activation sequence are
// byte-identical to the sequential path.
//
// Concurrency and determinism: the worker reads only immutable state —
// the candidate set, the metric, job fields (never mutated after
// construction) and the prediction slices, whose ownership transfers to
// the tuner at Speculate. It does not touch the tuner's incremental
// order views (main-goroutine property; the worker re-sorts from
// scratch, byte-identical because every policy order is total), the
// decider, or any profile retained by the memo path. Results cross back
// over a buffered channel, whose send/receive pair orders the worker's
// writes before the main goroutine's reads. At most one speculation is
// in flight per tuner: a new Speculate first drains and discards an
// unconsumed predecessor.

// SpecStats counts the speculative pipeline's outcomes. Monitoring
// state only — it is not part of checkpoints and never influences
// decisions.
type SpecStats struct {
	// Dispatched counts speculative builds started.
	Dispatched int
	// Hits counts speculations consumed by Plan after full verification.
	Hits int
	// Misses counts speculations discarded because the prediction did
	// not match the real event (or was superseded before any Plan call).
	Misses int
	// Cancelled counts speculations discarded by CancelSpeculation —
	// typically the in-flight build at the end of a run.
	Cancelled int
}

// HitRate returns Hits over Dispatched (0 before the first dispatch).
func (s SpecStats) HitRate() float64 {
	if s.Dispatched == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Dispatched)
}

// specResult is one completed speculative build awaiting verification.
// Everything in it is owned by the worker until the channel hands it to
// the main goroutine; the pooled pieces (base, schedules) are released
// by exactly one of trySpec (hit: losers via saveMemo), discardSpec
// (miss) or CancelSpeculation.
type specResult struct {
	now       int64
	capacity  int
	waiting   []*job.Job
	base      *plan.Base
	schedules []*plan.Schedule
	values    []float64
}

// SetSpeculation toggles the speculative cross-event planning pipeline.
// Off (the default — the online RMS cannot predict wall-clock arrivals,
// so it would pay for misses only), Speculate is a no-op and Plan never
// spawns a goroutine. Turning it off drains any in-flight build.
func (t *SelfTuner) SetSpeculation(on bool) {
	if !on {
		t.CancelSpeculation()
	}
	t.specOn = on
}

// SpeculationEnabled reports whether Speculate currently accepts
// predictions. Front ends check it before paying for the prediction
// snapshots (see engine.Lookaheader).
func (t *SelfTuner) SpeculationEnabled() bool { return t.specOn }

// SpecStats returns the speculative pipeline's outcome counters.
func (t *SelfTuner) SpecStats() SpecStats { return t.specStats }

// Speculate hands the tuner the predicted inputs of the next Plan call
// and starts building the corresponding what-if state on a worker
// goroutine. Ownership of the running and waiting slices transfers to
// the tuner: the caller must not reuse or mutate them (the jobs they
// point to are shared but immutable). A previously dispatched,
// still-unconsumed speculation is drained and discarded first, so at
// most one build is ever in flight.
//
// Speculate must be called from the same goroutine that calls Plan.
func (t *SelfTuner) Speculate(now int64, capacity int, running []plan.Running, waiting []*job.Job) {
	if !t.specOn {
		return
	}
	if res := t.drainSpec(); res != nil {
		t.specStats.Misses++
		t.discardSpec(res)
	}
	t.specStats.Dispatched++
	ch := make(chan *specResult, 1)
	t.specCh = ch
	candidates, metric, workers := t.candidates, t.metric, t.Workers()
	go func() {
		base := plan.BuildBasePooled(now, capacity, running)
		schedules := make([]*plan.Schedule, len(candidates))
		values := make([]float64, len(candidates))
		buildCandidates(candidates, metric, base, waiting, nil, workers, schedules, values)
		ch <- &specResult{now: now, capacity: capacity, waiting: waiting,
			base: base, schedules: schedules, values: values}
	}()
}

// CancelSpeculation drains and discards any in-flight speculative
// build. Front ends call it once when no further Plan call will consume
// a prediction (the end of a simulation run); it is idempotent.
func (t *SelfTuner) CancelSpeculation() {
	if res := t.drainSpec(); res != nil {
		t.specStats.Cancelled++
		t.discardSpec(res)
	}
}

// drainSpec receives the pending speculative result, blocking until the
// worker finishes (builds are microseconds; the block replaces the full
// rebuild the caller would otherwise run). nil when none is in flight.
func (t *SelfTuner) drainSpec() *specResult {
	if t.specCh == nil {
		return nil
	}
	res := <-t.specCh
	t.specCh = nil
	return res
}

// discardSpec returns a rejected speculation's pooled storage to the
// plan arenas. The release-exactly-once discipline of plan.Schedule and
// plan.Base carries across the goroutine handoff: the worker built them,
// the channel transferred ownership, and only the owner releases.
func (t *SelfTuner) discardSpec(res *specResult) {
	res.base.Release()
	plan.ReleaseSchedules(res.schedules)
}

// trySpec consumes a pending speculative build when its prediction
// matches the real event. The verification mirrors tryMemo's proof
// obligations, condition for condition:
//
//   - the predicted instant and capacity equal the real ones;
//   - the predicted waiting queue is elementwise identical to the real
//     one (identical jobs => identical total policy orders => identical
//     placement sequences);
//   - the speculative base promises the same free processors as the
//     real base over [now, infinity) (EqualFrom) — the running sets may
//     differ representationally (a completion exactly at its estimate),
//     but the placement recursion only ever reads availability from now
//     on.
//
// Under those conditions every speculative schedule is byte-identical
// to the one a rebuild would produce, including the fused float
// aggregates (same accumulation order), so the decider — run here, on
// live tuner state — sees bit-exact scores. Whatever candidate it picks
// is available: unlike the memo path, no schedule has been released
// yet, so a decider flip (an observer-driven decider reacting to
// pressure observed since the prediction) is served from the
// speculation, not a reason to discard it.
//
// On a hit the real base is retained for the next event's memo check
// and the speculative one released; on a miss everything speculative is
// discarded and the caller rebuilds.
func (t *SelfTuner) trySpec(now int64, capacity int, base *plan.Base, waiting []*job.Job) *plan.Schedule {
	res := t.drainSpec()
	if res == nil {
		return nil
	}
	if !t.specMatches(res, now, capacity, base, waiting) {
		t.specStats.Misses++
		t.discardSpec(res)
		return nil
	}
	t.specStats.Hits++
	res.base.Release()

	chosen := t.decider.Decide(t.active, t.candidates, res.values)
	chosenIdx := -1
	for i, p := range t.candidates {
		if p == chosen {
			chosenIdx = i
			break
		}
	}
	if chosenIdx < 0 {
		panic(fmt.Sprintf("core: decider %s returned non-candidate %v", t.decider.Name(), chosen))
	}

	// The previous event's memo state is superseded exactly as on a full
	// rebuild: release its base before saveMemo retains the new one.
	if t.prevBase != nil {
		t.prevBase.Release()
		t.prevBase = nil
	}
	t.prevValid = false

	t.commit(now, chosen, res.values)
	t.saveMemo(now, capacity, base, waiting, res.schedules, chosenIdx, res.values)
	return res.schedules[chosenIdx]
}

// specMatches is trySpec's verification predicate.
func (t *SelfTuner) specMatches(res *specResult, now int64, capacity int, base *plan.Base, waiting []*job.Job) bool {
	if res.now != now || res.capacity != capacity || len(res.waiting) != len(waiting) {
		return false
	}
	for i, j := range waiting {
		if res.waiting[i] != j {
			return false
		}
	}
	return base.EqualFrom(res.base, now)
}
