// Checkpoint serialisation of the self-tuner's decision state: the
// active policy, the aggregated statistics and the decision trace. The
// allocation-lean fast paths (incremental views, plan memoization) are
// deliberately not captured — both are pure optimisations proven
// byte-identical to the slow paths, so a restored tuner that rebuilds
// its first plan from scratch produces exactly the schedules a
// never-restarted tuner would have. The views are re-primed by the
// engine's queue-tracker notifications during restore.
package core

import (
	"encoding/json"
	"fmt"
	"math"

	"dynp/internal/policy"
)

// Scores can be ±Inf (a NaN metric score is canonicalised to +Inf by the
// deciders' ordering), which encoding/json refuses to encode as float64,
// so decisions serialise their values as IEEE-754 bit patterns.
type decState struct {
	Time   int64    `json:"t"`
	Old    string   `json:"old"`
	Chosen string   `json:"chosen"`
	Values []uint64 `json:"values,omitempty"`
}

type tunerState struct {
	Active   string         `json:"active"`
	Steps    int            `json:"steps"`
	Switches int            `json:"switches"`
	Chosen   map[string]int `json:"chosen,omitempty"`
	Last     *decState      `json:"last,omitempty"`
	Trace    []decState     `json:"trace,omitempty"`
}

func encodeDecision(d Decision) decState {
	out := decState{Time: d.Time, Old: d.Old.String(), Chosen: d.Chosen.String()}
	for _, v := range d.Values {
		out.Values = append(out.Values, math.Float64bits(v))
	}
	return out
}

func decodeDecision(s decState) (Decision, error) {
	old, err := policy.Parse(s.Old)
	if err != nil {
		return Decision{}, fmt.Errorf("core: tuner state: %w", err)
	}
	chosen, err := policy.Parse(s.Chosen)
	if err != nil {
		return Decision{}, fmt.Errorf("core: tuner state: %w", err)
	}
	d := Decision{Time: s.Time, Old: old, Chosen: chosen}
	for _, bits := range s.Values {
		d.Values = append(d.Values, math.Float64frombits(bits))
	}
	return d, nil
}

// MarshalState serialises the tuner's decision state — active policy,
// statistics, last decision and (when tracing) the decision trace — for
// a checkpoint. The encoding is deterministic: the same tuner state
// always yields the same bytes.
func (t *SelfTuner) MarshalState() ([]byte, error) {
	st := tunerState{
		Active:   t.active.String(),
		Steps:    t.stats.Steps,
		Switches: t.stats.Switches,
	}
	if len(t.stats.Chosen) > 0 {
		st.Chosen = make(map[string]int, len(t.stats.Chosen))
		for p, n := range t.stats.Chosen {
			st.Chosen[p.String()] = n
		}
	}
	if t.hasLast {
		d := encodeDecision(t.last)
		st.Last = &d
	}
	for _, d := range t.trace {
		st.Trace = append(st.Trace, encodeDecision(d))
	}
	return json.Marshal(st)
}

// UnmarshalState installs a previously marshalled decision state into a
// tuner constructed with the same candidate set, decider and metric.
// Queue-tracking state is untouched (it is rebuilt by the restore's
// NoteSubmit notifications), and the memoized previous step is left
// invalid — the first Plan after a restore is a full rebuild, which is
// byte-identical to what the memo would have produced.
func (t *SelfTuner) UnmarshalState(data []byte) error {
	var st tunerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: tuner state: %w", err)
	}
	active, err := policy.Parse(st.Active)
	if err != nil {
		return fmt.Errorf("core: tuner state: %w", err)
	}
	ok := false
	for _, c := range t.candidates {
		if c == active {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("core: tuner state: active policy %v is not a candidate", active)
	}
	stats := Stats{Steps: st.Steps, Switches: st.Switches, Chosen: make(map[policy.Policy]int)}
	for name, n := range st.Chosen {
		p, err := policy.Parse(name)
		if err != nil {
			return fmt.Errorf("core: tuner state: %w", err)
		}
		stats.Chosen[p] = n
	}
	var last Decision
	hasLast := false
	if st.Last != nil {
		if last, err = decodeDecision(*st.Last); err != nil {
			return err
		}
		hasLast = true
	}
	var trace []Decision
	for _, s := range st.Trace {
		d, err := decodeDecision(s)
		if err != nil {
			return err
		}
		trace = append(trace, d)
	}

	t.active = active
	t.stats = stats
	t.last, t.hasLast = last, hasLast
	if t.traceOn {
		t.trace = trace
	}
	t.prevValid = false
	return nil
}
