// Checkpoint serialisation of the self-tuner's decision state: the
// active policy, the aggregated statistics and the decision trace — all
// keyed by policy *name*, so journals survive registry changes and work
// for any registered policy. The allocation-lean fast paths (incremental
// views, plan memoization) are deliberately not captured — both are pure
// optimisations proven byte-identical to the slow paths, so a restored
// tuner that rebuilds its first plan from scratch produces exactly the
// schedules a never-restarted tuner would have. The views are re-primed
// by the engine's queue-tracker notifications during restore.
//
// A stateful decider (see StatefulDecider) rides the same encoding: its
// name and opaque state bytes are included when present. The fields are
// omitempty, so checkpoints written with the stateless built-in deciders
// are byte-identical to the pre-registry encoding.
package core

import (
	"encoding/json"
	"fmt"
	"math"

	"dynp/internal/policy"
)

// Scores can be ±Inf (a NaN metric score is canonicalised to +Inf by the
// deciders' ordering), which encoding/json refuses to encode as float64,
// so decisions serialise their values as IEEE-754 bit patterns.
type decState struct {
	Time   int64    `json:"t"`
	Old    string   `json:"old"`
	Chosen string   `json:"chosen"`
	Values []uint64 `json:"values,omitempty"`
}

type tunerState struct {
	Active   string         `json:"active"`
	Steps    int            `json:"steps"`
	Switches int            `json:"switches"`
	Chosen   map[string]int `json:"chosen,omitempty"`
	Last     *decState      `json:"last,omitempty"`
	Trace    []decState     `json:"trace,omitempty"`

	// Stateful-decider round-trip (omitted for the stateless built-ins,
	// keeping pre-registry checkpoints byte-identical).
	Decider      string          `json:"decider,omitempty"`
	DeciderState json.RawMessage `json:"decider_state,omitempty"`
}

func encodeDecision(d Decision) decState {
	out := decState{Time: d.Time, Old: d.Old.Name(), Chosen: d.Chosen.Name()}
	for _, v := range d.Values {
		out.Values = append(out.Values, math.Float64bits(v))
	}
	return out
}

// lookupPolicy resolves a serialized policy name against this tuner's
// own candidate set first — so a custom candidate round-trips even when
// the restoring process registered it under the same name with a
// distinct value — and falls back to the global registry for names that
// are not candidates. Unknown names are refused with an error that says
// which names would have worked; there is no silent fallback.
func (t *SelfTuner) lookupPolicy(name string) (policy.Policy, error) {
	for _, c := range t.candidates {
		if c.Name() == name {
			return c, nil
		}
	}
	if p, err := policy.Lookup(name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("policy %q is neither a candidate (%v) nor registered", name, policyNames(t.candidates))
}

func policyNames(ps []policy.Policy) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}

func (t *SelfTuner) decodeDecision(s decState) (Decision, error) {
	old, err := t.lookupPolicy(s.Old)
	if err != nil {
		return Decision{}, fmt.Errorf("core: tuner state: %w", err)
	}
	chosen, err := t.lookupPolicy(s.Chosen)
	if err != nil {
		return Decision{}, fmt.Errorf("core: tuner state: %w", err)
	}
	d := Decision{Time: s.Time, Old: old, Chosen: chosen}
	for _, bits := range s.Values {
		d.Values = append(d.Values, math.Float64frombits(bits))
	}
	return d, nil
}

// MarshalState serialises the tuner's decision state — active policy,
// statistics, last decision, (when tracing) the decision trace, and
// (when the decider is stateful) the decider's name and state — for a
// checkpoint. The encoding is deterministic: the same tuner state always
// yields the same bytes.
func (t *SelfTuner) MarshalState() ([]byte, error) {
	st := tunerState{
		Active:   t.active.Name(),
		Steps:    t.stats.Steps,
		Switches: t.stats.Switches,
	}
	if len(t.stats.Chosen) > 0 {
		st.Chosen = make(map[string]int, len(t.stats.Chosen))
		for name, n := range t.stats.Chosen {
			st.Chosen[name] = n
		}
	}
	if t.hasLast {
		d := encodeDecision(t.last)
		st.Last = &d
	}
	for _, d := range t.trace {
		st.Trace = append(st.Trace, encodeDecision(d))
	}
	if sd, ok := t.decider.(StatefulDecider); ok {
		data, err := sd.SaveState()
		if err != nil {
			return nil, fmt.Errorf("core: tuner state: decider %s: %w", sd.Name(), err)
		}
		st.Decider = sd.Name()
		st.DeciderState = data
	}
	return json.Marshal(st)
}

// UnmarshalState installs a previously marshalled decision state into a
// tuner constructed with the same candidate set, decider and metric.
// Policy names are resolved against the tuner's candidates (then the
// registry); unknown names are refused with a clear error. A serialized
// decider state is handed to the tuner's decider, which must carry the
// same name and implement StatefulDecider. Queue-tracking state is
// untouched (it is rebuilt by the restore's NoteSubmit notifications),
// and the memoized previous step is left invalid — the first Plan after
// a restore is a full rebuild, which is byte-identical to what the memo
// would have produced.
func (t *SelfTuner) UnmarshalState(data []byte) error {
	var st tunerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: tuner state: %w", err)
	}
	active, err := t.lookupPolicy(st.Active)
	if err != nil {
		return fmt.Errorf("core: tuner state: %w", err)
	}
	ok := false
	for _, c := range t.candidates {
		if c == active {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("core: tuner state: active policy %v is not a candidate", active)
	}
	if st.Decider != "" && st.Decider != t.decider.Name() {
		return fmt.Errorf("core: tuner state: saved decider %q does not match configured decider %q", st.Decider, t.decider.Name())
	}
	var restoreDecider StatefulDecider
	if len(st.DeciderState) > 0 {
		sd, ok := t.decider.(StatefulDecider)
		if !ok {
			return fmt.Errorf("core: tuner state: saved state for decider %q, but %T is not stateful", st.Decider, t.decider)
		}
		restoreDecider = sd
	}
	stats := Stats{Steps: st.Steps, Switches: st.Switches, Chosen: make(map[string]int, len(st.Chosen))}
	for name, n := range st.Chosen {
		// The counts stay name-keyed, but every name must still resolve:
		// a checkpoint referencing a policy this process never registered
		// is refused, not silently carried along.
		if _, err := t.lookupPolicy(name); err != nil {
			return fmt.Errorf("core: tuner state: %w", err)
		}
		stats.Chosen[name] = n
	}
	var last Decision
	hasLast := false
	if st.Last != nil {
		if last, err = t.decodeDecision(*st.Last); err != nil {
			return err
		}
		hasLast = true
	}
	var trace []Decision
	for _, s := range st.Trace {
		d, err := t.decodeDecision(s)
		if err != nil {
			return err
		}
		trace = append(trace, d)
	}
	if restoreDecider != nil {
		if err := restoreDecider.RestoreState(st.DeciderState); err != nil {
			return fmt.Errorf("core: tuner state: decider %s: %w", st.Decider, err)
		}
	}

	t.active = active
	t.stats = stats
	t.last, t.hasLast = last, hasLast
	if t.traceOn {
		t.trace = trace
	}
	t.prevValid = false
	return nil
}
