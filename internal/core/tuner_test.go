package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

func mkJob(id job.ID, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func TestNewSelfTunerDefaults(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	got := st.Candidates()
	if len(got) != 3 || got[0] != policy.FCFS || got[1] != policy.SJF || got[2] != policy.LJF {
		t.Fatalf("default candidates = %v", got)
	}
	if st.Active() != policy.FCFS {
		t.Fatalf("initial active = %v, want FCFS", st.Active())
	}
}

func TestNewSelfTunerPanicsOnNilDecider(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil decider accepted")
		}
	}()
	NewSelfTuner(nil, nil, MetricSLDwA)
}

func TestSetActive(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.SetActive(policy.LJF)
	if st.Active() != policy.LJF {
		t.Fatal("SetActive did not take effect")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetActive accepted a non-candidate")
		}
	}()
	st.SetActive(policy.SAF)
}

func TestPlanPicksSJFWhenClearlyBest(t *testing.T) {
	// One processor; a short and a very long job waiting. SJF's plan has
	// a strictly lower planned SLDwA, so any decider must pick SJF.
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	for _, d := range []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.LJF}} {
		st := NewSelfTuner(nil, d, MetricSLDwA)
		s := st.Plan(0, 1, nil, waiting)
		if st.Active() != policy.SJF {
			t.Errorf("%s: active = %v, want SJF", d.Name(), st.Active())
		}
		if s.Policy != policy.SJF {
			t.Errorf("%s: returned schedule built with %v", d.Name(), s.Policy)
		}
	}
}

func TestPlanReturnsChosenSchedule(t *testing.T) {
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	s := st.Plan(0, 1, nil, waiting)
	want := plan.Build(0, 1, nil, waiting, policy.SJF)
	if len(s.Entries) != len(want.Entries) {
		t.Fatalf("schedule length mismatch")
	}
	for i := range s.Entries {
		if s.Entries[i].Job.ID != want.Entries[i].Job.ID ||
			s.Entries[i].Start != want.Entries[i].Start {
			t.Fatalf("entry %d differs from a fresh SJF build", i)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.Plan(0, 1, nil, waiting) // FCFS -> SJF: a switch
	st.Plan(5, 1, nil, waiting) // stays SJF
	got := st.Stats()
	if got.Steps != 2 {
		t.Errorf("Steps = %d, want 2", got.Steps)
	}
	if got.Switches != 1 {
		t.Errorf("Switches = %d, want 1", got.Switches)
	}
	if got.Chosen["SJF"] != 2 {
		t.Errorf("Chosen[SJF] = %d, want 2", got.Chosen["SJF"])
	}
	// Stats must be a copy.
	got.Chosen["SJF"] = 99
	if st.Stats().Chosen["SJF"] == 99 {
		t.Error("Stats leaked internal map")
	}
}

func TestTraceRecording(t *testing.T) {
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.EnableTrace()
	st.Plan(7, 1, nil, waiting)
	tr := st.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace length = %d", len(tr))
	}
	d := tr[0]
	if d.Time != 7 || d.Old != policy.FCFS || d.Chosen != policy.SJF || len(d.Values) != 3 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestEmptyQueueKeepsTies(t *testing.T) {
	// With no waiting jobs all policies score 0; the advanced decider
	// must stay with the old policy, the preferred decider must return
	// to its preferred policy.
	adv := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	adv.SetActive(policy.LJF)
	adv.Plan(0, 4, nil, nil)
	if adv.Active() != policy.LJF {
		t.Errorf("advanced switched on empty queue: %v", adv.Active())
	}
	pref := NewSelfTuner(nil, Preferred{Policy: policy.SJF}, MetricSLDwA)
	pref.SetActive(policy.LJF)
	pref.Plan(0, 4, nil, nil)
	if pref.Active() != policy.SJF {
		t.Errorf("preferred did not return to SJF on empty queue: %v", pref.Active())
	}
}

// tunerScenario builds a deterministic machine state: some running jobs
// and a sequence of waiting queues, one per self-tuning step.
func tunerScenario(capacity, steps, queued int) (running []plan.Running, waves [][]*job.Job) {
	r := rng.New(99)
	for i := 0; i < 16; i++ {
		running = append(running, plan.Running{
			Job: &job.Job{
				ID: job.ID(i + 1), Submit: 0,
				Width: 1 + r.Intn(capacity/16), Estimate: int64(500 + r.Intn(5000)),
			},
			Start: 0,
		})
	}
	id := 100
	for s := 0; s < steps; s++ {
		wave := make([]*job.Job, queued)
		for i := range wave {
			est := int64(1 + r.Intn(20000))
			wave[i] = &job.Job{
				ID: job.ID(id), Submit: int64(r.Intn(1000)),
				Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
			}
			id++
		}
		waves = append(waves, wave)
	}
	return running, waves
}

// TestPlanIdenticalAcrossWorkerCounts is the correctness contract of
// parallel what-if planning: for every decider, the schedules, decider
// choices, decision values and statistics must be byte-identical for
// Workers in {1, 2, GOMAXPROCS}.
func TestPlanIdenticalAcrossWorkerCounts(t *testing.T) {
	const capacity = 64
	running, waves := tunerScenario(capacity, 6, 40)

	type outcome struct {
		schedules [][]plan.Entry
		policies  []policy.Policy
		trace     []Decision
		stats     Stats
	}
	run := func(d Decider, workers int) outcome {
		st := NewSelfTuner(nil, d, MetricSLDwA)
		st.SetWorkers(workers)
		st.EnableTrace()
		var out outcome
		for s, wave := range waves {
			sched := st.Plan(int64(1000+100*s), capacity, running, wave)
			out.schedules = append(out.schedules, sched.Entries)
			out.policies = append(out.policies, sched.Policy)
		}
		out.trace = st.Trace()
		out.stats = st.Stats()
		return out
	}

	deciders := []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.SJF}}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, d := range deciders {
		want := run(d, 1)
		for _, w := range workerCounts[1:] {
			got := run(d, w)
			if !reflect.DeepEqual(got.policies, want.policies) {
				t.Errorf("%s/workers=%d: chosen policies %v, want %v",
					d.Name(), w, got.policies, want.policies)
			}
			if !reflect.DeepEqual(got.schedules, want.schedules) {
				t.Errorf("%s/workers=%d: schedules differ from sequential", d.Name(), w)
			}
			if !reflect.DeepEqual(got.trace, want.trace) {
				t.Errorf("%s/workers=%d: decision trace differs from sequential", d.Name(), w)
			}
			if !reflect.DeepEqual(got.stats, want.stats) {
				t.Errorf("%s/workers=%d: stats %+v, want %+v", d.Name(), w, got.stats, want.stats)
			}
		}
	}
}

// TestSetWorkers checks the knob's clamping rules.
func TestSetWorkers(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	if st.Workers() != 1 {
		t.Fatalf("default workers = %d, want 1", st.Workers())
	}
	st.SetWorkers(4)
	if st.Workers() != 4 {
		t.Fatalf("workers = %d after SetWorkers(4)", st.Workers())
	}
	st.SetWorkers(0)
	if st.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetWorkers(0) = %d, want GOMAXPROCS", st.Workers())
	}
}

// rogueDecider returns a policy outside the candidate set, modelling a
// buggy custom decider (examples/customdecider shows a correct one).
type rogueDecider struct{}

func (rogueDecider) Name() string { return "rogue" }
func (rogueDecider) Decide(old policy.Policy, cs []policy.Policy, vs []float64) policy.Policy {
	return policy.SAF
}

// TestPlanRejectsRogueDeciderBeforeMutatingState: the panic must fire
// before stats, trace or the active policy are touched.
func TestPlanRejectsRogueDeciderBeforeMutatingState(t *testing.T) {
	st := NewSelfTuner(nil, rogueDecider{}, MetricSLDwA)
	st.EnableTrace()
	waiting := []*job.Job{mkJob(1, 0, 1, 10)}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("rogue decider accepted")
			}
		}()
		st.Plan(0, 1, nil, waiting)
	}()
	if got := st.Stats(); got.Steps != 0 || got.Switches != 0 || len(got.Chosen) != 0 {
		t.Fatalf("stats mutated by rogue decider: %+v", got)
	}
	if len(st.Trace()) != 0 {
		t.Fatal("trace recorded a rogue decision")
	}
	if st.Active() != policy.FCFS {
		t.Fatalf("active policy changed to %v by rogue decider", st.Active())
	}
}

func TestMetricScoreDispatch(t *testing.T) {
	a := mkJob(1, 0, 2, 10)
	b := mkJob(2, 0, 1, 40)
	s := plan.Build(0, 2, nil, []*job.Job{a, b}, policy.FCFS)
	// a starts 0 (width 2)? capacity 2: a takes both, b waits to 10.
	checks := map[Metric]float64{
		MetricART:      ((0 + 10) + (10 + 40)) / 2.0,
		MetricAWT:      (0 + 10) / 2.0,
		MetricMakespan: 50,
	}
	for m, want := range checks {
		if got := m.Score(s); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v.Score = %v, want %v", m, got, want)
		}
	}
	if MetricSLDwA.Score(s) <= 0 || MetricARTwW.Score(s) <= 0 {
		t.Error("weighted metrics must be positive on a non-empty plan")
	}
}

func TestMetricParseAndString(t *testing.T) {
	for _, m := range []Metric{MetricSLDwA, MetricART, MetricARTwW, MetricAWT, MetricMakespan} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("ParseMetric accepted junk")
	}
}
