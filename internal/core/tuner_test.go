package core

import (
	"math"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

func mkJob(id job.ID, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func TestNewSelfTunerDefaults(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	got := st.Candidates()
	if len(got) != 3 || got[0] != policy.FCFS || got[1] != policy.SJF || got[2] != policy.LJF {
		t.Fatalf("default candidates = %v", got)
	}
	if st.Active() != policy.FCFS {
		t.Fatalf("initial active = %v, want FCFS", st.Active())
	}
}

func TestNewSelfTunerPanicsOnNilDecider(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil decider accepted")
		}
	}()
	NewSelfTuner(nil, nil, MetricSLDwA)
}

func TestSetActive(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.SetActive(policy.LJF)
	if st.Active() != policy.LJF {
		t.Fatal("SetActive did not take effect")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetActive accepted a non-candidate")
		}
	}()
	st.SetActive(policy.SAF)
}

func TestPlanPicksSJFWhenClearlyBest(t *testing.T) {
	// One processor; a short and a very long job waiting. SJF's plan has
	// a strictly lower planned SLDwA, so any decider must pick SJF.
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	for _, d := range []Decider{Simple{}, Advanced{}, Preferred{Policy: policy.LJF}} {
		st := NewSelfTuner(nil, d, MetricSLDwA)
		s := st.Plan(0, 1, nil, waiting)
		if st.Active() != policy.SJF {
			t.Errorf("%s: active = %v, want SJF", d.Name(), st.Active())
		}
		if s.Policy != policy.SJF {
			t.Errorf("%s: returned schedule built with %v", d.Name(), s.Policy)
		}
	}
}

func TestPlanReturnsChosenSchedule(t *testing.T) {
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	s := st.Plan(0, 1, nil, waiting)
	want := plan.Build(0, 1, nil, waiting, policy.SJF)
	if len(s.Entries) != len(want.Entries) {
		t.Fatalf("schedule length mismatch")
	}
	for i := range s.Entries {
		if s.Entries[i].Job.ID != want.Entries[i].Job.ID ||
			s.Entries[i].Start != want.Entries[i].Start {
			t.Fatalf("entry %d differs from a fresh SJF build", i)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.Plan(0, 1, nil, waiting) // FCFS -> SJF: a switch
	st.Plan(5, 1, nil, waiting) // stays SJF
	got := st.Stats()
	if got.Steps != 2 {
		t.Errorf("Steps = %d, want 2", got.Steps)
	}
	if got.Switches != 1 {
		t.Errorf("Switches = %d, want 1", got.Switches)
	}
	if got.Chosen[policy.SJF] != 2 {
		t.Errorf("Chosen[SJF] = %d, want 2", got.Chosen[policy.SJF])
	}
	// Stats must be a copy.
	got.Chosen[policy.SJF] = 99
	if st.Stats().Chosen[policy.SJF] == 99 {
		t.Error("Stats leaked internal map")
	}
}

func TestTraceRecording(t *testing.T) {
	waiting := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)}
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.EnableTrace()
	st.Plan(7, 1, nil, waiting)
	tr := st.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace length = %d", len(tr))
	}
	d := tr[0]
	if d.Time != 7 || d.Old != policy.FCFS || d.Chosen != policy.SJF || len(d.Values) != 3 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestEmptyQueueKeepsTies(t *testing.T) {
	// With no waiting jobs all policies score 0; the advanced decider
	// must stay with the old policy, the preferred decider must return
	// to its preferred policy.
	adv := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	adv.SetActive(policy.LJF)
	adv.Plan(0, 4, nil, nil)
	if adv.Active() != policy.LJF {
		t.Errorf("advanced switched on empty queue: %v", adv.Active())
	}
	pref := NewSelfTuner(nil, Preferred{Policy: policy.SJF}, MetricSLDwA)
	pref.SetActive(policy.LJF)
	pref.Plan(0, 4, nil, nil)
	if pref.Active() != policy.SJF {
		t.Errorf("preferred did not return to SJF on empty queue: %v", pref.Active())
	}
}

func TestMetricScoreDispatch(t *testing.T) {
	a := mkJob(1, 0, 2, 10)
	b := mkJob(2, 0, 1, 40)
	s := plan.Build(0, 2, nil, []*job.Job{a, b}, policy.FCFS)
	// a starts 0 (width 2)? capacity 2: a takes both, b waits to 10.
	checks := map[Metric]float64{
		MetricART:      ((0 + 10) + (10 + 40)) / 2.0,
		MetricAWT:      (0 + 10) / 2.0,
		MetricMakespan: 50,
	}
	for m, want := range checks {
		if got := m.Score(s); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v.Score = %v, want %v", m, got, want)
		}
	}
	if MetricSLDwA.Score(s) <= 0 || MetricARTwW.Score(s) <= 0 {
		t.Error("weighted metrics must be positive on a non-empty plan")
	}
}

func TestMetricParseAndString(t *testing.T) {
	for _, m := range []Metric{MetricSLDwA, MetricART, MetricARTwW, MetricAWT, MetricMakespan} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("ParseMetric accepted junk")
	}
}
