package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dynp/internal/job"
	"dynp/internal/rng"
)

// drive runs n random self-tuning steps against a tuner and returns the
// decision transcript; identical seeds drive identical step sequences.
func driveTuner(t *testing.T, st *SelfTuner, seed uint64, steps int) []Decision {
	t.Helper()
	r := rng.New(seed)
	var out []Decision
	now := int64(0)
	id := job.ID(1)
	for i := 0; i < steps; i++ {
		now += int64(1 + r.Intn(100))
		waiting := make([]*job.Job, 0, 4)
		for k := 0; k < 1+r.Intn(4); k++ {
			waiting = append(waiting, mkJob(id, now-int64(r.Intn(50)), 1+r.Intn(8), int64(10+r.Intn(400))))
			id++
		}
		st.Plan(now, 16, nil, waiting)
		d, ok := st.LastDecision()
		if !ok {
			t.Fatal("no decision after Plan")
		}
		out = append(out, d)
	}
	return out
}

// TestTunerStateRoundTrip: a tuner restored from MarshalState must carry
// the same active policy and statistics, and — driven by the same future
// events — make exactly the decisions the original would.
func TestTunerStateRoundTrip(t *testing.T) {
	orig := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	orig.EnableTrace()
	driveTuner(t, orig, 77, 25)

	data, err := orig.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// The serialised state must be deterministic.
	if again, err := orig.MarshalState(); err != nil || !bytes.Equal(data, again) {
		t.Fatalf("MarshalState is not deterministic (err %v)", err)
	}
	restored := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	restored.EnableTrace()
	if err := restored.UnmarshalState(data); err != nil {
		t.Fatal(err)
	}

	if restored.Active() != orig.Active() {
		t.Fatalf("active %v, want %v", restored.Active(), orig.Active())
	}
	if !reflect.DeepEqual(restored.Stats(), orig.Stats()) {
		t.Fatalf("stats %+v, want %+v", restored.Stats(), orig.Stats())
	}
	if !reflect.DeepEqual(restored.Trace(), orig.Trace()) {
		t.Fatal("restored trace differs")
	}
	ld1, _ := orig.LastDecision()
	ld2, _ := restored.LastDecision()
	if !reflect.DeepEqual(ld1, ld2) {
		t.Fatalf("last decision %+v, want %+v", ld2, ld1)
	}

	// Same future: both tuners must decide identically from here on.
	future1 := driveTuner(t, orig, 88, 25)
	future2 := driveTuner(t, restored, 88, 25)
	if !reflect.DeepEqual(future1, future2) {
		t.Fatal("restored tuner diverged from the original on identical events")
	}
}

// TestTunerStateInfValues: ±Inf scores — which a NaN metric score
// canonicalises to — must survive the round trip even though JSON has no
// encoding for them.
func TestTunerStateInfValues(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.commit(10, st.candidates[1], []float64{math.Inf(1), 2.5, math.Inf(-1)})
	data, err := st.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	if err := restored.UnmarshalState(data); err != nil {
		t.Fatal(err)
	}
	d, ok := restored.LastDecision()
	if !ok || !math.IsInf(d.Values[0], 1) || d.Values[1] != 2.5 || !math.IsInf(d.Values[2], -1) {
		t.Fatalf("restored values %+v", d.Values)
	}
}

// TestTunerStateRejectsForeign: states referencing policies outside the
// candidate set are refused, leaving the tuner untouched.
func TestTunerStateRejectsForeign(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	for _, bad := range []string{
		`{"active":"SAF"}`,                     // not a candidate
		`{"active":"bogus"}`,                   // not a policy
		`{"active":"SJF","chosen":{"nope":1}}`, // unknown stat key
		`not json`,
	} {
		if err := st.UnmarshalState([]byte(bad)); err == nil {
			t.Errorf("state %q accepted", bad)
		}
	}
	if st.Active().Name() != "FCFS" || st.Stats().Steps != 0 {
		t.Fatal("failed restore mutated the tuner")
	}
}
