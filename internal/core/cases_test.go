package core

import (
	"strings"
	"testing"

	"dynp/internal/policy"
)

func TestCaseOfMatchesTable1Rows(t *testing.T) {
	// The classifier partitions the overlapping paper cases; expected
	// labels for each Table 1 row under that partition:
	expect := map[string]string{
		"1": "1", "2": "2", "3": "3",
		"4a": "4a", "4b": "4b/5", "4c": "4c", "5": "4b/5",
		"6a": "6a", "6b": "6b", "6c": "6c",
		"7":  "7",
		"8a": "8a", "8b": "8b", "8c": "8c",
		"9":   "9",
		"10a": "10a", "10b": "10b", "10c": "10c",
	}
	for _, row := range Table1() {
		olds := candidates
		if row.OldSpecific {
			olds = []policy.Policy{row.Old}
		}
		for _, old := range olds {
			got := CaseOf(old, row.F, row.S, row.L)
			want := expect[row.Case]
			// Rows without old-specific subcases classify into the
			// old-dependent label only when ties involve the old
			// policy; case 1 splits by old.
			if row.Case == "1" {
				want = "1"
			}
			if got != want {
				t.Errorf("CaseOf(%v, %v,%v,%v) = %q, want %q (row %s)",
					old, row.F, row.S, row.L, got, want, row.Case)
			}
		}
	}
}

func TestCaseOfPartitionIsTotal(t *testing.T) {
	// Every value triple and old policy must map to exactly one known
	// label.
	for f := 1; f <= 3; f++ {
		for s := 1; s <= 3; s++ {
			for l := 1; l <= 3; l++ {
				for _, old := range candidates {
					label := CaseOf(old, float64(f), float64(s), float64(l))
					if _, ok := caseOrder[label]; !ok {
						t.Fatalf("unknown label %q for (%d,%d,%d) old=%v", label, f, s, l, old)
					}
				}
			}
		}
	}
}

func TestClassifyTrace(t *testing.T) {
	trace := []Decision{
		// Case 1 with old = SJF: the simple decider would pick FCFS,
		// the correct decision keeps SJF — wrong.
		{Old: policy.SJF, Values: []float64{1, 1, 1}},
		{Old: policy.SJF, Values: []float64{3, 1, 2}}, // case 2
		{Old: policy.SJF, Values: []float64{3, 1, 2}}, // case 2
		{Old: policy.LJF, Values: []float64{1, 2, 1}}, // case 8c (simple wrong)
		{Old: policy.SJF, Values: []float64{1, 2}},    // malformed: skipped
	}
	cases := ClassifyTrace(trace)
	if len(cases) != 3 {
		t.Fatalf("cases = %+v", cases)
	}
	if cases[0].Case != "1" || !cases[0].SimpleWrong {
		t.Errorf("first = %+v", cases[0])
	}
	if cases[1].Case != "2" || cases[1].Count != 2 || cases[1].SimpleWrong {
		t.Errorf("second = %+v", cases[1])
	}
	if cases[2].Case != "8c" || !cases[2].SimpleWrong {
		t.Errorf("third = %+v", cases[2])
	}
}

func TestClassifyTraceOrdering(t *testing.T) {
	trace := []Decision{
		{Old: policy.LJF, Values: []float64{2, 1, 1}},  // 10c
		{Old: policy.FCFS, Values: []float64{1, 2, 3}}, // 3
		{Old: policy.FCFS, Values: []float64{1, 1, 1}}, // 1
	}
	cases := ClassifyTrace(trace)
	var labels []string
	for _, c := range cases {
		labels = append(labels, c.Case)
	}
	if strings.Join(labels, ",") != "1,3,10c" {
		t.Fatalf("order = %v", labels)
	}
}

func TestFormatCases(t *testing.T) {
	lines := FormatCases([]CaseCount{{Case: "1", Count: 5, SimpleWrong: true}}, 10)
	if len(lines) != 1 || !strings.Contains(lines[0], "50.0%") ||
		!strings.Contains(lines[0], "wrongly") {
		t.Fatalf("lines = %v", lines)
	}
}
