package core

import (
	"fmt"
	"sort"

	"dynp/internal/policy"
)

// This file classifies live self-tuning decisions into the cases of the
// paper's Table 1, connecting the static decision analysis to observed
// scheduler behaviour: a decision trace can be summarised as "how often
// did each Table 1 case actually occur, and how often would the simple
// decider have decided wrongly?".

// CaseOf returns the Table 1 case label for a value triple and the old
// policy. The paper's cases overlap (case 5 equals case 4b, case 2
// includes the values of case 7, ...); CaseOf returns the most specific
// label of the partition:
//
//	"1"              all three equal
//	"2", "7"         SJF unique minimum (7 when FCFS = LJF)
//	"3", "9"         FCFS unique minimum (9 when SJF = LJF)
//	"4a", "4b/5", "4c"  LJF unique minimum, split by FCFS vs SJF
//	"6a".."6c"       FCFS = SJF < LJF, split by the old policy
//	"8a".."8c"       FCFS = LJF < SJF, split by the old policy
//	"10a".."10c"     SJF = LJF < FCFS, split by the old policy
func CaseOf(old policy.Policy, f, s, l float64) string {
	fMin := approxEqual(f, min3(f, s, l))
	sMin := approxEqual(s, min3(f, s, l))
	lMin := approxEqual(l, min3(f, s, l))
	sub := func() string {
		switch old {
		case policy.FCFS:
			return "a"
		case policy.SJF:
			return "b"
		default:
			return "c"
		}
	}
	switch {
	case fMin && sMin && lMin:
		return "1"
	case sMin && !fMin && !lMin:
		if approxEqual(f, l) {
			return "7"
		}
		return "2"
	case fMin && !sMin && !lMin:
		if approxEqual(s, l) {
			return "9"
		}
		return "3"
	case lMin && !fMin && !sMin:
		switch {
		case approxEqual(f, s):
			return "4b/5"
		case f < s:
			return "4a"
		default:
			return "4c"
		}
	case fMin && sMin:
		return "6" + sub()
	case fMin && lMin:
		return "8" + sub()
	default: // sMin && lMin
		return "10" + sub()
	}
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// CaseCount is one row of a decision-case histogram.
type CaseCount struct {
	Case  string
	Count int
	// SimpleWrong reports whether the simple decider decides this case
	// differently from the correct (advanced) decision.
	SimpleWrong bool
}

// caseOrder ranks case labels in the paper's Table 1 order.
var caseOrder = map[string]int{
	"1": 0, "2": 1, "3": 2, "4a": 3, "4b/5": 4, "4c": 5,
	"6a": 6, "6b": 7, "6c": 8, "7": 9, "8a": 10, "8b": 11, "8c": 12,
	"9": 13, "10a": 14, "10b": 15, "10c": 16,
}

// ClassifyTrace builds a Table 1 case histogram from a decision trace
// (recorded with SelfTuner.EnableTrace). Decisions whose candidate set is
// not the paper's three policies are skipped.
func ClassifyTrace(trace []Decision) []CaseCount {
	counts := map[string]int{}
	wrong := map[string]bool{}
	for _, d := range trace {
		if len(d.Values) != 3 {
			continue
		}
		f, s, l := d.Values[0], d.Values[1], d.Values[2]
		label := CaseOf(d.Old, f, s, l)
		counts[label]++
		if ReferenceSimple(f, s, l) != ReferenceCorrect(d.Old, f, s, l) {
			wrong[label] = true
		}
	}
	out := make([]CaseCount, 0, len(counts))
	for label, n := range counts {
		out = append(out, CaseCount{Case: label, Count: n, SimpleWrong: wrong[label]})
	}
	sort.Slice(out, func(i, j int) bool {
		return caseOrder[out[i].Case] < caseOrder[out[j].Case]
	})
	return out
}

// FormatCases renders a case histogram as text lines.
func FormatCases(cases []CaseCount, total int) []string {
	var lines []string
	for _, c := range cases {
		mark := ""
		if c.SimpleWrong {
			mark = "  (simple decider decides wrongly here)"
		}
		lines = append(lines, fmt.Sprintf("case %-5s %7d  (%5.1f%%)%s",
			c.Case, c.Count, 100*float64(c.Count)/float64(total), mark))
	}
	return lines
}
