package core

import (
	"dynp/internal/policy"
)

// This file reproduces Table 1 of the paper — the detailed analysis of the
// simple decider — as data plus two reference decision functions written
// directly from the paper's prose, independently of the Decider
// implementations in decider.go. The test suite cross-checks the two
// implementations against each other over every case.

// Table1Row is one printable row of the paper's Table 1.
type Table1Row struct {
	Case         string        // e.g. "1", "4a", "6b"
	Combination  string        // the value relations, paper notation
	OldSpecific  bool          // row constrains the old policy
	Old          policy.Policy // meaningful when OldSpecific
	Simple       policy.Policy // decision of the simple decider
	Correct      policy.Policy // the correct decision (meaningful unless CorrectIsOld)
	CorrectIsOld bool          // correct decision is "old policy", any old
	Wrong        bool          // simple decider decides wrongly (bold in the paper)
	F, S, L      float64       // representative value triple for the case
}

// Table1 returns the paper's Table 1 rows in order. Wrong rows are exactly
// the four cases 1, 6b, 8c and 10c the paper calls out.
func Table1() []Table1Row {
	f, s, l := policy.FCFS, policy.SJF, policy.LJF
	return []Table1Row{
		{Case: "1", Combination: "FCFS = SJF = LJF", Simple: f, CorrectIsOld: true, Wrong: true, F: 1, S: 1, L: 1},
		{Case: "2", Combination: "SJF < FCFS, SJF < LJF", Simple: s, Correct: s, F: 3, S: 1, L: 2},
		{Case: "3", Combination: "FCFS < SJF, FCFS < LJF", Simple: f, Correct: f, F: 1, S: 3, L: 2},
		{Case: "4a", Combination: "LJF < FCFS, LJF < SJF; FCFS < SJF", Simple: l, Correct: l, F: 2, S: 3, L: 1},
		{Case: "4b", Combination: "LJF < FCFS, LJF < SJF; FCFS = SJF", Simple: l, Correct: l, F: 2, S: 2, L: 1},
		{Case: "4c", Combination: "LJF < FCFS, LJF < SJF; FCFS > SJF", Simple: l, Correct: l, F: 3, S: 2, L: 1},
		{Case: "5", Combination: "FCFS = SJF, LJF < FCFS", Simple: l, Correct: l, F: 2, S: 2, L: 1},
		{Case: "6a", Combination: "FCFS = SJF, FCFS < LJF; old = FCFS", OldSpecific: true, Old: f, Simple: f, Correct: f, F: 1, S: 1, L: 2},
		{Case: "6b", Combination: "FCFS = SJF, FCFS < LJF; old = SJF", OldSpecific: true, Old: s, Simple: f, Correct: s, Wrong: true, F: 1, S: 1, L: 2},
		{Case: "6c", Combination: "FCFS = SJF, FCFS < LJF; old = LJF", OldSpecific: true, Old: l, Simple: f, Correct: f, F: 1, S: 1, L: 2},
		{Case: "7", Combination: "FCFS = LJF, SJF < FCFS", Simple: s, Correct: s, F: 2, S: 1, L: 2},
		{Case: "8a", Combination: "FCFS = LJF, FCFS < SJF; old = FCFS", OldSpecific: true, Old: f, Simple: f, Correct: f, F: 1, S: 2, L: 1},
		{Case: "8b", Combination: "FCFS = LJF, FCFS < SJF; old = SJF", OldSpecific: true, Old: s, Simple: f, Correct: f, F: 1, S: 2, L: 1},
		{Case: "8c", Combination: "FCFS = LJF, FCFS < SJF; old = LJF", OldSpecific: true, Old: l, Simple: f, Correct: l, Wrong: true, F: 1, S: 2, L: 1},
		{Case: "9", Combination: "SJF = LJF, FCFS < SJF", Simple: f, Correct: f, F: 1, S: 2, L: 2},
		{Case: "10a", Combination: "SJF = LJF, SJF < FCFS; old = FCFS", OldSpecific: true, Old: f, Simple: s, Correct: s, F: 2, S: 1, L: 1},
		{Case: "10b", Combination: "SJF = LJF, SJF < FCFS; old = SJF", OldSpecific: true, Old: s, Simple: s, Correct: s, F: 2, S: 1, L: 1},
		{Case: "10c", Combination: "SJF = LJF, SJF < FCFS; old = LJF", OldSpecific: true, Old: l, Simple: s, Correct: l, Wrong: true, F: 2, S: 1, L: 1},
	}
}

// ReferenceSimple is the simple decider transcribed from the paper's
// description as three if-then-else constructs over the raw values. It
// favours FCFS, then SJF, then LJF on ties and ignores the old policy.
func ReferenceSimple(f, s, l float64) policy.Policy {
	if f <= s && f <= l {
		return policy.FCFS
	}
	if s <= l {
		return policy.SJF
	}
	return policy.LJF
}

// ReferenceCorrect is the "correct decision" column of Table 1 transcribed
// from first principles: the unique minimum wins; on ties the old policy is
// kept when it participates in the minimum, otherwise FCFS is preferred
// over SJF over LJF.
func ReferenceCorrect(old policy.Policy, f, s, l float64) policy.Policy {
	min := f
	if s < min {
		min = s
	}
	if l < min {
		min = l
	}
	inMin := func(v float64) bool { return v == min }
	switch {
	case old == policy.FCFS && inMin(f),
		old == policy.SJF && inMin(s),
		old == policy.LJF && inMin(l):
		return old
	case inMin(f):
		return policy.FCFS
	case inMin(s):
		return policy.SJF
	default:
		return policy.LJF
	}
}

// ReferencePreferred transcribes the preferred decider's prose: stay with
// the preferred policy unless another is strictly better; switch back to
// the preferred policy as soon as it is at least equal to the minimum;
// otherwise behave like ReferenceCorrect.
func ReferencePreferred(pref, old policy.Policy, f, s, l float64) policy.Policy {
	min := f
	if s < min {
		min = s
	}
	if l < min {
		min = l
	}
	valueOf := func(p policy.Policy) float64 {
		switch p {
		case policy.FCFS:
			return f
		case policy.SJF:
			return s
		default:
			return l
		}
	}
	if valueOf(pref) == min {
		return pref
	}
	return ReferenceCorrect(old, f, s, l)
}
