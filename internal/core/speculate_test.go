package core

import (
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// specTuner returns a tuner with speculation on and a contended scenario:
// two processors, one running job, three waiting jobs whose SJF and FCFS
// orders differ.
func specTuner(d Decider) (*SelfTuner, []plan.Running, []*job.Job) {
	st := NewSelfTuner(nil, d, MetricSLDwA)
	st.SetSpeculation(true)
	running := []plan.Running{{Job: mkJob(1, 0, 1, 100), Start: 0}}
	waiting := []*job.Job{mkJob(2, 0, 1, 500), mkJob(3, 5, 1, 10), mkJob(4, 7, 2, 50)}
	return st, running, waiting
}

// clone returns a fresh slice with the same elements — Speculate takes
// ownership of its slices, so predictions never share storage with the
// real Plan inputs.
func clone[T any](s []T) []T { return append([]T(nil), s...) }

func TestSpeculateHitMatchesRebuild(t *testing.T) {
	st, running, waiting := specTuner(Advanced{})
	st.Speculate(10, 2, clone(running), clone(waiting))
	s := st.Plan(10, 2, running, waiting)

	if got := st.SpecStats(); got.Dispatched != 1 || got.Hits != 1 || got.Misses != 0 || got.Cancelled != 0 {
		t.Fatalf("stats after hit = %+v", got)
	}

	// The consumed speculation must equal a from-scratch build of the
	// same step, entry for entry.
	ref := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	want := ref.Plan(10, 2, running, waiting)
	if st.Active() != ref.Active() {
		t.Fatalf("active = %v, reference = %v", st.Active(), ref.Active())
	}
	if len(s.Entries) != len(want.Entries) {
		t.Fatalf("schedule has %d entries, reference %d", len(s.Entries), len(want.Entries))
	}
	for i := range s.Entries {
		if s.Entries[i].Job != want.Entries[i].Job || s.Entries[i].Start != want.Entries[i].Start {
			t.Fatalf("entry %d = %+v, reference %+v", i, s.Entries[i], want.Entries[i])
		}
	}
}

func TestSpeculateMissPerCondition(t *testing.T) {
	cases := []struct {
		name string
		spec func(st *SelfTuner, running []plan.Running, waiting []*job.Job)
	}{
		{"time", func(st *SelfTuner, running []plan.Running, waiting []*job.Job) {
			st.Speculate(9, 2, clone(running), clone(waiting))
		}},
		{"capacity", func(st *SelfTuner, running []plan.Running, waiting []*job.Job) {
			st.Speculate(10, 3, clone(running), clone(waiting))
		}},
		{"waiting-length", func(st *SelfTuner, running []plan.Running, waiting []*job.Job) {
			st.Speculate(10, 2, clone(running), clone(waiting[:2]))
		}},
		{"waiting-element", func(st *SelfTuner, running []plan.Running, waiting []*job.Job) {
			w := clone(waiting)
			w[1] = mkJob(9, 5, 1, 10) // equal shape, different job
			st.Speculate(10, 2, clone(running), w)
		}},
		{"base-availability", func(st *SelfTuner, running []plan.Running, waiting []*job.Job) {
			// Predicted one fewer running job: more free processors over
			// [now, infinity), so EqualFrom rejects the speculative base.
			st.Speculate(10, 2, nil, clone(waiting))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, running, waiting := specTuner(Advanced{})
			tc.spec(st, running, waiting)
			s := st.Plan(10, 2, running, waiting)
			if s == nil {
				t.Fatal("Plan returned nil after a speculation miss")
			}
			if got := st.SpecStats(); got.Dispatched != 1 || got.Hits != 0 || got.Misses != 1 {
				t.Fatalf("stats = %+v, want one dispatched miss", got)
			}
			// The rebuild must be unaffected by the discarded speculation.
			ref := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
			if want := ref.Plan(10, 2, running, waiting); st.Active() != ref.Active() || len(s.Entries) != len(want.Entries) {
				t.Fatalf("miss fallback diverged from reference build")
			}
		})
	}
}

func TestSpeculateStaleIsDrainedAsMiss(t *testing.T) {
	st, running, waiting := specTuner(Advanced{})
	st.Speculate(10, 2, clone(running), clone(waiting))
	// A second prediction before any Plan supersedes the first; the
	// superseded build is drained and discarded.
	st.Speculate(11, 2, clone(running), clone(waiting))
	st.Plan(11, 2, running, waiting)
	if got := st.SpecStats(); got.Dispatched != 2 || got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("stats = %+v, want the superseded dispatch counted as a miss", got)
	}
}

func TestCancelSpeculation(t *testing.T) {
	st, running, waiting := specTuner(Advanced{})
	st.Speculate(10, 2, clone(running), clone(waiting))
	st.CancelSpeculation()
	st.CancelSpeculation() // idempotent
	if got := st.SpecStats(); got.Dispatched != 1 || got.Cancelled != 1 || got.Hits != 0 || got.Misses != 0 {
		t.Fatalf("stats = %+v, want one cancelled dispatch", got)
	}
	// The tuner plans normally afterwards.
	if s := st.Plan(10, 2, running, waiting); s == nil {
		t.Fatal("Plan failed after cancel")
	}
}

func TestSetSpeculationOffDrainsInFlight(t *testing.T) {
	st, running, waiting := specTuner(Advanced{})
	st.Speculate(10, 2, clone(running), clone(waiting))
	st.SetSpeculation(false)
	if st.SpeculationEnabled() {
		t.Fatal("speculation still enabled")
	}
	if got := st.SpecStats(); got.Cancelled != 1 {
		t.Fatalf("stats = %+v, want the in-flight build cancelled", got)
	}
	// Off means Speculate is a free no-op.
	st.Speculate(11, 2, clone(running), clone(waiting))
	if got := st.SpecStats(); got.Dispatched != 1 {
		t.Fatalf("disabled Speculate dispatched a build: %+v", got)
	}
}

// flipDecider switches its fixed choice between speculation dispatch and
// Plan — the adversarial model of an observer-driven decider reacting to
// pressure observed after the prediction was made.
type flipDecider struct{ pick policy.Policy }

func (d *flipDecider) Name() string { return "flip" }
func (d *flipDecider) Decide(_ policy.Policy, _ []policy.Policy, _ []float64) policy.Policy {
	return d.pick
}

func TestSpeculateHitSurvivesDeciderFlip(t *testing.T) {
	d := &flipDecider{pick: policy.FCFS}
	st, running, waiting := specTuner(d)
	st.Speculate(10, 2, clone(running), clone(waiting))
	d.pick = policy.LJF // the decider changes its mind after dispatch
	s := st.Plan(10, 2, running, waiting)

	// Every candidate's schedule is still alive at decision time, so the
	// flip selects a different prebuilt schedule — a hit, not a miss.
	if got := st.SpecStats(); got.Hits != 1 || got.Misses != 0 {
		t.Fatalf("stats = %+v, want the flipped decision served from the speculation", got)
	}
	if st.Active() != policy.LJF || s.Policy != policy.LJF {
		t.Fatalf("active = %v, schedule policy = %v, want LJF", st.Active(), s.Policy)
	}
	want := plan.Build(10, 2, running, waiting, policy.LJF)
	if len(s.Entries) != len(want.Entries) {
		t.Fatalf("schedule has %d entries, fresh LJF build %d", len(s.Entries), len(want.Entries))
	}
	for i := range s.Entries {
		if s.Entries[i].Job != want.Entries[i].Job || s.Entries[i].Start != want.Entries[i].Start {
			t.Fatalf("entry %d = %+v, fresh LJF build %+v", i, s.Entries[i], want.Entries[i])
		}
	}
}

// TestSpeculationSequenceEquivalence drives one tuner through a sequence
// of planning steps with predictions of mixed quality and checks the
// decisions equal a speculation-free tuner's at every step — the
// single-tuner version of the sim-level byte-identity matrix.
func TestSpeculationSequenceEquivalence(t *testing.T) {
	st, _, _ := specTuner(Advanced{})
	ref := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.EnableTrace()
	ref.EnableTrace()

	jobs := []*job.Job{
		mkJob(1, 0, 1, 100), mkJob(2, 0, 1, 500), mkJob(3, 5, 1, 10),
		mkJob(4, 7, 2, 50), mkJob(5, 12, 1, 300), mkJob(6, 20, 2, 40),
	}
	waiting := jobs[:3]
	for step, now := range []int64{0, 10, 20, 35, 60} {
		if step > 0 && step%2 == 1 {
			// Odd steps get an accurate prediction, even steps a stale or
			// absent one — the mixed regime of a real event stream.
			st.Speculate(now, 2, nil, clone(waiting))
		}
		s := st.Plan(now, 2, nil, waiting)
		r := ref.Plan(now, 2, nil, waiting)
		if st.Active() != ref.Active() {
			t.Fatalf("step %d: active %v, reference %v", step, st.Active(), ref.Active())
		}
		if len(s.Entries) != len(r.Entries) {
			t.Fatalf("step %d: %d entries, reference %d", step, len(s.Entries), len(r.Entries))
		}
		for i := range s.Entries {
			if s.Entries[i].Job != r.Entries[i].Job || s.Entries[i].Start != r.Entries[i].Start {
				t.Fatalf("step %d entry %d diverged", step, i)
			}
		}
		if step+3 < len(jobs) {
			waiting = jobs[step+1 : step+4]
		}
	}
	if st.SpecStats().Dispatched == 0 {
		t.Fatal("sequence never speculated")
	}
}
