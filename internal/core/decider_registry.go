// The decider registry: the open extension point that replaced the
// closed NewDecider switch. Deciders resolve by stable name; stateful
// deciders additionally implement StatefulDecider so the checkpoint path
// (PR 7) can round-trip their internal state by name.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dynp/internal/policy"
)

// StatefulDecider is a Decider that carries internal state across
// decisions (e.g. a learned decider's feature history). The self-tuner's
// MarshalState/UnmarshalState round-trip that state through the rms
// journal checkpoints, keyed by the decider's Name.
//
// SaveState must be deterministic — the same decider state always yields
// the same bytes — because checkpoint encodings are compared
// byte-for-byte. RestoreState is called on a freshly constructed decider
// (resolved by name from this registry) and must reject bytes it cannot
// interpret with an error rather than guessing.
type StatefulDecider interface {
	Decider
	// SaveState serialises the decider's internal state.
	SaveState() ([]byte, error)
	// RestoreState installs a previously saved state.
	RestoreState(data []byte) error
}

// deciderFamily is one registered parameterized decider family.
type deciderFamily struct {
	template string // display form for listings, e.g. "<POLICY>-preferred"
	parse    func(spec string) (Decider, bool, error)
}

var deciderRegistry = struct {
	sync.RWMutex
	byName   map[string]func() Decider
	families []deciderFamily
}{byName: make(map[string]func() Decider)}

func init() {
	MustRegisterDecider("simple", func() Decider { return Simple{} })
	MustRegisterDecider("advanced", func() Decider { return Advanced{} })
	MustRegisterDeciderFamily("<POLICY>-preferred", parsePreferred)
}

// parsePreferred claims decider specs of the form "<POLICY>-preferred"
// (e.g. "SJF-preferred"), resolving the policy through the policy
// registry. The policy part must be a registered name; its canonical
// round-trip guarantees Preferred.Name() reproduces the spec.
func parsePreferred(spec string) (Decider, bool, error) {
	pol, ok := strings.CutSuffix(spec, "-preferred")
	if !ok || pol == "" {
		return nil, false, nil
	}
	p, err := policy.Lookup(pol)
	if err != nil {
		return nil, true, fmt.Errorf("bad preferred policy: %w", err)
	}
	return Preferred{Policy: p}, true, nil
}

// RegisterDecider adds a decider constructor under a fixed name. The
// constructor is invoked once per NewDecider call, so every tuner gets a
// fresh instance — required for stateful deciders, harmless for
// stateless ones. The constructed decider's Name must equal the
// registered name (checked at registration), because the name keys
// serialized tuner state. Registering a taken name is an error.
func RegisterDecider(name string, make func() Decider) error {
	if name == "" || make == nil {
		return fmt.Errorf("core: RegisterDecider needs a name and a constructor")
	}
	d := make()
	if d == nil {
		return fmt.Errorf("core: decider constructor for %q returned nil", name)
	}
	if d.Name() != name {
		return fmt.Errorf("core: decider registered as %q reports Name %q; the names must match (they key serialized state)", name, d.Name())
	}
	deciderRegistry.Lock()
	defer deciderRegistry.Unlock()
	if _, ok := deciderRegistry.byName[name]; ok {
		return fmt.Errorf("core: decider name %q already registered", name)
	}
	deciderRegistry.byName[name] = make
	return nil
}

// MustRegisterDecider is RegisterDecider, panicking on error.
func MustRegisterDecider(name string, make func() Decider) {
	if err := RegisterDecider(name, make); err != nil {
		panic(err)
	}
}

// RegisterDeciderFamily adds a parameterized decider family. parse is
// offered every looked-up name that matches no exact registration; it
// reports whether it claims the spec, and an error when it claims a
// malformed spec. template is the display form shown by DeciderNames.
func RegisterDeciderFamily(template string, parse func(spec string) (Decider, bool, error)) error {
	if template == "" || parse == nil {
		return fmt.Errorf("core: RegisterDeciderFamily needs a template and a parser")
	}
	deciderRegistry.Lock()
	defer deciderRegistry.Unlock()
	for _, f := range deciderRegistry.families {
		if f.template == template {
			return fmt.Errorf("core: decider family %q already registered", template)
		}
	}
	deciderRegistry.families = append(deciderRegistry.families, deciderFamily{template, parse})
	return nil
}

// MustRegisterDeciderFamily is RegisterDeciderFamily, panicking on error.
func MustRegisterDeciderFamily(template string, parse func(spec string) (Decider, bool, error)) {
	if err := RegisterDeciderFamily(template, parse); err != nil {
		panic(err)
	}
}

// NewDecider constructs a decider from its registered name: exact
// registrations first ("simple", "advanced", user registrations), then
// the registered families in registration order ("<POLICY>-preferred"
// specs like "SJF-preferred"). The name must match exactly — no
// surrounding whitespace and nothing after a family suffix. Unknown
// names return an error listing what is registered.
func NewDecider(name string) (Decider, error) {
	deciderRegistry.RLock()
	make, ok := deciderRegistry.byName[name]
	families := deciderRegistry.families
	deciderRegistry.RUnlock()
	if ok {
		return make(), nil
	}
	for _, f := range families {
		d, claimed, err := f.parse(name)
		if err != nil {
			return nil, fmt.Errorf("core: decider %q: %w", name, err)
		}
		if claimed {
			if d.Name() != name {
				return nil, fmt.Errorf("core: decider family spec %q parsed to inconsistent name %q", name, d.Name())
			}
			return d, nil
		}
	}
	return nil, fmt.Errorf("core: unknown decider %q (registered: %v)", name, DeciderNames())
}

// DeciderNames lists every registered decider name in sorted order,
// followed by the templates of the registered families — the enumeration
// behind the CLIs' -list output and the daemon's "deciders" op.
func DeciderNames() []string {
	deciderRegistry.RLock()
	defer deciderRegistry.RUnlock()
	out := make([]string, 0, len(deciderRegistry.byName)+len(deciderRegistry.families))
	for name := range deciderRegistry.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	for _, f := range deciderRegistry.families {
		out = append(out, f.template)
	}
	return out
}
