package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dynp/internal/job"
	"dynp/internal/policy"
)

// countingDecider is a minimal stateful decider: it behaves like
// Advanced but counts its decisions, and round-trips the count.
type countingDecider struct {
	calls int
}

func (d *countingDecider) Name() string { return "counting" }

func (d *countingDecider) Decide(old policy.Policy, candidates []policy.Policy, values []float64) policy.Policy {
	d.calls++
	return Advanced{}.Decide(old, candidates, values)
}

func (d *countingDecider) SaveState() ([]byte, error) {
	return json.Marshal(d.calls)
}

func (d *countingDecider) RestoreState(data []byte) error {
	return json.Unmarshal(data, &d.calls)
}

func TestRegisterDecider(t *testing.T) {
	if err := RegisterDecider("counting", func() Decider { return &countingDecider{} }); err != nil {
		t.Fatalf("RegisterDecider: %v", err)
	}
	a, err := NewDecider("counting")
	if err != nil {
		t.Fatalf("NewDecider(counting): %v", err)
	}
	b, _ := NewDecider("counting")
	if a == b {
		t.Fatal("NewDecider returned a shared instance; stateful deciders need fresh ones")
	}
	// Taken names, nil constructors and name mismatches are refused.
	if err := RegisterDecider("counting", func() Decider { return &countingDecider{} }); err == nil {
		t.Fatal("duplicate RegisterDecider accepted")
	}
	if err := RegisterDecider("", func() Decider { return Simple{} }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterDecider("x", nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	if err := RegisterDecider("mismatch", func() Decider { return Simple{} }); err == nil {
		t.Fatal("constructor whose Name differs from the registered name accepted")
	}
}

func TestDeciderNamesListsBuiltinsAndFamilies(t *testing.T) {
	names := DeciderNames()
	for _, want := range []string{"simple", "advanced", "<POLICY>-preferred"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("DeciderNames() = %v, missing %q", names, want)
		}
	}
}

func TestNewDeciderPreferredWorksForRegisteredCustomPolicy(t *testing.T) {
	p := policy.MustFairSize(2, 2)
	d, err := NewDecider(p.Name() + "-preferred")
	if err != nil {
		t.Fatalf("NewDecider: %v", err)
	}
	if d.Name() != "PSBS(a=2,r=2)-preferred" {
		t.Fatalf("Name = %q", d.Name())
	}
	if pref, ok := d.(Preferred); !ok || pref.Policy != policy.Policy(p) {
		t.Fatalf("decider = %#v", d)
	}
}

func TestRegisterDeciderFamily(t *testing.T) {
	parse := func(spec string) (Decider, bool, error) {
		if !strings.HasPrefix(spec, "fam:") {
			return nil, false, nil
		}
		if spec == "fam:bad" {
			return nil, true, fmt.Errorf("bad spec")
		}
		return namedDecider{spec}, true, nil
	}
	if err := RegisterDeciderFamily("fam:<x>", parse); err != nil {
		t.Fatalf("RegisterDeciderFamily: %v", err)
	}
	if err := RegisterDeciderFamily("fam:<x>", parse); err == nil {
		t.Fatal("duplicate family accepted")
	}
	if d, err := NewDecider("fam:ok"); err != nil || d.Name() != "fam:ok" {
		t.Fatalf("family spec: %v, %v", d, err)
	}
	if _, err := NewDecider("fam:bad"); err == nil {
		t.Fatal("claimed-but-malformed family spec accepted")
	}
}

type namedDecider struct{ name string }

func (d namedDecider) Name() string { return d.name }
func (d namedDecider) Decide(old policy.Policy, candidates []policy.Policy, values []float64) policy.Policy {
	return Advanced{}.Decide(old, candidates, values)
}

// TestStatefulDeciderRoundTrip drives a tuner with a stateful decider,
// marshals its state, and restores it into a twin: the decider's
// internal state must survive the trip, and mismatched or non-stateful
// configurations must be refused.
func TestStatefulDeciderRoundTrip(t *testing.T) {
	d1 := &countingDecider{}
	st := NewSelfTuner(nil, d1, MetricSLDwA)
	st.Plan(0, 8, nil, []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)})
	st.Plan(10, 8, nil, []*job.Job{mkJob(1, 0, 1, 1000)})
	if d1.calls != 2 {
		t.Fatalf("calls = %d, want 2", d1.calls)
	}
	data, err := st.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"decider":"counting"`)) {
		t.Fatalf("state %s does not name the decider", data)
	}

	d2 := &countingDecider{}
	twin := NewSelfTuner(nil, d2, MetricSLDwA)
	if err := twin.UnmarshalState(data); err != nil {
		t.Fatal(err)
	}
	if d2.calls != 2 {
		t.Fatalf("restored calls = %d, want 2", d2.calls)
	}
	if twin.Active() != st.Active() {
		t.Fatalf("active %v != %v", twin.Active(), st.Active())
	}

	// A tuner configured with a different decider refuses the state.
	other := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	if err := other.UnmarshalState(data); err == nil || !strings.Contains(err.Error(), "counting") {
		t.Fatalf("mismatched decider accepted: %v", err)
	}
}

// TestStatelessDeciderStateBytesUnchanged pins the byte-identity of the
// checkpoint encoding for the built-in stateless deciders: the decider
// fields are omitempty, so pre-registry checkpoints decode and
// re-encode to the same bytes.
func TestStatelessDeciderStateBytesUnchanged(t *testing.T) {
	st := NewSelfTuner(nil, Advanced{}, MetricSLDwA)
	st.Plan(0, 8, nil, []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 0, 1, 10)})
	data, err := st.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("decider")) {
		t.Fatalf("stateless decider leaked into state: %s", data)
	}
}
