// Package profile implements the resource availability profile of a
// planning-based scheduler: a step function over time giving the number of
// free processors. Placing every waiting job at the earliest interval that
// can hold its width for its full estimated run time yields the implicit
// backfilling the paper attributes to planning-based resource management
// systems ([6] in the paper).
//
// The step function is stored as an indexed sequence: steps are grouped
// into bounded chunks, and every chunk carries min/max aggregates of its
// free counts plus a lazy pending delta that applies to the whole chunk.
// The chunk directory is an implicit interval index over the step array —
// a branching-factor-B tree of depth two. EarliestFit descends it by
// skipping whole chunks whose aggregates prove them irrelevant, Alloc
// applies its range subtraction to interior chunks as one lazy delta, and
// boundary splits shift at most one chunk instead of the whole step array.
// The observable step function — and therefore every schedule built on it
// — is identical to the flat-array implementation kept as Linear; only the
// costs differ (see DESIGN.md §11 for the complexity table).
package profile

import "fmt"

// step is one piece of the step function: free processors are available
// from Time (inclusive) until the time of the next step (exclusive). The
// last step extends to infinity. Within a chunk the stored free count is
// relative to the chunk's pending delta: the effective value is
// step.free + chunk.add.
type step struct {
	time int64
	free int
}

// chunkMax is the split threshold: a chunk reaching this many steps is
// halved. It is a variable only so white-box tests can shrink it to force
// deep chunk structures on small inputs; production code never writes it.
var chunkMax = 64

// chunk is one bounded run of consecutive steps with its aggregates.
// first mirrors steps[0].time so the chunk directory can be binary-searched
// without touching the step storage; it is fixed at chunk creation, because
// boundary insertion always lands at index >= 1.
type chunk struct {
	first int64  // == steps[0].time
	min   int    // min of steps[].free (excluding add)
	max   int    // max of steps[].free (excluding add)
	add   int    // lazy delta: effective free of every step is free+add
	steps []step // non-empty; times strictly increasing
}

// recompute rebuilds the min/max aggregates from the raw step frees.
func (c *chunk) recompute() {
	mn, mx := c.steps[0].free, c.steps[0].free
	for _, s := range c.steps[1:] {
		if s.free < mn {
			mn = s.free
		}
		if s.free > mx {
			mx = s.free
		}
	}
	c.min, c.max = mn, mx
}

// Profile is a free-processor timeline. Create one with New; the zero
// value is not usable.
type Profile struct {
	capacity int
	chunks   []chunk
}

// New returns a profile for a machine with the given capacity where all
// processors are free from time start onwards. It panics if capacity < 1.
func New(capacity int, start int64) *Profile {
	p := &Profile{}
	p.Reset(capacity, start)
	return p
}

// Capacity returns the machine capacity the profile was built with.
func (p *Profile) Capacity() int { return p.capacity }

// Start returns the first instant covered by the profile.
func (p *Profile) Start() int64 { return p.chunks[0].first }

// FreeAt returns the number of free processors at time t. It panics when t
// precedes the profile start: the profile carries no information about the
// past, so asking for it is a scheduler bug (the same contract as
// EarliestFit and Alloc).
func (p *Profile) FreeAt(t int64) int {
	if t < p.Start() {
		panic(fmt.Sprintf("profile: time %d precedes profile start %d", t, p.Start()))
	}
	ci, si := p.locate(t)
	c := &p.chunks[ci]
	return c.steps[si].free + c.add
}

// locate returns the chunk and step index of the step covering time t (the
// last step whose time is <= t), clamping to the first step when t
// precedes the profile. Both levels are binary searches, so a lookup is
// O(log S) for S steps.
func (p *Profile) locate(t int64) (int, int) {
	ci := 0
	if len(p.chunks) > 1 && p.chunks[1].first <= t {
		lo, hi := 1, len(p.chunks)
		for lo < hi {
			mid := (lo + hi) / 2
			if p.chunks[mid].first <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ci = lo - 1
	}
	si := searchSteps(p.chunks[ci].steps, t)
	if si < 0 {
		si = 0
	}
	return ci, si
}

// EarliestFit returns the earliest time >= earliest at which width
// processors are free for the whole interval [t, t+duration). It panics if
// width exceeds the capacity, the arguments are non-positive, or earliest
// precedes the profile start — the profile carries no information about
// the past, so asking for it is a scheduler bug.
//
// The search walks candidate steps exactly like the linear scan did —
// candidates are steps with enough free processors, a candidate is
// accepted when no blocking step interrupts its window, and a rejected
// candidate resumes after its first blocker — but every advance skips
// whole chunks via the min/max aggregates, so each blocking interval costs
// O(B + S/B) instead of O(S).
func (p *Profile) EarliestFit(earliest int64, width int, duration int64) int64 {
	p.check(earliest, width, duration)
	_, _, start, _, _ := p.earliestFitPos(earliest, width, duration)
	return start
}

// earliestFitPos is EarliestFit returning also the positions of the steps
// covering the chosen start and its interval end, so Place can reuse the
// search instead of re-locating the interval for the reservation.
func (p *Profile) earliestFitPos(earliest int64, width int, duration int64) (ci, si int, start int64, eci, esi int) {
	ci, si = p.locate(earliest)
	ci, si, ok := p.nextFit(ci, si, width)
	for {
		if !ok {
			last := &p.chunks[len(p.chunks)-1]
			panic(fmt.Sprintf("profile: no fit for width %d after final step (free %d)",
				width, last.steps[len(last.steps)-1].free+last.add))
		}
		start = p.chunks[ci].steps[si].time
		if start < earliest {
			start = earliest
		}
		bci, bsi, blocked := p.firstBlocking(ci, si, start+duration, width)
		if !blocked {
			return ci, si, start, bci, bsi
		}
		// Resume at the first fitting step after the blocker (the linear
		// scan's i = j; i++ followed by skipping unfit steps).
		ci, si, ok = p.stepAfter(bci, bsi)
		if ok {
			ci, si, ok = p.nextFit(ci, si, width)
		}
	}
}

// nextFit returns the first position at or after (ci, si) whose effective
// free count is at least width, skipping whole chunks via the max
// aggregate.
func (p *Profile) nextFit(ci, si, width int) (int, int, bool) {
	c := &p.chunks[ci]
	if need := width - c.add; c.max >= need {
		steps := c.steps
		for ; si < len(steps); si++ {
			if steps[si].free >= need {
				return ci, si, true
			}
		}
	}
	for ci++; ci < len(p.chunks); ci++ {
		c := &p.chunks[ci]
		need := width - c.add
		if c.max < need {
			continue
		}
		steps := c.steps
		for si := range steps {
			if steps[si].free >= need {
				return ci, si, true
			}
		}
	}
	return 0, 0, false
}

// firstBlocking returns the first position strictly after (ci, si) whose
// step begins before end and has fewer than width processors free,
// skipping whole chunks via the min aggregate. When nothing blocks, the
// returned position is instead the step covering end (the last step with
// time <= end): the scan walks past end anyway, so the caller gets the
// interval's end boundary position for free.
func (p *Profile) firstBlocking(ci, si int, end int64, width int) (int, int, bool) {
	c := &p.chunks[ci]
	need := width - c.add
	steps := c.steps
	for j := si + 1; j < len(steps); j++ {
		if steps[j].time >= end {
			if steps[j].time == end {
				return ci, j, false
			}
			return ci, j - 1, false
		}
		if steps[j].free < need {
			return ci, j, true
		}
	}
	for ci++; ci < len(p.chunks); ci++ {
		c := &p.chunks[ci]
		if c.first >= end {
			if c.first == end {
				return ci, 0, false
			}
			return ci - 1, len(p.chunks[ci-1].steps) - 1, false
		}
		need := width - c.add
		steps := c.steps
		if c.min >= need {
			if steps[len(steps)-1].time < end {
				continue
			}
			return ci, searchSteps(steps, end), false
		}
		// c.first < end, so a scan hit at j has j >= 1 and j-1 in range.
		for j := range steps {
			if steps[j].time >= end {
				if steps[j].time == end {
					return ci, j, false
				}
				return ci, j - 1, false
			}
			if steps[j].free < need {
				return ci, j, true
			}
		}
	}
	return len(p.chunks) - 1, len(p.chunks[len(p.chunks)-1].steps) - 1, false
}

// stepAfter returns the position following (ci, si), or false at the final
// step.
func (p *Profile) stepAfter(ci, si int) (int, int, bool) {
	if si+1 < len(p.chunks[ci].steps) {
		return ci, si + 1, true
	}
	if ci+1 < len(p.chunks) {
		return ci + 1, 0, true
	}
	return 0, 0, false
}

// Alloc reserves width processors over [start, start+duration). The caller
// must have obtained start from EarliestFit (or otherwise guarantee the
// interval fits); Alloc panics when the reservation would drive any step
// negative, as that indicates a scheduler bug. It also panics when start
// precedes the profile start: the steps before the profile begin are not
// represented, so such a reservation would be silently clipped to
// [p.Start(), start+duration) — a shrunken reservation the caller never
// asked for.
//
// After the two boundary splits, interior chunks absorb the subtraction as
// one lazy delta each; only the two boundary chunks touch individual
// steps, so the cost is O(B + S/B) instead of O(S).
func (p *Profile) Alloc(start int64, width int, duration int64) {
	p.check(start, width, duration)
	end := start + duration
	ci, si := p.splitRange(start, end)
	p.subtractRange(ci, si, end, width)
}

// subtractRange subtracts width from every step in [position, end), where
// (ci, si) is the position of the step at the interval start and boundaries
// at both ends already exist. Interior chunks absorb the subtraction as one
// lazy delta each; only the boundary chunks touch individual steps.
func (p *Profile) subtractRange(ci, si int, end int64, width int) {
	for ci < len(p.chunks) {
		c := &p.chunks[ci]
		if si == 0 && c.steps[len(c.steps)-1].time < end {
			// Every step of the chunk lies inside [start, end): subtract
			// lazily. The raw aggregates stay valid because effective
			// values are read through the delta.
			c.add -= width
			if c.min+c.add < 0 {
				p.panicNegative(c, width)
			}
			ci++
			continue
		}
		// A boundary chunk: subtract from the steps inside [start, end)
		// only, keeping the aggregates exact without a full-chunk rescan.
		// Lowering values can only lower the chunk minimum, and it comes
		// from a modified step, so min updates in place; the maximum needs
		// a rescan only when the old maximum sat inside the range.
		touchedMax := false
		for ; si < len(c.steps) && c.steps[si].time < end; si++ {
			s := &c.steps[si]
			if s.free == c.max {
				touchedMax = true
			}
			s.free -= width
			if s.free+c.add < 0 {
				panic(fmt.Sprintf("profile: over-allocation at t=%d: %d free after placing width %d",
					s.time, s.free+c.add, width))
			}
			if s.free < c.min {
				c.min = s.free
			}
		}
		if touchedMax {
			mx := c.steps[0].free
			for _, s := range c.steps[1:] {
				if s.free > mx {
					mx = s.free
				}
			}
			c.max = mx
		}
		if si < len(c.steps) {
			return // the step at or past end lives here; nothing follows
		}
		ci, si = ci+1, 0
	}
}

// panicNegative reports the earliest step of a lazily-updated chunk that
// the subtraction drove negative, matching the per-step panic message.
func (p *Profile) panicNegative(c *chunk, width int) {
	for _, s := range c.steps {
		if s.free+c.add < 0 {
			panic(fmt.Sprintf("profile: over-allocation at t=%d: %d free after placing width %d",
				s.time, s.free+c.add, width))
		}
	}
	panic("profile: negative chunk minimum with no negative step")
}

// Place combines EarliestFit and Alloc: it reserves width processors for
// duration at the earliest feasible time >= earliest and returns the chosen
// start time. The fit search already walks to the chosen start, so Place
// threads that position through to the reservation instead of re-locating
// the interval from the root like an EarliestFit + Alloc pair would.
func (p *Profile) Place(earliest int64, width int, duration int64) int64 {
	p.check(earliest, width, duration)
	ci, si, start, eci, esi := p.earliestFitPos(earliest, width, duration)
	end := start + duration
	// Boundary at end first, at the position the fit search already found;
	// doing it before the start boundary keeps (ci, si) valid except when
	// the insertion halves start's own chunk.
	if p.chunks[eci].steps[esi].time != end {
		nChunks := len(p.chunks)
		p.insertStep(eci, esi, end)
		if len(p.chunks) != nChunks && eci == ci {
			if half := len(p.chunks[ci].steps); si >= half {
				ci, si = ci+1, si-half
			}
		}
	}
	if p.chunks[ci].steps[si].time != start {
		ci, si = p.insertStep(ci, si, start)
	}
	p.subtractRange(ci, si, end, width)
	return start
}

// splitAt ensures a step boundary exists exactly at time t, so that a
// subsequent in-place modification of [start, end) only touches whole
// steps, and returns the position of the step at t (the first step when t
// is at or before the profile start, which needs no boundary). The
// insertion shifts at most one chunk's steps; a chunk reaching chunkMax
// steps is halved, so no operation ever memmoves the whole step sequence.
func (p *Profile) splitAt(t int64) (int, int) {
	if t <= p.Start() {
		return 0, 0
	}
	ci, si := p.locate(t)
	if p.chunks[ci].steps[si].time == t {
		return ci, si
	}
	return p.insertStep(ci, si, t)
}

// splitRange ensures step boundaries exist at both start and end and
// returns the position of the step at start. The directory search for end
// is reused for start when both times land in the same chunk — the common
// case for allocation-sized intervals — so most calls cost one two-level
// search plus one in-chunk search.
func (p *Profile) splitRange(start, end int64) (int, int) {
	ce, _ := p.splitAt(end)
	if start <= p.Start() {
		return 0, 0
	}
	var ci, si int
	if c := &p.chunks[ce]; c.first <= start {
		ci, si = ce, searchSteps(c.steps, start)
	} else {
		ci, si = p.locate(start)
	}
	if p.chunks[ci].steps[si].time == start {
		return ci, si
	}
	return p.insertStep(ci, si, start)
}

// searchSteps returns the index of the last step with time <= t; the
// caller guarantees steps[0].time <= t.
func searchSteps(steps []step, t int64) int {
	lo, hi := 0, len(steps)
	for lo < hi {
		mid := (lo + hi) / 2
		if steps[mid].time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// insertStep inserts a boundary at time t directly after position (ci, si)
// — the step covering t — and returns the new step's position. The new
// step duplicates an existing free count, so the aggregates hold; a chunk
// reaching chunkMax steps is halved.
func (p *Profile) insertStep(ci, si int, t int64) (int, int) {
	c := &p.chunks[ci]
	c.steps = append(c.steps, step{})
	copy(c.steps[si+2:], c.steps[si+1:])
	c.steps[si+1] = step{time: t, free: c.steps[si].free}
	si++
	if len(c.steps) >= chunkMax {
		p.splitChunk(ci)
		if half := len(p.chunks[ci].steps); si >= half {
			return ci + 1, si - half
		}
	}
	return ci, si
}

// splitChunk halves chunk ci, inserting the upper half after it. Retired
// chunk storage parked beyond len(p.chunks) is revived for the new chunk,
// so pooled profiles split without allocating in the steady state.
func (p *Profile) splitChunk(ci int) {
	p.insertChunkAt(ci + 1)
	lo, hi := &p.chunks[ci], &p.chunks[ci+1]
	half := len(lo.steps) / 2
	hi.steps = append(hi.steps[:0], lo.steps[half:]...)
	hi.first = hi.steps[0].time
	hi.add = lo.add
	lo.steps = lo.steps[:half]
	lo.recompute()
	hi.recompute()
}

// insertChunkAt opens a slot at index at, reusing the step storage of a
// retired chunk parked between len and cap when one exists.
func (p *Profile) insertChunkAt(at int) {
	n := len(p.chunks)
	var spare []step
	if n < cap(p.chunks) {
		p.chunks = p.chunks[:n+1]
		spare = p.chunks[n].steps
	} else {
		p.chunks = append(p.chunks, chunk{})
	}
	copy(p.chunks[at+1:], p.chunks[at:n])
	p.chunks[at] = chunk{steps: spare[:0]}
}

func (p *Profile) check(start int64, width int, duration int64) {
	if start < p.Start() {
		panic(fmt.Sprintf("profile: time %d precedes profile start %d", start, p.Start()))
	}
	if width < 1 || width > p.capacity {
		panic(fmt.Sprintf("profile: width %d out of [1, %d]", width, p.capacity))
	}
	if duration < 1 {
		panic(fmt.Sprintf("profile: duration %d < 1", duration))
	}
}

// Steps returns a copy of the step function as parallel slices of times
// and free counts, mainly for tests and debugging output. The sequence is
// identical to the one the flat-array implementation would hold, including
// redundant equal-valued neighbours left behind by Alloc boundaries.
func (p *Profile) Steps() (times []int64, free []int) {
	n := 0
	for i := range p.chunks {
		n += len(p.chunks[i].steps)
	}
	times = make([]int64, 0, n)
	free = make([]int, 0, n)
	for i := range p.chunks {
		c := &p.chunks[i]
		for _, s := range c.steps {
			times = append(times, s.time)
			free = append(free, s.free+c.add)
		}
	}
	return times, free
}

// Clone returns an independent deep copy of the profile.
func (p *Profile) Clone() *Profile {
	c := &Profile{}
	p.CloneInto(c)
	return c
}

// CloneInto makes dst an independent deep copy of p, reusing dst's chunk
// and step storage when it is large enough. A zero-value dst is valid.
// This is the allocation-lean sibling of Clone: a pooled destination
// reaches a steady state where cloning allocates nothing.
func (p *Profile) CloneInto(dst *Profile) {
	dst.capacity = p.capacity
	dst.resizeChunks(len(p.chunks))
	for i := range p.chunks {
		src, d := &p.chunks[i], &dst.chunks[i]
		d.first, d.min, d.max, d.add = src.first, src.min, src.max, src.add
		d.steps = append(d.steps[:0], src.steps...)
	}
}

// resizeChunks sets len(p.chunks) to n, keeping retired chunks' step
// storage reachable between len and cap so later growth and chunk splits
// can revive it instead of allocating.
func (p *Profile) resizeChunks(n int) {
	if cap(p.chunks) >= n {
		p.chunks = p.chunks[:n]
		return
	}
	grown := make([]chunk, n)
	copy(grown, p.chunks[:cap(p.chunks)])
	p.chunks = grown
}

// Reset reinitialises p to a machine with the given capacity where all
// processors are free from start onwards, reusing the storage. A
// zero-value p is valid. It panics if capacity < 1, like New.
func (p *Profile) Reset(capacity int, start int64) {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	p.capacity = capacity
	p.resizeChunks(1)
	c := &p.chunks[0]
	c.steps = append(c.steps[:0], step{time: start, free: capacity})
	c.first, c.min, c.max, c.add = start, capacity, capacity, 0
}

// EqualFrom reports whether p and o describe the same free-processor step
// function over [from, infinity) and share the same capacity. Redundant
// steps (adjacent steps with equal free counts, which Alloc can leave
// behind) do not affect the result: the comparison is semantic, not
// representational. Both profiles must cover from (i.e. from must not
// precede either profile's start).
func (p *Profile) EqualFrom(o *Profile, from int64) bool {
	if p.capacity != o.capacity {
		return false
	}
	if from < p.Start() || from < o.Start() {
		panic(fmt.Sprintf("profile: EqualFrom(%d) precedes a profile start (%d, %d)",
			from, p.Start(), o.Start()))
	}
	pc, ps := p.locate(from)
	oc, os := o.locate(from)
	for {
		if p.effFree(pc, ps) != o.effFree(oc, os) {
			return false
		}
		// Advance both to their next effective value change; every step
		// behind the locate position has time > from.
		npc, nps, iok := p.nextChange(pc, ps)
		noc, nos, jok := o.nextChange(oc, os)
		if iok != jok {
			return false
		}
		if !iok {
			return true
		}
		if p.chunks[npc].steps[nps].time != o.chunks[noc].steps[nos].time {
			return false
		}
		pc, ps, oc, os = npc, nps, noc, nos
	}
}

// effFree returns the effective free count at a position.
func (p *Profile) effFree(ci, si int) int {
	c := &p.chunks[ci]
	return c.steps[si].free + c.add
}

// nextChange returns the position of the first step after (ci, si) whose
// effective free count differs from that step's, skipping redundant
// equal-valued steps — and skipping whole uniform chunks via the min/max
// aggregates.
func (p *Profile) nextChange(ci, si int) (int, int, bool) {
	cur := p.effFree(ci, si)
	c := &p.chunks[ci]
	for k := si + 1; k < len(c.steps); k++ {
		if c.steps[k].free+c.add != cur {
			return ci, k, true
		}
	}
	for ci++; ci < len(p.chunks); ci++ {
		c := &p.chunks[ci]
		if c.min == c.max && c.min+c.add == cur {
			continue
		}
		for k := range c.steps {
			if c.steps[k].free+c.add != cur {
				return ci, k, true
			}
		}
	}
	return 0, 0, false
}

// CheckInvariants verifies the indexed representation against its own
// definition: chunks are non-empty, step times strictly increase across
// the whole sequence, every chunk's min/max aggregates equal the values
// recomputed from its raw steps, and every effective free count lies in
// [0, capacity]. Tests call it after mutation sequences; production code
// never needs to.
func (p *Profile) CheckInvariants() error {
	if p.capacity < 1 {
		return fmt.Errorf("profile: capacity %d < 1", p.capacity)
	}
	if len(p.chunks) == 0 {
		return fmt.Errorf("profile: no chunks")
	}
	first := true
	var prev int64
	for ci := range p.chunks {
		c := &p.chunks[ci]
		if len(c.steps) == 0 {
			return fmt.Errorf("profile: chunk %d is empty", ci)
		}
		if c.first != c.steps[0].time {
			return fmt.Errorf("profile: chunk %d caches first time %d, steps say %d",
				ci, c.first, c.steps[0].time)
		}
		mn, mx := c.steps[0].free, c.steps[0].free
		for si, s := range c.steps {
			if !first && s.time <= prev {
				return fmt.Errorf("profile: step time %d at chunk %d step %d not after %d",
					s.time, ci, si, prev)
			}
			first, prev = false, s.time
			if eff := s.free + c.add; eff < 0 || eff > p.capacity {
				return fmt.Errorf("profile: effective free %d at t=%d out of [0, %d]",
					eff, s.time, p.capacity)
			}
			if s.free < mn {
				mn = s.free
			}
			if s.free > mx {
				mx = s.free
			}
		}
		if mn != c.min || mx != c.max {
			return fmt.Errorf("profile: chunk %d aggregates (%d, %d) differ from recomputed (%d, %d)",
				ci, c.min, c.max, mn, mx)
		}
	}
	return nil
}

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	s := fmt.Sprintf("profile(cap=%d", p.capacity)
	for i := range p.chunks {
		c := &p.chunks[i]
		for _, st := range c.steps {
			s += fmt.Sprintf(" [%d:%d]", st.time, st.free+c.add)
		}
	}
	return s + ")"
}
