// Package profile implements the resource availability profile of a
// planning-based scheduler: a step function over time giving the number of
// free processors. Placing every waiting job at the earliest interval that
// can hold its width for its full estimated run time yields the implicit
// backfilling the paper attributes to planning-based resource management
// systems ([6] in the paper).
package profile

import "fmt"

// step is one piece of the step function: free processors are available
// from Time (inclusive) until the time of the next step (exclusive). The
// last step extends to infinity.
type step struct {
	time int64
	free int
}

// Profile is a free-processor timeline. Create one with New; the zero
// value is not usable.
type Profile struct {
	capacity int
	steps    []step
}

// New returns a profile for a machine with the given capacity where all
// processors are free from time start onwards. It panics if capacity < 1.
func New(capacity int, start int64) *Profile {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	return &Profile{
		capacity: capacity,
		steps:    []step{{time: start, free: capacity}},
	}
}

// Capacity returns the machine capacity the profile was built with.
func (p *Profile) Capacity() int { return p.capacity }

// Start returns the first instant covered by the profile.
func (p *Profile) Start() int64 { return p.steps[0].time }

// FreeAt returns the number of free processors at time t. Times before the
// profile start report the free count of the first step.
func (p *Profile) FreeAt(t int64) int {
	i := p.find(t)
	return p.steps[i].free
}

// find returns the index of the step covering time t (the last step whose
// time is <= t), or 0 when t precedes the profile.
func (p *Profile) find(t int64) int {
	lo, hi := 0, len(p.steps)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.steps[mid].time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// EarliestFit returns the earliest time >= earliest at which width
// processors are free for the whole interval [t, t+duration). It panics if
// width exceeds the capacity, the arguments are non-positive, or earliest
// precedes the profile start — the profile carries no information about
// the past, so asking for it is a scheduler bug.
func (p *Profile) EarliestFit(earliest int64, width int, duration int64) int64 {
	p.check(earliest, width, duration)
	i := p.find(earliest)
	for {
		// Candidate start: beginning of step i, but not before earliest.
		start := p.steps[i].time
		if start < earliest {
			start = earliest
		}
		if p.steps[i].free >= width {
			end := start + duration
			ok := true
			for j := i + 1; j < len(p.steps) && p.steps[j].time < end; j++ {
				if p.steps[j].free < width {
					// Blocked: resume the search at the blocking step.
					i = j
					ok = false
					break
				}
			}
			if ok {
				return start
			}
		}
		i++
		if i >= len(p.steps) {
			// The final step extends to infinity; it must fit there
			// because free equals capacity eventually only if no job
			// runs forever — the final step's free count is whatever
			// remained, so guard against an impossible width.
			panic(fmt.Sprintf("profile: no fit for width %d after final step (free %d)",
				width, p.steps[len(p.steps)-1].free))
		}
	}
}

// Alloc reserves width processors over [start, start+duration). The caller
// must have obtained start from EarliestFit (or otherwise guarantee the
// interval fits); Alloc panics when the reservation would drive any step
// negative, as that indicates a scheduler bug. It also panics when start
// precedes the profile start: the steps before the profile begin are not
// represented, so such a reservation would be silently clipped to
// [p.Start(), start+duration) — a shrunken reservation the caller never
// asked for.
func (p *Profile) Alloc(start int64, width int, duration int64) {
	p.check(start, width, duration)
	end := start + duration
	p.splitAt(start)
	p.splitAt(end)
	for i := p.find(start); i < len(p.steps) && p.steps[i].time < end; i++ {
		p.steps[i].free -= width
		if p.steps[i].free < 0 {
			panic(fmt.Sprintf("profile: over-allocation at t=%d: %d free after placing width %d",
				p.steps[i].time, p.steps[i].free, width))
		}
	}
}

// Place combines EarliestFit and Alloc: it reserves width processors for
// duration at the earliest feasible time >= earliest and returns the chosen
// start time.
func (p *Profile) Place(earliest int64, width int, duration int64) int64 {
	start := p.EarliestFit(earliest, width, duration)
	p.Alloc(start, width, duration)
	return start
}

// splitAt ensures a step boundary exists exactly at time t, so that a
// subsequent in-place modification of [start, end) only touches whole
// steps. Times at or before the profile start are ignored.
func (p *Profile) splitAt(t int64) {
	if t <= p.steps[0].time {
		return
	}
	i := p.find(t)
	if p.steps[i].time == t {
		return
	}
	p.steps = append(p.steps, step{})
	copy(p.steps[i+2:], p.steps[i+1:])
	p.steps[i+1] = step{time: t, free: p.steps[i].free}
}

func (p *Profile) check(start int64, width int, duration int64) {
	if start < p.steps[0].time {
		panic(fmt.Sprintf("profile: time %d precedes profile start %d", start, p.steps[0].time))
	}
	if width < 1 || width > p.capacity {
		panic(fmt.Sprintf("profile: width %d out of [1, %d]", width, p.capacity))
	}
	if duration < 1 {
		panic(fmt.Sprintf("profile: duration %d < 1", duration))
	}
}

// Steps returns a copy of the internal step function as parallel slices of
// times and free counts, mainly for tests and debugging output.
func (p *Profile) Steps() (times []int64, free []int) {
	times = make([]int64, len(p.steps))
	free = make([]int, len(p.steps))
	for i, s := range p.steps {
		times[i] = s.time
		free[i] = s.free
	}
	return times, free
}

// Clone returns an independent deep copy of the profile.
func (p *Profile) Clone() *Profile {
	return &Profile{
		capacity: p.capacity,
		steps:    append([]step(nil), p.steps...),
	}
}

// CloneInto makes dst an independent deep copy of p, reusing dst's step
// storage when it is large enough. A zero-value dst is valid. This is the
// allocation-lean sibling of Clone: a pooled destination reaches a steady
// state where cloning allocates nothing.
func (p *Profile) CloneInto(dst *Profile) {
	dst.capacity = p.capacity
	dst.steps = append(dst.steps[:0], p.steps...)
}

// Reset reinitialises p to a machine with the given capacity where all
// processors are free from start onwards, reusing the step storage. A
// zero-value p is valid. It panics if capacity < 1, like New.
func (p *Profile) Reset(capacity int, start int64) {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	p.capacity = capacity
	p.steps = append(p.steps[:0], step{time: start, free: capacity})
}

// EqualFrom reports whether p and o describe the same free-processor step
// function over [from, infinity) and share the same capacity. Redundant
// steps (adjacent steps with equal free counts, which Alloc can leave
// behind) do not affect the result: the comparison is semantic, not
// representational. Both profiles must cover from (i.e. from must not
// precede either profile's start).
func (p *Profile) EqualFrom(o *Profile, from int64) bool {
	if p.capacity != o.capacity {
		return false
	}
	if from < p.steps[0].time || from < o.steps[0].time {
		panic(fmt.Sprintf("profile: EqualFrom(%d) precedes a profile start (%d, %d)",
			from, p.steps[0].time, o.steps[0].time))
	}
	i, j := p.find(from), o.find(from)
	for {
		if p.steps[i].free != o.steps[j].free {
			return false
		}
		// Advance both to their next effective value change; every step
		// behind index find(from) has time > from.
		ni, iok := p.nextChange(i)
		nj, jok := o.nextChange(j)
		if iok != jok {
			return false
		}
		if !iok {
			return true
		}
		if p.steps[ni].time != o.steps[nj].time {
			return false
		}
		i, j = ni, nj
	}
}

// nextChange returns the index of the first step after i whose free count
// differs from step i's, skipping redundant equal-valued steps.
func (p *Profile) nextChange(i int) (int, bool) {
	cur := p.steps[i].free
	for k := i + 1; k < len(p.steps); k++ {
		if p.steps[k].free != cur {
			return k, true
		}
	}
	return 0, false
}

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	s := fmt.Sprintf("profile(cap=%d", p.capacity)
	for _, st := range p.steps {
		s += fmt.Sprintf(" [%d:%d]", st.time, st.free)
	}
	return s + ")"
}
