// Package profile implements the resource availability profile of a
// planning-based scheduler: a step function over time giving the number of
// free processors. Placing every waiting job at the earliest interval that
// can hold its width for its full estimated run time yields the implicit
// backfilling the paper attributes to planning-based resource management
// systems ([6] in the paper).
package profile

import "fmt"

// step is one piece of the step function: free processors are available
// from Time (inclusive) until the time of the next step (exclusive). The
// last step extends to infinity.
type step struct {
	time int64
	free int
}

// Profile is a free-processor timeline. Create one with New; the zero
// value is not usable.
type Profile struct {
	capacity int
	steps    []step
}

// New returns a profile for a machine with the given capacity where all
// processors are free from time start onwards. It panics if capacity < 1.
func New(capacity int, start int64) *Profile {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	return &Profile{
		capacity: capacity,
		steps:    []step{{time: start, free: capacity}},
	}
}

// Capacity returns the machine capacity the profile was built with.
func (p *Profile) Capacity() int { return p.capacity }

// Start returns the first instant covered by the profile.
func (p *Profile) Start() int64 { return p.steps[0].time }

// FreeAt returns the number of free processors at time t. Times before the
// profile start report the free count of the first step.
func (p *Profile) FreeAt(t int64) int {
	i := p.find(t)
	return p.steps[i].free
}

// find returns the index of the step covering time t (the last step whose
// time is <= t), or 0 when t precedes the profile.
func (p *Profile) find(t int64) int {
	lo, hi := 0, len(p.steps)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.steps[mid].time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// EarliestFit returns the earliest time >= earliest at which width
// processors are free for the whole interval [t, t+duration). It panics if
// width exceeds the capacity or the arguments are non-positive.
func (p *Profile) EarliestFit(earliest int64, width int, duration int64) int64 {
	p.check(width, duration)
	if earliest < p.steps[0].time {
		earliest = p.steps[0].time
	}
	i := p.find(earliest)
	for {
		// Candidate start: beginning of step i, but not before earliest.
		start := p.steps[i].time
		if start < earliest {
			start = earliest
		}
		if p.steps[i].free >= width {
			end := start + duration
			ok := true
			for j := i + 1; j < len(p.steps) && p.steps[j].time < end; j++ {
				if p.steps[j].free < width {
					// Blocked: resume the search at the blocking step.
					i = j
					ok = false
					break
				}
			}
			if ok {
				return start
			}
		}
		i++
		if i >= len(p.steps) {
			// The final step extends to infinity; it must fit there
			// because free equals capacity eventually only if no job
			// runs forever — the final step's free count is whatever
			// remained, so guard against an impossible width.
			panic(fmt.Sprintf("profile: no fit for width %d after final step (free %d)",
				width, p.steps[len(p.steps)-1].free))
		}
	}
}

// Alloc reserves width processors over [start, start+duration). The caller
// must have obtained start from EarliestFit (or otherwise guarantee the
// interval fits); Alloc panics when the reservation would drive any step
// negative, as that indicates a scheduler bug.
func (p *Profile) Alloc(start int64, width int, duration int64) {
	p.check(width, duration)
	end := start + duration
	p.splitAt(start)
	p.splitAt(end)
	for i := p.find(start); i < len(p.steps) && p.steps[i].time < end; i++ {
		p.steps[i].free -= width
		if p.steps[i].free < 0 {
			panic(fmt.Sprintf("profile: over-allocation at t=%d: %d free after placing width %d",
				p.steps[i].time, p.steps[i].free, width))
		}
	}
}

// Place combines EarliestFit and Alloc: it reserves width processors for
// duration at the earliest feasible time >= earliest and returns the chosen
// start time.
func (p *Profile) Place(earliest int64, width int, duration int64) int64 {
	start := p.EarliestFit(earliest, width, duration)
	p.Alloc(start, width, duration)
	return start
}

// splitAt ensures a step boundary exists exactly at time t, so that a
// subsequent in-place modification of [start, end) only touches whole
// steps. Times at or before the profile start are ignored.
func (p *Profile) splitAt(t int64) {
	if t <= p.steps[0].time {
		return
	}
	i := p.find(t)
	if p.steps[i].time == t {
		return
	}
	p.steps = append(p.steps, step{})
	copy(p.steps[i+2:], p.steps[i+1:])
	p.steps[i+1] = step{time: t, free: p.steps[i].free}
}

func (p *Profile) check(width int, duration int64) {
	if width < 1 || width > p.capacity {
		panic(fmt.Sprintf("profile: width %d out of [1, %d]", width, p.capacity))
	}
	if duration < 1 {
		panic(fmt.Sprintf("profile: duration %d < 1", duration))
	}
}

// Steps returns a copy of the internal step function as parallel slices of
// times and free counts, mainly for tests and debugging output.
func (p *Profile) Steps() (times []int64, free []int) {
	times = make([]int64, len(p.steps))
	free = make([]int, len(p.steps))
	for i, s := range p.steps {
		times[i] = s.time
		free[i] = s.free
	}
	return times, free
}

// Clone returns an independent deep copy of the profile.
func (p *Profile) Clone() *Profile {
	return &Profile{
		capacity: p.capacity,
		steps:    append([]step(nil), p.steps...),
	}
}

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	s := fmt.Sprintf("profile(cap=%d", p.capacity)
	for _, st := range p.steps {
		s += fmt.Sprintf(" [%d:%d]", st.time, st.free)
	}
	return s + ")"
}
