// Linear is the pre-index flat-array availability profile, kept verbatim
// as a differential oracle and benchmarking baseline for the indexed
// Profile. Every operation has the same contract as Profile's — including
// the pre-start panics — but the costs are the original ones: EarliestFit
// scans the step array linearly and splitAt memmoves the whole tail, so
// EarliestFit and Alloc are O(S) in the number of steps. Production code
// must use Profile; Linear exists for FuzzProfileVsReference, the
// step-for-step property tests, and cmd/benchsim's before/after rows.

package profile

import "fmt"

// Linear is a free-processor timeline backed by a flat step array. Create
// one with NewLinear; the zero value is not usable.
type Linear struct {
	capacity int
	steps    []step
}

// NewLinear returns a linear profile for a machine with the given capacity
// where all processors are free from time start onwards. It panics if
// capacity < 1.
func NewLinear(capacity int, start int64) *Linear {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	return &Linear{
		capacity: capacity,
		steps:    []step{{time: start, free: capacity}},
	}
}

// Capacity returns the machine capacity the profile was built with.
func (p *Linear) Capacity() int { return p.capacity }

// Start returns the first instant covered by the profile.
func (p *Linear) Start() int64 { return p.steps[0].time }

// FreeAt returns the number of free processors at time t. It panics when t
// precedes the profile start, matching Profile.FreeAt.
func (p *Linear) FreeAt(t int64) int {
	if t < p.steps[0].time {
		panic(fmt.Sprintf("profile: time %d precedes profile start %d", t, p.steps[0].time))
	}
	return p.steps[p.find(t)].free
}

// find returns the index of the step covering time t (the last step whose
// time is <= t), or 0 when t precedes the profile.
func (p *Linear) find(t int64) int {
	lo, hi := 0, len(p.steps)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.steps[mid].time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// EarliestFit returns the earliest time >= earliest at which width
// processors are free for the whole interval [t, t+duration), scanning the
// step array linearly.
func (p *Linear) EarliestFit(earliest int64, width int, duration int64) int64 {
	p.check(earliest, width, duration)
	i := p.find(earliest)
	for {
		// Candidate start: beginning of step i, but not before earliest.
		start := p.steps[i].time
		if start < earliest {
			start = earliest
		}
		if p.steps[i].free >= width {
			end := start + duration
			ok := true
			for j := i + 1; j < len(p.steps) && p.steps[j].time < end; j++ {
				if p.steps[j].free < width {
					// Blocked: resume the search at the blocking step.
					i = j
					ok = false
					break
				}
			}
			if ok {
				return start
			}
		}
		i++
		if i >= len(p.steps) {
			panic(fmt.Sprintf("profile: no fit for width %d after final step (free %d)",
				width, p.steps[len(p.steps)-1].free))
		}
	}
}

// Alloc reserves width processors over [start, start+duration), with the
// same contract as Profile.Alloc.
func (p *Linear) Alloc(start int64, width int, duration int64) {
	p.check(start, width, duration)
	end := start + duration
	p.splitAt(start)
	p.splitAt(end)
	for i := p.find(start); i < len(p.steps) && p.steps[i].time < end; i++ {
		p.steps[i].free -= width
		if p.steps[i].free < 0 {
			panic(fmt.Sprintf("profile: over-allocation at t=%d: %d free after placing width %d",
				p.steps[i].time, p.steps[i].free, width))
		}
	}
}

// Place combines EarliestFit and Alloc.
func (p *Linear) Place(earliest int64, width int, duration int64) int64 {
	start := p.EarliestFit(earliest, width, duration)
	p.Alloc(start, width, duration)
	return start
}

// splitAt ensures a step boundary exists exactly at time t, memmoving the
// whole tail of the step array. Times at or before the profile start are
// ignored.
func (p *Linear) splitAt(t int64) {
	if t <= p.steps[0].time {
		return
	}
	i := p.find(t)
	if p.steps[i].time == t {
		return
	}
	p.steps = append(p.steps, step{})
	copy(p.steps[i+2:], p.steps[i+1:])
	p.steps[i+1] = step{time: t, free: p.steps[i].free}
}

func (p *Linear) check(start int64, width int, duration int64) {
	if start < p.steps[0].time {
		panic(fmt.Sprintf("profile: time %d precedes profile start %d", start, p.steps[0].time))
	}
	if width < 1 || width > p.capacity {
		panic(fmt.Sprintf("profile: width %d out of [1, %d]", width, p.capacity))
	}
	if duration < 1 {
		panic(fmt.Sprintf("profile: duration %d < 1", duration))
	}
}

// Steps returns a copy of the internal step function as parallel slices of
// times and free counts.
func (p *Linear) Steps() (times []int64, free []int) {
	times = make([]int64, len(p.steps))
	free = make([]int, len(p.steps))
	for i, s := range p.steps {
		times[i] = s.time
		free[i] = s.free
	}
	return times, free
}

// Clone returns an independent deep copy of the profile.
func (p *Linear) Clone() *Linear {
	return &Linear{
		capacity: p.capacity,
		steps:    append([]step(nil), p.steps...),
	}
}

// CloneInto makes dst an independent deep copy of p, reusing dst's step
// storage when it is large enough. A zero-value dst is valid.
func (p *Linear) CloneInto(dst *Linear) {
	dst.capacity = p.capacity
	dst.steps = append(dst.steps[:0], p.steps...)
}

// Reset reinitialises p to a machine with the given capacity where all
// processors are free from start onwards, reusing the step storage. A
// zero-value p is valid. It panics if capacity < 1, like NewLinear.
func (p *Linear) Reset(capacity int, start int64) {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	p.capacity = capacity
	p.steps = append(p.steps[:0], step{time: start, free: capacity})
}

// String renders the profile compactly for debugging.
func (p *Linear) String() string {
	s := fmt.Sprintf("linear(cap=%d", p.capacity)
	for _, st := range p.steps {
		s += fmt.Sprintf(" [%d:%d]", st.time, st.free)
	}
	return s + ")"
}
