package profile

import (
	"testing"
	"testing/quick"

	"dynp/internal/rng"
)

func TestNewAllFree(t *testing.T) {
	p := New(64, 100)
	if p.Capacity() != 64 || p.Start() != 100 {
		t.Fatalf("capacity/start wrong: %v", p)
	}
	if got := p.FreeAt(100); got != 64 {
		t.Fatalf("FreeAt(start) = %d", got)
	}
	if got := p.FreeAt(1 << 40); got != 64 {
		t.Fatalf("FreeAt(far future) = %d", got)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 0) did not panic")
		}
	}()
	New(0, 0)
}

func TestPlaceImmediate(t *testing.T) {
	p := New(10, 0)
	if start := p.Place(0, 4, 100); start != 0 {
		t.Fatalf("first placement at %d, want 0", start)
	}
	if got := p.FreeAt(0); got != 6 {
		t.Fatalf("free after placement = %d, want 6", got)
	}
	if got := p.FreeAt(100); got != 10 {
		t.Fatalf("free after job end = %d, want 10", got)
	}
}

func TestPlaceQueuesBehindFullMachine(t *testing.T) {
	p := New(10, 0)
	p.Place(0, 10, 50) // fills the machine until t=50
	if start := p.Place(0, 1, 10); start != 50 {
		t.Fatalf("second placement at %d, want 50", start)
	}
}

func TestImplicitBackfill(t *testing.T) {
	// Wide job reserves [10, 110); a narrow short job must slide into
	// the hole [0, 10) without disturbing the reservation.
	p := New(10, 0)
	p.Alloc(0, 6, 10)       // running job until t=10
	w := p.Place(0, 8, 100) // wide job cannot start before 10
	if w != 10 {
		t.Fatalf("wide job at %d, want 10", w)
	}
	n := p.Place(0, 4, 10) // narrow job backfills at 0
	if n != 0 {
		t.Fatalf("backfill start %d, want 0", n)
	}
	// A narrow job too long for the hole must go behind the wide job.
	l := p.Place(0, 4, 11)
	if l != 110 {
		t.Fatalf("long narrow job at %d, want 110", l)
	}
}

func TestEarliestFitRespectsEarliestBound(t *testing.T) {
	p := New(10, 0)
	if got := p.EarliestFit(42, 1, 10); got != 42 {
		t.Fatalf("EarliestFit honoured hole before earliest: %d", got)
	}
}

func TestEarliestFitSpansMultipleSteps(t *testing.T) {
	p := New(10, 0)
	p.Alloc(10, 4, 10) // free: [0,10):10, [10,20):6, [20,inf):10
	// Width 6 for duration 15 starting at 0 would cross the 6-free
	// window: 10-6=4 < 6? No: free in [10,20) is 6, 6 >= 6 fits.
	if got := p.EarliestFit(0, 6, 15); got != 0 {
		t.Fatalf("width 6 should fit at 0, got %d", got)
	}
	// Width 7 cannot cross [10,20).
	if got := p.EarliestFit(0, 7, 15); got != 20 {
		t.Fatalf("width 7 should wait for 20, got %d", got)
	}
	// Width 7 but short enough to finish by 10 fits at 0.
	if got := p.EarliestFit(0, 7, 10); got != 0 {
		t.Fatalf("width 7 duration 10 should fit at 0, got %d", got)
	}
}

func TestAllocPanicsOnOverAllocation(t *testing.T) {
	p := New(4, 0)
	p.Alloc(0, 4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	p.Alloc(5, 1, 2)
}

func TestCheckPanics(t *testing.T) {
	p := New(4, 0)
	for _, fn := range []func(){
		func() { p.EarliestFit(0, 0, 10) },
		func() { p.EarliestFit(0, 5, 10) },
		func() { p.EarliestFit(0, 1, 0) },
		func() { p.Alloc(0, -1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := New(8, 0)
	p.Alloc(0, 4, 10)
	c := p.Clone()
	c.Alloc(0, 4, 10)
	if got := p.FreeAt(0); got != 4 {
		t.Fatalf("clone mutation leaked into original: free %d", got)
	}
	if got := c.FreeAt(0); got != 0 {
		t.Fatalf("clone free %d, want 0", got)
	}
}

func TestStepsMergedView(t *testing.T) {
	p := New(8, 0)
	p.Alloc(5, 2, 10)
	times, free := p.Steps()
	if len(times) != len(free) {
		t.Fatal("Steps slices differ in length")
	}
	// Expect boundaries at 0, 5 and 15.
	want := map[int64]int{0: 8, 5: 6, 15: 8}
	for i, tm := range times {
		if w, ok := want[tm]; ok && free[i] != w {
			t.Fatalf("free at %d = %d, want %d", tm, free[i], w)
		}
	}
}

// naive is a brute-force per-second free-capacity model used as the
// oracle in the property test.
type naive struct {
	capacity int
	used     map[int64]int
}

func (n *naive) alloc(start int64, width int, dur int64) {
	for t := start; t < start+dur; t++ {
		n.used[t] += width
	}
}

func (n *naive) fits(start int64, width int, dur int64) bool {
	for t := start; t < start+dur; t++ {
		if n.used[t]+width > n.capacity {
			return false
		}
	}
	return true
}

func (n *naive) earliest(earliest int64, width int, dur int64) int64 {
	for t := earliest; ; t++ {
		if n.fits(t, width, dur) {
			return t
		}
	}
}

func TestPropertyMatchesNaiveOracle(t *testing.T) {
	// Random placement sequences must produce identical start times in
	// the step-function profile and a brute-force per-second model.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		const capacity = 16
		p := New(capacity, 0)
		n := &naive{capacity: capacity, used: make(map[int64]int)}
		for i := 0; i < 40; i++ {
			width := 1 + r.Intn(capacity)
			dur := int64(1 + r.Intn(30))
			earliest := int64(r.Intn(50))
			got := p.Place(earliest, width, dur)
			want := n.earliest(earliest, width, dur)
			if got != want {
				t.Logf("seed %d step %d: profile %d, oracle %d (w=%d d=%d e=%d)",
					seed, i, got, want, width, dur, earliest)
				return false
			}
			n.alloc(want, width, dur)
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNeverNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		p := New(8, 0)
		for i := 0; i < 100; i++ {
			p.Place(int64(r.Intn(100)), 1+r.Intn(8), int64(1+r.Intn(50)))
		}
		_, free := p.Steps()
		for _, f := range free {
			if f < 0 || f > 8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
