package profile

import (
	"fmt"
	"testing"
	"testing/quick"

	"dynp/internal/rng"
)

// checkInv fails the test when the indexed representation violates its
// own invariants (aggregates vs recomputed-from-steps, ordering, bounds).
func checkInv(t *testing.T, p *Profile) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewAllFree(t *testing.T) {
	p := New(64, 100)
	if p.Capacity() != 64 || p.Start() != 100 {
		t.Fatalf("capacity/start wrong: %v", p)
	}
	if got := p.FreeAt(100); got != 64 {
		t.Fatalf("FreeAt(start) = %d", got)
	}
	if got := p.FreeAt(1 << 40); got != 64 {
		t.Fatalf("FreeAt(far future) = %d", got)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 0) did not panic")
		}
	}()
	New(0, 0)
}

func TestPlaceImmediate(t *testing.T) {
	p := New(10, 0)
	if start := p.Place(0, 4, 100); start != 0 {
		t.Fatalf("first placement at %d, want 0", start)
	}
	if got := p.FreeAt(0); got != 6 {
		t.Fatalf("free after placement = %d, want 6", got)
	}
	if got := p.FreeAt(100); got != 10 {
		t.Fatalf("free after job end = %d, want 10", got)
	}
}

func TestPlaceQueuesBehindFullMachine(t *testing.T) {
	p := New(10, 0)
	p.Place(0, 10, 50) // fills the machine until t=50
	if start := p.Place(0, 1, 10); start != 50 {
		t.Fatalf("second placement at %d, want 50", start)
	}
}

func TestImplicitBackfill(t *testing.T) {
	// Wide job reserves [10, 110); a narrow short job must slide into
	// the hole [0, 10) without disturbing the reservation.
	p := New(10, 0)
	p.Alloc(0, 6, 10)       // running job until t=10
	w := p.Place(0, 8, 100) // wide job cannot start before 10
	if w != 10 {
		t.Fatalf("wide job at %d, want 10", w)
	}
	n := p.Place(0, 4, 10) // narrow job backfills at 0
	if n != 0 {
		t.Fatalf("backfill start %d, want 0", n)
	}
	// A narrow job too long for the hole must go behind the wide job.
	l := p.Place(0, 4, 11)
	if l != 110 {
		t.Fatalf("long narrow job at %d, want 110", l)
	}
	checkInv(t, p)
}

func TestEarliestFitRespectsEarliestBound(t *testing.T) {
	p := New(10, 0)
	if got := p.EarliestFit(42, 1, 10); got != 42 {
		t.Fatalf("EarliestFit honoured hole before earliest: %d", got)
	}
}

func TestEarliestFitSpansMultipleSteps(t *testing.T) {
	p := New(10, 0)
	p.Alloc(10, 4, 10) // free: [0,10):10, [10,20):6, [20,inf):10
	// Width 6 for duration 15 starting at 0 would cross the 6-free
	// window: 10-6=4 < 6? No: free in [10,20) is 6, 6 >= 6 fits.
	if got := p.EarliestFit(0, 6, 15); got != 0 {
		t.Fatalf("width 6 should fit at 0, got %d", got)
	}
	// Width 7 cannot cross [10,20).
	if got := p.EarliestFit(0, 7, 15); got != 20 {
		t.Fatalf("width 7 should wait for 20, got %d", got)
	}
	// Width 7 but short enough to finish by 10 fits at 0.
	if got := p.EarliestFit(0, 7, 10); got != 0 {
		t.Fatalf("width 7 duration 10 should fit at 0, got %d", got)
	}
}

func TestAllocPanicsOnOverAllocation(t *testing.T) {
	p := New(4, 0)
	p.Alloc(0, 4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	p.Alloc(5, 1, 2)
}

func TestCheckPanics(t *testing.T) {
	p := New(4, 0)
	for _, fn := range []func(){
		func() { p.EarliestFit(0, 0, 10) },
		func() { p.EarliestFit(0, 5, 10) },
		func() { p.EarliestFit(0, 1, 0) },
		func() { p.Alloc(0, -1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPreStartPanics(t *testing.T) {
	// Regression: Alloc with a start before the profile start used to
	// silently clip the reservation — New(4,100) then Alloc(50,2,100)
	// reserved only [100,150), shrinking a 100 s reservation to 50 s with
	// no error. All entry points must panic instead.
	for name, fn := range map[string]func(p *Profile){
		"Alloc":       func(p *Profile) { p.Alloc(50, 2, 100) },
		"EarliestFit": func(p *Profile) { p.EarliestFit(50, 2, 100) },
		"Place":       func(p *Profile) { p.Place(50, 2, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with pre-start time did not panic", name)
				}
			}()
			fn(New(4, 100))
		}()
	}
	// The boundary itself stays valid.
	p := New(4, 100)
	if got := p.Place(100, 2, 100); got != 100 {
		t.Fatalf("Place at profile start = %d, want 100", got)
	}
}

func TestCloneIntoMatchesClone(t *testing.T) {
	p := New(8, 5)
	p.Alloc(10, 3, 20)
	p.Alloc(25, 5, 5)

	var dst Profile
	p.CloneInto(&dst)
	want := p.Clone()
	wt, wf := want.Steps()
	gt, gf := dst.Steps()
	if fmt.Sprint(wt, wf) != fmt.Sprint(gt, gf) || dst.Capacity() != want.Capacity() {
		t.Fatalf("CloneInto mismatch: got %v, want %v", &dst, want)
	}

	// Independence: mutating the destination leaves the source alone.
	dst.Alloc(10, 5, 10)
	if got := p.FreeAt(10); got != 5 {
		t.Fatalf("CloneInto destination mutation leaked into source: free %d", got)
	}

	// Reuse: cloning a smaller profile into the same destination must not
	// retain stale steps.
	q := New(4, 0)
	q.CloneInto(&dst)
	gt, gf = dst.Steps()
	if len(gt) != 1 || gt[0] != 0 || gf[0] != 4 {
		t.Fatalf("CloneInto reuse kept stale steps: times %v free %v", gt, gf)
	}
}

func TestResetMatchesNew(t *testing.T) {
	p := New(8, 0)
	p.Alloc(0, 8, 100)
	p.Alloc(100, 4, 50)
	p.Reset(16, 42)
	want := New(16, 42)
	wt, wf := want.Steps()
	gt, gf := p.Steps()
	if fmt.Sprint(wt, wf) != fmt.Sprint(gt, gf) || p.Capacity() != 16 {
		t.Fatalf("Reset: got %v, want %v", p, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset with capacity 0 did not panic")
			}
		}()
		p.Reset(0, 0)
	}()
}

func TestEqualFrom(t *testing.T) {
	mk := func(start int64, allocs ...[3]int64) *Profile {
		p := New(8, start)
		for _, a := range allocs {
			p.Alloc(a[0], int(a[1]), a[2])
		}
		return p
	}
	base := mk(0, [3]int64{10, 3, 20})
	if !base.EqualFrom(base.Clone(), 0) {
		t.Fatal("profile not equal to its clone")
	}
	// Different starts but identical futures: a profile that began
	// earlier equals one beginning now, compared from now.
	if !mk(0, [3]int64{10, 3, 20}).EqualFrom(mk(5, [3]int64{10, 3, 20}), 5) {
		t.Fatal("identical futures with different starts not equal")
	}
	// A past difference must not matter when comparing from later.
	past := mk(0, [3]int64{0, 2, 5}, [3]int64{10, 3, 20})
	if !past.EqualFrom(base, 5) {
		t.Fatal("past-only difference reported as unequal")
	}
	if past.EqualFrom(base, 3) {
		t.Fatal("live difference at t=3..5 reported as equal")
	}
	// Redundant steps (Alloc boundaries with equal free counts on both
	// sides) are semantic no-ops.
	red := base.Clone()
	red.Alloc(40, 1, 10)
	red2 := base.Clone()
	red2.Alloc(40, 1, 5)
	red2.Alloc(45, 1, 5)
	if !red.EqualFrom(red2, 0) {
		t.Fatal("redundant step boundaries broke semantic equality")
	}
	if base.EqualFrom(New(4, 0), 0) {
		t.Fatal("different capacities reported as equal")
	}
	if base.EqualFrom(mk(0, [3]int64{10, 3, 21}), 0) {
		t.Fatal("different step times reported as equal")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EqualFrom before both starts did not panic")
			}
		}()
		mk(5).EqualFrom(mk(0), 3)
	}()
}

func TestCloneIsIndependent(t *testing.T) {
	p := New(8, 0)
	p.Alloc(0, 4, 10)
	c := p.Clone()
	c.Alloc(0, 4, 10)
	if got := p.FreeAt(0); got != 4 {
		t.Fatalf("clone mutation leaked into original: free %d", got)
	}
	if got := c.FreeAt(0); got != 0 {
		t.Fatalf("clone free %d, want 0", got)
	}
}

func TestStepsMergedView(t *testing.T) {
	p := New(8, 0)
	p.Alloc(5, 2, 10)
	times, free := p.Steps()
	if len(times) != len(free) {
		t.Fatal("Steps slices differ in length")
	}
	// Expect boundaries at 0, 5 and 15.
	want := map[int64]int{0: 8, 5: 6, 15: 8}
	for i, tm := range times {
		if w, ok := want[tm]; ok && free[i] != w {
			t.Fatalf("free at %d = %d, want %d", tm, free[i], w)
		}
	}
}

// naive is a brute-force per-second free-capacity model used as the
// oracle in the property test.
type naive struct {
	capacity int
	used     map[int64]int
}

func (n *naive) alloc(start int64, width int, dur int64) {
	for t := start; t < start+dur; t++ {
		n.used[t] += width
	}
}

func (n *naive) fits(start int64, width int, dur int64) bool {
	for t := start; t < start+dur; t++ {
		if n.used[t]+width > n.capacity {
			return false
		}
	}
	return true
}

func (n *naive) earliest(earliest int64, width int, dur int64) int64 {
	for t := earliest; ; t++ {
		if n.fits(t, width, dur) {
			return t
		}
	}
}

func TestPropertyMatchesNaiveOracle(t *testing.T) {
	// Random placement sequences must produce identical start times in
	// the step-function profile and a brute-force per-second model.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		const capacity = 16
		p := New(capacity, 0)
		n := &naive{capacity: capacity, used: make(map[int64]int)}
		for i := 0; i < 40; i++ {
			width := 1 + r.Intn(capacity)
			dur := int64(1 + r.Intn(30))
			earliest := int64(r.Intn(50))
			got := p.Place(earliest, width, dur)
			want := n.earliest(earliest, width, dur)
			if got != want {
				t.Logf("seed %d step %d: profile %d, oracle %d (w=%d d=%d e=%d)",
					seed, i, got, want, width, dur, earliest)
				return false
			}
			n.alloc(want, width, dur)
		}
		checkInv(t, p)
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNeverNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		p := New(8, 0)
		for i := 0; i < 100; i++ {
			p.Place(int64(r.Intn(100)), 1+r.Intn(8), int64(1+r.Intn(50)))
		}
		checkInv(t, p)
		_, free := p.Steps()
		for _, f := range free {
			if f < 0 || f > 8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAtPanicsPreStart(t *testing.T) {
	// Regression: FreeAt used to silently answer for times before the
	// profile start by clamping to the first step, while EarliestFit and
	// Alloc panic on the same input. The contract is now uniform: the
	// profile carries no information about the past, so asking for it is
	// a scheduler bug and every entry point panics.
	p := New(4, 100)
	if got := p.FreeAt(100); got != 4 {
		t.Fatalf("FreeAt at the start boundary = %d, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FreeAt(99) on a profile starting at 100 did not panic")
		}
	}()
	p.FreeAt(99)
}

func TestLinearFreeAtPanicsPreStart(t *testing.T) {
	p := NewLinear(4, 100)
	if got := p.FreeAt(100); got != 4 {
		t.Fatalf("FreeAt at the start boundary = %d, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("linear FreeAt(99) on a profile starting at 100 did not panic")
		}
	}()
	p.FreeAt(99)
}

// TestPropertyIndexedMatchesLinear interleaves Place, Alloc, CloneInto and
// Reset on the indexed profile and the flat-array Linear implementation
// and requires the two step functions to stay identical step for step —
// same boundaries, same free counts, redundant steps included — with the
// indexed invariants holding after every operation. The chunk threshold is
// shrunk so the sequences cross many chunk splits and lazy deltas.
func TestPropertyIndexedMatchesLinear(t *testing.T) {
	defer func(old int) { chunkMax = old }(chunkMax)
	chunkMax = 8

	sameSteps := func(p *Profile, l *Linear) error {
		pt, pf := p.Steps()
		lt, lf := l.Steps()
		if len(pt) != len(lt) {
			return fmt.Errorf("indexed has %d steps, linear %d", len(pt), len(lt))
		}
		for k := range pt {
			if pt[k] != lt[k] || pf[k] != lf[k] {
				return fmt.Errorf("step %d: indexed (%d,%d), linear (%d,%d)",
					k, pt[k], pf[k], lt[k], lf[k])
			}
		}
		return nil
	}

	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		capacity := 4 + r.Intn(60)
		start := int64(r.Intn(100))
		p := New(capacity, start)
		l := NewLinear(capacity, start)
		var pClone Profile
		var lClone Linear
		for i := 0; i < 120; i++ {
			width := 1 + r.Intn(capacity)
			dur := int64(1 + r.Intn(40))
			earliest := start + int64(r.Intn(200))
			switch r.Intn(10) {
			case 0: // Alloc at a feasible hole found by EarliestFit
				at := p.EarliestFit(earliest, width, dur)
				if lat := l.EarliestFit(earliest, width, dur); lat != at {
					t.Logf("seed %d op %d: EarliestFit %d vs linear %d", seed, i, at, lat)
					return false
				}
				p.Alloc(at, width, dur)
				l.Alloc(at, width, dur)
			case 1: // CloneInto dirty destinations, continue on the clones
				p.CloneInto(&pClone)
				l.CloneInto(&lClone)
				pClone.CloneInto(p)
				lClone.CloneInto(l)
			case 2: // Reset both to a fresh machine
				capacity = 4 + r.Intn(60)
				start = int64(r.Intn(100))
				p.Reset(capacity, start)
				l.Reset(capacity, start)
			default: // Place
				got := p.Place(earliest, width, dur)
				want := l.Place(earliest, width, dur)
				if got != want {
					t.Logf("seed %d op %d: Place %d vs linear %d", seed, i, got, want)
					return false
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
			if err := sameSteps(p, l); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsDetectsCorruption corrupts the white-box aggregates
// and expects CheckInvariants to notice — the guard that the property and
// fuzz tests are actually asserting something.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Profile {
		defer func(old int) { chunkMax = old }(chunkMax)
		chunkMax = 8
		r := rng.New(7)
		p := New(16, 0)
		for i := 0; i < 40; i++ {
			p.Place(int64(r.Intn(100)), 1+r.Intn(16), int64(1+r.Intn(30)))
		}
		return p
	}
	if err := build().CheckInvariants(); err != nil {
		t.Fatalf("freshly built profile violates invariants: %v", err)
	}
	for name, corrupt := range map[string]func(p *Profile){
		"min":      func(p *Profile) { p.chunks[len(p.chunks)/2].min-- },
		"max":      func(p *Profile) { p.chunks[len(p.chunks)/2].max++ },
		"add":      func(p *Profile) { p.chunks[len(p.chunks)/2].add -= 100 },
		"ordering": func(p *Profile) { p.chunks[0].steps[0].time = 1 << 40 },
		"capacity": func(p *Profile) { p.chunks[0].steps[0].free = 99 },
	} {
		p := build()
		corrupt(p)
		if err := p.CheckInvariants(); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
}

// TestChunkSplitKeepsSequence drives a profile far past one chunk and
// checks the flattened sequence stays sorted and the structure actually
// split — the cheap-split path is exercised, not bypassed.
func TestChunkSplitKeepsSequence(t *testing.T) {
	r := rng.New(11)
	p := New(128, 0)
	l := NewLinear(128, 0)
	for i := 0; i < 400; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		if got, want := p.Place(0, w, d), l.Place(0, w, d); got != want {
			t.Fatalf("op %d: Place %d vs linear %d", i, got, want)
		}
	}
	checkInv(t, p)
	if len(p.chunks) < 4 {
		t.Fatalf("400 placements produced only %d chunks; splits not exercised", len(p.chunks))
	}
	pt, pf := p.Steps()
	lt, lf := l.Steps()
	if fmt.Sprint(pt, pf) != fmt.Sprint(lt, lf) {
		t.Fatal("indexed and linear step functions diverged")
	}
}
