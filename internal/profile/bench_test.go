package profile

import (
	"testing"

	"dynp/internal/rng"
)

// BenchmarkPlace measures earliest-hole placement on profiles of growing
// fragmentation — the inner loop of every full-schedule build.
func BenchmarkPlace(b *testing.B) {
	for _, queued := range []int{10, 100, 1000} {
		b.Run(benchName(queued), func(b *testing.B) {
			r := rng.New(1)
			widths := make([]int, queued)
			durs := make([]int64, queued)
			for i := range widths {
				widths[i] = 1 + r.Intn(64)
				durs[i] = int64(1 + r.Intn(10000))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := New(128, 0)
				for k := 0; k < queued; k++ {
					p.Place(0, widths[k], durs[k])
				}
			}
		})
	}
}

func benchName(n int) string {
	switch {
	case n >= 1000:
		return "queue1000"
	case n >= 100:
		return "queue100"
	default:
		return "queue10"
	}
}

// BenchmarkEarliestFit measures the probe path without committing.
func BenchmarkEarliestFit(b *testing.B) {
	r := rng.New(2)
	p := New(128, 0)
	for k := 0; k < 500; k++ {
		p.Place(0, 1+r.Intn(64), int64(1+r.Intn(10000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EarliestFit(0, 64, 5000)
	}
}

// BenchmarkClone measures profile copying (used by verification paths).
func BenchmarkClone(b *testing.B) {
	r := rng.New(3)
	p := New(128, 0)
	for k := 0; k < 500; k++ {
		p.Place(0, 1+r.Intn(64), int64(1+r.Intn(10000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Clone()
	}
}
