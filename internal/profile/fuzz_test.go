package profile

import (
	"testing"
)

// refModel is a brute-force per-second free-array model of a machine: the
// differential oracle for FuzzProfileVsReference. It covers a bounded
// horizon; the fuzz driver never reserves past it.
type refModel struct {
	capacity int
	start    int64
	free     []int // free[i] = free processors at start+i
}

func newRefModel(capacity int, start int64, horizon int) *refModel {
	m := &refModel{capacity: capacity, start: start, free: make([]int, horizon)}
	for i := range m.free {
		m.free[i] = capacity
	}
	return m
}

func (m *refModel) freeAt(t int64) int {
	i := t - m.start
	if i < 0 {
		i = 0
	}
	if int(i) >= len(m.free) {
		return m.free[len(m.free)-1]
	}
	return m.free[i]
}

func (m *refModel) fits(start int64, width int, dur int64) bool {
	for t := start; t < start+dur; t++ {
		if m.freeAt(t) < width {
			return false
		}
	}
	return true
}

func (m *refModel) earliest(earliest int64, width int, dur int64) (int64, bool) {
	// Never scan past the horizon: the driver bounds all reservations so
	// the tail of the free array is a fixed point.
	for t := earliest; t <= m.start+int64(len(m.free)); t++ {
		if m.fits(t, width, dur) {
			return t, true
		}
	}
	return 0, false
}

func (m *refModel) alloc(start int64, width int, dur int64) {
	for t := start; t < start+dur; t++ {
		if i := t - m.start; i >= 0 && int(i) < len(m.free) {
			m.free[i] -= width
		}
	}
}

// FuzzProfileVsReference drives the indexed Profile, the flat-array
// Linear implementation, and the per-second reference model through the
// same operation sequence and requires identical EarliestFit results,
// identical FreeAt values, and a step-for-step identical step function
// between the indexed and linear representations — plus CloneInto/Reset
// equivalence with Clone/New along the way. The fuzz input is decoded as
// (op, width, duration, earliest) nibbles.
func FuzzProfileVsReference(f *testing.F) {
	f.Add([]byte{0x00}, uint8(8), uint8(3))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9a}, uint8(16), uint8(0))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00}, uint8(3), uint8(50))
	f.Fuzz(func(t *testing.T, ops []byte, cap8 uint8, start8 uint8) {
		capacity := int(cap8%32) + 1
		start := int64(start8)
		// Bound the interesting region so the oracle's linear scans stay
		// cheap: reservations live in [start, start+horizon/2), scans may
		// run to the horizon.
		const horizon = 512
		// Shrink the chunk split threshold so even these small profiles
		// exercise multi-chunk structures, lazy deltas and chunk splits.
		defer func(old int) { chunkMax = old }(chunkMax)
		chunkMax = 8
		p := New(capacity, start)
		lin := NewLinear(capacity, start)
		ref := newRefModel(capacity, start, horizon)

		if len(ops) > 64 {
			ops = ops[:64]
		}
		for i := 0; i+3 < len(ops); i += 4 {
			width := int(ops[i+1])%capacity + 1
			dur := int64(ops[i+2]%32) + 1
			earliest := start + int64(ops[i+3])%(horizon/2)
			switch ops[i] % 4 {
			case 0, 1: // Place
				want, ok := ref.earliest(earliest, width, dur)
				if !ok || want+dur > start+horizon/2+int64(ops[i+2]%32)+1 {
					// Would spill past the modelled region; skip to keep
					// the oracle exact. (The profile could answer, but the
					// array model could not check it.)
					continue
				}
				got := p.Place(earliest, width, dur)
				if got != want {
					t.Fatalf("op %d: Place(%d,%d,%d) = %d, oracle %d", i, earliest, width, dur, got, want)
				}
				if lgot := lin.Place(earliest, width, dur); lgot != want {
					t.Fatalf("op %d: linear Place(%d,%d,%d) = %d, oracle %d", i, earliest, width, dur, lgot, want)
				}
				ref.alloc(want, width, dur)
			case 2: // EarliestFit without committing
				want, ok := ref.earliest(earliest, width, dur)
				if !ok {
					continue
				}
				if got := p.EarliestFit(earliest, width, dur); got != want {
					t.Fatalf("op %d: EarliestFit(%d,%d,%d) = %d, oracle %d", i, earliest, width, dur, got, want)
				}
				if lgot := lin.EarliestFit(earliest, width, dur); lgot != want {
					t.Fatalf("op %d: linear EarliestFit(%d,%d,%d) = %d, oracle %d", i, earliest, width, dur, lgot, want)
				}
			case 3: // FreeAt sweep at the probe instant
				if got, want := p.FreeAt(earliest), ref.freeAt(earliest); got != want {
					t.Fatalf("op %d: FreeAt(%d) = %d, oracle %d", i, earliest, got, want)
				}
				if lgot, want := lin.FreeAt(earliest), ref.freeAt(earliest); lgot != want {
					t.Fatalf("op %d: linear FreeAt(%d) = %d, oracle %d", i, earliest, lgot, want)
				}
			}
			// The indexed and linear representations must agree step for
			// step — same boundaries, same free counts, redundant steps
			// included — and every boundary must match the oracle.
			times, free := p.Steps()
			ltimes, lfree := lin.Steps()
			if len(times) != len(ltimes) {
				t.Fatalf("op %d: indexed has %d steps, linear %d", i, len(times), len(ltimes))
			}
			for k, tm := range times {
				if tm != ltimes[k] || free[k] != lfree[k] {
					t.Fatalf("op %d: step %d indexed (%d,%d), linear (%d,%d)",
						i, k, tm, free[k], ltimes[k], lfree[k])
				}
				if tm < start+horizon && free[k] != ref.freeAt(tm) {
					t.Fatalf("op %d: step at %d has free %d, oracle %d", i, tm, free[k], ref.freeAt(tm))
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}

		// CloneInto into a dirty destination must equal Clone.
		dirty := New(3, 0)
		dirty.Alloc(1, 2, 7)
		p.CloneInto(dirty)
		want := p.Clone()
		if !dirty.EqualFrom(want, start) || dirty.Capacity() != want.Capacity() {
			t.Fatalf("CloneInto != Clone: %v vs %v", dirty, want)
		}
		wt, wf := want.Steps()
		gt, gf := dirty.Steps()
		if len(wt) != len(gt) {
			t.Fatalf("CloneInto step count %d, Clone %d", len(gt), len(wt))
		}
		for k := range wt {
			if wt[k] != gt[k] || wf[k] != gf[k] {
				t.Fatalf("CloneInto step %d = (%d,%d), Clone (%d,%d)", k, gt[k], gf[k], wt[k], wf[k])
			}
		}

		// Reset must equal New, byte for byte.
		dirty.Reset(capacity, start)
		fresh := New(capacity, start)
		if !dirty.EqualFrom(fresh, start) {
			t.Fatalf("Reset != New: %v vs %v", dirty, fresh)
		}
	})
}
