// Package table renders aligned text tables, CSV, and simple data series —
// the output formats of the paper-reproduction binaries. It has no
// knowledge of the experiments; it only formats.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v except float64, which uses two decimals.
func (t *Table) AddRowf(cells ...any) {
	ss := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			ss[i] = fmt.Sprintf("%.2f", v)
		default:
			ss[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(ss...)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// Len reports the number of data rows (separators included).
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		if row == nil {
			b.WriteString(strings.Repeat("-", total))
			b.WriteString("\n")
			continue
		}
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (separators are skipped). Cells
// containing commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named curve of a figure: x values (e.g. shrinking factors)
// against y values (e.g. SLDwA).
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a set of series sharing axes, the textual stand-in for the
// paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as a column block per series, a format gnuplot
// and spreadsheet tools ingest directly.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\n# series: %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "%g\t%g\n", s.X[i], s.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ASCII renders the figure as a crude terminal plot (y downsampled onto a
// fixed grid), enough to eyeball the crossovers the paper discusses.
func (f *Figure) ASCII(w io.Writer, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("table: plot area %dx%d too small", width, height)
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = min(xmin, s.X[i])
			xmax = max(xmax, s.X[i])
			ymin = min(ymin, s.Y[i])
			ymax = max(ymax, s.Y[i])
		}
	}
	if first {
		return fmt.Errorf("table: empty figure")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			grid[height-1-cy][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %.3g..%.3g, x: %g..%g)\n", f.Title, ymin, ymax, xmin, xmax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
