package table

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line = %q", lines[1])
	}
	// All data lines must align the second column.
	col := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "22") != col {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRowf(1.23456, 7)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1.23") || strings.Contains(b.String(), "1.2345") {
		t.Fatalf("float formatting wrong:\n%s", b.String())
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")            // missing cell
	tb.AddRow("x", "y", "extra") // extra cell dropped
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "extra") {
		t.Fatal("extra cell rendered")
	}
}

func TestSeparator(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1")
	tb.AddSeparator()
	tb.AddRow("2")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	// Header rule plus one separator.
	rules := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if line != "" && strings.Trim(line, "-") == "" {
			rules++
		}
	}
	if rules != 2 {
		t.Fatalf("expected 2 rules, got %d in:\n%s", rules, b.String())
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("ignored", "name", "note")
	tb.AddRow("a", `has "quotes", and commas`)
	tb.AddSeparator()
	tb.AddRow("b", "plain")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,note\na,\"has \"\"quotes\"\", and commas\"\nb,plain\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title: "fig", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s1", X: []float64{1, 0.9}, Y: []float64{2.5, 3}}},
	}
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# fig", "# series: s1", "1\t2.5", "0.9\t3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureASCII(t *testing.T) {
	f := &Figure{
		Title: "fig",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
	}
	var b strings.Builder
	if err := f.ASCII(&b, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "o = a") || !strings.Contains(out, "x = b") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestFigureASCIIErrors(t *testing.T) {
	f := &Figure{Title: "empty"}
	var b strings.Builder
	if err := f.ASCII(&b, 40, 10); err == nil {
		t.Error("empty figure accepted")
	}
	f2 := &Figure{Series: []Series{{X: []float64{1}, Y: []float64{1}}}}
	if err := f2.ASCII(&b, 2, 2); err == nil {
		t.Error("tiny plot area accepted")
	}
}

func TestFigureASCIIDegenerateRanges(t *testing.T) {
	// A single point must not divide by zero.
	f := &Figure{Series: []Series{{Name: "p", X: []float64{1}, Y: []float64{5}}}}
	var b strings.Builder
	if err := f.ASCII(&b, 20, 5); err != nil {
		t.Fatal(err)
	}
}
