package benchgate

import (
	"runtime"
	"strings"
	"testing"
)

func TestPinProcsMatchesBaseline(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	t.Setenv("GOMAXPROCS", "")

	if err := PinProcs("t", 2); err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != 2 {
		t.Fatalf("GOMAXPROCS = %d after pinning to 2", got)
	}
}

func TestPinProcsRejectsConflictingEnv(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	t.Setenv("GOMAXPROCS", "8")

	err := PinProcs("t", 1)
	if err == nil {
		t.Fatal("conflicting GOMAXPROCS env accepted")
	}
	if !strings.Contains(err.Error(), "GOMAXPROCS=8") || !strings.Contains(err.Error(), "gomaxprocs 1") {
		t.Fatalf("error does not name both values: %v", err)
	}
	if got := runtime.GOMAXPROCS(0); got != prev {
		t.Fatalf("GOMAXPROCS changed to %d despite the error", got)
	}
}

func TestPinProcsAcceptsAgreeingEnv(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	t.Setenv("GOMAXPROCS", "3")

	if err := PinProcs("t", 3); err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != 3 {
		t.Fatalf("GOMAXPROCS = %d, want 3", got)
	}
}

func TestPinProcsRejectsMissingBaselineField(t *testing.T) {
	if err := PinProcs("t", 0); err == nil {
		t.Fatal("baseline without gomaxprocs accepted")
	}
}
