// Package benchgate holds helpers shared by the benchmark gate commands
// (cmd/benchplan, cmd/benchsim, cmd/benchscale) that compare fresh
// measurements against committed baseline snapshots.
package benchgate

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
)

// PinProcs makes a -check re-measurement comparable with its baseline by
// pinning runtime.GOMAXPROCS to the value the baseline snapshot was
// recorded at. Without the pin, a 4-core CI runner checking a snapshot
// recorded at GOMAXPROCS=1 measures a different machine shape than the
// baseline did, and the gate fails (or worse, passes) on scheduler noise
// instead of regressions.
//
// A GOMAXPROCS environment variable that contradicts the baseline is an
// explicit operator request PinProcs cannot honour and pin at the same
// time, so it returns an error naming both values instead of silently
// overriding either. A baseline that predates the gomaxprocs field (0)
// is rejected too: re-record it rather than guess.
func PinProcs(tool string, baseProcs int) error {
	if baseProcs <= 0 {
		return fmt.Errorf("baseline snapshot records no gomaxprocs; re-record it with -out before gating")
	}
	if env := os.Getenv("GOMAXPROCS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			return fmt.Errorf("invalid GOMAXPROCS=%q in environment", env)
		}
		if n != baseProcs {
			return fmt.Errorf("GOMAXPROCS=%d conflicts with the baseline recorded at gomaxprocs %d; "+
				"unset GOMAXPROCS, or re-record the baseline at this setting", n, baseProcs)
		}
	}
	if cur := runtime.GOMAXPROCS(0); cur != baseProcs {
		fmt.Fprintf(os.Stderr, "%s: pinning GOMAXPROCS %d -> %d to match the baseline\n", tool, cur, baseProcs)
		runtime.GOMAXPROCS(baseProcs)
	}
	return nil
}
