package engine

import (
	"dynp/internal/job"
	"dynp/internal/plan"
)

// Lookaheader is an optional Driver extension for virtual-clock front
// ends that know their next scheduling event deterministically — the
// next submission is in the job set, the next completion was scheduled
// when the job launched. Such a front end can predict the *inputs* of
// its next Plan call exactly and hand them to the driver right after the
// current event commits; a speculating driver (sim.DynP over
// core.SelfTuner) overlaps the next event's what-if builds with the
// front end's bookkeeping and verifies the prediction when Plan actually
// arrives.
//
// The protocol is advisory end to end: a driver is free to ignore
// Lookahead calls, and a front end that never calls it loses nothing but
// the overlap. Predictions are verified-or-discarded by the driver, so a
// wrong prediction (a kill-at-estimate that did not happen, a failed
// proc) costs one discarded build, never correctness.
type Lookaheader interface {
	// SpeculationEnabled reports whether the driver currently consumes
	// predictions. Front ends check it once per run and skip the
	// prediction snapshots entirely when off.
	SpeculationEnabled() bool

	// Lookahead hands the driver the predicted inputs of the next Plan
	// call: the event instant, the effective capacity, and the machine
	// state after that instant's transitions. Ownership of both slices
	// transfers to the driver — the caller must build fresh ones per
	// call and never mutate them afterwards (the jobs they reference
	// are shared but immutable).
	Lookahead(now int64, capacity int, running []plan.Running, waiting []*job.Job)

	// CancelLookahead discards any in-flight speculative work. Front
	// ends call it when no further Plan call will consume a prediction
	// (end of run, driver teardown); it is idempotent.
	CancelLookahead()
}
