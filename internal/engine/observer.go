package engine

import (
	"time"

	"dynp/internal/job"
	"dynp/internal/policy"
)

// EventKind classifies one engine transition.
type EventKind int

// The engine transitions, in the order of a job's life. EventPlan fires
// once per scheduling event, after due jobs launched, so its queue
// depth is the post-launch backlog — the quantity the paper's queue
// dynamics figures plot.
const (
	EventSubmit       EventKind = iota // a job entered the waiting queue
	EventStart                         // a waiting job launched
	EventFinish                        // a running job completed
	EventKill                          // a running job's estimate expired; the RMS terminated it
	EventJobFail                       // processors failed under a running job; the victim policy terminated it
	EventCancel                        // a waiting job was withdrawn
	EventProcsFail                     // processors left service
	EventProcsRestore                  // processors returned to service
	EventPlan                          // one full replanning step ran
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"submit", "start", "finish", "kill", "job-fail",
	"cancel", "procs-fail", "procs-restore", "plan",
}

// String returns the wire name of the event kind.
func (k EventKind) String() string {
	if k < 0 || k >= numEventKinds {
		return "unknown"
	}
	return eventKindNames[k]
}

// Event is one observed engine transition. Every event carries the full
// scheduling context (time, queue depth, machine load, active policy);
// job-scoped kinds carry the job, and EventPlan carries the planning
// latency plus — for the self-tuning dynP scheduler over the paper's
// candidate set — the Table-1 decision case of the step.
type Event struct {
	Kind    EventKind
	Time    int64
	Job     *job.Job // job-scoped kinds only
	Procs   int      // job width, or processors failed/restored
	Queued  int      // waiting jobs after the transition
	Running int      // running jobs after the transition
	Used    int      // processors in use after the transition
	Policy  policy.Policy
	Case    string        // EventPlan: Table-1 decision case ("" when not a dynP step)
	Latency time.Duration // EventPlan: wall-clock cost of the driver's Plan call
}

// Observer receives every engine transition, synchronously, in order.
// Observe must not call back into the engine.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// DecisionCaser is implemented by drivers that can classify their most
// recent self-tuning step as a Table-1 decision case (see core.CaseOf);
// the engine stamps the label on every EventPlan it emits.
type DecisionCaser interface {
	LastDecisionCase() string
}

// decisionCase asks the driver for the Table-1 case of the step that
// just ran; non-dynP drivers return "".
func (e *Engine) decisionCase() string {
	if dc, ok := e.driver.(DecisionCaser); ok {
		return dc.LastDecisionCase()
	}
	return ""
}

// emit completes the shared context fields and delivers the event to
// every observer. It is a no-op without observers, keeping the hot path
// of unobserved runs allocation-free.
func (e *Engine) emit(ev Event) {
	if len(e.obs) == 0 {
		return
	}
	ev.Time = e.now
	ev.Queued = len(e.waiting)
	ev.Running = len(e.running)
	ev.Used = e.used
	ev.Policy = e.driver.ActivePolicy()
	for _, o := range e.obs {
		o.Observe(ev)
	}
}

// finishEventKind maps a finish state to its event kind.
func finishEventKind(st FinishState) EventKind {
	switch st {
	case FinishKilled:
		return EventKill
	case FinishFailed:
		return EventJobFail
	default:
		return EventFinish
	}
}
