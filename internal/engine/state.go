// Checkpoint-restore support. The online RMS journal periodically
// captures the engine's restartable state into a checkpoint record and,
// on restart, rebuilds a virgin engine from the newest valid checkpoint
// instead of replaying the whole event history. The engine itself only
// provides the rebuild primitive: RestoreState installs a previously
// captured machine state wholesale, silently — no hooks fire and no
// observer events are emitted, because the transitions it encodes
// already happened in a previous life of the process.
package engine

import (
	"fmt"

	"dynp/internal/job"
	"dynp/internal/plan"
)

// StatefulDriver is an optional Driver extension. A driver with mutable
// decision state (the self-tuning dynP driver: active policy, decider
// statistics) implements it so checkpoints capture that state and a
// restored engine resumes making the same decisions a genesis replay
// would have reached. Stateless drivers (static policies, EASY) simply
// don't implement it.
type StatefulDriver interface {
	// SaveState serialises the driver's decision state.
	SaveState() ([]byte, error)
	// RestoreState installs a previously saved decision state into a
	// fresh driver of the same configuration.
	RestoreState(data []byte) error
}

// State is the engine's restartable state as captured at a checkpoint.
// Slices are installed as-is; the caller hands over ownership.
type State struct {
	Now      int64
	Failed   int            // processors out of service
	Finished int            // jobs that ever left the machine
	Waiting  []*job.Job     // waiting queue in submission order
	Running  []plan.Running // running set in start order
	Plan     *plan.Schedule // last schedule, nil if none was in force
}

// RestoreState installs st into a virgin engine (fresh from New: no
// submissions, no time movement). The waiting queue is announced to the
// driver's QueueTracker, if any, so incrementally-maintained queue
// orders are primed; nothing else observes the restore.
func (e *Engine) RestoreState(st State) error {
	if len(e.waiting) != 0 || len(e.running) != 0 || e.finished != 0 {
		return fmt.Errorf("engine: RestoreState on a non-virgin engine")
	}
	if st.Failed < 0 || st.Failed > e.capacity {
		return fmt.Errorf("engine: restored state fails %d of %d processors", st.Failed, e.capacity)
	}
	if st.Now < e.now {
		return fmt.Errorf("engine: restored clock %d behind construction time %d", st.Now, e.now)
	}
	e.now = st.Now
	e.failed = st.Failed
	e.finished = st.Finished
	for _, j := range st.Waiting {
		if _, dup := e.waitingIdx[j.ID]; dup {
			return fmt.Errorf("engine: restored job %d waiting twice", j.ID)
		}
		e.waitingIdx[j.ID] = len(e.waiting)
		e.waiting = append(e.waiting, j)
		if e.tracker != nil {
			e.tracker.NoteSubmit(j)
		}
	}
	for _, r := range st.Running {
		if _, dup := e.runningIdx[r.Job.ID]; dup || e.IsWaiting(r.Job.ID) {
			return fmt.Errorf("engine: restored job %d placed twice", r.Job.ID)
		}
		e.runningIdx[r.Job.ID] = len(e.running)
		e.running = append(e.running, r)
		e.used += r.Job.Width
	}
	e.plan = st.Plan
	if err := e.CheckInvariants(); err != nil {
		return fmt.Errorf("engine: restored state invalid: %w", err)
	}
	return nil
}
