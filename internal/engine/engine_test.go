package engine_test

import (
	"strings"
	"testing"

	"dynp/internal/engine"
	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

func mkJob(id job.ID, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func fcfs() engine.Driver { return &sim.Static{Policy: policy.FCFS} }

func TestSubmitReplanLaunchFinish(t *testing.T) {
	var started, finishedJobs []job.ID
	var finStates []engine.FinishState
	eng := engine.New(4, fcfs(), 0, engine.WithHooks(engine.Hooks{
		Started: func(j *job.Job, now int64) { started = append(started, j.ID) },
		Finished: func(j *job.Job, st engine.FinishState, now int64) {
			finishedJobs = append(finishedJobs, j.ID)
			finStates = append(finStates, st)
		},
	}))

	a, b := mkJob(1, 0, 2, 10), mkJob(2, 0, 2, 10)
	eng.Submit(a)
	eng.Submit(b)
	if !eng.IsWaiting(1) || !eng.IsWaiting(2) {
		t.Fatal("submitted jobs not waiting")
	}
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	if len(started) != 2 || eng.Used() != 4 {
		t.Fatalf("started %v, used %d", started, eng.Used())
	}
	if !eng.IsRunning(1) || eng.IsWaiting(1) {
		t.Fatal("job 1 not moved to running")
	}

	if !eng.Finish(1, engine.FinishCompleted) {
		t.Fatal("finish reported not running")
	}
	if eng.Finish(1, engine.FinishCompleted) {
		t.Fatal("double finish accepted")
	}
	if eng.Used() != 2 || len(finishedJobs) != 1 || finStates[0] != engine.FinishCompleted {
		t.Fatalf("after finish: used %d, finished %v %v", eng.Used(), finishedJobs, finStates)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelWaiting(t *testing.T) {
	eng := engine.New(1, fcfs(), 0)
	eng.Submit(mkJob(1, 0, 1, 10))
	eng.Submit(mkJob(2, 0, 1, 10))
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	// Job 1 runs; job 2 waits behind it.
	if !eng.CancelWaiting(2) {
		t.Fatal("waiting job not cancelled")
	}
	if eng.CancelWaiting(2) {
		t.Fatal("cancelled job cancelled twice")
	}
	if eng.CancelWaiting(1) {
		t.Fatal("running job cancelled as waiting")
	}
	if len(eng.Waiting()) != 0 {
		t.Fatalf("queue = %v", eng.Waiting())
	}
}

func TestKillExpired(t *testing.T) {
	var st []engine.FinishState
	eng := engine.New(2, fcfs(), 0, engine.WithHooks(engine.Hooks{
		Finished: func(j *job.Job, s engine.FinishState, now int64) { st = append(st, s) },
	}))
	eng.Submit(mkJob(1, 0, 2, 10))
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	eng.JumpTo(9)
	if eng.KillExpired() {
		t.Fatal("killed before the estimate expired")
	}
	eng.JumpTo(10)
	if !eng.KillExpired() {
		t.Fatal("expired job not killed")
	}
	if len(st) != 1 || st[0] != engine.FinishKilled {
		t.Fatalf("finish states = %v", st)
	}
}

func TestJumpToBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards jump did not panic")
		}
	}()
	eng := engine.New(1, fcfs(), 100)
	eng.JumpTo(99)
}

func TestFailProcsKillsVictimsInOrder(t *testing.T) {
	var killed []job.ID
	eng := engine.New(4, fcfs(), 0, engine.WithHooks(engine.Hooks{
		Finished: func(j *job.Job, st engine.FinishState, now int64) {
			if st == engine.FinishFailed {
				killed = append(killed, j.ID)
			}
		},
	}))
	eng.Submit(mkJob(1, 0, 2, 100))
	eng.Submit(mkJob(2, 0, 2, 100))
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	// Both started at t=0; VictimLastStarted breaks the tie by higher ID.
	eng.FailProcs(2)
	if len(killed) != 1 || killed[0] != 2 {
		t.Fatalf("victims = %v, want [2]", killed)
	}
	if eng.Used() != 2 || eng.Effective() != 2 {
		t.Fatalf("used %d of effective %d", eng.Used(), eng.Effective())
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnplaceableJobsWithheldUntilRestore(t *testing.T) {
	var lastUnplaceable []*job.Job
	eng := engine.New(4, fcfs(), 0, engine.WithHooks(engine.Hooks{
		Planned: func(sched *plan.Schedule, unplaceable []*job.Job) { lastUnplaceable = unplaceable },
	}))
	eng.FailProcs(2) // effective capacity 2
	wide, narrow := mkJob(1, 0, 3, 10), mkJob(2, 0, 2, 10)
	eng.Submit(wide)
	eng.Submit(narrow)
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	if len(lastUnplaceable) != 1 || lastUnplaceable[0].ID != 1 {
		t.Fatalf("unplaceable = %v, want the width-3 job", lastUnplaceable)
	}
	if !eng.IsRunning(2) || !eng.IsWaiting(1) {
		t.Fatal("narrow job must run while the wide one is withheld")
	}
	// With the processors back, the wide job becomes plannable again.
	eng.Finish(2, engine.FinishCompleted)
	eng.RestoreProcs(2)
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	if len(lastUnplaceable) != 0 || !eng.IsRunning(1) {
		t.Fatalf("wide job not launched after restore (unplaceable %v)", lastUnplaceable)
	}
}

func TestReplanOnFullyDrainedMachine(t *testing.T) {
	var planNil, sawQueue bool
	eng := engine.New(2, fcfs(), 0, engine.WithHooks(engine.Hooks{
		Planned: func(sched *plan.Schedule, unplaceable []*job.Job) {
			planNil = sched == nil
			sawQueue = len(unplaceable) == 1
		},
	}))
	eng.FailProcs(2)
	eng.Submit(mkJob(1, 0, 1, 10))
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	if !planNil || !sawQueue {
		t.Fatalf("drained replan: nil plan %v, queue reported %v", planNil, sawQueue)
	}
	if eng.Schedule() != nil {
		t.Fatal("drained machine retains a schedule")
	}
}

func TestAdvanceToFiresKillsAndStarts(t *testing.T) {
	var order []string
	eng := engine.New(2, fcfs(), 0, engine.WithHooks(engine.Hooks{
		Started: func(j *job.Job, now int64) {
			order = append(order, strings.Join([]string{"start", j.String()}, " "))
		},
	}))
	a, b := mkJob(1, 0, 2, 10), mkJob(2, 0, 2, 5)
	eng.Submit(a)
	eng.Submit(b)
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	// a runs [0,10); b is planned at 10.
	if err := eng.AdvanceTo(100, false); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 15 {
		t.Fatalf("clock at %d after drain, want 15", eng.Now())
	}
	if eng.Used() != 0 || len(eng.Waiting()) != 0 {
		t.Fatalf("machine not drained: used %d, waiting %d", eng.Used(), len(eng.Waiting()))
	}
	if len(order) != 2 {
		t.Fatalf("starts = %v", order)
	}
	if _, ok := eng.NextActionTime(false); ok {
		t.Fatal("drained machine still has pending actions")
	}
}

func TestAdvanceToExclusiveStopsBeforeBoundary(t *testing.T) {
	eng := engine.New(2, fcfs(), 0)
	eng.Submit(mkJob(1, 0, 2, 10))
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	// The kill at t=10 must not fire when advancing exclusively to 10.
	if err := eng.AdvanceTo(10, true); err != nil {
		t.Fatal(err)
	}
	if !eng.IsRunning(1) {
		t.Fatal("exclusive advance fired the boundary action")
	}
	if err := eng.AdvanceTo(10, false); err != nil {
		t.Fatal(err)
	}
	if eng.IsRunning(1) {
		t.Fatal("inclusive advance left the expired job running")
	}
}

func TestObserverStream(t *testing.T) {
	var kinds []engine.EventKind
	var planQueued []int
	var eng *engine.Engine
	eng = engine.New(2, fcfs(), 0, engine.WithObserver(engine.ObserverFunc(func(ev engine.Event) {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == engine.EventPlan {
			planQueued = append(planQueued, ev.Queued)
		}
		if ev.Time != eng.Now() {
			t.Errorf("event %s stamped t=%d, engine at %d", ev.Kind, ev.Time, eng.Now())
		}
	})))
	eng.Submit(mkJob(1, 0, 1, 10))
	eng.Submit(mkJob(2, 0, 2, 10))
	if err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	eng.Finish(1, engine.FinishCompleted)

	want := []engine.EventKind{
		engine.EventSubmit, engine.EventSubmit,
		engine.EventStart, engine.EventPlan,
		engine.EventFinish,
	}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// The plan event sees the post-launch queue: job 2 still waiting.
	if len(planQueued) != 1 || planQueued[0] != 1 {
		t.Fatalf("plan queue depths = %v, want [1]", planQueued)
	}
}

func TestEventKindNames(t *testing.T) {
	names := map[engine.EventKind]string{
		engine.EventSubmit:       "submit",
		engine.EventStart:        "start",
		engine.EventFinish:       "finish",
		engine.EventKill:         "kill",
		engine.EventJobFail:      "job-fail",
		engine.EventCancel:       "cancel",
		engine.EventProcsFail:    "procs-fail",
		engine.EventProcsRestore: "procs-restore",
		engine.EventPlan:         "plan",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

// BenchmarkEngineEventLoop drives the full submit→replan→launch→expire
// cycle through the engine for a 10k-job workload, the scale of the
// paper's full traces, measuring the shared event-loop bookkeeping with
// the real availability-profile planner.
func BenchmarkEngineEventLoop(b *testing.B) {
	const n, capacity = 10000, 128
	r := rng.New(1)
	jobs := make([]*job.Job, n)
	var clock int64
	for i := range jobs {
		clock += int64(r.Intn(10))
		est := int64(1 + r.Intn(100))
		jobs[i] = &job.Job{
			ID: job.ID(i + 1), Submit: clock,
			Width: 1 + r.Intn(16), Estimate: est, Runtime: est,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		finished := 0
		eng := engine.New(capacity, fcfs(), 0, engine.WithHooks(engine.Hooks{
			Finished: func(*job.Job, engine.FinishState, int64) { finished++ },
		}))
		for i := 0; i < len(jobs); {
			now := jobs[i].Submit
			if err := eng.AdvanceTo(now, true); err != nil {
				b.Fatal(err)
			}
			eng.JumpTo(now)
			eng.KillExpired()
			for ; i < len(jobs) && jobs[i].Submit == now; i++ {
				eng.Submit(jobs[i])
			}
			if err := eng.Replan(); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.AdvanceTo(int64(1)<<60, false); err != nil {
			b.Fatal(err)
		}
		if finished != n {
			b.Fatalf("%d of %d jobs finished", finished, n)
		}
	}
}
