package engine

import (
	"sort"

	"dynp/internal/plan"
)

// VictimPolicy orders the running jobs for termination when a capacity
// failure leaves the machine oversubscribed: victims are killed from the
// front of the returned slice until the remaining jobs fit the effective
// capacity. The input slice is a copy; the policy may reorder it freely.
type VictimPolicy func(now int64, running []plan.Running) []plan.Running

// VictimLastStarted kills the most recently started jobs first (ties
// broken by higher ID first), minimising the amount of finished work a
// capacity failure destroys. It is the default.
func VictimLastStarted(now int64, running []plan.Running) []plan.Running {
	sort.Slice(running, func(i, j int) bool {
		if running[i].Start != running[j].Start {
			return running[i].Start > running[j].Start
		}
		return running[i].Job.ID > running[j].Job.ID
	})
	return running
}

// VictimWidestFirst kills the widest jobs first (ties broken by later
// start, then higher ID), freeing the most processors per kill.
func VictimWidestFirst(now int64, running []plan.Running) []plan.Running {
	sort.Slice(running, func(i, j int) bool {
		if running[i].Job.Width != running[j].Job.Width {
			return running[i].Job.Width > running[j].Job.Width
		}
		if running[i].Start != running[j].Start {
			return running[i].Start > running[j].Start
		}
		return running[i].Job.ID > running[j].Job.ID
	})
	return running
}
