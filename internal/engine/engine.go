// Package engine is the event-driven scheduling core shared by the
// offline discrete event simulator (internal/sim) and the online
// resource management system (internal/rms). The paper's scheduler is
// one mechanism — at every scheduling event the driver recomputes the
// full schedule and every job planned to start right now is launched —
// and this package is its single implementation: machine state
// (capacity, failed processors), running/waiting bookkeeping, the
// apply-events→replan→launch cycle, finish/cancel/kill transitions and
// invariant checks.
//
// The engine is parameterised by its front end in two places:
//
//   - the Clock. The engine owns the current time but never advances it
//     on its own. The simulator jumps it to each event instant (JumpTo)
//     and injects completions itself, because actual run times are known
//     in advance; the online RMS sweeps it forward (AdvanceTo), letting
//     the engine fire the automatic actions — estimate expiries and
//     planned starts — that occur on the way.
//   - the Driver, the planning interface of internal/sim: a static
//     policy, the self-tuning dynP scheduler, or EASY backfilling.
//
// Hooks let the front end keep its own per-job bookkeeping (the
// simulator's completion events and records, the RMS's JobInfo
// lifecycle) exactly in step with the engine's transitions, and
// Observers receive a structured event stream (see observer.go) for
// tracing and metrics. The engine is not safe for concurrent use; the
// RMS serialises access with its own mutex.
package engine

import (
	"fmt"
	"time"

	"dynp/internal/job"
	"dynp/internal/plan"
	"dynp/internal/policy"
)

// Driver produces the full schedule at every scheduling event. It is
// the planning interface of the paper's scheduler; internal/sim aliases
// it and provides the implementations (Static, DynP, EASY).
type Driver interface {
	// Name identifies the scheduler in result tables.
	Name() string
	// Plan computes a full schedule for the waiting jobs.
	Plan(now int64, capacity int, running []plan.Running, waiting []*job.Job) *plan.Schedule
	// ActivePolicy returns the policy the last plan was built with.
	ActivePolicy() policy.Policy
}

// QueueTracker is an optional Driver extension. A driver that keeps
// incrementally-updated orders of the waiting queue (the self-tuning
// dynP driver does, see core.SelfTuner.NoteSubmit) implements it to be
// told about every waiting-queue change; the engine then reports each
// submission and each removal (start or cancel) as it happens. Purely an
// optimisation: a driver that never hears a notification just re-sorts.
type QueueTracker interface {
	NoteSubmit(j *job.Job)
	NoteRemove(j *job.Job)
}

// FinishState says why a job left the machine.
type FinishState int

// The ways a running job ends.
const (
	FinishCompleted FinishState = iota // the outside world reported completion
	FinishKilled                       // its estimate expired; the RMS terminated it
	FinishFailed                       // processors failed under it; the victim policy terminated it
)

// Hooks are the front end's per-job bookkeeping callbacks, invoked
// synchronously inside the corresponding transition. All are optional.
type Hooks struct {
	// Started fires when a job launches (it has left the waiting queue
	// and occupies its processors).
	Started func(j *job.Job, now int64)
	// Finished fires when a running job leaves the machine.
	Finished func(j *job.Job, st FinishState, now int64)
	// Planned fires after every replanning step, before due jobs are
	// launched. sched is nil when the machine is fully drained
	// (effective capacity < 1); unplaceable lists the waiting jobs
	// wider than the effective capacity, withheld from the planner.
	Planned func(sched *plan.Schedule, unplaceable []*job.Job)
}

// Engine is the shared scheduling core. Construct with New.
type Engine struct {
	capacity int // installed processors
	failed   int // processors currently failed
	driver   Driver
	tracker  QueueTracker // non-nil when the driver wants queue notifications
	now      int64
	victims  VictimPolicy
	hooks    Hooks
	obs      []Observer

	waiting    []*job.Job // submission order
	waitingIdx map[job.ID]int
	running    []plan.Running // start order
	runningIdx map[job.ID]int
	used       int // processors in use
	finished   int // jobs that left the machine, ever
	plan       *plan.Schedule

	strict bool // launch capacity violations are errors, not skips
	verify bool // verify every schedule against the machine state
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithHooks installs the front end's bookkeeping callbacks.
func WithHooks(h Hooks) Option { return func(e *Engine) { e.hooks = h } }

// WithStrictLaunch makes a due job that exceeds the effective capacity a
// hard error instead of a skip. The simulator uses it: with known run
// times an infeasible start can only mean a rogue driver. The online RMS
// keeps the default graceful skip, because capacity can shrink under a
// valid plan.
func WithStrictLaunch() Option { return func(e *Engine) { e.strict = true } }

// WithVerify makes the engine verify every schedule against the current
// machine state (slow; used by tests and debugging).
func WithVerify() Option { return func(e *Engine) { e.verify = true } }

// WithObserver registers an observer for the engine's event stream.
func WithObserver(o Observer) Option { return func(e *Engine) { e.AddObserver(o) } }

// New returns an engine for a machine with the given capacity, planning
// with the given driver, with the clock at start.
func New(capacity int, driver Driver, start int64, opts ...Option) *Engine {
	e := &Engine{
		capacity:   capacity,
		driver:     driver,
		now:        start,
		victims:    VictimLastStarted,
		waitingIdx: make(map[job.ID]int),
		runningIdx: make(map[job.ID]int),
	}
	if t, ok := driver.(QueueTracker); ok {
		e.tracker = t
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// AddObserver registers an observer after construction.
func (e *Engine) AddObserver(o Observer) {
	if o != nil {
		e.obs = append(e.obs, o)
	}
}

// SetVictimPolicy replaces the policy that picks which running jobs die
// when a capacity failure oversubscribes the machine. A nil policy
// restores the default (VictimLastStarted).
func (e *Engine) SetVictimPolicy(p VictimPolicy) {
	if p == nil {
		p = VictimLastStarted
	}
	e.victims = p
}

// Now returns the engine's current time.
func (e *Engine) Now() int64 { return e.now }

// Capacity returns the installed processor count.
func (e *Engine) Capacity() int { return e.capacity }

// FailedProcs returns the processors currently out of service.
func (e *Engine) FailedProcs() int { return e.failed }

// Effective returns the processors currently usable for planning.
func (e *Engine) Effective() int { return e.capacity - e.failed }

// Used returns the processors currently occupied by running jobs.
func (e *Engine) Used() int { return e.used }

// Driver returns the planning driver.
func (e *Engine) Driver() Driver { return e.driver }

// Waiting returns the waiting queue in submission order. The slice is
// the engine's own; callers must not mutate it.
func (e *Engine) Waiting() []*job.Job { return e.waiting }

// Running returns the running set in start order. The slice is the
// engine's own; callers must not mutate it.
func (e *Engine) Running() []plan.Running { return e.running }

// Schedule returns the most recent plan (nil before the first replan or
// while the machine is fully drained).
func (e *Engine) Schedule() *plan.Schedule { return e.plan }

// IsWaiting reports whether the job is in the waiting queue.
func (e *Engine) IsWaiting(id job.ID) bool {
	_, ok := e.waitingIdx[id]
	return ok
}

// IsRunning reports whether the job is on the machine.
func (e *Engine) IsRunning(id job.ID) bool {
	_, ok := e.runningIdx[id]
	return ok
}

// JumpTo moves the clock without firing any automatic actions — the
// virtual-clock mode of the simulator, which knows every completion in
// advance and injects the transitions itself. It panics when asked to
// move time backwards, which can only be a front-end bug.
func (e *Engine) JumpTo(t int64) {
	if t < e.now {
		panic(fmt.Sprintf("engine: clock moved backwards from %d to %d", e.now, t))
	}
	e.now = t
}

// Submit appends a job to the waiting queue. It does not replan; fronts
// batch same-instant submissions and replan once.
func (e *Engine) Submit(j *job.Job) {
	e.waitingIdx[j.ID] = len(e.waiting)
	e.waiting = append(e.waiting, j)
	if e.tracker != nil {
		e.tracker.NoteSubmit(j)
	}
	e.emit(Event{Kind: EventSubmit, Job: j, Procs: j.Width})
}

// CancelWaiting removes a waiting job from the queue. It reports false
// when the job is not waiting.
func (e *Engine) CancelWaiting(id job.ID) bool {
	j, ok := e.removeWaiting(id)
	if !ok {
		return false
	}
	e.emit(Event{Kind: EventCancel, Job: j, Procs: j.Width})
	return true
}

// Finish moves a running job off the machine, freeing its processors.
// It reports false when the job is not running.
func (e *Engine) Finish(id job.ID, st FinishState) bool {
	i, ok := e.runningIdx[id]
	if !ok {
		return false
	}
	r := e.running[i]
	e.running = append(e.running[:i], e.running[i+1:]...)
	delete(e.runningIdx, id)
	for k := i; k < len(e.running); k++ {
		e.runningIdx[e.running[k].Job.ID] = k
	}
	e.used -= r.Job.Width
	e.finished++
	if e.hooks.Finished != nil {
		e.hooks.Finished(r.Job, st, e.now)
	}
	e.emit(Event{Kind: finishEventKind(st), Job: r.Job, Procs: r.Job.Width})
	return true
}

// FailProcs takes n processors out of service and terminates running
// jobs until the rest fit, in victim-policy order. The caller validates
// n against the installed capacity. It does not replan.
func (e *Engine) FailProcs(n int) {
	e.failed += n
	e.emit(Event{Kind: EventProcsFail, Procs: n})
	e.killVictims()
}

// RestoreProcs returns n previously failed processors to service. The
// caller validates n against the failed count. It does not replan.
func (e *Engine) RestoreProcs(n int) {
	e.failed -= n
	e.emit(Event{Kind: EventProcsRestore, Procs: n})
}

// killVictims terminates running jobs until the rest fit the effective
// capacity, consulting the victim policy for the order. A policy that
// returns stale or insufficient victims is backstopped by the default
// order so the machine is never left oversubscribed.
func (e *Engine) killVictims() {
	eff := e.Effective()
	if e.used <= eff {
		return
	}
	order := e.victims(e.now, append([]plan.Running(nil), e.running...))
	order = append(order, VictimLastStarted(e.now, append([]plan.Running(nil), e.running...))...)
	for _, r := range order {
		if e.used <= eff {
			break
		}
		if !e.IsRunning(r.Job.ID) {
			continue
		}
		e.Finish(r.Job.ID, FinishFailed)
	}
}

// KillExpired terminates running jobs whose estimates expired at the
// current time — the guarantee that makes planning sound — and reports
// whether any were found. It does not replan.
func (e *Engine) KillExpired() bool {
	killed := false
	for _, r := range append([]plan.Running(nil), e.running...) {
		if r.EstimatedEnd() <= e.now {
			e.Finish(r.Job.ID, FinishKilled)
			killed = true
		}
	}
	return killed
}

// Replan is one scheduling event: recompute the full schedule against
// the effective capacity and launch every job planned to start right
// now. Jobs wider than the effective capacity are unplaceable: they are
// withheld from the planner and reported to the Planned hook until
// capacity returns. The returned error is always nil unless strict
// launching or verification is enabled.
func (e *Engine) Replan() error {
	eff := e.Effective()
	if eff < 1 {
		// Fully drained machine: nothing can be planned or started.
		e.plan = nil
		if e.hooks.Planned != nil {
			e.hooks.Planned(nil, e.waiting)
		}
		e.emit(Event{Kind: EventPlan})
		return nil
	}
	planned := e.waiting
	var unplaceable []*job.Job
	for i, j := range e.waiting {
		if j.Width <= eff {
			continue
		}
		// First unplaceable job found; split the queue once.
		planned = append([]*job.Job(nil), e.waiting[:i]...)
		for _, k := range e.waiting[i:] {
			if k.Width <= eff {
				planned = append(planned, k)
			} else {
				unplaceable = append(unplaceable, k)
			}
		}
		break
	}
	start := time.Now()
	e.plan = e.driver.Plan(e.now, eff, e.running, planned)
	latency := time.Since(start)
	if e.verify {
		if err := e.plan.Verify(e.running); err != nil {
			return fmt.Errorf("engine: at t=%d: %w", e.now, err)
		}
	}
	if e.hooks.Planned != nil {
		e.hooks.Planned(e.plan, unplaceable)
	}
	if err := e.launchDue(); err != nil {
		return err
	}
	e.emit(Event{Kind: EventPlan, Case: e.decisionCase(), Latency: latency})
	return nil
}

// launchDue starts every waiting job whose planned start is now. A plan
// entry that no longer fits — the capacity dropped after the plan was
// built, or a rogue driver oversubscribed — is skipped (the job stays
// waiting for the next replanning event) unless strict launching makes
// it an error.
func (e *Engine) launchDue() error {
	if e.plan == nil {
		return nil
	}
	for _, entry := range e.plan.Entries {
		if entry.Start != e.now {
			continue
		}
		j := entry.Job
		if !e.IsWaiting(j.ID) {
			// Started jobs leave stale entries behind until the next
			// replan; front ends may also hold back jobs of their own.
			continue
		}
		if e.used+j.Width > e.Effective() {
			if e.strict {
				return fmt.Errorf("engine: at t=%d: starting %s exceeds capacity (%d used of %d)",
					e.now, j, e.used, e.Effective())
			}
			continue
		}
		e.removeWaiting(j.ID)
		e.runningIdx[j.ID] = len(e.running)
		e.running = append(e.running, plan.Running{Job: j, Start: e.now})
		e.used += j.Width
		if e.hooks.Started != nil {
			e.hooks.Started(j, e.now)
		}
		e.emit(Event{Kind: EventStart, Job: j, Procs: j.Width})
	}
	return nil
}

// AdvanceTo processes automatic actions (estimate expiries, planned
// starts) up to time to — strictly before it when exclusive is set, so
// a front end can batch its own events at to before the shared
// replanning step. The clock is left at the last action's instant; the
// caller moves it the rest of the way with JumpTo.
func (e *Engine) AdvanceTo(to int64, exclusive bool) error {
	stuck := false
	for {
		// After a fruitless replan the due-now entries are infeasible for
		// good (rogue driver, shrunken machine); look strictly ahead so
		// later expiries and starts still fire instead of spinning on or
		// returning at the stuck instant.
		next, ok := e.NextActionTime(stuck)
		if !ok || next > to || (exclusive && next == to) {
			return nil
		}
		prevNow, prevRunning, prevFinished := e.now, len(e.running), e.finished
		e.now = next
		if e.KillExpired() {
			if err := e.Replan(); err != nil {
				return err
			}
		}
		if err := e.launchDue(); err != nil {
			return err
		}
		if e.now == prevNow && len(e.running) == prevRunning && e.finished == prevFinished {
			// A plan entry is due but cannot act — it no longer fits, or
			// a rogue driver planned an infeasible start. Replan once to
			// self-heal before skipping past it.
			if stuck {
				return nil
			}
			stuck = true
			if err := e.Replan(); err != nil {
				return err
			}
			continue
		}
		stuck = false
	}
}

// NextActionTime returns the earliest time at which the machine state
// changes by itself: a planned start or an estimate expiry. With
// strictlyAfter set, actions due at the current instant are ignored —
// AdvanceTo uses this to step past entries that proved infeasible.
func (e *Engine) NextActionTime(strictlyAfter bool) (int64, bool) {
	var next int64
	found := false
	consider := func(t int64) {
		if t < e.now {
			t = e.now
		}
		if strictlyAfter && t <= e.now {
			return
		}
		if !found || t < next {
			next, found = t, true
		}
	}
	for _, r := range e.running {
		consider(r.EstimatedEnd())
	}
	if e.plan != nil {
		for _, entry := range e.plan.Entries {
			// Only entries of still-waiting jobs can act; started jobs
			// leave stale entries behind until the next replan.
			if e.IsWaiting(entry.Job.ID) {
				consider(entry.Start)
			}
		}
	}
	return next, found
}

// removeWaiting splices a job out of the waiting queue, preserving
// submission order, and reindexes the entries behind it.
func (e *Engine) removeWaiting(id job.ID) (*job.Job, bool) {
	i, ok := e.waitingIdx[id]
	if !ok {
		return nil, false
	}
	j := e.waiting[i]
	e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
	delete(e.waitingIdx, id)
	for k := i; k < len(e.waiting); k++ {
		e.waitingIdx[e.waiting[k].ID] = k
	}
	if e.tracker != nil {
		e.tracker.NoteRemove(j)
	}
	return j, true
}

// CheckInvariants verifies the engine's internal consistency: index maps
// match the queues, the running set fits the effective capacity, and no
// job is both waiting and running. A healthy engine always returns nil.
func (e *Engine) CheckInvariants() error {
	if e.failed < 0 || e.failed > e.capacity {
		return fmt.Errorf("engine: %d failed processors out of [0, %d]", e.failed, e.capacity)
	}
	if len(e.waitingIdx) != len(e.waiting) {
		return fmt.Errorf("engine: waiting index has %d entries for %d jobs", len(e.waitingIdx), len(e.waiting))
	}
	for i, w := range e.waiting {
		if got, ok := e.waitingIdx[w.ID]; !ok || got != i {
			return fmt.Errorf("engine: waiting job %d at position %d indexed at %d", w.ID, i, got)
		}
	}
	if len(e.runningIdx) != len(e.running) {
		return fmt.Errorf("engine: running index has %d entries for %d jobs", len(e.runningIdx), len(e.running))
	}
	used := 0
	for i, r := range e.running {
		if got, ok := e.runningIdx[r.Job.ID]; !ok || got != i {
			return fmt.Errorf("engine: running job %d at position %d indexed at %d", r.Job.ID, i, got)
		}
		used += r.Job.Width
	}
	if used != e.used {
		return fmt.Errorf("engine: %d processors recorded in use, running set occupies %d", e.used, used)
	}
	if used > e.Effective() {
		return fmt.Errorf("engine: %d processors in use exceed effective capacity %d", used, e.Effective())
	}
	for _, w := range e.waiting {
		if e.IsRunning(w.ID) {
			return fmt.Errorf("engine: job %d both waiting and running", w.ID)
		}
	}
	return nil
}
